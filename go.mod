module github.com/neuralcompile/glimpse

go 1.22
