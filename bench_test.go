// Package glimpse_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (one testing.B per artifact)
// plus the ablation studies DESIGN.md calls out. Benchmarks run at a
// reduced scale (subset of GPUs/tasks, smaller budgets) so the full suite
// finishes in minutes; cmd/experiments -scale full is the long-form run.
//
// Reported custom metrics are the figures' headline numbers, e.g.
// rel_steps_% for Fig. 6 or invalid_reduction_x for Fig. 7.
package glimpse_test

import (
	"sync"
	"testing"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/experiments"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/sampler"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// benchEnv is shared across benchmarks: toolkit training dominates setup,
// so it happens once.
var (
	benchOnce sync.Once
	benchE    *experiments.Env
	benchGrid *experiments.Grid
	benchErr  error
)

func benchSetup(b *testing.B) (*experiments.Env, *experiments.Grid) {
	b.Helper()
	benchOnce.Do(func() {
		var priorTasks []workload.Task
		for _, l := range []int{1, 2, 4, 5, 7, 9, 11, 13, 15, 17} {
			task, err := workload.TaskByIndex(workload.ResNet18, l)
			if err != nil {
				benchErr = err
				return
			}
			priorTasks = append(priorTasks, task)
		}
		for _, l := range []int{3, 8, 11} {
			task, err := workload.TaskByIndex(workload.AlexNet, l)
			if err != nil {
				benchErr = err
				return
			}
			priorTasks = append(priorTasks, task)
		}
		benchE = experiments.NewEnv(experiments.Config{
			Seed:            2022,
			Targets:         []string{hwspec.TitanXp, hwspec.RTX3090},
			Models:          []string{workload.AlexNet, workload.ResNet18},
			TasksPerModel:   3,
			MaxMeasurements: 96,
			BatchSize:       16,
			TransferSamples: 90,
			TransferGPUs:    2,
			Toolkit: core.ToolkitConfig{
				TrainGPUs: []string{"gtx-1080", "gtx-1080-ti", "rtx-2070", "rtx-2080",
					"rtx-2080-ti", "titan-rtx", "rtx-3070", "rtx-3080"},
				PriorTasks: priorTasks,
				Prior: prior.TrainConfig{
					Dataset: prior.DatasetConfig{SamplesPerTask: 140, TopK: 16},
					Epochs:  200,
				},
				MetaGPUs: 2,
			},
		})
		benchGrid, benchErr = benchE.RunGrid([]string{"autotvm", "chameleon", "dgp", "glimpse"})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchE, benchGrid
}

// BenchmarkTable1TaskInventory regenerates Table 1.
func BenchmarkTable1TaskInventory(b *testing.B) {
	e, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 3 {
			b.Fatal("bad inventory")
		}
	}
}

// BenchmarkFig1CrossHardwareReuse regenerates Figure 1.
func BenchmarkFig1CrossHardwareReuse(b *testing.B) {
	e, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.SlowdownAB, "slowdown_ab_%")
		b.ReportMetric(100*r.SlowdownBA, "slowdown_ba_%")
	}
}

// BenchmarkFig4InitialConfigs regenerates Figure 4.
func BenchmarkFig4InitialConfigs(b *testing.B) {
	e, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		adv := r.GlimpseAdvantage()
		if len(adv) > 0 {
			sum := 0.0
			for _, a := range adv {
				sum += a
			}
			b.ReportMetric(sum/float64(len(adv)), "glimpse_initial_advantage_x")
		}
	}
}

// BenchmarkFig5TransferLearning regenerates Figure 5.
func BenchmarkFig5TransferLearning(b *testing.B) {
	e, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoRelGl, "glimpse_vs_autotvm_x")
		b.ReportMetric(r.GeoRelTL, "tl_vs_autotvm_x")
	}
}

// BenchmarkFig6SearchSteps regenerates Figure 6 from the shared grid.
func BenchmarkFig6SearchSteps(b *testing.B) {
	_, grid := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(grid)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Geomean["glimpse"], "glimpse_rel_steps_%")
		b.ReportMetric(100*r.Geomean["chameleon"], "chameleon_rel_steps_%")
	}
}

// BenchmarkFig7InvalidConfigs regenerates Figure 7 from the shared grid.
func BenchmarkFig7InvalidConfigs(b *testing.B) {
	_, grid := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(grid)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean["glimpse"], "glimpse_invalid_reduction_x")
		b.ReportMetric(r.Geomean["chameleon"], "chameleon_invalid_reduction_x")
	}
}

// BenchmarkFig8BlueprintDSE regenerates Figure 8.
func BenchmarkFig8BlueprintDSE(b *testing.B) {
	e, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := e.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ChosenDim), "blueprint_dim")
		b.ReportMetric(100*r.KneeLoss, "knee_loss_%")
	}
}

// BenchmarkFig9aOptimizationTime regenerates Figure 9a from the grid.
func BenchmarkFig9aOptimizationTime(b *testing.B) {
	_, grid := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(grid)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TimeGeomean["glimpse"], "glimpse_time_improvement_x")
		b.ReportMetric(r.TimeGeomean["chameleon"], "chameleon_time_improvement_x")
		b.ReportMetric(r.TimeGeomean["dgp"], "dgp_time_improvement_x")
	}
}

// BenchmarkFig9bInferenceSpeed regenerates Figure 9b from the grid.
func BenchmarkFig9bInferenceSpeed(b *testing.B) {
	_, grid := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(grid)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.InferenceGeomean["glimpse"], "glimpse_inference_x")
		b.ReportMetric(r.InferenceGeomean["chameleon"], "chameleon_inference_x")
		b.ReportMetric(r.InferenceGeomean["dgp"], "dgp_inference_x")
	}
}

// BenchmarkTable2HyperVolume regenerates Table 2 from the grid.
func BenchmarkTable2HyperVolume(b *testing.B) {
	_, grid := benchSetup(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(grid)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, row := range r.Rows {
			if row.Tuner == "glimpse" && row.HyperVolume > best {
				best = row.HyperVolume
			}
		}
		b.ReportMetric(best, "glimpse_best_hv")
	}
}

// ablationSetup returns a trained toolkit, measurement path, and task for
// the component ablations.
func ablationSetup(b *testing.B) (*core.Toolkit, workload.Task, *space.Space, *measure.Local) {
	b.Helper()
	e, _ := benchSetup(b)
	tk, err := e.Toolkit(hwspec.TitanXp)
	if err != nil {
		b.Fatal(err)
	}
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		b.Fatal(err)
	}
	return tk, task, space.MustForTask(task), measure.MustNewLocal(hwspec.TitanXp)
}

// BenchmarkAblationPrior compares Glimpse with and without the Blueprint
// prior (§3.1) at a fixed measurement budget.
func BenchmarkAblationPrior(b *testing.B) {
	tk, task, sp, m := ablationSetup(b)
	budget := tuner.Budget{MaxMeasurements: 64}
	for i := 0; i < b.N; i++ {
		full := tk.Tuner()
		fullRes, err := full.Tune(task, sp, m, budget, rng.New(500))
		if err != nil {
			b.Fatal(err)
		}
		ablated := tk.Tuner()
		ablated.DisablePrior = true
		ablRes, err := ablated.Tune(task, sp, m, budget, rng.New(500))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fullRes.BestGFLOPS/ablRes.BestGFLOPS, "prior_gain_x")
	}
}

// BenchmarkAblationAcquisition compares the meta-learned acquisition
// against classic Expected Improvement (§3.2, paper footnote 3).
func BenchmarkAblationAcquisition(b *testing.B) {
	tk, task, sp, m := ablationSetup(b)
	budget := tuner.Budget{MaxMeasurements: 96}
	for i := 0; i < b.N; i++ {
		full := tk.Tuner()
		fullRes, err := full.Tune(task, sp, m, budget, rng.New(600))
		if err != nil {
			b.Fatal(err)
		}
		ablated := tk.Tuner()
		ablated.DisableAcq = true // falls back to EI
		ablRes, err := ablated.Tune(task, sp, m, budget, rng.New(600))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fullRes.BestGFLOPS/ablRes.BestGFLOPS, "neural_acq_gain_x")
	}
}

// BenchmarkAblationSamplerTau sweeps the ensemble rejection threshold τ
// (§3.3; the paper grid-searched τ = 1/3).
func BenchmarkAblationSamplerTau(b *testing.B) {
	tk, task, sp, m := ablationSetup(b)
	budget := tuner.Budget{MaxMeasurements: 64}
	taus := []float64{1.0 / 9, sampler.DefaultTau, 2.0 / 3}
	for i := 0; i < b.N; i++ {
		for _, tau := range taus {
			gl := tk.Tuner()
			gl.Tau = tau
			res, err := gl.Tune(task, sp, m, budget, rng.New(700))
			if err != nil {
				b.Fatal(err)
			}
			frac := float64(res.Invalid) / float64(res.Measurements)
			b.ReportMetric(100*frac, "invalid_%_tau_"+tauLabel(tau))
		}
	}
}

func tauLabel(tau float64) string {
	switch {
	case tau < 0.2:
		return "1_9"
	case tau < 0.5:
		return "1_3"
	default:
		return "2_3"
	}
}

// BenchmarkAblationBlueprintSize compares prior quality when the Blueprint
// is compressed to 3 dimensions versus the Fig. 8 knee.
func BenchmarkAblationBlueprintSize(b *testing.B) {
	e, _ := benchSetup(b)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		b.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(hwspec.TitanXp)
	cfgBase := e.Cfg().Toolkit
	for i := 0; i < b.N; i++ {
		scores := map[int]float64{}
		for _, dim := range []int{3, 0} { // 0 = Fig. 8 knee
			cfg := cfgBase
			cfg.BlueprintDim = dim
			tk, err := core.TrainToolkit(hwspec.TitanXp, cfg, rng.New(800+int64(dim)))
			if err != nil {
				b.Fatal(err)
			}
			res, err := tk.Tuner().Tune(task, sp, m, tuner.Budget{MaxMeasurements: 32}, rng.New(801))
			if err != nil {
				b.Fatal(err)
			}
			scores[dim] = res.BestGFLOPS
		}
		b.ReportMetric(scores[0]/scores[3], "knee_vs_dim3_x")
	}
}
