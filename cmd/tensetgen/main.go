// Command tensetgen generates an offline tuning corpus in the spirit of
// TenSet (Zheng et al., NeurIPS'21 Datasets & Benchmarks): random
// configurations of every task of the chosen models, measured on a pool of
// simulated GPUs, written as a JSONL tuning log. The corpus is what
// transfer methods consume and what Glimpse's prior generator H trains on.
//
// Usage:
//
//	tensetgen -out corpus.jsonl [-models alexnet,resnet-18,vgg-16]
//	          [-gpus all|name,name,...] [-samples 200] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	out := flag.String("out", "corpus.jsonl", "output tuning-log path")
	models := flag.String("models", strings.Join(workload.Models, ","), "models to sample")
	gpus := flag.String("gpus", "all", "GPUs to measure on ('all' or comma-separated)")
	samples := flag.Int("samples", 200, "random configurations per (GPU, task)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var gpuNames []string
	if *gpus == "all" {
		for _, s := range hwspec.Registry() {
			gpuNames = append(gpuNames, s.Name)
		}
	} else {
		for _, n := range strings.Split(*gpus, ",") {
			gpuNames = append(gpuNames, strings.TrimSpace(n))
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	w := tlog.NewWriter(f, 0)
	g := rng.New(*seed)

	total := 0
	for _, gpu := range gpuNames {
		local, err := measure.NewLocal(gpu)
		if err != nil {
			fail(err)
		}
		rec := &tlog.RecordingMeasurer{Inner: local, Out: w}
		for _, model := range strings.Split(*models, ",") {
			tasks, err := workload.Tasks(strings.TrimSpace(model))
			if err != nil {
				fail(err)
			}
			for _, task := range tasks {
				sp, err := space.ForTask(task)
				if err != nil {
					fail(err)
				}
				sg := g.Split(gpu + "/" + task.Name())
				idxs := make([]int64, *samples)
				for i := range idxs {
					idxs[i] = sp.RandomIndex(sg)
				}
				if _, err := rec.MeasureBatch(task, sp, idxs); err != nil {
					fail(err)
				}
				total += len(idxs)
			}
		}
		fmt.Fprintf(os.Stderr, "tensetgen: finished %s (%d measurements so far)\n", gpu, total)
	}
	fmt.Printf("tensetgen: wrote %d measurements to %s\n", total, *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tensetgen:", err)
	os.Exit(1)
}
