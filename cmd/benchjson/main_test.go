package main

import "testing"

func TestParseLine(t *testing.T) {
	rec, ok := parseLine("BenchmarkAnneal/workers=4-8   100   11532042 ns/op   2048 B/op   12 allocs/op")
	if !ok {
		t.Fatal("expected parse to succeed")
	}
	if rec.Name != "BenchmarkAnneal/workers=4-8" || rec.Iterations != 100 ||
		rec.NsPerOp != 11532042 || rec.BytesPerOp != 2048 || rec.AllocsPerOp != 12 {
		t.Fatalf("bad record: %+v", rec)
	}
}

func TestParseLineMinimal(t *testing.T) {
	rec, ok := parseLine("BenchmarkGBTTrain-1   7   150000000 ns/op")
	if !ok {
		t.Fatal("expected parse to succeed")
	}
	if rec.Name != "BenchmarkGBTTrain-1" || rec.NsPerOp != 150000000 {
		t.Fatalf("bad record: %+v", rec)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	rec, ok := parseLine("BenchmarkFleetSharded   1   149507143 ns/op   30039 meas/s   17617272 B/op   91842 allocs/op")
	if !ok {
		t.Fatal("expected parse to succeed")
	}
	if rec.Metrics["meas/s"] != 30039 {
		t.Fatalf("custom metric lost: %+v", rec)
	}
	if rec.NsPerOp != 149507143 || rec.BytesPerOp != 17617272 {
		t.Fatalf("standard columns mangled: %+v", rec)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok   github.com/neuralcompile/glimpse/internal/anneal  3.2s",
		"Benchmark", // no fields after name
		"BenchmarkX notanumber 5 ns/op",
		"BenchmarkNoUnits 10 20 30", // numbers but no ns/op unit
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) unexpectedly succeeded", line)
		}
	}
}
