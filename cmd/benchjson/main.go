// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array of benchmark records on stdout, so benchmark results can be
// committed and diffed as machine-readable artifacts (see `make bench`).
//
// Usage:
//
//	go test -bench BenchmarkAnneal -run '^$' ./internal/anneal | benchjson > BENCH.json
//
// Lines that are not benchmark results (pass/fail summaries, goos/goarch
// headers) pass through to stderr untouched, so failures stay visible.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line. Metrics holds custom
// b.ReportMetric units (e.g. "meas/s" from the fleet benchmark) that the
// standard columns don't cover.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		rec, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkAnneal/workers=4-8   100   11532042 ns/op   2048 B/op   12 allocs/op
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			if rec.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Record{}, false
			}
			seen = true
		case "B/op":
			if rec.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Record{}, false
			}
		case "allocs/op":
			if rec.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Record{}, false
			}
		default:
			// Custom b.ReportMetric unit: keep it if the value parses.
			f, perr := strconv.ParseFloat(val, 64)
			if perr != nil {
				continue
			}
			if rec.Metrics == nil {
				rec.Metrics = map[string]float64{}
			}
			rec.Metrics[unit] = f
		}
	}
	return rec, seen
}
