// Command glimpsed is the Glimpse tuning service: a long-running daemon
// that accepts tuning jobs over HTTP, runs several resumable sessions
// concurrently behind a tenant-fair priority queue, streams per-step
// progress over SSE, serves exact hits and warm starts from a
// tuned-config cache, and drains gracefully — SIGTERM checkpoints every
// in-flight session's measurement log, and a restarted daemon resumes
// the same jobs to byte-identical results with zero lost work.
//
// Server mode:
//
//	glimpsed -state /var/lib/glimpsed [-addr :8743] [-sessions 4]
//	         [-queue-depth 256] [-budget 192] [-cache path] [-warm-k 3]
//	         [-cache-readonly] [-artifacts dir] [-tenant-budget a=120,b=40]
//	         [-drain 2m] [-endpoints host:4817,host2:4817] [-trace out.jsonl]
//	         [-slo-ttfp-ms 5000 -slo-ttfp-objective 0.95] [-slo-availability 0.99]
//
// -endpoints measures over net/rpc against remote measured daemons instead
// of the in-process simulator, spreading jobs across the listed endpoints
// round-robin. -trace writes the service's side of each job's distributed
// trace as JSONL (span IDs prefixed "glimpsed/"); merge it with the
// endpoints' trace files via `tracereport -merge`. The SLO flags enable
// /telemetryz error-budget tracking and burn stamps on terminal SSE events.
// Per-tenant service metrics are always on: `GET /metricsz` (text) and
// `GET /telemetryz` (JSON, what cmd/glimpsetop polls).
//
// A second SIGTERM/SIGINT during the drain forces an immediate close
// (journals stay consistent; interrupted sessions still resume).
//
// Client mode (any of these flags selects it; -server names the daemon):
//
//	glimpsed -server http://localhost:8743 -submit '{"model":"resnet-18","task_index":7,"gpu":"titan-xp"}'
//	glimpsed -server ... -jobs batch.jsonl     # one JobSpec per line
//	glimpsed -server ... -watch j1             # stream SSE progress to stdout
//	glimpsed -server ... -result j1            # print the result JSON
//	glimpsed -server ... -list                 # list jobs
//	glimpsed -server ... -tenants              # per-tenant accounting
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/server"
	"github.com/neuralcompile/glimpse/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8743", "server mode: listen address")
	state := flag.String("state", "", "server mode: state directory (job journal + measurement logs)")
	sessions := flag.Int("sessions", 4, "server mode: concurrent tuning sessions")
	queueDepth := flag.Int("queue-depth", 256, "server mode: max queued jobs before 429")
	budget := flag.Int("budget", 192, "server mode: default measurements per job")
	cachePath := flag.String("cache", "", "server mode: persistent tuned-config store")
	cacheReadonly := flag.Bool("cache-readonly", false, "server mode: serve from -cache but never write")
	warmK := flag.Int("warm-k", 3, "server mode: donor devices per warm start")
	artifacts := flag.String("artifacts", "", "server mode: directory for trained toolkit artifacts")
	tenantBudgets := flag.String("tenant-budget", "", "server mode: per-tenant GPU-second budgets, name=seconds[,name=seconds...]")
	drainTimeout := flag.Duration("drain", 2*time.Minute, "server mode: graceful drain deadline on SIGTERM")
	endpoints := flag.String("endpoints", "", "server mode: comma-separated measured RPC endpoints (empty: in-process simulator)")
	tracePath := flag.String("trace", "", "server mode: write distributed-trace JSONL here (empty: tracing off)")
	sloTTFPMS := flag.Float64("slo-ttfp-ms", 0, "server mode: time-to-first-progress SLO threshold in ms")
	sloTTFPObj := flag.Float64("slo-ttfp-objective", 0, "server mode: target fraction of jobs under -slo-ttfp-ms (0: off)")
	sloAvail := flag.Float64("slo-availability", 0, "server mode: target fraction of terminal jobs finishing done (0: off)")

	serverURL := flag.String("server", "", "client mode: glimpsed base URL (e.g. http://localhost:8743)")
	submit := flag.String("submit", "", "client mode: submit one JobSpec (JSON literal, or @path)")
	jobsFile := flag.String("jobs", "", "client mode: batch-submit JobSpecs from a JSONL file")
	watch := flag.String("watch", "", "client mode: stream a job's SSE progress to stdout")
	result := flag.String("result", "", "client mode: print a job's result JSON")
	list := flag.Bool("list", false, "client mode: list jobs")
	tenants := flag.Bool("tenants", false, "client mode: print per-tenant accounting")
	flag.Parse()

	if *submit != "" || *jobsFile != "" || *watch != "" || *result != "" || *list || *tenants {
		runClient(client{base: strings.TrimRight(*serverURL, "/")},
			*submit, *jobsFile, *watch, *result, *list, *tenants)
		return
	}

	if *state == "" {
		fail(fmt.Errorf("-state is required in server mode (or pass a client flag; see -h)"))
	}
	budgets, err := parseTenantBudgets(*tenantBudgets)
	if err != nil {
		fail(err)
	}
	cfg := server.Config{
		StateDir:      *state,
		Sessions:      *sessions,
		MaxQueued:     *queueDepth,
		DefaultBudget: *budget,
		TenantBudgets: budgets,
		CachePath:     *cachePath,
		CacheReadOnly: *cacheReadonly,
		WarmK:         *warmK,
		ArtifactsDir:  *artifacts,
		SLOs: server.SLOConfig{
			TTFPThresholdMS: *sloTTFPMS,
			TTFPObjective:   *sloTTFPObj,
			AvailObjective:  *sloAvail,
		},
	}
	var traceFile *os.File
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		traceFile = tf
		cfg.Tracer = telemetry.NewTracerProc(tf, nil, "glimpsed")
	}
	if *endpoints != "" {
		cfg.NewMeasurer = endpointMeasurer(splitList(*endpoints))
	}
	srv, err := server.New(cfg)
	if err != nil {
		fail(err)
	}
	bound, err := srv.Start(context.Background(), *addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "glimpsed: listening on %s (%d sessions, state %s)\n",
		bound, *sessions, *state)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "glimpsed: draining (again to force)...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.DrainForced(dctx, sig); err != nil {
		fail(err)
	}
	if traceFile != nil {
		if terr := cfg.Tracer.Err(); terr != nil {
			fmt.Fprintln(os.Stderr, "glimpsed: trace:", terr)
		}
		if cerr := traceFile.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "glimpsed: trace:", cerr)
		}
	}
	fmt.Fprintln(os.Stderr, "glimpsed: drained; queued and checkpointed jobs resume on restart")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// endpointMeasurer builds jobs' measurement backends from a pool of
// measured daemons: each job dials the next endpoint hosting its GPU,
// round-robin, so concurrent sessions spread across the fleet. The
// connection is per-job (closed when the job stops), matching the
// in-process default's lifecycle.
func endpointMeasurer(eps []string) func(gpu string) (measure.Measurer, func() error, error) {
	var next atomic.Int64
	return func(gpu string) (measure.Measurer, func() error, error) {
		start := int(next.Add(1)-1) % len(eps)
		var lastErr error
		for k := 0; k < len(eps); k++ {
			addr := eps[(start+k)%len(eps)]
			r, err := measure.Dial(addr, gpu)
			if err != nil {
				lastErr = err
				continue
			}
			return r, r.Close, nil
		}
		return nil, nil, fmt.Errorf("no endpoint hosts %s: %w", gpu, lastErr)
	}
}

func parseTenantBudgets(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -tenant-budget entry %q (want name=seconds)", part)
		}
		secs, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -tenant-budget value %q: %w", part, err)
		}
		out[name] = secs
	}
	return out, nil
}

// ---- client mode ----

type client struct {
	base string
}

func runClient(c client, submit, jobsFile, watch, result string, list, tenants bool) {
	if c.base == "" {
		fail(fmt.Errorf("client mode needs -server http://host:port"))
	}
	switch {
	case submit != "":
		id, err := c.submit([]byte(loadArg(submit)))
		if err != nil {
			fail(err)
		}
		fmt.Println(id)
	case jobsFile != "":
		if err := c.submitBatch(jobsFile); err != nil {
			fail(err)
		}
	case watch != "":
		if err := c.watch(watch); err != nil {
			fail(err)
		}
	case result != "":
		if err := c.get("/v1/jobs/"+result+"/result", os.Stdout); err != nil {
			fail(err)
		}
	case list:
		if err := c.get("/v1/jobs", os.Stdout); err != nil {
			fail(err)
		}
	case tenants:
		if err := c.get("/v1/tenants", os.Stdout); err != nil {
			fail(err)
		}
	}
}

// loadArg resolves @path arguments to file contents.
func loadArg(s string) string {
	if !strings.HasPrefix(s, "@") {
		return s
	}
	data, err := os.ReadFile(s[1:])
	if err != nil {
		fail(err)
	}
	return string(data)
}

// submit POSTs one JobSpec, honoring Retry-After backpressure (429 on a
// full queue, 503 while draining) with bounded retries.
func (c client) submit(spec []byte) (string, error) {
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			return "", err
		}
		body, err := io.ReadAll(resp.Body)
		cerr := resp.Body.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			return "", err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var ack struct {
				ID string `json:"id"`
			}
			if err := jsonUnmarshal(body, &ack); err != nil {
				return "", err
			}
			return ack.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if attempt >= 20 {
				return "", fmt.Errorf("server busy after %d attempts: %s", attempt+1, strings.TrimSpace(string(body)))
			}
			time.Sleep(retryAfter(resp, time.Second))
		default:
			return "", fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
	}
}

func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// submitBatch submits every JSONL line in the file, printing one job ID
// per line.
func (c client) submitBatch(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, err := c.submit([]byte(line))
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fmt.Println(id)
	}
	return sc.Err()
}

// watch streams a job's SSE events, printing each event's JSON payload
// as one line; it returns when the server closes the stream (job
// terminal or server drain).
func (c client) watch(id string) error {
	resp, err := http.Get(c.base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("watch: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			fmt.Println(data)
		}
	}
	return sc.Err()
}

func (c client) get(path string, out io.Writer) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = out.Write(body)
	return err
}

func jsonUnmarshal(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("bad server response %q: %w", string(data), err)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "glimpsed:", err)
	os.Exit(1)
}
