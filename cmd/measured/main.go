// Command measured serves simulated GPUs over net/rpc — the stand-in for
// the paper's measurement boards ("multiple generations of GPUs connected
// via RPC"). cmd/glimpse -rpc <addr> tunes against it.
//
// Usage:
//
//	measured [-addr 127.0.0.1:4817] [-gpus titan-xp,rtx-3090,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4817", "listen address")
	gpus := flag.String("gpus", strings.Join(hwspec.Targets, ","), "comma-separated GPUs to host")
	flag.Parse()

	var names []string
	for _, n := range strings.Split(*gpus, ",") {
		names = append(names, strings.TrimSpace(n))
	}
	srv, err := measure.NewServer(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measured:", err)
		os.Exit(1)
	}
	bound, err := srv.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measured:", err)
		os.Exit(1)
	}
	fmt.Printf("measured: serving %v on %s\n", names, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}
