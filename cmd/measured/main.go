// Command measured serves simulated GPUs over net/rpc — the stand-in for
// the paper's measurement boards ("multiple generations of GPUs connected
// via RPC"). cmd/glimpse -rpc <addr> tunes against it.
//
// Besides Measure/List it answers Measure.Ping health checks, and on
// SIGINT/SIGTERM it shuts down gracefully: new batches are rejected,
// in-flight batches drain (bounded by -drain), then connections close. A
// second signal forces immediate shutdown.
//
// Usage:
//
//	measured [-addr 127.0.0.1:4817] [-gpus titan-xp,rtx-3090,...] [-drain 10s]
//	         [-chaos flap] [-chaos-seed 1] [-chaos-frac 0.1] [-chaos-service 500us]
//	         [-debug-addr 127.0.0.1:6060] [-trace out.jsonl] [-trace-proc ep0]
//
// -trace records one rpc_measure span per measurement batch as JSONL. When
// the caller propagates a trace context (glimpsed -trace), each span
// carries the job's TraceID and tenant, and -trace-proc prefixes this
// process's span IDs so traces from several daemons merge collision-free
// (`tracereport -merge glimpsed.jsonl ep0.jsonl ep1.jsonl`).
//
// -chaos layers a deterministic churn schedule (see internal/faults) onto a
// fraction of the hosted devices: flap, spike, slow-degrade, crash, or the
// churn composite. The schedule is fixed by -chaos-seed, so a fleet chaos
// drill is reproducible across daemon restarts.
//
// -debug-addr serves net/http/pprof plus /telemetryz (JSON snapshot of the
// serving counters) for live introspection of a long measurement campaign.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/neuralcompile/glimpse/internal/faults"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4817", "listen address")
	gpus := flag.String("gpus", strings.Join(hwspec.Targets, ","), "comma-separated GPUs to host")
	drain := flag.Duration("drain", 10*time.Second, "max wait for in-flight batches on shutdown")
	chaos := flag.String("chaos", "none", "churn schedule for hosted devices: none | flap | spike | slow-degrade | crash | churn")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed fixing the chaos schedule")
	chaosFrac := flag.Float64("chaos-frac", 0.1, "fraction of hosted devices the chaos schedule churns")
	chaosService := flag.Duration("chaos-service", 0, "simulated service time per measurement (applies to every device when chaos is on)")
	debugAddr := flag.String("debug-addr", "", "serve pprof and /telemetryz on this address (empty: disabled)")
	tracePath := flag.String("trace", "", "write rpc_measure trace JSONL here (empty: tracing off)")
	traceProc := flag.String("trace-proc", "measured", "process label prefixing span IDs in the trace")
	flag.Parse()

	var names []string
	for _, n := range strings.Split(*gpus, ",") {
		names = append(names, strings.TrimSpace(n))
	}
	scenario, err := faults.ScenarioByName(*chaos, *chaosSeed, len(names), *chaosFrac, *chaosService)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measured:", err)
		os.Exit(1)
	}
	srv, err := measure.NewServerWrapped(names, func(i int, gpu string, m measure.Measurer) measure.Measurer {
		return scenario.Wrap(i, m)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "measured:", err)
		os.Exit(1)
	}
	var tracer *telemetry.Tracer
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "measured:", err)
			os.Exit(1)
		}
		tracer = telemetry.NewTracerProc(traceFile, nil, *traceProc)
		srv.SetTracer(tracer)
	}
	bound, err := srv.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measured:", err)
		os.Exit(1)
	}
	fmt.Printf("measured: serving %v on %s (health: Measure.Ping)\n", names, bound)
	if *chaos != "none" {
		fmt.Printf("measured: chaos %q (seed %d, frac %.2f) active on hosted devices\n",
			*chaos, *chaosSeed, *chaosFrac)
	}

	if *debugAddr != "" {
		mux := telemetry.NewDebugMux(nil, map[string]telemetry.SnapshotFunc{
			"server": func() any { return srv.Stats() },
			"pool":   func() any { return parallel.Stats() },
		})
		dbgBound, closeDebug, err := telemetry.ServeDebug(*debugAddr, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "measured:", err)
			os.Exit(1)
		}
		defer closeDebug()
		fmt.Printf("measured: debug endpoints (pprof, /telemetryz) on http://%s\n", dbgBound)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "measured: draining %d in-flight batches (signal again to force quit)\n",
		srv.InFlight())
	done := make(chan struct{})
	go func() { //glint:ignore rawgo -- shutdown drain waiter, not a search path; must race the second signal
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		_ = srv.DrainAndClose(dctx) // exiting either way; drain errors are cosmetic
		close(done)
	}()
	select {
	case <-done:
		fmt.Fprintln(os.Stderr, "measured: drained, bye")
	case <-sig:
		fmt.Fprintln(os.Stderr, "measured: forced shutdown")
		_ = srv.Close() // forced shutdown; close errors are cosmetic
	}
	if traceFile != nil {
		if terr := tracer.Err(); terr != nil {
			fmt.Fprintln(os.Stderr, "measured: trace:", terr)
		}
		if cerr := traceFile.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "measured: trace:", cerr)
		}
	}
}
