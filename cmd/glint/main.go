// Command glint runs the project's static-analysis suite (internal/analysis)
// over every package in the module. It is stdlib-only: packages are parsed
// with go/parser and type-checked with go/types against $GOROOT/src, so it
// needs no network, no compiled export data, and no external tools.
//
// Findings print one per line as
//
//	file:line: [rule] message
//
// and any finding makes the process exit 1 (2 on load/usage errors). A
// finding is waived by an inline directive on the offending line or the
// line above it:
//
//	//glint:ignore rule -- reason
//
// The reason is mandatory and stale directives are themselves reported.
//
// Usage:
//
//	glint [-rules determinism,rawgo,...] [-list] [dir]
//
// dir defaults to the current directory; glint walks up from it to the
// enclosing go.mod and analyzes the whole module.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/neuralcompile/glimpse/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glint:", err)
		os.Exit(2)
	}
	analyzers, err := analysis.ByName(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glint:", err)
		os.Exit(2)
	}
	findings := analysis.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "glint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}
