// Command glint runs the project's static-analysis suite (internal/analysis)
// over every package in the module. It is stdlib-only: packages are parsed
// with go/parser and type-checked with go/types against $GOROOT/src, so it
// needs no network, no compiled export data, and no external tools.
//
// Findings print one per line as
//
//	file:line: [rule] message
//
// (or as a JSON array with -format json, or as GitHub workflow annotations
// with -format github). Exit codes are part of the contract: 0 means the
// module is clean, 1 means findings, 2 means glint itself failed (usage,
// load, or type-check error). A finding is waived by an inline directive on
// the offending line or the line above it:
//
//	//glint:ignore rule -- reason
//
// The reason is mandatory and stale directives are themselves reported.
//
// Usage:
//
//	glint [-rules determinism,rawgo,...] [-format text|json|github] [-v] [-list] [dir]
//
// dir defaults to the current directory; glint walks up from it to the
// enclosing go.mod and analyzes the whole module. -v reports load time and
// per-rule wall time on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/neuralcompile/glimpse/internal/analysis"
)

// jsonFinding is the stable wire form of one finding, consumed by CI (the
// uploaded artifact and the annotation step).
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run())
}

func run() int {
	rules := flag.String("rules", "", "comma-separated rules to run (default: all)")
	format := flag.String("format", "text", "output format: text, json, or github (workflow annotations)")
	verbose := flag.Bool("v", false, "report load time and per-rule wall time on stderr")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "glint: unknown format %q (want text, json, or github)\n", *format)
		return 2
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glint:", err)
		return 2
	}
	analyzers, err := analysis.ByName(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glint:", err)
		return 2
	}
	loadStart := time.Now()
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glint:", err)
		return 2
	}
	loadTime := time.Since(loadStart)
	findings, times := analysis.RunAnalyzersTimed(pkgs, analyzers)
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "glint: loaded %d packages in %v\n", len(pkgs), loadTime.Round(time.Millisecond))
		for _, rt := range times {
			fmt.Fprintf(os.Stderr, "glint: rule %-12s %v\n", rt.Name, rt.Elapsed.Round(time.Microsecond))
		}
	}

	switch *format {
	case "json":
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Rule: f.Rule, Message: f.Msg})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "glint:", err)
			return 2
		}
	case "github":
		for _, f := range findings {
			fmt.Printf("::error file=%s,line=%d,title=glint %s::%s\n",
				f.Pos.Filename, f.Pos.Line, f.Rule, escapeAnnotation(f.Msg))
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "glint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// escapeAnnotation encodes the characters the workflow-command parser
// treats specially in annotation messages.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}
