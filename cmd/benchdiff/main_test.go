package main

import (
	"strings"
	"testing"
)

func TestDiffVerdicts(t *testing.T) {
	base := []record{
		{Name: "Steady", NsPerOp: 100, AllocsOp: 2},
		{Name: "Slower", NsPerOp: 100, AllocsOp: 2},
		{Name: "Allocy", NsPerOp: 100, AllocsOp: 2},
		{Name: "Both", NsPerOp: 100, AllocsOp: 2},
		{Name: "TinyNoise", NsPerOp: 4, AllocsOp: 0},
		{Name: "Gone", NsPerOp: 50, AllocsOp: 1},
	}
	fresh := []record{
		{Name: "Steady", NsPerOp: 115, AllocsOp: 2},  // +15% < threshold
		{Name: "Slower", NsPerOp: 150, AllocsOp: 2},  // +50% time
		{Name: "Allocy", NsPerOp: 100, AllocsOp: 3},  // +50% allocs
		{Name: "Both", NsPerOp: 200, AllocsOp: 4},    // both
		{Name: "TinyNoise", NsPerOp: 8, AllocsOp: 0}, // +100% but below floor
		{Name: "Fresh", NsPerOp: 1000, AllocsOp: 10}, // not in baseline
	}
	table, regressions := diff(base, fresh, 0.20, 20)
	if regressions != 3 {
		t.Fatalf("regressions = %d, want 3 (Slower, Allocy, Both):\n%s", regressions, table.String())
	}
	out := table.String()
	checks := map[string]string{
		"Steady":    "ok",
		"Slower":    "REGRESSED (time)",
		"Allocy":    "REGRESSED (allocs)",
		"Both":      "REGRESSED (time, allocs)",
		"TinyNoise": "ok",
		"Fresh":     "new",
		"Gone":      "missing from fresh run",
	}
	for _, line := range strings.Split(out, "\n") {
		for name, verdict := range checks {
			if !strings.Contains(line, name) {
				continue
			}
			if !strings.Contains(line, verdict) {
				t.Fatalf("%s: want verdict %q in line %q", name, verdict, line)
			}
			delete(checks, name)
		}
	}
	if len(checks) != 0 {
		t.Fatalf("rows missing from the table: %v\n%s", checks, out)
	}
}

// TestDiffAllocGrowthNeedsAbsoluteIncrease: the alloc gate requires the
// count to actually grow — a 0→0 or equal count can never regress, even
// though 0*(1+threshold) == 0.
func TestDiffAllocGrowthNeedsAbsoluteIncrease(t *testing.T) {
	base := []record{{Name: "ZeroAlloc", NsPerOp: 5, AllocsOp: 0}}
	fresh := []record{{Name: "ZeroAlloc", NsPerOp: 5, AllocsOp: 0}}
	if _, n := diff(base, fresh, 0.20, 20); n != 0 {
		t.Fatalf("zero-alloc steady state flagged as regression (%d)", n)
	}
	fresh[0].AllocsOp = 1
	if _, n := diff(base, fresh, 0.20, 20); n != 1 {
		t.Fatal("0 -> 1 alloc growth must regress")
	}
}

func TestDecodeRecordsRejectsEmpty(t *testing.T) {
	if _, err := decodeRecords(strings.NewReader("[]"), "x"); err == nil {
		t.Fatal("empty record list accepted")
	}
	if _, err := decodeRecords(strings.NewReader("{"), "x"); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	recs, err := decodeRecords(strings.NewReader(`[{"name":"A","ns_per_op":3}]`), "x")
	if err != nil || len(recs) != 1 || recs[0].Name != "A" {
		t.Fatalf("decode: %v %+v", err, recs)
	}
}
