// Command benchdiff compares a fresh benchmark run (benchjson output)
// against a committed baseline and fails when a benchmark regressed.
//
// Usage:
//
//	go test -bench ... | benchjson | benchdiff -baseline BENCH_obs.json
//	benchdiff -baseline BENCH_obs.json fresh.json
//
// A benchmark regresses when its fresh ns/op exceeds the baseline by more
// than -threshold (default 20%) and the absolute time is above -floor-ns
// (sub-floor benchmarks are timer-resolution noise), or when its allocs/op
// grew by more than the same threshold. Benchmarks present in only one
// side are reported but never fail the diff — CI machines differ, new
// benchmarks appear, and the gate should only trip on like-for-like
// regressions. Exit status 1 means at least one regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/neuralcompile/glimpse/internal/metrics"
)

// record mirrors the benchjson output schema (cmd/benchjson).
type record struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON (benchjson output); required")
	threshold := flag.Float64("threshold", 0.20, "relative regression tolerance (0.20 = +20%)")
	floorNS := flag.Float64("floor-ns", 20, "ignore ns/op regressions entirely below this absolute time")
	flag.Parse()
	if *baseline == "" {
		fail(fmt.Errorf("-baseline is required"))
	}

	base, err := readRecords(*baseline)
	if err != nil {
		fail(err)
	}
	var fresh []record
	if flag.NArg() > 0 {
		fresh, err = readRecords(flag.Arg(0))
	} else {
		fresh, err = decodeRecords(os.Stdin, "stdin")
	}
	if err != nil {
		fail(err)
	}

	table, regressions := diff(base, fresh, *threshold, *floorNS)
	fmt.Print(table.String())
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
}

// diff compares fresh records to the baseline by name and returns the
// rendered comparison plus the number of regressions.
func diff(base, fresh []record, threshold, floorNS float64) (*metrics.Table, int) {
	byName := map[string]record{}
	for _, b := range base {
		byName[b.Name] = b
	}
	seen := map[string]bool{}
	table := metrics.NewTable("Benchmark diff",
		"benchmark", "base ns/op", "fresh ns/op", "delta", "base allocs", "fresh allocs", "verdict")
	regressions := 0
	for _, f := range fresh {
		b, ok := byName[f.Name]
		if !ok {
			table.AddRow(f.Name, "-", fmt.Sprintf("%.4g", f.NsPerOp), "-", "-",
				fmt.Sprintf("%.0f", f.AllocsOp), "new")
			continue
		}
		seen[f.Name] = true
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (f.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		verdict := "ok"
		nsBad := f.NsPerOp > b.NsPerOp*(1+threshold) && f.NsPerOp > floorNS
		allocBad := f.AllocsOp > b.AllocsOp*(1+threshold) && f.AllocsOp > b.AllocsOp
		switch {
		case nsBad && allocBad:
			verdict = "REGRESSED (time, allocs)"
		case nsBad:
			verdict = "REGRESSED (time)"
		case allocBad:
			verdict = "REGRESSED (allocs)"
		}
		if verdict != "ok" {
			regressions++
		}
		table.AddRow(f.Name,
			fmt.Sprintf("%.4g", b.NsPerOp), fmt.Sprintf("%.4g", f.NsPerOp),
			fmt.Sprintf("%+.1f%%", delta*100),
			fmt.Sprintf("%.0f", b.AllocsOp), fmt.Sprintf("%.0f", f.AllocsOp),
			verdict)
	}
	for _, b := range base {
		if !seen[b.Name] {
			// In the baseline but not the fresh run (filtered by the
			// -bench regex, perhaps). Informational only.
			table.AddRow(b.Name, fmt.Sprintf("%.4g", b.NsPerOp), "-", "-",
				fmt.Sprintf("%.0f", b.AllocsOp), "-", "missing from fresh run")
			seen[b.Name] = true
		}
	}
	return table, regressions
}

func readRecords(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeRecords(f, path)
}

func decodeRecords(r io.Reader, name string) ([]record, error) {
	var recs []record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark records", name)
	}
	return recs, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
