// Command glimpsetop is a live terminal view of a running glimpsed
// daemon: it polls GET /telemetryz and redraws a dashboard of service
// shape (sessions, queue, drain state), per-tenant spend against budget,
// SLO error-budget burn, per-tenant latency percentiles (queue wait,
// time-to-first-progress, step), and outcome counters.
//
// Usage:
//
//	glimpsetop [-server http://127.0.0.1:8743] [-interval 2s] [-once]
//
// -once fetches and prints a single frame without clearing the screen
// (useful for scripts and tests); otherwise glimpsetop redraws every
// interval until interrupted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/server"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// topView mirrors the server's /telemetryz body (server.telemetryView).
type topView struct {
	Draining bool                `json:"draining"`
	Sessions int                 `json:"sessions"`
	Queued   int                 `json:"queued"`
	Running  int                 `json:"running"`
	Jobs     int                 `json:"jobs"`
	Tenants  []tuner.TenantSpend `json:"tenants"`
	SLOs     []server.SLOStatus  `json:"slos"`
	Metrics  telemetry.Snapshot  `json:"metrics"`
}

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8743", "glimpsed base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	base := strings.TrimRight(*serverURL, "/")

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		view, err := fetch(ctx, base)
		switch {
		case err != nil && ctx.Err() != nil:
			return
		case err != nil:
			fmt.Fprintln(os.Stderr, "glimpsetop:", err)
			if *once {
				os.Exit(1)
			}
		default:
			if !*once {
				fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
			}
			fmt.Print(render(base, view))
		}
		if *once {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// fetch polls one /telemetryz frame, honoring ctx for cancellation so an
// interrupt mid-request exits promptly.
func fetch(ctx context.Context, base string) (topView, error) {
	var v topView
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/telemetryz", nil)
	if err != nil {
		return v, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return v, fmt.Errorf("/telemetryz: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, fmt.Errorf("/telemetryz: %w", err)
	}
	return v, nil
}

// tenantRow is the per-tenant slice of the metrics snapshot: latency
// histograms and outcome counters regrouped from the labeled families.
type tenantRow struct {
	hists    map[string]telemetry.HistogramSnap // family -> snap
	counters map[string]float64                 // family -> value
}

// regroup indexes the labeled metric families by tenant. Families without
// a tenant label are skipped — glimpsetop shows the per-tenant view.
func regroup(m telemetry.Snapshot) (map[string]*tenantRow, []string) {
	rows := map[string]*tenantRow{}
	row := func(tenant string) *tenantRow {
		r, ok := rows[tenant]
		if !ok {
			r = &tenantRow{hists: map[string]telemetry.HistogramSnap{}, counters: map[string]float64{}}
			rows[tenant] = r
		}
		return r
	}
	for _, h := range m.Histograms {
		if family, tenant := telemetry.SplitLabel(h.Name); tenant != "" {
			row(tenant).hists[family] = h
		}
	}
	for _, c := range m.Counters {
		if family, tenant := telemetry.SplitLabel(c.Name); tenant != "" {
			row(tenant).counters[family] = c.Value
		}
	}
	for _, c := range m.Floats {
		if family, tenant := telemetry.SplitLabel(c.Name); tenant != "" {
			row(tenant).counters[family] = c.Value
		}
	}
	tenants := make([]string, 0, len(rows))
	for t := range rows {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	return rows, tenants
}

func pctCell(h telemetry.HistogramSnap, ok bool) string {
	if !ok || h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f/%.1f/%.1f", h.P50, h.P90, h.P99)
}

// render draws one dashboard frame. It is a pure function of the fetched
// view, so tests drive it directly.
func render(base string, v topView) string {
	var w strings.Builder
	state := ""
	if v.Draining {
		state = "  DRAINING"
	}
	fmt.Fprintf(&w, "glimpsed %s — sessions %d  running %d  queued %d  jobs %d%s\n\n",
		base, v.Sessions, v.Running, v.Queued, v.Jobs, state)

	if len(v.Tenants) > 0 {
		t := metrics.NewTable("Tenants", "tenant", "jobs", "meas", "gpu-s", "budget", "used")
		for _, ts := range v.Tenants {
			used := "-"
			if ts.BudgetGPUSeconds > 0 {
				used = fmt.Sprintf("%.0f%%", 100*ts.GPUSeconds/ts.BudgetGPUSeconds)
			}
			budget := "-"
			if ts.BudgetGPUSeconds > 0 {
				budget = fmt.Sprintf("%.1f", ts.BudgetGPUSeconds)
			}
			t.AddRowf(ts.Tenant, ts.Jobs, ts.Measurements,
				fmt.Sprintf("%.3f", ts.GPUSeconds), budget, used)
		}
		w.WriteString(t.String())
	}

	if len(v.SLOs) > 0 {
		t := metrics.NewTable("SLOs", "objective", "target", "good", "total", "bad", "burn", "")
		for _, s := range v.SLOs {
			warn := ""
			if s.Burn > 1 {
				warn = "OVER BUDGET"
			}
			t.AddRowf(s.Name, fmt.Sprintf("%.4g", s.Objective), s.Good, s.Total,
				fmt.Sprintf("%.4g", s.BadFraction), fmt.Sprintf("%.2f", s.Burn), warn)
		}
		w.WriteString(t.String())
	}

	rows, tenants := regroup(v.Metrics)
	if len(tenants) == 0 {
		return w.String()
	}
	lat := metrics.NewTable("Latency ms (p50/p90/p99)", "tenant", "queue wait", "ttfp", "step")
	cnt := metrics.NewTable("Counters", "tenant", "done", "failed", "preempted", "cache hits", "rejected", "gpu-s")
	for _, tenant := range tenants {
		r := rows[tenant]
		qw, qok := r.hists["glimpsed_queue_wait_ms"]
		tf, tok := r.hists["glimpsed_ttfp_ms"]
		st, sok := r.hists["glimpsed_step_ms"]
		lat.AddRow(tenant, pctCell(qw, qok), pctCell(tf, tok), pctCell(st, sok))
		cnt.AddRowf(tenant,
			int(r.counters["glimpsed_jobs_done"]),
			int(r.counters["glimpsed_jobs_failed"]),
			int(r.counters["glimpsed_preemptions"]),
			int(r.counters["glimpsed_cache_hits"]),
			int(r.counters["glimpsed_admission_rejected"]),
			fmt.Sprintf("%.3f", r.counters["glimpsed_gpu_seconds"]))
	}
	w.WriteString(lat.String())
	w.WriteString(cnt.String())
	return w.String()
}
