package main

import (
	"strings"
	"testing"

	"github.com/neuralcompile/glimpse/internal/server"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// fakeView fabricates a /telemetryz frame with two tenants, an SLO over
// its error budget, and labeled latency/outcome families.
func fakeView() topView {
	reg := telemetry.NewRegistry()
	for _, tenant := range []string{"acme", "beta"} {
		h := reg.Histogram(telemetry.Labeled("glimpsed_ttfp_ms", "tenant", tenant), telemetry.LatencyBoundsMS())
		for i := 0; i < 10; i++ {
			h.Observe(4)
		}
		reg.Counter(telemetry.Labeled("glimpsed_jobs_done", "tenant", tenant)).Add(3)
		reg.FloatCounter(telemetry.Labeled("glimpsed_gpu_seconds", "tenant", tenant)).Add(1.5)
	}
	reg.Counter(telemetry.Labeled("glimpsed_jobs_failed", "tenant", "beta")).Add(2)
	reg.Counter("unlabeled_total").Add(9) // must not create a tenant row
	return topView{
		Draining: true,
		Sessions: 4, Running: 2, Queued: 5, Jobs: 12,
		Tenants: []tuner.TenantSpend{
			{Tenant: "acme", Jobs: 3, Measurements: 96, GPUSeconds: 1.5, BudgetGPUSeconds: 2},
			{Tenant: "beta", Jobs: 3, Measurements: 80, GPUSeconds: 1.5},
		},
		SLOs: []server.SLOStatus{
			{Name: "ttfp_latency", Objective: 0.99, Good: 90, Total: 100, BadFraction: 0.1, Burn: 10},
			{Name: "availability", Objective: 0.95, Good: 100, Total: 100},
		},
		Metrics: reg.Snapshot(),
	}
}

func TestRenderDashboard(t *testing.T) {
	out := render("http://x:1", fakeView())
	for _, s := range []string{
		"glimpsed http://x:1 — sessions 4  running 2  queued 5  jobs 12  DRAINING",
		"Tenants", "acme", "beta", "75%", // 1.5 of 2 budget
		"SLOs", "ttfp_latency", "OVER BUDGET",
		"Latency ms (p50/p90/p99)",
		"Counters",
	} {
		if !strings.Contains(out, s) {
			t.Fatalf("render missing %q:\n%s", s, out)
		}
	}
	// The unbudgeted tenant shows "-" for budget/used, and availability is
	// inside budget so the warn cell stays empty.
	if strings.Count(out, "OVER BUDGET") != 1 {
		t.Fatalf("OVER BUDGET should flag exactly the burning SLO:\n%s", out)
	}
}

func TestRegroupSkipsUnlabeled(t *testing.T) {
	rows, tenants := regroup(fakeView().Metrics)
	if len(tenants) != 2 || tenants[0] != "acme" || tenants[1] != "beta" {
		t.Fatalf("tenants = %v", tenants)
	}
	acme := rows["acme"]
	if acme.counters["glimpsed_jobs_done"] != 3 || acme.counters["glimpsed_gpu_seconds"] != 1.5 {
		t.Fatalf("acme counters: %+v", acme.counters)
	}
	h, ok := acme.hists["glimpsed_ttfp_ms"]
	if !ok || h.Count != 10 {
		t.Fatalf("acme ttfp hist: %+v ok=%v", h, ok)
	}
	if pctCell(h, ok) == "-" {
		t.Fatal("populated histogram rendered as empty cell")
	}
	if got := pctCell(telemetry.HistogramSnap{}, false); got != "-" {
		t.Fatalf("missing histogram cell = %q", got)
	}
	if rows["beta"].counters["glimpsed_jobs_failed"] != 2 {
		t.Fatalf("beta counters: %+v", rows["beta"].counters)
	}
}

// TestRenderEmptyView: a fresh daemon with no tenants yet must still
// render the header line without panicking on empty sections.
func TestRenderEmptyView(t *testing.T) {
	out := render("http://x:1", topView{Sessions: 2})
	if !strings.Contains(out, "sessions 2") || strings.Contains(out, "Tenants") {
		t.Fatalf("empty view render:\n%s", out)
	}
}
