// Command tracereport aggregates a JSONL span trace (written by
// cmd/glimpse -trace, cmd/experiments -trace, or cmd/fleet -trace) into a
// per-stage time breakdown: span counts, total/mean/min/max durations, and
// each stage's share of traced time, plus point-event counts.
//
// Usage:
//
//	tracereport trace.jsonl
//	tracereport < trace.jsonl
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tlog"
)

func main() {
	var in io.Reader = os.Stdin
	name := "stdin"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
		name = os.Args[1]
	}
	table, err := report(in, name)
	if err != nil {
		fail(err)
	}
	fmt.Print(table.String())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracereport:", err)
	os.Exit(1)
}

// stageAgg accumulates one stage's spans and events.
type stageAgg struct {
	spans    int
	events   int
	totalUS  int64
	minUS    int64
	maxUS    int64
	hasSpans bool
}

// aggregate folds a JSONL trace into per-stage aggregates. It tolerates a
// truncated final line (a tracer killed mid-write) like every JSONL reader
// in this repository.
func aggregate(r io.Reader) (map[string]*stageAgg, error) {
	aggs := map[string]*stageAgg{}
	err := tlog.ReadJSONLines(r, func(line []byte) error {
		var ev telemetry.SpanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		if ev.Stage == "" {
			return fmt.Errorf("trace record %d has no stage", ev.Seq)
		}
		a := aggs[ev.Stage]
		if a == nil {
			a = &stageAgg{}
			aggs[ev.Stage] = a
		}
		switch ev.Kind {
		case "event":
			a.events++
		default: // "span"
			a.spans++
			a.totalUS += ev.DurUS
			if !a.hasSpans || ev.DurUS < a.minUS {
				a.minUS = ev.DurUS
			}
			if !a.hasSpans || ev.DurUS > a.maxUS {
				a.maxUS = ev.DurUS
			}
			a.hasSpans = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("trace is empty")
	}
	return aggs, nil
}

// report renders the aggregate breakdown, stages sorted by total time
// (ties by name so output is reproducible).
func report(r io.Reader, name string) (*metrics.Table, error) {
	aggs, err := aggregate(r)
	if err != nil {
		return nil, err
	}
	stages := make([]string, 0, len(aggs))
	grand := int64(0)
	for s, a := range aggs {
		stages = append(stages, s)
		grand += a.totalUS
	}
	sort.Slice(stages, func(i, j int) bool {
		ti, tj := aggs[stages[i]].totalUS, aggs[stages[j]].totalUS
		if ti != tj {
			return ti > tj
		}
		return stages[i] < stages[j]
	})

	table := metrics.NewTable(
		fmt.Sprintf("Trace breakdown: %s", name),
		"stage", "spans", "events", "total ms", "mean ms", "min ms", "max ms", "share")
	for _, s := range stages {
		a := aggs[s]
		mean := 0.0
		if a.spans > 0 {
			mean = float64(a.totalUS) / float64(a.spans) / 1e3
		}
		share := 0.0
		if grand > 0 {
			share = 100 * float64(a.totalUS) / float64(grand)
		}
		table.AddRowf(s, a.spans, a.events,
			fmt.Sprintf("%.3f", float64(a.totalUS)/1e3),
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", float64(a.minUS)/1e3),
			fmt.Sprintf("%.3f", float64(a.maxUS)/1e3),
			fmt.Sprintf("%.1f%%", share))
	}
	return table, nil
}
