// Command tracereport aggregates a JSONL span trace (written by
// cmd/glimpse -trace, cmd/experiments -trace, or cmd/fleet -trace) into a
// per-stage time breakdown: span counts, total/mean/min/max durations, and
// each stage's share of traced time, plus point-event counts.
//
// Usage:
//
//	tracereport trace.jsonl
//	tracereport < trace.jsonl
//	tracereport -merge [-job j1] glimpsed.jsonl ep0.jsonl ep1.jsonl
//
// -merge assembles multiple per-process trace files (glimpsed plus every
// measured endpoint) into one tree per TraceID using the propagated
// SpanID/ParentID edges — never timestamps, since the processes' clocks
// share no origin. For each trace it prints the span tree, a per-stage
// rollup with bucket-interpolated p50/p90/p99 latencies, and the critical
// path (queue wait → job → step → measure → rpc_measure) that bounded the
// job's latency. -job keeps only that job's trace. Each file's process
// label is its basename without extension.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tlog"
)

func main() {
	merge := flag.Bool("merge", false, "assemble multiple per-process trace files into cross-process trace trees")
	job := flag.String("job", "", "with -merge: report only the trace for this job ID")
	flag.Parse()

	if *merge {
		if err := runMerge(flag.Args(), *job, os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	table, err := report(in, name)
	if err != nil {
		fail(err)
	}
	fmt.Print(table.String())
}

// runMerge reads each file as one process's trace log and reports every
// assembled trace (or just the -job one).
func runMerge(paths []string, job string, out io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs at least one trace file")
	}
	var procs []telemetry.ProcTrace
	for _, path := range paths {
		events, err := readTrace(path)
		if err != nil {
			return err
		}
		base := filepath.Base(path)
		procs = append(procs, telemetry.ProcTrace{
			Proc:   strings.TrimSuffix(base, filepath.Ext(base)),
			Events: events,
		})
	}
	traces := telemetry.MergeTraces(procs)
	if job != "" {
		kept := traces[:0]
		for _, t := range traces {
			if t.JobID == job {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	if len(traces) == 0 {
		return fmt.Errorf("no cross-process traces found (were the files written with -trace?)")
	}
	var b strings.Builder
	for i, t := range traces {
		if i > 0 {
			b.WriteByte('\n')
		}
		printMerged(&b, t)
	}
	_, err := io.WriteString(out, b.String())
	return err
}

func readTrace(path string) ([]telemetry.SpanEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []telemetry.SpanEvent
	rerr := tlog.ReadJSONLines(f, func(line []byte) error {
		var ev telemetry.SpanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		events = append(events, ev)
		return nil
	})
	if rerr != nil {
		return nil, fmt.Errorf("%s: %w", path, rerr)
	}
	return events, nil
}

func printMerged(out *strings.Builder, t *telemetry.MergedTrace) {
	head := fmt.Sprintf("Trace %s", t.TraceID)
	if t.JobID != "" {
		head += fmt.Sprintf(" (job %s", t.JobID)
		if t.Tenant != "" {
			head += fmt.Sprintf(", tenant %s", t.Tenant)
		}
		head += ")"
	}
	fmt.Fprintf(out, "%s — procs: %s; %d spans, %d events\n",
		head, strings.Join(t.Procs, ", "), t.Spans, t.Events)
	for _, r := range t.Roots {
		printSpanTree(out, r, 1)
	}

	// Per-stage rollup. Percentiles come from a latency histogram per
	// stage — the same bucket-interpolated estimator (HistogramSnap.
	// Quantile) the service uses on /metricsz, not a re-implementation.
	reg := telemetry.NewRegistry()
	var collect func(n *telemetry.MergedSpan)
	collect = func(n *telemetry.MergedSpan) {
		if n.Event.Kind == "span" {
			reg.Histogram(n.Event.Stage, telemetry.LatencyBoundsMS()).
				Observe(float64(n.Event.DurUS) / 1e3)
		}
		for _, c := range n.Children {
			collect(c)
		}
	}
	for _, r := range t.Roots {
		collect(r)
	}
	snaps := map[string]telemetry.HistogramSnap{}
	for _, h := range reg.Snapshot().Histograms {
		snaps[h.Name] = h
	}
	table := metrics.NewTable("Stage rollup",
		"stage", "spans", "events", "total ms", "self ms", "max ms", "p50", "p90", "p99")
	for _, st := range t.StageRollup() {
		h := snaps[st.Stage]
		table.AddRowf(st.Stage, st.Spans, st.Events,
			fmt.Sprintf("%.3f", float64(st.TotalUS)/1e3),
			fmt.Sprintf("%.3f", float64(st.SelfUS)/1e3),
			fmt.Sprintf("%.3f", float64(st.MaxUS)/1e3),
			fmt.Sprintf("%.3f", h.P50),
			fmt.Sprintf("%.3f", h.P90),
			fmt.Sprintf("%.3f", h.P99))
	}
	out.WriteString(table.String())

	if path := t.CriticalPath(); len(path) > 0 {
		fmt.Fprintln(out, "Critical path:")
		for _, n := range path {
			fmt.Fprintf(out, "  %-16s [%s] %10.3f ms (self %.3f ms)\n",
				n.Event.Stage, n.Proc, float64(n.Event.DurUS)/1e3, float64(n.SelfUS())/1e3)
		}
	}
}

func printSpanTree(out *strings.Builder, n *telemetry.MergedSpan, depth int) {
	indent := strings.Repeat("  ", depth)
	mark := ""
	if n.Orphan {
		mark = " (orphan)"
	}
	if n.Event.Kind == "span" {
		fmt.Fprintf(out, "%s%-*s [%s] %10.3f ms%s\n",
			indent, 28-2*depth, n.Event.Stage, n.Proc, float64(n.Event.DurUS)/1e3, mark)
	} else {
		detail := n.Event.Stage
		if ev, ok := n.Event.Attrs["event"].(string); ok {
			detail = ev
		}
		fmt.Fprintf(out, "%s· %s [%s]%s\n", indent, detail, n.Proc, mark)
	}
	for _, c := range n.Children {
		printSpanTree(out, c, depth+1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracereport:", err)
	os.Exit(1)
}

// stageAgg accumulates one stage's spans and events.
type stageAgg struct {
	spans    int
	events   int
	totalUS  int64
	minUS    int64
	maxUS    int64
	hasSpans bool
}

// aggregate folds a JSONL trace into per-stage aggregates. It tolerates a
// truncated final line (a tracer killed mid-write) like every JSONL reader
// in this repository.
func aggregate(r io.Reader) (map[string]*stageAgg, error) {
	aggs := map[string]*stageAgg{}
	err := tlog.ReadJSONLines(r, func(line []byte) error {
		var ev telemetry.SpanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		if ev.Stage == "" {
			return fmt.Errorf("trace record %d has no stage", ev.Seq)
		}
		a := aggs[ev.Stage]
		if a == nil {
			a = &stageAgg{}
			aggs[ev.Stage] = a
		}
		switch ev.Kind {
		case "event":
			a.events++
		default: // "span"
			a.spans++
			a.totalUS += ev.DurUS
			if !a.hasSpans || ev.DurUS < a.minUS {
				a.minUS = ev.DurUS
			}
			if !a.hasSpans || ev.DurUS > a.maxUS {
				a.maxUS = ev.DurUS
			}
			a.hasSpans = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("trace is empty")
	}
	return aggs, nil
}

// report renders the aggregate breakdown, stages sorted by total time
// (ties by name so output is reproducible).
func report(r io.Reader, name string) (*metrics.Table, error) {
	aggs, err := aggregate(r)
	if err != nil {
		return nil, err
	}
	stages := make([]string, 0, len(aggs))
	grand := int64(0)
	for s, a := range aggs {
		stages = append(stages, s)
		grand += a.totalUS
	}
	sort.Slice(stages, func(i, j int) bool {
		ti, tj := aggs[stages[i]].totalUS, aggs[stages[j]].totalUS
		if ti != tj {
			return ti > tj
		}
		return stages[i] < stages[j]
	})

	table := metrics.NewTable(
		fmt.Sprintf("Trace breakdown: %s", name),
		"stage", "spans", "events", "total ms", "mean ms", "min ms", "max ms", "share")
	for _, s := range stages {
		a := aggs[s]
		mean := 0.0
		if a.spans > 0 {
			mean = float64(a.totalUS) / float64(a.spans) / 1e3
		}
		share := 0.0
		if grand > 0 {
			share = 100 * float64(a.totalUS) / float64(grand)
		}
		table.AddRowf(s, a.spans, a.events,
			fmt.Sprintf("%.3f", float64(a.totalUS)/1e3),
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", float64(a.minUS)/1e3),
			fmt.Sprintf("%.3f", float64(a.maxUS)/1e3),
			fmt.Sprintf("%.1f%%", share))
	}
	return table, nil
}
