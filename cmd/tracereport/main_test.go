package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/telemetry"
)

// buildTrace writes a small deterministic trace: two anneal spans (2ms,
// 4ms), one measure span (1ms), and one measure event.
func buildTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	clk := telemetry.NewFakeClock(time.Unix(0, 0))
	tr := telemetry.NewTracer(&buf, clk)

	sp := tr.Start(telemetry.StageAnneal)
	clk.Advance(2 * time.Millisecond)
	sp.End()

	sp = tr.Start(telemetry.StageAnneal)
	clk.Advance(4 * time.Millisecond)
	sp.End()

	sp = tr.Start(telemetry.StageMeasure)
	clk.Advance(time.Millisecond)
	sp.End()

	tr.Event(telemetry.StageMeasure, map[string]any{"event": "retry"})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAggregate(t *testing.T) {
	aggs, err := aggregate(bytes.NewReader(buildTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	an := aggs[telemetry.StageAnneal]
	if an == nil || an.spans != 2 || an.events != 0 {
		t.Fatalf("anneal agg = %+v", an)
	}
	if an.totalUS != 6000 || an.minUS != 2000 || an.maxUS != 4000 {
		t.Fatalf("anneal timing = %+v", an)
	}
	me := aggs[telemetry.StageMeasure]
	if me == nil || me.spans != 1 || me.events != 1 || me.totalUS != 1000 {
		t.Fatalf("measure agg = %+v", me)
	}
}

func TestReportRendersStagesByTotalTime(t *testing.T) {
	table, err := report(bytes.NewReader(buildTrace(t)), "test")
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	for _, want := range []string{"anneal", "measure", "85.7%", "14.3%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// anneal (6ms) must come before measure (1ms).
	if strings.Index(out, "anneal") > strings.Index(out, "measure") {
		t.Fatalf("stages not sorted by total time:\n%s", out)
	}
}

func TestAggregateToleratesTruncatedTail(t *testing.T) {
	trace := buildTrace(t)
	// Simulate a tracer killed mid-append: chop the final line in half.
	cut := trace[:len(trace)-8]
	aggs, err := aggregate(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated tail rejected: %v", err)
	}
	if aggs[telemetry.StageAnneal].spans != 2 {
		t.Fatalf("lost full spans to a torn tail: %+v", aggs)
	}
}

func TestAggregateRejectsEmptyAndGarbage(t *testing.T) {
	if _, err := aggregate(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := aggregate(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
