// Command blueprintctl inspects the GPU datasheet registry and Blueprint
// embeddings.
//
// Usage:
//
//	blueprintctl list                 # all known GPUs
//	blueprintctl show  <gpu>          # one GPU's datasheet features
//	blueprintctl embed <gpu> [-dim N] # its Blueprint vector
//	blueprintctl dse                  # the Fig. 8 size/loss sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/metrics"
)

func main() {
	dim := flag.Int("dim", 0, "Blueprint dimension (0 = Fig. 8 knee)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "list":
		t := metrics.NewTable("Known GPUs", "name", "generation", "gencode", "SMs", "peak GFLOPS", "mem GB/s")
		for _, s := range hwspec.Registry() {
			t.AddRowf(s.Name, s.Generation, s.Gencode, s.SMCount,
				fmt.Sprintf("%.0f", s.PeakGFLOPS), fmt.Sprintf("%.0f", s.MemBWGBs))
		}
		fmt.Print(t.String())
	case "show":
		if len(args) < 2 {
			usage()
		}
		s, err := hwspec.ByName(args[1])
		if err != nil {
			fail(err)
		}
		t := metrics.NewTable(fmt.Sprintf("Datasheet: %s (%s, %s)", s.Name, s.Generation, s.Gencode),
			"feature", "value")
		names := hwspec.FeatureNames()
		for i, v := range s.FeatureVector() {
			t.AddRowf(names[i], v)
		}
		fmt.Print(t.String())
	case "embed":
		if len(args) < 2 {
			usage()
		}
		s, err := hwspec.ByName(args[1])
		if err != nil {
			fail(err)
		}
		d := *dim
		if d <= 0 {
			d = blueprint.DefaultDim()
		}
		emb, err := blueprint.Build(hwspec.Registry(), d)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Blueprint(%s), dim=%d, explained variance %.4f:\n", s.Name, d, emb.ExplainedVariance())
		for i, v := range emb.Embed(s) {
			fmt.Printf("  pc%-2d %+.4f\n", i+1, v)
		}
	case "dse":
		points, err := blueprint.DSE(hwspec.Registry())
		if err != nil {
			fail(err)
		}
		t := metrics.NewTable("Blueprint DSE (Fig. 8)", "dim", "size %", "info loss", "explained")
		for _, p := range points {
			t.AddRowf(p.Dim, fmt.Sprintf("%.0f%%", 100*p.RelativeSize),
				fmt.Sprintf("%.5f", p.Loss), fmt.Sprintf("%.4f", p.Explained))
		}
		fmt.Print(t.String())
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: blueprintctl [flags] list | show <gpu> | embed <gpu> | dse")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blueprintctl:", err)
	os.Exit(1)
}
