// Command fleet tunes a model across a fleet of GPUs and writes one
// deployment plan (best schedule + kernel per task, end-to-end latency)
// per device — the multi-hardware scenario that motivates the paper.
//
// Usage:
//
//	fleet -model resnet-18 -gpus titan-xp,rtx-3090 -tuner glimpse \
//	      -budget 128 -out plans/ [-kernels] [-artifacts dir] \
//	      [-checkpoint tune.ckpt] [-retries 3] [-batch-timeout 30s] [-workers N] \
//	      [-endpoints 200] [-shards 4] [-steal] [-speculate] \
//	      [-chaos flap] [-chaos-seed 1] [-chaos-frac 0.1] \
//	      [-trace path] [-debug-addr 127.0.0.1:6060] \
//	      [-cache path] [-warm-k 3] [-cache-readonly]
//
// -cache points at a persistent tuned-config store shared across runs and
// devices: an exact (workload, GPU) hit is served with zero measurements,
// and a first-time GPU warm-starts each task from the -warm-k nearest
// donor SKUs in Blueprint space under a shrunken budget. New bests are
// written back unless -cache-readonly is set.
//
// -trace writes a JSONL span trace (per-task tuning spans, checkpoint
// writes, measurement degradation events); aggregate with cmd/tracereport.
// -debug-addr serves net/http/pprof plus /telemetryz for live introspection
// of a long fleet run.
//
// With -endpoints N > 0 the run goes through the sharded fleet scheduler
// over N simulated measurement endpoints: targets are grouped into
// -shards Blueprint-affinity shards, -steal lets idle shards take queued
// tasks and borrow endpoints, and -speculate re-issues straggling
// measurement chunks. -chaos injects a deterministic churn schedule (see
// internal/faults) into a -chaos-frac fraction of the endpoints — the
// best-found plans are identical to a fault-free run by construction.
// With -endpoints 0 (default) the original one-device-per-GPU flat path
// runs.
//
// With -tuner glimpse, offline artifacts are trained per target (cached
// under -artifacts if given). Other tuners: autotvm, chameleon, random.
//
// Measurements run behind measure.Reliable (bounded retries with backoff,
// per-device circuit breaker, batch deadline), so a degrading device yields
// a partial plan instead of aborting the fleet. With -checkpoint, every
// completed task is recorded in a JSONL file and a rerun with the same file
// re-measures only the tasks that failed or never ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/faults"
	"github.com/neuralcompile/glimpse/internal/fleet"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	model := flag.String("model", workload.ResNet18, "model to deploy")
	gpus := flag.String("gpus", strings.Join(hwspec.Targets, ","), "comma-separated target GPUs")
	tunerName := flag.String("tuner", "glimpse", "glimpse | autotvm | chameleon | random")
	budget := flag.Int("budget", 128, "measurements per task")
	out := flag.String("out", "", "directory for per-GPU plan JSON files")
	kernels := flag.Bool("kernels", false, "embed generated kernel source in plans")
	artifacts := flag.String("artifacts", "", "toolkit cache directory (glimpse only)")
	seed := flag.Int64("seed", 1, "random seed")
	ckptPath := flag.String("checkpoint", "", "JSONL checkpoint file (resume skips recorded tasks)")
	retries := flag.Int("retries", 3, "measurement attempts per batch before giving up")
	batchTimeout := flag.Duration("batch-timeout", 30*time.Second, "deadline per measurement batch")
	workers := flag.Int("workers", runtime.NumCPU(), "goroutines for search and scoring (results are identical for any value)")
	endpoints := flag.Int("endpoints", 0, "simulated measurement endpoints for the sharded scheduler (0: legacy flat path)")
	shards := flag.Int("shards", 0, "device-group shards by Blueprint affinity (0: one shard per target GPU)")
	steal := flag.Bool("steal", true, "steal queued tasks and borrow endpoints across shards")
	speculate := flag.Bool("speculate", true, "re-issue straggling measurement chunks speculatively")
	chaos := flag.String("chaos", "none", "endpoint churn schedule: none | flap | spike | slow-degrade | crash | churn")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed fixing the chaos schedule")
	chaosFrac := flag.Float64("chaos-frac", 0.1, "fraction of endpoints the chaos schedule churns")
	tracePath := flag.String("trace", "", "write a JSONL span trace of the fleet run to this file")
	debugAddr := flag.String("debug-addr", "", "serve pprof and /telemetryz on this address (empty: disabled)")
	cachePath := flag.String("cache", "", "persistent tuned-config store (JSONL; exact hits skip tuning, misses warm-start)")
	warmK := flag.Int("warm-k", 3, "with -cache: nearest donor devices per warm start")
	cacheReadonly := flag.Bool("cache-readonly", false, "with -cache: serve and warm-start but never write")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, nil)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "fleet: trace write error:", err)
			}
		}()
	}
	if *debugAddr != "" {
		mux := telemetry.NewDebugMux(nil, map[string]telemetry.SnapshotFunc{
			"pool": func() any { return parallel.Stats() },
		})
		dbgBound, closeDebug, err := telemetry.ServeDebug(*debugAddr, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "fleet: debug endpoints (pprof, /telemetryz) on http://%s\n", dbgBound)
	}

	var targets []string
	for _, n := range strings.Split(*gpus, ",") {
		targets = append(targets, strings.TrimSpace(n))
	}
	g := rng.New(*seed)

	// For Glimpse, prepare one toolkit per target up front.
	var mu sync.Mutex
	toolkits := map[string]*core.Toolkit{}
	toolkitFor := func(gpu string) (*core.Toolkit, error) {
		mu.Lock()
		defer mu.Unlock()
		if tk, ok := toolkits[gpu]; ok {
			return tk, nil
		}
		if *artifacts != "" {
			path := filepath.Join(*artifacts, gpu+".toolkit.json")
			if tk, err := core.LoadToolkit(path); err == nil && tk.TargetName == gpu {
				fmt.Fprintf(os.Stderr, "fleet: loaded artifacts for %s\n", gpu)
				toolkits[gpu] = tk
				return tk, nil
			}
		}
		fmt.Fprintf(os.Stderr, "fleet: training artifacts for %s...\n", gpu)
		tk, err := core.TrainToolkit(gpu, core.ToolkitConfig{}, g.Split("toolkit/"+gpu))
		if err != nil {
			return nil, err
		}
		if *artifacts != "" {
			if err := os.MkdirAll(*artifacts, 0o755); err != nil {
				return nil, err
			}
			if err := tk.Save(filepath.Join(*artifacts, gpu+".toolkit.json")); err != nil {
				return nil, err
			}
		}
		toolkits[gpu] = tk
		return tk, nil
	}

	cfg := fleet.Config{
		Model:           *model,
		Budget:          tuner.Budget{MaxMeasurements: *budget, Patience: 4, Epsilon: 0.01},
		GenerateKernels: *kernels,
		Tracer:          tracer,
		NewMeasurer: func(gpu string) (measure.Measurer, error) {
			local, err := measure.NewLocal(gpu)
			if err != nil {
				return nil, err
			}
			return measure.NewReliable(measure.ReliableConfig{
				MaxAttempts:  *retries,
				BatchTimeout: *batchTimeout,
				Seed:         *seed,
				EventSink: func(e measure.Event) {
					tracer.Event(telemetry.StageMeasure, map[string]any{
						"event": e.Kind, "backend": e.Backend, "task": e.Task, "detail": e.Detail,
					})
				},
			}, local)
		},
		NewTuner: func(task workload.Task, gpu string) (tuner.Tuner, error) {
			switch *tunerName {
			case "glimpse":
				tk, err := toolkitFor(gpu)
				if err != nil {
					return nil, err
				}
				gl := tk.Tuner()
				gl.Tracer = tracer
				return gl, nil
			case "autotvm":
				return tuner.AutoTVM{}, nil
			case "chameleon":
				return tuner.Chameleon{}, nil
			case "random":
				return tuner.Random{}, nil
			default:
				return nil, fmt.Errorf("unknown tuner %q", *tunerName)
			}
		},
	}

	var store *cache.Store
	if *cachePath != "" {
		var err error
		if *cacheReadonly {
			store, err = cache.OpenReadOnly(*cachePath)
		} else {
			store, err = cache.Open(*cachePath)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		defer store.Close()
		if n := store.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "fleet: tuned-config cache: %d entries in %s\n", n, *cachePath)
		}
		cfg.Cache = store
		cfg.WarmK = *warmK
	}

	if *ckptPath != "" {
		ck, err := fleet.OpenCheckpoint(*ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		defer ck.Close()
		if n := ck.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "fleet: resuming, %d tasks already checkpointed in %s\n", n, *ckptPath)
		}
		cfg.Checkpoint = ck
	}

	var plans []*fleet.Plan
	var err error
	if *endpoints > 0 {
		scenario, serr := faults.ScenarioByName(*chaos, *chaosSeed, *endpoints, *chaosFrac, 0)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "fleet:", serr)
			os.Exit(1)
		}
		eps := make([]fleet.Endpoint, *endpoints)
		for i := range eps {
			i := i
			eps[i] = fleet.Endpoint{
				Name: fmt.Sprintf("sim-%03d", i),
				Dial: func(gpu string) (measure.Measurer, error) {
					local, err := measure.NewLocal(gpu)
					if err != nil {
						return nil, err
					}
					return scenario.Wrap(i, local), nil
				},
			}
		}
		sched, serr := fleet.NewScheduler(fleet.SchedulerConfig{
			Shards:    *shards,
			Steal:     *steal,
			Speculate: *speculate,
			Reliable: measure.ReliableConfig{
				MaxAttempts:  *retries,
				BatchTimeout: *batchTimeout,
				Seed:         *seed,
				EventSink: func(e measure.Event) {
					tracer.Event(telemetry.StageMeasure, map[string]any{
						"event": e.Kind, "backend": e.Backend, "task": e.Task, "detail": e.Detail,
					})
				},
			},
		}, eps)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "fleet:", serr)
			os.Exit(1)
		}
		if *chaos != "none" {
			fmt.Fprintf(os.Stderr, "fleet: chaos %q (seed %d, frac %.2f) on %d endpoints\n",
				*chaos, *chaosSeed, *chaosFrac, *endpoints)
		}
		plans, err = sched.Run(cfg, targets, g.Split("fleet"))
		if err == nil {
			st := sched.Stats()
			fmt.Fprintf(os.Stderr,
				"fleet: scheduler: %d tasks (%d stolen), %d chunks (%d retried), %d endpoint steals, %d speculations (%d won)\n",
				st.TasksDone, st.TasksStolen, st.Chunks, st.ChunkRetries,
				st.EndpointSteals, st.Speculations, st.SpeculativeWins)
		}
	} else {
		plans, err = fleet.TuneFleet(cfg, targets, g.Split("fleet"))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}

	table := metrics.NewTable(
		fmt.Sprintf("Deployment plans: %s via %s (%d measurements/task)", *model, *tunerName, *budget),
		"gpu", "latency ms", "GPU s", "measured", "invalid", "failed", "resumed", "cached")
	partial := 0
	for _, p := range plans {
		table.AddRowf(p.GPU, fmt.Sprintf("%.4f", p.LatencyMS), fmt.Sprintf("%.0f", p.GPUSeconds),
			p.Measurements, p.Invalid, p.FailedTasks, p.ResumedTasks, p.CachedTasks)
		if !p.Complete() {
			partial++
			for _, tp := range p.FailedTaskPlans() {
				fmt.Fprintf(os.Stderr, "fleet: %s/%s failed: %s\n", p.GPU, tp.TaskName, tp.Error)
			}
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "fleet:", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, fmt.Sprintf("%s.%s.plan.json", *model, p.GPU))
			if err := p.Save(path); err != nil {
				fmt.Fprintln(os.Stderr, "fleet:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Print(table.String())
	if *out != "" {
		fmt.Printf("plans written to %s/\n", *out)
	}
	if partial > 0 {
		hint := ""
		if *ckptPath != "" {
			hint = fmt.Sprintf(" — rerun with -checkpoint %s to re-measure only the failed tasks", *ckptPath)
		}
		fmt.Fprintf(os.Stderr, "fleet: %d of %d plans are partial%s\n", partial, len(plans), hint)
	}
	if store != nil {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "fleet: cache: %d hits, %d misses, %d warm starts, %d puts (%d skipped)\n",
			st.Hits, st.Misses, st.WarmStarts, st.Puts, st.PutSkips)
	}
}
