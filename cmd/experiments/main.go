// Command experiments regenerates the paper's tables and figures on the
// simulated-GPU substrate.
//
// Usage:
//
//	experiments [-run all|fig1|fig4|fig5|fig6|fig7|fig8|fig9|table1|table2|ablation|scaling|warmcache]
//	            [-seed N] [-scale quick|default|full] [-v] [-workers N]
//	            [-trace path]
//
// -trace writes a JSONL span trace of every Glimpse tuning loop the
// harness runs (aggregate with cmd/tracereport); tracing observes only and
// does not change any table.
//
// Scales: quick (CI smoke), default (laptop minutes, paper shapes), full
// (every task, larger budgets; closest to the paper's setting).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"github.com/neuralcompile/glimpse/internal/experiments"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	run := flag.String("run", "all", "experiments to run (comma-separated ids or 'all')")
	seed := flag.Int64("seed", 2022, "master random seed")
	scale := flag.String("scale", "default", "quick | default | full")
	tasksPer := flag.Int("tasks", 0, "override tasks per model (-1 = all)")
	budget := flag.Int("budget", 0, "override measurements per tuning run")
	verbose := flag.Bool("v", false, "log per-run progress")
	workers := flag.Int("workers", runtime.NumCPU(), "goroutines for search and scoring (results are identical for any value)")
	tracePath := flag.String("trace", "", "write a JSONL span trace of the tuning stages to this file")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	cfg := experiments.Config{Seed: *seed}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer tf.Close()
		tracer := telemetry.NewTracer(tf, nil)
		cfg.Tracer = tracer
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace write error:", err)
			}
		}()
	}
	switch *scale {
	case "quick":
		cfg.Targets = []string{hwspec.TitanXp, hwspec.RTX3090}
		cfg.Models = []string{workload.ResNet18}
		cfg.TasksPerModel = 2
		cfg.MaxMeasurements = 96
		cfg.Patience = 3
	case "default":
		// zero-value defaults: 4 GPUs × 3 models × 4 tasks, 192 measurements
	case "full":
		cfg.TasksPerModel = -1 // all tasks
		cfg.MaxMeasurements = 384
		cfg.Patience = 6
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *tasksPer != 0 {
		cfg.TasksPerModel = *tasksPer
	}
	if *budget != 0 {
		cfg.MaxMeasurements = *budget
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	cfg.Progress = progress
	env := experiments.NewEnv(cfg)

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	type renderer interface{ Render() string }
	emit := func(id string, r renderer, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n%s\n", id, r.Render())
	}

	if selected("table1") {
		r, err := env.Table1()
		emit("table1", r, err)
	}
	if selected("fig8") {
		r, err := env.Fig8()
		emit("fig8", r, err)
	}
	if selected("fig1") {
		r, err := env.Fig1()
		emit("fig1", r, err)
	}
	if selected("fig4") {
		r, err := env.Fig4()
		emit("fig4", r, err)
	}
	if selected("fig5") {
		r, err := env.Fig5()
		emit("fig5", r, err)
	}
	if selected("ablation") {
		r, err := env.Ablation()
		emit("ablation", r, err)
	}
	// The fleet-scaling study is an extension beyond the paper's artifact
	// list; run it only when asked for explicitly.
	if want["scaling"] {
		r, err := env.Scaling()
		emit("scaling", r, err)
	}
	// The warm-start cache study (donor GPUs fill a tuned-config store,
	// the excluded target warm-starts from it) is likewise explicit-only.
	if want["warmcache"] {
		r, err := env.WarmCache()
		emit("warmcache", r, err)
	}
	needGrid := selected("fig6") || selected("fig7") || selected("fig9") || selected("table2")
	if needGrid {
		grid, err := env.RunGrid([]string{"autotvm", "chameleon", "dgp", "glimpse"})
		if err != nil {
			fmt.Fprintf(os.Stderr, "grid failed: %v\n", err)
			os.Exit(1)
		}
		if selected("fig6") {
			r, err := experiments.Fig6(grid)
			emit("fig6", r, err)
		}
		if selected("fig7") {
			r, err := experiments.Fig7(grid)
			emit("fig7", r, err)
		}
		if selected("fig9") {
			r, err := experiments.Fig9(grid)
			emit("fig9", r, err)
		}
		if selected("table2") {
			r, err := experiments.Table2(grid)
			emit("table2", r, err)
		}
	}
}
