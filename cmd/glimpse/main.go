// Command glimpse tunes a DNN model for a target GPU with the Glimpse
// hardware-aware compiler and prints per-task results.
//
// Usage:
//
//	glimpse -model resnet-18 -gpu titan-xp [-tasks 1,7,17] [-budget 192]
//	        [-seed N] [-compare] [-rpc addr] [-artifacts path] [-log path]
//	        [-checkpoint path] [-fallback-local] [-retries 3] [-workers N]
//	        [-trace path] [-cache path] [-warm-k 3] [-cache-readonly]
//
// With -compare, AutoTVM runs on the same tasks for reference. With -rpc,
// measurements go to a measurement server (cmd/measured) instead of the
// in-process simulator; they then run behind measure.Reliable (batch
// deadline, bounded retries, circuit breaker), and -fallback-local adds the
// in-process simulator as a failover backend so tuning survives a dead
// server. -artifacts caches the trained offline toolkit (loaded when
// present, trained and saved otherwise); -log appends every hardware
// measurement as a JSON line (AutoTVM-style tuning log). -checkpoint
// records each finished task in a JSONL file; rerunning with the same file
// skips them. -trace writes a JSONL span trace of the tuning loop's stages
// (prior sampling, annealing, surrogate fits, acquisition, measurement);
// aggregate it with cmd/tracereport. Tracing observes only — results are
// byte-identical with and without it.
//
// -cache points at a persistent tuned-config store (JSONL, created if
// absent): a task whose workload fingerprint and GPU were tuned before is
// served from the store with zero measurements, and a task tuned before
// only on *other* GPUs warm-starts from the -warm-k nearest donors in
// Blueprint space under a shrunken budget. New bests are written back
// unless -cache-readonly is set (which also never creates or modifies the
// file — safe for concurrent serving).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/fleet"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	model := flag.String("model", workload.ResNet18, "model: alexnet | resnet-18 | vgg-16")
	gpu := flag.String("gpu", hwspec.TitanXp, "target GPU (see cmd/blueprintctl list)")
	taskList := flag.String("tasks", "", "comma-separated 1-based task indices (default: all)")
	budget := flag.Int("budget", 192, "hardware measurements per task")
	seed := flag.Int64("seed", 1, "random seed")
	compare := flag.Bool("compare", false, "also run AutoTVM for reference")
	rpcAddr := flag.String("rpc", "", "measurement server address (default: in-process simulator)")
	artifacts := flag.String("artifacts", "", "toolkit artifact cache path (load or train+save)")
	logPath := flag.String("log", "", "append measurements to this JSONL tuning log")
	ckptPath := flag.String("checkpoint", "", "JSONL checkpoint file (resume skips recorded tasks)")
	fallbackLocal := flag.Bool("fallback-local", false, "with -rpc: fail over to the in-process simulator")
	retries := flag.Int("retries", 3, "with -rpc: measurement attempts per batch")
	batchTimeout := flag.Duration("batch-timeout", 30*time.Second, "with -rpc: deadline per measurement batch")
	workers := flag.Int("workers", runtime.NumCPU(), "goroutines for search and scoring (results are identical for any value)")
	tracePath := flag.String("trace", "", "write a JSONL span trace of the tuning stages to this file")
	cachePath := flag.String("cache", "", "persistent tuned-config store (JSONL; exact hits skip tuning, misses warm-start)")
	warmK := flag.Int("warm-k", 3, "with -cache: nearest donor devices per warm start")
	cacheReadonly := flag.Bool("cache-readonly", false, "with -cache: serve and warm-start but never write")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, nil)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "glimpse: trace write error:", err)
			}
		}()
	}

	tasks, err := workload.Tasks(*model)
	if err != nil {
		fail(err)
	}
	if *taskList != "" {
		var picked []workload.Task
		for _, s := range strings.Split(*taskList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fail(fmt.Errorf("bad task index %q: %w", s, err))
			}
			task, err := workload.TaskByIndex(*model, n)
			if err != nil {
				fail(err)
			}
			picked = append(picked, task)
		}
		tasks = picked
	}

	var m measure.Measurer
	if *rpcAddr != "" {
		remote, err := measure.Dial(*rpcAddr, *gpu)
		if err != nil {
			fail(err)
		}
		defer remote.Close()
		chain := []measure.Measurer{remote}
		if *fallbackLocal {
			local, err := measure.NewLocal(*gpu)
			if err != nil {
				fail(err)
			}
			chain = append(chain, local)
		}
		m, err = measure.NewReliable(measure.ReliableConfig{
			MaxAttempts:  *retries,
			BatchTimeout: *batchTimeout,
			Seed:         *seed,
			EventSink: func(e measure.Event) {
				tracer.Event(telemetry.StageMeasure, map[string]any{
					"event": e.Kind, "backend": e.Backend, "task": e.Task, "detail": e.Detail,
				})
			},
		}, chain...)
		if err != nil {
			fail(err)
		}
	} else {
		local, err := measure.NewLocal(*gpu)
		if err != nil {
			fail(err)
		}
		m = local
	}

	if *logPath != "" {
		// Resume sequence numbering from whatever the log already holds, so
		// appended sessions extend it instead of restarting at 1.
		lastSeq := 0
		if existing, err := os.ReadFile(*logPath); err == nil {
			entries, err := tlog.Read(bytes.NewReader(existing))
			if err != nil {
				fail(fmt.Errorf("existing log %s: %w", *logPath, err))
			}
			if len(entries) > 0 {
				lastSeq = entries[len(entries)-1].Seq
			}
		}
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		m = &tlog.RecordingMeasurer{Inner: m, Out: tlog.NewWriter(f, lastSeq)}
	}

	g := rng.New(*seed)
	var tk *core.Toolkit
	if *artifacts != "" {
		if loaded, err := core.LoadToolkit(*artifacts); err == nil && loaded.TargetName == *gpu {
			fmt.Fprintf(os.Stderr, "loaded trained artifacts from %s\n", *artifacts)
			tk = loaded
		}
	}
	if tk == nil {
		fmt.Fprintf(os.Stderr, "training Glimpse offline artifacts for %s (leave-target-out)...\n", *gpu)
		var err error
		tk, err = core.TrainToolkit(*gpu, core.ToolkitConfig{}, g.Split("toolkit"))
		if err != nil {
			fail(err)
		}
		if *artifacts != "" {
			if err := tk.Save(*artifacts); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "saved artifacts to %s\n", *artifacts)
		}
	}

	var store *cache.Store
	if *cachePath != "" {
		if *cacheReadonly {
			store, err = cache.OpenReadOnly(*cachePath)
		} else {
			store, err = cache.Open(*cachePath)
		}
		if err != nil {
			fail(err)
		}
		defer store.Close()
		if n := store.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "tuned-config cache: %d entries in %s\n", n, *cachePath)
		}
	}

	var ck *fleet.Checkpoint
	if *ckptPath != "" {
		ck, err = fleet.OpenCheckpoint(*ckptPath)
		if err != nil {
			fail(err)
		}
		defer ck.Close()
		if n := ck.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d tasks already checkpointed in %s\n", n, *ckptPath)
		}
	}

	bud := tuner.Budget{MaxMeasurements: *budget, Patience: 4, Epsilon: 0.01}
	table := metrics.NewTable(
		fmt.Sprintf("Glimpse tuning %s on %s (%d measurements/task)", *model, *gpu, *budget),
		"task", "tuner", "best GFLOPS", "kernel ms", "measured", "invalid", "GPU s")
	for _, task := range tasks {
		if ck != nil {
			if tp, ok := ck.Lookup(*model, *gpu, task.Name()); ok {
				table.AddRowf(task.Name(), "glimpse*",
					fmt.Sprintf("%.0f", tp.GFLOPS), fmt.Sprintf("%.4f", tp.TimeMS),
					tp.Measurements, tp.Invalid, fmt.Sprintf("%.0f", tp.GPUSeconds))
				continue
			}
		}
		sp, err := space.ForTask(task)
		if err != nil {
			fail(err)
		}
		var fp string
		var warm *cache.WarmStart
		taskBudget := bud
		if store != nil {
			fp = cache.Fingerprint(task, sp)
			lsp := tracer.Start(telemetry.StageCacheLookup)
			lsp.SetAttr("task", task.Name())
			ce, hit := store.Get(fp, *gpu)
			lsp.SetAttr("hit", hit)
			lsp.End()
			if hit && ce.BestConfig < sp.Size() {
				hsp := tracer.Start(telemetry.StageCacheHit)
				hsp.SetAttr("task", task.Name())
				hsp.SetAttr("gflops", ce.GFLOPS)
				hsp.End()
				table.AddRowf(task.Name(), "glimpse (cache)",
					fmt.Sprintf("%.0f", ce.GFLOPS), fmt.Sprintf("%.4f", ce.TimeMS),
					0, 0, "0")
				continue
			}
			warm = store.WarmStart(fp, *gpu, sp, *warmK)
		}
		gl := tk.Tuner()
		gl.Tracer = tracer
		name := "glimpse"
		if warm != nil {
			gl.SetWarmStart(warm)
			taskBudget = cache.ShrinkBudget(bud, cache.WarmBudgetFrac)
			name = "glimpse (warm)"
		}
		res, err := gl.Tune(task, sp, m, taskBudget, g.Split("tune/"+task.Name()))
		if err != nil {
			fail(err)
		}
		if store != nil {
			if ce, ok := cache.EntryFromResult(fp, *gpu, res, sp); ok {
				ce.Model = *model
				ce.TaskIndex = task.Index
				if _, err := store.Put(ce); err != nil {
					fail(err)
				}
			}
		}
		table.AddRowf(task.Name(), name,
			fmt.Sprintf("%.0f", res.BestGFLOPS), fmt.Sprintf("%.4f", res.BestTimeMS),
			res.Measurements, res.Invalid, fmt.Sprintf("%.0f", res.GPUSeconds))
		if ck != nil && res.BestIndex >= 0 {
			tp := fleet.TaskPlan{
				TaskName:     task.Name(),
				TaskIndex:    task.Index,
				Kind:         task.Kind.String(),
				ConfigIndex:  res.BestIndex,
				Schedule:     sp.Describe(sp.FromIndex(res.BestIndex)),
				GFLOPS:       res.BestGFLOPS,
				TimeMS:       res.BestTimeMS,
				Repeats:      task.Repeats,
				GPUSeconds:   res.GPUSeconds,
				Measurements: res.Measurements,
				Invalid:      res.Invalid,
			}
			if err := ck.Append(*model, *gpu, tp); err != nil {
				fail(err)
			}
		}
		if *compare {
			atvm := tuner.AutoTVM{}
			atvm.Anneal.Tracer = tracer
			atvm.Model.Tracer = tracer
			ares, err := atvm.Tune(task, sp, m, bud, g.Split("autotvm/"+task.Name()))
			if err != nil {
				fail(err)
			}
			table.AddRowf("", "autotvm",
				fmt.Sprintf("%.0f", ares.BestGFLOPS), fmt.Sprintf("%.4f", ares.BestTimeMS),
				ares.Measurements, ares.Invalid, fmt.Sprintf("%.0f", ares.GPUSeconds))
		}
	}
	fmt.Print(table.String())
	if store != nil {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d warm starts, %d puts (%d skipped)\n",
			st.Hits, st.Misses, st.WarmStarts, st.Puts, st.PutSkips)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "glimpse:", err)
	os.Exit(1)
}
