// Command glimpse tunes a DNN model for a target GPU with the Glimpse
// hardware-aware compiler and prints per-task results.
//
// Usage:
//
//	glimpse -model resnet-18 -gpu titan-xp [-tasks 1,7,17] [-budget 192]
//	        [-seed N] [-compare] [-rpc addr] [-artifacts path] [-log path]
//
// With -compare, AutoTVM runs on the same tasks for reference. With -rpc,
// measurements go to a measurement server (cmd/measured) instead of the
// in-process simulator. -artifacts caches the trained offline toolkit
// (loaded when present, trained and saved otherwise); -log appends every
// hardware measurement as a JSON line (AutoTVM-style tuning log).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func main() {
	model := flag.String("model", workload.ResNet18, "model: alexnet | resnet-18 | vgg-16")
	gpu := flag.String("gpu", hwspec.TitanXp, "target GPU (see cmd/blueprintctl list)")
	taskList := flag.String("tasks", "", "comma-separated 1-based task indices (default: all)")
	budget := flag.Int("budget", 192, "hardware measurements per task")
	seed := flag.Int64("seed", 1, "random seed")
	compare := flag.Bool("compare", false, "also run AutoTVM for reference")
	rpcAddr := flag.String("rpc", "", "measurement server address (default: in-process simulator)")
	artifacts := flag.String("artifacts", "", "toolkit artifact cache path (load or train+save)")
	logPath := flag.String("log", "", "append measurements to this JSONL tuning log")
	flag.Parse()

	tasks, err := workload.Tasks(*model)
	if err != nil {
		fail(err)
	}
	if *taskList != "" {
		var picked []workload.Task
		for _, s := range strings.Split(*taskList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fail(fmt.Errorf("bad task index %q: %w", s, err))
			}
			task, err := workload.TaskByIndex(*model, n)
			if err != nil {
				fail(err)
			}
			picked = append(picked, task)
		}
		tasks = picked
	}

	var m measure.Measurer
	if *rpcAddr != "" {
		remote, err := measure.Dial(*rpcAddr, *gpu)
		if err != nil {
			fail(err)
		}
		defer remote.Close()
		m = remote
	} else {
		local, err := measure.NewLocal(*gpu)
		if err != nil {
			fail(err)
		}
		m = local
	}

	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		m = &tlog.RecordingMeasurer{Inner: m, Out: tlog.NewWriter(f)}
	}

	g := rng.New(*seed)
	var tk *core.Toolkit
	if *artifacts != "" {
		if loaded, err := core.LoadToolkit(*artifacts); err == nil && loaded.TargetName == *gpu {
			fmt.Fprintf(os.Stderr, "loaded trained artifacts from %s\n", *artifacts)
			tk = loaded
		}
	}
	if tk == nil {
		fmt.Fprintf(os.Stderr, "training Glimpse offline artifacts for %s (leave-target-out)...\n", *gpu)
		var err error
		tk, err = core.TrainToolkit(*gpu, core.ToolkitConfig{}, g.Split("toolkit"))
		if err != nil {
			fail(err)
		}
		if *artifacts != "" {
			if err := tk.Save(*artifacts); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "saved artifacts to %s\n", *artifacts)
		}
	}

	bud := tuner.Budget{MaxMeasurements: *budget, Patience: 4, Epsilon: 0.01}
	table := metrics.NewTable(
		fmt.Sprintf("Glimpse tuning %s on %s (%d measurements/task)", *model, *gpu, *budget),
		"task", "tuner", "best GFLOPS", "kernel ms", "measured", "invalid", "GPU s")
	for _, task := range tasks {
		sp, err := space.ForTask(task)
		if err != nil {
			fail(err)
		}
		gl := tk.Tuner()
		res, err := gl.Tune(task, sp, m, bud, g.Split("tune/"+task.Name()))
		if err != nil {
			fail(err)
		}
		table.AddRowf(task.Name(), "glimpse",
			fmt.Sprintf("%.0f", res.BestGFLOPS), fmt.Sprintf("%.4f", res.BestTimeMS),
			res.Measurements, res.Invalid, fmt.Sprintf("%.0f", res.GPUSeconds))
		if *compare {
			ares, err := tuner.AutoTVM{}.Tune(task, sp, m, bud, g.Split("autotvm/"+task.Name()))
			if err != nil {
				fail(err)
			}
			table.AddRowf("", "autotvm",
				fmt.Sprintf("%.0f", ares.BestGFLOPS), fmt.Sprintf("%.4f", ares.BestTimeMS),
				ares.Measurements, ares.Invalid, fmt.Sprintf("%.0f", ares.GPUSeconds))
		}
	}
	fmt.Print(table.String())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "glimpse:", err)
	os.Exit(1)
}
