GO ?= go

# Tier-1 gate: everything a PR must keep green.
.PHONY: check
check: vet build test race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# Race pass over the concurrent layers (fleet orchestration, measurement
# retry/breaker/failover, fault injection).
.PHONY: race
race:
	$(GO) test -race ./internal/fleet/... ./internal/measure/... ./internal/faults/...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem ./...

.PHONY: fmt
fmt:
	gofmt -w cmd internal examples
