GO ?= go

# Tier-1 gate: everything a PR must keep green.
.PHONY: check
check: vet build test race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# Race pass over the concurrent layers (fleet orchestration, measurement
# retry/breaker/failover, fault injection, and the parallel search engine:
# worker pool, sharded annealer, GBT split search, sampler vote, neural
# batch scoring).
.PHONY: race
race:
	$(GO) test -race ./internal/fleet/... ./internal/measure/... ./internal/faults/... \
		./internal/parallel/... ./internal/anneal/... ./internal/gbt/... \
		./internal/sampler/... ./internal/acq/... ./internal/nn/...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem ./...

# Parallel hot-path benchmarks as a machine-readable artifact. Compare
# workers=1 vs workers=N entries to see the scaling on this machine.
.PHONY: bench-parallel
bench-parallel:
	$(GO) test -bench 'BenchmarkAnneal|BenchmarkGBT|BenchmarkEnsembleSelect' -benchmem -run '^$$' \
		./internal/anneal/... ./internal/gbt/... ./internal/sampler/... \
		| $(GO) run ./cmd/benchjson > BENCH_parallel.json
	@echo wrote BENCH_parallel.json

.PHONY: fmt
fmt:
	gofmt -w cmd internal examples
