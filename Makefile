GO ?= go

# Tier-1 gate: everything a PR must keep green.
.PHONY: check
check: vet fmt-check lint waiver-check build test race

.PHONY: vet
vet:
	$(GO) vet ./...

# Project static analysis (cmd/glint): determinism, rawgo, cfgdefault,
# floateq, errdrop, ctxflow, leakcheck, lockcheck, and allocpath over
# every package in the module. Stdlib-only — see DESIGN.md §8/§12 for the
# rules and the //glint:ignore policy.
.PHONY: lint
lint:
	$(GO) run ./cmd/glint

# Waiver budget: the //glint:ignore count may not grow without an explicit
# budget bump in .glint-waivers (which is where the reviewer sees it).
# The pattern requires the mandatory " -- reason" separator, so prose
# mentions of the directive in docs don't count; the literal placeholder
# "rule" (not a real rule name) is the documented example form.
.PHONY: waiver-check
waiver-check:
	@budget=$$(grep -E '^[0-9]+$$' .glint-waivers); \
	count=$$(grep -rEn 'glint:ignore [a-z]+(,[a-z]+)* --' --include='*.go' cmd internal examples \
		| grep -v /testdata/ | grep -v 'glint:ignore rule --' | wc -l | tr -d ' '); \
	if [ "$$count" -gt "$$budget" ]; then \
		echo "waiver-check: $$count //glint:ignore directives exceed the budget of $$budget;"; \
		echo "waiver-check: remove a waiver or raise the budget in .glint-waivers with the review."; \
		exit 1; \
	fi; \
	if [ "$$count" -lt "$$budget" ]; then \
		echo "waiver-check: note: $$count waivers under a budget of $$budget; consider lowering .glint-waivers"; \
	fi; \
	echo "waiver-check: $$count waiver(s) within budget $$budget"

# Formatting gate: fail if gofmt would rewrite anything.
.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l cmd internal examples)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# Race pass over the concurrent layers (fleet orchestration, measurement
# retry/breaker/failover, fault injection, and the parallel search engine:
# worker pool, sharded annealer, GBT split search, sampler vote, neural
# batch scoring) plus the packages that drive them: core's candidate
# scoring and the tuners both call into the pooled scoring paths, and the
# tuned-config cache takes concurrent Puts from fleet workers.
.PHONY: race
race:
	$(GO) test -race ./internal/fleet/... ./internal/measure/... ./internal/faults/... \
		./internal/parallel/... ./internal/anneal/... ./internal/gbt/... \
		./internal/sampler/... ./internal/acq/... ./internal/nn/... \
		./internal/core/... ./internal/tuner/... ./internal/cache/... \
		./internal/server/...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem ./...

# Parallel hot-path benchmarks as a machine-readable artifact. Compare
# workers=1 vs workers=N entries to see the scaling on this machine.
.PHONY: bench-parallel
bench-parallel:
	$(GO) test -bench 'BenchmarkAnneal|BenchmarkGBT|BenchmarkEnsembleSelect' -benchmem -run '^$$' \
		./internal/anneal/... ./internal/gbt/... ./internal/sampler/... \
		| $(GO) run ./cmd/benchjson > BENCH_parallel.json
	@echo wrote BENCH_parallel.json

# Observability overhead benchmarks as a machine-readable artifact:
# disabled-tracer cost (must stay in the low single-digit ns, 0 allocs),
# enabled-tracer cost, metric primitives, and the Reliable wrapper.
.PHONY: bench-obs
bench-obs:
	$(GO) test -bench 'BenchmarkTracer|BenchmarkCounterInc|BenchmarkHistogramObserve|BenchmarkReliableOverhead' \
		-benchmem -run '^$$' ./internal/telemetry/... ./internal/measure/... \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	@echo wrote BENCH_obs.json

# Fleet resilience benchmark as a machine-readable artifact: flat fan-out
# vs the sharded scheduler over 200 simulated endpoints with 10% device
# flap. Compare the meas/s metric between the two entries; the sharded
# path must hold >=2x.
.PHONY: bench-fleet
bench-fleet:
	$(GO) test -bench 'BenchmarkFleet' -benchtime 1x -benchmem -run '^$$' ./internal/fleet/... \
		| $(GO) run ./cmd/benchjson > BENCH_fleet.json
	@echo wrote BENCH_fleet.json

# Tuned-config cache benchmarks as a machine-readable artifact: exact-hit
# serving latency (must stay microseconds — it replaces a whole tuning
# session) and the 3-donor warm-vs-cold transfer study. Gate on the
# meas_savings_% metric: the warm run must reach the cold run's final
# best with >=30% fewer measurements on average.
.PHONY: bench-cache
bench-cache:
	$(GO) test -bench 'BenchmarkCache' -benchtime 1x -benchmem -run '^$$' ./internal/cache/... \
		| $(GO) run ./cmd/benchjson > BENCH_cache.json
	@echo wrote BENCH_cache.json

# Tuning-service benchmark as a machine-readable artifact: a glimpsed
# server under a multi-tenant job stream. Reports sustained jobs/sec,
# p50/p99 time-to-first-progress, drained-and-resumed jobs (lost must be
# 0), and the ledger-vs-result GPU-second reconciliation delta (must be
# ~0).
.PHONY: bench-serve
bench-serve:
	$(GO) test -bench 'BenchmarkServe' -benchtime 1x -benchmem -run '^$$' -timeout 20m ./internal/server/... \
		| $(GO) run ./cmd/benchjson > BENCH_serve.json
	@echo wrote BENCH_serve.json

# Soft regression gate: rerun the observability benchmarks and diff them
# against the committed BENCH_obs.json baseline with cmd/benchdiff
# (>20% ns/op or allocs/op growth fails). CI runs this as a soft gate —
# the diff is surfaced as an annotation and artifact, not a red build,
# because shared runners are too noisy for a hard 20% wall.
.PHONY: bench-diff
bench-diff:
	$(GO) test -bench 'BenchmarkTracer|BenchmarkCounterInc|BenchmarkHistogramObserve|BenchmarkReliableOverhead' \
		-benchmem -run '^$$' ./internal/telemetry/... ./internal/measure/... \
		| $(GO) run ./cmd/benchjson \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_obs.json

.PHONY: fmt
fmt:
	gofmt -w cmd internal examples
