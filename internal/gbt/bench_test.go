package gbt

import (
	"fmt"
	"testing"

	"github.com/neuralcompile/glimpse/internal/rng"
)

// benchData synthesizes a training set shaped like a tuner's feature
// matrix: a few dozen featurized knobs, a few hundred measured rows.
func benchData(rows, cols int, seed int64) ([][]float64, []float64) {
	g := rng.New(seed)
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range x {
		row := make([]float64, cols)
		s := 0.0
		for j := range row {
			row[j] = g.Float64()
			if j%3 == 0 {
				s += row[j]
			} else {
				s -= 0.5 * row[j] * row[j]
			}
		}
		x[i] = row
		y[i] = s + 0.05*g.NormFloat64()
	}
	return x, y
}

// BenchmarkGBTTrain measures boosted training (split search dominates) at
// several worker counts; `make bench` snapshots it into BENCH_parallel.json.
func BenchmarkGBTTrain(b *testing.B) {
	x, y := benchData(1200, 48, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Trees = 12
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Train(x, y, cfg, rng.New(2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGBTPredictBatch measures batch inference across worker counts.
func BenchmarkGBTPredictBatch(b *testing.B) {
	x, y := benchData(1200, 48, 3)
	q, _ := benchData(4096, 48, 4)
	cfg := DefaultConfig()
	cfg.Trees = 40
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg.Workers = workers
			e, err := Train(x, y, cfg, rng.New(5))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.PredictBatch(q)
			}
		})
	}
}
