package gbt

import (
	"fmt"
	"testing"

	"github.com/neuralcompile/glimpse/internal/rng"
)

// TestTrainWorkerCountInvariant is the tentpole determinism contract for
// the cost model: a fixed seed must produce an identical ensemble (checked
// through its predictions) for any worker count.
func TestTrainWorkerCountInvariant(t *testing.T) {
	x, y := benchData(400, 24, 7)
	probe, _ := benchData(200, 24, 8)

	var ref []float64
	for _, workers := range []int{1, 2, 4, 9} {
		cfg := DefaultConfig()
		cfg.Trees = 10
		cfg.Workers = workers
		e, err := Train(x, y, cfg, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		got := e.PredictBatch(probe)
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: prediction[%d] = %v want %v (exact)", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestTrainWorkerCountInvariantRanking repeats the contract for the
// pairwise-ranking objective, whose gradients consume the RNG serially.
func TestTrainWorkerCountInvariantRanking(t *testing.T) {
	x, y := benchData(300, 16, 11)
	probe, _ := benchData(100, 16, 12)

	var ref []float64
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Trees = 8
		cfg.Objective = PairwiseRank
		cfg.Workers = workers
		e, err := Train(x, y, cfg, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		got := e.PredictBatch(probe)
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: prediction[%d] differs", workers, i)
			}
		}
	}
}

// TestTrainDefaultsPreserveCallerFields is the regression test for the
// wholesale DefaultConfig() replacement discarding the caller's objective,
// pair budget, and worker bound when Trees <= 0.
func TestTrainDefaultsPreserveCallerFields(t *testing.T) {
	x, y := benchData(60, 6, 13)
	cfg := Config{Objective: PairwiseRank, RankPairs: 17, Workers: 1}
	e, err := Train(x, y, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Trees != DefaultConfig().Trees {
		t.Fatalf("Trees = %d want default %d", e.cfg.Trees, DefaultConfig().Trees)
	}
	if e.cfg.Objective != PairwiseRank || e.cfg.RankPairs != 17 || e.cfg.Workers != 1 {
		t.Fatalf("caller fields lost: %+v", e.cfg)
	}
	// A ranking-objective model keeps base = 0 (no mean shift).
	if e.base != 0 {
		t.Fatalf("ranking base = %v want 0", e.base)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	x, y := benchData(200, 12, 21)
	for _, workers := range []int{1, 6} {
		cfg := DefaultConfig()
		cfg.Trees = 6
		cfg.Workers = workers
		e, err := Train(x, y, cfg, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		batch := e.PredictBatch(x)
		for i, row := range x {
			if one := e.Predict(row); one != batch[i] {
				t.Fatalf("workers=%d row %d: batch %v != single %v", workers, i, batch[i], one)
			}
		}
	}
}

func ExampleConfig_workers() {
	x, y := benchData(80, 8, 2)
	cfg := DefaultConfig()
	cfg.Trees = 4
	cfg.Workers = 2 // bounded pool; same model as Workers: 1
	e, _ := Train(x, y, cfg, rng.New(1))
	fmt.Println(e.NumTrees())
	// Output: 4
}
