package gbt

import (
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/rng"
)

func makeFriedman(n int, g *rng.RNG) ([][]float64, []float64) {
	// A mildly nonlinear regression target.
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b, c := g.Float64(), g.Float64(), g.Float64()
		x[i] = []float64{a, b, c}
		y[i] = 10*math.Sin(math.Pi*a*b) + 5*c*c
	}
	return x, y
}

func TestSingleTreeFitsStep(t *testing.T) {
	g := rng.New(1)
	// Step function at x=0.5, easily captured by one split.
	x := [][]float64{{0.1}, {0.2}, {0.3}, {0.7}, {0.8}, {0.9}}
	y := []float64{0, 0, 0, 1, 1, 1}
	grad := make([]float64, len(y))
	hess := make([]float64, len(y))
	for i := range y {
		grad[i] = -y[i] // pred=0 ⇒ grad = pred - y
		hess[i] = 1
	}
	idx := []int{0, 1, 2, 3, 4, 5}
	tree := buildTree(x, grad, hess, idx, treeParams{
		maxDepth: 3, minLeaf: 1, lambda: 0, gamma: 0, colSampleRate: 1,
	}, g)
	if tree.NumNodes() < 3 {
		t.Fatalf("tree did not split: %d nodes", tree.NumNodes())
	}
	if p := tree.Predict([]float64{0.2}); math.Abs(p) > 0.1 {
		t.Fatalf("left leaf = %g want ≈0", p)
	}
	if p := tree.Predict([]float64{0.8}); math.Abs(p-1) > 0.1 {
		t.Fatalf("right leaf = %g want ≈1", p)
	}
}

func TestEnsembleReducesError(t *testing.T) {
	g := rng.New(2)
	x, y := makeFriedman(400, g)
	cfg := DefaultConfig()
	cfg.Trees = 80
	e, err := Train(x, y, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	// In-sample RMSE should be far below target std (~3.5).
	se := 0.0
	for i := range x {
		d := e.Predict(x[i]) - y[i]
		se += d * d
	}
	rmse := math.Sqrt(se / float64(len(x)))
	if rmse > 1.0 {
		t.Fatalf("ensemble RMSE = %g want < 1.0", rmse)
	}
}

func TestEnsembleGeneralizes(t *testing.T) {
	g := rng.New(3)
	x, y := makeFriedman(600, g.Split("train"))
	tx, ty := makeFriedman(200, g.Split("test"))
	cfg := DefaultConfig()
	cfg.Trees = 100
	e, err := Train(x, y, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	se := 0.0
	for i := range tx {
		d := e.Predict(tx[i]) - ty[i]
		se += d * d
	}
	rmse := math.Sqrt(se / float64(len(tx)))
	if rmse > 1.5 {
		t.Fatalf("test RMSE = %g want < 1.5", rmse)
	}
}

func TestPairwiseRankOrdersWell(t *testing.T) {
	g := rng.New(4)
	x, y := makeFriedman(400, g)
	cfg := DefaultConfig()
	cfg.Trees = 60
	cfg.Objective = PairwiseRank
	e, err := Train(x, y, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if acc := e.RankAccuracy(x, y); acc < 0.85 {
		t.Fatalf("rank accuracy = %g want ≥ 0.85", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	g := rng.New(5)
	if _, err := Train(nil, nil, DefaultConfig(), g); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, DefaultConfig(), g); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestZeroTreesFallsBackToDefault(t *testing.T) {
	g := rng.New(6)
	x, y := makeFriedman(50, g)
	e, err := Train(x, y, Config{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumTrees() == 0 {
		t.Fatal("default config produced no trees")
	}
}

func TestConstantTargetPredictsConstant(t *testing.T) {
	g := rng.New(7)
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	e, err := Train(x, y, DefaultConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	for _, xi := range x {
		if p := e.Predict(xi); math.Abs(p-5) > 1e-6 {
			t.Fatalf("constant prediction = %g want 5", p)
		}
	}
}

func TestRankAccuracyPerfectAndDegenerate(t *testing.T) {
	g := rng.New(8)
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	cfg := DefaultConfig()
	cfg.Trees = 30
	cfg.MinLeaf = 1
	e, err := Train(x, y, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if acc := e.RankAccuracy(x, y); acc < 0.99 {
		t.Fatalf("easy rank accuracy = %g", acc)
	}
	// All-equal targets: accuracy defined as 1.
	if acc := e.RankAccuracy(x, []float64{7, 7, 7}); acc != 1 {
		t.Fatalf("degenerate rank accuracy = %g want 1", acc)
	}
}
