// Package gbt implements gradient-boosted regression trees, the cost-model
// family AutoTVM uses (XGBoost in the paper). The boosted ensemble fits
// either squared-error or a pairwise ranking objective; ranking is what
// AutoTVM actually optimizes, since the tuner only needs candidates ordered
// by predicted performance.
package gbt

import (
	"fmt"
	"math"
	"sort"

	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// treeNode is one node of a regression tree, stored in a flat slice.
type treeNode struct {
	feature   int     // split feature, -1 for leaf
	threshold float64 // go left when x[feature] <= threshold
	left      int     // child indices
	right     int
	value     float64 // leaf prediction
}

// Tree is a single regression tree fit to gradient/hessian statistics.
type Tree struct {
	nodes []treeNode
}

// treeParams controls regression-tree growth.
type treeParams struct {
	maxDepth      int
	minLeaf       int
	lambda        float64 // L2 regularization on leaf weights
	gamma         float64 // split gain threshold
	colSampleRate float64 // fraction of features per split search
	workers       int     // pool bound for the per-feature split search
}

// splitParallelMinRows gates the parallel split search: below this row
// count the per-feature sort is too cheap to amortize pool dispatch.
// The serial and parallel paths produce identical splits either way.
const splitParallelMinRows = 64

// featureSplit is one feature's best split, found independently of the
// other features so the search can fan out across the pool.
type featureSplit struct {
	gain   float64
	thresh float64
	ok     bool
}

// bestSplitForFeature scans one feature's sorted rows for the highest-gain
// split. The arithmetic is a pure function of (x, grad, hess, idx, f), so
// per-feature results are identical whether computed serially or in
// parallel; only the reduction order (feature order) decides ties.
func bestSplitForFeature(x [][]float64, grad, hess []float64, idx []int, f int,
	sumG, sumH, rootScore float64, p treeParams) featureSplit {

	order := make([]int, len(idx))
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })

	best := featureSplit{gain: p.gamma}
	leftG, leftH := 0.0, 0.0
	for k := 0; k < len(order)-1; k++ {
		i := order[k]
		leftG += grad[i]
		leftH += hess[i]
		if k+1 < p.minLeaf || len(order)-k-1 < p.minLeaf {
			continue
		}
		cur, next := x[order[k]][f], x[order[k+1]][f]
		//glint:ignore floateq -- adjacent sorted feature values; a split threshold is only valid between distinct values
		if cur == next {
			continue
		}
		rightG, rightH := sumG-leftG, sumH-leftH
		gain := leftG*leftG/(leftH+p.lambda) + rightG*rightG/(rightH+p.lambda) - rootScore
		if gain > best.gain {
			best = featureSplit{gain: gain, thresh: (cur + next) / 2, ok: true}
		}
	}
	return best
}

// buildTree grows a tree on (x, grad, hess) rows indexed by idx.
func buildTree(x [][]float64, grad, hess []float64, idx []int, p treeParams, g *rng.RNG) *Tree {
	t := &Tree{}
	t.grow(x, grad, hess, idx, 0, p, g)
	return t
}

func (t *Tree) grow(x [][]float64, grad, hess []float64, idx []int, depth int, p treeParams, g *rng.RNG) int {
	sumG, sumH := 0.0, 0.0
	for _, i := range idx {
		sumG += grad[i]
		sumH += hess[i]
	}
	leafValue := -sumG / (sumH + p.lambda)

	nodeIdx := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: -1, value: leafValue})
	if depth >= p.maxDepth || len(idx) < 2*p.minLeaf {
		return nodeIdx
	}

	rootScore := sumG * sumG / (sumH + p.lambda)

	nFeat := len(x[0])
	features := g.Perm(nFeat)
	take := int(math.Ceil(p.colSampleRate * float64(nFeat)))
	if take < 1 {
		take = 1
	}
	features = features[:take]

	// Fan the per-feature split search across the pool, then reduce in
	// feature order with a strict > — identical winner (earliest feature,
	// earliest threshold on ties) to the old serial scan.
	workers := p.workers
	if len(idx) < splitParallelMinRows {
		workers = 1
	}
	splits := parallel.Map(workers, len(features), func(fi int) featureSplit {
		return bestSplitForFeature(x, grad, hess, idx, features[fi], sumG, sumH, rootScore, p)
	})
	bestGain := p.gamma
	bestFeature, bestThresh := -1, 0.0
	for fi, s := range splits {
		if s.ok && s.gain > bestGain {
			bestGain = s.gain
			bestFeature = features[fi]
			bestThresh = s.thresh
		}
	}
	if bestFeature < 0 {
		return nodeIdx
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return nodeIdx
	}
	t.nodes[nodeIdx].feature = bestFeature
	t.nodes[nodeIdx].threshold = bestThresh
	t.nodes[nodeIdx].left = t.grow(x, grad, hess, leftIdx, depth+1, p, g)
	t.nodes[nodeIdx].right = t.grow(x, grad, hess, rightIdx, depth+1, p, g)
	return nodeIdx
}

// Predict evaluates the tree on one feature vector.
func (t *Tree) Predict(x []float64) float64 {
	n := 0
	for {
		node := t.nodes[n]
		if node.feature < 0 {
			return node.value
		}
		if node.feature >= len(x) {
			panic(fmt.Sprintf("gbt: tree expects feature %d, input has %d", node.feature, len(x)))
		}
		if x[node.feature] <= node.threshold {
			n = node.left
		} else {
			n = node.right
		}
	}
}

// NumNodes returns the node count (for size assertions in tests).
func (t *Tree) NumNodes() int { return len(t.nodes) }
