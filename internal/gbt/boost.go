package gbt

import (
	"fmt"
	"math"
	"sort"

	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/telemetry"
)

// Objective selects the boosting loss.
type Objective int

const (
	// SquaredError fits the targets directly.
	SquaredError Objective = iota
	// PairwiseRank fits a RankNet-style pairwise logistic loss: the model
	// only needs to order configurations correctly, which is exactly what
	// AutoTVM's tuner consumes.
	PairwiseRank
)

// Config controls the boosted ensemble.
type Config struct {
	Trees         int
	MaxDepth      int
	MinLeaf       int
	LearningRate  float64
	Lambda        float64
	Gamma         float64
	Subsample     float64 // row subsample per tree
	ColSampleRate float64 // feature subsample per split
	Objective     Objective
	// RankPairs caps the number of sampled pairs per boosting round for
	// PairwiseRank (0 means 4·n).
	RankPairs int
	// Workers bounds the goroutines used for split search and batch
	// prediction; <= 0 uses the process-wide default (internal/parallel),
	// 1 runs serially. Output is identical for any worker count.
	Workers int
	// Tracer records one "gbt_train" span per Train call (nil: tracing
	// disabled). Observation only — it never touches the RNG stream.
	Tracer *telemetry.Tracer
}

// DefaultConfig mirrors the compact models AutoTVM uses in its tuner loop.
func DefaultConfig() Config {
	return Config{
		Trees:         40,
		MaxDepth:      5,
		MinLeaf:       2,
		LearningRate:  0.15,
		Lambda:        1.0,
		Gamma:         1e-4,
		Subsample:     0.9,
		ColSampleRate: 0.9,
		Objective:     SquaredError,
	}
}

// withDefaults fills non-positive fields independently, preserving every
// field the caller did set. Objective, RankPairs, and Workers pass through
// untouched: their zero values are meaningful (squared error, auto pair
// budget, process-wide worker default).
func (cfg Config) withDefaults() Config {
	def := DefaultConfig()
	if cfg.Trees <= 0 {
		cfg.Trees = def.Trees
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = def.MaxDepth
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = def.MinLeaf
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = def.LearningRate
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = def.Lambda
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = def.Gamma
	}
	if cfg.Subsample <= 0 {
		cfg.Subsample = def.Subsample
	}
	if cfg.ColSampleRate <= 0 {
		cfg.ColSampleRate = def.ColSampleRate
	}
	return cfg
}

// Ensemble is a trained gradient-boosted model.
type Ensemble struct {
	cfg   Config
	base  float64
	trees []*Tree
}

// Train fits a boosted ensemble on (x, y).
func Train(x [][]float64, y []float64, cfg Config, g *rng.RNG) (*Ensemble, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("gbt: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("gbt: %d inputs but %d targets", len(x), len(y))
	}
	cfg = cfg.withDefaults()
	n := len(x)
	sp := cfg.Tracer.Start(telemetry.StageGBTTrain)
	sp.SetAttr("rows", n)
	sp.SetAttr("trees", cfg.Trees)
	defer sp.End()
	e := &Ensemble{cfg: cfg}

	// Base score: mean for regression, 0 for ranking.
	if cfg.Objective == SquaredError {
		s := 0.0
		for _, v := range y {
			s += v
		}
		e.base = s / float64(n)
	}

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = e.base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	for round := 0; round < cfg.Trees; round++ {
		switch cfg.Objective {
		case SquaredError:
			for i := range grad {
				grad[i] = pred[i] - y[i]
				hess[i] = 1
			}
		case PairwiseRank:
			pairwiseGradients(y, pred, grad, hess, cfg.RankPairs, g)
		default:
			return nil, fmt.Errorf("gbt: unknown objective %d", cfg.Objective)
		}

		idx := subsample(n, cfg.Subsample, g)
		tree := buildTree(x, grad, hess, idx, treeParams{
			maxDepth:      cfg.MaxDepth,
			minLeaf:       cfg.MinLeaf,
			lambda:        cfg.Lambda,
			gamma:         cfg.Gamma,
			colSampleRate: cfg.ColSampleRate,
			workers:       cfg.Workers,
		}, g)
		e.trees = append(e.trees, tree)
		parallel.For(cfg.Workers, n, func(i int) {
			pred[i] += cfg.LearningRate * tree.Predict(x[i])
		})
	}
	return e, nil
}

// pairwiseGradients computes RankNet gradients over sampled pairs.
func pairwiseGradients(y, pred, grad, hess []float64, pairs int, g *rng.RNG) {
	n := len(y)
	for i := range grad {
		grad[i] = 0
		hess[i] = 1e-3 // keep leaves bounded even for unsampled rows
	}
	if pairs <= 0 {
		pairs = 4 * n
	}
	for p := 0; p < pairs; p++ {
		i, j := g.Intn(n), g.Intn(n)
		//glint:ignore floateq -- labels are exact data values; only strictly ordered pairs carry rank signal
		if y[i] == y[j] {
			continue
		}
		if y[i] < y[j] {
			i, j = j, i // ensure y[i] > y[j]: i should outrank j
		}
		diff := pred[i] - pred[j]
		sig := 1 / (1 + math.Exp(diff))
		// d/dpred_i of -log σ(pred_i − pred_j) = −σ(−diff).
		grad[i] -= sig
		grad[j] += sig
		h := sig * (1 - sig)
		hess[i] += h
		hess[j] += h
	}
}

func subsample(n int, rate float64, g *rng.RNG) []int {
	if rate >= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	k := int(math.Ceil(rate * float64(n)))
	if k < 1 {
		k = 1
	}
	return g.SampleWithoutReplacement(n, k)
}

// Predict evaluates the ensemble on one feature vector.
func (e *Ensemble) Predict(x []float64) float64 {
	out := e.base
	for _, t := range e.trees {
		out += e.cfg.LearningRate * t.Predict(x)
	}
	return out
}

// PredictBatch evaluates the ensemble on many feature vectors, sharding
// rows across the ensemble's worker bound. Tree walks are read-only, so
// rows are independent and the output matches the serial loop exactly.
func (e *Ensemble) PredictBatch(x [][]float64) []float64 {
	return parallel.Map(e.cfg.Workers, len(x), func(i int) float64 {
		return e.Predict(x[i])
	})
}

// NumTrees returns the ensemble size.
func (e *Ensemble) NumTrees() int { return len(e.trees) }

// RankAccuracy reports the fraction of all ordered pairs (i, j) with
// y[i] > y[j] that the model also orders correctly — the metric that
// matters for a tuner's candidate ranking.
func (e *Ensemble) RankAccuracy(x [][]float64, y []float64) float64 {
	pred := e.PredictBatch(x)
	type pair struct{ y, p float64 }
	ps := make([]pair, len(y))
	for i := range y {
		ps[i] = pair{y[i], pred[i]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].y < ps[b].y })
	correct, total := 0, 0
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			//glint:ignore floateq -- labels are exact data values; tied pairs are excluded from the rank metric
			if ps[i].y == ps[j].y {
				continue
			}
			total++
			if ps[j].p > ps[i].p {
				correct++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(correct) / float64(total)
}
