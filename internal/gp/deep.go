package gp

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// DeepRegressor approximates a deep Gaussian process the way the DGP
// baseline (Sun et al.) uses one for compilation transfer: a neural feature
// extractor is trained once on source-task measurements, and an exact GP is
// conditioned on the extracted features for each new target task. Transfer
// happens through the shared feature extractor.
type DeepRegressor struct {
	extractor *nn.Network
	trunk     *nn.Network // extractor without the final linear head
	gp        *Regressor
	featDim   int
}

// NewDeepRegressor builds the feature extractor: an MLP inDim→hidden→...→1
// whose final hidden layer (width featDim) becomes the GP input space.
func NewDeepRegressor(inDim, featDim int, g *rng.RNG) *DeepRegressor {
	net := nn.NewMLP([]int{inDim, 2 * featDim, featDim, 1}, nn.Tanh, g)
	return &DeepRegressor{extractor: net, featDim: featDim}
}

// PretrainSource trains the feature extractor end-to-end on source-task
// data (x, y). Call once before FitTarget.
func (d *DeepRegressor) PretrainSource(x [][]float64, y []float64, epochs int, g *rng.RNG) error {
	if err := checkDims(x, y); err != nil {
		return err
	}
	xm := mat.NewFromRows(x)
	ym := mat.New(len(y), 1)
	for i, v := range y {
		ym.Set(i, 0, v)
	}
	nn.Fit(d.extractor, xm, ym, nn.TrainConfig{
		Epochs:    epochs,
		BatchSize: 32,
		Optimizer: nn.NewAdam(5e-3),
		ClipNorm:  5,
	}, g)
	// The trunk is every layer but the final linear head.
	d.trunk = &nn.Network{Layers: d.extractor.Layers[:len(d.extractor.Layers)-1]}
	return nil
}

// features maps raw inputs through the trained trunk.
func (d *DeepRegressor) features(x [][]float64) ([][]float64, error) {
	if d.trunk == nil {
		return nil, fmt.Errorf("gp: DeepRegressor used before PretrainSource")
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = d.trunk.Predict(row)
	}
	return out, nil
}

// FitTarget conditions the GP head on target-task measurements.
func (d *DeepRegressor) FitTarget(x [][]float64, y []float64) error {
	feats, err := d.features(x)
	if err != nil {
		return err
	}
	gpr, err := FitWithGridSearch(feats, y, 1e-4, func(v, s float64) Kernel {
		return Matern52{Variance: v, LengthScale: s}
	})
	if err != nil {
		return err
	}
	d.gp = gpr
	return nil
}

// Predict returns the posterior mean and variance at q in raw input space.
func (d *DeepRegressor) Predict(q []float64) (mean, variance float64, err error) {
	if d.trunk == nil {
		return 0, 0, fmt.Errorf("gp: DeepRegressor used before PretrainSource")
	}
	if d.gp == nil {
		return 0, 0, fmt.Errorf("gp: DeepRegressor used before FitTarget")
	}
	m, v := d.gp.Predict(d.trunk.Predict(q))
	return m, v, nil
}
