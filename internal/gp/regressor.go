package gp

import (
	"math"

	"github.com/neuralcompile/glimpse/internal/mat"
)

// Regressor is an exact Gaussian-process regressor.
type Regressor struct {
	Kernel Kernel
	Noise  float64 // observation noise variance added to the diagonal

	x     [][]float64
	yMean float64
	alpha []float64   // K⁻¹(y - mean)
	chol  *mat.Matrix // Cholesky factor of K + noise·I
}

// NewRegressor returns a GP with the given kernel and noise variance.
func NewRegressor(k Kernel, noise float64) *Regressor {
	if noise <= 0 {
		noise = 1e-8
	}
	return &Regressor{Kernel: k, Noise: noise}
}

// Fit conditions the GP on the training data. Targets are internally
// centred on their mean so the GP prior mean matches the data scale.
func (r *Regressor) Fit(x [][]float64, y []float64) error {
	if err := checkDims(x, y); err != nil {
		return err
	}
	r.x = x
	r.yMean = mat.Mean(y)
	centered := make([]float64, len(y))
	for i, v := range y {
		centered[i] = v - r.yMean
	}
	k := gram(r.Kernel, x, r.Noise)
	chol, err := mat.Cholesky(k)
	if err != nil {
		// Add jitter progressively until the Gram matrix factors.
		jitter := r.Noise
		for attempt := 0; attempt < 8; attempt++ {
			jitter *= 10
			k = gram(r.Kernel, x, jitter)
			if chol, err = mat.Cholesky(k); err == nil {
				break
			}
		}
		if err != nil {
			return err
		}
	}
	r.chol = chol
	r.alpha = mat.SolveCholesky(chol, centered)
	return nil
}

// Fitted reports whether Fit has been called successfully.
func (r *Regressor) Fitted() bool { return r.chol != nil }

// Predict returns the posterior mean and variance at query point q.
func (r *Regressor) Predict(q []float64) (mean, variance float64) {
	if !r.Fitted() {
		return r.yMean, r.Kernel.Eval(q, q)
	}
	ks := make([]float64, len(r.x))
	for i, xi := range r.x {
		ks[i] = r.Kernel.Eval(q, xi)
	}
	mean = r.yMean + mat.Dot(ks, r.alpha)
	v := mat.SolveCholesky(r.chol, ks)
	variance = r.Kernel.Eval(q, q) - mat.Dot(ks, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// PredictBatch evaluates the posterior mean and variance at many points.
func (r *Regressor) PredictBatch(q [][]float64) (means, variances []float64) {
	means = make([]float64, len(q))
	variances = make([]float64, len(q))
	for i, p := range q {
		means[i], variances[i] = r.Predict(p)
	}
	return means, variances
}

// LogMarginalLikelihood returns log p(y | X, θ) for the fitted GP.
func (r *Regressor) LogMarginalLikelihood(y []float64) float64 {
	if !r.Fitted() {
		return math.Inf(-1)
	}
	centered := make([]float64, len(y))
	for i, v := range y {
		centered[i] = v - r.yMean
	}
	n := float64(len(y))
	fit := -0.5 * mat.Dot(centered, r.alpha)
	complexity := -0.5 * mat.LogDetCholesky(r.chol)
	norm := -0.5 * n * math.Log(2*math.Pi)
	return fit + complexity + norm
}

// FitWithGridSearch fits the GP trying each (variance, lengthscale) pair on
// a log grid and keeping the hyperparameters with the highest marginal
// likelihood. The kernel constructor adapts grid points to a concrete kernel.
func FitWithGridSearch(x [][]float64, y []float64, noise float64,
	makeKernel func(variance, lengthScale float64) Kernel) (*Regressor, error) {

	variances := []float64{0.1, 1, 10}
	scales := []float64{0.1, 0.3, 1, 3, 10}
	var best *Regressor
	bestLML := math.Inf(-1)
	for _, v := range variances {
		for _, s := range scales {
			r := NewRegressor(makeKernel(v, s), noise)
			if err := r.Fit(x, y); err != nil {
				continue
			}
			if lml := r.LogMarginalLikelihood(y); lml > bestLML {
				bestLML = lml
				best = r
			}
		}
	}
	if best == nil {
		// Every grid point failed to factor: fall back to a heavily
		// regularized default so callers still get a usable model.
		r := NewRegressor(makeKernel(1, 1), 1e-2)
		if err := r.Fit(x, y); err != nil {
			return nil, err
		}
		return r, nil
	}
	return best, nil
}
