package gp

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/neuralcompile/glimpse/internal/rng"
)

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{Variance: 2, LengthScale: 1.5}
	a := []float64{1, 2}
	// k(x,x) = σ².
	if got := k.Eval(a, a); math.Abs(got-2) > 1e-12 {
		t.Fatalf("k(x,x) = %g want 2", got)
	}
	// Symmetry and decay.
	b := []float64{3, 4}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Fatal("kernel not symmetric")
	}
	c := []float64{10, 10}
	if k.Eval(a, b) <= k.Eval(a, c) {
		t.Fatal("kernel does not decay with distance")
	}
}

func TestMatern52Properties(t *testing.T) {
	k := Matern52{Variance: 1, LengthScale: 1}
	a, b := []float64{0}, []float64{1}
	if got := k.Eval(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("k(x,x) = %g", got)
	}
	v := k.Eval(a, b)
	if v <= 0 || v >= 1 {
		t.Fatalf("k(0,1) = %g want in (0,1)", v)
	}
}

// Property: kernel matrices are positive semi-definite (Cholesky with
// jitter succeeds) for random point sets.
func TestGramPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := rng.New(seed)
		n := 2 + g.Intn(10)
		x := make([][]float64, n)
		for i := range x {
			x[i] = []float64{g.NormFloat64(), g.NormFloat64()}
		}
		r := NewRegressor(RBF{Variance: 1, LengthScale: 1}, 1e-6)
		return r.Fit(x, make([]float64, n)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGPInterpolatesTrainingData(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 4, 9}
	r := NewRegressor(RBF{Variance: 10, LengthScale: 1}, 1e-8)
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i, xi := range x {
		m, v := r.Predict(xi)
		if math.Abs(m-y[i]) > 1e-3 {
			t.Fatalf("mean at train point %v = %g want %g", xi, m, y[i])
		}
		if v > 1e-3 {
			t.Fatalf("variance at train point %v = %g want ≈0", xi, v)
		}
	}
}

func TestGPVarianceGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{0, 1}
	r := NewRegressor(RBF{Variance: 1, LengthScale: 0.5}, 1e-6)
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	_, vNear := r.Predict([]float64{0.5})
	_, vFar := r.Predict([]float64{5})
	if vFar <= vNear {
		t.Fatalf("variance near %g !< far %g", vNear, vFar)
	}
}

func TestGPUnfittedPredictsPrior(t *testing.T) {
	r := NewRegressor(RBF{Variance: 3, LengthScale: 1}, 1e-6)
	m, v := r.Predict([]float64{1})
	if m != 0 {
		t.Fatalf("prior mean = %g want 0", m)
	}
	if math.Abs(v-3) > 1e-12 {
		t.Fatalf("prior variance = %g want 3", v)
	}
}

func TestGPRejectsRaggedInput(t *testing.T) {
	r := NewRegressor(RBF{Variance: 1, LengthScale: 1}, 1e-6)
	err := r.Fit([][]float64{{1, 2}, {3}}, []float64{0, 1})
	if err == nil {
		t.Fatal("ragged input accepted")
	}
	if err := r.Fit(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if err := r.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	// Smooth data should prefer a longer lengthscale over a tiny one.
	g := rng.New(21)
	n := 30
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := float64(i) / 5
		x[i] = []float64{xi}
		y[i] = math.Sin(xi) + 0.01*g.NormFloat64()
	}
	long := NewRegressor(RBF{Variance: 1, LengthScale: 1}, 1e-4)
	short := NewRegressor(RBF{Variance: 1, LengthScale: 0.01}, 1e-4)
	if err := long.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := short.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if long.LogMarginalLikelihood(y) <= short.LogMarginalLikelihood(y) {
		t.Fatal("LML did not prefer the smoother model on smooth data")
	}
}

func TestFitWithGridSearch(t *testing.T) {
	g := rng.New(22)
	n := 40
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := g.Float64() * 6
		x[i] = []float64{xi}
		y[i] = math.Sin(xi)
	}
	r, err := FitWithGridSearch(x, y, 1e-4, func(v, s float64) Kernel {
		return RBF{Variance: v, LengthScale: s}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Should predict sin reasonably in-range.
	for _, q := range []float64{1, 2.5, 4} {
		m, _ := r.Predict([]float64{q})
		if math.Abs(m-math.Sin(q)) > 0.2 {
			t.Fatalf("grid-search GP at %g: %g want ≈%g", q, m, math.Sin(q))
		}
	}
}

func TestDeepRegressorTransfer(t *testing.T) {
	g := rng.New(23)
	// Source and target tasks share structure: y = f(w·x) with different w.
	gen := func(w float64, n int, r *rng.RNG) ([][]float64, []float64) {
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := r.Float64()*2-1, r.Float64()*2-1
			x[i] = []float64{a, b}
			y[i] = math.Tanh(w * (a + b))
		}
		return x, y
	}
	srcX, srcY := gen(2.0, 300, g.Split("src"))
	d := NewDeepRegressor(2, 4, g.Split("net"))
	if err := d.PretrainSource(srcX, srcY, 120, g.Split("train")); err != nil {
		t.Fatal(err)
	}
	tgtX, tgtY := gen(2.2, 20, g.Split("tgt"))
	if err := d.FitTarget(tgtX, tgtY); err != nil {
		t.Fatal(err)
	}
	// Predictions on fresh target points should correlate with truth.
	testX, testY := gen(2.2, 50, g.Split("test"))
	errSum := 0.0
	for i, q := range testX {
		m, _, err := d.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		errSum += math.Abs(m - testY[i])
	}
	if mean := errSum / float64(len(testX)); mean > 0.25 {
		t.Fatalf("deep GP mean abs error = %g want < 0.25", mean)
	}
}

func TestDeepRegressorUseBeforeTrainErrors(t *testing.T) {
	g := rng.New(24)
	d := NewDeepRegressor(2, 3, g)
	if _, _, err := d.Predict([]float64{0, 0}); err == nil {
		t.Fatal("Predict before training did not error")
	}
	if err := d.FitTarget([][]float64{{0, 0}}, []float64{1}); err == nil {
		t.Fatal("FitTarget before pretraining did not error")
	}
}
