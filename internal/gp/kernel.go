// Package gp implements exact Gaussian-process regression with RBF and
// Matérn kernels, marginal-likelihood hyperparameter selection, and a
// deep-feature variant (GP over neural-network features) used to reproduce
// the DGP baseline (Sun et al., ICCV 2021) that Glimpse compares against.
package gp

import (
	"fmt"
	"math"

	"github.com/neuralcompile/glimpse/internal/mat"
)

// Kernel computes the covariance between two feature vectors.
type Kernel interface {
	Eval(a, b []float64) float64
	// Hyper returns the hyperparameters (for reporting) as name→value.
	Hyper() map[string]float64
}

// RBF is the squared-exponential kernel σ²·exp(-‖a-b‖²/(2ℓ²)).
type RBF struct {
	Variance    float64 // σ²
	LengthScale float64 // ℓ
}

// Eval computes the RBF covariance.
func (k RBF) Eval(a, b []float64) float64 {
	d2 := mat.Dist2(a, b)
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

// Hyper reports the kernel hyperparameters.
func (k RBF) Hyper() map[string]float64 {
	return map[string]float64{"variance": k.Variance, "length_scale": k.LengthScale}
}

// Matern52 is the Matérn ν=5/2 kernel, a common BO default: less smooth
// than RBF, which suits rugged compilation search spaces.
type Matern52 struct {
	Variance    float64
	LengthScale float64
}

// Eval computes the Matérn-5/2 covariance.
func (k Matern52) Eval(a, b []float64) float64 {
	r := math.Sqrt(mat.Dist2(a, b)) / k.LengthScale
	s5r := math.Sqrt(5) * r
	return k.Variance * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
}

// Hyper reports the kernel hyperparameters.
func (k Matern52) Hyper() map[string]float64 {
	return map[string]float64{"variance": k.Variance, "length_scale": k.LengthScale}
}

// gram builds the symmetric kernel matrix K(X, X) + noise·I.
func gram(k Kernel, x [][]float64, noise float64) *mat.Matrix {
	n := len(x)
	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Eval(x[i], x[j])
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
		out.Set(i, i, out.At(i, i)+noise)
	}
	return out
}

// crossGram builds K(X*, X) between query points and training points.
func crossGram(k Kernel, xq, x [][]float64) *mat.Matrix {
	out := mat.New(len(xq), len(x))
	for i, q := range xq {
		for j, t := range x {
			out.Set(i, j, k.Eval(q, t))
		}
	}
	return out
}

func checkDims(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return fmt.Errorf("gp: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("gp: %d inputs but %d targets", len(x), len(y))
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return fmt.Errorf("gp: ragged input row %d (%d != %d)", i, len(row), d)
		}
	}
	return nil
}
