package codegen

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/hwspec"
)

// VerifyError describes one launch-validity violation found statically.
type VerifyError struct {
	Rule   string
	Detail string
}

// Error implements error.
func (e VerifyError) Error() string { return fmt.Sprintf("codegen: %s: %s", e.Rule, e.Detail) }

// Verify statically checks a lowered kernel against a device's launch
// limits, mirroring the rules the simulator enforces at "run time"
// (gpusim.CheckValid) and TVM's VerifyGPUCode pass. It returns every
// violated rule.
func Verify(k *Kernel, spec hwspec.Spec) []VerifyError {
	var errs []VerifyError
	if threads := k.BlockDim(); threads > spec.MaxThreadsPerBlock {
		errs = append(errs, VerifyError{
			Rule:   "threads_per_block",
			Detail: fmt.Sprintf("%d > %d", threads, spec.MaxThreadsPerBlock),
		})
	}
	if smem := k.SharedMemBytes(); smem > spec.MaxSmemPerBlockKB*1024 {
		errs = append(errs, VerifyError{
			Rule:   "shared_memory",
			Detail: fmt.Sprintf("%d B > %d KB", smem, spec.MaxSmemPerBlockKB),
		})
	}
	if vt := k.VThreads(); vt > 64 {
		errs = append(errs, VerifyError{
			Rule:   "vthreads",
			Detail: fmt.Sprintf("%d > 64", vt),
		})
	}
	if grid := k.GridDim(); grid > (1<<31)-1 {
		errs = append(errs, VerifyError{
			Rule:   "grid_dim",
			Detail: fmt.Sprintf("%d blocks", grid),
		})
	}
	// Register-file exhaustion: the scheduling-time estimate, capped per
	// thread by the architecture (the compiler spills past 255).
	regsPerThread := k.RegsPerThread
	if regsPerThread == 0 {
		regsPerThread = 16 + (5*k.AccumVars)/4 // hand-built kernels
	}
	if regsPerThread > 255 {
		regsPerThread = 255
	}
	if regsPerThread*k.BlockDim() > spec.RegsPerSM {
		errs = append(errs, VerifyError{
			Rule:   "register_file",
			Detail: fmt.Sprintf("%d × %d > %d", regsPerThread, k.BlockDim(), spec.RegsPerSM),
		})
	}
	return errs
}
