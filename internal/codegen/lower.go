package codegen

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Lower turns one configuration of a task into a kernel IR. The loop
// structure follows the TVM CUDA schedule templates that internal/space
// models: 4-way output splits bound to block/vthread/thread/serial, 2-way
// reduction splits with a shared-memory staging stage at the outer
// reduction level, and the unrolling knobs as pragmas.
func Lower(task workload.Task, sp *space.Space, cfg space.Config) (*Kernel, error) {
	res, err := space.Derive(task, sp, cfg)
	if err != nil {
		return nil, err
	}
	get := func(name string) ([]int, error) {
		k, i, err := sp.KnobByName(name)
		if err != nil {
			return nil, err
		}
		return k.SplitValue(cfg[i]), nil
	}

	kern := &Kernel{
		Name:          sanitize(task.Name()),
		AccumVars:     res.OutputsPerThread,
		RegsPerThread: res.RegsPerThread,
		UnrollMax:     res.UnrollStep,
	}
	serial := Serial
	if res.UnrollExplicit {
		serial = Unrolled
	}

	switch sp.Template {
	case "conv2d":
		tf, err := get(space.KnobTileF)
		if err != nil {
			return nil, err
		}
		ty, err := get(space.KnobTileY)
		if err != nil {
			return nil, err
		}
		tx, err := get(space.KnobTileX)
		if err != nil {
			return nil, err
		}
		rc, err := get(space.KnobTileRC)
		if err != nil {
			return nil, err
		}
		ry, err := get(space.KnobTileRY)
		if err != nil {
			return nil, err
		}
		rx, err := get(space.KnobTileRX)
		if err != nil {
			return nil, err
		}
		kern.Loops = []Loop{
			{"f_block", tf[0], BlockZ},
			{"y_block", ty[0], BlockY},
			{"x_block", tx[0], BlockX},
			{"f_vt", tf[1], VThread},
			{"y_vt", ty[1], VThread},
			{"x_vt", tx[1], VThread},
			{"f_thr", tf[2], ThreadZ},
			{"y_thr", ty[2], ThreadY},
			{"x_thr", tx[2], ThreadX},
			{"rc_o", rc[0], Serial},
			{"ry_o", ry[0], Serial},
			{"rx_o", rx[0], Serial},
			{"rc_i", rc[1], serial},
			{"ry_i", ry[1], serial},
			{"rx_i", rx[1], serial},
			{"f_in", tf[3], serial},
			{"y_in", ty[3], serial},
			{"x_in", tx[3], serial},
		}
		c := task.Conv
		inTile := ((blockExtent(ty)-1)*c.Stride + c.Kernel) *
			((blockExtent(tx)-1)*c.Stride + c.Kernel) * rc[1]
		filtTile := blockExtent(tf) * rc[1] * ry[1] * rx[1]
		kern.Shared = []Buffer{
			{"in_smem", inTile},
			{"w_smem", filtTile},
		}
		kern.Stages = []Stage{{
			AfterLoop: "rc_o",
			Fills: []string{
				"cooperative_fetch(in_smem, in)",
				"cooperative_fetch(w_smem, w)",
			},
		}}
		kern.Body = "acc[acc_idx(f_vt,y_vt,x_vt,f_in,y_in,x_in)] += in_smem[in_idx(y_in,x_in,rc_i,ry_i,rx_i)] * w_smem[w_idx(f_in,rc_i,ry_i,rx_i)]"

	case "winograd_conv2d":
		tp, err := get(space.KnobTileP)
		if err != nil {
			return nil, err
		}
		tc, err := get(space.KnobTileCO)
		if err != nil {
			return nil, err
		}
		ci, err := get(space.KnobTileCI)
		if err != nil {
			return nil, err
		}
		kern.Loops = []Loop{
			{"eps_nu", 16, BlockZ}, // 4×4 transformed-domain positions
			{"co_block", tc[0], BlockY},
			{"p_block", tp[0], BlockX},
			{"co_vt", tc[1], VThread},
			{"p_vt", tp[1], VThread},
			{"co_thr", tc[2], ThreadY},
			{"p_thr", tp[2], ThreadX},
			{"ci_o", ci[0], Serial},
			{"ci_i", ci[1], serial},
			{"co_in", tc[3], serial},
			{"p_in", tp[3], serial},
		}
		kern.Shared = []Buffer{
			{"data_smem", blockExtent(tp) * ci[1]},
			{"kernel_smem", blockExtent(tc) * ci[1]},
		}
		kern.Stages = []Stage{{
			AfterLoop: "ci_o",
			Fills: []string{
				"cooperative_fetch(data_smem, in /* BtdB-transformed */)",
				"cooperative_fetch(kernel_smem, w /* GgGt-transformed */)",
			},
		}}
		kern.Body = "acc[acc_idx(co_vt,p_vt,co_in,p_in)] += data_smem[d_idx(p_in,ci_i)] * kernel_smem[k_idx(co_in,ci_i)]"

	case "dense":
		ty, err := get(space.KnobTileY)
		if err != nil {
			return nil, err
		}
		tk, err := get(space.KnobTileK)
		if err != nil {
			return nil, err
		}
		kern.Loops = []Loop{
			{"y_block", ty[0], BlockX},
			{"y_thr", ty[1], ThreadX},
			{"k_o", tk[0], Serial},
			{"k_i", tk[1], serial},
			{"y_in", ty[2], serial},
		}
		kern.Shared = []Buffer{
			{"in_smem", tk[1] * (1 + res.ThreadsPerBlock/8)},
		}
		kern.Stages = []Stage{{
			AfterLoop: "k_o",
			Fills:     []string{"cooperative_fetch(in_smem, in)"},
		}}
		kern.Body = "acc[y_in] += in_smem[k_i] * w[w_idx(y_block,y_thr,y_in,k_o,k_i)]"

	default:
		return nil, fmt.Errorf("codegen: unknown template %q", sp.Template)
	}
	return kern, nil
}

// blockExtent is the per-block output extent of a 4-way split: everything
// but the grid factor.
func blockExtent(split []int) int {
	e := 1
	for _, f := range split[1:] {
		e *= f
	}
	return e
}

// sanitize makes a task name a legal C identifier.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return "kernel_" + string(out)
}
