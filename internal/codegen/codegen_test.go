package codegen

import (
	"strings"
	"testing"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func lowerRandom(t *testing.T, model string, l int, seed int64) (*Kernel, workload.Task, *space.Space, space.Config) {
	t.Helper()
	task, err := workload.TaskByIndex(model, l)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	g := rng.New(seed)
	cfg := sp.FromIndex(sp.RandomIndex(g))
	k, err := Lower(task, sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, task, sp, cfg
}

// TestLowerAgreesWithDerive is the consistency contract: the kernel IR's
// resource accounting must match space.Derive for every template, across
// many random configurations.
func TestLowerAgreesWithDerive(t *testing.T) {
	refs := []struct {
		model string
		l     int
	}{
		{workload.ResNet18, 7},  // conv2d
		{workload.ResNet18, 13}, // winograd
		{workload.ResNet18, 17}, // dense
		{workload.AlexNet, 1},
		{workload.VGG16, 17},
	}
	for _, ref := range refs {
		task, err := workload.TaskByIndex(ref.model, ref.l)
		if err != nil {
			t.Fatal(err)
		}
		sp := space.MustForTask(task)
		g := rng.New(int64(ref.l) * 31)
		for i := 0; i < 100; i++ {
			cfg := sp.FromIndex(sp.RandomIndex(g))
			k, err := Lower(task, sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := space.Derive(task, sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if k.BlockDim() != res.ThreadsPerBlock {
				t.Fatalf("%s: IR threads %d != derive %d (%s)",
					task.Name(), k.BlockDim(), res.ThreadsPerBlock, sp.Describe(cfg))
			}
			if k.VThreads() != res.VThreads {
				t.Fatalf("%s: IR vthreads %d != derive %d", task.Name(), k.VThreads(), res.VThreads)
			}
			if k.SharedMemBytes() != res.SharedMemBytes {
				t.Fatalf("%s: IR smem %d != derive %d (%s)",
					task.Name(), k.SharedMemBytes(), res.SharedMemBytes, sp.Describe(cfg))
			}
			if k.AccumVars != res.OutputsPerThread {
				t.Fatalf("%s: IR accum %d != derive %d", task.Name(), k.AccumVars, res.OutputsPerThread)
			}
			wantGrid := res.Blocks
			if sp.Template == "winograd_conv2d" {
				wantGrid *= 16 // transformed-domain positions ride the grid
			}
			if k.GridDim() != wantGrid {
				t.Fatalf("%s: IR grid %d != derive %d", task.Name(), k.GridDim(), wantGrid)
			}
		}
	}
}

// TestVerifyAgreesWithSimulator: a kernel the static verifier passes must
// be accepted by the simulated device, and vice versa (thread/smem/vthread
// rules; the register rule is an estimate on both sides and matches by
// construction).
func TestVerifyAgreesWithSimulator(t *testing.T) {
	spec := hwspec.MustByName(hwspec.TitanXp)
	dev := gpusim.NewDevice(spec)
	for _, l := range []int{7, 13, 17} { // conv2d, winograd, dense
		task, err := workload.TaskByIndex(workload.ResNet18, l)
		if err != nil {
			t.Fatal(err)
		}
		sp := space.MustForTask(task)
		g := rng.New(int64(9 + l))
		for i := 0; i < 300; i++ {
			cfg := sp.FromIndex(sp.RandomIndex(g))
			k, err := Lower(task, sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := space.Derive(task, sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			simOK, _ := dev.CheckValid(res)
			verifyOK := len(Verify(k, spec)) == 0
			if simOK != verifyOK {
				t.Fatalf("%s: verifier %v but simulator %v for %s", task.Name(), verifyOK, simOK, sp.Describe(cfg))
			}
		}
	}
}

func TestVerifyReportsEachRule(t *testing.T) {
	spec := hwspec.MustByName(hwspec.TitanXp)
	k := &Kernel{
		Loops: []Loop{
			{"t", 2048, ThreadX},
			{"v", 128, VThread},
		},
		Shared:    []Buffer{{"s", 1 << 20}},
		AccumVars: 4,
	}
	errs := Verify(k, spec)
	rules := map[string]bool{}
	for _, e := range errs {
		rules[e.Rule] = true
		if e.Error() == "" {
			t.Fatal("empty error text")
		}
	}
	for _, want := range []string{"threads_per_block", "shared_memory", "vthreads"} {
		if !rules[want] {
			t.Fatalf("rule %q not reported: %v", want, errs)
		}
	}
}

func TestRenderContainsScheduleMarkers(t *testing.T) {
	k, task, sp, cfg := lowerRandom(t, workload.ResNet18, 7, 1)
	src := k.Render()
	for _, frag := range []string{
		"__global__ void kernel_resnet_18_L7_conv2d",
		"__shared__ float in_smem",
		"__shared__ float w_smem",
		"__syncthreads()",
		"blockIdx.x", "threadIdx.x",
		"float acc[",
	} {
		if !strings.Contains(src, frag) {
			t.Fatalf("render missing %q:\n%s", frag, src)
		}
	}
	_ = task
	_ = sp
	_ = cfg
}

func TestRenderUnrollPragmas(t *testing.T) {
	task, err := workload.TaskByIndex(workload.AlexNet, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	cfg := make(space.Config, sp.NumKnobs())
	_, ui, err := sp.KnobByName(space.KnobUnroll)
	if err != nil {
		t.Fatal(err)
	}
	_, ei, err := sp.KnobByName(space.KnobUnrollE)
	if err != nil {
		t.Fatal(err)
	}
	cfg[ui] = 2 // 1500
	cfg[ei] = 1 // explicit
	k, err := Lower(task, sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := k.Render()
	if !strings.Contains(src, "#pragma auto_unroll_max_step 1500") {
		t.Fatalf("missing unroll pragma:\n%s", src)
	}
	if !strings.Contains(src, "#pragma unroll") {
		t.Fatalf("missing explicit unroll:\n%s", src)
	}
}

func TestRenderWinogradAndDense(t *testing.T) {
	kw, _, _, _ := lowerRandom(t, workload.ResNet18, 13, 2)
	if !strings.Contains(kw.Render(), "BtdB-transformed") {
		t.Fatal("winograd kernel missing transform stage")
	}
	kd, _, _, _ := lowerRandom(t, workload.ResNet18, 17, 3)
	if !strings.Contains(kd.Render(), "in_smem[k_i]") {
		t.Fatalf("dense kernel body wrong:\n%s", kd.Render())
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("resnet-18.L7.conv2d"); got != "kernel_resnet_18_L7_conv2d" {
		t.Fatalf("sanitize = %q", got)
	}
}
