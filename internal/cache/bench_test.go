package cache_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// BenchmarkCacheExactHit prices the serving fast path: one Get against a
// populated store. Compare its ns/op against any tuning session's minutes
// — an exact hit replaces the whole session with zero measurements.
func BenchmarkCacheExactHit(b *testing.B) {
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		b.Fatal(err)
	}
	sp := space.MustForTask(task)
	fp := cache.Fingerprint(task, sp)
	store := cache.NewMemory()
	// A populated store: every registry device for this fingerprint, plus
	// synthetic fingerprints to give the index realistic occupancy.
	for _, spec := range hwspec.Registry() {
		emb, err := cache.EmbedDevice(spec.Name)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			if _, err := store.Put(cache.Entry{
				Fingerprint: fmt.Sprintf("%s-%d", fp, i),
				Device:      spec.Name,
				Embedding:   emb,
				BestConfig:  int64(i),
				GFLOPS:      float64(1000 + i),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := store.Put(cache.Entry{
			Fingerprint: fp, Device: spec.Name, Embedding: emb,
			BestConfig: 11, GFLOPS: 900,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := store.Get(fp, hwspec.TitanXp); !ok {
			b.Fatal("exact hit missed")
		}
	}
}

// benchToolkit trains a (cheap, test-scale) Glimpse toolkit per device,
// shared across benchmark iterations.
var (
	benchTkMu  sync.Mutex
	benchTks   = map[string]*core.Toolkit{}
	benchTkErr error
)

func benchToolkit(b *testing.B, device string) *core.Toolkit {
	b.Helper()
	benchTkMu.Lock()
	defer benchTkMu.Unlock()
	if benchTkErr != nil {
		b.Fatal(benchTkErr)
	}
	if tk, ok := benchTks[device]; ok {
		return tk
	}
	var tasks []workload.Task
	for _, ref := range []struct {
		model string
		l     int
	}{
		{workload.ResNet18, 4}, {workload.ResNet18, 5}, {workload.ResNet18, 7},
		{workload.ResNet18, 8}, {workload.ResNet18, 9}, {workload.ResNet18, 10},
		{workload.AlexNet, 2}, {workload.AlexNet, 3}, {workload.VGG16, 8},
	} {
		task, err := workload.TaskByIndex(ref.model, ref.l)
		if err != nil {
			benchTkErr = err
			b.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	pool := []string{"gtx-1080", "gtx-1080-ti", "rtx-2070", "rtx-2080",
		"rtx-2080-ti", "titan-rtx", "rtx-3070", "rtx-3080"}
	train := pool[:0:0]
	for _, gpu := range pool {
		if gpu != device {
			train = append(train, gpu)
		}
	}
	tk, err := core.TrainToolkit(device, core.ToolkitConfig{
		TrainGPUs:  train,
		PriorTasks: tasks,
		Prior: prior.TrainConfig{
			Dataset: prior.DatasetConfig{SamplesPerTask: 150, TopK: 16},
			Epochs:  200,
		},
		MetaGPUs: 2,
	}, rng.New(1234))
	if err != nil {
		benchTkErr = err
		b.Fatal(err)
	}
	benchTks[device] = tk
	return tk
}

// BenchmarkCacheWarmVsCold runs the cache's transfer scenario end to end
// and reports the headline economics (run with -benchtime 1x):
//
//   - donor SKUs tune each task with their own Glimpse toolkits and
//     publish their bests into a store;
//   - the target GPU tunes cold (no cache) under the full budget;
//   - the target tunes again warm-started from its 3 nearest donors, and
//     the benchmark records how many measurements the warm run needed to
//     match the cold run's final best.
//
// Metrics: meas_savings_% is 100% × (1 − warm-match/cold measurements)
// averaged over ALL tasks, with a warm run that never reaches the cold
// best contributing zero (the conservative accounting); matched_tasks
// counts how many warm runs reached the cold best at all.
func BenchmarkCacheWarmVsCold(b *testing.B) {
	tk := benchToolkit(b, hwspec.TitanXp)
	donors := []string{"rtx-3090", "rtx-2080-ti", "gtx-1080-ti"}
	taskRefs := []int{7, 9, 10}
	budget := tuner.Budget{MaxMeasurements: 128}

	for i := 0; i < b.N; i++ {
		store := cache.NewMemory()
		g := rng.New(77)
		for _, donor := range donors {
			dtk := benchToolkit(b, donor)
			m, err := measure.NewLocal(donor)
			if err != nil {
				b.Fatal(err)
			}
			for _, l := range taskRefs {
				task, err := workload.TaskByIndex(workload.ResNet18, l)
				if err != nil {
					b.Fatal(err)
				}
				sp := space.MustForTask(task)
				res, err := dtk.Tuner().Tune(task, sp, m, budget,
					g.Split(fmt.Sprintf("donor/%s/%s", donor, task.Name())))
				if err != nil {
					b.Fatal(err)
				}
				if ce, ok := cache.EntryFromResult(cache.Fingerprint(task, sp), donor, res, sp); ok {
					if _, err := store.Put(ce); err != nil {
						b.Fatal(err)
					}
				}
			}
		}

		m, err := measure.NewLocal(hwspec.TitanXp)
		if err != nil {
			b.Fatal(err)
		}
		var coldBestSum, warmBestSum, savingsSum float64
		matched := 0
		for _, l := range taskRefs {
			task, err := workload.TaskByIndex(workload.ResNet18, l)
			if err != nil {
				b.Fatal(err)
			}
			sp := space.MustForTask(task)

			cold := tk.Tuner()
			coldRes, err := cold.Tune(task, sp, m, budget, g.Split("cold/"+task.Name()))
			if err != nil {
				b.Fatal(err)
			}

			warm := tk.Tuner()
			ws := store.WarmStart(cache.Fingerprint(task, sp), hwspec.TitanXp, sp, 3)
			if ws == nil {
				b.Fatalf("no donors for %s", task.Name())
			}
			warm.SetWarmStart(ws)
			warmRes, err := warm.Tune(task, sp, m, budget, g.Split("warm/"+task.Name()))
			if err != nil {
				b.Fatal(err)
			}

			coldBestSum += coldRes.BestGFLOPS
			warmBestSum += warmRes.BestGFLOPS
			cross := 0
			for _, h := range warmRes.History {
				if h.BestGFLOPS >= coldRes.BestGFLOPS {
					cross = h.Measurements
					matched++
					savingsSum += 1 - float64(h.Measurements)/float64(coldRes.Measurements)
					break
				}
			}
			b.Logf("%s: cold %.0f@%d warm %.0f@%d (match@%d)", task.Name(),
				coldRes.BestGFLOPS, coldRes.Measurements, warmRes.BestGFLOPS, warmRes.Measurements, cross)
		}
		n := float64(len(taskRefs))
		b.ReportMetric(coldBestSum/n, "cold_best_gflops")
		b.ReportMetric(warmBestSum/n, "warm_best_gflops")
		b.ReportMetric(float64(matched), "matched_tasks")
		b.ReportMetric(100*savingsSum/n, "meas_savings_%")
	}
}
