package cache

import (
	"math"

	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// WarmStart is what a cache miss hands the tuner: transferred priors from
// the nearest donor devices that already tuned the same workload.
type WarmStart struct {
	// Seeds are donor best configurations (nearest donor first, deduped);
	// they join the §3.1 initial measurement batch so the first hardware
	// results land where a neighbor SKU already found performance.
	Seeds []int64
	// Features/GFLOPS are donor measurements featurized through the target
	// space, each donor's values normalized by its own best so only the
	// transferable *ranking* crosses devices; they pre-train the surrogate
	// before the first target measurement exists.
	Features [][]float64
	GFLOPS   []float64
	// Donors names the contributing devices, nearest first.
	Donors []string
}

// WarmStartable is the hook a tuner implements to accept transferred
// warm-start state (core.Glimpse does).
type WarmStartable interface {
	SetWarmStart(*WarmStart)
}

// WarmStart builds the transfer payload for a cache miss from the k
// nearest donors, or returns nil when the store knows no donor for the
// fingerprint. Donor configs that fall outside the target space (a stale
// entry from a reshaped template, guarded against by the fingerprint but
// re-checked here) are dropped rather than trusted.
func (s *Store) WarmStart(fingerprint, device string, sp *space.Space, k int) *WarmStart {
	donors := s.Nearest(fingerprint, device, k)
	if len(donors) == 0 {
		return nil
	}
	ws := &WarmStart{}
	seen := map[int64]bool{}
	for _, d := range donors {
		if d.BestConfig >= sp.Size() {
			continue
		}
		ws.Donors = append(ws.Donors, d.Device)
		if !seen[d.BestConfig] {
			seen[d.BestConfig] = true
			ws.Seeds = append(ws.Seeds, d.BestConfig)
		}
		usable := d.Samples[:0:0]
		scale := d.GFLOPS
		for _, smp := range d.Samples {
			if smp.Config < 0 || smp.Config >= sp.Size() {
				continue
			}
			usable = append(usable, smp)
			if smp.GFLOPS > scale {
				scale = smp.GFLOPS
			}
		}
		if scale <= 0 {
			continue
		}
		// Entries store samples best-first; cap each donor's contribution so
		// a few donors cannot crowd the target's own measurements out of the
		// surrogate's training window.
		if len(usable) > MaxSamplesPerDonor {
			usable = usable[:MaxSamplesPerDonor]
		}
		for _, smp := range usable {
			ws.Features = append(ws.Features, sp.FeaturesAt(smp.Config))
			ws.GFLOPS = append(ws.GFLOPS, smp.GFLOPS/scale)
		}
	}
	if len(ws.Seeds) == 0 && len(ws.Features) == 0 {
		return nil
	}
	s.mu.Lock()
	s.count("cache_warm_start", &s.stats.WarmStarts)
	s.mu.Unlock()
	return ws
}

// MaxSamplesPerDonor bounds the surrogate rows one donor contributes to a
// warm start (its samples are stored best-first, so the bound keeps the
// strongest evidence).
const MaxSamplesPerDonor = 12

// WarmBudgetFrac is the default budget kept by a warm-started session:
// transferred seeds and surrogate priors let it reach the cold run's
// quality well under the full budget (ROADMAP item 2 targets ≥30% fewer
// measurements), so serving infrastructure spends 70% and banks the rest.
const WarmBudgetFrac = 0.7

// ShrinkBudget scales a session budget for a warm start, rounding up and
// never below one measurement. Zero (unset) bounds stay unset.
func ShrinkBudget(b tuner.Budget, frac float64) tuner.Budget {
	if frac <= 0 || frac >= 1 {
		return b
	}
	if b.MaxMeasurements > 0 {
		b.MaxMeasurements = int(math.Ceil(float64(b.MaxMeasurements) * frac))
		if b.MaxMeasurements < 1 {
			b.MaxMeasurements = 1
		}
	}
	if b.MaxGPUSeconds > 0 {
		b.MaxGPUSeconds *= frac
	}
	return b
}

// EntryFromResult packages a finished tuning session as a cache entry.
// Returns ok=false when the session found nothing worth storing.
func EntryFromResult(fingerprint, device string, res *tuner.Result, sp *space.Space) (Entry, bool) {
	if res == nil || res.BestIndex < 0 || res.BestGFLOPS <= 0 {
		return Entry{}, false
	}
	e := Entry{
		Fingerprint:  fingerprint,
		Device:       device,
		TaskName:     res.TaskName,
		BestConfig:   res.BestIndex,
		Schedule:     sp.Describe(sp.FromIndex(res.BestIndex)),
		GFLOPS:       res.BestGFLOPS,
		TimeMS:       res.BestTimeMS,
		Measurements: res.Measurements,
	}
	for _, m := range res.TopMeasured {
		e.Samples = append(e.Samples, Sample{Config: m.Index, GFLOPS: m.GFLOPS})
	}
	return e, true
}
