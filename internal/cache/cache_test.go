package cache

import (
	"math"
	"path/filepath"
	"sort"
	"testing"

	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func testTask(t *testing.T) (workload.Task, *space.Space) {
	t.Helper()
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	return task, space.MustForTask(task)
}

func testEntry(t *testing.T, fp, device string, best int64, gflops float64) Entry {
	t.Helper()
	emb, err := EmbedDevice(device)
	if err != nil {
		t.Fatal(err)
	}
	return Entry{
		Fingerprint: fp,
		Device:      device,
		Embedding:   emb,
		BestConfig:  best,
		GFLOPS:      gflops,
	}
}

func openStore(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFingerprintNameIndependent(t *testing.T) {
	task, sp := testTask(t)
	fp := Fingerprint(task, sp)

	// Renaming the workload must not change the fingerprint: the cache
	// serves by shape, not by model name.
	renamed := task
	renamed.Model = "some-other-net"
	renamed.Index = 42
	if got := Fingerprint(renamed, space.MustForTask(renamed)); got != fp {
		t.Fatalf("renamed task changed fingerprint:\n%q\n%q", got, fp)
	}

	// A different shape must change it.
	other, err := workload.TaskByIndex(workload.AlexNet, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(other, space.MustForTask(other)); got == fp {
		t.Fatalf("different shapes share fingerprint %q", fp)
	}
}

func TestPutGetExactHit(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "cache.jsonl"))
	e := testEntry(t, "fp-a", "titan-xp", 11, 900)
	e.Schedule = "tile_f=[4 2 2 7]"
	if stored, err := s.Put(e); err != nil || !stored {
		t.Fatalf("Put = (%v, %v), want stored", stored, err)
	}
	got, ok := s.Get("fp-a", "titan-xp")
	if !ok {
		t.Fatal("exact lookup missed")
	}
	if got.BestConfig != 11 || got.GFLOPS != 900 || got.Schedule != e.Schedule {
		t.Fatalf("Get returned %+v", got)
	}
	if _, ok := s.Get("fp-a", "rtx-3090"); ok {
		t.Fatal("lookup for a different device hit — cross-device serving is forbidden")
	}
	if _, ok := s.Get("fp-other", "titan-xp"); ok {
		t.Fatal("lookup for a different fingerprint hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutImprovementOnly(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "cache.jsonl"))
	if stored, _ := s.Put(testEntry(t, "fp", "titan-xp", 1, 500)); !stored {
		t.Fatal("first put not stored")
	}
	if stored, _ := s.Put(testEntry(t, "fp", "titan-xp", 2, 400)); stored {
		t.Fatal("worse entry stored")
	}
	if stored, _ := s.Put(testEntry(t, "fp", "titan-xp", 3, 500)); stored {
		t.Fatal("tied entry stored (ties must keep the incumbent)")
	}
	if stored, _ := s.Put(testEntry(t, "fp", "titan-xp", 4, 600)); !stored {
		t.Fatal("improvement not stored")
	}
	got, ok := s.Get("fp", "titan-xp")
	if !ok || got.BestConfig != 4 || got.GFLOPS != 600 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if st := s.Stats(); st.Puts != 2 || st.PutSkips != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetEmbeddingDriftMiss(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "cache.jsonl"))
	e := testEntry(t, "fp", "titan-xp", 5, 800)
	// Simulate a store written when the spec behind "titan-xp" differed:
	// the config was tuned for other hardware, so serving it is wrong.
	e.Embedding[0] += 1.0
	if _, err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("fp", "titan-xp"); ok {
		t.Fatal("stale embedding served as an exact hit")
	}
}

func TestReopenPreservesBest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s := openStore(t, path)
	if _, err := s.Put(testEntry(t, "fp", "titan-xp", 1, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testEntry(t, "fp", "titan-xp", 2, 700)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testEntry(t, "fp", "rtx-3090", 3, 900)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, path)
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d want 2", re.Len())
	}
	got, ok := re.Get("fp", "titan-xp")
	if !ok || got.BestConfig != 2 || got.GFLOPS != 700 {
		t.Fatalf("reopened Get = %+v, %v", got, ok)
	}
}

func TestNearestOrderingAndExclusion(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "cache.jsonl"))
	devices := []string{"titan-xp", "rtx-2080-ti", "gtx-1080-ti", "rtx-2060"}
	for i, d := range devices {
		if _, err := s.Put(testEntry(t, "fp", d, int64(i+1), 500)); err != nil {
			t.Fatal(err)
		}
	}
	// Entry under a different fingerprint must never appear.
	if _, err := s.Put(testEntry(t, "fp-other", "rtx-3090", 9, 999)); err != nil {
		t.Fatal(err)
	}

	got := s.Nearest("fp", "titan-xp", 10)
	if len(got) != 3 {
		t.Fatalf("Nearest returned %d donors, want 3 (self and other fingerprints excluded)", len(got))
	}
	for _, e := range got {
		if e.Device == "titan-xp" || e.Fingerprint != "fp" {
			t.Fatalf("Nearest returned %s/%s", e.Fingerprint, e.Device)
		}
	}
	// Distances must be non-decreasing.
	query, err := EmbedDevice("titan-xp")
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, e := range got {
		d := 0.0
		for i := range query {
			diff := query[i] - e.Embedding[i]
			d += diff * diff
		}
		if d < prev {
			t.Fatalf("Nearest not sorted by distance: %v then %v", prev, d)
		}
		prev = d
	}
	// k caps the result.
	if got := s.Nearest("fp", "titan-xp", 2); len(got) != 2 {
		t.Fatalf("Nearest(k=2) returned %d", len(got))
	}
	// Deterministic across calls.
	a, b := s.Nearest("fp", "titan-xp", 3), s.Nearest("fp", "titan-xp", 3)
	for i := range a {
		if a[i].Device != b[i].Device {
			t.Fatalf("Nearest order flapped: %v vs %v", a, b)
		}
	}
}

func TestNearestTieBreaksByDeviceName(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "cache.jsonl"))
	emb, err := EmbedDevice("rtx-3090")
	if err != nil {
		t.Fatal(err)
	}
	// Two donors at the exact same point in embedding space: order must
	// fall back to device name, not map iteration order.
	for _, d := range []string{"rtx-2070-super", "rtx-2070"} {
		e := testEntry(t, "fp", d, 1, 500)
		e.Embedding = append([]float64(nil), emb...)
		if _, err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Nearest("fp", "rtx-3090", 2)
	if len(got) != 2 || got[0].Device != "rtx-2070" || got[1].Device != "rtx-2070-super" {
		t.Fatalf("tied donors out of order: %v, %v", got[0].Device, got[1].Device)
	}
}

func TestWarmStartPayload(t *testing.T) {
	_, sp := testTask(t)
	s := openStore(t, filepath.Join(t.TempDir(), "cache.jsonl"))

	a := testEntry(t, "fp", "rtx-2080-ti", 100, 800)
	a.Samples = []Sample{
		{Config: 100, GFLOPS: 800},
		{Config: 200, GFLOPS: 400},
		{Config: sp.Size() + 5, GFLOPS: 999}, // stale index: must be dropped
	}
	b := testEntry(t, "fp", "gtx-1080-ti", 100, 300) // same best as a: dedup
	b.Samples = []Sample{{Config: 300, GFLOPS: 150}}
	for _, e := range []Entry{a, b} {
		if _, err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}

	ws := s.WarmStart("fp", "titan-xp", sp, 3)
	if ws == nil {
		t.Fatal("WarmStart returned nil with two donors present")
	}
	if len(ws.Seeds) != 1 || ws.Seeds[0] != 100 {
		t.Fatalf("Seeds = %v, want deduped [100]", ws.Seeds)
	}
	if len(ws.Donors) != 2 {
		t.Fatalf("Donors = %v", ws.Donors)
	}
	// 3 usable samples (stale one dropped), each normalized by its own
	// donor's best: a contributes 800/800 and 400/800, b contributes
	// 150/300. The stale sample must not inflate a's scale.
	if len(ws.Features) != 3 || len(ws.GFLOPS) != 3 {
		t.Fatalf("got %d features / %d gflops, want 3", len(ws.Features), len(ws.GFLOPS))
	}
	norm := append([]float64(nil), ws.GFLOPS...)
	sort.Float64s(norm)
	want := []float64{0.5, 0.5, 1.0}
	for i := range want {
		if math.Abs(norm[i]-want[i]) > 1e-12 {
			t.Fatalf("normalized GFLOPS = %v, want %v", norm, want)
		}
	}
	for i, f := range ws.Features {
		if len(f) != sp.FeatureLen() {
			t.Fatalf("Features[%d] has %d dims, want %d", i, len(f), sp.FeatureLen())
		}
	}

	if ws := s.WarmStart("fp-unknown", "titan-xp", sp, 3); ws != nil {
		t.Fatalf("unknown fingerprint produced warm start %+v", ws)
	}
	if st := s.Stats(); st.WarmStarts != 1 {
		t.Fatalf("stats = %+v, want 1 warm start", st)
	}
}

func TestShrinkBudget(t *testing.T) {
	b := tuner.Budget{MaxMeasurements: 100, MaxGPUSeconds: 10, Patience: 3, Epsilon: 0.01}
	got := ShrinkBudget(b, 0.7)
	if got.MaxMeasurements != 70 || math.Abs(got.MaxGPUSeconds-7) > 1e-12 {
		t.Fatalf("ShrinkBudget = %+v", got)
	}
	if got.Patience != 3 || got.Epsilon != 0.01 {
		t.Fatalf("ShrinkBudget dropped convergence params: %+v", got)
	}
	// Rounds up, never below one measurement.
	if got := ShrinkBudget(tuner.Budget{MaxMeasurements: 3}, 0.5); got.MaxMeasurements != 2 {
		t.Fatalf("ceil: got %d want 2", got.MaxMeasurements)
	}
	if got := ShrinkBudget(tuner.Budget{MaxMeasurements: 1}, 0.1); got.MaxMeasurements != 1 {
		t.Fatalf("floor: got %d want 1", got.MaxMeasurements)
	}
	// Unset bounds stay unset; out-of-range fractions are identity.
	if got := ShrinkBudget(tuner.Budget{MaxMeasurements: 10}, 0.7); got.MaxGPUSeconds != 0 {
		t.Fatalf("unset GPU bound became %v", got.MaxGPUSeconds)
	}
	if got := ShrinkBudget(b, 0); got != b {
		t.Fatalf("frac=0 changed budget: %+v", got)
	}
	if got := ShrinkBudget(b, 1.5); got != b {
		t.Fatalf("frac>1 changed budget: %+v", got)
	}
}

func TestEntryFromResult(t *testing.T) {
	task, sp := testTask(t)
	res := &tuner.Result{
		TaskName:     task.Name(),
		BestIndex:    7,
		BestGFLOPS:   1234,
		BestTimeMS:   0.5,
		Measurements: 64,
		TopMeasured: []tuner.Measured{
			{Index: 7, GFLOPS: 1234},
			{Index: 9, GFLOPS: 1000},
		},
	}
	e, ok := EntryFromResult("fp", "titan-xp", res, sp)
	if !ok {
		t.Fatal("EntryFromResult rejected a valid result")
	}
	if e.BestConfig != 7 || e.GFLOPS != 1234 || e.Measurements != 64 || e.Schedule == "" {
		t.Fatalf("entry = %+v", e)
	}
	if len(e.Samples) != 2 || e.Samples[0].Config != 7 || e.Samples[1].GFLOPS != 1000 {
		t.Fatalf("samples = %+v", e.Samples)
	}
	if err := e.validate(); err != nil {
		t.Fatal(err)
	}

	if _, ok := EntryFromResult("fp", "titan-xp", nil, sp); ok {
		t.Fatal("nil result accepted")
	}
	if _, ok := EntryFromResult("fp", "titan-xp", &tuner.Result{BestIndex: -1}, sp); ok {
		t.Fatal("result without a best accepted")
	}
}
