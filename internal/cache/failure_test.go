package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// entryLine renders a valid store line for hand-built fixture files.
func entryLine(t *testing.T, fp, device string, seq int, gflops float64) string {
	t.Helper()
	e := testEntry(t, fp, device, 1, gflops)
	e.Seq = seq
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestReopenTornInvalidTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	good := entryLine(t, "fp", "titan-xp", 1, 500)
	// A writer killed mid-append leaves a truncated, unparseable tail.
	torn := good[:len(good)/2]
	if err := os.WriteFile(path, []byte(good+"\n"+torn), 0o644); err != nil {
		t.Fatal(err)
	}

	s := openStore(t, path)
	if s.Len() != 1 {
		t.Fatalf("Len = %d want 1 (torn tail must be dropped, good line kept)", s.Len())
	}
	// The torn bytes must be gone: the next Put appends a clean line.
	if _, err := s.Put(testEntry(t, "fp2", "rtx-3090", 2, 600)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), torn+"{") || !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("file not repaired cleanly:\n%s", data)
	}
	re := openStore(t, path)
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d want 2", re.Len())
	}
}

func TestReopenUnterminatedValidTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	// Complete JSON whose trailing newline never made it to disk: the
	// entry is good and must be kept, and reopen terminates it in place.
	line := entryLine(t, "fp", "titan-xp", 1, 500)
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, path)
	if s.Len() != 1 {
		t.Fatalf("Len = %d want 1", s.Len())
	}
	if _, err := s.Put(testEntry(t, "fp2", "rtx-3090", 2, 600)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, path)
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d want 2 — tail termination corrupted the log", re.Len())
	}
}

func TestOpenRejectsCorruptEntry(t *testing.T) {
	good := entryLine(t, "fp", "titan-xp", 1, 500)
	cases := map[string]string{
		"garbage line":    good + "\n" + "{not json}" + "\n",
		"missing device":  good + "\n" + `{"seq":2,"fingerprint":"fp","best_config":1,"gflops":5}` + "\n",
		"negative config": good + "\n" + `{"seq":2,"fingerprint":"fp","device":"titan-xp","best_config":-4,"gflops":5}` + "\n",
		"NaN gflops":      good + "\n" + `{"seq":2,"fingerprint":"fp","device":"titan-xp","best_config":1,"gflops":"x"}` + "\n",
	}
	for name, content := range cases {
		path := filepath.Join(t.TempDir(), "cache.jsonl")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Errorf("%s: Open accepted a corrupt store", name)
		}
		if _, err := OpenReadOnly(path); err == nil {
			t.Errorf("%s: OpenReadOnly accepted a corrupt store", name)
		}
	}
}

func TestConcurrentPut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s := openStore(t, path)
	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fp := fmt.Sprintf("fp-%d-%d", w, i)
				if _, err := s.Put(testEntry(t, fp, "titan-xp", int64(i), 100+float64(i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != writers*perWriter {
		t.Fatalf("Len = %d want %d", s.Len(), writers*perWriter)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Every concurrent append must survive a reopen intact.
	re := openStore(t, path)
	if re.Len() != writers*perWriter {
		t.Fatalf("reopened Len = %d want %d", re.Len(), writers*perWriter)
	}
}

func TestReadOnlyNeverWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s := openStore(t, path)
	if _, err := s.Put(testEntry(t, "fp", "titan-xp", 1, 500)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly() = false")
	}
	// Lookups work; an improving Put is silently skipped, never written.
	if _, ok := ro.Get("fp", "titan-xp"); !ok {
		t.Fatal("readonly Get missed")
	}
	stored, err := ro.Put(testEntry(t, "fp", "titan-xp", 2, 9999))
	if err != nil || stored {
		t.Fatalf("readonly Put = (%v, %v), want (false, nil)", stored, err)
	}
	if got, _ := ro.Get("fp", "titan-xp"); got.GFLOPS != 500 {
		t.Fatalf("readonly Put mutated the index: %+v", got)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("readonly store modified the file:\nbefore: %s\nafter: %s", before, after)
	}
	if st := ro.Stats(); st.PutSkips != 1 || st.Puts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
