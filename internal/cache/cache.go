// Package cache is the persistent tuned-config store behind warm-started
// tuning: every completed session's best configuration (plus its top
// measured samples) is appended to a JSONL log keyed by a deterministic
// workload fingerprint and the target device's Blueprint embedding.
// Production tuning traffic is dominated by repeated and near-repeated
// queries — the same conv shape on the same or an adjacent GPU SKU — so
//
//   - an exact hit (same fingerprint, same device) serves the stored best
//     configuration in microseconds with zero hardware measurements, and
//   - a miss falls back to a nearest-neighbor scan in Blueprint/PCA space:
//     the K closest donor devices that tuned the same workload seed the
//     new session (donor best-configs join the §3.1 initial batch, donor
//     samples pre-train the surrogate) under a shrunken budget — the
//     paper's Fig. 5 leave-one-out transfer setting turned into
//     serving infrastructure.
//
// The store shares the tlog/fleet-checkpoint append discipline: one JSON
// line per entry, fsync after append, kill-safe reopen that repairs a torn
// final line, and concurrent-writer safety for parallel fleet sessions.
package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tlog"
)

// Sample is one measured (configuration, performance) pair a donor run
// contributes to a warm-started surrogate.
type Sample struct {
	Config int64   `json:"config"`
	GFLOPS float64 `json:"gflops"`
}

// Entry is one stored tuned-config record: the best configuration a
// tuning session found for (workload fingerprint, device), with enough
// context to serve it (schedule, performance) and to warm-start a
// neighbor (embedding, top samples).
type Entry struct {
	Seq         int    `json:"seq"`
	Fingerprint string `json:"fingerprint"`
	Device      string `json:"device"`
	Model       string `json:"model,omitempty"`
	TaskIndex   int    `json:"task_index,omitempty"`
	TaskName    string `json:"task_name,omitempty"`
	// Embedding is the device's canonical Blueprint vector (EmbedDevice)
	// at store time; nearest-neighbor scans measure distance against it.
	Embedding    []float64 `json:"embedding"`
	BestConfig   int64     `json:"best_config"`
	Schedule     string    `json:"schedule,omitempty"`
	GFLOPS       float64   `json:"gflops"`
	TimeMS       float64   `json:"time_ms,omitempty"`
	Measurements int       `json:"measurements,omitempty"`
	// Samples are the session's top measured configs (best-first), the
	// corpus a warm-started neighbor pre-trains its surrogate on.
	Samples []Sample `json:"samples,omitempty"`
}

func (e *Entry) validate() error {
	switch {
	case e.Fingerprint == "":
		return fmt.Errorf("cache: entry without fingerprint")
	case e.Device == "":
		return fmt.Errorf("cache: entry without device")
	case e.BestConfig < 0:
		return fmt.Errorf("cache: entry %s/%s with negative best config", e.Fingerprint, e.Device)
	case e.GFLOPS < 0 || math.IsNaN(e.GFLOPS) || math.IsInf(e.GFLOPS, 0):
		return fmt.Errorf("cache: entry %s/%s with invalid GFLOPS %v", e.Fingerprint, e.Device, e.GFLOPS)
	}
	for _, s := range e.Samples {
		if s.Config < 0 || s.GFLOPS < 0 || math.IsNaN(s.GFLOPS) {
			return fmt.Errorf("cache: entry %s/%s with invalid sample %+v", e.Fingerprint, e.Device, s)
		}
	}
	return nil
}

// Stats counts what the cache did over its lifetime in this process.
type Stats struct {
	Hits       int // exact hits served with zero measurements
	Misses     int // lookups that found no exact entry
	WarmStarts int // misses that produced at least one donor
	Puts       int // entries appended (improvements only)
	PutSkips   int // puts dropped (readonly store, or no improvement)
}

// Store is a persistent tuned-config cache over one JSONL file. All
// methods are safe for concurrent use; Append durability matches the
// fleet checkpoint (fsync per Put, torn-tail repair on reopen).
type Store struct {
	mu       sync.Mutex
	f        *os.File // nil for a readonly store
	readonly bool
	seq      int
	entries  map[string]Entry // best per (fingerprint, device)
	stats    Stats
	reg      *telemetry.Registry
}

func storeKey(fingerprint, device string) string {
	return fingerprint + "\x00" + device
}

// Open opens (creating if absent) a tuned-config store. A file whose
// writer was killed mid-append is repaired exactly like a fleet
// checkpoint: an unterminated final line is kept if it parses as JSON and
// truncated away otherwise. Any other malformed or invalid entry is a
// hard error — a corrupt cache must not silently serve wrong configs.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close() // already on the error path; the read error wins
		return nil, err
	}
	s, err := load(path, data)
	if err != nil {
		_ = f.Close() // already on the error path; the load error wins
		return nil, err
	}
	if err := repairTail(f, data); err != nil {
		_ = f.Close() // already on the error path; the repair error wins
		return nil, fmt.Errorf("cache: %s: %w", path, err)
	}
	s.f = f
	return s, nil
}

// NewMemory returns a store with no backing file: Get/Nearest/Put all
// work, nothing persists. Used by experiment harnesses and tests that
// need cache semantics without touching disk.
func NewMemory() *Store {
	return &Store{entries: map[string]Entry{}}
}

// OpenReadOnly opens an existing store for serving only: lookups and
// warm starts work, Put never writes. The file is read once and released,
// so a readonly consumer cannot hold or corrupt the writer's file.
func OpenReadOnly(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := load(path, data)
	if err != nil {
		return nil, err
	}
	s.readonly = true
	return s, nil
}

// load replays the JSONL bytes into the in-memory index, keeping the best
// entry per (fingerprint, device).
func load(path string, data []byte) (*Store, error) {
	s := &Store{entries: map[string]Entry{}}
	err := tlog.ReadJSONLines(bytes.NewReader(data), func(line []byte) error {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		if err := e.validate(); err != nil {
			return err
		}
		if e.Seq > s.seq {
			s.seq = e.Seq
		}
		s.admit(e)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cache: %s: %w", path, err)
	}
	return s, nil
}

// admit installs an entry if it beats (strictly) what the index holds for
// its key. Ties keep the incumbent so replay order cannot flap the result.
func (s *Store) admit(e Entry) bool {
	key := storeKey(e.Fingerprint, e.Device)
	if old, ok := s.entries[key]; ok && old.GFLOPS >= e.GFLOPS {
		return false
	}
	s.entries[key] = e
	return true
}

// repairTail leaves f positioned at the end of the last complete line,
// terminating or discarding a partial trailing write.
func repairTail(f *os.File, data []byte) error {
	if len(data) == 0 || data[len(data)-1] == '\n' {
		_, err := f.Seek(int64(len(data)), io.SeekStart)
		return err
	}
	cut := bytes.LastIndexByte(data, '\n') + 1
	if tail := bytes.TrimSpace(data[cut:]); json.Valid(tail) {
		// Complete JSON missing only its newline: terminate it in place.
		if _, err := f.Seek(int64(len(data)), io.SeekStart); err != nil {
			return err
		}
		_, err := f.Write([]byte("\n"))
		return err
	}
	if err := f.Truncate(int64(cut)); err != nil {
		return err
	}
	_, err := f.Seek(int64(cut), io.SeekStart)
	return err
}

// SetMetrics mirrors the store's hit/miss/put counters into a telemetry
// registry (counters cache_hit, cache_miss, cache_warm_start, cache_put).
func (s *Store) SetMetrics(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
}

// count bumps an internal stat and its registry mirror. Callers hold mu.
func (s *Store) count(name string, field *int) {
	*field++
	if s.reg != nil {
		s.reg.Counter(name).Inc()
	}
}

// Get returns the stored best entry for an exact (fingerprint, device)
// key. The stored embedding must still match the device's current
// canonical Blueprint vector: if the spec behind the name changed (a
// re-registered custom GPU, a corrected datasheet), the stored config was
// tuned for different hardware and the lookup is treated as a miss.
func (s *Store) Get(fingerprint, device string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[storeKey(fingerprint, device)]
	if ok {
		if emb, err := EmbedDevice(device); err == nil && !embeddingClose(emb, e.Embedding) {
			ok = false
		}
	}
	if ok {
		s.count("cache_hit", &s.stats.Hits)
	} else {
		s.count("cache_miss", &s.stats.Misses)
	}
	return e, ok
}

// embeddingClose reports whether two embeddings agree to float-roundtrip
// tolerance (entries persist through JSON).
func embeddingClose(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

// Nearest returns up to k donor entries for the fingerprint, ordered by
// ascending Euclidean distance between the query device's canonical
// Blueprint embedding and each stored entry's (ties broken by device
// name, so the scan is deterministic regardless of map order). The query
// device itself is excluded — exact serving is Get's job.
func (s *Store) Nearest(fingerprint, device string, k int) []Entry {
	if k <= 0 {
		return nil
	}
	query, err := EmbedDevice(device)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	type scored struct {
		e    Entry
		dist float64
	}
	var cands []scored
	for _, e := range s.entries {
		if e.Fingerprint != fingerprint || e.Device == device || len(e.Embedding) != len(query) {
			continue
		}
		d := 0.0
		for i := range query {
			diff := query[i] - e.Embedding[i]
			d += diff * diff
		}
		cands = append(cands, scored{e: e, dist: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist { //glint:ignore floateq -- total-order tiebreak for sorting, not a tolerance check
			return cands[i].dist < cands[j].dist
		}
		return cands[i].e.Device < cands[j].e.Device
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Entry, len(cands))
	for i, c := range cands {
		out[i] = c.e
	}
	return out
}

// Put appends an entry if it improves on the stored best for its key.
// On a readonly store Put is a no-op (stored=false, no error, no write).
// The entry's Seq is assigned by the store; its Embedding is filled from
// the device's canonical Blueprint vector when unset.
func (s *Store) Put(e Entry) (stored bool, err error) {
	if err := e.validate(); err != nil {
		return false, err
	}
	if len(e.Embedding) == 0 {
		emb, err := EmbedDevice(e.Device)
		if err != nil {
			return false, fmt.Errorf("cache: put %s: %w", e.Device, err)
		}
		e.Embedding = emb
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readonly {
		s.count("cache_put_skip", &s.stats.PutSkips)
		return false, nil
	}
	key := storeKey(e.Fingerprint, e.Device)
	if old, ok := s.entries[key]; ok && old.GFLOPS >= e.GFLOPS {
		s.count("cache_put_skip", &s.stats.PutSkips)
		return false, nil
	}
	s.seq++
	e.Seq = s.seq
	if s.f != nil {
		if err := tlog.AppendJSONLine(s.f, e); err != nil {
			return false, err
		}
		if err := s.f.Sync(); err != nil {
			return false, err
		}
	}
	s.entries[key] = e
	s.count("cache_put", &s.stats.Puts)
	return true, nil
}

// Stats returns a snapshot of the lifetime counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len reports how many (fingerprint, device) bests the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// ReadOnly reports whether the store was opened with OpenReadOnly.
func (s *Store) ReadOnly() bool { return s.readonly }

// Close releases the underlying file (no-op for readonly stores).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Close()
}
