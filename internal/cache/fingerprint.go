package cache

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Fingerprint derives the deterministic workload key a tuned config is
// stored under: template kind, the exact layer shape, and the schedule
// space's structural signature. Task and model *names* are deliberately
// absent — two networks tuning the same conv shape through the same
// template share a fingerprint, so one paid-for tuning session serves
// every future query of that shape (the repeated-traffic case the cache
// exists for). The space signature guards the other direction: any
// template change that reshapes the config space invalidates stored
// config indices no matter how the workload is named.
func Fingerprint(task workload.Task, sp *space.Space) string {
	var sb strings.Builder
	sb.WriteString(task.Kind.String())
	sb.WriteByte('|')
	for i, v := range task.SpecVector() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	sb.WriteByte('|')
	sb.WriteString(sp.Signature())
	return sb.String()
}

// canonicalEmb memoizes the one embedding every store key lives in: the
// default-dimension Blueprint over the spec registry at first use. Sign
// canonicalization in blueprint.Build makes this a pure function of the
// registry, so embeddings persisted by one binary match lookups from
// another.
var (
	canonicalMu  sync.Mutex
	canonicalEmb *blueprint.Embedding
	canonicalErr error
)

func canonical() (*blueprint.Embedding, error) {
	canonicalMu.Lock()
	defer canonicalMu.Unlock()
	if canonicalEmb == nil && canonicalErr == nil {
		canonicalEmb, canonicalErr = blueprint.Build(hwspec.Registry(), blueprint.DefaultDim())
	}
	return canonicalEmb, canonicalErr
}

// EmbedDevice returns the named device's canonical Blueprint vector — the
// coordinate system cache keys and nearest-neighbor distances live in.
func EmbedDevice(device string) ([]float64, error) {
	emb, err := canonical()
	if err != nil {
		return nil, fmt.Errorf("cache: canonical embedding: %w", err)
	}
	spec, err := hwspec.ByName(device)
	if err != nil {
		return nil, err
	}
	return emb.Embed(spec), nil
}
