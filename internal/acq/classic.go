// Package acq implements acquisition functions for the Bayesian
// optimization loop: classic Expected Improvement and UCB (the paper's
// footnote 3 ablation), and Glimpse's neural acquisition function (§3.2) —
// a small network meta-trained across (hardware, network) pairs, MetaBO
// style, that consumes surrogate statistics together with the hardware
// Blueprint to balance exploration and exploitation per target device.
package acq

import "math"

// EI returns the Expected Improvement of a candidate with posterior
// (mean, std) over the current best (maximization).
func EI(mean, std, best float64) float64 {
	if std <= 0 {
		if mean > best {
			return mean - best
		}
		return 0
	}
	z := (mean - best) / std
	return (mean-best)*normCDF(z) + std*normPDF(z)
}

// UCB returns the Upper Confidence Bound acquisition mean + κ·std.
func UCB(mean, std, kappa float64) float64 {
	return mean + kappa*std
}

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// normCDF is the standard normal CDF via erf.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
