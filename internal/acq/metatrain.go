package acq

import (
	"fmt"
	"math"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/gp"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// MetaConfig controls offline meta-training of the neural acquisition
// function across the training GPU pool (§3.2's RL-flavoured loop,
// simplified to supervised improvement regression: the teacher signal is
// the true measured improvement of each candidate, which the simulator
// makes cheap to obtain).
type MetaConfig struct {
	EpisodesPerPair int // BO episodes per (GPU, task), default 1
	Steps           int // BO steps per episode, default 8
	Batch           int // measurements per step, default 8
	Pool            int // candidate pool scored per step, default 48
	Epochs          int // training epochs over collected tuples, default 200
	Hidden          int // hidden width, default 32
}

func (c *MetaConfig) defaults() {
	if c.EpisodesPerPair <= 0 {
		c.EpisodesPerPair = 1
	}
	if c.Steps <= 0 {
		c.Steps = 8
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.Pool <= 0 {
		c.Pool = 48
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
}

// MetaTrain runs BO episodes on the training pool, collecting
// (candidate features → realized improvement) tuples, and fits the neural
// acquisition function to them.
func MetaTrain(emb *blueprint.Embedding, gpus []hwspec.Spec, tasks []workload.Task,
	cfg MetaConfig, g *rng.RNG) (*Neural, error) {

	cfg.defaults()
	if len(gpus) == 0 || len(tasks) == 0 {
		return nil, fmt.Errorf("acq: empty training pool")
	}

	var feats [][]float64
	var targets []float64
	for _, spec := range gpus {
		dev := gpusim.NewDevice(spec)
		hw := emb.Embed(spec)
		for _, task := range tasks {
			for ep := 0; ep < cfg.EpisodesPerPair; ep++ {
				eg := g.Split(fmt.Sprintf("%s/%s/%d", spec.Name, task.Name(), ep))
				f, y, err := runEpisode(dev, hw, task, cfg, eg)
				if err != nil {
					return nil, err
				}
				feats = append(feats, f...)
				targets = append(targets, y...)
			}
		}
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("acq: meta-training collected no tuples")
	}

	x := mat.NewFromRows(feats)
	y := mat.New(len(targets), 1)
	for i, v := range targets {
		y.Set(i, 0, v)
	}
	net := nn.NewMLP([]int{FeatureDim(emb.Dim), cfg.Hidden, cfg.Hidden, 1}, nn.Tanh, g.Split("acq-net"))
	nn.Fit(net, x, y, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: 64,
		Optimizer: nn.NewAdam(2e-3),
		ClipNorm:  10,
	}, g.Split("acq-fit"))
	return &Neural{Net: net, EmbDim: emb.Dim}, nil
}

// runEpisode plays one BO episode and emits supervised tuples: for every
// pool candidate at every step, its features under the current surrogate
// and the true normalized improvement measuring it would have realized.
func runEpisode(dev *gpusim.Device, hw []float64, task workload.Task,
	cfg MetaConfig, g *rng.RNG) ([][]float64, []float64, error) {

	sp, err := space.ForTask(task)
	if err != nil {
		return nil, nil, err
	}

	var xs [][]float64
	var ys []float64
	best := 0.0

	var feats [][]float64
	var targets []float64

	measure := func(idx int64) float64 {
		r := dev.MeasureIndex(task, sp, idx)
		if !r.Valid {
			return 0
		}
		return r.GFLOPS
	}

	// Seed with a random batch.
	for i := 0; i < cfg.Batch; i++ {
		idx := sp.RandomIndex(g)
		v := measure(idx)
		xs = append(xs, sp.FeaturesAt(idx))
		ys = append(ys, v)
		if v > best {
			best = v
		}
	}

	for step := 0; step < cfg.Steps; step++ {
		sur, err := gp.FitWithGridSearch(xs, ys, 1e-3, func(v, s float64) gp.Kernel {
			return gp.Matern52{Variance: v, LengthScale: s}
		})
		if err != nil {
			return nil, nil, err
		}
		progress := float64(step) / float64(cfg.Steps)
		type cand struct {
			idx   int64
			feats []float64
			truth float64
		}
		cands := make([]cand, 0, cfg.Pool)
		for i := 0; i < cfg.Pool; i++ {
			idx := sp.RandomIndex(g)
			mean, variance := sur.Predict(sp.FeaturesAt(idx))
			truth := measure(idx)
			s := Stats{Mean: mean, Std: sqrt(variance), Best: best, Progress: progress}
			f := Features(s, hw)
			// Dense teacher signal: the candidate's true value relative to
			// the incumbent (clamped). Ranking by predicted relative value
			// is what the tuning loop needs from the acquisition.
			relValue := truth / (best + 1)
			if relValue > 2 {
				relValue = 2
			}
			cands = append(cands, cand{idx, f, truth})
			feats = append(feats, f)
			targets = append(targets, relValue)
		}
		// Advance the episode by "measuring" the top-Batch candidates by
		// realized value (teacher forcing keeps episodes on good
		// trajectories without needing a trained acquisition yet).
		for i := 0; i < cfg.Batch && i < len(cands); i++ {
			bestI := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].truth > cands[bestI].truth {
					bestI = j
				}
			}
			cands[i], cands[bestI] = cands[bestI], cands[i]
			c := cands[i]
			xs = append(xs, sp.FeaturesAt(c.idx))
			ys = append(ys, c.truth)
			if c.truth > best {
				best = c.truth
			}
		}
	}
	return feats, targets, nil
}

// sqrt clamps tiny negative variance residue to zero.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
