package acq

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/parallel"
)

// Stats are the per-candidate inputs to the neural acquisition function.
type Stats struct {
	Mean         float64 // surrogate posterior mean (GFLOPS scale)
	Std          float64 // surrogate posterior std
	Best         float64 // best measured value so far
	Progress     float64 // t/T fraction of the optimization budget spent
	PriorLogProb float64 // Blueprint-prior log probability of the candidate
}

// baseFeatureDim is the number of candidate features before the Blueprint.
const baseFeatureDim = 5

// FeatureDim returns the input width of the neural acquisition function for
// a given Blueprint dimension.
func FeatureDim(embDim int) int { return baseFeatureDim + embDim }

// Features builds the input vector. Mean/std/best are normalized by the
// best-so-far scale so the function transfers across tasks of wildly
// different GFLOPS magnitudes.
func Features(s Stats, emb []float64) []float64 {
	scale := math.Abs(s.Best) + 1
	z := 0.0
	if s.Std > 0 {
		z = (s.Mean - s.Best) / s.Std
	}
	out := make([]float64, 0, FeatureDim(len(emb)))
	out = append(out,
		(s.Mean-s.Best)/scale,
		s.Std/scale,
		math.Tanh(z/3),
		s.Progress,
		math.Tanh(s.PriorLogProb/10),
	)
	return append(out, emb...)
}

// Neural is the meta-learned acquisition function.
type Neural struct {
	Net    *nn.Network
	EmbDim int
}

// Score returns the acquisition value of one candidate. It uses the
// network's cache-free inference path, so it is safe to call concurrently
// on a frozen acquisition function.
func (a *Neural) Score(s Stats, emb []float64) float64 {
	if len(emb) != a.EmbDim {
		panic(fmt.Sprintf("acq: embedding dim %d want %d", len(emb), a.EmbDim))
	}
	return a.Net.Infer(Features(s, emb))[0]
}

// ScoreBatch scores many candidates against one Blueprint, sharding rows
// across at most workers goroutines (<= 0 uses the process-wide default,
// see internal/parallel). The result matches a serial Score loop exactly.
func (a *Neural) ScoreBatch(stats []Stats, emb []float64, workers int) []float64 {
	if len(emb) != a.EmbDim {
		panic(fmt.Sprintf("acq: embedding dim %d want %d", len(emb), a.EmbDim))
	}
	return parallel.Map(workers, len(stats), func(i int) float64 {
		return a.Net.Infer(Features(stats[i], emb))[0]
	})
}

// neuralJSON is the serialized form.
type neuralJSON struct {
	EmbDim int         `json:"emb_dim"`
	Net    *nn.Network `json:"net"`
}

// MarshalJSON serializes the acquisition function.
func (a *Neural) MarshalJSON() ([]byte, error) {
	return json.Marshal(neuralJSON{EmbDim: a.EmbDim, Net: a.Net})
}

// UnmarshalJSON restores a serialized acquisition function.
func (a *Neural) UnmarshalJSON(data []byte) error {
	var v neuralJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.Net == nil {
		return fmt.Errorf("acq: serialized acquisition missing network")
	}
	a.EmbDim = v.EmbDim
	a.Net = v.Net
	return nil
}
