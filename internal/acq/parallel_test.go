package acq

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// TestScoreBatchMatchesScore pins the pooled scoring path to the serial
// one for several worker counts (exact equality — same arithmetic, just
// sharded rows). Runs under -race in `make check`.
func TestScoreBatchMatchesScore(t *testing.T) {
	g := rng.New(1)
	const embDim = 4
	a := &Neural{
		Net:    nn.NewMLP([]int{FeatureDim(embDim), 16, 1}, nn.ReLU, g.Split("net")),
		EmbDim: embDim,
	}
	emb := []float64{0.2, -0.4, 1.1, 0.05}
	stats := make([]Stats, 97)
	for i := range stats {
		stats[i] = Stats{
			Mean:         g.Normal(1, 0.5),
			Std:          g.Float64(),
			Best:         1,
			Progress:     float64(i) / float64(len(stats)),
			PriorLogProb: -5 * g.Float64(),
		}
	}
	want := make([]float64, len(stats))
	for i, s := range stats {
		want[i] = a.Score(s, emb)
	}
	for _, workers := range []int{1, 2, 8} {
		got := a.ScoreBatch(stats, emb, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d scores want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: score[%d] = %v want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestScoreBatchPanicsOnDimMismatch(t *testing.T) {
	g := rng.New(2)
	a := &Neural{Net: nn.NewMLP([]int{FeatureDim(2), 4, 1}, nn.Tanh, g), EmbDim: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	a.ScoreBatch([]Stats{{}}, []float64{1, 2, 3}, 1)
}
