package acq

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func TestEIProperties(t *testing.T) {
	// Higher mean → higher EI at fixed std.
	if EI(10, 1, 5) <= EI(6, 1, 5) {
		t.Fatal("EI not increasing in mean")
	}
	// At mean == best, more uncertainty → more EI.
	if EI(5, 2, 5) <= EI(5, 0.5, 5) {
		t.Fatal("EI not increasing in std at the incumbent")
	}
	// Zero-std candidate below best has zero EI.
	if got := EI(4, 0, 5); got != 0 {
		t.Fatalf("EI(4,0,5) = %g want 0", got)
	}
	// Zero-std candidate above best has EI = improvement.
	if got := EI(7, 0, 5); got != 2 {
		t.Fatalf("EI(7,0,5) = %g want 2", got)
	}
	// EI is always non-negative.
	for _, mean := range []float64{-3, 0, 5, 10} {
		for _, std := range []float64{0.1, 1, 4} {
			if EI(mean, std, 5) < -1e-12 {
				t.Fatalf("EI(%g,%g,5) negative", mean, std)
			}
		}
	}
}

func TestUCB(t *testing.T) {
	if got := UCB(3, 2, 1.5); got != 6 {
		t.Fatalf("UCB = %g want 6", got)
	}
	if UCB(3, 2, 0) != 3 {
		t.Fatal("UCB with κ=0 should be the mean")
	}
}

func TestFeaturesShapeAndScaleInvariance(t *testing.T) {
	emb := []float64{0.5, -0.5}
	s1 := Stats{Mean: 100, Std: 10, Best: 120, Progress: 0.3, PriorLogProb: -5}
	f1 := Features(s1, emb)
	if len(f1) != FeatureDim(2) {
		t.Fatalf("feature len %d want %d", len(f1), FeatureDim(2))
	}
	// Scaling GFLOPS by 1000× leaves normalized features nearly unchanged.
	s2 := Stats{Mean: 100000, Std: 10000, Best: 120000, Progress: 0.3, PriorLogProb: -5}
	f2 := Features(s2, emb)
	for i := range f1 {
		if math.Abs(f1[i]-f2[i]) > 0.02 {
			t.Fatalf("feature %d not scale-invariant: %g vs %g", i, f1[i], f2[i])
		}
	}
}

func smallPoolAndTasks(t *testing.T) (*blueprint.Embedding, []hwspec.Spec, []workload.Task) {
	t.Helper()
	emb, err := blueprint.Build(hwspec.Registry(), 4)
	if err != nil {
		t.Fatal(err)
	}
	pool := []hwspec.Spec{
		hwspec.MustByName("gtx-1080"),
		hwspec.MustByName("rtx-2080"),
	}
	var tasks []workload.Task
	for _, l := range []int{7, 17} {
		task, err := workload.TaskByIndex(workload.ResNet18, l)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	return emb, pool, tasks
}

func TestMetaTrainProducesUsefulAcquisition(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	emb, pool, tasks := smallPoolAndTasks(t)
	a, err := MetaTrain(emb, pool, tasks, MetaConfig{
		Steps: 5, Batch: 6, Pool: 32, Epochs: 150,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	hw := emb.Embed(hwspec.MustByName(hwspec.TitanXp))
	// A candidate with clearly promising posterior should outscore a
	// clearly hopeless one.
	promising := a.Score(Stats{Mean: 1.3, Std: 0.4, Best: 1, Progress: 0.5}, hw)
	hopeless := a.Score(Stats{Mean: 0.1, Std: 0.01, Best: 1, Progress: 0.5}, hw)
	if promising <= hopeless {
		t.Fatalf("neural acq: promising %g ≤ hopeless %g", promising, hopeless)
	}
}

func TestMetaTrainValidation(t *testing.T) {
	emb, _, tasks := smallPoolAndTasks(t)
	if _, err := MetaTrain(emb, nil, tasks, MetaConfig{}, rng.New(1)); err == nil {
		t.Fatal("empty GPU pool accepted")
	}
	if _, err := MetaTrain(emb, hwspec.Registry()[:1], nil, MetaConfig{}, rng.New(1)); err == nil {
		t.Fatal("empty task list accepted")
	}
}

func TestNeuralScorePanicsOnDimMismatch(t *testing.T) {
	emb, pool, tasks := smallPoolAndTasks(t)
	a, err := MetaTrain(emb, pool, tasks[:1], MetaConfig{
		Steps: 2, Batch: 4, Pool: 8, Epochs: 10,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	a.Score(Stats{}, []float64{1})
}

func TestNeuralSerializationRoundTrip(t *testing.T) {
	emb, pool, tasks := smallPoolAndTasks(t)
	a, err := MetaTrain(emb, pool, tasks[:1], MetaConfig{
		Steps: 2, Batch: 4, Pool: 8, Epochs: 10,
	}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var restored Neural
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	hw := emb.Embed(hwspec.MustByName(hwspec.RTX3090))
	s := Stats{Mean: 1.2, Std: 0.3, Best: 1, Progress: 0.4, PriorLogProb: -3}
	if a.Score(s, hw) != restored.Score(s, hw) {
		t.Fatal("restored acquisition differs")
	}
	// Corrupt payload rejected.
	var bad Neural
	if err := json.Unmarshal([]byte(`{"emb_dim":2}`), &bad); err == nil {
		t.Fatal("missing net accepted")
	}
}
