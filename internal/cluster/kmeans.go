// Package cluster implements k-means clustering with k-means++ seeding.
// Chameleon's "adaptive sampling" module clusters candidate configurations
// and measures only the cluster centroids; this package is that substrate.
package cluster

import (
	"fmt"
	"math"

	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// Result holds a k-means clustering.
type Result struct {
	Centroids  [][]float64
	Assignment []int // Assignment[i] is the centroid index for point i
	Inertia    float64
	Iterations int
}

// KMeans clusters points into k groups using k-means++ initialization and
// Lloyd iterations until convergence or maxIter. When k >= len(points) each
// point becomes its own centroid.
func KMeans(points [][]float64, k, maxIter int, g *rng.RNG) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("cluster: ragged point %d (%d != %d)", i, len(p), d)
		}
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k = %d", k)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if k >= n {
		res := &Result{Assignment: make([]int, n)}
		for i, p := range points {
			res.Centroids = append(res.Centroids, append([]float64(nil), p...))
			res.Assignment[i] = i
		}
		return res, nil
	}

	centroids := seedPlusPlus(points, k, g)
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				if dist := mat.Dist2(p, ctr); dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			mat.AxpyInto(sums[c], 1, p)
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its centroid.
				centroids[c] = append([]float64(nil), points[farthestPoint(points, centroids, assign)]...)
				continue
			}
			centroids[c] = mat.ScaleVec(1/float64(counts[c]), sums[c])
		}
		if !changed && iter > 0 {
			return finish(points, centroids, assign, iter+1), nil
		}
	}
	return finish(points, centroids, assign, maxIter), nil
}

// seedPlusPlus picks k initial centroids with k-means++ (D² weighting).
func seedPlusPlus(points [][]float64, k int, g *rng.RNG) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := g.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if dist := mat.Dist2(p, c); dist < best {
					best = dist
				}
			}
			d2[i] = best
		}
		next := g.Categorical(d2)
		centroids = append(centroids, append([]float64(nil), points[next]...))
	}
	return centroids
}

func farthestPoint(points, centroids [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		if d := mat.Dist2(p, centroids[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func finish(points, centroids [][]float64, assign []int, iters int) *Result {
	inertia := 0.0
	for i, p := range points {
		inertia += mat.Dist2(p, centroids[assign[i]])
	}
	return &Result{Centroids: centroids, Assignment: assign, Inertia: inertia, Iterations: iters}
}

// NearestIndex returns, for each centroid, the index of the input point
// closest to it — Chameleon measures these representative points rather
// than synthetic centroids that may not be valid configurations.
func (r *Result) NearestIndex(points [][]float64) []int {
	out := make([]int, len(r.Centroids))
	for c, ctr := range r.Centroids {
		best, bestD := -1, math.Inf(1)
		for i, p := range points {
			if d := mat.Dist2(p, ctr); d < bestD {
				best, bestD = i, d
			}
		}
		out[c] = best
	}
	return out
}
