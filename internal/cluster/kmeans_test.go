package cluster

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// threeBlobs generates well-separated clusters around the given centers.
func threeBlobs(g *rng.RNG, perCluster int) ([][]float64, [][]float64) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var pts [][]float64
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			pts = append(pts, []float64{c[0] + g.NormFloat64()*0.5, c[1] + g.NormFloat64()*0.5})
		}
	}
	return pts, centers
}

func TestKMeansRecoverBlobs(t *testing.T) {
	g := rng.New(1)
	pts, centers := threeBlobs(g, 40)
	res, err := KMeans(pts, 3, 100, g)
	if err != nil {
		t.Fatal(err)
	}
	// Every true center should have a found centroid within 1.0.
	for _, c := range centers {
		found := false
		for _, ctr := range res.Centroids {
			if mat.Dist2(c, ctr) < 1.0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no centroid near %v; got %v", c, res.Centroids)
		}
	}
	// Points within a blob share assignments.
	for blob := 0; blob < 3; blob++ {
		first := res.Assignment[blob*40]
		for i := 1; i < 40; i++ {
			if res.Assignment[blob*40+i] != first {
				t.Fatalf("blob %d split across clusters", blob)
			}
		}
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	g := rng.New(2)
	pts, _ := threeBlobs(g, 30)
	r1, err := KMeans(pts, 1, 50, g.Split("k1"))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := KMeans(pts, 3, 50, g.Split("k3"))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Inertia >= r1.Inertia {
		t.Fatalf("inertia k=3 (%g) !< k=1 (%g)", r3.Inertia, r1.Inertia)
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	g := rng.New(3)
	pts := [][]float64{{1, 1}, {2, 2}}
	res, err := KMeans(pts, 5, 10, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %d want 2", len(res.Centroids))
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %g want 0", res.Inertia)
	}
}

func TestKMeansValidation(t *testing.T) {
	g := rng.New(4)
	if _, err := KMeans(nil, 2, 10, g); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 10, g); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 0, 10, g); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	gA, gB := rng.New(5), rng.New(5)
	pts, _ := threeBlobs(rng.New(6), 20)
	a, err := KMeans(pts, 3, 50, gA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, 50, gB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Fatalf("nondeterministic inertia: %g vs %g", a.Inertia, b.Inertia)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("nondeterministic assignment")
		}
	}
}

func TestNearestIndex(t *testing.T) {
	g := rng.New(7)
	pts, _ := threeBlobs(g, 25)
	res, err := KMeans(pts, 3, 50, g)
	if err != nil {
		t.Fatal(err)
	}
	idx := res.NearestIndex(pts)
	if len(idx) != 3 {
		t.Fatalf("NearestIndex len = %d", len(idx))
	}
	for c, i := range idx {
		if i < 0 || i >= len(pts) {
			t.Fatalf("centroid %d maps to invalid point %d", c, i)
		}
		// The nearest point must belong to that centroid's cluster.
		if res.Assignment[i] != c {
			t.Fatalf("nearest point of centroid %d assigned to %d", c, res.Assignment[i])
		}
	}
}

func TestSingleCluster(t *testing.T) {
	g := rng.New(8)
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	res, err := KMeans(pts, 1, 20, g)
	if err != nil {
		t.Fatal(err)
	}
	ctr := res.Centroids[0]
	if ctr[0] != 0.5 || ctr[1] != 0.5 {
		t.Fatalf("centroid = %v want [0.5 0.5]", ctr)
	}
}
