package space

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/workload"
)

// Knob name constants shared with the prior generator and sampler.
const (
	KnobTileF   = "tile_f"
	KnobTileY   = "tile_y"
	KnobTileX   = "tile_x"
	KnobTileRC  = "tile_rc"
	KnobTileRY  = "tile_ry"
	KnobTileRX  = "tile_rx"
	KnobTileP   = "tile_p"
	KnobTileCO  = "tile_co"
	KnobTileCI  = "tile_ci"
	KnobTileK   = "tile_k"
	KnobUnroll  = "auto_unroll_max_step"
	KnobUnrollE = "unroll_explicit"
)

// splitRoles4 is the TVM conv2d 4-way split: block, vthread, thread, inner.
var splitRoles4 = []Role{RoleBlock, RoleVThread, RoleThread, RoleInner}

// splitRoles3 is a 3-way split: block, thread, inner.
var splitRoles3 = []Role{RoleBlock, RoleThread, RoleInner}

// reduceRoles2 is the 2-way reduction split: outer (staging), inner.
var reduceRoles2 = []Role{RoleReduceOuter, RoleReduceInner}

// unrollOptions matches TVM's CUDA auto_unroll_max_step candidates.
var unrollOptions = []int{0, 512, 1500}

// ForTask builds the configuration space for a task, mirroring the TVM CUDA
// schedule templates for direct conv2d, winograd conv2d, and dense.
func ForTask(t workload.Task) (*Space, error) {
	switch t.Kind {
	case workload.Conv2D:
		return conv2dSpace(t), nil
	case workload.WinogradConv2D:
		return winogradSpace(t), nil
	case workload.Dense:
		return denseSpace(t), nil
	default:
		return nil, fmt.Errorf("space: unknown task kind %v", t.Kind)
	}
}

// MustForTask is ForTask for known-good tasks.
func MustForTask(t workload.Task) *Space {
	s, err := ForTask(t)
	if err != nil {
		panic(err)
	}
	return s
}

// conv2dSpace is the direct convolution template: 4-way splits of the
// output channel and spatial axes, 2-way splits of the reduction axes, and
// the unrolling knobs.
func conv2dSpace(t workload.Task) *Space {
	c := t.Conv
	knobs := []Knob{
		NewSplitKnob(KnobTileF, c.OutC, splitRoles4),
		NewSplitKnob(KnobTileY, c.OutH(), splitRoles4),
		NewSplitKnob(KnobTileX, c.OutW(), splitRoles4),
		NewSplitKnob(KnobTileRC, c.InC, reduceRoles2),
		NewSplitKnob(KnobTileRY, c.Kernel, reduceRoles2),
		NewSplitKnob(KnobTileRX, c.Kernel, reduceRoles2),
		NewCategoricalKnob(KnobUnroll, unrollOptions),
		NewCategoricalKnob(KnobUnrollE, []int{0, 1}),
	}
	return newSpace(t.Name(), "conv2d", knobs)
}

// winogradSpace is the winograd template: the transformed problem is a
// batched GEMM over P = ⌈H/2⌉·⌈W/2⌉ output tiles, split 4 ways along the
// tile and output-channel axes and 2 ways along input channels.
func winogradSpace(t workload.Task) *Space {
	c := t.Conv
	p := ((c.OutH() + 1) / 2) * ((c.OutW() + 1) / 2) * c.Batch
	knobs := []Knob{
		NewSplitKnob(KnobTileP, p, splitRoles4),
		NewSplitKnob(KnobTileCO, c.OutC, splitRoles4),
		NewSplitKnob(KnobTileCI, c.InC, reduceRoles2),
		NewCategoricalKnob(KnobUnroll, []int{0, 128, 1500}),
		NewCategoricalKnob(KnobUnrollE, []int{0, 1}),
	}
	return newSpace(t.Name(), "winograd_conv2d", knobs)
}

// denseSpace is the fully connected template: a 3-way split of the output
// axis, a 2-way split of the reduction axis, and unrolling.
func denseSpace(t workload.Task) *Space {
	d := t.Dense
	knobs := []Knob{
		NewSplitKnob(KnobTileY, d.Out, splitRoles3),
		NewSplitKnob(KnobTileK, d.In, reduceRoles2),
		NewCategoricalKnob(KnobUnroll, unrollOptions),
		NewCategoricalKnob(KnobUnrollE, []int{0, 1}),
	}
	return newSpace(t.Name(), "dense", knobs)
}
