// Package space models TVM-style schedule configuration spaces: knobs
// (axis splits and categorical options), mixed-radix index↔configuration
// mapping over astronomically large spaces, featurization for cost models,
// neighbourhood moves for simulated annealing, and the derived resource
// quantities (threads per block, shared memory, registers) that both the
// GPU simulator and Glimpse's hardware-aware sampling reason about.
package space

import (
	"fmt"
	"sort"
	"sync"
)

// factorizations enumerates every ordered k-tuple of positive integers
// whose product is n, in lexicographic order. TVM's ConfigSpace defines
// split knobs exactly this way.
func factorizations(n, k int) [][]int {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("space: factorizations(%d, %d)", n, k))
	}
	if k == 1 {
		return [][]int{{n}}
	}
	var out [][]int
	for _, d := range divisors(n) {
		for _, rest := range factorizations(n/d, k-1) {
			tuple := make([]int, 0, k)
			tuple = append(tuple, d)
			tuple = append(tuple, rest...)
			out = append(out, tuple)
		}
	}
	return out
}

// divisors returns the sorted positive divisors of n.
func divisors(n int) []int {
	var out []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if other := n / d; other != d {
				out = append(out, other)
			}
		}
	}
	sort.Ints(out)
	return out
}

// factorCache memoizes factorization tables, which repeat heavily across
// tasks (channel counts like 64/128/256/512 recur in every model).
var factorCache sync.Map // map[[2]int][][]int

func cachedFactorizations(n, k int) [][]int {
	key := [2]int{n, k}
	if v, ok := factorCache.Load(key); ok {
		return v.([][]int)
	}
	f := factorizations(n, k)
	factorCache.Store(key, f)
	return f
}

// countFactorizations returns the number of ordered k-part factorizations
// of n without materializing them.
func countFactorizations(n, k int) int {
	return len(cachedFactorizations(n, k))
}
