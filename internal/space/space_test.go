package space

import (
	"testing"
	"testing/quick"

	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func TestFactorizationsKnown(t *testing.T) {
	got := factorizations(12, 2)
	want := [][]int{{1, 12}, {2, 6}, {3, 4}, {4, 3}, {6, 2}, {12, 1}}
	if len(got) != len(want) {
		t.Fatalf("len = %d want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("factorizations(12,2) = %v want %v", got, want)
		}
	}
}

func TestFactorizationsProductInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g := rng.New(seed)
		n := 1 + g.Intn(200)
		k := 1 + g.Intn(4)
		for _, tuple := range factorizations(n, k) {
			if len(tuple) != k {
				return false
			}
			p := 1
			for _, v := range tuple {
				p *= v
			}
			if p != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorizationCountBinomial(t *testing.T) {
	// For n = 2^e, ordered k-factorizations count C(e+k-1, k-1).
	if got := countFactorizations(512, 4); got != 220 { // C(12,3)
		t.Fatalf("count(512,4) = %d want 220", got)
	}
	if got := countFactorizations(64, 2); got != 7 {
		t.Fatalf("count(64,2) = %d want 7", got)
	}
}

func TestDivisors(t *testing.T) {
	got := divisors(36)
	want := []int{1, 2, 3, 4, 6, 9, 12, 18, 36}
	if len(got) != len(want) {
		t.Fatalf("divisors(36) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors(36) = %v want %v", got, want)
		}
	}
}

func taskOf(t *testing.T, model string, l int) workload.Task {
	t.Helper()
	task, err := workload.TaskByIndex(model, l)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestForTaskTemplates(t *testing.T) {
	conv := MustForTask(taskOf(t, workload.ResNet18, 7))
	if conv.Template != "conv2d" || conv.NumKnobs() != 8 {
		t.Fatalf("conv template %q knobs %d", conv.Template, conv.NumKnobs())
	}
	wino := MustForTask(taskOf(t, workload.ResNet18, 13))
	if wino.Template != "winograd_conv2d" || wino.NumKnobs() != 5 {
		t.Fatalf("wino template %q knobs %d", wino.Template, wino.NumKnobs())
	}
	dense := MustForTask(taskOf(t, workload.ResNet18, 17))
	if dense.Template != "dense" || dense.NumKnobs() != 4 {
		t.Fatalf("dense template %q knobs %d", dense.Template, dense.NumKnobs())
	}
}

// The paper notes VGG-16's first layers exceed 2×10⁸ configurations; our
// template family reaches the same order of magnitude.
func TestSpaceSizeAstronomical(t *testing.T) {
	s := MustForTask(taskOf(t, workload.VGG16, 2)) // 64→64 @ 224×224
	if s.Size() < 100_000_000 {
		t.Fatalf("vgg conv2 space = %d want ≥ 1e8", s.Size())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	s := MustForTask(taskOf(t, workload.ResNet18, 7))
	f := func(seed int64) bool {
		g := rng.New(seed)
		idx := s.RandomIndex(g)
		cfg := s.FromIndex(idx)
		return s.ToIndex(cfg) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromIndexBounds(t *testing.T) {
	s := MustForTask(taskOf(t, workload.AlexNet, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	s.FromIndex(s.Size())
}

func TestNeighborStaysInSpace(t *testing.T) {
	s := MustForTask(taskOf(t, workload.AlexNet, 1))
	g := rng.New(3)
	idx := s.RandomIndex(g)
	for i := 0; i < 500; i++ {
		idx = s.Neighbor(idx, g)
		if idx < 0 || idx >= s.Size() {
			t.Fatalf("neighbor escaped space: %d", idx)
		}
	}
}

func TestNeighborChangesOneKnob(t *testing.T) {
	s := MustForTask(taskOf(t, workload.ResNet18, 7))
	g := rng.New(4)
	for i := 0; i < 100; i++ {
		idx := s.RandomIndex(g)
		next := s.Neighbor(idx, g)
		a, b := s.FromIndex(idx), s.FromIndex(next)
		diff := 0
		for k := range a {
			if a[k] != b[k] {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("neighbor changed %d knobs", diff)
		}
	}
}

func TestFeatureLenConsistent(t *testing.T) {
	for _, model := range workload.Models {
		for _, task := range workload.MustTasks(model) {
			s := MustForTask(task)
			g := rng.New(5)
			feats := s.FeaturesAt(s.RandomIndex(g))
			if len(feats) != s.FeatureLen() {
				t.Fatalf("%s: features %d != FeatureLen %d", task.Name(), len(feats), s.FeatureLen())
			}
		}
	}
}

func TestConv2DFeatureWidth(t *testing.T) {
	s := MustForTask(taskOf(t, workload.ResNet18, 7))
	// 3 four-part splits + 3 two-part splits + 2 categorical = 12+6+2 = 20.
	if got := s.FeatureLen(); got != 20 {
		t.Fatalf("conv2d feature len = %d want 20", got)
	}
}

func TestDeriveConvResources(t *testing.T) {
	task := taskOf(t, workload.ResNet18, 7) // conv 128→256 28×28 stride 2
	s := MustForTask(task)
	g := rng.New(6)
	for i := 0; i < 200; i++ {
		cfg := s.FromIndex(s.RandomIndex(g))
		res, err := Derive(task, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ThreadsPerBlock < 1 || res.Blocks < 1 || res.OutputsPerThread < 1 {
			t.Fatalf("non-positive resources: %+v", res)
		}
		if res.SharedMemBytes <= 0 || res.RegsPerThread <= 0 {
			t.Fatalf("non-positive memory resources: %+v", res)
		}
		// threads × blocks × outputs ≥ total outputs (vthreads replicate).
		total := int64(task.Conv.OutC) * int64(task.Conv.OutH()) * int64(task.Conv.OutW())
		covered := res.Blocks * int64(res.ThreadsPerBlock) * int64(res.OutputsPerThread)
		if covered < total {
			t.Fatalf("config covers %d outputs of %d: %+v", covered, total, res)
		}
	}
}

func TestDeriveThreadProductMatchesRoles(t *testing.T) {
	task := taskOf(t, workload.AlexNet, 3)
	s := MustForTask(task)
	// Hand-build a config: pick local indices 0 (all-ones leading factors).
	cfg := make(Config, s.NumKnobs())
	res, err := Derive(task, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Local index 0 of a split is [1, 1, ..., axis]: all work in inner.
	if res.ThreadsPerBlock != 1 {
		t.Fatalf("threads = %d want 1 for all-inner config", res.ThreadsPerBlock)
	}
	if res.Blocks != 1 {
		t.Fatalf("blocks = %d want 1", res.Blocks)
	}
}

func TestDeriveUnrollKnobs(t *testing.T) {
	task := taskOf(t, workload.AlexNet, 1)
	s := MustForTask(task)
	cfg := make(Config, s.NumKnobs())
	// Set unroll to its largest option and explicit on.
	_, ui, err := s.KnobByName(KnobUnroll)
	if err != nil {
		t.Fatal(err)
	}
	_, ei, err := s.KnobByName(KnobUnrollE)
	if err != nil {
		t.Fatal(err)
	}
	cfg[ui] = 2
	cfg[ei] = 1
	res, err := Derive(task, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrollStep != 1500 || !res.UnrollExplicit {
		t.Fatalf("unroll = %d/%v want 1500/true", res.UnrollStep, res.UnrollExplicit)
	}
}

func TestDeriveWinogradAndDense(t *testing.T) {
	for _, l := range []int{13, 17} { // resnet-18 winograd + dense
		task := taskOf(t, workload.ResNet18, l)
		s := MustForTask(task)
		g := rng.New(int64(l))
		for i := 0; i < 100; i++ {
			res, err := Derive(task, s, s.FromIndex(s.RandomIndex(g)))
			if err != nil {
				t.Fatal(err)
			}
			if res.ThreadsPerBlock < 1 || res.SharedMemBytes <= 0 {
				t.Fatalf("%s: bad resources %+v", task.Name(), res)
			}
		}
	}
}

func TestDescribeMentionsKnobs(t *testing.T) {
	task := taskOf(t, workload.AlexNet, 1)
	s := MustForTask(task)
	desc := s.Describe(s.FromIndex(0))
	for _, name := range []string{KnobTileF, KnobTileY, KnobUnroll} {
		if !containsStr(desc, name) {
			t.Fatalf("Describe missing %q: %s", name, desc)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestKnobByNameMissing(t *testing.T) {
	s := MustForTask(taskOf(t, workload.AlexNet, 1))
	if _, _, err := s.KnobByName("tile_zzz"); err == nil {
		t.Fatal("missing knob did not error")
	}
}

func TestSignatureStableAndStructural(t *testing.T) {
	taskA := taskOf(t, workload.AlexNet, 3)
	sigA := MustForTask(taskA).Signature()
	if len(sigA) != 16 {
		t.Fatalf("Signature length = %d want 16: %q", len(sigA), sigA)
	}
	if got := MustForTask(taskA).Signature(); got != sigA {
		t.Fatalf("Signature not stable across rebuilds: %q vs %q", got, sigA)
	}

	// A different layer shape factorizes differently, so the signature
	// must change even though template and knob names match.
	taskB := taskOf(t, workload.AlexNet, 4)
	if sigB := MustForTask(taskB).Signature(); sigB == sigA {
		t.Fatalf("different shapes share signature %q", sigA)
	}

	// The task *name* must not influence the signature: a config index
	// means the same schedule regardless of what the workload is called.
	renamed := taskA
	renamed.Model = "some-other-net"
	renamed.Index = 99
	if got := MustForTask(renamed).Signature(); got != sigA {
		t.Fatalf("renaming the task changed the signature: %q vs %q", got, sigA)
	}
}
