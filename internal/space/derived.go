package space

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/workload"
)

// Resources summarizes the hardware footprint of a configuration: the
// quantities CUDA launch validity and performance depend on. Both the GPU
// simulator and Glimpse's ensemble sampler consume this.
type Resources struct {
	ThreadsPerBlock  int
	VThreads         int
	Blocks           int64
	OutputsPerThread int // accumulator registers per physical thread
	SharedMemBytes   int
	RegsPerThread    int
	UnrollStep       int
	UnrollExplicit   bool
	ThreadX          int // innermost thread extent (memory coalescing)
	ReduceInner      int // innermost reduction extent (staging granularity)

	// ChannelBlocks is the grid extent along the output-channel axis
	// (blocks that re-read the same input tile); SpatialBlocks is the grid
	// extent along spatial/tile axes (blocks that re-read the weights).
	ChannelBlocks int64
	SpatialBlocks int64
	// BlockOutY / BlockOutX are the output-tile extents one block covers
	// (conv only), which set the input halo over-read.
	BlockOutY int
	BlockOutX int
}

// roleProduct multiplies the factors of a split knob whose parts carry role r.
func roleProduct(k *Knob, value []int, r Role) int {
	p := 1
	for i, role := range k.Roles {
		if role == r {
			p *= value[i]
		}
	}
	return p
}

// Derive computes the resource footprint of cfg for the given task. The
// task must be the one the space was built from.
func Derive(t workload.Task, s *Space, cfg Config) (Resources, error) {
	if len(cfg) != len(s.Knobs) {
		return Resources{}, fmt.Errorf("space: config/knob count mismatch %d vs %d", len(cfg), len(s.Knobs))
	}
	var res Resources
	res.ThreadsPerBlock = 1
	res.VThreads = 1
	res.Blocks = 1
	res.OutputsPerThread = 1
	res.ThreadX = 1
	res.ReduceInner = 1

	type splitInfo struct {
		name  string
		value []int
		knob  *Knob
	}
	var splits []splitInfo
	for i := range s.Knobs {
		k := &s.Knobs[i]
		switch k.Kind {
		case KindSplit:
			v := k.SplitValue(cfg[i])
			splits = append(splits, splitInfo{k.Name, v, k})
			res.ThreadsPerBlock *= roleProduct(k, v, RoleThread)
			res.VThreads *= roleProduct(k, v, RoleVThread)
			res.Blocks *= int64(roleProduct(k, v, RoleBlock))
			res.OutputsPerThread *= roleProduct(k, v, RoleInner) * roleProduct(k, v, RoleVThread)
		case KindCategorical:
			switch k.Name {
			case KnobUnroll:
				res.UnrollStep = k.CategoricalValue(cfg[i])
			case KnobUnrollE:
				res.UnrollExplicit = k.CategoricalValue(cfg[i]) == 1
			}
		}
	}

	res.ChannelBlocks = 1
	res.SpatialBlocks = 1
	res.BlockOutY = 1
	res.BlockOutX = 1

	get := func(name string) []int {
		for _, sp := range splits {
			if sp.name == name {
				return sp.value
			}
		}
		return nil
	}
	blockPart := func(name string) int {
		for _, sp := range splits {
			if sp.name == name {
				return roleProduct(sp.knob, sp.value, RoleBlock)
			}
		}
		return 1
	}
	blockExtent := func(name string) int {
		for _, sp := range splits {
			if sp.name == name {
				return roleProduct(sp.knob, sp.value, RoleVThread) *
					roleProduct(sp.knob, sp.value, RoleThread) *
					roleProduct(sp.knob, sp.value, RoleInner)
			}
		}
		return 1
	}

	const bytesPerFloat = 4
	switch s.Template {
	case "conv2d":
		c := t.Conv
		fb := blockExtent(KnobTileF)
		yb := blockExtent(KnobTileY)
		xb := blockExtent(KnobTileX)
		rc := get(KnobTileRC)
		ry := get(KnobTileRY)
		rx := get(KnobTileRX)
		rci, ryi, rxi := rc[1], ry[1], rx[1]
		res.ReduceInner = rci
		if tx := get(KnobTileX); tx != nil {
			res.ThreadX = tx[2] // thread part of the innermost spatial axis
		}
		inTile := ((yb-1)*c.Stride + c.Kernel) * ((xb-1)*c.Stride + c.Kernel) * rci
		filtTile := fb * rci * ryi * rxi
		res.SharedMemBytes = bytesPerFloat * (inTile + filtTile)
		res.RegsPerThread = 16 + (5*res.OutputsPerThread)/4 + rci/8
		res.ChannelBlocks = int64(blockPart(KnobTileF))
		res.SpatialBlocks = int64(blockPart(KnobTileY)) * int64(blockPart(KnobTileX))
		res.BlockOutY, res.BlockOutX = yb, xb

	case "winograd_conv2d":
		pb := blockExtent(KnobTileP)
		cb := blockExtent(KnobTileCO)
		ci := get(KnobTileCI)
		cii := ci[1]
		res.ReduceInner = cii
		if tp := get(KnobTileP); tp != nil {
			res.ThreadX = tp[2]
		}
		// Transformed-domain staging: input tiles and kernel tiles per
		// reduction step (the 4×4 transform dimension is batched outside
		// the block, matching TVM's winograd schedule).
		res.SharedMemBytes = bytesPerFloat * (pb*cii + cb*cii)
		res.RegsPerThread = 18 + (5*res.OutputsPerThread)/4 + cii/8
		res.ChannelBlocks = int64(blockPart(KnobTileCO))
		res.SpatialBlocks = int64(blockPart(KnobTileP))
		res.BlockOutY, res.BlockOutX = pb, 1

	case "dense":
		ty := get(KnobTileY)
		tk := get(KnobTileK)
		ki := tk[1]
		res.ReduceInner = ki
		res.ThreadX = roleProduct(&s.Knobs[0], ty, RoleThread)
		// Staged input chunk shared across the block plus per-thread rows.
		res.SharedMemBytes = bytesPerFloat * ki * (1 + res.ThreadsPerBlock/8)
		res.RegsPerThread = 12 + (5*res.OutputsPerThread)/4 + ki/16
		res.ChannelBlocks = int64(blockPart(KnobTileY))
		res.SpatialBlocks = 1

	default:
		return Resources{}, fmt.Errorf("space: unknown template %q", s.Template)
	}
	return res, nil
}
