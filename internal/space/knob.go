package space

import (
	"fmt"
	"math"
)

// Role describes the scheduling meaning of one part of a split knob; the
// simulator and the hardware-aware sampler compute resource usage from
// these roles rather than from knob names.
type Role int

const (
	// RoleBlock binds the part to blockIdx (grid dimension).
	RoleBlock Role = iota
	// RoleVThread binds the part to a virtual thread (TVM vthread).
	RoleVThread
	// RoleThread binds the part to threadIdx.
	RoleThread
	// RoleInner is an innermost serial loop within a thread.
	RoleInner
	// RoleReduceOuter is the outer part of a reduction split (shared-memory
	// staging granularity).
	RoleReduceOuter
	// RoleReduceInner is the inner part of a reduction split.
	RoleReduceInner
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleBlock:
		return "block"
	case RoleVThread:
		return "vthread"
	case RoleThread:
		return "thread"
	case RoleInner:
		return "inner"
	case RoleReduceOuter:
		return "reduce_outer"
	case RoleReduceInner:
		return "reduce_inner"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// KnobKind discriminates split from categorical knobs.
type KnobKind int

const (
	// KindSplit is an ordered factorization of an axis length.
	KindSplit KnobKind = iota
	// KindCategorical is a small fixed option list.
	KindCategorical
)

// Knob is one tunable dimension of a configuration space.
type Knob struct {
	Name string
	Kind KnobKind

	// Split knob fields.
	Axis    int    // axis length being factorized
	Parts   int    // number of ordered factors
	Roles   []Role // role of each part, len == Parts
	entries [][]int

	// Categorical knob fields.
	Options []int
}

// NewSplitKnob builds a split knob over an axis of the given length.
func NewSplitKnob(name string, axis int, roles []Role) Knob {
	if axis <= 0 {
		panic(fmt.Sprintf("space: split knob %q with axis %d", name, axis))
	}
	if len(roles) == 0 {
		panic(fmt.Sprintf("space: split knob %q without roles", name))
	}
	return Knob{
		Name:    name,
		Kind:    KindSplit,
		Axis:    axis,
		Parts:   len(roles),
		Roles:   roles,
		entries: cachedFactorizations(axis, len(roles)),
	}
}

// NewCategoricalKnob builds a categorical knob over fixed integer options.
func NewCategoricalKnob(name string, options []int) Knob {
	if len(options) == 0 {
		panic(fmt.Sprintf("space: categorical knob %q without options", name))
	}
	return Knob{Name: name, Kind: KindCategorical, Options: options}
}

// Size returns the number of distinct values the knob can take.
func (k *Knob) Size() int {
	if k.Kind == KindSplit {
		return len(k.entries)
	}
	return len(k.Options)
}

// SplitValue returns the factor tuple for local index i of a split knob.
func (k *Knob) SplitValue(i int) []int {
	if k.Kind != KindSplit {
		panic(fmt.Sprintf("space: SplitValue on categorical knob %q", k.Name))
	}
	return k.entries[i]
}

// CategoricalValue returns the option for local index i.
func (k *Knob) CategoricalValue(i int) int {
	if k.Kind != KindCategorical {
		panic(fmt.Sprintf("space: CategoricalValue on split knob %q", k.Name))
	}
	return k.Options[i]
}

// FeatureLen is the number of feature slots the knob contributes: one
// log2-factor per split part, or one normalized slot per categorical knob.
func (k *Knob) FeatureLen() int {
	if k.Kind == KindSplit {
		return k.Parts
	}
	return 1
}

// AppendFeatures appends the knob's features for local index i to dst.
// Split parts are encoded as log2(factor); categorical values as
// log2(1+option) to keep magnitudes comparable.
func (k *Knob) AppendFeatures(dst []float64, i int) []float64 {
	if k.Kind == KindSplit {
		for _, f := range k.entries[i] {
			dst = append(dst, math.Log2(float64(f)))
		}
		return dst
	}
	return append(dst, math.Log2(1+float64(k.Options[i])))
}
