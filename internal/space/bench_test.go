package space

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func benchSpace(b *testing.B) (*Space, workload.Task) {
	b.Helper()
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		b.Fatal(err)
	}
	return MustForTask(task), task
}

func BenchmarkIndexRoundTrip(b *testing.B) {
	sp, _ := benchSpace(b)
	g := rng.New(1)
	idxs := make([]int64, 1024)
	for i := range idxs {
		idxs[i] = sp.RandomIndex(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := idxs[i%len(idxs)]
		if sp.ToIndex(sp.FromIndex(idx)) != idx {
			b.Fatal("round trip broke")
		}
	}
}

func BenchmarkFeaturesAt(b *testing.B) {
	sp, _ := benchSpace(b)
	g := rng.New(2)
	idxs := make([]int64, 1024)
	for i := range idxs {
		idxs[i] = sp.RandomIndex(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.FeaturesAt(idxs[i%len(idxs)])
	}
}

func BenchmarkDerive(b *testing.B) {
	sp, task := benchSpace(b)
	g := rng.New(3)
	cfgs := make([]Config, 256)
	for i := range cfgs {
		cfgs[i] = sp.FromIndex(sp.RandomIndex(g))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Derive(task, sp, cfgs[i%len(cfgs)]); err != nil {
			b.Fatal(err)
		}
	}
}
