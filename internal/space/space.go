package space

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"

	"github.com/neuralcompile/glimpse/internal/rng"
)

// Config is a point in a configuration space: one local index per knob.
type Config []int

// Space is a full schedule configuration space for one task.
type Space struct {
	TaskName string
	Template string // "conv2d", "winograd_conv2d", or "dense"
	Knobs    []Knob
	size     int64
}

// newSpace finalizes a space and computes its size.
func newSpace(taskName, template string, knobs []Knob) *Space {
	s := &Space{TaskName: taskName, Template: template, Knobs: knobs, size: 1}
	for i := range knobs {
		s.size *= int64(knobs[i].Size())
	}
	return s
}

// Size returns the total number of configurations.
func (s *Space) Size() int64 { return s.size }

// NumKnobs returns the number of tunable dimensions.
func (s *Space) NumKnobs() int { return len(s.Knobs) }

// FromIndex decodes a flat index into a configuration (mixed radix,
// first knob fastest).
func (s *Space) FromIndex(idx int64) Config {
	if idx < 0 || idx >= s.size {
		panic(fmt.Sprintf("space: index %d out of [0, %d)", idx, s.size))
	}
	cfg := make(Config, len(s.Knobs))
	for i := range s.Knobs {
		n := int64(s.Knobs[i].Size())
		cfg[i] = int(idx % n)
		idx /= n
	}
	return cfg
}

// ToIndex encodes a configuration back into its flat index.
func (s *Space) ToIndex(cfg Config) int64 {
	if len(cfg) != len(s.Knobs) {
		panic(fmt.Sprintf("space: config has %d knobs, space has %d", len(cfg), len(s.Knobs)))
	}
	var idx int64
	for i := len(s.Knobs) - 1; i >= 0; i-- {
		n := s.Knobs[i].Size()
		if cfg[i] < 0 || cfg[i] >= n {
			panic(fmt.Sprintf("space: knob %q local index %d out of [0, %d)", s.Knobs[i].Name, cfg[i], n))
		}
		idx = idx*int64(n) + int64(cfg[i])
	}
	return idx
}

// RandomIndex draws a uniform configuration index.
func (s *Space) RandomIndex(g *rng.RNG) int64 { return g.Int63n(s.size) }

// Neighbor proposes a local move: one knob either steps ±1 in its local
// ordering (half the time, exploiting the smoothness of factorization
// orderings) or re-samples uniformly.
func (s *Space) Neighbor(idx int64, g *rng.RNG) int64 {
	cfg := s.FromIndex(idx)
	k := g.Intn(len(s.Knobs))
	n := s.Knobs[k].Size()
	if n == 1 {
		return idx
	}
	if g.Bool(0.5) {
		step := 1
		if g.Bool(0.5) {
			step = -1
		}
		cfg[k] = (cfg[k] + step + n) % n
	} else {
		cfg[k] = g.Intn(n)
	}
	return s.ToIndex(cfg)
}

// FeatureLen returns the featurization width of the space.
func (s *Space) FeatureLen() int {
	total := 0
	for i := range s.Knobs {
		total += s.Knobs[i].FeatureLen()
	}
	return total
}

// Features encodes a configuration for cost models: log2 split factors and
// log-scaled categorical options, in knob order.
func (s *Space) Features(cfg Config) []float64 {
	out := make([]float64, 0, s.FeatureLen())
	for i := range s.Knobs {
		out = s.Knobs[i].AppendFeatures(out, cfg[i])
	}
	return out
}

// FeaturesAt is Features(FromIndex(idx)).
func (s *Space) FeaturesAt(idx int64) []float64 { return s.Features(s.FromIndex(idx)) }

// Describe renders a configuration human-readably, e.g. for tuning logs.
func (s *Space) Describe(cfg Config) string {
	var sb strings.Builder
	for i := range s.Knobs {
		if i > 0 {
			sb.WriteString(" ")
		}
		k := &s.Knobs[i]
		if k.Kind == KindSplit {
			fmt.Fprintf(&sb, "%s=%v", k.Name, k.SplitValue(cfg[i]))
		} else {
			fmt.Fprintf(&sb, "%s=%d", k.Name, k.CategoricalValue(cfg[i]))
		}
	}
	return sb.String()
}

// Signature digests the space's structure — template, knob names, kinds,
// factorization tables, and categorical options — into a short stable hex
// string. Two spaces share a signature exactly when a configuration index
// means the same schedule in both, which is what persistent tuned-config
// caches key on: a template change that reshapes the space must invalidate
// every stored config index.
func (s *Space) Signature() string {
	h := fnv.New64a()
	word := func(v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	str := func(v string) {
		h.Write([]byte(v))
		h.Write([]byte{0})
	}
	str(s.Template)
	word(int64(len(s.Knobs)))
	for i := range s.Knobs {
		k := &s.Knobs[i]
		str(k.Name)
		word(int64(k.Kind))
		if k.Kind == KindSplit {
			word(int64(k.Axis))
			word(int64(k.Parts))
			for _, r := range k.Roles {
				word(int64(r))
			}
			for _, entry := range k.entries {
				for _, f := range entry {
					word(int64(f))
				}
			}
		} else {
			for _, opt := range k.Options {
				word(int64(opt))
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// KnobByName returns a pointer to the named knob and its position.
func (s *Space) KnobByName(name string) (*Knob, int, error) {
	for i := range s.Knobs {
		if s.Knobs[i].Name == name {
			return &s.Knobs[i], i, nil
		}
	}
	return nil, -1, fmt.Errorf("space: no knob %q in %s", name, s.TaskName)
}
