// Package workload defines the DNN models the paper evaluates (AlexNet,
// VGG-16, ResNet-18 on ImageNet) and extracts tuning tasks from them the way
// TVM does: one task per unique (template, layer shape) pair. Table 1 of the
// paper reports 12 / 21 / 17 tasks respectively; TaskCounts in the tests pin
// those numbers.
package workload

import (
	"fmt"
)

// Kind is the code template a task is tuned against.
type Kind int

const (
	// Conv2D is the direct CUDA convolution template.
	Conv2D Kind = iota
	// WinogradConv2D is the Winograd F(2x2, 3x3)-style convolution template.
	WinogradConv2D
	// Dense is the fully connected (matrix-vector / matrix-matrix) template.
	Dense
)

// String names the template kind.
func (k Kind) String() string {
	switch k {
	case Conv2D:
		return "conv2d"
	case WinogradConv2D:
		return "winograd_conv2d"
	case Dense:
		return "dense"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ConvShape describes a convolution layer (NCHW, square kernels).
type ConvShape struct {
	Batch  int
	InC    int // input channels
	OutC   int // output channels
	H, W   int // input spatial dims
	Kernel int // kernel size (square)
	Stride int
	Pad    int
}

// OutH returns the output height.
func (c ConvShape) OutH() int { return (c.H+2*c.Pad-c.Kernel)/c.Stride + 1 }

// OutW returns the output width.
func (c ConvShape) OutW() int { return (c.W+2*c.Pad-c.Kernel)/c.Stride + 1 }

// FLOPs returns multiply-accumulate FLOPs (2 per MAC) for the convolution.
func (c ConvShape) FLOPs() int64 {
	return 2 * int64(c.Batch) * int64(c.OutH()) * int64(c.OutW()) *
		int64(c.OutC) * int64(c.InC) * int64(c.Kernel) * int64(c.Kernel)
}

// DenseShape describes a fully connected layer.
type DenseShape struct {
	Batch, In, Out int
}

// FLOPs returns 2·B·In·Out.
func (d DenseShape) FLOPs() int64 {
	return 2 * int64(d.Batch) * int64(d.In) * int64(d.Out)
}

// Task is one tuning problem: a template instantiated at a layer shape.
type Task struct {
	Model string
	// Index is the 1-based position within the model's task list
	// (the paper's "L7" notation indexes this list).
	Index int
	Kind  Kind
	Conv  ConvShape  // valid for Conv2D / WinogradConv2D
	Dense DenseShape // valid for Dense
	// Repeats is how many layers of the network share this task's shape;
	// end-to-end latency sums Repeats × the task's tuned kernel time.
	Repeats int
}

// Name returns a stable identifier like "resnet-18.L7.conv2d".
func (t Task) Name() string {
	return fmt.Sprintf("%s.L%d.%s", t.Model, t.Index, t.Kind)
}

// FLOPs returns the arithmetic work of the task.
func (t Task) FLOPs() int64 {
	if t.Kind == Dense {
		return t.Dense.FLOPs()
	}
	return t.Conv.FLOPs()
}

// SpecVector embeds the layer shape as the fixed-length numeric vector the
// prior generator H consumes: [kind, batch, inC, outC, H, W, kernel, stride,
// pad, in features, out features]. Conv and dense tasks share the encoding
// (dense uses In/Out in the last two slots).
func (t Task) SpecVector() []float64 {
	v := make([]float64, 11)
	v[0] = float64(t.Kind)
	if t.Kind == Dense {
		v[1] = float64(t.Dense.Batch)
		v[9] = float64(t.Dense.In)
		v[10] = float64(t.Dense.Out)
		return v
	}
	c := t.Conv
	v[1] = float64(c.Batch)
	v[2] = float64(c.InC)
	v[3] = float64(c.OutC)
	v[4] = float64(c.H)
	v[5] = float64(c.W)
	v[6] = float64(c.Kernel)
	v[7] = float64(c.Stride)
	v[8] = float64(c.Pad)
	return v
}

// SpecVectorLen is the length of Task.SpecVector.
const SpecVectorLen = 11
