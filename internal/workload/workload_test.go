package workload

import (
	"testing"
)

// TestTable1TaskCounts pins the task inventory to the paper's Table 1.
func TestTable1TaskCounts(t *testing.T) {
	cases := []struct {
		model                 string
		total, conv, wino, fc int
	}{
		{AlexNet, 12, 5, 4, 3},
		{VGG16, 21, 9, 9, 3},
		{ResNet18, 17, 12, 4, 1},
	}
	for _, c := range cases {
		tasks, err := Tasks(c.model)
		if err != nil {
			t.Fatal(err)
		}
		if len(tasks) != c.total {
			t.Errorf("%s: %d tasks want %d", c.model, len(tasks), c.total)
		}
		counts := map[Kind]int{}
		for _, task := range tasks {
			counts[task.Kind]++
		}
		if counts[Conv2D] != c.conv || counts[WinogradConv2D] != c.wino || counts[Dense] != c.fc {
			t.Errorf("%s: kinds %v want conv=%d wino=%d dense=%d",
				c.model, counts, c.conv, c.wino, c.fc)
		}
	}
}

func TestTaskIndicesSequential(t *testing.T) {
	for _, m := range Models {
		tasks := MustTasks(m)
		for i, task := range tasks {
			if task.Index != i+1 {
				t.Fatalf("%s task %d has Index %d", m, i, task.Index)
			}
			if task.Model != m {
				t.Fatalf("%s task has model %q", m, task.Model)
			}
		}
	}
}

func TestUnknownModel(t *testing.T) {
	if _, err := Tasks("lenet"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := TaskByIndex("lenet", 1); err == nil {
		t.Fatal("unknown model accepted by TaskByIndex")
	}
}

func TestTaskByIndexBounds(t *testing.T) {
	if _, err := TaskByIndex(AlexNet, 0); err == nil {
		t.Fatal("L0 accepted")
	}
	if _, err := TaskByIndex(AlexNet, 13); err == nil {
		t.Fatal("L13 accepted for alexnet")
	}
	task, err := TaskByIndex(ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	if task.Kind != Conv2D {
		t.Fatalf("resnet-18 L7 kind = %v want conv2d", task.Kind)
	}
}

func TestConvShapeMath(t *testing.T) {
	// AlexNet conv1: 227x227, k=11, s=4, p=2 → 55x55.
	c := alexNetConvs[0].shape
	if c.OutH() != 55 || c.OutW() != 55 {
		t.Fatalf("alexnet conv1 out = %dx%d want 55x55", c.OutH(), c.OutW())
	}
	// Same-padding 3x3 stride 1 preserves dims.
	v := vggConvs[0].shape
	if v.OutH() != 224 || v.OutW() != 224 {
		t.Fatalf("vgg conv1 out = %dx%d want 224x224", v.OutH(), v.OutW())
	}
	// Stride-2 3x3 with pad 1 halves dims.
	r := resNetConvs[3].shape
	if r.OutH() != 28 || r.OutW() != 28 {
		t.Fatalf("resnet stage2 entry out = %dx%d want 28x28", r.OutH(), r.OutW())
	}
}

func TestFLOPsPositiveAndPlausible(t *testing.T) {
	// VGG-16 is the heaviest model of the three.
	var totals []int64
	for _, m := range []string{AlexNet, ResNet18, VGG16} {
		f, err := ModelFLOPs(m)
		if err != nil {
			t.Fatal(err)
		}
		if f <= 0 {
			t.Fatalf("%s FLOPs = %d", m, f)
		}
		totals = append(totals, f)
	}
	// VGG-16 is by far the heaviest (unique-task FLOPs; repeated layers
	// count once, so AlexNet and ResNet-18 land close together).
	if totals[2] < 10*totals[0] || totals[2] < 10*totals[1] {
		t.Fatalf("vgg-16 should dominate unique-task FLOPs: %v", totals)
	}
}

func TestDenseFLOPs(t *testing.T) {
	d := DenseShape{Batch: 1, In: 10, Out: 20}
	if got := d.FLOPs(); got != 400 {
		t.Fatalf("dense FLOPs = %d want 400", got)
	}
}

func TestWinogradTasksShareShapeWithConv(t *testing.T) {
	tasks := MustTasks(VGG16)
	var convShapes, winoShapes []ConvShape
	for _, task := range tasks {
		switch task.Kind {
		case Conv2D:
			convShapes = append(convShapes, task.Conv)
		case WinogradConv2D:
			winoShapes = append(winoShapes, task.Conv)
		}
	}
	if len(winoShapes) != len(convShapes) {
		t.Fatalf("VGG should have winograd for every conv: %d vs %d", len(winoShapes), len(convShapes))
	}
	for i := range winoShapes {
		if winoShapes[i] != convShapes[i] {
			t.Fatalf("winograd %d shape %v != conv shape %v", i, winoShapes[i], convShapes[i])
		}
		if winoShapes[i].Stride != 1 {
			t.Fatalf("winograd task with stride %d", winoShapes[i].Stride)
		}
	}
}

func TestSpecVector(t *testing.T) {
	tasks := MustTasks(AlexNet)
	for _, task := range tasks {
		v := task.SpecVector()
		if len(v) != SpecVectorLen {
			t.Fatalf("spec vector len %d want %d", len(v), SpecVectorLen)
		}
		if v[0] != float64(task.Kind) {
			t.Fatalf("spec[0] = %g want %g", v[0], float64(task.Kind))
		}
	}
	// Dense encoding occupies the tail slots.
	d := Task{Model: AlexNet, Index: 10, Kind: Dense, Dense: DenseShape{1, 9216, 4096}}
	v := d.SpecVector()
	if v[9] != 9216 || v[10] != 4096 {
		t.Fatalf("dense spec tail = %v", v[9:])
	}
}

func TestTaskNames(t *testing.T) {
	task, err := TaskByIndex(ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := task.Name(); got != "resnet-18.L7.conv2d" {
		t.Fatalf("name = %q", got)
	}
}

// The paper's Fig. 4 uses AlexNet L8 and VGG-16 L17 as winograd examples;
// keep the indexing stable.
func TestFigure4LayerIndices(t *testing.T) {
	l8, err := TaskByIndex(AlexNet, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l8.Kind != WinogradConv2D {
		t.Fatalf("alexnet L8 = %v want winograd", l8.Kind)
	}
	l17, err := TaskByIndex(VGG16, 17)
	if err != nil {
		t.Fatal(err)
	}
	if l17.Kind != WinogradConv2D {
		t.Fatalf("vgg-16 L17 = %v want winograd", l17.Kind)
	}
	l12, err := TaskByIndex(ResNet18, 12)
	if err != nil {
		t.Fatal(err)
	}
	if l12.Kind != Conv2D {
		t.Fatalf("resnet-18 L12 = %v want conv2d", l12.Kind)
	}
}
