package workload

import "fmt"

// Model names used throughout the repository (matching the paper).
const (
	AlexNet  = "alexnet"
	ResNet18 = "resnet-18"
	VGG16    = "vgg-16"
)

// Models lists the evaluated networks in the paper's order.
var Models = []string{AlexNet, ResNet18, VGG16}

// convEntry pairs a convolution shape with its layer multiplicity.
type convEntry struct {
	shape   ConvShape
	repeats int
}

// denseEntry pairs a dense shape with its layer multiplicity.
type denseEntry struct {
	shape   DenseShape
	repeats int
}

// conv is shorthand for building conv entries (batch 1, ImageNet).
func conv(inC, outC, h, w, k, stride, pad, repeats int) convEntry {
	return convEntry{ConvShape{Batch: 1, InC: inC, OutC: outC, H: h, W: w, Kernel: k, Stride: stride, Pad: pad}, repeats}
}

// alexNetConvs are the five unique AlexNet convolution shapes (ImageNet).
var alexNetConvs = []convEntry{
	conv(3, 64, 227, 227, 11, 4, 0, 1),
	conv(64, 192, 27, 27, 5, 1, 2, 1),
	conv(192, 384, 13, 13, 3, 1, 1, 1),
	conv(384, 256, 13, 13, 3, 1, 1, 1),
	conv(256, 256, 13, 13, 3, 1, 1, 1),
}

// alexNetDense are the three fully connected layers.
var alexNetDense = []denseEntry{
	{DenseShape{Batch: 1, In: 9216, Out: 4096}, 1},
	{DenseShape{Batch: 1, In: 4096, Out: 4096}, 1},
	{DenseShape{Batch: 1, In: 4096, Out: 1000}, 1},
}

// vggConvs are the nine unique VGG-16 convolution shapes: thirteen layers
// collapse to nine tasks because repeated same-shape layers share one task.
var vggConvs = []convEntry{
	conv(3, 64, 224, 224, 3, 1, 1, 1),
	conv(64, 64, 224, 224, 3, 1, 1, 1),
	conv(64, 128, 112, 112, 3, 1, 1, 1),
	conv(128, 128, 112, 112, 3, 1, 1, 1),
	conv(128, 256, 56, 56, 3, 1, 1, 1),
	conv(256, 256, 56, 56, 3, 1, 1, 2),
	conv(256, 512, 28, 28, 3, 1, 1, 1),
	conv(512, 512, 28, 28, 3, 1, 1, 2),
	conv(512, 512, 14, 14, 3, 1, 1, 3),
}

// vggDense are VGG-16's fully connected layers.
var vggDense = []denseEntry{
	{DenseShape{Batch: 1, In: 25088, Out: 4096}, 1},
	{DenseShape{Batch: 1, In: 4096, Out: 4096}, 1},
	{DenseShape{Batch: 1, In: 4096, Out: 1000}, 1},
}

// resNetConvs are the twelve unique ResNet-18 convolution shapes TVM's task
// extraction produces: the 7×7 stem, per-stage 3×3 convolutions (entry with
// stride 2 from stage 2 on, plus the stride-1 body conv), and the 1×1
// downsample projections.
var resNetConvs = []convEntry{
	conv(3, 64, 224, 224, 7, 2, 3, 1),  // stem
	conv(64, 64, 56, 56, 3, 1, 1, 4),   // stage1 body (2 blocks × 2 convs)
	conv(64, 64, 56, 56, 1, 1, 0, 1),   // stage1 residual projection
	conv(64, 128, 56, 56, 3, 2, 1, 1),  // stage2 entry
	conv(128, 128, 28, 28, 3, 1, 1, 3), // stage2 body
	conv(64, 128, 56, 56, 1, 2, 0, 1),  // stage2 downsample
	conv(128, 256, 28, 28, 3, 2, 1, 1), // stage3 entry
	conv(256, 256, 14, 14, 3, 1, 1, 3), // stage3 body
	conv(128, 256, 28, 28, 1, 2, 0, 1), // stage3 downsample
	conv(256, 512, 14, 14, 3, 2, 1, 1), // stage4 entry
	conv(512, 512, 7, 7, 3, 1, 1, 3),   // stage4 body
	conv(256, 512, 14, 14, 1, 2, 0, 1), // stage4 downsample
}

// resNetDense is the classifier head.
var resNetDense = []denseEntry{{DenseShape{Batch: 1, In: 512, Out: 1000}, 1}}

// winogradEligible reports whether the direct conv task also gets a
// Winograd variant: stride-1 convolutions with spatial kernels, matching
// TVM's winograd applicability (plus AlexNet's 5×5, giving the paper's
// 4/9/4 winograd task counts).
func winogradEligible(c ConvShape) bool {
	return c.Stride == 1 && c.Kernel >= 3
}

// Tasks extracts the tuning tasks of a model in Table 1 order: direct
// conv2d tasks, then winograd variants, then dense layers.
func Tasks(model string) ([]Task, error) {
	var convs []convEntry
	var dense []denseEntry
	switch model {
	case AlexNet:
		convs, dense = alexNetConvs, alexNetDense
	case VGG16:
		convs, dense = vggConvs, vggDense
	case ResNet18:
		convs, dense = resNetConvs, resNetDense
	default:
		return nil, fmt.Errorf("workload: unknown model %q", model)
	}
	var tasks []Task
	idx := 1
	for _, c := range convs {
		tasks = append(tasks, Task{Model: model, Index: idx, Kind: Conv2D, Conv: c.shape, Repeats: c.repeats})
		idx++
	}
	for _, c := range convs {
		if winogradEligible(c.shape) {
			tasks = append(tasks, Task{Model: model, Index: idx, Kind: WinogradConv2D, Conv: c.shape, Repeats: c.repeats})
			idx++
		}
	}
	for _, d := range dense {
		tasks = append(tasks, Task{Model: model, Index: idx, Kind: Dense, Dense: d.shape, Repeats: d.repeats})
		idx++
	}
	return tasks, nil
}

// MustTasks is Tasks for known-good model names.
func MustTasks(model string) []Task {
	t, err := Tasks(model)
	if err != nil {
		panic(err)
	}
	return t
}

// TaskByIndex returns the 1-based task L<n> of a model.
func TaskByIndex(model string, n int) (Task, error) {
	tasks, err := Tasks(model)
	if err != nil {
		return Task{}, err
	}
	if n < 1 || n > len(tasks) {
		return Task{}, fmt.Errorf("workload: %s has %d tasks, no L%d", model, len(tasks), n)
	}
	return tasks[n-1], nil
}

// ModelFLOPs sums the FLOPs of every task of the model (each task counted
// once, matching how the end-to-end latency is assembled from task times).
func ModelFLOPs(model string) (int64, error) {
	tasks, err := Tasks(model)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, t := range tasks {
		total += t.FLOPs()
	}
	return total, nil
}
