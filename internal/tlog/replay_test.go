package tlog

import (
	"bytes"
	"errors"
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func replayFixture(t *testing.T) (workload.Task, *space.Space, *measure.Local) {
	t.Helper()
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	return task, space.MustForTask(task), measure.MustNewLocal(hwspec.TitanXp)
}

// TestReplayerServesRecordedBatches pins the resume contract: a session
// re-driven against the recorded log sees byte-identical results without
// touching the real measurer, and the log hand-off to the inner measurer
// is seamless.
func TestReplayerServesRecordedBatches(t *testing.T) {
	task, sp, local := replayFixture(t)
	var buf bytes.Buffer
	rec := &RecordingMeasurer{Inner: local, Out: NewWriter(&buf, 0)}
	b1 := []int64{0, 1, 2}
	b2 := []int64{3, 4}
	r1, err := rec.MeasureBatch(task, sp, b1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rec.MeasureBatch(task, sp, b2)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReplayer(entries, local)
	g1, err := rp.MeasureBatch(task, sp, b1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1 {
		if g1[i] != r1[i] {
			t.Fatalf("replayed batch 1 result %d = %+v, recorded %+v", i, g1[i], r1[i])
		}
	}
	if !rp.Replaying() {
		t.Fatal("replayer exhausted after first batch")
	}
	g2, err := rp.MeasureBatch(task, sp, b2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g2 {
		if g2[i] != r2[i] {
			t.Fatalf("replayed batch 2 result %d = %+v, recorded %+v", i, g2[i], r2[i])
		}
	}
	if rp.Replaying() || rp.Consumed() != 5 {
		t.Fatalf("replayer state after drain: replaying=%v consumed=%d", rp.Replaying(), rp.Consumed())
	}
	// Past the log, calls reach the inner measurer.
	if _, err := rp.MeasureBatch(task, sp, []int64{5}); err != nil {
		t.Fatalf("post-log measurement: %v", err)
	}
}

func TestReplayerDivergenceIsAnError(t *testing.T) {
	task, sp, local := replayFixture(t)
	var buf bytes.Buffer
	rec := &RecordingMeasurer{Inner: local, Out: NewWriter(&buf, 0)}
	if _, err := rec.MeasureBatch(task, sp, []int64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rp := NewReplayer(entries, local)
	if _, err := rp.MeasureBatch(task, sp, []int64{0, 9, 2}); !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("mismatched config indices: err = %v, want ErrReplayDiverged", err)
	}

	// A different task over the same indices must also refuse.
	other, err := workload.TaskByIndex(workload.ResNet18, 8)
	if err != nil {
		t.Fatal(err)
	}
	osp := space.MustForTask(other)
	rp = NewReplayer(entries, local)
	if _, err := rp.MeasureBatch(other, osp, []int64{0, 1, 2}); !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("mismatched task: err = %v, want ErrReplayDiverged", err)
	}
}

func TestReplayerShortLogIsAnError(t *testing.T) {
	task, sp, local := replayFixture(t)
	var buf bytes.Buffer
	rec := &RecordingMeasurer{Inner: local, Out: NewWriter(&buf, 0)}
	if _, err := rec.MeasureBatch(task, sp, []int64{0, 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReplayer(entries, local)
	if _, err := rp.MeasureBatch(task, sp, []int64{0, 1, 2}); !errors.Is(err, ErrReplayShort) {
		t.Fatalf("mid-batch log end: err = %v, want ErrReplayShort", err)
	}
}
