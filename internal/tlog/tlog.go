// Package tlog provides persistent tuning logs in the spirit of AutoTVM's
// .log files: every hardware measurement is one JSON line, logs can be
// replayed into transfer-learning corpora, and the best configuration per
// task can be looked up for deployment. A RecordingMeasurer wraps any
// measure.Measurer so every tuner's measurements are captured
// transparently.
package tlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Entry is one logged measurement.
type Entry struct {
	Seq         int     `json:"seq"`
	Device      string  `json:"device"`
	Model       string  `json:"model"`
	TaskIndex   int     `json:"task_index"`
	TaskName    string  `json:"task_name"`
	ConfigIndex int64   `json:"config_index"`
	Valid       bool    `json:"valid"`
	GFLOPS      float64 `json:"gflops,omitempty"`
	TimeMS      float64 `json:"time_ms,omitempty"`
	CostSec     float64 `json:"cost_sec"`
	FailReason  string  `json:"fail_reason,omitempty"`
}

// Writer appends entries as JSON lines; it is safe for concurrent use.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	seq int
}

// NewWriter wraps an io.Writer. lastSeq is the sequence number of the
// last entry already in the log — 0 for a fresh log — so a writer
// resumed onto an existing file (checkpoint resume, -log append)
// continues numbering instead of restarting at 1. Callers resuming a log
// typically pass entries[len(entries)-1].Seq from Read.
func NewWriter(w io.Writer, lastSeq int) *Writer { return &Writer{w: w, seq: lastSeq} }

// Seq returns the sequence number of the most recently appended entry
// (or the lastSeq the writer was created with, before any Append).
func (w *Writer) Seq() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Append writes one entry, assigning its sequence number.
func (w *Writer) Append(e Entry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	e.Seq = w.seq
	return AppendJSONLine(w.w, e)
}

// AppendJSONLine marshals v and writes it as one newline-terminated JSON
// line — the append format shared by tuning logs, fleet checkpoints, and
// telemetry traces. The implementation lives in internal/telemetry (the
// dependency leaf); this delegate keeps the historical entry point.
func AppendJSONLine(w io.Writer, v any) error {
	return telemetry.AppendJSONLine(w, v)
}

// ReadJSONLines streams newline-delimited JSON from r, calling fn with
// each non-empty line. A final line that is missing its terminating
// newline AND does not parse as JSON is silently dropped: that is exactly
// what a writer killed mid-append leaves behind, and resumable logs must
// survive it. Any other malformed line is an error.
func ReadJSONLines(r io.Reader, fn func(line []byte) error) error {
	br := bufio.NewReaderSize(r, 64*1024)
	lineNo := 0
	for {
		chunk, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return err
		}
		terminated := err == nil
		lineNo++
		line := bytes.TrimRight(chunk, "\r\n")
		if len(line) > 0 {
			if !terminated && !json.Valid(line) {
				return nil // truncated trailing write from a killed session
			}
			if ferr := fn(line); ferr != nil {
				return fmt.Errorf("tlog: line %d: %w", lineNo, ferr)
			}
		}
		if err == io.EOF {
			return nil
		}
	}
}

// Read parses a JSONL log (tolerating a truncated final line, see
// ReadJSONLines).
func Read(r io.Reader) ([]Entry, error) {
	var out []Entry
	err := ReadJSONLines(r, func(line []byte) error {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RecordingMeasurer wraps a Measurer and logs every measurement.
type RecordingMeasurer struct {
	Inner measure.Measurer
	Out   *Writer
}

// MeasureBatch measures through the inner measurer and logs the results.
func (r *RecordingMeasurer) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	results, err := r.Inner.MeasureBatch(task, sp, idxs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		e := Entry{
			Device:      r.Inner.DeviceName(),
			Model:       task.Model,
			TaskIndex:   task.Index,
			TaskName:    task.Name(),
			ConfigIndex: idxs[i],
			Valid:       res.Valid,
			GFLOPS:      res.GFLOPS,
			TimeMS:      res.TimeMS,
			CostSec:     res.CostSec,
			FailReason:  res.FailReason,
		}
		if err := r.Out.Append(e); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// DeviceName identifies the wrapped device.
func (r *RecordingMeasurer) DeviceName() string { return r.Inner.DeviceName() }

// BindTrace forwards the span context down the chain
// (measure.TraceBinder); recording is identity-agnostic.
func (r *RecordingMeasurer) BindTrace(sc telemetry.SpanContext) { measure.BindTrace(r.Inner, sc) }

// Best returns the best valid entry for a task name across every device
// in the log, or ok=false. A mixed-device log can therefore return another
// GPU's configuration: deployment lookups must use BestForDevice, which
// filters to the device the config will actually run on.
func Best(entries []Entry, taskName string) (Entry, bool) {
	return bestWhere(entries, func(e Entry) bool { return e.TaskName == taskName })
}

// BestForDevice returns the best valid entry for a task name measured on
// the given device, or ok=false. This is the deployment-safe variant: a
// log shared by a fleet session holds entries from many GPUs, and a
// configuration tuned for one SKU must never be served as another's best.
func BestForDevice(entries []Entry, taskName, device string) (Entry, bool) {
	return bestWhere(entries, func(e Entry) bool {
		return e.TaskName == taskName && e.Device == device
	})
}

func bestWhere(entries []Entry, match func(Entry) bool) (Entry, bool) {
	best := Entry{}
	found := false
	for _, e := range entries {
		if !e.Valid || !match(e) {
			continue
		}
		if !found || e.GFLOPS > best.GFLOPS {
			best = e
			found = true
		}
	}
	return best, found
}

// GPUSeconds totals the measurement cost in a log.
func GPUSeconds(entries []Entry) float64 {
	total := 0.0
	for _, e := range entries {
		total += e.CostSec
	}
	return total
}

// ToTransferData replays log entries of the given template kind into a
// transfer-learning corpus: each entry's configuration is re-featurized
// through its task's space. Entries from unknown models are skipped.
func ToTransferData(entries []Entry, kind workload.Kind) (*tuner.TransferData, error) {
	// Tasks and spaces are cached by (Model, TaskIndex) — the pair that
	// actually resolves them. Keying by TaskName would let two models with
	// a same-named task featurize one model's config indices through the
	// other's space.
	type taskKey struct {
		model string
		index int
	}
	spaces := map[taskKey]*space.Space{}
	tasks := map[taskKey]workload.Task{}
	td := &tuner.TransferData{}
	for _, e := range entries {
		key := taskKey{model: e.Model, index: e.TaskIndex}
		task, ok := tasks[key]
		if !ok {
			var err error
			task, err = workload.TaskByIndex(e.Model, e.TaskIndex)
			if err != nil {
				continue // foreign model; skip
			}
			tasks[key] = task
			sp, err := space.ForTask(task)
			if err != nil {
				return nil, err
			}
			spaces[key] = sp
		}
		if task.Kind != kind {
			continue
		}
		sp := spaces[key]
		if e.ConfigIndex < 0 || e.ConfigIndex >= sp.Size() {
			return nil, fmt.Errorf("tlog: entry %d config index %d out of %s space", e.Seq, e.ConfigIndex, e.TaskName)
		}
		v := 0.0
		if e.Valid {
			v = e.GFLOPS
		}
		td.Features = append(td.Features, sp.FeaturesAt(e.ConfigIndex))
		td.GFLOPS = append(td.GFLOPS, v)
	}
	if len(td.Features) == 0 {
		return nil, fmt.Errorf("tlog: no entries of kind %v", kind)
	}
	return td, nil
}
