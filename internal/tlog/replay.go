package tlog

import (
	"errors"
	"fmt"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// ErrReplayDiverged reports that a resumed session requested a batch that
// does not match the recorded log — the checkpoint belongs to a different
// seed, config, or code version, and replaying it would corrupt the
// session state.
var ErrReplayDiverged = errors.New("tlog: replay diverged from recorded log")

// ErrReplayShort reports a recorded log that ends inside a batch (a
// writer killed mid-append). The tail cannot be replayed safely; callers
// should discard the log and restart the session from scratch —
// determinism guarantees the rerun converges to the same result.
var ErrReplayShort = errors.New("tlog: recorded log ends mid-batch")

// Replayer is the resume half of the checkpoint discipline: it serves a
// previously recorded measurement log back to a deterministic tuning
// session batch by batch, then hands through to the real Measurer once
// the log is exhausted. Because every stage of a Glimpse session is
// deterministic given its seed and its measurement results, re-driving a
// fresh session against a Replayer reconstructs the exact state — RNG
// position included — at which the recorded session stopped, without
// spending any new GPU seconds on the replayed prefix.
//
// Replay is strict: each requested batch must match the next recorded
// entries exactly (same task, same config indices, same order), otherwise
// MeasureBatch returns ErrReplayDiverged. A log that ends mid-batch
// returns ErrReplayShort. A Replayer drives one session; it is not safe
// for concurrent use.
type Replayer struct {
	inner   measure.Measurer
	entries []Entry
	pos     int
}

// NewReplayer builds a Replayer over recorded entries; inner serves every
// measurement after the log runs out (wrap it in a RecordingMeasurer
// appending to the same log to keep the checkpoint growing).
func NewReplayer(entries []Entry, inner measure.Measurer) *Replayer {
	return &Replayer{inner: inner, entries: entries}
}

// Replaying reports whether recorded entries remain to be served.
func (r *Replayer) Replaying() bool { return r.pos < len(r.entries) }

// Consumed returns how many recorded entries have been served.
func (r *Replayer) Consumed() int { return r.pos }

// MeasureBatch serves the batch from the recorded log while it lasts,
// then delegates to the inner measurer.
func (r *Replayer) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	if r.pos >= len(r.entries) {
		return r.inner.MeasureBatch(task, sp, idxs)
	}
	if r.pos+len(idxs) > len(r.entries) {
		return nil, fmt.Errorf("%w: batch of %d requested with %d entries left",
			ErrReplayShort, len(idxs), len(r.entries)-r.pos)
	}
	out := make([]gpusim.Result, len(idxs))
	for i, idx := range idxs {
		e := r.entries[r.pos+i]
		if e.ConfigIndex != idx || e.Model != task.Model || e.TaskIndex != task.Index {
			return nil, fmt.Errorf("%w: entry %d recorded %s[%d] config %d, session requested %s[%d] config %d",
				ErrReplayDiverged, e.Seq, e.Model, e.TaskIndex, e.ConfigIndex, task.Model, task.Index, idx)
		}
		out[i] = gpusim.Result{
			Valid:      e.Valid,
			FailReason: e.FailReason,
			TimeMS:     e.TimeMS,
			GFLOPS:     e.GFLOPS,
			CostSec:    e.CostSec,
		}
	}
	r.pos += len(idxs)
	return out, nil
}

// DeviceName identifies the underlying device.
func (r *Replayer) DeviceName() string { return r.inner.DeviceName() }

// BindTrace forwards the span context to the live inner measurer
// (measure.TraceBinder); replayed batches never touch the wire.
func (r *Replayer) BindTrace(sc telemetry.SpanContext) { measure.BindTrace(r.inner, sc) }
