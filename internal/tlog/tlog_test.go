package tlog

import (
	"bytes"
	"strings"
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// TestWriterResumesSequence is the checkpoint-resume regression: a writer
// rebuilt over an existing log must continue its numbering, not restart
// at 1 (duplicate seqs would corrupt replay ordering and Best lookups).
func TestWriterResumesSequence(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if w.Seq() != 0 {
		t.Fatalf("fresh writer Seq() = %d, want 0", w.Seq())
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(Entry{Device: "titan-xp"}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Seq() != 3 {
		t.Fatalf("Seq() = %d after 3 appends", w.Seq())
	}

	// Simulate a killed session: reopen the same log, resume numbering.
	entries, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewWriter(&buf, entries[len(entries)-1].Seq)
	if resumed.Seq() != 3 {
		t.Fatalf("resumed writer Seq() = %d, want 3", resumed.Seq())
	}
	if err := resumed.Append(Entry{Device: "titan-xp"}); err != nil {
		t.Fatal(err)
	}
	all, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := all[len(all)-1].Seq; got != 4 {
		t.Fatalf("resumed append got seq %d, want 4", got)
	}
	seen := map[int]bool{}
	for _, e := range all {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d after resume", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	entries := []Entry{
		{Device: "titan-xp", Model: "alexnet", TaskIndex: 1, TaskName: "alexnet.L1.conv2d",
			ConfigIndex: 42, Valid: true, GFLOPS: 1234.5, TimeMS: 0.2, CostSec: 2.5},
		{Device: "titan-xp", Model: "alexnet", TaskIndex: 1, TaskName: "alexnet.L1.conv2d",
			ConfigIndex: 43, Valid: false, FailReason: "shared_mem_exceeded", CostSec: 1.2},
	}
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d entries", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("sequence numbers %d, %d", got[0].Seq, got[1].Seq)
	}
	if got[0].GFLOPS != 1234.5 || got[1].FailReason != "shared_mem_exceeded" {
		t.Fatalf("round trip mangled: %+v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Blank lines are tolerated.
	got, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("blank lines: %v %v", got, err)
	}
}

func TestRecordingMeasurerCapturesTuningRun(t *testing.T) {
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	var buf bytes.Buffer
	rec := &RecordingMeasurer{
		Inner: measure.MustNewLocal(hwspec.TitanXp),
		Out:   NewWriter(&buf, 0),
	}
	if rec.DeviceName() != hwspec.TitanXp {
		t.Fatalf("device %q", rec.DeviceName())
	}
	res, err := tuner.Random{BatchSize: 8}.Tune(task, sp, rec,
		tuner.Budget{MaxMeasurements: 40}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != res.Measurements {
		t.Fatalf("logged %d entries, session measured %d", len(entries), res.Measurements)
	}
	// Log totals match the session's accounting.
	if got := GPUSeconds(entries); got < res.GPUSeconds-1e-9 || got > res.GPUSeconds+1e-9 {
		t.Fatalf("log GPU seconds %g vs session %g", got, res.GPUSeconds)
	}
	best, ok := Best(entries, task.Name())
	if !ok {
		t.Fatal("no best in log")
	}
	if best.GFLOPS != res.BestGFLOPS || best.ConfigIndex != res.BestIndex {
		t.Fatalf("log best %+v vs session best %g@%d", best, res.BestGFLOPS, res.BestIndex)
	}
}

func TestBestIgnoresInvalidAndOtherTasks(t *testing.T) {
	entries := []Entry{
		{TaskName: "a", Valid: false, GFLOPS: 0},
		{TaskName: "b", Valid: true, GFLOPS: 100},
		{TaskName: "a", Valid: true, GFLOPS: 50},
	}
	best, ok := Best(entries, "a")
	if !ok || best.GFLOPS != 50 {
		t.Fatalf("best = %+v ok=%v", best, ok)
	}
	if _, ok := Best(entries, "zzz"); ok {
		t.Fatal("phantom best")
	}
}

// TestBestForDeviceFiltersMixedLog is the cross-device regression: a log
// shared by a fleet session holds entries from several GPUs, and the
// deployment lookup must never serve one SKU's best configuration as
// another's. Best (the all-devices variant) keeps its historical global
// behaviour.
func TestBestForDeviceFiltersMixedLog(t *testing.T) {
	entries := []Entry{
		{TaskName: "a", Device: "titan-xp", Valid: true, GFLOPS: 50, ConfigIndex: 1},
		{TaskName: "a", Device: "rtx-3090", Valid: true, GFLOPS: 900, ConfigIndex: 2},
		{TaskName: "a", Device: "titan-xp", Valid: true, GFLOPS: 70, ConfigIndex: 3},
		{TaskName: "a", Device: "titan-xp", Valid: false, GFLOPS: 999, ConfigIndex: 4},
		{TaskName: "b", Device: "titan-xp", Valid: true, GFLOPS: 9999, ConfigIndex: 5},
	}
	best, ok := BestForDevice(entries, "a", "titan-xp")
	if !ok || best.ConfigIndex != 3 || best.GFLOPS != 70 {
		t.Fatalf("titan-xp best = %+v ok=%v, want config 3 @ 70 GFLOPS", best, ok)
	}
	best, ok = BestForDevice(entries, "a", "rtx-3090")
	if !ok || best.ConfigIndex != 2 {
		t.Fatalf("rtx-3090 best = %+v ok=%v", best, ok)
	}
	if _, ok := BestForDevice(entries, "a", "gtx-1050-ti"); ok {
		t.Fatal("unmeasured device produced a best")
	}
	// The all-devices variant still answers globally.
	if global, ok := Best(entries, "a"); !ok || global.ConfigIndex != 2 {
		t.Fatalf("global best = %+v ok=%v", global, ok)
	}
}

// TestToTransferDataCollidingTaskNames is the cache-keying regression:
// entries from two models that share a TaskName string must each be
// featurized through their own model's space. The old implementation
// cached tasks and spaces by TaskName while resolving them by
// (Model, TaskIndex), so whichever model appeared first hijacked the
// featurization of the other.
func TestToTransferDataCollidingTaskNames(t *testing.T) {
	taskA, err := workload.TaskByIndex(workload.AlexNet, 3)
	if err != nil {
		t.Fatal(err)
	}
	taskB, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	spA, spB := space.MustForTask(taskA), space.MustForTask(taskB)
	const idxA, idxB = 11, 23
	entries := []Entry{
		{Model: taskA.Model, TaskIndex: taskA.Index, TaskName: "shared.conv",
			ConfigIndex: idxA, Valid: true, GFLOPS: 100},
		{Model: taskB.Model, TaskIndex: taskB.Index, TaskName: "shared.conv",
			ConfigIndex: idxB, Valid: true, GFLOPS: 200},
	}
	td, err := ToTransferData(entries, workload.Conv2D)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Features) != 2 {
		t.Fatalf("corpus size %d want 2", len(td.Features))
	}
	wantA, wantB := spA.FeaturesAt(idxA), spB.FeaturesAt(idxB)
	if !equalFloats(td.Features[0], wantA) {
		t.Fatalf("first entry featurized through the wrong space:\n got %v\nwant %v", td.Features[0], wantA)
	}
	if !equalFloats(td.Features[1], wantB) {
		t.Fatalf("colliding-name entry featurized through the wrong space:\n got %v\nwant %v", td.Features[1], wantB)
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestToTransferDataReplaysLog(t *testing.T) {
	task, err := workload.TaskByIndex(workload.AlexNet, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	g := rng.New(6)
	var entries []Entry
	for i := 0; i < 30; i++ {
		idx := sp.RandomIndex(g)
		entries = append(entries, Entry{
			Model: task.Model, TaskIndex: task.Index, TaskName: task.Name(),
			ConfigIndex: idx, Valid: true, GFLOPS: float64(100 + i),
		})
	}
	// A dense entry of another kind must be filtered out.
	dense, err := workload.TaskByIndex(workload.AlexNet, 10)
	if err != nil {
		t.Fatal(err)
	}
	entries = append(entries, Entry{
		Model: dense.Model, TaskIndex: dense.Index, TaskName: dense.Name(),
		ConfigIndex: 1, Valid: true, GFLOPS: 1,
	})

	td, err := ToTransferData(entries, workload.Conv2D)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Features) != 30 {
		t.Fatalf("corpus size %d want 30", len(td.Features))
	}
	if len(td.Features[0]) != sp.FeatureLen() {
		t.Fatalf("feature width %d want %d", len(td.Features[0]), sp.FeatureLen())
	}
	// No conv entries → error.
	if _, err := ToTransferData(entries, workload.WinogradConv2D); err == nil {
		t.Fatal("empty corpus accepted")
	}
	// Out-of-space config index → error.
	bad := []Entry{{Model: task.Model, TaskIndex: task.Index, TaskName: task.Name(),
		ConfigIndex: sp.Size() + 5, Valid: true}}
	if _, err := ToTransferData(bad, workload.Conv2D); err == nil {
		t.Fatal("bad config index accepted")
	}
}
