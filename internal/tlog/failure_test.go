package tlog

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// errWriter fails every write after the first n bytes-calls succeed.
type errWriter struct {
	okCalls int
	calls   int
}

func (w *errWriter) Write(p []byte) (int, error) {
	w.calls++
	if w.calls > w.okCalls {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestAppendSurfacesWriterError(t *testing.T) {
	w := NewWriter(&errWriter{}, 0)
	if err := w.Append(Entry{TaskName: "t"}); err == nil {
		t.Fatal("Append on a failing writer returned nil error")
	}
}

func TestAppendJSONLineSurfacesMarshalError(t *testing.T) {
	var buf bytes.Buffer
	if err := AppendJSONLine(&buf, make(chan int)); err == nil {
		t.Fatal("AppendJSONLine marshaled an unmarshalable value")
	}
	if buf.Len() != 0 {
		t.Fatalf("failed marshal still wrote %d bytes", buf.Len())
	}
}

// TestConcurrentAppend hammers one Writer from many goroutines: every
// entry must land intact on its own line with a unique sequence number.
func TestConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&syncWriter{w: &buf}, 0)
	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := w.Append(Entry{TaskName: fmt.Sprintf("g%d-%d", g, i)}); err != nil {
					t.Errorf("Append: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	entries, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read after concurrent appends: %v", err)
	}
	if len(entries) != goroutines*perG {
		t.Fatalf("read %d entries, want %d", len(entries), goroutines*perG)
	}
	seen := map[int]bool{}
	for _, e := range entries {
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Seq < 1 || e.Seq > len(entries) {
			t.Fatalf("sequence %d outside 1..%d", e.Seq, len(entries))
		}
	}
}

// syncWriter serializes writes to the underlying buffer; the Writer's own
// mutex must still be what keeps whole lines from interleaving.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestReadRejectsMalformedMiddleLine(t *testing.T) {
	in := "{\"seq\":1}\nnot json\n{\"seq\":3}\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("malformed interior line was accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not identify line 2", err)
	}
}

func TestReadJSONLinesDropsKilledTail(t *testing.T) {
	in := "{\"seq\":1}\n{\"seq\":2,\"devi" // killed mid-append, no newline
	var lines int
	if err := ReadJSONLines(strings.NewReader(in), func([]byte) error { lines++; return nil }); err != nil {
		t.Fatalf("truncated tail should be tolerated, got %v", err)
	}
	if lines != 1 {
		t.Fatalf("saw %d lines, want 1 (the intact one)", lines)
	}
}

func TestReadJSONLinesPropagatesCallbackError(t *testing.T) {
	sentinel := errors.New("stop")
	err := ReadJSONLines(strings.NewReader("{\"seq\":1}\n"), func([]byte) error { return sentinel })
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

// failingMeasurer returns an error from MeasureBatch.
type failingMeasurer struct{}

func (failingMeasurer) MeasureBatch(workload.Task, *space.Space, []int64) ([]gpusim.Result, error) {
	return nil, errors.New("board on fire")
}
func (failingMeasurer) DeviceName() string { return "dead-gpu" }

// okMeasurer returns one valid result per index.
type okMeasurer struct{}

func (okMeasurer) MeasureBatch(_ workload.Task, _ *space.Space, idxs []int64) ([]gpusim.Result, error) {
	out := make([]gpusim.Result, len(idxs))
	for i := range out {
		out[i] = gpusim.Result{Valid: true, GFLOPS: 1}
	}
	return out, nil
}
func (okMeasurer) DeviceName() string { return "ok-gpu" }

func TestRecordingMeasurerPropagatesInnerError(t *testing.T) {
	rm := &RecordingMeasurer{Inner: failingMeasurer{}, Out: NewWriter(&bytes.Buffer{}, 0)}
	if _, err := rm.MeasureBatch(workload.Task{}, nil, []int64{0}); err == nil {
		t.Fatal("inner measurer error was swallowed")
	}
}

func TestRecordingMeasurerPropagatesLogError(t *testing.T) {
	rm := &RecordingMeasurer{Inner: okMeasurer{}, Out: NewWriter(&errWriter{}, 0)}
	if _, err := rm.MeasureBatch(workload.Task{}, nil, []int64{0}); err == nil {
		t.Fatal("log write failure was swallowed; a lost measurement must surface")
	}
}
