package telemetry

import "sort"

// Cross-process trace assembly. Each process in a distributed run —
// glimpsed, every measured endpoint — writes its own JSONL trace file
// with its own origin instant and its own span-ID space (prefixed by the
// tracer's proc label). MergeTraces stitches those files back into one
// tree per TraceID using only the propagated identifiers: parent/child
// edges come from SpanID/ParentID, never from timestamps, because clocks
// across processes share no origin. The output is deterministic for a
// given set of input files — ties sort on (proc, seq).

// ProcTrace is one process's parsed trace log, tagged with the process
// name shown in merged output (conventionally the trace file's basename).
type ProcTrace struct {
	Proc   string
	Events []SpanEvent
}

// MergedSpan is one node of an assembled cross-process trace tree: a
// span, or an instant event attached beneath the span that emitted it.
type MergedSpan struct {
	Proc     string
	Event    SpanEvent
	Orphan   bool // ParentID named a span missing from the input files
	Children []*MergedSpan
}

// SelfUS is the span's duration minus its children's, clamped at zero:
// the time spent in the span itself rather than in instrumented callees.
// Children measured by another process's clock still subtract — their
// durations are valid even though their origins are not comparable.
func (m *MergedSpan) SelfUS() int64 {
	self := m.Event.DurUS
	for _, c := range m.Children {
		self -= c.Event.DurUS
	}
	if self < 0 {
		self = 0
	}
	return self
}

// MergedTrace is every span and event sharing one TraceID, assembled
// into a forest rooted at the spans with no parent.
type MergedTrace struct {
	TraceID string
	JobID   string
	Tenant  string
	Procs   []string // processes that contributed, sorted
	Spans   int      // span-kind nodes
	Events  int      // event-kind nodes
	Roots   []*MergedSpan
}

// MergeTraces assembles the traces present in the given process logs.
// Lines with no TraceID (single-process spans from Start, metric-style
// events) are ignored. Traces come back sorted by TraceID.
func MergeTraces(procs []ProcTrace) []*MergedTrace {
	type traceAcc struct {
		trace   *MergedTrace
		nodes   []*MergedSpan
		bySpan  map[string]*MergedSpan
		procSet map[string]bool
	}
	accs := map[string]*traceAcc{}
	order := []string{}
	for _, p := range procs {
		for _, ev := range p.Events {
			if ev.TraceID == "" {
				continue
			}
			acc, ok := accs[ev.TraceID]
			if !ok {
				acc = &traceAcc{
					trace:   &MergedTrace{TraceID: ev.TraceID},
					bySpan:  map[string]*MergedSpan{},
					procSet: map[string]bool{},
				}
				accs[ev.TraceID] = acc
				order = append(order, ev.TraceID)
			}
			node := &MergedSpan{Proc: p.Proc, Event: ev}
			acc.nodes = append(acc.nodes, node)
			acc.procSet[p.Proc] = true
			if acc.trace.JobID == "" {
				acc.trace.JobID = ev.JobID
			}
			if acc.trace.Tenant == "" {
				acc.trace.Tenant = ev.Tenant
			}
			if ev.Kind == "span" {
				acc.trace.Spans++
				if ev.SpanID != "" {
					acc.bySpan[ev.SpanID] = node
				}
			} else {
				acc.trace.Events++
			}
		}
	}

	sort.Strings(order)
	out := make([]*MergedTrace, 0, len(order))
	for _, id := range order {
		acc := accs[id]
		for _, node := range acc.nodes {
			parent := node.Event.ParentID
			switch {
			case parent == "":
				acc.trace.Roots = append(acc.trace.Roots, node)
			case acc.bySpan[parent] != nil && acc.bySpan[parent] != node:
				p := acc.bySpan[parent]
				p.Children = append(p.Children, node)
			default:
				node.Orphan = true
				acc.trace.Roots = append(acc.trace.Roots, node)
			}
		}
		sortSiblings(acc.trace.Roots)
		for _, node := range acc.nodes {
			sortSiblings(node.Children)
		}
		for p := range acc.procSet {
			acc.trace.Procs = append(acc.trace.Procs, p)
		}
		sort.Strings(acc.trace.Procs)
		out = append(out, acc.trace)
	}
	return out
}

// sortSiblings orders same-parent nodes: same-process siblings by their
// emit sequence (start order within that clock), cross-process siblings
// grouped by process name. Never by StartUS across processes — those
// origins are unrelated.
func sortSiblings(nodes []*MergedSpan) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Proc != nodes[j].Proc {
			return nodes[i].Proc < nodes[j].Proc
		}
		return nodes[i].Event.Seq < nodes[j].Event.Seq
	})
}

// StageStat is a per-stage rollup of one merged trace.
type StageStat struct {
	Stage   string
	Spans   int
	Events  int
	TotalUS int64 // sum of span durations
	SelfUS  int64 // sum of span self-times
	MaxUS   int64 // longest single span
}

// StageRollup aggregates the merged trace by stage, sorted by total time
// descending (ties by stage name).
func (t *MergedTrace) StageRollup() []StageStat {
	byStage := map[string]*StageStat{}
	var walk func(n *MergedSpan)
	walk = func(n *MergedSpan) {
		st, ok := byStage[n.Event.Stage]
		if !ok {
			st = &StageStat{Stage: n.Event.Stage}
			byStage[n.Event.Stage] = st
		}
		if n.Event.Kind == "span" {
			st.Spans++
			st.TotalUS += n.Event.DurUS
			st.SelfUS += n.SelfUS()
			if n.Event.DurUS > st.MaxUS {
				st.MaxUS = n.Event.DurUS
			}
		} else {
			st.Events++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	out := make([]StageStat, 0, len(byStage))
	for _, st := range byStage {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// CriticalPath walks from the trace's first root, descending at each
// level into the longest child span, yielding the chain of spans that
// bounded the job's latency (queue wait → session steps → measurement
// RTT). Instant events never appear on the path.
func (t *MergedTrace) CriticalPath() []*MergedSpan {
	if len(t.Roots) == 0 {
		return nil
	}
	root := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if r.Event.Kind == "span" && r.Event.DurUS > root.Event.DurUS {
			root = r
		}
	}
	var path []*MergedSpan
	for n := root; n != nil; {
		path = append(path, n)
		var next *MergedSpan
		for _, c := range n.Children {
			if c.Event.Kind != "span" {
				continue
			}
			if next == nil || c.Event.DurUS > next.Event.DurUS {
				next = c
			}
		}
		n = next
	}
	return path
}
