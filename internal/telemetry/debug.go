package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// SnapshotFunc supplies one named section of the /telemetryz body — e.g.
// a measure.Reliable stats snapshot or a server's in-flight count. It
// must be safe to call from the serving goroutine at any time.
type SnapshotFunc func() any

// NewDebugMux builds the live-introspection handler: the net/http/pprof
// suite under /debug/pprof/ and a /telemetryz endpoint returning the
// registry snapshot plus every extra section as indented JSON.
func NewDebugMux(reg *Registry, extra map[string]SnapshotFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/telemetryz", func(w http.ResponseWriter, _ *http.Request) {
		body := map[string]any{"metrics": reg.Snapshot()}
		names := make([]string, 0, len(extra))
		for name := range extra {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			body[name] = extra[name]()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(body); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// ServeDebug listens on addr (e.g. "127.0.0.1:0") and serves mux in the
// background. It returns the bound address and a closer that stops the
// listener. Serving errors after close are expected and discarded; the
// endpoint is best-effort introspection, never load-bearing.
func ServeDebug(addr string, mux *http.ServeMux) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	//glint:ignore leakcheck -- serve loop exits when the returned closer shuts the server down
	go func() {
		_ = srv.Serve(ln) // returns ErrServerClosed (or a late accept error) on shutdown; nothing to do with it
	}()
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
