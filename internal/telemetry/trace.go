package telemetry

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names emitted by the instrumented tuning loop and fleet layers.
// cmd/tracereport groups a trace by these; free-form stages are fine too.
const (
	StagePriorSample    = "prior_sample"    // §3.1 Blueprint-prior batch draw
	StageAnneal         = "anneal"          // SA proposal over the surrogate
	StageEnsembleVote   = "ensemble_vote"   // §3.3 invalid-config filtering
	StageSurrogateTrain = "surrogate_train" // GP fit on measurements
	StageSurrogateScore = "surrogate_score" // GP posterior over the pool
	StageAcquisition    = "acquisition"     // §3.2 neural acquisition scoring
	StageMeasure        = "measure"         // hardware measurement batch
	StageCheckpoint     = "checkpoint"      // durable task-plan append
	StageCacheLookup    = "cache_lookup"    // tuned-config store consultation
	StageCacheHit       = "cache_hit"       // exact hit served with zero measurements
	StageGBTTrain       = "gbt_train"       // baseline cost-model fit
	StageTask           = "task"            // one whole tuning task (fleet)
	StageShard          = "shard"           // one shard of a sharded fleet run
	StageDispatch       = "dispatch"        // one sharded measurement fan-out
	StageSteal          = "steal"           // work-stealing events (tasks, endpoints)
	StageSpeculate      = "speculate"       // straggler re-issue events
	StageJob            = "job"             // one whole service job (glimpsed)
	StageStep           = "step"            // one propose→measure→update round
	StageQueueWait      = "queue_wait"      // admission→dispatch wait in the job queue
	StageRPCMeasure     = "rpc_measure"     // measured's side of one RPC measurement batch
)

// SpanContext identifies a position in a distributed trace and carries
// the job baggage that crosses goroutine and process boundaries. It
// holds no wall-clock fields, so propagating it cannot steer tuning:
// traced and untraced runs stay byte-identical (the PR 2 determinism
// contract). The zero value means "not part of a trace" and is safe to
// pass everywhere.
type SpanContext struct {
	TraceID string `json:"trace,omitempty"`
	SpanID  string `json:"span,omitempty"`
	JobID   string `json:"job,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
}

// Valid reports whether the context belongs to a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" }

// SpanEvent is one line of a trace file. Kind is "span" for a timed
// region and "event" for an instant occurrence (retry, breaker flip).
// Times are microseconds relative to the tracer's first observation, so
// traces are compact and fake-clock tests are byte-reproducible.
type SpanEvent struct {
	Seq      int            `json:"seq"`
	Kind     string         `json:"kind"`
	Stage    string         `json:"stage"`
	TraceID  string         `json:"trace,omitempty"`
	SpanID   string         `json:"span,omitempty"`
	ParentID string         `json:"parent,omitempty"`
	JobID    string         `json:"job,omitempty"`
	Tenant   string         `json:"tenant,omitempty"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Tracer records spans and events as JSONL. A nil *Tracer is the disabled
// tracer: every method is a no-op costing a nil check (see
// BenchmarkTracerDisabled), so instrumented code calls it unconditionally.
// It is safe for concurrent use; write errors are latched, not returned,
// so tracing can never fail a tuning run (check Err at shutdown).
type Tracer struct {
	clock Clock
	proc  string       // span-ID prefix distinguishing this process in merged traces
	ids   atomic.Int64 // span-ID allocator; IDs are per-process, not per-trace

	mu    sync.Mutex
	w     io.Writer
	seq   int
	start time.Time // trace origin: the instant the tracer was built
	err   error
}

// NewTracer emits JSONL trace lines to w, timing spans against clock
// (SystemClock in binaries, a *FakeClock in tests). A nil clock defaults
// to SystemClock. Span/event timestamps are relative to this call.
func NewTracer(w io.Writer, clock Clock) *Tracer {
	return NewTracerProc(w, clock, "")
}

// NewTracerProc is NewTracer with a process label: span IDs allocated by
// StartSpan are prefixed "proc/", so spans from different processes never
// collide when their trace files are merged (MergeTraces).
func NewTracerProc(w io.Writer, clock Clock, proc string) *Tracer {
	if clock == nil {
		clock = SystemClock()
	}
	return &Tracer{clock: clock, proc: proc, w: w, start: clock.Now()}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Err returns the first write or marshal error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is an in-flight timed region. The zero Span (from a nil tracer) is
// inert: SetAttr and End on it are no-ops.
type Span struct {
	t      *Tracer
	stage  string
	start  time.Time
	attrs  map[string]any
	sc     SpanContext // this span's own context (SpanID set by StartSpan)
	parent string      // parent span ID, if opened with StartSpan
}

// Start opens a span for stage. Call End (usually deferred) to emit it.
func (t *Tracer) Start(stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: t.clock.Now()}
}

// StartSpan opens a span for stage as a child of sc, allocating the new
// span's ID and returning the child context to hand to downstream work
// (deeper spans, or the RPC wire via measure.MeasureArgs). On a nil
// tracer the span is inert and the returned context is sc unchanged, so
// baggage still flows through processes that trace nothing.
func (t *Tracer) StartSpan(sc SpanContext, stage string) (Span, SpanContext) {
	if t == nil {
		return Span{}, sc
	}
	child := sc
	child.SpanID = t.nextSpanID()
	return Span{t: t, stage: stage, start: t.clock.Now(), sc: child, parent: sc.SpanID}, child
}

// Context returns the span's own context (zero for a span opened with
// Start or on a disabled tracer).
func (s *Span) Context() SpanContext { return s.sc }

func (t *Tracer) nextSpanID() string {
	n := strconv.FormatInt(t.ids.Add(1), 10)
	if t.proc == "" {
		return n
	}
	return t.proc + "/" + n
}

// SetAttr attaches a key/value attribute to the span before End.
func (s *Span) SetAttr(key string, v any) {
	if s.t == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// End emits the span with its measured duration.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.clock.Now()
	s.t.emit("span", s.stage, s.start, end.Sub(s.start), s.attrs, s.sc, s.parent)
}

// Event emits an instant (zero-duration) occurrence, e.g. a retry or a
// breaker transition.
func (t *Tracer) Event(stage string, attrs map[string]any) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	t.emit("event", stage, now, 0, attrs, SpanContext{}, "")
}

// EventCtx is Event stamped with trace identity: the occurrence is
// recorded as a child of sc's span, so merged traces attach steal and
// speculation events to the dispatch that caused them.
func (t *Tracer) EventCtx(sc SpanContext, stage string, attrs map[string]any) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	ev := sc
	ev.SpanID = "" // events are instants, not spans; they allocate no ID
	t.emit("event", stage, now, 0, attrs, ev, sc.SpanID)
}

func (t *Tracer) emit(kind, stage string, at time.Time, dur time.Duration, attrs map[string]any, sc SpanContext, parent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev := SpanEvent{
		Seq:      t.seq,
		Kind:     kind,
		Stage:    stage,
		TraceID:  sc.TraceID,
		SpanID:   sc.SpanID,
		ParentID: parent,
		JobID:    sc.JobID,
		Tenant:   sc.Tenant,
		StartUS:  at.Sub(t.start).Microseconds(),
		DurUS:    dur.Microseconds(),
		Attrs:    attrs,
	}
	if err := AppendJSONLine(t.w, ev); err != nil && t.err == nil {
		t.err = err // latch the first failure; tracing must not abort tuning
	}
}
