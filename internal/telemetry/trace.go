package telemetry

import (
	"io"
	"sync"
	"time"
)

// Stage names emitted by the instrumented tuning loop and fleet layers.
// cmd/tracereport groups a trace by these; free-form stages are fine too.
const (
	StagePriorSample    = "prior_sample"    // §3.1 Blueprint-prior batch draw
	StageAnneal         = "anneal"          // SA proposal over the surrogate
	StageEnsembleVote   = "ensemble_vote"   // §3.3 invalid-config filtering
	StageSurrogateTrain = "surrogate_train" // GP fit on measurements
	StageSurrogateScore = "surrogate_score" // GP posterior over the pool
	StageAcquisition    = "acquisition"     // §3.2 neural acquisition scoring
	StageMeasure        = "measure"         // hardware measurement batch
	StageCheckpoint     = "checkpoint"      // durable task-plan append
	StageCacheLookup    = "cache_lookup"    // tuned-config store consultation
	StageCacheHit       = "cache_hit"       // exact hit served with zero measurements
	StageGBTTrain       = "gbt_train"       // baseline cost-model fit
	StageTask           = "task"            // one whole tuning task (fleet)
	StageShard          = "shard"           // one shard of a sharded fleet run
	StageDispatch       = "dispatch"        // one sharded measurement fan-out
	StageSteal          = "steal"           // work-stealing events (tasks, endpoints)
	StageSpeculate      = "speculate"       // straggler re-issue events
)

// SpanEvent is one line of a trace file. Kind is "span" for a timed
// region and "event" for an instant occurrence (retry, breaker flip).
// Times are microseconds relative to the tracer's first observation, so
// traces are compact and fake-clock tests are byte-reproducible.
type SpanEvent struct {
	Seq     int            `json:"seq"`
	Kind    string         `json:"kind"`
	Stage   string         `json:"stage"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Tracer records spans and events as JSONL. A nil *Tracer is the disabled
// tracer: every method is a no-op costing a nil check (see
// BenchmarkTracerDisabled), so instrumented code calls it unconditionally.
// It is safe for concurrent use; write errors are latched, not returned,
// so tracing can never fail a tuning run (check Err at shutdown).
type Tracer struct {
	clock Clock

	mu    sync.Mutex
	w     io.Writer
	seq   int
	start time.Time // trace origin: the instant the tracer was built
	err   error
}

// NewTracer emits JSONL trace lines to w, timing spans against clock
// (SystemClock in binaries, a *FakeClock in tests). A nil clock defaults
// to SystemClock. Span/event timestamps are relative to this call.
func NewTracer(w io.Writer, clock Clock) *Tracer {
	if clock == nil {
		clock = SystemClock()
	}
	return &Tracer{clock: clock, w: w, start: clock.Now()}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Err returns the first write or marshal error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is an in-flight timed region. The zero Span (from a nil tracer) is
// inert: SetAttr and End on it are no-ops.
type Span struct {
	t     *Tracer
	stage string
	start time.Time
	attrs map[string]any
}

// Start opens a span for stage. Call End (usually deferred) to emit it.
func (t *Tracer) Start(stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: t.clock.Now()}
}

// SetAttr attaches a key/value attribute to the span before End.
func (s *Span) SetAttr(key string, v any) {
	if s.t == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// End emits the span with its measured duration.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.clock.Now()
	s.t.emit("span", s.stage, s.start, end.Sub(s.start), s.attrs)
}

// Event emits an instant (zero-duration) occurrence, e.g. a retry or a
// breaker transition.
func (t *Tracer) Event(stage string, attrs map[string]any) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	t.emit("event", stage, now, 0, attrs)
}

func (t *Tracer) emit(kind, stage string, at time.Time, dur time.Duration, attrs map[string]any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev := SpanEvent{
		Seq:     t.seq,
		Kind:    kind,
		Stage:   stage,
		StartUS: at.Sub(t.start).Microseconds(),
		DurUS:   dur.Microseconds(),
		Attrs:   attrs,
	}
	if err := AppendJSONLine(t.w, ev); err != nil && t.err == nil {
		t.err = err // latch the first failure; tracing must not abort tuning
	}
}
