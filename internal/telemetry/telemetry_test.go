package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func fakeClockAt(sec int64) *FakeClock {
	return NewFakeClock(time.Unix(sec, 0).UTC())
}

func TestTracerSpanOutputDeterministic(t *testing.T) {
	clk := fakeClockAt(1000)
	var buf bytes.Buffer
	tr := NewTracer(&buf, clk)

	sp := tr.Start(StageAnneal)
	sp.SetAttr("chains", 64)
	clk.Advance(1500 * time.Microsecond)
	sp.End()
	clk.Advance(250 * time.Microsecond)
	tr.Event("retry", map[string]any{"backend": "titan-xp"})

	want := `{"seq":1,"kind":"span","stage":"anneal","start_us":0,"dur_us":1500,"attrs":{"chains":64}}
{"seq":2,"kind":"event","stage":"retry","start_us":1750,"attrs":{"backend":"titan-xp"}}
`
	if got := buf.String(); got != want {
		t.Fatalf("trace output:\n%s\nwant:\n%s", got, want)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("anything")
	sp.SetAttr("k", "v")
	sp.End()
	tr.Event("boom", nil)
	if err := tr.Err(); err != nil {
		t.Fatalf("nil tracer Err() = %v", err)
	}
}

func TestTracerConcurrentEmitSeqsUnique(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, fakeClockAt(0))
	var wg sync.WaitGroup
	const n, per = 8, 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				sp := tr.Start(StageMeasure)
				sp.End()
			}
		}()
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if len(seen) != n*per {
		t.Fatalf("got %d events, want %d", len(seen), n*per)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestTracerLatchesFirstWriteError(t *testing.T) {
	boom := fmt.Errorf("disk full")
	tr := NewTracer(failWriter{err: boom}, fakeClockAt(0))
	sp := tr.Start("x")
	sp.End() // must not panic or abort
	tr.Event("y", nil)
	if err := tr.Err(); err != boom {
		t.Fatalf("Err() = %v, want latched %v", err, boom)
	}
}

func TestFakeClockAdvance(t *testing.T) {
	clk := fakeClockAt(42)
	t0 := clk.Now()
	clk.Advance(3 * time.Second)
	if d := clk.Now().Sub(t0); d != 3*time.Second {
		t.Fatalf("Advance moved %v, want 3s", d)
	}
}

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
}

func TestRegistryGetOrCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("batches").Add(3)
	r.Counter("batches").Inc() // same instance
	r.Gauge("inflight").Set(2)
	h := r.Histogram("batch_ms", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000) // overflow bucket

	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Name != "batches" || s.Counters[0].Value != 4 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 2 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	hs := s.Histograms[0]
	if hs.Count != 3 {
		t.Fatalf("hist count = %d", hs.Count)
	}
	wantCounts := []int64{1, 1, 0, 1}
	for i, c := range hs.Counts {
		if c != wantCounts[i] {
			t.Fatalf("hist counts = %v, want %v", hs.Counts, wantCounts)
		}
	}
	if hs.Mean == 0 {
		t.Fatal("hist mean not computed")
	}
}

func TestNilRegistryHandsOutUsableMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter from nil registry unusable")
	}
	r.Gauge("y").Set(1)
	r.Histogram("z", []float64{1}).Observe(2)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot non-empty: %+v", s)
	}
}

func TestSnapshotSortedAndTableRenders(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha").Inc()
	s := r.Snapshot()
	if s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Fatalf("snapshot not sorted: %+v", s.Counters)
	}
	out := s.Table("metrics")
	for _, want := range []string{"metrics", "alpha", "zeta", "counter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDebugServerTelemetryzAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("batches").Add(7)
	mux := NewDebugMux(r, map[string]SnapshotFunc{
		"server": func() any { return map[string]int{"in_flight": 2} },
	})
	addr, closeFn, err := ServeDebug("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := get("/telemetryz")
	var parsed struct {
		Metrics Snapshot       `json:"metrics"`
		Server  map[string]int `json:"server"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("telemetryz not JSON: %v\n%s", err, body)
	}
	if len(parsed.Metrics.Counters) != 1 || parsed.Metrics.Counters[0].Value != 7 {
		t.Fatalf("telemetryz metrics = %+v", parsed.Metrics)
	}
	if parsed.Server["in_flight"] != 2 {
		t.Fatalf("telemetryz extra section = %+v", parsed.Server)
	}
	if !strings.Contains(get("/debug/pprof/"), "profiles") {
		t.Fatal("pprof index not served")
	}
}
