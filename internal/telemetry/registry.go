package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/neuralcompile/glimpse/internal/metrics"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use and nil-safe, so
// uninstrumented code paths can hold a nil *Counter without guards.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float metric for quantities
// like GPU-seconds that accumulate in fractional units. The zero value is
// ready to use; all methods are safe for concurrent use and nil-safe.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v.
func (c *FloatCounter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-value-wins float metric. The zero value is ready to
// use; all methods are safe for concurrent use and nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper edges; values above the last bound land in an implicit +Inf
// bucket. The zero value is unusable — build one through Registry or
// NewHistogram. Methods are safe for concurrent use and nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is the overflow bucket

	mu  sync.Mutex
	n   int64
	sum float64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.mu.Lock()
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// HistogramSnap is a histogram's frozen state.
type HistogramSnap struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50,omitempty"`
	P90    float64   `json:"p90,omitempty"`
	P99    float64   `json:"p99,omitempty"`
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the target rank: the rank's fractional
// position within the bucket's count maps linearly onto the bucket's
// bounds. The first bucket interpolates up from zero (histogram values
// are duration-like, nonnegative), and ranks landing in the overflow
// bucket report the last bound — the histogram cannot resolve past it.
func (s HistogramSnap) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			break // overflow bucket
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot captures the histogram's current state under the given name,
// with the same percentile estimates the registry snapshot computes —
// for callers holding a standalone histogram outside any Registry.
func (h *Histogram) Snapshot(name string) HistogramSnap {
	return h.snapshot(name)
}

func (h *Histogram) snapshot(name string) HistogramSnap {
	s := HistogramSnap{Name: name, Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	h.mu.Lock()
	s.Count, s.Sum = h.n, h.sum
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
		s.P50 = s.Quantile(0.50)
		s.P90 = s.Quantile(0.90)
		s.P99 = s.Quantile(0.99)
	}
	return s
}

// LatencyBoundsMS is the default bucket layout for millisecond latency
// histograms: ~exponential edges from sub-millisecond to one minute, the
// operating range of queue waits, step latencies, and measurement RTTs.
func LatencyBoundsMS() []float64 {
	return []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}
}

// Registry is a named collection of counters, gauges, and histograms.
// Lookups get-or-create, so instrumented code can fetch by name without
// registration ceremony. A nil *Registry hands out unregistered (but
// fully usable) metrics, making instrumentation unconditional.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		floats:   map[string]*FloatCounter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// FloatCounter returns the named float counter, creating it on first use.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	if r == nil {
		return &FloatCounter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.floats[name]
	if !ok {
		c = &FloatCounter{}
		r.floats[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// MetricSnap is one scalar metric in a snapshot.
type MetricSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a registry's frozen, name-sorted state — the JSON body of
// the /telemetryz endpoint.
type Snapshot struct {
	Counters   []MetricSnap    `json:"counters,omitempty"`
	Floats     []MetricSnap    `json:"float_counters,omitempty"`
	Gauges     []MetricSnap    `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot freezes every registered metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricSnap{Name: name, Value: float64(c.Value())})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, c := range r.floats {
		s.Floats = append(s.Floats, MetricSnap{Name: name, Value: c.Value()})
	}
	sort.Slice(s.Floats, func(i, j int) bool { return s.Floats[i].Name < s.Floats[j].Name })
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricSnap{Name: name, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Table renders the snapshot as a fixed-width text table.
func (s Snapshot) Table(title string) string {
	t := metrics.NewTable(title, "metric", "type", "value")
	for _, c := range s.Counters {
		t.AddRow(c.Name, "counter", fmt.Sprintf("%.0f", c.Value))
	}
	for _, c := range s.Floats {
		t.AddRow(c.Name, "fcounter", fmt.Sprintf("%.6g", c.Value))
	}
	for _, g := range s.Gauges {
		t.AddRow(g.Name, "gauge", fmt.Sprintf("%.4g", g.Value))
	}
	for _, h := range s.Histograms {
		t.AddRow(h.Name, "histogram",
			fmt.Sprintf("n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g sum=%.4g",
				h.Count, h.Mean, h.P50, h.P90, h.P99, h.Sum))
	}
	return t.String()
}

// Labeled builds a labeled metric family name, family{key=value}. Names
// sort lexically in snapshots, so one family's label values group
// together; SplitLabel recovers the parts.
func Labeled(family, key, value string) string {
	return family + "{" + key + "=" + value + "}"
}

// SplitLabel splits a Labeled name back into family and label value. A
// plain unlabeled name comes back as (name, "").
func SplitLabel(name string) (family, value string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	label := name[open+1 : len(name)-1]
	if eq := strings.IndexByte(label, '='); eq >= 0 {
		label = label[eq+1:]
	}
	return name[:open], label
}
