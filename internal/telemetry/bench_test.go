package telemetry

import (
	"io"
	"testing"
)

// BenchmarkTracerDisabled measures the no-op path every instrumented
// stage pays when tracing is off: a Start/SetAttr/End round-trip on a nil
// *Tracer. The contract (DESIGN.md §9) is ≤ 5 ns/op and zero allocations
// — cheap enough to leave instrumentation unconditional in the hot loop.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(StageAnneal)
		sp.End()
	}
}

// BenchmarkTracerDisabledWithAttr includes an attribute store on the
// disabled path (the value still gets boxed at the call site).
func BenchmarkTracerDisabledWithAttr(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(StageAnneal)
		sp.SetAttr("n", i)
		sp.End()
	}
}

// BenchmarkTracerEnabled is the full cost of one emitted span: two clock
// reads, a JSON marshal, and a locked write.
func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer(io.Discard, SystemClock())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(StageAnneal)
		sp.End()
	}
	if err := tr.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTracerStartSpanDisabled measures the distributed-tracing no-op
// path: StartSpan threads the caller's SpanContext through unchanged and
// must stay allocation-free, because every fleet task and session step
// calls it whether or not a trace file is open.
func BenchmarkTracerStartSpanDisabled(b *testing.B) {
	var tr *Tracer
	sc := SpanContext{TraceID: "job-j1", JobID: "j1", Tenant: "acme"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, _ := tr.StartSpan(sc, StageStep)
		sp.End()
	}
}

// BenchmarkTracerStartSpanEnabled is the full cost of one emitted child
// span: ID allocation, two clock reads, a JSON marshal, and a locked
// write — the per-step price of distributed tracing when it is on.
func BenchmarkTracerStartSpanEnabled(b *testing.B) {
	tr := NewTracerProc(io.Discard, SystemClock(), "bench")
	sc := SpanContext{TraceID: "job-j1", JobID: "j1", Tenant: "acme"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, _ := tr.StartSpan(sc, StageStep)
		sp.End()
	}
	if err := tr.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCounterInc is the per-event cost of a registry counter.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve is the per-observation cost of a fixed-bucket
// histogram (bucket search + locked sum).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram([]float64{1, 5, 10, 50, 100, 500, 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1200))
	}
}

// TestTracerDisabledOverhead is the CI-enforced form of the ≤5ns
// contract: it fails if the disabled path allocates, which is what would
// blow the budget (raw nanoseconds vary by machine, allocations do not).
func TestTracerDisabledOverhead(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(StageAnneal)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per span", allocs)
	}
	sc := SpanContext{TraceID: "job-j1", JobID: "j1", Tenant: "acme"}
	allocs = testing.AllocsPerRun(1000, func() {
		sp, child := tr.StartSpan(sc, StageStep)
		tr.EventCtx(child, StageSteal, nil)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan/EventCtx path allocates %v per span", allocs)
	}
}
