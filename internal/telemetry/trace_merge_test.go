package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func decodeTrace(t *testing.T, buf *bytes.Buffer) []SpanEvent {
	t.Helper()
	var out []SpanEvent
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestStartSpanPropagatesContext: StartSpan allocates a proc-prefixed span
// ID, parents the span on the caller's context, and hands the baggage
// (TraceID/JobID/Tenant) through unchanged.
func TestStartSpanPropagatesContext(t *testing.T) {
	var buf bytes.Buffer
	clk := NewFakeClock(time.Unix(0, 0))
	tr := NewTracerProc(&buf, clk, "glimpsed")
	root := SpanContext{TraceID: "job-j1", JobID: "j1", Tenant: "acme"}

	jobSp, jobSC := tr.StartSpan(root, StageJob)
	if jobSC.SpanID != "glimpsed/1" {
		t.Fatalf("span ID = %q, want glimpsed/1", jobSC.SpanID)
	}
	if jobSC.TraceID != "job-j1" || jobSC.JobID != "j1" || jobSC.Tenant != "acme" {
		t.Fatalf("baggage dropped: %+v", jobSC)
	}
	stepSp, stepSC := tr.StartSpan(jobSC, StageStep)
	tr.EventCtx(stepSC, StageSteal, map[string]any{"event": "endpoint_steal"})
	clk.Advance(3 * time.Millisecond)
	stepSp.End()
	clk.Advance(time.Millisecond)
	jobSp.End()

	events := decodeTrace(t, &buf)
	if len(events) != 3 {
		t.Fatalf("got %d trace lines, want 3", len(events))
	}
	// Emission order: the instant event, then step End, then job End.
	ev, step, job := events[0], events[1], events[2]
	if ev.Kind != "event" || ev.ParentID != "glimpsed/2" || ev.SpanID != "" {
		t.Fatalf("event not attached to the step span: %+v", ev)
	}
	if step.SpanID != "glimpsed/2" || step.ParentID != "glimpsed/1" || step.DurUS != 3000 {
		t.Fatalf("step span wrong: %+v", step)
	}
	if job.SpanID != "glimpsed/1" || job.ParentID != "" || job.DurUS != 4000 {
		t.Fatalf("job span wrong: %+v", job)
	}
	for _, e := range events {
		if e.TraceID != "job-j1" || e.JobID != "j1" || e.Tenant != "acme" {
			t.Fatalf("baggage missing on %+v", e)
		}
	}
}

// TestStartSpanNilTracerThreadsBaggage: a disabled tracer must still pass
// the context through so downstream processes that do trace stay linked.
func TestStartSpanNilTracerThreadsBaggage(t *testing.T) {
	var tr *Tracer
	sc := SpanContext{TraceID: "job-j9", SpanID: "up/4", JobID: "j9", Tenant: "acme"}
	sp, got := tr.StartSpan(sc, StageStep)
	if got != sc {
		t.Fatalf("nil tracer altered the context: %+v", got)
	}
	sp.SetAttr("k", 1) // must be inert
	sp.End()
	if sp.Context() != (SpanContext{}) {
		t.Fatalf("inert span has a context: %+v", sp.Context())
	}
}

// span builds a span-kind SpanEvent for merge tests.
func span(seq int, trace, id, parent, stage string, durUS int64) SpanEvent {
	return SpanEvent{Seq: seq, Kind: "span", Stage: stage, TraceID: trace,
		SpanID: id, ParentID: parent, JobID: "j1", Tenant: "acme", DurUS: durUS}
}

// TestMergeTracesCrossProcess assembles a two-process trace: glimpsed's
// job → step spans with measured's rpc_measure span hanging off the step
// via the propagated parent ID.
func TestMergeTracesCrossProcess(t *testing.T) {
	glimpsed := ProcTrace{Proc: "glimpsed", Events: []SpanEvent{
		span(1, "job-j1", "g/1", "", StageJob, 10_000),
		span(2, "job-j1", "g/2", "g/1", StageStep, 8000),
		{Seq: 3, Kind: "event", Stage: StageSteal, TraceID: "job-j1", ParentID: "g/2"},
		{Seq: 4, Kind: "span", Stage: "local_only"}, // no TraceID: ignored
	}}
	ep0 := ProcTrace{Proc: "ep0", Events: []SpanEvent{
		span(1, "job-j1", "ep0/1", "g/2", StageRPCMeasure, 5000),
	}}
	traces := MergeTraces([]ProcTrace{glimpsed, ep0})
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != "job-j1" || tr.JobID != "j1" || tr.Tenant != "acme" {
		t.Fatalf("trace identity wrong: %+v", tr)
	}
	if got := strings.Join(tr.Procs, ","); got != "ep0,glimpsed" {
		t.Fatalf("procs = %s", got)
	}
	if tr.Spans != 3 || tr.Events != 1 {
		t.Fatalf("spans=%d events=%d, want 3/1", tr.Spans, tr.Events)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Event.SpanID != "g/1" {
		t.Fatalf("roots: %+v", tr.Roots)
	}
	step := tr.Roots[0].Children[0]
	if step.Event.SpanID != "g/2" || len(step.Children) != 2 {
		t.Fatalf("step node wrong: %+v", step)
	}
	// Siblings sort by (proc, seq): ep0's span before glimpsed's event.
	if step.Children[0].Proc != "ep0" || step.Children[0].Event.Stage != StageRPCMeasure {
		t.Fatalf("rpc span not under the step: %+v", step.Children[0])
	}
	if step.Children[0].Orphan {
		t.Fatal("cross-process child marked orphan")
	}

	// Critical path descends the longest span chain across processes.
	path := tr.CriticalPath()
	stages := make([]string, len(path))
	for i, n := range path {
		stages[i] = n.Event.Stage
	}
	if got := strings.Join(stages, ">"); got != "job>step>rpc_measure" {
		t.Fatalf("critical path = %s", got)
	}
	// Self time subtracts children even across clocks: step 8000-5000.
	if self := step.SelfUS(); self != 3000 {
		t.Fatalf("step self = %d, want 3000", self)
	}

	roll := tr.StageRollup()
	if roll[0].Stage != StageJob || roll[0].TotalUS != 10_000 || roll[0].SelfUS != 2000 {
		t.Fatalf("rollup head = %+v", roll[0])
	}
}

// TestMergeTracesOrphanAndOrdering: a span whose parent never appears
// becomes an orphan root, and same-parent spans from one process keep
// emission order.
func TestMergeTracesOrphanAndOrdering(t *testing.T) {
	p := ProcTrace{Proc: "g", Events: []SpanEvent{
		span(1, "job-j1", "g/2", "g/1", StageStep, 5),
		span(2, "job-j1", "g/3", "missing", StageMeasure, 7),
		span(3, "job-j1", "g/1", "", StageJob, 20),
		span(4, "job-j1", "g/4", "g/1", StageStep, 6),
	}}
	tr := MergeTraces([]ProcTrace{p})[0]
	if len(tr.Roots) != 2 {
		t.Fatalf("want real root + orphan root, got %+v", tr.Roots)
	}
	var orphan *MergedSpan
	for _, r := range tr.Roots {
		if r.Orphan {
			orphan = r
		}
	}
	if orphan == nil || orphan.Event.SpanID != "g/3" {
		t.Fatalf("orphan not surfaced: %+v", tr.Roots)
	}
	var root *MergedSpan
	for _, r := range tr.Roots {
		if !r.Orphan {
			root = r
		}
	}
	if len(root.Children) != 2 || root.Children[0].Event.SpanID != "g/2" || root.Children[1].Event.SpanID != "g/4" {
		t.Fatalf("children order wrong: %+v", root.Children)
	}
	// CriticalPath must pick the larger root (g/1, 20us) over the orphan.
	if path := tr.CriticalPath(); path[0].Event.SpanID != "g/1" {
		t.Fatalf("critical path rooted at %+v", path[0].Event)
	}
}

// TestQuantileInterpolation pins the bucket-interpolated estimator: exact
// bucket boundaries, interior interpolation, the first bucket's
// zero-floor, and overflow saturation at the last bound.
func TestQuantileInterpolation(t *testing.T) {
	s := HistogramSnap{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{2, 2, 0, 0}, // two values <=1, two in (1,2]
		Count:  4,
	}
	cases := []struct{ q, want float64 }{
		{0.50, 1.0}, // rank 2 closes the first bucket exactly
		{0.25, 0.5}, // halfway through the first bucket, floored at 0
		{0.75, 1.5}, // halfway through the (1,2] bucket
		{1.00, 2.0}, // rank 4 closes the second bucket
		{-1, 0},     // clamped
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	over := HistogramSnap{Bounds: []float64{1, 2, 4}, Counts: []int64{0, 0, 0, 3}, Count: 3}
	if got := over.Quantile(0.5); got != 4 {
		t.Fatalf("overflow quantile = %v, want last bound 4", got)
	}
	if got := (HistogramSnap{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty snap quantile = %v, want 0", got)
	}
}

// TestHistogramSnapshotPercentiles: the registry snapshot populates
// P50/P90/P99 and the text table renders them.
func TestHistogramSnapshotPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms: %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.P50 != 0.5 || hs.P90 != 0.9 || hs.P99 != 0.99 {
		t.Fatalf("percentiles = %v/%v/%v", hs.P50, hs.P90, hs.P99)
	}
	if table := snap.Table("t"); !strings.Contains(table, "p50=") || !strings.Contains(table, "p99=") {
		t.Fatalf("table missing percentiles:\n%s", table)
	}
}

// TestLabeledRoundTrip pins the labeled-family name scheme the per-tenant
// service metrics rely on.
func TestLabeledRoundTrip(t *testing.T) {
	name := Labeled("glimpsed_gpu_seconds", "tenant", "acme")
	if name != "glimpsed_gpu_seconds{tenant=acme}" {
		t.Fatalf("Labeled = %q", name)
	}
	family, value := SplitLabel(name)
	if family != "glimpsed_gpu_seconds" || value != "acme" {
		t.Fatalf("SplitLabel = %q, %q", family, value)
	}
	if f, v := SplitLabel("plain"); f != "plain" || v != "" {
		t.Fatalf("unlabeled split = %q, %q", f, v)
	}
}

// TestFloatCounterExactSum: FloatCounter.Add must accumulate with plain
// float64 addition in call order — the property the GPU-second ledger
// reconciliation depends on.
func TestFloatCounterExactSum(t *testing.T) {
	r := NewRegistry()
	c := r.FloatCounter("gpu_s")
	var want float64
	for i := 1; i <= 1000; i++ {
		d := 1.0 / float64(i)
		c.Add(d)
		want += d
	}
	if got := c.Value(); got != want {
		t.Fatalf("float counter %v != sequential sum %v", got, want)
	}
	snap := r.Snapshot()
	if len(snap.Floats) != 1 || snap.Floats[0].Value != want {
		t.Fatalf("snapshot floats: %+v", snap.Floats)
	}
}
