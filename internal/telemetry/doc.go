// Package telemetry is the observability layer of the tuning stack: a
// span tracer that records where a tuning run spends its time (per-stage
// JSONL traces, aggregated by cmd/tracereport), a registry of named
// counters/gauges/histograms, and a live-introspection HTTP mux
// (net/http/pprof plus /telemetryz) for the long-running binaries.
//
// Three contracts make the layer safe to leave permanently wired in:
//
//   - Disabled means free: a nil *Tracer is a valid tracer whose methods
//     are no-op nil checks (BenchmarkTracerDisabled), so instrumentation
//     sites never branch on "is tracing on".
//   - Time is injected: all timing flows through the Clock interface —
//     SystemClock in binaries, *FakeClock in tests — and glint's
//     determinism rule forbids wall-clock reads anywhere else in the
//     deterministic packages.
//   - Observation only: telemetry never touches seeded RNG streams or
//     any algorithmic state; seeded runs are byte-identical with tracing
//     on and off (proved by the determinism tests in internal/core).
//
// The package is stdlib-only and imports nothing from this module except
// internal/metrics (table rendering), so every layer — including the
// deterministic search packages — can depend on it without cycles.
package telemetry
