package telemetry

import (
	"encoding/json"
	"io"
)

// AppendJSONLine marshals v and writes it as one newline-terminated JSON
// line. It is the append primitive shared by tuning logs, fleet
// checkpoints (both via tlog.AppendJSONLine, which delegates here), and
// trace files — one format, one implementation, so every JSONL artifact
// in the system tolerates the same torn-tail recovery on resume.
func AppendJSONLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
