package telemetry

import (
	"sync"
	"time"
)

// Clock is the injectable time source for all telemetry timing. It is the
// one sanctioned seam to the wall clock in the deterministic layers
// (enforced by glint's determinism rule): binaries install SystemClock,
// tests install a *FakeClock, and algorithmic code never reads time at
// all — spans observe the run, they must not steer it.
type Clock interface {
	Now() time.Time
}

// SystemClock returns the real wall clock.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

// Now reads the wall clock. This method is the only place in the
// deterministic layers allowed to call time.Now (the glint carve-out
// admits wall-clock reads solely inside Clock implementations).
func (systemClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock for tests: spans timed against it
// produce byte-identical traces run after run. It is safe for concurrent
// use.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{t: start} }

// Now returns the current fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
