package measure_test

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// BenchmarkReliableOverhead compares a bare Local measurer against the
// same device behind a Reliable wrapper on the happy path (no faults, no
// retries). The wrapper's bookkeeping should stay within a few percent —
// later perf PRs can track reliable/op against local/op here.
func BenchmarkReliableOverhead(b *testing.B) {
	task, sp, _ := testTask(b)
	g := rng.New(3)
	idxs := make([]int64, 16)
	for i := range idxs {
		idxs[i] = sp.RandomIndex(g)
	}

	b.Run("local", func(b *testing.B) {
		m := measure.MustNewLocal(hwspec.TitanXp)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.MeasureBatch(task, sp, idxs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reliable", func(b *testing.B) {
		inner := measure.MustNewLocal(hwspec.TitanXp)
		m, err := measure.NewReliable(measure.ReliableConfig{}, inner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.MeasureBatch(task, sp, idxs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
