package measure_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/faults"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func testTask(t testing.TB) (workload.Task, *space.Space, []int64) {
	t.Helper()
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	g := rng.New(1)
	return task, sp, []int64{sp.RandomIndex(g), sp.RandomIndex(g)}
}

// scripted is a Measurer whose per-call outcomes are programmed up front;
// after the script runs out it repeats the final entry.
type scripted struct {
	name    string
	mu      sync.Mutex
	calls   int
	errs    []error // nil entry = success
	results []gpusim.Result
}

func (s *scripted) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	s.mu.Lock()
	i := s.calls
	s.calls++
	s.mu.Unlock()
	if i >= len(s.errs) {
		i = len(s.errs) - 1
	}
	if err := s.errs[i]; err != nil {
		return nil, err
	}
	out := make([]gpusim.Result, len(idxs))
	for j := range out {
		out[j] = gpusim.Result{Valid: true, GFLOPS: 100, TimeMS: 1, CostSec: 1}
	}
	if s.results != nil {
		copy(out, s.results)
	}
	return out, nil
}

func (s *scripted) DeviceName() string { return s.name }

func (s *scripted) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// noSleep records requested backoffs instead of sleeping.
type noSleep struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (n *noSleep) sleep(d time.Duration) {
	n.mu.Lock()
	n.slept = append(n.slept, d)
	n.mu.Unlock()
}

func TestReliableRetriesUntilSuccess(t *testing.T) {
	task, sp, idxs := testTask(t)
	boom := errors.New("flaky link")
	s := &scripted{name: "board", errs: []error{boom, boom, nil}}
	ns := &noSleep{}
	r, err := measure.NewReliable(measure.ReliableConfig{
		MaxAttempts: 3, BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond,
		Seed: 1, Sleep: ns.sleep,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.MeasureBatch(task, sp, idxs)
	if err != nil {
		t.Fatalf("retries did not cure transient failures: %v", err)
	}
	if len(results) != len(idxs) {
		t.Fatalf("%d results", len(results))
	}
	st := r.Stats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats %+v, want 3 attempts / 2 retries", st)
	}
	if len(ns.slept) != 2 {
		t.Fatalf("%d backoffs recorded", len(ns.slept))
	}
	// Capped exponential with jitter in [0.5, 1.0)×.
	if ns.slept[0] < 5*time.Millisecond || ns.slept[0] >= 10*time.Millisecond {
		t.Fatalf("first backoff %v outside [5ms, 10ms)", ns.slept[0])
	}
	if ns.slept[1] < 10*time.Millisecond || ns.slept[1] >= 20*time.Millisecond {
		t.Fatalf("second backoff %v outside [10ms, 20ms)", ns.slept[1])
	}
}

func TestReliableBackoffDeterministic(t *testing.T) {
	task, sp, idxs := testTask(t)
	run := func() []time.Duration {
		s := &scripted{name: "board", errs: []error{errors.New("x"), errors.New("x"), errors.New("x"), nil}}
		ns := &noSleep{}
		r, err := measure.NewReliable(measure.ReliableConfig{
			MaxAttempts: 4, Seed: 7, Sleep: ns.sleep, BreakerThreshold: 100,
		}, s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.MeasureBatch(task, sp, idxs); err != nil {
			t.Fatal(err)
		}
		return ns.slept
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("%d backoffs", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d differs across identically-seeded runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReliableExhaustionSurfacesLastError(t *testing.T) {
	task, sp, idxs := testTask(t)
	last := errors.New("board unreachable: final straw")
	s := &scripted{name: "board", errs: []error{errors.New("first"), errors.New("second"), last}}
	r, err := measure.NewReliable(measure.ReliableConfig{
		MaxAttempts: 3, BreakerThreshold: 100, Sleep: func(time.Duration) {},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.MeasureBatch(task, sp, idxs)
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if !errors.Is(err, last) {
		t.Fatalf("last underlying error lost: %v", err)
	}
	if r.Stats().Exhausted != 1 {
		t.Fatalf("stats %+v", r.Stats())
	}
}

func TestReliableBreakerOpensSkipsAndRecovers(t *testing.T) {
	task, sp, idxs := testTask(t)
	fail := errors.New("dead board")
	s := &scripted{name: "board", errs: []error{fail}}
	clock := time.Unix(1000, 0)
	cooldown := 10 * time.Second
	r, err := measure.NewReliable(measure.ReliableConfig{
		MaxAttempts: 2, BreakerThreshold: 2, BreakerCooldown: cooldown,
		Sleep: func(time.Duration) {},
		Now:   func() time.Time { return clock },
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1: two failed attempts trip the breaker.
	if _, err := r.MeasureBatch(task, sp, idxs); err == nil {
		t.Fatal("failing backend succeeded")
	}
	if got := r.BreakerStates(); got[0] != measure.BreakerOpen {
		t.Fatalf("breaker %v after threshold failures", got[0])
	}
	// Batch 2: while open, the backend is skipped without being called.
	before := s.callCount()
	if _, err := r.MeasureBatch(task, sp, idxs); !errors.Is(err, measure.ErrBreakerOpen) {
		t.Fatalf("open breaker error = %v", err)
	}
	if s.callCount() != before {
		t.Fatal("open breaker still let a call through")
	}
	if r.Stats().BreakerSkips == 0 {
		t.Fatal("skip not counted")
	}
	// Batch 3: after cooldown a half-open probe runs; it fails → re-open.
	clock = clock.Add(cooldown + time.Second)
	if _, err := r.MeasureBatch(task, sp, idxs); err == nil {
		t.Fatal("failed probe reported success")
	}
	if s.callCount() != before+1 {
		t.Fatalf("probe made %d calls, want exactly 1", s.callCount()-before)
	}
	if got := r.BreakerStates(); got[0] != measure.BreakerOpen {
		t.Fatalf("breaker %v after failed probe", got[0])
	}
	// Batch 4: next cooldown expires, backend healed → probe closes it.
	clock = clock.Add(cooldown + time.Second)
	s.mu.Lock()
	s.errs = []error{nil}
	s.mu.Unlock()
	if _, err := r.MeasureBatch(task, sp, idxs); err != nil {
		t.Fatalf("healed backend still failing: %v", err)
	}
	if got := r.BreakerStates(); got[0] != measure.BreakerClosed {
		t.Fatalf("breaker %v after successful probe", got[0])
	}
	if r.Stats().BreakerOpens != 2 {
		t.Fatalf("BreakerOpens = %d, want 2 (threshold + failed probe)", r.Stats().BreakerOpens)
	}
}

func TestReliableFailsOverToFallbackChain(t *testing.T) {
	task, sp, idxs := testTask(t)
	primary := &scripted{name: hwspec.TitanXp, errs: []error{errors.New("link down")}}
	fallback := measure.MustNewLocal(hwspec.TitanXp)
	r, err := measure.NewReliable(measure.ReliableConfig{
		MaxAttempts: 2, BreakerThreshold: 100, Sleep: func(time.Duration) {},
	}, primary, fallback)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.MeasureBatch(task, sp, idxs)
	if err != nil {
		t.Fatalf("fallback chain failed: %v", err)
	}
	want, err := fallback.MeasureBatch(task, sp, idxs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("result %d not from fallback", i)
		}
	}
	if r.DeviceName() != hwspec.TitanXp {
		t.Fatalf("DeviceName = %q", r.DeviceName())
	}
	st := r.Stats()
	if st.Failovers != 1 {
		t.Fatalf("Failovers = %d", st.Failovers)
	}
	foundEvent := false
	for _, e := range r.Events() {
		if e.Kind == "failover" {
			foundEvent = true
		}
	}
	if !foundEvent {
		t.Fatal("degradation not recorded in events")
	}
}

func TestReliableSanitizesCorruptResults(t *testing.T) {
	task, sp, idxs := testTask(t)
	s := &scripted{name: "board", errs: []error{nil}, results: []gpusim.Result{
		{Valid: true, GFLOPS: math.NaN(), TimeMS: 1, CostSec: 1},
		{Valid: true, GFLOPS: -50, TimeMS: 1, CostSec: 1},
	}}
	r, err := measure.NewReliable(measure.ReliableConfig{}, s)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.MeasureBatch(task, sp, idxs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Valid {
			t.Fatalf("corrupt result %d still valid: %+v", i, res)
		}
		if res.FailReason != measure.FailReasonSanitized {
			t.Fatalf("result %d FailReason = %q", i, res.FailReason)
		}
		if res.GFLOPS != 0 || res.TimeMS != 0 {
			t.Fatalf("poison values survived: %+v", res)
		}
	}
	if r.Stats().Sanitized != 2 {
		t.Fatalf("Sanitized = %d", r.Stats().Sanitized)
	}
}

func TestReliableSanitizesInjectedCorruption(t *testing.T) {
	task, sp, idxs := testTask(t)
	inj := faults.New(measure.MustNewLocal(hwspec.TitanXp), faults.Config{Seed: 3, CorruptRate: 1})
	r, err := measure.NewReliable(measure.ReliableConfig{}, inj)
	if err != nil {
		t.Fatal(err)
	}
	for call := 0; call < 8; call++ {
		results, err := r.MeasureBatch(task, sp, idxs)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if math.IsNaN(res.GFLOPS) || math.IsInf(res.GFLOPS, 0) || res.GFLOPS < 0 || res.TimeMS < 0 {
				t.Fatalf("call %d result %d: poison leaked through sanitizer: %+v", call, i, res)
			}
		}
	}
	if inj.Stats().Corrupted > 0 && r.Stats().Sanitized == 0 {
		t.Fatal("corruption injected but nothing sanitized")
	}
}

// TestHungBatchFailsOverWithinDeadline is the acceptance scenario: an
// injected-latency "remote" hangs forever, the per-batch deadline cuts it
// off, and the batch is served by the local fallback instead of hanging
// the tuning session.
func TestHungBatchFailsOverWithinDeadline(t *testing.T) {
	task, sp, idxs := testTask(t)
	hung := faults.New(measure.MustNewLocal(hwspec.TitanXp),
		faults.Config{Seed: 1, HangRate: 1, Hang: time.Hour})
	fallback := measure.MustNewLocal(hwspec.TitanXp)
	r, err := measure.NewReliable(measure.ReliableConfig{
		BatchTimeout: 25 * time.Millisecond,
		MaxAttempts:  2,
		Sleep:        func(time.Duration) {},
	}, hung, fallback)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	results, err := r.MeasureBatch(task, sp, idxs)
	if err != nil {
		t.Fatalf("hung primary was not failed over: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("session hung for %v despite deadline", elapsed)
	}
	if len(results) != len(idxs) {
		t.Fatalf("%d results", len(results))
	}
	st := r.Stats()
	if st.Timeouts == 0 {
		t.Fatalf("no timeouts recorded: %+v", st)
	}
	if st.Failovers != 1 {
		t.Fatalf("Failovers = %d", st.Failovers)
	}
}

// TestReliableConcurrentSessions hammers one Reliable from concurrent
// tuning sessions (as fleet.TuneModel does) — primarily a -race target.
func TestReliableConcurrentSessions(t *testing.T) {
	task, sp, idxs := testTask(t)
	other, err := workload.TaskByIndex(workload.ResNet18, 9)
	if err != nil {
		t.Fatal(err)
	}
	spO := space.MustForTask(other)
	inj := faults.New(measure.MustNewLocal(hwspec.TitanXp),
		faults.Config{Seed: 13, TransientErrorRate: 0.3})
	r, err := measure.NewReliable(measure.ReliableConfig{
		MaxAttempts: 6, BreakerThreshold: 1000, Seed: 13, Sleep: func(time.Duration) {},
	}, inj, measure.MustNewLocal(hwspec.TitanXp))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, batches = 8, 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, s, ix := task, sp, idxs
			if i%2 == 1 {
				tk, s, ix = other, spO, []int64{idxs[0] % spO.Size()}
			}
			for b := 0; b < batches; b++ {
				if _, err := r.MeasureBatch(tk, s, ix); err != nil {
					errCh <- fmt.Errorf("goroutine %d batch %d: %w", i, b, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := r.Stats().Batches; got != goroutines*batches {
		t.Fatalf("Batches = %d, want %d", got, goroutines*batches)
	}
}
