package measure

import (
	"encoding/json"
	"testing"
)

// TestEventJSONStable pins the Event wire format byte-for-byte: records
// marshal in struct order with documented names, so SSE streams and
// JSONL event logs stay deterministic and diffable across runs and
// versions (DESIGN.md §13).
func TestEventJSONStable(t *testing.T) {
	data, err := json.Marshal(Event{
		Backend: "titan-xp",
		Task:    "conv2d_3",
		Kind:    "retry",
		Detail:  "attempt 2",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"backend":"titan-xp","task":"conv2d_3","kind":"retry","detail":"attempt 2"}`
	if string(data) != want {
		t.Fatalf("Event JSON drifted:\n got %s\nwant %s", data, want)
	}
	// Detail is the only optional field.
	data, err = json.Marshal(Event{Backend: "b", Task: "t", Kind: "timeout"})
	if err != nil {
		t.Fatal(err)
	}
	want = `{"backend":"b","task":"t","kind":"timeout"}`
	if string(data) != want {
		t.Fatalf("empty-detail Event JSON drifted:\n got %s\nwant %s", data, want)
	}
}
