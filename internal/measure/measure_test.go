package measure

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func setupTask(t *testing.T) (workload.Task, *space.Space) {
	t.Helper()
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	return task, space.MustForTask(task)
}

func TestLocalMeasurer(t *testing.T) {
	task, sp := setupTask(t)
	l, err := NewLocal(hwspec.TitanXp)
	if err != nil {
		t.Fatal(err)
	}
	if l.DeviceName() != hwspec.TitanXp {
		t.Fatalf("device = %q", l.DeviceName())
	}
	g := rng.New(1)
	idxs := []int64{sp.RandomIndex(g), sp.RandomIndex(g), sp.RandomIndex(g)}
	results, err := l.MeasureBatch(task, sp, idxs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// Matches direct device measurement.
	for i, idx := range idxs {
		if want := l.Device().MeasureIndex(task, sp, idx); results[i] != want {
			t.Fatalf("result %d mismatch", i)
		}
	}
}

func TestLocalRejectsBadIndex(t *testing.T) {
	task, sp := setupTask(t)
	l := MustNewLocal(hwspec.TitanXp)
	if _, err := l.MeasureBatch(task, sp, []int64{sp.Size()}); err == nil {
		t.Fatal("out-of-space index accepted")
	}
	if _, err := l.MeasureBatch(task, sp, []int64{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestNewLocalUnknownGPU(t *testing.T) {
	if _, err := NewLocal("gpu-that-does-not-exist"); err == nil {
		t.Fatal("unknown GPU accepted")
	}
}

func TestLogAccounting(t *testing.T) {
	var log Log
	idxs := []int64{1, 2, 3}
	results := []gpusim.Result{
		{Valid: true, GFLOPS: 100, CostSec: 2},
		{Valid: false, FailReason: "x", CostSec: 1},
		{Valid: true, GFLOPS: 300, CostSec: 2.5},
	}
	log.Append(idxs, results)
	if log.Len() != 3 {
		t.Fatalf("Len = %d", log.Len())
	}
	if got := log.GPUSeconds(); got != 5.5 {
		t.Fatalf("GPUSeconds = %g", got)
	}
	if got := log.InvalidCount(); got != 1 {
		t.Fatalf("InvalidCount = %d", got)
	}
	best, ok := log.Best()
	if !ok || best.ConfigIndex != 3 || best.Result.GFLOPS != 300 {
		t.Fatalf("Best = %+v ok=%v", best, ok)
	}
	recs := log.Records()
	recs[0].ConfigIndex = 99 // must not alias internal storage
	if log.Records()[0].ConfigIndex == 99 {
		t.Fatal("Records aliases internal state")
	}
}

func TestLogBestEmptyOrAllInvalid(t *testing.T) {
	var log Log
	if _, ok := log.Best(); ok {
		t.Fatal("empty log has a best")
	}
	log.Append([]int64{1}, []gpusim.Result{{Valid: false, CostSec: 1}})
	if _, ok := log.Best(); ok {
		t.Fatal("all-invalid log has a best")
	}
}

func TestRPCEndToEnd(t *testing.T) {
	task, sp := setupTask(t)
	srv, err := NewServer([]string{hwspec.TitanXp, hwspec.RTX3090})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	remote, err := Dial(addr, hwspec.RTX3090)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if remote.DeviceName() != hwspec.RTX3090 {
		t.Fatalf("device = %q", remote.DeviceName())
	}

	g := rng.New(2)
	idxs := []int64{sp.RandomIndex(g), sp.RandomIndex(g)}
	got, err := remote.MeasureBatch(task, sp, idxs)
	if err != nil {
		t.Fatal(err)
	}
	// Remote results must equal local simulation: same device model.
	local := MustNewLocal(hwspec.RTX3090)
	want, err := local.MeasureBatch(task, sp, idxs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rpc result %d = %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestRPCDialUnknownDevice(t *testing.T) {
	srv, err := NewServer([]string{hwspec.TitanXp})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := Dial(addr, hwspec.RTX3090); err == nil {
		t.Fatal("dial to unhosted device succeeded")
	}
}

func TestRPCServerRejectsBadRequests(t *testing.T) {
	srv, err := NewServer([]string{hwspec.TitanXp})
	if err != nil {
		t.Fatal(err)
	}
	var reply MeasureReply
	if err := srv.Measure(MeasureArgs{Device: "nope", Model: workload.AlexNet, TaskIndex: 1}, &reply); err == nil {
		t.Fatal("unknown device accepted")
	}
	if err := srv.Measure(MeasureArgs{Device: hwspec.TitanXp, Model: "nope", TaskIndex: 1}, &reply); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := srv.Measure(MeasureArgs{Device: hwspec.TitanXp, Model: workload.AlexNet, TaskIndex: 1,
		Indices: []int64{-5}}, &reply); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestNewServerUnknownGPU(t *testing.T) {
	if _, err := NewServer([]string{"nope"}); err == nil {
		t.Fatal("unknown GPU accepted by server")
	}
}
