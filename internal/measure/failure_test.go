package measure

import (
	"context"
	"sort"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// TestRemoteSurvivesServerDeathCleanly: when the measurement server dies
// mid-session, the client reports an error instead of hanging or
// panicking, and the tuner propagates it.
func TestRemoteSurvivesServerDeathCleanly(t *testing.T) {
	task, sp := setupTask(t)
	srv, err := NewServer([]string{hwspec.TitanXp})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Dial(addr, hwspec.TitanXp)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// First batch succeeds.
	g := rng.New(1)
	if _, err := remote.MeasureBatch(task, sp, []int64{sp.RandomIndex(g)}); err != nil {
		t.Fatal(err)
	}
	// Kill the server; the next batch must fail fast with an error.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.MeasureBatch(task, sp, []int64{sp.RandomIndex(g)}); err == nil {
		t.Fatal("measurement against dead server succeeded")
	}
}

// TestDialUnreachableAddress fails fast.
func TestDialUnreachableAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", hwspec.TitanXp); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// TestDialTimeoutUnroutableAddress: an address that blackholes SYNs (here
// TEST-NET-3, reserved by RFC 5737) must fail within roughly the timeout
// instead of hanging for the kernel's default (minutes).
func TestDialTimeoutUnroutableAddress(t *testing.T) {
	start := time.Now()
	_, err := DialTimeout("203.0.113.1:9", hwspec.TitanXp, 250*time.Millisecond)
	if err == nil {
		t.Fatal("dial to unroutable address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("dial blocked %v despite 250ms timeout", elapsed)
	}
}

// TestListDeterministicOrder: the device list is sorted, not map order, so
// client logs are reproducible.
func TestListDeterministicOrder(t *testing.T) {
	srv, err := NewServer([]string{hwspec.RTX3090, hwspec.TitanXp, hwspec.RTX2070Super, hwspec.RTX2080Ti})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		var reply ListReply
		if err := srv.List(struct{}{}, &reply); err != nil {
			t.Fatal(err)
		}
		if !sort.StringsAreSorted(reply.Devices) {
			t.Fatalf("List order not sorted: %v", reply.Devices)
		}
		if len(reply.Devices) != 4 {
			t.Fatalf("%d devices", len(reply.Devices))
		}
	}
}

// TestPingHealthRPC: the health check answers over the wire and reflects
// hosted devices.
func TestPingHealthRPC(t *testing.T) {
	srv, err := NewServer([]string{hwspec.TitanXp, hwspec.RTX3090})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := Dial(addr, hwspec.TitanXp)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	health, err := remote.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.Devices != 2 || health.Draining || health.InFlight != 0 {
		t.Fatalf("health = %+v", health)
	}
}

// TestDrainAndClose: a draining server rejects new work with ErrDraining,
// reports itself unhealthy, and severs connections when done.
func TestDrainAndClose(t *testing.T) {
	task, sp := setupTask(t)
	srv, err := NewServer([]string{hwspec.TitanXp})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Dial(addr, hwspec.TitanXp)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	g := rng.New(1)
	if _, err := remote.MeasureBatch(task, sp, []int64{sp.RandomIndex(g)}); err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
	defer dcancel()
	if err := srv.DrainAndClose(dctx); err != nil {
		t.Fatal(err)
	}
	var health PingReply
	if err := srv.Ping(struct{}{}, &health); err != nil {
		t.Fatal(err)
	}
	if health.OK || !health.Draining {
		t.Fatalf("drained server health = %+v", health)
	}
	var reply MeasureReply
	if err := srv.Measure(MeasureArgs{Device: hwspec.TitanXp, Model: task.Model,
		TaskIndex: task.Index, Indices: []int64{0}}, &reply); err != ErrDraining {
		t.Fatalf("draining Measure error = %v, want ErrDraining", err)
	}
	// The severed connection surfaces as an error, not a hang.
	if _, err := remote.MeasureBatch(task, sp, []int64{sp.RandomIndex(g)}); err == nil {
		t.Fatal("measurement against drained server succeeded")
	}
}
