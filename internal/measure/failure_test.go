package measure

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// TestRemoteSurvivesServerDeathCleanly: when the measurement server dies
// mid-session, the client reports an error instead of hanging or
// panicking, and the tuner propagates it.
func TestRemoteSurvivesServerDeathCleanly(t *testing.T) {
	task, sp := setupTask(t)
	srv, err := NewServer([]string{hwspec.TitanXp})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Dial(addr, hwspec.TitanXp)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// First batch succeeds.
	g := rng.New(1)
	if _, err := remote.MeasureBatch(task, sp, []int64{sp.RandomIndex(g)}); err != nil {
		t.Fatal(err)
	}
	// Kill the server; the next batch must fail fast with an error.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.MeasureBatch(task, sp, []int64{sp.RandomIndex(g)}); err == nil {
		t.Fatal("measurement against dead server succeeded")
	}
}

// TestDialUnreachableAddress fails fast.
func TestDialUnreachableAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", hwspec.TitanXp); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
