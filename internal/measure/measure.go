// Package measure provides the measurement plumbing between tuners and
// (simulated) hardware: a common interface, a local in-process measurer, a
// net/rpc client/server pair mirroring the paper's "multiple generations of
// GPUs connected via RPC", and bookkeeping of the GPU time a tuning session
// consumes.
package measure

import (
	"context"
	"fmt"
	"sync"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Measurer runs configurations of one task on one device.
type Measurer interface {
	// MeasureBatch measures the configurations at the given flat indices.
	MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error)
	// DeviceName identifies the underlying GPU.
	DeviceName() string
}

// ContextMeasurer is a Measurer that honors context cancellation and
// deadlines mid-batch. Reliable uses it to cut off hung measurements; a
// plain Measurer is instead abandoned in a goroutine on timeout.
type ContextMeasurer interface {
	Measurer
	MeasureBatchContext(ctx context.Context, task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error)
}

// TraceBinder is implemented by measurers that can attach a
// telemetry.SpanContext to the measurements that follow: Remote stamps
// it onto the RPC wire so measured records child spans under the
// caller's trace, and wrappers (Reliable, tlog recorders) forward it
// down their chain. Binding carries identity only — it never changes
// what is measured, so traced and untraced runs stay byte-identical.
//
// A bind applies to subsequent batches until rebound. Callers rebind
// from the goroutine that issues the measurements (or before handing the
// measurer over), exactly like the Measurer calls themselves.
type TraceBinder interface {
	BindTrace(sc telemetry.SpanContext)
}

// BindTrace binds sc to m when the measurer (or its chain) supports
// trace propagation, reporting whether anything was bound. Local
// in-process measurers do not: their spans are already the caller's.
func BindTrace(m Measurer, sc telemetry.SpanContext) bool {
	b, ok := m.(TraceBinder)
	if ok {
		b.BindTrace(sc)
	}
	return ok
}

// Local measures on an in-process simulated device.
type Local struct {
	dev *gpusim.Device
}

// NewLocal builds a local measurer for the named GPU.
func NewLocal(gpuName string) (*Local, error) {
	spec, err := hwspec.ByName(gpuName)
	if err != nil {
		return nil, err
	}
	return &Local{dev: gpusim.NewDevice(spec)}, nil
}

// MustNewLocal is NewLocal for known-good GPU names.
func MustNewLocal(gpuName string) *Local {
	l, err := NewLocal(gpuName)
	if err != nil {
		panic(err)
	}
	return l
}

// Device exposes the underlying simulated device (for experiments that
// need oracle access, e.g. exhaustive baselines).
func (l *Local) Device() *gpusim.Device { return l.dev }

// MeasureBatch measures each index on the simulated device.
func (l *Local) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	out := make([]gpusim.Result, len(idxs))
	for i, idx := range idxs {
		if idx < 0 || idx >= sp.Size() {
			return nil, fmt.Errorf("measure: index %d out of space [0, %d)", idx, sp.Size())
		}
		out[i] = l.dev.MeasureIndex(task, sp, idx)
	}
	return out, nil
}

// MeasureBatchContext measures each index, checking for cancellation
// between configurations.
func (l *Local) MeasureBatchContext(ctx context.Context, task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	out := make([]gpusim.Result, len(idxs))
	for i, idx := range idxs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("measure: local batch on %s: %w", l.dev.Spec.Name, err)
		}
		if idx < 0 || idx >= sp.Size() {
			return nil, fmt.Errorf("measure: index %d out of space [0, %d)", idx, sp.Size())
		}
		out[i] = l.dev.MeasureIndex(task, sp, idx)
	}
	return out, nil
}

// DeviceName identifies the GPU.
func (l *Local) DeviceName() string { return l.dev.Spec.Name }

// Record is one logged measurement.
type Record struct {
	ConfigIndex int64
	Result      gpusim.Result
}

// Log accumulates measurement history and the simulated GPU-time spent;
// it is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	records []Record
	gpuSec  float64
	invalid int
}

// Append records a batch of measurements.
func (l *Log) Append(idxs []int64, results []gpusim.Result) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, r := range results {
		l.records = append(l.records, Record{ConfigIndex: idxs[i], Result: r})
		l.gpuSec += r.CostSec
		if !r.Valid {
			l.invalid++
		}
	}
}

// Len returns the number of measurements logged.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// GPUSeconds returns the cumulative simulated measurement wall-clock.
func (l *Log) GPUSeconds() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gpuSec
}

// InvalidCount returns how many logged measurements were invalid.
func (l *Log) InvalidCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.invalid
}

// Best returns the best valid measurement logged, or ok=false.
func (l *Log) Best() (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	best := Record{}
	found := false
	for _, r := range l.records {
		if r.Result.Valid && (!found || r.Result.GFLOPS > best.Result.GFLOPS) {
			best = r
			found = true
		}
	}
	return best, found
}

// Records returns a copy of the measurement history.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}
