package measure_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// slowEndpoint is a ContextMeasurer that simulates a hung remote board: it
// blocks until its context is canceled (or a hard cap expires) and then
// reports the cancellation. started is closed on the first call so tests
// can cancel exactly while an attempt is in flight.
type slowEndpoint struct {
	name    string
	started chan struct{}
	once    sync.Once
	mu      sync.Mutex
	calls   int
}

func (s *slowEndpoint) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	return s.MeasureBatchContext(context.Background(), task, sp, idxs)
}

func (s *slowEndpoint) MeasureBatchContext(ctx context.Context, task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	s.once.Do(func() { close(s.started) })
	cap := time.NewTimer(5 * time.Second) // hard cap so a broken test fails, not hangs
	defer cap.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-cap.C:
		return nil, errors.New("slowEndpoint: cap expired without cancellation")
	}
}

func (s *slowEndpoint) DeviceName() string { return s.name }

func (s *slowEndpoint) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// A canceled parent context must abort the in-flight attempt, skip the
// remaining retries AND the rest of the failover chain, and must not
// penalize the backend's breaker — the backend did nothing wrong.
func TestReliableCancelAbortsRetriesAndFailover(t *testing.T) {
	task, sp, idxs := testTask(t)
	slow := &slowEndpoint{name: "board", started: make(chan struct{})}
	fallback := &scripted{name: "twin", errs: []error{nil}}
	r, err := measure.NewReliable(measure.ReliableConfig{MaxAttempts: 3, Seed: 1}, slow, fallback)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { // cancel exactly while the first attempt is blocked in flight
		<-slow.started
		cancel()
	}()
	start := time.Now()
	_, err = r.MeasureBatchContext(ctx, task, sp, idxs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("cancellation took %v to propagate", e)
	}
	if n := slow.callCount(); n != 1 {
		t.Fatalf("slow backend attempted %d times after cancellation, want 1", n)
	}
	if n := fallback.callCount(); n != 0 {
		t.Fatalf("failover backend called %d times under a canceled parent", n)
	}
	st := r.Stats()
	if st.Retries != 0 || st.Failovers != 0 {
		t.Fatalf("stats %+v: canceled batch must not retry or fail over", st)
	}
	if st.BreakerOpens != 0 {
		t.Fatalf("breaker opened %d times on parent cancellation", st.BreakerOpens)
	}
	for i, bs := range r.BreakerStates() {
		if bs != measure.BreakerClosed {
			t.Fatalf("backend %d breaker %v after cancellation, want closed", i, bs)
		}
	}
	if !r.Ready() {
		t.Fatal("Reliable not Ready after a canceled batch")
	}
}

// Cancellation during a backoff wait must interrupt the default sleep
// immediately instead of serving out multi-second delays.
func TestReliableCancelInterruptsBackoff(t *testing.T) {
	task, sp, idxs := testTask(t)
	flaky := &scripted{name: "board", errs: []error{errors.New("transient")}}
	r, err := measure.NewReliable(measure.ReliableConfig{
		MaxAttempts: 5, BackoffBase: 10 * time.Second, BackoffMax: 10 * time.Second, Seed: 1,
	}, flaky)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err = r.MeasureBatchContext(ctx, task, sp, idxs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("backoff ignored cancellation for %v", e)
	}
}

// Repeated cancellations of in-flight batches must not accumulate
// goroutines (run under -race by the Makefile race gate).
func TestReliableCancelLeaksNoGoroutines(t *testing.T) {
	task, sp, idxs := testTask(t)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		slow := &slowEndpoint{name: "board", started: make(chan struct{})}
		r, err := measure.NewReliable(measure.ReliableConfig{MaxAttempts: 3, Seed: 1}, slow)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			<-slow.started
			cancel()
		}()
		if _, err := r.MeasureBatchContext(ctx, task, sp, idxs); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: %v", i, err)
		}
		cancel()
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after canceled batches", baseline, runtime.NumGoroutine())
}

// Ready must track the breaker lifecycle: true while closed, false during
// an open breaker's cooldown, true again once the cooldown elapses (the
// next batch runs the half-open probe).
func TestReliableReadyFollowsBreakerLifecycle(t *testing.T) {
	task, sp, idxs := testTask(t)
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	dead := &scripted{name: "board", errs: []error{errors.New("down")}}
	r, err := measure.NewReliable(measure.ReliableConfig{
		MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Minute,
		Seed: 1, Sleep: func(time.Duration) {}, Now: clock,
	}, dead)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ready() {
		t.Fatal("fresh Reliable not Ready")
	}
	if _, err := r.MeasureBatch(task, sp, idxs); err == nil {
		t.Fatal("dead backend succeeded")
	}
	if r.Ready() {
		t.Fatal("Ready while the breaker cools down")
	}
	advance(2 * time.Minute)
	if !r.Ready() {
		t.Fatal("not Ready after the cooldown elapsed")
	}
}
