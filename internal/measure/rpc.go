package measure

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// DefaultDialTimeout bounds connection establishment and the handshake
// List call in Dial; unroutable addresses fail instead of hanging.
const DefaultDialTimeout = 5 * time.Second

// ErrDraining is returned to new measurement requests while the server is
// shutting down gracefully.
var ErrDraining = errors.New("measure: server draining")

// MeasureArgs is the RPC request: a task identified by (model, 1-based
// index) plus the configuration indices to run on the named device.
// Trace carries the caller's span context across the wire so the server
// can record its side of the batch under the same trace; a zero Trace is
// omitted from the gob stream entirely, keeping the wire byte-compatible
// with pre-trace peers (gob also ignores the field when a new client
// talks to an old server).
type MeasureArgs struct {
	Device    string
	Model     string
	TaskIndex int
	Indices   []int64
	Trace     telemetry.SpanContext
}

// MeasureReply carries the measurement results back.
type MeasureReply struct {
	Results []gpusim.Result
}

// ListReply names the devices a measurement server hosts.
type ListReply struct {
	Devices []string
}

// PingReply is the health-check response.
type PingReply struct {
	OK       bool
	Devices  int // hosted device count
	InFlight int // measurement batches currently executing
	Draining bool
}

// Server hosts simulated GPUs behind net/rpc, standing in for the paper's
// RPC-attached measurement boards. Each hosted device is an arbitrary
// Measurer backend (a plain simulator by default), so wrappers — fault
// injection, chaos schedules, logging — compose on the serving side too.
type Server struct {
	mu       sync.Mutex
	backends map[string]Measurer
	tracer   *telemetry.Tracer
	ln       net.Listener
	conns    map[net.Conn]struct{}
	inflight int
	draining bool
	batches  int64 // measurement batches served since start
	configs  int64 // configuration points measured since start
}

// ServerStats is a point-in-time snapshot of server activity, exposed on
// the /telemetryz debug endpoint of cmd/measured.
type ServerStats struct {
	Batches  int64 `json:"batches"`
	Configs  int64 `json:"configs"`
	InFlight int   `json:"in_flight"`
	Draining bool  `json:"draining"`
}

// Stats snapshots cumulative serving counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{Batches: s.batches, Configs: s.configs, InFlight: s.inflight, Draining: s.draining}
}

// NewServer builds a server hosting a plain simulator per named GPU.
func NewServer(gpuNames []string) (*Server, error) {
	return NewServerWrapped(gpuNames, nil)
}

// NewServerWrapped builds a server whose i-th device backend is
// wrap(i, gpu, simulator). A nil wrap (or a nil return) hosts the plain
// simulator — this is how cmd/measured layers chaos schedules onto the
// boards it serves.
func NewServerWrapped(gpuNames []string, wrap func(i int, gpu string, m Measurer) Measurer) (*Server, error) {
	s := &Server{backends: make(map[string]Measurer, len(gpuNames))}
	for i, name := range gpuNames {
		local, err := NewLocal(name)
		if err != nil {
			return nil, err
		}
		var m Measurer = local
		if wrap != nil {
			if w := wrap(i, name, m); w != nil {
				m = w
			}
		}
		s.backends[name] = m
	}
	return s, nil
}

// SetTracer installs the tracer that records this server's side of each
// measurement batch (an "rpc_measure" span, parented into the caller's
// trace when the request carries one). Install before Serve; the field
// is read under the server mutex, so a late install is safe but may miss
// batches already in flight.
func (s *Server) SetTracer(tr *telemetry.Tracer) {
	s.mu.Lock()
	s.tracer = tr
	s.mu.Unlock()
}

// Measure is the RPC method: it resolves the task, rebuilds its space, and
// measures every requested index.
func (s *Server) Measure(args MeasureArgs, reply *MeasureReply) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.inflight++
	s.batches++
	s.configs += int64(len(args.Indices))
	m, ok := s.backends[args.Device]
	tracer := s.tracer
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}()
	if !ok {
		return fmt.Errorf("measure: server does not host device %q", args.Device)
	}
	span, _ := tracer.StartSpan(args.Trace, telemetry.StageRPCMeasure)
	span.SetAttr("device", args.Device)
	span.SetAttr("model", args.Model)
	span.SetAttr("task", args.TaskIndex)
	span.SetAttr("batch", len(args.Indices))
	defer span.End()
	task, err := workload.TaskByIndex(args.Model, args.TaskIndex)
	if err != nil {
		return err
	}
	sp, err := space.ForTask(task)
	if err != nil {
		return err
	}
	for _, idx := range args.Indices {
		if idx < 0 || idx >= sp.Size() {
			return fmt.Errorf("measure: index %d out of space [0, %d)", idx, sp.Size())
		}
	}
	reply.Results, err = m.MeasureBatch(task, sp, args.Indices)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return err
}

// List is the RPC method returning hosted device names, sorted so client
// logs are reproducible across runs.
func (s *Server) List(_ struct{}, reply *ListReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name := range s.backends {
		reply.Devices = append(reply.Devices, name)
	}
	sort.Strings(reply.Devices)
	return nil
}

// Ping is the health-check RPC: cheap, side-effect free, and answered even
// while draining (so fleet monitors can watch a shutdown complete).
func (s *Server) Ping(_ struct{}, reply *PingReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.OK = !s.draining
	reply.Devices = len(s.backends)
	reply.InFlight = s.inflight
	reply.Draining = s.draining
	return nil
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serves until the
// listener is closed. It returns the bound address.
func (s *Server) Serve(addr string) (string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Measure", s); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.conns = make(map[net.Conn]struct{})
	//glint:ignore leakcheck -- accept loop exits when Close/DrainAndClose closes the listener
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.conns == nil { // closed concurrently
				s.mu.Unlock()
				_ = conn.Close() // teardown; the close error is uninteresting
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			//glint:ignore leakcheck -- per-conn server exits when Close/DrainAndClose severs the connection
			go func() {
				srv.ServeConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// DrainAndClose shuts down gracefully: it stops accepting connections,
// rejects new measurement batches with ErrDraining, waits for in-flight
// batches to finish or the context to expire, then severs the remaining
// connections. Callers bound the drain with context.WithTimeout.
func (s *Server) DrainAndClose(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for done := false; !done; {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			done = true
		case <-time.After(2 * time.Millisecond):
		}
	}
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close() // teardown; the close error is uninteresting
	}
	s.conns = nil
	s.mu.Unlock()
	return err
}

// InFlight reports how many measurement batches are currently executing.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Close stops the listener and severs every established connection, so
// in-flight clients see errors instead of a silently half-alive server.
func (s *Server) Close() error {
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close() // teardown; the close error is uninteresting
	}
	s.conns = nil
	s.mu.Unlock()
	return err
}

// Remote is a Measurer backed by a measurement server over net/rpc.
type Remote struct {
	client *rpc.Client
	device string

	traceMu sync.Mutex
	trace   telemetry.SpanContext // stamped onto MeasureArgs until rebound
}

// BindTrace attaches sc to subsequent measurement RPCs (TraceBinder).
func (r *Remote) BindTrace(sc telemetry.SpanContext) {
	r.traceMu.Lock()
	r.trace = sc
	r.traceMu.Unlock()
}

func (r *Remote) boundTrace() telemetry.SpanContext {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	return r.trace
}

// Dial connects to a measurement server and binds to one of its devices,
// applying DefaultDialTimeout to both connection setup and the handshake.
func Dial(addr, device string) (*Remote, error) {
	return DialTimeout(addr, device, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit bound. Unroutable addresses (which
// blackhole SYNs rather than refusing them) and servers that accept but
// never answer both fail within roughly the timeout.
func DialTimeout(addr, device string, timeout time.Duration) (*Remote, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	//glint:ignore ctxflow -- compat shim: the timeout-based dial API predates ctx plumbing and the root is bounded by the timeout
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialContext(ctx, addr, device)
}

// DialContext is Dial bounded by a caller-supplied context: both the TCP
// connect and the handshake List call respect ctx's deadline and
// cancellation.
func DialContext(ctx context.Context, addr, device string) (*Remote, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	// Bound the handshake List call; the deadline is lifted once bound.
	handshake := time.Now().Add(DefaultDialTimeout)
	if dl, ok := ctx.Deadline(); ok {
		handshake = dl
	}
	if err := conn.SetDeadline(handshake); err != nil {
		_ = conn.Close() // teardown; the close error is uninteresting
		return nil, err
	}
	client := rpc.NewClient(conn)
	var listed ListReply
	if err := client.Call("Measure.List", struct{}{}, &listed); err != nil {
		_ = client.Close() // already failing; the dial error wins
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		_ = client.Close() // already failing; the dial error wins
		return nil, err
	}
	for _, name := range listed.Devices {
		if name == device {
			return &Remote{client: client, device: device}, nil
		}
	}
	_ = client.Close() // already failing; the dial error wins
	return nil, fmt.Errorf("measure: server at %s does not host %q (has %v)", addr, device, listed.Devices)
}

// MeasureBatch measures remotely.
func (r *Remote) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	//glint:ignore ctxflow -- compat shim: the Measurer interface is ctx-less; the fleet threads a real ctx via MeasureBatchContext
	return r.MeasureBatchContext(context.Background(), task, sp, idxs)
}

// MeasureBatchContext measures remotely, abandoning the in-flight RPC when
// the context expires — this is what stops a half-open connection to a dead
// board from hanging a tuning session forever. The asynchronous call is
// issued with rpc.Client.Go so cancellation does not wait on the wire.
func (r *Remote) MeasureBatchContext(ctx context.Context, task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	args := MeasureArgs{Device: r.device, Model: task.Model, TaskIndex: task.Index, Indices: idxs, Trace: r.boundTrace()}
	var reply MeasureReply
	call := r.client.Go("Measure.Measure", args, &reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return nil, fmt.Errorf("measure: remote batch on %s: %w", r.device, ctx.Err())
	case done := <-call.Done:
		if done.Error != nil {
			return nil, done.Error
		}
		return reply.Results, nil
	}
}

// Ping health-checks the server this Remote is connected to, bounded by
// the default dial timeout.
func (r *Remote) Ping() (PingReply, error) {
	//glint:ignore ctxflow -- compat shim: the timeout-bounded health probe is its own root
	ctx, cancel := context.WithTimeout(context.Background(), DefaultDialTimeout)
	defer cancel()
	return r.PingContext(ctx)
}

// PingContext is Ping bounded by a caller-supplied context; the in-flight
// RPC is abandoned when ctx expires.
func (r *Remote) PingContext(ctx context.Context) (PingReply, error) {
	var reply PingReply
	call := r.client.Go("Measure.Ping", struct{}{}, &reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return reply, ctx.Err()
	case done := <-call.Done:
		return reply, done.Error
	}
}

// DeviceName identifies the remote GPU.
func (r *Remote) DeviceName() string { return r.device }

// Close releases the RPC connection.
func (r *Remote) Close() error { return r.client.Close() }
