package measure

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// MeasureArgs is the RPC request: a task identified by (model, 1-based
// index) plus the configuration indices to run on the named device.
type MeasureArgs struct {
	Device    string
	Model     string
	TaskIndex int
	Indices   []int64
}

// MeasureReply carries the measurement results back.
type MeasureReply struct {
	Results []gpusim.Result
}

// ListReply names the devices a measurement server hosts.
type ListReply struct {
	Devices []string
}

// Server hosts simulated GPUs behind net/rpc, standing in for the paper's
// RPC-attached measurement boards.
type Server struct {
	mu      sync.Mutex
	devices map[string]*gpusim.Device
	ln      net.Listener
	conns   map[net.Conn]struct{}
}

// NewServer builds a server hosting the named GPUs.
func NewServer(gpuNames []string) (*Server, error) {
	s := &Server{devices: make(map[string]*gpusim.Device, len(gpuNames))}
	for _, name := range gpuNames {
		spec, err := hwspec.ByName(name)
		if err != nil {
			return nil, err
		}
		s.devices[name] = gpusim.NewDevice(spec)
	}
	return s, nil
}

// Measure is the RPC method: it resolves the task, rebuilds its space, and
// measures every requested index.
func (s *Server) Measure(args MeasureArgs, reply *MeasureReply) error {
	s.mu.Lock()
	dev, ok := s.devices[args.Device]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("measure: server does not host device %q", args.Device)
	}
	task, err := workload.TaskByIndex(args.Model, args.TaskIndex)
	if err != nil {
		return err
	}
	sp, err := space.ForTask(task)
	if err != nil {
		return err
	}
	reply.Results = make([]gpusim.Result, len(args.Indices))
	for i, idx := range args.Indices {
		if idx < 0 || idx >= sp.Size() {
			return fmt.Errorf("measure: index %d out of space [0, %d)", idx, sp.Size())
		}
		reply.Results[i] = dev.MeasureIndex(task, sp, idx)
	}
	return nil
}

// List is the RPC method returning hosted device names.
func (s *Server) List(_ struct{}, reply *ListReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name := range s.devices {
		reply.Devices = append(reply.Devices, name)
	}
	return nil
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serves until the
// listener is closed. It returns the bound address.
func (s *Server) Serve(addr string) (string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Measure", s); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.conns = make(map[net.Conn]struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.conns == nil { // closed concurrently
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			go func() {
				srv.ServeConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener and severs every established connection, so
// in-flight clients see errors instead of a silently half-alive server.
func (s *Server) Close() error {
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = nil
	s.mu.Unlock()
	return err
}

// Remote is a Measurer backed by a measurement server over net/rpc.
type Remote struct {
	client *rpc.Client
	device string
}

// Dial connects to a measurement server and binds to one of its devices.
func Dial(addr, device string) (*Remote, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var listed ListReply
	if err := client.Call("Measure.List", struct{}{}, &listed); err != nil {
		client.Close()
		return nil, err
	}
	for _, name := range listed.Devices {
		if name == device {
			return &Remote{client: client, device: device}, nil
		}
	}
	client.Close()
	return nil, fmt.Errorf("measure: server at %s does not host %q (has %v)", addr, device, listed.Devices)
}

// MeasureBatch measures remotely.
func (r *Remote) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	args := MeasureArgs{Device: r.device, Model: task.Model, TaskIndex: task.Index, Indices: idxs}
	var reply MeasureReply
	if err := r.client.Call("Measure.Measure", args, &reply); err != nil {
		return nil, err
	}
	return reply.Results, nil
}

// DeviceName identifies the remote GPU.
func (r *Remote) DeviceName() string { return r.device }

// Close releases the RPC connection.
func (r *Remote) Close() error { return r.client.Close() }
