package measure

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"testing"

	"github.com/neuralcompile/glimpse/internal/telemetry"
)

// legacyMeasureArgs is the pre-tracing wire shape of MeasureArgs, kept
// here verbatim to pin both directions of gob compatibility across mixed
// client/server versions.
type legacyMeasureArgs struct {
	Device    string
	Model     string
	TaskIndex int
	Indices   []int64
}

// TestMeasureArgsWireCompat pins the RPC compatibility contract the
// tracing field rides on: gob matches struct fields by name, so
//
//  1. an old client's bytes decode on a new server (the absent Trace
//     field is left zero — no trace, which is correct);
//  2. a new client decodes on an old server whether tracing is off (the
//     zero Trace encodes as an empty struct) or on (the unknown field is
//     skipped; only the trace identity is lost);
//  3. on one binary, the traced and untraced encodings differ only in
//     the Trace field — the measurement payload bytes are unchanged, so
//     tracing cannot alter what the endpoint measures.
func TestMeasureArgsWireCompat(t *testing.T) {
	encode := func(v any) []byte {
		var b bytes.Buffer
		// One encoder per message, like net/rpc per-call encoding streams
		// start fresh type dictionaries.
		if err := gob.NewEncoder(&b).Encode(v); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	legacy := legacyMeasureArgs{Device: "titan-xp", Model: "resnet-18", TaskIndex: 7, Indices: []int64{3, 9}}
	oldBytes := encode(legacy)

	// Old -> new: Trace arrives zero.
	var got MeasureArgs
	if err := gob.NewDecoder(bytes.NewReader(oldBytes)).Decode(&got); err != nil {
		t.Fatalf("new server rejected old client bytes: %v", err)
	}
	if got.Device != "titan-xp" || got.TaskIndex != 7 || len(got.Indices) != 2 {
		t.Fatalf("payload mangled: %+v", got)
	}
	if got.Trace != (telemetry.SpanContext{}) {
		t.Fatalf("legacy decode produced a trace context: %+v", got.Trace)
	}

	// New (untraced) -> old: the zero Trace field decodes as nothing.
	untraced := MeasureArgs{Device: "titan-xp", Model: "resnet-18", TaskIndex: 7, Indices: []int64{3, 9}}
	var legacyFromUntraced legacyMeasureArgs
	if err := gob.NewDecoder(bytes.NewReader(encode(untraced))).Decode(&legacyFromUntraced); err != nil {
		t.Fatalf("old server rejected untraced new client bytes: %v", err)
	}
	if legacyFromUntraced.Device != "titan-xp" || len(legacyFromUntraced.Indices) != 2 {
		t.Fatalf("untraced payload mangled: %+v", legacyFromUntraced)
	}

	// Same binary, traced vs untraced: round-tripping both must yield
	// identical measurement payloads — the Trace field is pure identity.
	traced := untraced
	traced.Trace = telemetry.SpanContext{TraceID: "job-j1", SpanID: "glimpsed/4", JobID: "j1", Tenant: "acme"}
	var back MeasureArgs
	if err := gob.NewDecoder(bytes.NewReader(encode(traced))).Decode(&back); err != nil {
		t.Fatal(err)
	}
	back.Trace = telemetry.SpanContext{}
	payload := func(a MeasureArgs) string {
		a.Trace = telemetry.SpanContext{}
		b, _ := json.Marshal(a)
		return string(b)
	}
	if payload(back) != payload(untraced) {
		t.Fatalf("tracing changed the measurement payload:\n%s\nvs\n%s", payload(back), payload(untraced))
	}
	var legacyGot legacyMeasureArgs
	if err := gob.NewDecoder(bytes.NewReader(encode(traced))).Decode(&legacyGot); err != nil {
		t.Fatalf("old server rejected traced client bytes: %v", err)
	}
	if legacyGot.Device != "titan-xp" || legacyGot.Model != "resnet-18" ||
		legacyGot.TaskIndex != 7 || len(legacyGot.Indices) != 2 {
		t.Fatalf("old server mangled traced payload: %+v", legacyGot)
	}
}

// TestSpanContextJSONShape pins the JSONL field names other processes
// parse back out of trace files (tracereport -merge and DESIGN.md §14).
func TestSpanContextJSONShape(t *testing.T) {
	sc := telemetry.SpanContext{TraceID: "job-j1", SpanID: "glimpsed/4", JobID: "j1", Tenant: "acme"}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"trace":"job-j1","span":"glimpsed/4","job":"j1","tenant":"acme"}`
	if string(data) != want {
		t.Fatalf("SpanContext JSON drifted:\n got %s\nwant %s", data, want)
	}
	if data, _ = json.Marshal(telemetry.SpanContext{}); string(data) != "{}" {
		t.Fatalf("zero SpanContext must marshal empty, got %s", data)
	}
}
