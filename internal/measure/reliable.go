package measure

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// FailReasonSanitized marks a measurement rejected by Reliable because the
// backend returned a non-finite or negative value — corrupted telemetry
// must not poison cost models as a legitimate (in)valid sample.
const FailReasonSanitized = "sanitized_corrupt_measurement"

// ErrBreakerOpen is returned (wrapped) when a backend is skipped because
// its circuit breaker is open.
var ErrBreakerOpen = errors.New("measure: circuit breaker open")

// ReliableConfig tunes the fault-handling policy of a Reliable measurer.
// The zero value selects sane defaults for every field.
type ReliableConfig struct {
	// BatchTimeout is the per-attempt deadline. Backends implementing
	// ContextMeasurer are cancelled; plain Measurers are abandoned in a
	// goroutine (their eventual result is discarded). 0 disables.
	BatchTimeout time.Duration
	// MaxAttempts bounds tries per backend per batch (default 3).
	MaxAttempts int
	// BackoffBase is the first retry delay (default 10ms); successive
	// retries double it up to BackoffMax (default 1s). A deterministic
	// jitter in [0.5, 1.0)× derived from Seed is applied.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold opens a backend's circuit breaker after this many
	// consecutive failed attempts (default 4); while open the backend is
	// skipped without being called.
	BreakerThreshold int
	// BreakerCooldown is how long a breaker stays open before a single
	// half-open probe attempt is allowed (default 5s). A successful probe
	// closes the breaker; a failed one re-opens it for another cooldown.
	BreakerCooldown time.Duration
	// Seed drives backoff jitter deterministically (keyed further by
	// device, task, batch and attempt, so concurrent sessions do not
	// perturb each other's schedules).
	Seed int64
	// Sleep and Now are test hooks. When Sleep is nil the default backoff
	// sleep is used, which a canceled context interrupts immediately; a
	// custom Sleep runs to completion but cancellation is still checked
	// when it returns.
	Sleep func(time.Duration)
	Now   func() time.Time
	// EventSink, when non-nil, observes every recorded degradation Event
	// (retry, backoff, breaker transitions, failover, ...) as it happens —
	// the hook the telemetry tracer attaches to. It is invoked with
	// Reliable's internal mutex held: it must be fast, must not block, and
	// must not call back into the Reliable.
	EventSink func(Event)
}

func (c *ReliableConfig) resolve() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// BreakerState is a backend circuit breaker's position.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// ReliableStats counts fault-handling activity; all fields are cumulative.
type ReliableStats struct {
	Batches      int // MeasureBatch calls served
	Attempts     int // backend attempts issued
	Retries      int // attempts beyond the first on some backend
	Timeouts     int // attempts cut off by BatchTimeout
	Failovers    int // batches served by a non-primary backend
	Exhausted    int // batches that failed on every backend
	Sanitized    int // results rejected as corrupt
	BreakerOpens int // breaker transitions to open
	BreakerSkips int // backends skipped because their breaker was open
}

// Event is one recorded degradation, for logs and post-mortems. The
// JSON field order is part of the streamed-event contract (DESIGN.md
// §13): events marshal in struct order, so SSE streams and JSONL event
// logs are deterministic and diffable across runs.
type Event struct {
	Backend string `json:"backend"` // device name of the backend involved
	Task    string `json:"task"`
	Kind    string `json:"kind"` // "retry" | "backoff" | "timeout" | "failover" | "breaker_open" | "breaker_close" | "breaker_probe" | "skip_open" | "sanitized" | "exhausted"
	Detail  string `json:"detail,omitempty"`
}

const maxEvents = 4096 // keep long campaigns from growing without bound

type backend struct {
	m             Measurer
	state         BreakerState
	consecFails   int
	openedAt      time.Time
	probeInFlight bool
}

// Reliable wraps an ordered failover chain of Measurers (e.g. remote board
// → replica → local simulator) with per-batch deadlines, bounded retries
// with capped exponential backoff, a per-backend circuit breaker, and
// result sanitization. It reports the primary backend's device name, so a
// degraded session still labels its results with the intended target. It
// is safe for concurrent use by multiple tuning sessions.
type Reliable struct {
	cfg ReliableConfig

	mu       sync.Mutex
	backends []*backend
	seq      map[string]int // per-task batch sequence, for jitter keys
	stats    ReliableStats
	events   []Event
}

// NewReliable builds a Reliable over the failover chain. The first backend
// is the primary; later ones are tried in order when earlier ones fail or
// have open breakers. All backends must report measurements for the same
// device model for results to be meaningful — that is the caller's
// contract (e.g. a remote board and its local simulator twin).
func NewReliable(cfg ReliableConfig, chain ...Measurer) (*Reliable, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("measure: NewReliable needs at least one backend")
	}
	cfg.resolve()
	r := &Reliable{cfg: cfg, seq: map[string]int{}}
	for _, m := range chain {
		if m == nil {
			return nil, fmt.Errorf("measure: NewReliable given a nil backend")
		}
		r.backends = append(r.backends, &backend{m: m})
	}
	return r, nil
}

// DeviceName reports the primary backend's device.
func (r *Reliable) DeviceName() string { return r.backends[0].m.DeviceName() }

// BindTrace forwards the span context to every backend in the failover
// chain that supports trace propagation (TraceBinder), so a batch that
// fails over mid-trace still lands on the wire with the same identity.
func (r *Reliable) BindTrace(sc telemetry.SpanContext) {
	for _, b := range r.backends {
		if tb, ok := b.m.(TraceBinder); ok {
			tb.BindTrace(sc)
		}
	}
}

// Stats returns a snapshot of the fault-handling counters.
func (r *Reliable) Stats() ReliableStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Events returns a copy of the recorded degradation events.
func (r *Reliable) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Ready reports whether some backend would accept work right now: a
// breaker that is closed, half-open with no probe in flight, or open with
// its cooldown elapsed (the next batch runs the half-open probe). A fleet
// scheduler uses this to skip endpoints that would only fast-fail with
// ErrBreakerOpen, while still routing a probe batch to a recovering one.
func (r *Reliable) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.backends {
		switch b.state {
		case BreakerClosed:
			return true
		case BreakerHalfOpen:
			if !b.probeInFlight {
				return true
			}
		default: // open
			if r.cfg.Now().Sub(b.openedAt) >= r.cfg.BreakerCooldown {
				return true
			}
		}
	}
	return false
}

// BreakerStates reports each backend's current breaker position, in chain
// order (open breakers past their cooldown still read as open until the
// next batch probes them).
func (r *Reliable) BreakerStates() []BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BreakerState, len(r.backends))
	for i, b := range r.backends {
		out[i] = b.state
	}
	return out
}

func (r *Reliable) record(e Event) {
	if len(r.events) < maxEvents {
		r.events = append(r.events, e)
	}
	if r.cfg.EventSink != nil {
		r.cfg.EventSink(e)
	}
}

// MeasureBatch walks the failover chain until one backend returns a
// sanitized batch. It returns the last underlying error when every backend
// is exhausted.
func (r *Reliable) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	//glint:ignore ctxflow -- compat shim: the Measurer interface is ctx-less; the fleet threads a real ctx via MeasureBatchContext
	return r.MeasureBatchContext(context.Background(), task, sp, idxs)
}

// MeasureBatchContext is MeasureBatch bounded by an outer context (in
// addition to the per-attempt BatchTimeout).
func (r *Reliable) MeasureBatchContext(ctx context.Context, task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	r.mu.Lock()
	r.stats.Batches++
	r.seq[task.Name()]++
	seq := r.seq[task.Name()]
	backends := append([]*backend(nil), r.backends...)
	r.mu.Unlock()

	var lastErr error
	for bi, be := range backends {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("measure: batch cancelled: %w", err)
		}
		probe, admitted := r.admit(be, task)
		if !admitted {
			if lastErr == nil {
				lastErr = fmt.Errorf("%w (%s)", ErrBreakerOpen, be.m.DeviceName())
			}
			continue
		}
		results, err := r.tryBackend(ctx, be, probe, task, sp, idxs, seq)
		if cerr := ctx.Err(); cerr != nil && err != nil {
			// The parent context died (caller gave up, speculation twin
			// won, shutdown): abort the whole failover chain instead of
			// hammering the remaining backends with doomed attempts.
			return nil, fmt.Errorf("measure: batch cancelled: %w", cerr)
		}
		if err == nil {
			if bi > 0 {
				r.mu.Lock()
				r.stats.Failovers++
				r.record(Event{Backend: be.m.DeviceName(), Task: task.Name(), Kind: "failover",
					Detail: fmt.Sprintf("served by chain position %d", bi)})
				r.mu.Unlock()
			}
			return r.sanitize(task, be.m.DeviceName(), results), nil
		}
		lastErr = err
	}
	r.mu.Lock()
	r.stats.Exhausted++
	detail := ""
	if lastErr != nil {
		detail = lastErr.Error()
	}
	r.record(Event{Task: task.Name(), Kind: "exhausted", Detail: detail})
	r.mu.Unlock()
	return nil, fmt.Errorf("measure: all %d backends failed for %s: %w", len(backends), task.Name(), lastErr)
}

// admit decides whether a backend may be tried, handling the open →
// half-open transition. probe is true when only a single half-open probe
// attempt is allowed.
func (r *Reliable) admit(be *backend, task workload.Task) (probe, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch be.state {
	case BreakerClosed:
		return false, true
	case BreakerHalfOpen:
		// One probe at a time; concurrent sessions skip while it runs.
		if be.probeInFlight {
			r.stats.BreakerSkips++
			return false, false
		}
		be.probeInFlight = true
		return true, true
	default: // open
		if r.cfg.Now().Sub(be.openedAt) >= r.cfg.BreakerCooldown {
			be.state = BreakerHalfOpen
			be.probeInFlight = true
			r.record(Event{Backend: be.m.DeviceName(), Task: task.Name(), Kind: "breaker_probe"})
			return true, true
		}
		r.stats.BreakerSkips++
		r.record(Event{Backend: be.m.DeviceName(), Task: task.Name(), Kind: "skip_open"})
		return false, false
	}
}

// tryBackend runs up to MaxAttempts attempts (one for a half-open probe)
// with backoff, updating breaker state.
func (r *Reliable) tryBackend(ctx context.Context, be *backend, probe bool, task workload.Task,
	sp *space.Space, idxs []int64, seq int) ([]gpusim.Result, error) {
	attempts := r.cfg.MaxAttempts
	if probe {
		attempts = 1
	}
	name := be.m.DeviceName()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.stats.Attempts++
		if attempt > 1 {
			r.stats.Retries++
		}
		r.mu.Unlock()
		results, err := r.attemptOnce(ctx, be.m, task, sp, idxs)
		if err == nil {
			r.onSuccess(be, task)
			return results, nil
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			// Parent cancellation is not the backend's fault: release any
			// probe claim without penalising the breaker, and skip the
			// remaining retries — the caller has already moved on.
			r.mu.Lock()
			be.probeInFlight = false
			r.mu.Unlock()
			return nil, fmt.Errorf("measure: batch on %s cancelled: %w", name, cerr)
		}
		timedOut := errors.Is(err, context.DeadlineExceeded)
		r.mu.Lock()
		if timedOut {
			r.stats.Timeouts++
			r.record(Event{Backend: name, Task: task.Name(), Kind: "timeout", Detail: err.Error()})
		}
		opened := r.onFailureLocked(be, task)
		r.mu.Unlock()
		if opened || probe {
			break // breaker tripped (or probe failed): stop hammering this backend
		}
		if attempt < attempts {
			d := r.backoff(name, task.Name(), seq, attempt)
			r.mu.Lock()
			r.record(Event{Backend: name, Task: task.Name(), Kind: "retry",
				Detail: fmt.Sprintf("attempt %d/%d: %v", attempt, attempts, err)})
			r.record(Event{Backend: name, Task: task.Name(), Kind: "backoff", Detail: d.String()})
			r.mu.Unlock()
			if err := r.sleep(ctx, d); err != nil {
				return nil, fmt.Errorf("measure: backoff on %s aborted: %w", name, err)
			}
		}
	}
	return nil, lastErr
}

// sleep waits out a backoff delay, returning early with the context error
// if the caller cancels mid-wait. A custom Sleep hook (tests) runs to
// completion, but cancellation is still honored once it returns.
func (r *Reliable) sleep(ctx context.Context, d time.Duration) error {
	if r.cfg.Sleep != nil {
		r.cfg.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attemptOnce runs a single measurement attempt under the batch deadline.
func (r *Reliable) attemptOnce(ctx context.Context, m Measurer, task workload.Task,
	sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	if r.cfg.BatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.BatchTimeout)
		defer cancel()
	}
	if cm, ok := m.(ContextMeasurer); ok {
		return cm.MeasureBatchContext(ctx, task, sp, idxs)
	}
	if ctx.Done() == nil {
		return m.MeasureBatch(task, sp, idxs)
	}
	// Plain Measurer under a deadline: run it in a goroutine and abandon it
	// on expiry. The goroutine leaks until the backend returns — acceptable
	// for a hung measurement, and the discarded late result is never used.
	type reply struct {
		results []gpusim.Result
		err     error
	}
	ch := make(chan reply, 1)
	go func() {
		results, err := m.MeasureBatch(task, sp, idxs)
		ch <- reply{results, err}
	}()
	select {
	case <-ctx.Done():
		return nil, fmt.Errorf("measure: batch on %s abandoned: %w", m.DeviceName(), ctx.Err())
	case rep := <-ch:
		return rep.results, rep.err
	}
}

func (r *Reliable) onSuccess(be *backend, task workload.Task) {
	r.mu.Lock()
	defer r.mu.Unlock()
	be.consecFails = 0
	be.probeInFlight = false
	if be.state != BreakerClosed {
		be.state = BreakerClosed
		r.record(Event{Backend: be.m.DeviceName(), Task: task.Name(), Kind: "breaker_close"})
	}
}

// onFailureLocked registers a failed attempt; callers hold r.mu. It
// reports whether the breaker (re-)opened.
func (r *Reliable) onFailureLocked(be *backend, task workload.Task) bool {
	be.consecFails++
	be.probeInFlight = false
	if be.state == BreakerHalfOpen || be.consecFails >= r.cfg.BreakerThreshold {
		reopened := be.state == BreakerHalfOpen
		be.state = BreakerOpen
		be.openedAt = r.cfg.Now()
		be.consecFails = 0
		r.stats.BreakerOpens++
		detail := fmt.Sprintf("after %d consecutive failures", r.cfg.BreakerThreshold)
		if reopened {
			detail = "half-open probe failed"
		}
		r.record(Event{Backend: be.m.DeviceName(), Task: task.Name(), Kind: "breaker_open", Detail: detail})
		return true
	}
	return false
}

// backoff computes the capped exponential delay with deterministic jitter
// in [0.5, 1.0)× keyed by (seed, device, task, batch, attempt) — stable
// under concurrent sessions and across reruns.
func (r *Reliable) backoff(device, taskName string, seq, attempt int) time.Duration {
	d := r.cfg.BackoffBase << (attempt - 1)
	if d > r.cfg.BackoffMax || d <= 0 { // <= 0 guards shift overflow
		d = r.cfg.BackoffMax
	}
	frac := rng.New(r.cfg.Seed).
		Split(fmt.Sprintf("backoff/%s/%s/%d/%d", device, taskName, seq, attempt)).
		Float64()
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// sanitize rejects corrupt measurements: non-finite or negative GFLOPS /
// kernel times on "valid" results become invalid with FailReasonSanitized,
// and non-finite or negative measurement costs are zeroed so budget
// accounting stays finite.
func (r *Reliable) sanitize(task workload.Task, device string, results []gpusim.Result) []gpusim.Result {
	n := 0
	for i := range results {
		res := &results[i]
		if !finiteNonNeg(res.CostSec) {
			res.CostSec = 0
			if res.Valid {
				res.Valid = false
				res.FailReason = FailReasonSanitized
				n++
				continue
			}
		}
		if res.Valid && (!finiteNonNeg(res.GFLOPS) || !finitePos(res.TimeMS)) {
			res.Valid = false
			res.GFLOPS = 0
			res.TimeMS = 0
			res.FailReason = FailReasonSanitized
			n++
		}
	}
	if n > 0 {
		r.mu.Lock()
		r.stats.Sanitized += n
		r.record(Event{Backend: device, Task: task.Name(), Kind: "sanitized",
			Detail: fmt.Sprintf("%d corrupt results rejected", n)})
		r.mu.Unlock()
	}
	return results
}

func finiteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

func finitePos(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}
