package graph

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/workload"
)

// ExtractTasks performs TVM-style tuning-task extraction from a graph:
// every convolution and dense node maps to a template task; same-shape
// layers collapse into one task with a repeat count; stride-1 spatial
// convolutions additionally get a Winograd variant. The output order is
// Table 1's: direct conv2d tasks (first-appearance order), winograd
// variants, then dense layers — and it must match workload.Tasks for the
// built-in models (pinned by tests).
func ExtractTasks(g *Graph) ([]workload.Task, error) {
	type convKey struct {
		shape workload.ConvShape
	}
	type denseKey struct {
		shape workload.DenseShape
	}
	var convOrder []workload.ConvShape
	convRepeats := map[convKey]int{}
	var denseOrder []workload.DenseShape
	denseRepeats := map[denseKey]int{}

	for _, n := range g.Nodes {
		switch n.Kind {
		case OpConv2D:
			if len(n.Inputs) != 1 {
				return nil, fmt.Errorf("graph: conv %q has %d inputs", n.Name, len(n.Inputs))
			}
			in := g.Nodes[n.Inputs[0]].Out
			shape := workload.ConvShape{
				Batch: in.N, InC: in.C, OutC: n.Conv.OutC,
				H: in.H, W: in.W,
				Kernel: n.Conv.Kernel, Stride: n.Conv.Stride, Pad: n.Conv.Pad,
			}
			k := convKey{shape}
			if convRepeats[k] == 0 {
				convOrder = append(convOrder, shape)
			}
			convRepeats[k]++
		case OpDense:
			in := g.Nodes[n.Inputs[0]].Out
			shape := workload.DenseShape{Batch: in.N, In: in.C, Out: n.Dense.Out}
			k := denseKey{shape}
			if denseRepeats[k] == 0 {
				denseOrder = append(denseOrder, shape)
			}
			denseRepeats[k]++
		}
	}
	if len(convOrder) == 0 && len(denseOrder) == 0 {
		return nil, fmt.Errorf("graph: %s has no tunable operators", g.Name)
	}

	var tasks []workload.Task
	idx := 1
	for _, shape := range convOrder {
		tasks = append(tasks, workload.Task{
			Model: g.Name, Index: idx, Kind: workload.Conv2D,
			Conv: shape, Repeats: convRepeats[convKey{shape}],
		})
		idx++
	}
	for _, shape := range convOrder {
		if winogradApplicable(shape) {
			tasks = append(tasks, workload.Task{
				Model: g.Name, Index: idx, Kind: workload.WinogradConv2D,
				Conv: shape, Repeats: convRepeats[convKey{shape}],
			})
			idx++
		}
	}
	for _, shape := range denseOrder {
		tasks = append(tasks, workload.Task{
			Model: g.Name, Index: idx, Kind: workload.Dense,
			Dense: shape, Repeats: denseRepeats[denseKey{shape}],
		})
		idx++
	}
	return tasks, nil
}

// winogradApplicable mirrors workload's eligibility rule: stride-1 spatial
// kernels can use the Winograd template.
func winogradApplicable(c workload.ConvShape) bool {
	return c.Stride == 1 && c.Kernel >= 3
}

// ModelFLOPs sums the per-inference FLOPs of a graph's tunable operators
// (repeats included — this is the whole network, unlike the per-unique-
// task sum in workload.ModelFLOPs).
func ModelFLOPs(g *Graph) (int64, error) {
	tasks, err := ExtractTasks(g)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, t := range tasks {
		if t.Kind == workload.WinogradConv2D {
			continue // alternative template for the same layer
		}
		total += t.FLOPs() * int64(t.Repeats)
	}
	return total, nil
}
