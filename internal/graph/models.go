package graph

import "fmt"

// BuildModel constructs one of the evaluation networks by name.
func BuildModel(name string) (*Graph, error) {
	switch name {
	case "alexnet":
		return BuildAlexNet()
	case "resnet-18":
		return BuildResNet18()
	case "vgg-16":
		return BuildVGG16()
	default:
		return nil, fmt.Errorf("graph: unknown model %q", name)
	}
}

// BuildAlexNet constructs AlexNet (Krizhevsky et al., 2012) for ImageNet
// inference at batch 1 (227×227 input, pad-free first conv).
func BuildAlexNet() (*Graph, error) {
	b := NewBuilder("alexnet")
	x := b.Input("data", Shape{N: 1, C: 3, H: 227, W: 227})

	x = b.Conv2D("conv1", x, ConvAttrs{OutC: 64, Kernel: 11, Stride: 4, Pad: 0})
	x = b.ReLU(x)
	x = b.LRN(x)
	x = b.MaxPool(x, PoolAttrs{Kernel: 3, Stride: 2})

	x = b.Conv2D("conv2", x, ConvAttrs{OutC: 192, Kernel: 5, Stride: 1, Pad: 2})
	x = b.ReLU(x)
	x = b.LRN(x)
	x = b.MaxPool(x, PoolAttrs{Kernel: 3, Stride: 2})

	x = b.Conv2D("conv3", x, ConvAttrs{OutC: 384, Kernel: 3, Stride: 1, Pad: 1})
	x = b.ReLU(x)
	x = b.Conv2D("conv4", x, ConvAttrs{OutC: 256, Kernel: 3, Stride: 1, Pad: 1})
	x = b.ReLU(x)
	x = b.Conv2D("conv5", x, ConvAttrs{OutC: 256, Kernel: 3, Stride: 1, Pad: 1})
	x = b.ReLU(x)
	x = b.MaxPool(x, PoolAttrs{Kernel: 3, Stride: 2})

	x = b.Flatten(x)
	x = b.Dropout(x)
	x = b.Dense("fc6", x, 4096)
	x = b.ReLU(x)
	x = b.Dropout(x)
	x = b.Dense("fc7", x, 4096)
	x = b.ReLU(x)
	x = b.Dense("fc8", x, 1000)
	x = b.Softmax(x)
	_ = x
	return b.Build()
}

// BuildVGG16 constructs VGG-16 (Simonyan & Zisserman, 2015) at batch 1.
func BuildVGG16() (*Graph, error) {
	b := NewBuilder("vgg-16")
	x := b.Input("data", Shape{N: 1, C: 3, H: 224, W: 224})

	block := func(x int, outC, convs int, stage int) int {
		for i := 1; i <= convs; i++ {
			x = b.Conv2D(fmt.Sprintf("conv%d_%d", stage, i), x,
				ConvAttrs{OutC: outC, Kernel: 3, Stride: 1, Pad: 1})
			x = b.ReLU(x)
		}
		return b.MaxPool(x, PoolAttrs{Kernel: 2, Stride: 2})
	}
	x = block(x, 64, 2, 1)
	x = block(x, 128, 2, 2)
	x = block(x, 256, 3, 3)
	x = block(x, 512, 3, 4)
	x = block(x, 512, 3, 5)

	x = b.Flatten(x)
	x = b.Dense("fc6", x, 4096)
	x = b.ReLU(x)
	x = b.Dropout(x)
	x = b.Dense("fc7", x, 4096)
	x = b.ReLU(x)
	x = b.Dropout(x)
	x = b.Dense("fc8", x, 1000)
	x = b.Softmax(x)
	_ = x
	return b.Build()
}

// BuildResNet18 constructs ResNet-18 (He et al., 2016) at batch 1, in the
// projection-shortcut variant where every stage's first block carries a
// 1×1 projection (so the residual add is always against a convolution —
// this is the variant whose task extraction matches Table 1's 12 conv2d
// tasks).
func BuildResNet18() (*Graph, error) {
	b := NewBuilder("resnet-18")
	x := b.Input("data", Shape{N: 1, C: 3, H: 224, W: 224})

	x = b.Conv2D("conv1", x, ConvAttrs{OutC: 64, Kernel: 7, Stride: 2, Pad: 3})
	x = b.BatchNorm(x)
	x = b.ReLU(x)
	x = b.MaxPool(x, PoolAttrs{Kernel: 3, Stride: 2, Pad: 1})

	// basicBlock adds a 2-conv residual block. The first block of a stage
	// strides and projects; later blocks use identity shortcuts.
	basicBlock := func(x, outC, stride, stage, idx int) int {
		name := func(part string) string {
			return fmt.Sprintf("layer%d.%d.%s", stage, idx, part)
		}
		main := b.Conv2D(name("conv1"), x, ConvAttrs{OutC: outC, Kernel: 3, Stride: stride, Pad: 1})
		main = b.BatchNorm(main)
		main = b.ReLU(main)
		main = b.Conv2D(name("conv2"), main, ConvAttrs{OutC: outC, Kernel: 3, Stride: 1, Pad: 1})
		main = b.BatchNorm(main)
		short := x
		if idx == 0 {
			short = b.Conv2D(name("downsample"), x, ConvAttrs{OutC: outC, Kernel: 1, Stride: stride, Pad: 0})
			short = b.BatchNorm(short)
		}
		sum := b.Add(main, short)
		return b.ReLU(sum)
	}
	stage := func(x, outC, stride, stageNo int) int {
		x = basicBlock(x, outC, stride, stageNo, 0)
		return basicBlock(x, outC, 1, stageNo, 1)
	}
	x = stage(x, 64, 1, 1)
	x = stage(x, 128, 2, 2)
	x = stage(x, 256, 2, 3)
	x = stage(x, 512, 2, 4)

	x = b.AvgPool(x, PoolAttrs{Global: true})
	x = b.Flatten(x)
	x = b.Dense("fc", x, 1000)
	x = b.Softmax(x)
	_ = x
	return b.Build()
}
