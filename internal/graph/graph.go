// Package graph is the model front end: a small operator-graph
// representation of DNNs (the "DNN Model" box of the paper's Fig. 2), with
// shape inference, topological traversal, and tuning-task extraction. The
// three evaluation networks are built as real graphs here; internal/
// workload's task tables are the verified output of this extraction (the
// tests pin them to each other and to Table 1).
package graph

import (
	"fmt"
	"strings"
)

// OpKind enumerates supported operators.
type OpKind int

const (
	// OpInput is a graph input placeholder.
	OpInput OpKind = iota
	// OpConv2D is a 2-D convolution (NCHW, square kernel).
	OpConv2D
	// OpDense is a fully connected layer.
	OpDense
	// OpReLU is an elementwise rectifier.
	OpReLU
	// OpMaxPool is max pooling.
	OpMaxPool
	// OpAvgPool is (global or windowed) average pooling.
	OpAvgPool
	// OpAdd is an elementwise residual addition.
	OpAdd
	// OpBatchNorm is batch normalization (inference form).
	OpBatchNorm
	// OpFlatten reshapes NCHW to a vector.
	OpFlatten
	// OpSoftmax is the classifier head activation.
	OpSoftmax
	// OpLRN is local response normalization (AlexNet).
	OpLRN
	// OpDropout is inference-time identity (kept for graph fidelity).
	OpDropout
)

// String names the operator kind.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpConv2D:
		return "conv2d"
	case OpDense:
		return "dense"
	case OpReLU:
		return "relu"
	case OpMaxPool:
		return "max_pool"
	case OpAvgPool:
		return "avg_pool"
	case OpAdd:
		return "add"
	case OpBatchNorm:
		return "batch_norm"
	case OpFlatten:
		return "flatten"
	case OpSoftmax:
		return "softmax"
	case OpLRN:
		return "lrn"
	case OpDropout:
		return "dropout"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Shape is an NCHW activation shape; dense activations use {N, C, 1, 1}.
type Shape struct {
	N, C, H, W int
}

// Elems returns the element count.
func (s Shape) Elems() int64 {
	return int64(s.N) * int64(s.C) * int64(s.H) * int64(s.W)
}

// String renders the shape.
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// ConvAttrs parameterize OpConv2D.
type ConvAttrs struct {
	OutC, Kernel, Stride, Pad int
}

// PoolAttrs parameterize pooling operators. Global pools set Global.
type PoolAttrs struct {
	Kernel, Stride, Pad int
	Global              bool
}

// DenseAttrs parameterize OpDense.
type DenseAttrs struct {
	Out int
}

// Node is one operator instance.
type Node struct {
	ID     int
	Name   string
	Kind   OpKind
	Inputs []int // node IDs

	Conv  ConvAttrs
	Pool  PoolAttrs
	Dense DenseAttrs

	// Out is filled by InferShapes.
	Out Shape
}

// Graph is a DAG of operators with a single output.
type Graph struct {
	Name   string
	Nodes  []Node
	Output int
}

// Builder incrementally constructs a graph.
type Builder struct {
	g    Graph
	next int
}

// NewBuilder starts a graph.
func NewBuilder(name string) *Builder {
	return &Builder{g: Graph{Name: name}}
}

func (b *Builder) add(n Node) int {
	n.ID = b.next
	b.next++
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.Output = n.ID
	return n.ID
}

// Input adds the graph input.
func (b *Builder) Input(name string, s Shape) int {
	id := b.add(Node{Name: name, Kind: OpInput})
	b.g.Nodes[id].Out = s
	return id
}

// Conv2D adds a convolution.
func (b *Builder) Conv2D(name string, in int, attrs ConvAttrs) int {
	return b.add(Node{Name: name, Kind: OpConv2D, Inputs: []int{in}, Conv: attrs})
}

// Dense adds a fully connected layer.
func (b *Builder) Dense(name string, in, out int) int {
	return b.add(Node{Name: name, Kind: OpDense, Inputs: []int{in}, Dense: DenseAttrs{Out: out}})
}

// ReLU adds a rectifier.
func (b *Builder) ReLU(in int) int {
	return b.add(Node{Name: "relu", Kind: OpReLU, Inputs: []int{in}})
}

// MaxPool adds max pooling.
func (b *Builder) MaxPool(in int, attrs PoolAttrs) int {
	return b.add(Node{Name: "max_pool", Kind: OpMaxPool, Inputs: []int{in}, Pool: attrs})
}

// AvgPool adds average pooling.
func (b *Builder) AvgPool(in int, attrs PoolAttrs) int {
	return b.add(Node{Name: "avg_pool", Kind: OpAvgPool, Inputs: []int{in}, Pool: attrs})
}

// Add adds a residual addition.
func (b *Builder) Add(a, c int) int {
	return b.add(Node{Name: "add", Kind: OpAdd, Inputs: []int{a, c}})
}

// BatchNorm adds batch normalization.
func (b *Builder) BatchNorm(in int) int {
	return b.add(Node{Name: "batch_norm", Kind: OpBatchNorm, Inputs: []int{in}})
}

// Flatten adds a reshape to vector.
func (b *Builder) Flatten(in int) int {
	return b.add(Node{Name: "flatten", Kind: OpFlatten, Inputs: []int{in}})
}

// Softmax adds the classifier activation.
func (b *Builder) Softmax(in int) int {
	return b.add(Node{Name: "softmax", Kind: OpSoftmax, Inputs: []int{in}})
}

// LRN adds local response normalization.
func (b *Builder) LRN(in int) int {
	return b.add(Node{Name: "lrn", Kind: OpLRN, Inputs: []int{in}})
}

// Dropout adds an inference-time identity dropout marker.
func (b *Builder) Dropout(in int) int {
	return b.add(Node{Name: "dropout", Kind: OpDropout, Inputs: []int{in}})
}

// Build finalizes the graph and runs shape inference.
func (b *Builder) Build() (*Graph, error) {
	g := b.g
	if err := g.InferShapes(); err != nil {
		return nil, err
	}
	return &g, nil
}

// InferShapes computes every node's output shape, validating operand
// compatibility along the way.
func (g *Graph) InferShapes() error {
	for i := range g.Nodes {
		n := &g.Nodes[i]
		in := func(k int) (Shape, error) {
			if k >= len(n.Inputs) {
				return Shape{}, fmt.Errorf("graph: %s#%d missing input %d", n.Kind, n.ID, k)
			}
			id := n.Inputs[k]
			if id < 0 || id >= i {
				if id >= i {
					return Shape{}, fmt.Errorf("graph: %s#%d references later node %d", n.Kind, n.ID, id)
				}
				return Shape{}, fmt.Errorf("graph: %s#%d bad input id %d", n.Kind, n.ID, id)
			}
			return g.Nodes[id].Out, nil
		}
		switch n.Kind {
		case OpInput:
			if n.Out.Elems() <= 0 {
				return fmt.Errorf("graph: input %q without shape", n.Name)
			}
		case OpConv2D:
			s, err := in(0)
			if err != nil {
				return err
			}
			a := n.Conv
			if a.Kernel <= 0 || a.Stride <= 0 || a.OutC <= 0 {
				return fmt.Errorf("graph: conv %q bad attrs %+v", n.Name, a)
			}
			oh := (s.H+2*a.Pad-a.Kernel)/a.Stride + 1
			ow := (s.W+2*a.Pad-a.Kernel)/a.Stride + 1
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("graph: conv %q output %dx%d from input %v", n.Name, oh, ow, s)
			}
			n.Out = Shape{N: s.N, C: a.OutC, H: oh, W: ow}
		case OpDense:
			s, err := in(0)
			if err != nil {
				return err
			}
			if s.H != 1 || s.W != 1 {
				return fmt.Errorf("graph: dense %q needs flattened input, got %v", n.Name, s)
			}
			n.Out = Shape{N: s.N, C: n.Dense.Out, H: 1, W: 1}
		case OpReLU, OpBatchNorm, OpSoftmax, OpLRN, OpDropout:
			s, err := in(0)
			if err != nil {
				return err
			}
			n.Out = s
		case OpMaxPool, OpAvgPool:
			s, err := in(0)
			if err != nil {
				return err
			}
			a := n.Pool
			if a.Global {
				n.Out = Shape{N: s.N, C: s.C, H: 1, W: 1}
				break
			}
			if a.Kernel <= 0 || a.Stride <= 0 {
				return fmt.Errorf("graph: pool %q bad attrs %+v", n.Name, a)
			}
			oh := (s.H+2*a.Pad-a.Kernel)/a.Stride + 1
			ow := (s.W+2*a.Pad-a.Kernel)/a.Stride + 1
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("graph: pool %q output %dx%d", n.Name, oh, ow)
			}
			n.Out = Shape{N: s.N, C: s.C, H: oh, W: ow}
		case OpAdd:
			a, err := in(0)
			if err != nil {
				return err
			}
			c, err := in(1)
			if err != nil {
				return err
			}
			if a != c {
				return fmt.Errorf("graph: add %q operand shapes %v vs %v", n.Name, a, c)
			}
			n.Out = a
		case OpFlatten:
			s, err := in(0)
			if err != nil {
				return err
			}
			n.Out = Shape{N: s.N, C: s.C * s.H * s.W, H: 1, W: 1}
		default:
			return fmt.Errorf("graph: unknown op %v", n.Kind)
		}
	}
	return nil
}

// NumOps counts nodes of a kind.
func (g *Graph) NumOps(kind OpKind) int {
	c := 0
	for _, n := range g.Nodes {
		if n.Kind == kind {
			c++
		}
	}
	return c
}

// String renders the graph one op per line.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s:\n", g.Name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "  %%%-3d %-10s %-12s -> %s %v\n", n.ID, n.Name, n.Kind, n.Out, n.Inputs)
	}
	return sb.String()
}
