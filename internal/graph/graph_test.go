package graph

import (
	"strings"
	"testing"

	"github.com/neuralcompile/glimpse/internal/workload"
)

func TestShapeInferenceBasics(t *testing.T) {
	b := NewBuilder("toy")
	x := b.Input("data", Shape{N: 1, C: 3, H: 8, W: 8})
	x = b.Conv2D("c1", x, ConvAttrs{OutC: 16, Kernel: 3, Stride: 1, Pad: 1})
	x = b.ReLU(x)
	x = b.MaxPool(x, PoolAttrs{Kernel: 2, Stride: 2})
	x = b.Flatten(x)
	x = b.Dense("fc", x, 10)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []Shape{
		{1, 3, 8, 8}, {1, 16, 8, 8}, {1, 16, 8, 8}, {1, 16, 4, 4}, {1, 256, 1, 1}, {1, 10, 1, 1},
	}
	for i, w := range want {
		if g.Nodes[i].Out != w {
			t.Fatalf("node %d shape %v want %v", i, g.Nodes[i].Out, w)
		}
	}
}

func TestShapeInferenceErrors(t *testing.T) {
	// Dense on unflattened input.
	b := NewBuilder("bad")
	x := b.Input("data", Shape{N: 1, C: 3, H: 8, W: 8})
	b.Dense("fc", x, 10)
	if _, err := b.Build(); err == nil {
		t.Fatal("dense on 4-D input accepted")
	}
	// Mismatched residual add.
	b2 := NewBuilder("bad2")
	x = b2.Input("data", Shape{N: 1, C: 3, H: 8, W: 8})
	y := b2.Conv2D("c", x, ConvAttrs{OutC: 8, Kernel: 3, Stride: 1, Pad: 1})
	b2.Add(x, y)
	if _, err := b2.Build(); err == nil {
		t.Fatal("mismatched add accepted")
	}
	// Conv collapsing to non-positive output.
	b3 := NewBuilder("bad3")
	x = b3.Input("data", Shape{N: 1, C: 3, H: 2, W: 2})
	b3.Conv2D("c", x, ConvAttrs{OutC: 8, Kernel: 5, Stride: 1, Pad: 0})
	if _, err := b3.Build(); err == nil {
		t.Fatal("underflowing conv accepted")
	}
}

func TestBuildModelUnknown(t *testing.T) {
	if _, err := BuildModel("lenet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestExtractionMatchesWorkloadTables is the load-bearing check: task
// extraction from the real graphs reproduces the hand-audited tables in
// internal/workload exactly (shapes, order, kinds, and repeat counts).
func TestExtractionMatchesWorkloadTables(t *testing.T) {
	for _, model := range workload.Models {
		g, err := BuildModel(model)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExtractTasks(g)
		if err != nil {
			t.Fatal(err)
		}
		want := workload.MustTasks(model)
		if len(got) != len(want) {
			t.Fatalf("%s: extracted %d tasks want %d", model, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s task %d:\n  graph:    %+v\n  workload: %+v", model, i+1, got[i], want[i])
			}
		}
	}
}

func TestGraphOpCensus(t *testing.T) {
	cases := []struct {
		model       string
		convs, fcs  int
		adds, pools int
	}{
		{"alexnet", 5, 3, 0, 3},
		{"vgg-16", 13, 3, 0, 5},
		{"resnet-18", 21, 1, 8, 1}, // 1 stem + 16 block convs + 4 projections
	}
	for _, c := range cases {
		g, err := BuildModel(c.model)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.NumOps(OpConv2D); got != c.convs {
			t.Errorf("%s convs = %d want %d", c.model, got, c.convs)
		}
		if got := g.NumOps(OpDense); got != c.fcs {
			t.Errorf("%s dense = %d want %d", c.model, got, c.fcs)
		}
		if got := g.NumOps(OpAdd); got != c.adds {
			t.Errorf("%s adds = %d want %d", c.model, got, c.adds)
		}
		if got := g.NumOps(OpMaxPool); got != c.pools {
			t.Errorf("%s max pools = %d want %d", c.model, got, c.pools)
		}
	}
}

func TestResNetClassifierShape(t *testing.T) {
	g, err := BuildResNet18()
	if err != nil {
		t.Fatal(err)
	}
	out := g.Nodes[g.Output].Out
	if out != (Shape{N: 1, C: 1000, H: 1, W: 1}) {
		t.Fatalf("output shape %v", out)
	}
}

func TestVGGFlattenFeeds25088(t *testing.T) {
	g, err := BuildVGG16()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.Kind == OpDense && n.Name == "fc6" {
			in := g.Nodes[n.Inputs[0]].Out
			if in.C != 25088 {
				t.Fatalf("fc6 input C = %d want 25088", in.C)
			}
			return
		}
	}
	t.Fatal("fc6 not found")
}

func TestModelFLOPsWholeNetwork(t *testing.T) {
	// Whole-network FLOPs (with layer repeats) are the published ballpark:
	// AlexNet ≈1.4G, ResNet-18 ≈3.6G, VGG-16 ≈31G (conv+fc MACs ×2).
	cases := []struct {
		model  string
		lo, hi float64 // GFLOP bounds
	}{
		{"alexnet", 1.0, 2.2},
		{"resnet-18", 3.0, 4.5},
		{"vgg-16", 28, 34},
	}
	for _, c := range cases {
		g, err := BuildModel(c.model)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ModelFLOPs(g)
		if err != nil {
			t.Fatal(err)
		}
		gf := float64(f) / 1e9
		if gf < c.lo || gf > c.hi {
			t.Errorf("%s FLOPs = %.2f GF want in [%g, %g]", c.model, gf, c.lo, c.hi)
		}
	}
}

func TestExtractNoTunableOps(t *testing.T) {
	b := NewBuilder("empty")
	x := b.Input("data", Shape{N: 1, C: 3, H: 4, W: 4})
	b.ReLU(x)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractTasks(g); err == nil {
		t.Fatal("graph without tunable ops accepted")
	}
}

func TestGraphString(t *testing.T) {
	g, err := BuildAlexNet()
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	for _, frag := range []string{"alexnet", "conv1", "dense", "softmax"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String missing %q", frag)
		}
	}
}
