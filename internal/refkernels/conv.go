// Package refkernels provides reference CPU implementations of the three
// kernel templates the compiler tunes — direct convolution, Winograd
// F(2×2, 3×3) convolution, and dense — so the claim underlying the whole
// search space ("these templates compute the same operator") is executable
// and tested, not assumed. The Winograd path implements the real
// Cook–Toom transform matrices, the algorithm whose 2.25× multiply
// reduction the GPU simulator models.
package refkernels

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/workload"
)

// Tensor4 is an NCHW float64 tensor.
type Tensor4 struct {
	N, C, H, W int
	Data       []float64
}

// NewTensor4 allocates a zero tensor.
func NewTensor4(n, c, h, w int) *Tensor4 {
	return &Tensor4{N: n, C: c, H: h, W: w, Data: make([]float64, n*c*h*w)}
}

// At returns the element (n, c, y, x).
func (t *Tensor4) At(n, c, y, x int) float64 {
	return t.Data[((n*t.C+c)*t.H+y)*t.W+x]
}

// Set stores v at (n, c, y, x).
func (t *Tensor4) Set(n, c, y, x int, v float64) {
	t.Data[((n*t.C+c)*t.H+y)*t.W+x] = v
}

// atPadded reads with zero padding outside bounds.
func (t *Tensor4) atPadded(n, c, y, x int) float64 {
	if y < 0 || y >= t.H || x < 0 || x >= t.W {
		return 0
	}
	return t.At(n, c, y, x)
}

// Conv2DDirect computes a direct convolution of input (N,CI,H,W) with
// weights (CO,CI,K,K) under the given shape's stride/pad.
func Conv2DDirect(shape workload.ConvShape, in, w *Tensor4) (*Tensor4, error) {
	if err := checkConvOperands(shape, in, w); err != nil {
		return nil, err
	}
	out := NewTensor4(shape.Batch, shape.OutC, shape.OutH(), shape.OutW())
	for n := 0; n < out.N; n++ {
		for co := 0; co < out.C; co++ {
			for oy := 0; oy < out.H; oy++ {
				for ox := 0; ox < out.W; ox++ {
					acc := 0.0
					for ci := 0; ci < shape.InC; ci++ {
						for ky := 0; ky < shape.Kernel; ky++ {
							for kx := 0; kx < shape.Kernel; kx++ {
								iy := oy*shape.Stride - shape.Pad + ky
								ix := ox*shape.Stride - shape.Pad + kx
								acc += in.atPadded(n, ci, iy, ix) * w.At(co, ci, ky, kx)
							}
						}
					}
					out.Set(n, co, oy, ox, acc)
				}
			}
		}
	}
	return out, nil
}

// Dense computes y = W·x for weights (Out, In) stored as a Tensor4 with
// H = W = 1 conventions: weights (Out, In, 1, 1), input (N, In, 1, 1).
func Dense(shape workload.DenseShape, in, w *Tensor4) (*Tensor4, error) {
	if in.N != shape.Batch || in.C != shape.In || in.H != 1 || in.W != 1 {
		return nil, fmt.Errorf("refkernels: dense input %dx%dx%dx%d vs shape %+v", in.N, in.C, in.H, in.W, shape)
	}
	if w.N != shape.Out || w.C != shape.In {
		return nil, fmt.Errorf("refkernels: dense weights %dx%d vs shape %+v", w.N, w.C, shape)
	}
	out := NewTensor4(shape.Batch, shape.Out, 1, 1)
	for n := 0; n < shape.Batch; n++ {
		for o := 0; o < shape.Out; o++ {
			acc := 0.0
			for i := 0; i < shape.In; i++ {
				acc += w.At(o, i, 0, 0) * in.At(n, i, 0, 0)
			}
			out.Set(n, o, 0, 0, acc)
		}
	}
	return out, nil
}

func checkConvOperands(shape workload.ConvShape, in, w *Tensor4) error {
	if in.N != shape.Batch || in.C != shape.InC || in.H != shape.H || in.W != shape.W {
		return fmt.Errorf("refkernels: input %dx%dx%dx%d vs shape %+v", in.N, in.C, in.H, in.W, shape)
	}
	if w.N != shape.OutC || w.C != shape.InC || w.H != shape.Kernel || w.W != shape.Kernel {
		return fmt.Errorf("refkernels: weights %dx%dx%dx%d vs shape %+v", w.N, w.C, w.H, w.W, shape)
	}
	return nil
}
