package refkernels

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func randomTensor(g *rng.RNG, n, c, h, w int) *Tensor4 {
	t := NewTensor4(n, c, h, w)
	for i := range t.Data {
		t.Data[i] = g.NormFloat64()
	}
	return t
}

func TestDirectConvKnownValues(t *testing.T) {
	// 1×1×3×3 input, single 3×3 averaging-ish filter, pad 1.
	shape := workload.ConvShape{Batch: 1, InC: 1, OutC: 1, H: 3, W: 3, Kernel: 3, Stride: 1, Pad: 1}
	in := NewTensor4(1, 1, 3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			in.Set(0, 0, y, x, float64(y*3+x+1)) // 1..9
		}
	}
	w := NewTensor4(1, 1, 3, 3)
	w.Set(0, 0, 1, 1, 1) // identity kernel
	out, err := Conv2DDirect(shape, in, w)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if got, want := out.At(0, 0, y, x), in.At(0, 0, y, x); got != want {
				t.Fatalf("identity conv at (%d,%d) = %g want %g", y, x, got, want)
			}
		}
	}
}

func TestDirectConvStrideAndPad(t *testing.T) {
	shape := workload.ConvShape{Batch: 1, InC: 1, OutC: 1, H: 4, W: 4, Kernel: 3, Stride: 2, Pad: 1}
	in := NewTensor4(1, 1, 4, 4)
	for i := range in.Data {
		in.Data[i] = 1
	}
	w := NewTensor4(1, 1, 3, 3)
	for i := range w.Data {
		w.Data[i] = 1
	}
	out, err := Conv2DDirect(shape, in, w)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 2 || out.W != 2 {
		t.Fatalf("out dims %dx%d", out.H, out.W)
	}
	// Top-left tap covers a 2×2 valid region (corner), value 4.
	if got := out.At(0, 0, 0, 0); got != 4 {
		t.Fatalf("corner = %g want 4", got)
	}
}

func TestConvOperandValidation(t *testing.T) {
	shape := workload.ConvShape{Batch: 1, InC: 2, OutC: 3, H: 4, W: 4, Kernel: 3, Stride: 1, Pad: 1}
	g := rng.New(1)
	in := randomTensor(g, 1, 2, 4, 4)
	badW := randomTensor(g, 3, 1, 3, 3) // wrong CI
	if _, err := Conv2DDirect(shape, in, badW); err == nil {
		t.Fatal("bad weights accepted")
	}
	badIn := randomTensor(g, 1, 2, 5, 4)
	w := randomTensor(g, 3, 2, 3, 3)
	if _, err := Conv2DDirect(shape, badIn, w); err == nil {
		t.Fatal("bad input accepted")
	}
}

// TestWinogradMatchesDirect is the algebraic heart: the Winograd template
// computes exactly the same function as direct convolution.
func TestWinogradMatchesDirect(t *testing.T) {
	g := rng.New(2)
	shapes := []workload.ConvShape{
		{Batch: 1, InC: 3, OutC: 4, H: 8, W: 8, Kernel: 3, Stride: 1, Pad: 1},
		{Batch: 2, InC: 2, OutC: 2, H: 7, W: 5, Kernel: 3, Stride: 1, Pad: 1}, // odd dims: tile clipping
		{Batch: 1, InC: 1, OutC: 1, H: 6, W: 6, Kernel: 3, Stride: 1, Pad: 0}, // no padding
	}
	for _, shape := range shapes {
		in := randomTensor(g, shape.Batch, shape.InC, shape.H, shape.W)
		w := randomTensor(g, shape.OutC, shape.InC, 3, 3)
		direct, err := Conv2DDirect(shape, in, w)
		if err != nil {
			t.Fatal(err)
		}
		wino, _, err := Conv2DWinograd(shape, in, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct.Data) != len(wino.Data) {
			t.Fatalf("%+v: size mismatch", shape)
		}
		for i := range direct.Data {
			if math.Abs(direct.Data[i]-wino.Data[i]) > 1e-9 {
				t.Fatalf("%+v: element %d: direct %g vs winograd %g", shape, i, direct.Data[i], wino.Data[i])
			}
		}
	}
}

// TestWinogradMatchesDirectProperty fuzzes shapes.
func TestWinogradMatchesDirectProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := rng.New(seed)
		shape := workload.ConvShape{
			Batch: 1, InC: 1 + g.Intn(3), OutC: 1 + g.Intn(3),
			H: 4 + g.Intn(6), W: 4 + g.Intn(6), Kernel: 3, Stride: 1, Pad: g.Intn(2),
		}
		in := randomTensor(g, shape.Batch, shape.InC, shape.H, shape.W)
		w := randomTensor(g, shape.OutC, shape.InC, 3, 3)
		direct, err := Conv2DDirect(shape, in, w)
		if err != nil {
			return false
		}
		wino, _, err := Conv2DWinograd(shape, in, w)
		if err != nil {
			return false
		}
		for i := range direct.Data {
			if math.Abs(direct.Data[i]-wino.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWinogradMultiplyReduction pins the 2.25× arithmetic saving the GPU
// simulator's winograd model is built on.
func TestWinogradMultiplyReduction(t *testing.T) {
	shape := workload.ConvShape{Batch: 1, InC: 8, OutC: 8, H: 16, W: 16, Kernel: 3, Stride: 1, Pad: 1}
	g := rng.New(3)
	in := randomTensor(g, 1, 8, 16, 16)
	w := randomTensor(g, 8, 8, 3, 3)
	_, stats, err := Conv2DWinograd(shape, in, w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(stats.DirectMuls) / float64(stats.ElementwiseMuls)
	// 36 direct multiplies per 2×2 tile vs 16 elementwise = 2.25 exactly
	// when output dims are even.
	if math.Abs(ratio-2.25) > 1e-12 {
		t.Fatalf("multiply reduction = %g want 2.25", ratio)
	}
}

func TestWinogradRejectsWrongShape(t *testing.T) {
	g := rng.New(4)
	shape := workload.ConvShape{Batch: 1, InC: 1, OutC: 1, H: 8, W: 8, Kernel: 5, Stride: 1, Pad: 2}
	in := randomTensor(g, 1, 1, 8, 8)
	w := randomTensor(g, 1, 1, 5, 5)
	if _, _, err := Conv2DWinograd(shape, in, w); err == nil {
		t.Fatal("5x5 accepted by F(2x2,3x3)")
	}
	shape2 := workload.ConvShape{Batch: 1, InC: 1, OutC: 1, H: 8, W: 8, Kernel: 3, Stride: 2, Pad: 1}
	w3 := randomTensor(g, 1, 1, 3, 3)
	if _, _, err := Conv2DWinograd(shape2, in, w3); err == nil {
		t.Fatal("stride 2 accepted")
	}
}

func TestDenseMatchesManual(t *testing.T) {
	shape := workload.DenseShape{Batch: 1, In: 3, Out: 2}
	in := NewTensor4(1, 3, 1, 1)
	in.Data = []float64{1, 2, 3}
	w := NewTensor4(2, 3, 1, 1)
	w.Data = []float64{1, 0, -1, 0.5, 0.5, 0.5}
	out, err := Dense(shape, in, w)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != -2 || out.At(0, 1, 0, 0) != 3 {
		t.Fatalf("dense = %v", out.Data)
	}
	// Validation.
	if _, err := Dense(shape, w, in); err == nil {
		t.Fatal("swapped operands accepted")
	}
}

// TestDenseEqualsConv1x1: a 1×1 convolution over a 1×1 image is a dense
// layer — the templates agree where they overlap.
func TestDenseEqualsConv1x1(t *testing.T) {
	g := rng.New(5)
	const inC, outC = 5, 4
	convShape := workload.ConvShape{Batch: 1, InC: inC, OutC: outC, H: 1, W: 1, Kernel: 1, Stride: 1, Pad: 0}
	denseShape := workload.DenseShape{Batch: 1, In: inC, Out: outC}
	in := randomTensor(g, 1, inC, 1, 1)
	w := randomTensor(g, outC, inC, 1, 1)
	conv, err := Conv2DDirect(convShape, in, w)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Dense(denseShape, in, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range conv.Data {
		if math.Abs(conv.Data[i]-dense.Data[i]) > 1e-12 {
			t.Fatalf("conv1x1 %g vs dense %g at %d", conv.Data[i], dense.Data[i], i)
		}
	}
}

func BenchmarkDirectConv(b *testing.B) {
	shape := workload.ConvShape{Batch: 1, InC: 16, OutC: 16, H: 16, W: 16, Kernel: 3, Stride: 1, Pad: 1}
	g := rng.New(6)
	in := randomTensor(g, 1, 16, 16, 16)
	w := randomTensor(g, 16, 16, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2DDirect(shape, in, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWinogradConv(b *testing.B) {
	shape := workload.ConvShape{Batch: 1, InC: 16, OutC: 16, H: 16, W: 16, Kernel: 3, Stride: 1, Pad: 1}
	g := rng.New(7)
	in := randomTensor(g, 1, 16, 16, 16)
	w := randomTensor(g, 16, 16, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Conv2DWinograd(shape, in, w); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWinograd4MatchesDirect verifies the larger F(4×4, 3×3) tile variant
// computes the same function (within its looser numerical conditioning).
func TestWinograd4MatchesDirect(t *testing.T) {
	g := rng.New(8)
	shapes := []workload.ConvShape{
		{Batch: 1, InC: 3, OutC: 4, H: 12, W: 12, Kernel: 3, Stride: 1, Pad: 1},
		{Batch: 1, InC: 2, OutC: 2, H: 9, W: 7, Kernel: 3, Stride: 1, Pad: 1}, // clipping
		{Batch: 2, InC: 1, OutC: 1, H: 10, W: 10, Kernel: 3, Stride: 1, Pad: 0},
	}
	for _, shape := range shapes {
		in := randomTensor(g, shape.Batch, shape.InC, shape.H, shape.W)
		w := randomTensor(g, shape.OutC, shape.InC, 3, 3)
		direct, err := Conv2DDirect(shape, in, w)
		if err != nil {
			t.Fatal(err)
		}
		wino, _, err := Conv2DWinograd4(shape, in, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct.Data {
			if math.Abs(direct.Data[i]-wino.Data[i]) > 1e-8 {
				t.Fatalf("%+v: element %d: direct %g vs winograd4 %g", shape, i, direct.Data[i], wino.Data[i])
			}
		}
	}
}

// TestWinograd4MultiplyReduction pins the 4× saving of the larger tile.
func TestWinograd4MultiplyReduction(t *testing.T) {
	shape := workload.ConvShape{Batch: 1, InC: 4, OutC: 4, H: 16, W: 16, Kernel: 3, Stride: 1, Pad: 1}
	g := rng.New(9)
	in := randomTensor(g, 1, 4, 16, 16)
	w := randomTensor(g, 4, 4, 3, 3)
	_, stats, err := Conv2DWinograd4(shape, in, w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(stats.DirectMuls) / float64(stats.ElementwiseMuls)
	if math.Abs(ratio-4) > 1e-12 {
		t.Fatalf("multiply reduction = %g want 4", ratio)
	}
}

func TestWinograd4RejectsWrongShape(t *testing.T) {
	g := rng.New(10)
	shape := workload.ConvShape{Batch: 1, InC: 1, OutC: 1, H: 8, W: 8, Kernel: 3, Stride: 2, Pad: 1}
	in := randomTensor(g, 1, 1, 8, 8)
	w := randomTensor(g, 1, 1, 3, 3)
	if _, _, err := Conv2DWinograd4(shape, in, w); err == nil {
		t.Fatal("stride 2 accepted")
	}
}
