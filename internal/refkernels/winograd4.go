package refkernels

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/workload"
)

// Winograd F(4×4, 3×3) transform matrices (Lavin & Gray, 2016): 6×6 input
// tiles produce 4×4 output tiles from 36 elementwise multiplies where a
// direct convolution needs 144 — a 4× reduction, at the cost of larger
// transforms and worse numerical conditioning. TVM's CUDA backend offers
// both tile sizes; this is the larger one.
var (
	wino4BT = [6][6]float64{
		{4, 0, -5, 0, 1, 0},
		{0, -4, -4, 1, 1, 0},
		{0, 4, -4, -1, 1, 0},
		{0, -2, -1, 2, 1, 0},
		{0, 2, -1, -2, 1, 0},
		{0, 4, 0, -5, 0, 1},
	}
	wino4G = [6][3]float64{
		{1.0 / 4, 0, 0},
		{-1.0 / 6, -1.0 / 6, -1.0 / 6},
		{-1.0 / 6, 1.0 / 6, -1.0 / 6},
		{1.0 / 24, 1.0 / 12, 1.0 / 6},
		{1.0 / 24, -1.0 / 12, 1.0 / 6},
		{0, 0, 1},
	}
	wino4AT = [4][6]float64{
		{1, 1, 1, 1, 1, 0},
		{0, 1, -1, 2, -2, 0},
		{0, 1, 1, 4, 4, 0},
		{0, 1, -1, 8, -8, 1},
	}
)

// Conv2DWinograd4 computes the same stride-1 3×3 convolution as
// Conv2DDirect using Winograd F(4×4, 3×3).
func Conv2DWinograd4(shape workload.ConvShape, in, w *Tensor4) (*Tensor4, *WinogradStats, error) {
	if err := checkConvOperands(shape, in, w); err != nil {
		return nil, nil, err
	}
	if shape.Kernel != 3 || shape.Stride != 1 {
		return nil, nil, fmt.Errorf("refkernels: winograd F(4x4,3x3) needs 3x3 stride-1, got k=%d s=%d",
			shape.Kernel, shape.Stride)
	}
	outH, outW := shape.OutH(), shape.OutW()
	out := NewTensor4(shape.Batch, shape.OutC, outH, outW)
	stats := &WinogradStats{}
	tilesY := (outH + 3) / 4
	tilesX := (outW + 3) / 4

	// Pre-transform filters: U = G g Gᵀ (6×6 per channel pair).
	u := make([][][6][6]float64, shape.OutC)
	for co := 0; co < shape.OutC; co++ {
		u[co] = make([][6][6]float64, shape.InC)
		for ci := 0; ci < shape.InC; ci++ {
			var g [3][3]float64
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					g[ky][kx] = w.At(co, ci, ky, kx)
				}
			}
			u[co][ci] = filterTransform4(g)
		}
	}

	for n := 0; n < shape.Batch; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				v := make([][6][6]float64, shape.InC)
				for ci := 0; ci < shape.InC; ci++ {
					var d [6][6]float64
					for dy := 0; dy < 6; dy++ {
						for dx := 0; dx < 6; dx++ {
							iy := ty*4 - shape.Pad + dy
							ix := tx*4 - shape.Pad + dx
							d[dy][dx] = in.atPadded(n, ci, iy, ix)
						}
					}
					v[ci] = inputTransform4(d)
				}
				for co := 0; co < shape.OutC; co++ {
					var m [6][6]float64
					for ci := 0; ci < shape.InC; ci++ {
						for i := 0; i < 6; i++ {
							for j := 0; j < 6; j++ {
								m[i][j] += u[co][ci][i][j] * v[ci][i][j]
							}
						}
						stats.ElementwiseMuls += 36
					}
					y := outputTransform4(m)
					for dy := 0; dy < 4; dy++ {
						for dx := 0; dx < 4; dx++ {
							oy, ox := ty*4+dy, tx*4+dx
							if oy < outH && ox < outW {
								out.Set(n, co, oy, ox, y[dy][dx])
							}
						}
					}
				}
			}
		}
	}
	stats.DirectMuls = int64(shape.Batch) * int64(outH) * int64(outW) *
		int64(shape.OutC) * int64(shape.InC) * 9
	return out, stats, nil
}

func filterTransform4(g [3][3]float64) [6][6]float64 {
	var tmp [6][3]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				tmp[i][j] += wino4G[i][k] * g[k][j]
			}
		}
	}
	var out [6][6]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += tmp[i][k] * wino4G[j][k]
			}
		}
	}
	return out
}

func inputTransform4(d [6][6]float64) [6][6]float64 {
	var tmp, out [6][6]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 6; k++ {
				tmp[i][j] += wino4BT[i][k] * d[k][j]
			}
		}
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 6; k++ {
				out[i][j] += tmp[i][k] * wino4BT[j][k]
			}
		}
	}
	return out
}

func outputTransform4(m [6][6]float64) [4][4]float64 {
	var tmp [4][6]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 6; k++ {
				tmp[i][j] += wino4AT[i][k] * m[k][j]
			}
		}
	}
	var out [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 6; k++ {
				out[i][j] += tmp[i][k] * wino4AT[j][k]
			}
		}
	}
	return out
}
