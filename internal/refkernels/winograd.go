package refkernels

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/workload"
)

// Winograd F(2×2, 3×3) transform matrices (Cook–Toom / Lavin & Gray):
//
//	Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//
// with d a 4×4 input tile, g the 3×3 filter, Y the 2×2 output tile.
var (
	winoBT = [4][4]float64{
		{1, 0, -1, 0},
		{0, 1, 1, 0},
		{0, -1, 1, 0},
		{0, 1, 0, -1},
	}
	winoG = [4][3]float64{
		{1, 0, 0},
		{0.5, 0.5, 0.5},
		{0.5, -0.5, 0.5},
		{0, 0, 1},
	}
	winoAT = [2][4]float64{
		{1, 1, 1, 0},
		{0, 1, -1, -1},
	}
)

// WinogradStats reports the arithmetic actually performed, so the 2.25×
// multiply reduction the paper's schedule exploits is checkable.
type WinogradStats struct {
	ElementwiseMuls int64 // multiplies in the transformed domain
	DirectMuls      int64 // multiplies a direct convolution would need
}

// Conv2DWinograd computes the same convolution as Conv2DDirect for
// stride-1 3×3 kernels using Winograd F(2×2, 3×3).
func Conv2DWinograd(shape workload.ConvShape, in, w *Tensor4) (*Tensor4, *WinogradStats, error) {
	if err := checkConvOperands(shape, in, w); err != nil {
		return nil, nil, err
	}
	if shape.Kernel != 3 || shape.Stride != 1 {
		return nil, nil, fmt.Errorf("refkernels: winograd F(2x2,3x3) needs 3x3 stride-1, got k=%d s=%d",
			shape.Kernel, shape.Stride)
	}
	outH, outW := shape.OutH(), shape.OutW()
	out := NewTensor4(shape.Batch, shape.OutC, outH, outW)
	stats := &WinogradStats{}
	tilesY := (outH + 1) / 2
	tilesX := (outW + 1) / 2

	// Pre-transform all filters: U[co][ci] = G g Gᵀ (4×4 each).
	u := make([][][4][4]float64, shape.OutC)
	for co := 0; co < shape.OutC; co++ {
		u[co] = make([][4][4]float64, shape.InC)
		for ci := 0; ci < shape.InC; ci++ {
			var g [3][3]float64
			for ky := 0; ky < 3; ky++ {
				for kx := 0; kx < 3; kx++ {
					g[ky][kx] = w.At(co, ci, ky, kx)
				}
			}
			u[co][ci] = filterTransform(g)
		}
	}

	for n := 0; n < shape.Batch; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				// Gather the transformed input tile per channel once.
				v := make([][4][4]float64, shape.InC)
				for ci := 0; ci < shape.InC; ci++ {
					var d [4][4]float64
					for dy := 0; dy < 4; dy++ {
						for dx := 0; dx < 4; dx++ {
							iy := ty*2 - shape.Pad + dy
							ix := tx*2 - shape.Pad + dx
							d[dy][dx] = in.atPadded(n, ci, iy, ix)
						}
					}
					v[ci] = inputTransform(d)
				}
				for co := 0; co < shape.OutC; co++ {
					var m [4][4]float64
					for ci := 0; ci < shape.InC; ci++ {
						for i := 0; i < 4; i++ {
							for j := 0; j < 4; j++ {
								m[i][j] += u[co][ci][i][j] * v[ci][i][j]
							}
						}
						stats.ElementwiseMuls += 16
					}
					y := outputTransform(m)
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							oy, ox := ty*2+dy, tx*2+dx
							if oy < outH && ox < outW {
								out.Set(n, co, oy, ox, y[dy][dx])
							}
						}
					}
				}
			}
		}
	}
	stats.DirectMuls = int64(shape.Batch) * int64(outH) * int64(outW) *
		int64(shape.OutC) * int64(shape.InC) * 9
	return out, stats, nil
}

// filterTransform computes G g Gᵀ.
func filterTransform(g [3][3]float64) [4][4]float64 {
	var tmp [4][3]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				tmp[i][j] += winoG[i][k] * g[k][j]
			}
		}
	}
	var out [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += tmp[i][k] * winoG[j][k]
			}
		}
	}
	return out
}

// inputTransform computes Bᵀ d B.
func inputTransform(d [4][4]float64) [4][4]float64 {
	var tmp, out [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				tmp[i][j] += winoBT[i][k] * d[k][j]
			}
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				out[i][j] += tmp[i][k] * winoBT[j][k]
			}
		}
	}
	return out
}

// outputTransform computes Aᵀ m A.
func outputTransform(m [4][4]float64) [2][2]float64 {
	var tmp [2][4]float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				tmp[i][j] += winoAT[i][k] * m[k][j]
			}
		}
	}
	var out [2][2]float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 4; k++ {
				out[i][j] += tmp[i][k] * winoAT[j][k]
			}
		}
	}
	return out
}
