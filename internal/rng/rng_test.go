package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 10; i++ {
		a.Float64() // consume only a
	}
	ca, cb := a.Split("child"), b.Split("child")
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatal("split stream depends on parent consumption")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	g := New(1)
	x := g.Split("a").Float64()
	y := g.Split("b").Float64()
	if x == y {
		t.Fatal("different labels produced identical first draw")
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	g := New(7)
	counts := make([]int, 3)
	weights := []float64{0, 1, 3}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[g.Categorical(weights)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %g want ≈3", ratio)
	}
}

func TestCategoricalZeroSumUniform(t *testing.T) {
	g := New(8)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[g.Categorical([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 1600 || c > 2400 {
			t.Fatalf("category %d drawn %d times; not uniform", i, c)
		}
	}
}

func TestCategoricalPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	New(1).Categorical([]float64{1, -1})
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := New(9)
	f := func(seed int64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		k := 1 + r.Intn(n)
		s := r.SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: g.r}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementAll(t *testing.T) {
	g := New(10)
	s := g.SampleWithoutReplacement(5, 10)
	if len(s) != 5 {
		t.Fatalf("len = %d want 5", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("not a permutation: %v", s)
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(11)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := g.Normal(3, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean = %g want ≈3", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %g want ≈2", std)
	}
}

func TestExponentialMean(t *testing.T) {
	g := New(12)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean = %g want ≈0.5", mean)
	}
}

func TestGumbelFinite(t *testing.T) {
	g := New(13)
	for i := 0; i < 1000; i++ {
		v := g.Gumbel()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Gumbel produced %g", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	g := New(14)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) rate = %g", frac)
	}
}
