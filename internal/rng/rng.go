// Package rng provides seeded, splittable random number generation and the
// sampling helpers used throughout the Glimpse pipeline. Every stochastic
// component in the repository draws its randomness through this package so
// that whole experiments are reproducible from a single seed.
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG wraps math/rand with deterministic splitting: Split derives an
// independent child stream from a parent seed and a label, so concurrent
// components can be seeded stably regardless of call order.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Split derives a child RNG whose stream depends only on the parent seed and
// the label, not on how much the parent has been consumed.
func (g *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", g.seed, label)
	return New(int64(h.Sum64()))
}

// Seed returns the seed this RNG was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Normal returns a normal variate with the given mean and stddev.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the first n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Categorical samples an index proportionally to the non-negative weights.
// A zero-sum weight vector falls back to a uniform draw.
func (g *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with no weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("rng: invalid weight %g at %d", w, i))
		}
		total += w
	}
	if total <= 0 {
		return g.Intn(len(weights))
	}
	u := g.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement draws k distinct indices uniformly from [0, n).
// If k >= n it returns all n indices in random order.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return g.Perm(n)
	}
	// Floyd's algorithm.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := g.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	g.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Gumbel returns a standard Gumbel variate (for softmax-without-replacement
// style sampling).
func (g *RNG) Gumbel() float64 {
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return -math.Log(-math.Log(u))
}

// Exponential returns an exponential variate with the given rate.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: non-positive rate %g", rate))
	}
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return -math.Log(u) / rate
}
