package hwspec

import (
	"encoding/json"
	"testing"
)

// futureGPU is a plausible next-generation datasheet for the tests.
func futureGPU(name string) Spec {
	s := ampere(Spec{Name: name, SMCount: 128, CoresPerSM: 128,
		BaseClockMHz: 1800, BoostClockMHz: 2400,
		MemBWGBs: 1500, MemBusWidthBits: 384, MemoryGB: 32, L2CacheKB: 65536,
		PeakGFLOPS: 2 * 128 * 128 * 2.4, TDPWatts: 450})
	return s
}

func TestValidateCatchesEachField(t *testing.T) {
	good := futureGPU("rtx-test")
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.SMCount = 0 },
		func(s *Spec) { s.BoostClockMHz = s.BaseClockMHz - 1 },
		func(s *Spec) { s.MemBWGBs = 0 },
		func(s *Spec) { s.L2CacheKB = 0 },
		func(s *Spec) { s.RegsPerSM = 0 },
		func(s *Spec) { s.WarpSize = 0 },
		func(s *Spec) { s.PeakGFLOPS = 0 },
	}
	for i, mutate := range mutations {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestRegisterAndUse(t *testing.T) {
	s := futureGPU("rtx-custom-for-test")
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	got, err := ByName(s.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.SMCount != 128 {
		t.Fatalf("registered spec mangled: %+v", got)
	}
	// Duplicate names rejected.
	if err := Register(s); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	// Registered GPUs participate in the training pool.
	found := false
	for _, p := range TrainingPool("titan-xp") {
		if p.Name == s.Name {
			found = true
		}
	}
	if !found {
		t.Fatal("custom GPU missing from training pool")
	}
}

func TestRegisterRejectsInvalid(t *testing.T) {
	bad := futureGPU("rtx-bad")
	bad.PeakGFLOPS = -1
	if err := Register(bad); err == nil {
		t.Fatal("invalid spec registered")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	s := futureGPU("rtx-json")
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v vs %+v", got, s)
	}
	if _, err := ParseSpec([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseSpec([]byte(`{"Name":"x"}`)); err == nil {
		t.Fatal("incomplete spec accepted")
	}
}
