// Package hwspec is the registry of GPU hardware specifications drawn from
// public data sheets — the raw material of the Blueprint embedding (§3.1 of
// the paper cites "List of Nvidia graphics processing units"). Each Spec
// holds the architectural fields a vendor publishes: processor counts,
// clocks, bus, cache sizes, and peak compute capacity.
package hwspec

import "fmt"

// Spec is one GPU's public datasheet, plus the per-generation
// microarchitectural limits CUDA documents (shared memory, registers,
// thread caps) that launch validity depends on.
type Spec struct {
	Name       string
	Generation string // Pascal, Volta, Turing, Ampere
	Gencode    string // sm_XX

	SMCount            int
	CoresPerSM         int
	BaseClockMHz       int
	BoostClockMHz      int
	MemBWGBs           float64
	MemBusWidthBits    int
	MemoryGB           int
	L2CacheKB          int
	SharedMemPerSMKB   int
	MaxSmemPerBlockKB  int
	RegsPerSM          int
	MaxThreadsPerSM    int
	MaxThreadsPerBlock int
	WarpSize           int
	PeakGFLOPS         float64
	TDPWatts           int
	ComputeCapMajor    int
	ComputeCapMinor    int
}

// CUDACores returns the total FP32 lane count.
func (s Spec) CUDACores() int { return s.SMCount * s.CoresPerSM }

// featureNames lists the Blueprint's raw feature dimensions, in order.
var featureNames = []string{
	"sm_count", "cores_per_sm", "base_clock_mhz", "boost_clock_mhz",
	"mem_bw_gbs", "mem_bus_width_bits", "memory_gb", "l2_cache_kb",
	"shared_mem_per_sm_kb", "max_smem_per_block_kb", "regs_per_sm",
	"max_threads_per_sm", "max_threads_per_block", "warp_size",
	"peak_gflops", "tdp_watts", "compute_cap_major", "compute_cap_minor",
}

// FeatureNames returns the names of the raw datasheet feature vector.
func FeatureNames() []string { return append([]string(nil), featureNames...) }

// FeatureDim is the length of FeatureVector.
const FeatureDim = 18

// FeatureVector flattens the spec into the raw numeric vector the Blueprint
// embedding compresses.
func (s Spec) FeatureVector() []float64 {
	return []float64{
		float64(s.SMCount), float64(s.CoresPerSM), float64(s.BaseClockMHz),
		float64(s.BoostClockMHz), s.MemBWGBs, float64(s.MemBusWidthBits),
		float64(s.MemoryGB), float64(s.L2CacheKB), float64(s.SharedMemPerSMKB),
		float64(s.MaxSmemPerBlockKB), float64(s.RegsPerSM),
		float64(s.MaxThreadsPerSM), float64(s.MaxThreadsPerBlock),
		float64(s.WarpSize), s.PeakGFLOPS, float64(s.TDPWatts),
		float64(s.ComputeCapMajor), float64(s.ComputeCapMinor),
	}
}

// pascal, turing, ampere, volta fill the per-generation CUDA limits.
func pascal(s Spec) Spec {
	s.Generation, s.Gencode = "Pascal", "sm_61"
	s.SharedMemPerSMKB, s.MaxSmemPerBlockKB = 96, 48
	s.RegsPerSM, s.MaxThreadsPerSM, s.MaxThreadsPerBlock, s.WarpSize = 65536, 2048, 1024, 32
	s.ComputeCapMajor, s.ComputeCapMinor = 6, 1
	return s
}

func volta(s Spec) Spec {
	s.Generation, s.Gencode = "Volta", "sm_70"
	s.SharedMemPerSMKB, s.MaxSmemPerBlockKB = 96, 96
	s.RegsPerSM, s.MaxThreadsPerSM, s.MaxThreadsPerBlock, s.WarpSize = 65536, 2048, 1024, 32
	s.ComputeCapMajor, s.ComputeCapMinor = 7, 0
	return s
}

func turing(s Spec) Spec {
	s.Generation, s.Gencode = "Turing", "sm_75"
	s.SharedMemPerSMKB, s.MaxSmemPerBlockKB = 64, 64
	s.RegsPerSM, s.MaxThreadsPerSM, s.MaxThreadsPerBlock, s.WarpSize = 65536, 1024, 1024, 32
	s.ComputeCapMajor, s.ComputeCapMinor = 7, 5
	return s
}

func ampere(s Spec) Spec {
	s.Generation, s.Gencode = "Ampere", "sm_86"
	s.SharedMemPerSMKB, s.MaxSmemPerBlockKB = 128, 100
	s.RegsPerSM, s.MaxThreadsPerSM, s.MaxThreadsPerBlock, s.WarpSize = 65536, 1536, 1024, 32
	s.ComputeCapMajor, s.ComputeCapMinor = 8, 6
	return s
}

// registry holds every GPU we model, targets and training pool alike.
// Figures follow the public data sheets.
var registry = []Spec{
	pascal(Spec{Name: "gtx-1070", SMCount: 15, CoresPerSM: 128, BaseClockMHz: 1506, BoostClockMHz: 1683,
		MemBWGBs: 256, MemBusWidthBits: 256, MemoryGB: 8, L2CacheKB: 2048, PeakGFLOPS: 6463, TDPWatts: 150}),
	pascal(Spec{Name: "gtx-1080", SMCount: 20, CoresPerSM: 128, BaseClockMHz: 1607, BoostClockMHz: 1733,
		MemBWGBs: 320, MemBusWidthBits: 256, MemoryGB: 8, L2CacheKB: 2048, PeakGFLOPS: 8873, TDPWatts: 180}),
	pascal(Spec{Name: "gtx-1080-ti", SMCount: 28, CoresPerSM: 128, BaseClockMHz: 1480, BoostClockMHz: 1582,
		MemBWGBs: 484, MemBusWidthBits: 352, MemoryGB: 11, L2CacheKB: 2816, PeakGFLOPS: 11340, TDPWatts: 250}),
	pascal(Spec{Name: "titan-xp", SMCount: 30, CoresPerSM: 128, BaseClockMHz: 1405, BoostClockMHz: 1582,
		MemBWGBs: 547, MemBusWidthBits: 384, MemoryGB: 12, L2CacheKB: 3072, PeakGFLOPS: 12150, TDPWatts: 250}),
	volta(Spec{Name: "titan-v", SMCount: 80, CoresPerSM: 64, BaseClockMHz: 1200, BoostClockMHz: 1455,
		MemBWGBs: 653, MemBusWidthBits: 3072, MemoryGB: 12, L2CacheKB: 4608, PeakGFLOPS: 13800, TDPWatts: 250}),
	turing(Spec{Name: "rtx-2060", SMCount: 30, CoresPerSM: 64, BaseClockMHz: 1365, BoostClockMHz: 1680,
		MemBWGBs: 336, MemBusWidthBits: 192, MemoryGB: 6, L2CacheKB: 3072, PeakGFLOPS: 6451, TDPWatts: 160}),
	turing(Spec{Name: "rtx-2070", SMCount: 36, CoresPerSM: 64, BaseClockMHz: 1410, BoostClockMHz: 1620,
		MemBWGBs: 448, MemBusWidthBits: 256, MemoryGB: 8, L2CacheKB: 4096, PeakGFLOPS: 7465, TDPWatts: 175}),
	turing(Spec{Name: "rtx-2070-super", SMCount: 40, CoresPerSM: 64, BaseClockMHz: 1605, BoostClockMHz: 1770,
		MemBWGBs: 448, MemBusWidthBits: 256, MemoryGB: 8, L2CacheKB: 4096, PeakGFLOPS: 9062, TDPWatts: 215}),
	turing(Spec{Name: "rtx-2080", SMCount: 46, CoresPerSM: 64, BaseClockMHz: 1515, BoostClockMHz: 1710,
		MemBWGBs: 448, MemBusWidthBits: 256, MemoryGB: 8, L2CacheKB: 4096, PeakGFLOPS: 10068, TDPWatts: 215}),
	turing(Spec{Name: "rtx-2080-super", SMCount: 48, CoresPerSM: 64, BaseClockMHz: 1650, BoostClockMHz: 1815,
		MemBWGBs: 496, MemBusWidthBits: 256, MemoryGB: 8, L2CacheKB: 4096, PeakGFLOPS: 11151, TDPWatts: 250}),
	turing(Spec{Name: "rtx-2080-ti", SMCount: 68, CoresPerSM: 64, BaseClockMHz: 1350, BoostClockMHz: 1545,
		MemBWGBs: 616, MemBusWidthBits: 352, MemoryGB: 11, L2CacheKB: 5632, PeakGFLOPS: 13448, TDPWatts: 250}),
	turing(Spec{Name: "titan-rtx", SMCount: 72, CoresPerSM: 64, BaseClockMHz: 1350, BoostClockMHz: 1770,
		MemBWGBs: 672, MemBusWidthBits: 384, MemoryGB: 24, L2CacheKB: 6144, PeakGFLOPS: 16312, TDPWatts: 280}),
	ampere(Spec{Name: "rtx-3060-ti", SMCount: 38, CoresPerSM: 128, BaseClockMHz: 1410, BoostClockMHz: 1665,
		MemBWGBs: 448, MemBusWidthBits: 256, MemoryGB: 8, L2CacheKB: 4096, PeakGFLOPS: 16197, TDPWatts: 200}),
	ampere(Spec{Name: "rtx-3070", SMCount: 46, CoresPerSM: 128, BaseClockMHz: 1500, BoostClockMHz: 1725,
		MemBWGBs: 448, MemBusWidthBits: 256, MemoryGB: 8, L2CacheKB: 4096, PeakGFLOPS: 20314, TDPWatts: 220}),
	ampere(Spec{Name: "rtx-3080", SMCount: 68, CoresPerSM: 128, BaseClockMHz: 1440, BoostClockMHz: 1710,
		MemBWGBs: 760, MemBusWidthBits: 320, MemoryGB: 10, L2CacheKB: 5120, PeakGFLOPS: 29768, TDPWatts: 320}),
	ampere(Spec{Name: "rtx-3090", SMCount: 82, CoresPerSM: 128, BaseClockMHz: 1395, BoostClockMHz: 1695,
		MemBWGBs: 936, MemBusWidthBits: 384, MemoryGB: 24, L2CacheKB: 6144, PeakGFLOPS: 35581, TDPWatts: 350}),
}

// Registry returns a copy of every known GPU spec.
func Registry() []Spec { return append([]Spec(nil), registry...) }

// ByName returns the spec for a GPU name.
func ByName(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("hwspec: unknown GPU %q", name)
}

// MustByName is ByName for known-good names.
func MustByName(name string) Spec {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Target GPU names used across the paper's evaluation (Table 1).
const (
	TitanXp      = "titan-xp"
	RTX2070Super = "rtx-2070-super"
	RTX2080Ti    = "rtx-2080-ti"
	RTX3090      = "rtx-3090"
)

// Targets lists the four evaluation GPUs in Table 1 order.
var Targets = []string{TitanXp, RTX2070Super, RTX2080Ti, RTX3090}

// TrainingPool returns every registry GPU except the named target — the
// leave-target-out protocol the paper uses for transfer learning (Fig. 5)
// and for training H and the meta-optimizer.
func TrainingPool(excludeTarget string) []Spec {
	var out []Spec
	for _, s := range registry {
		if s.Name != excludeTarget {
			out = append(out, s)
		}
	}
	return out
}
