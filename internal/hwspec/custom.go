package hwspec

import (
	"encoding/json"
	"fmt"
	"sync"
)

// customMu guards runtime registry extensions.
var customMu sync.Mutex

// Validate checks a spec for the fields everything downstream relies on.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("hwspec: spec without name")
	case s.SMCount <= 0 || s.CoresPerSM <= 0:
		return fmt.Errorf("hwspec: %s: non-positive processor counts", s.Name)
	case s.BaseClockMHz <= 0 || s.BoostClockMHz < s.BaseClockMHz:
		return fmt.Errorf("hwspec: %s: implausible clocks %d/%d", s.Name, s.BaseClockMHz, s.BoostClockMHz)
	case s.MemBWGBs <= 0 || s.MemBusWidthBits <= 0 || s.MemoryGB <= 0:
		return fmt.Errorf("hwspec: %s: implausible memory system", s.Name)
	case s.L2CacheKB <= 0 || s.SharedMemPerSMKB <= 0 || s.MaxSmemPerBlockKB <= 0:
		return fmt.Errorf("hwspec: %s: implausible cache hierarchy", s.Name)
	case s.RegsPerSM <= 0 || s.MaxThreadsPerSM <= 0 || s.MaxThreadsPerBlock <= 0:
		return fmt.Errorf("hwspec: %s: implausible execution limits", s.Name)
	case s.WarpSize <= 0:
		return fmt.Errorf("hwspec: %s: warp size %d", s.Name, s.WarpSize)
	case s.PeakGFLOPS <= 0:
		return fmt.Errorf("hwspec: %s: peak %g GFLOPS", s.Name, s.PeakGFLOPS)
	}
	return nil
}

// Register adds a custom GPU spec to the registry at runtime — how a
// deployment onboards hardware that shipped after this binary (the whole
// point of datasheet-driven tuning). Names must be unique.
func Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	customMu.Lock()
	defer customMu.Unlock()
	for _, existing := range registry {
		if existing.Name == s.Name {
			return fmt.Errorf("hwspec: GPU %q already registered", s.Name)
		}
	}
	registry = append(registry, s)
	return nil
}

// ParseSpec decodes a datasheet from JSON and validates it.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("hwspec: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
