package hwspec

import "testing"

func TestRegistryNonEmptyAndUnique(t *testing.T) {
	specs := Registry()
	if len(specs) < 12 {
		t.Fatalf("registry has %d GPUs, want a healthy training pool (≥12)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate GPU %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestTargetsPresentWithPaperGencodes(t *testing.T) {
	want := map[string]string{
		TitanXp:      "sm_61",
		RTX2070Super: "sm_75",
		RTX2080Ti:    "sm_75",
		RTX3090:      "sm_86",
	}
	if len(Targets) != 4 {
		t.Fatalf("Targets = %v", Targets)
	}
	for name, gencode := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Gencode != gencode {
			t.Errorf("%s gencode = %s want %s (Table 1)", name, s.Gencode, gencode)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("rtx-9090"); err == nil {
		t.Fatal("unknown GPU accepted")
	}
}

func TestFeatureVectorShape(t *testing.T) {
	names := FeatureNames()
	if len(names) != FeatureDim {
		t.Fatalf("FeatureNames len = %d want %d", len(names), FeatureDim)
	}
	for _, s := range Registry() {
		v := s.FeatureVector()
		if len(v) != FeatureDim {
			t.Fatalf("%s feature vector len = %d want %d", s.Name, len(v), FeatureDim)
		}
		for i, x := range v {
			if x < 0 {
				t.Fatalf("%s feature %s = %g want ≥ 0", s.Name, names[i], x)
			}
			// All features except the minor compute capability are strictly positive.
			if x == 0 && names[i] != "compute_cap_minor" {
				t.Fatalf("%s feature %s = 0", s.Name, names[i])
			}
		}
	}
}

func TestSpecsPlausible(t *testing.T) {
	for _, s := range Registry() {
		if s.BoostClockMHz < s.BaseClockMHz {
			t.Errorf("%s boost %d < base %d", s.Name, s.BoostClockMHz, s.BaseClockMHz)
		}
		if s.MaxThreadsPerBlock != 1024 || s.WarpSize != 32 {
			t.Errorf("%s CUDA limits off: %d threads/block, warp %d", s.Name, s.MaxThreadsPerBlock, s.WarpSize)
		}
		if s.MaxSmemPerBlockKB > s.SharedMemPerSMKB+48 {
			t.Errorf("%s smem/block %d implausible vs SM %d", s.Name, s.MaxSmemPerBlockKB, s.SharedMemPerSMKB)
		}
		// Peak GFLOPS ≈ 2 × cores × boost clock.
		approx := 2 * float64(s.CUDACores()) * float64(s.BoostClockMHz) / 1000
		if s.PeakGFLOPS < approx*0.9 || s.PeakGFLOPS > approx*1.1 {
			t.Errorf("%s peak %g GFLOPS vs 2·cores·clock %g", s.Name, s.PeakGFLOPS, approx)
		}
	}
}

func TestGenerationOrdering(t *testing.T) {
	// The four targets span three generations — the premise of the paper's
	// multi-hardware study.
	gens := map[string]bool{}
	for _, name := range Targets {
		gens[MustByName(name).Generation] = true
	}
	if len(gens) != 3 {
		t.Fatalf("targets span %d generations want 3: %v", len(gens), gens)
	}
}

func TestTrainingPoolExcludesTarget(t *testing.T) {
	pool := TrainingPool(TitanXp)
	if len(pool) != len(Registry())-1 {
		t.Fatalf("pool size %d want %d", len(pool), len(Registry())-1)
	}
	for _, s := range pool {
		if s.Name == TitanXp {
			t.Fatal("target leaked into training pool")
		}
	}
	// Excluding nothing returns everything.
	if got := TrainingPool("none-such"); len(got) != len(Registry()) {
		t.Fatalf("no-op exclusion size %d", len(got))
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName of unknown GPU did not panic")
		}
	}()
	MustByName("quantum-gpu")
}
