package gpusim

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// scaledSpec returns a copy of spec with compute or bandwidth scaled,
// keeping everything else identical so monotonicity is isolated.
func scaledSpec(spec hwspec.Spec, name string, computeScale, bwScale float64) hwspec.Spec {
	s := spec
	s.Name = name
	s.PeakGFLOPS *= computeScale
	s.SMCount = int(float64(s.SMCount) * computeScale)
	if s.SMCount < 1 {
		s.SMCount = 1
	}
	s.MemBWGBs *= bwScale
	return s
}

// TestMoreBandwidthNeverSlower: with identical microarchitecture, raising
// DRAM bandwidth can only help (noise is keyed by device name, so compare
// with noise disabled).
func TestMoreBandwidthNeverSlower(t *testing.T) {
	base := hwspec.MustByName(hwspec.TitanXp)
	slow := NewDevice(scaledSpec(base, base.Name, 1, 1))
	fast := NewDevice(scaledSpec(base, base.Name, 1, 2))
	slow.NoiseSigma = 0
	fast.NoiseSigma = 0

	task, err := workload.TaskByIndex(workload.VGG16, 1) // early conv: memory-heavy
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	g := rng.New(1)
	checked := 0
	for i := 0; i < 400 && checked < 100; i++ {
		idx := sp.RandomIndex(g)
		a := slow.MeasureIndex(task, sp, idx)
		b := fast.MeasureIndex(task, sp, idx)
		if !a.Valid || !b.Valid {
			continue
		}
		checked++
		if b.TimeMS > a.TimeMS*1.0001 {
			t.Fatalf("double bandwidth slowed config %d: %g → %g ms", idx, a.TimeMS, b.TimeMS)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d configs checked", checked)
	}
}

// TestMoreComputeNeverSlower mirrors the bandwidth property for peak
// FLOPS + SM count.
func TestMoreComputeNeverSlower(t *testing.T) {
	base := hwspec.MustByName(hwspec.RTX2080Ti)
	slow := NewDevice(scaledSpec(base, base.Name, 1, 1))
	fast := NewDevice(scaledSpec(base, base.Name, 2, 1))
	slow.NoiseSigma = 0
	fast.NoiseSigma = 0

	task, err := workload.TaskByIndex(workload.VGG16, 8) // 512→512: compute-heavy
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	g := rng.New(2)
	checked := 0
	for i := 0; i < 400 && checked < 100; i++ {
		idx := sp.RandomIndex(g)
		a := slow.MeasureIndex(task, sp, idx)
		b := fast.MeasureIndex(task, sp, idx)
		if !a.Valid || !b.Valid {
			continue
		}
		checked++
		if b.TimeMS > a.TimeMS*1.0001 {
			t.Fatalf("double compute slowed config %d: %g → %g ms", idx, a.TimeMS, b.TimeMS)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d configs checked", checked)
	}
}

// TestLargerSharedMemoryAcceptsMore: raising the per-block shared-memory
// limit only widens the valid set.
func TestLargerSharedMemoryAcceptsMore(t *testing.T) {
	base := hwspec.MustByName(hwspec.TitanXp) // 48 KB/block
	big := base
	big.MaxSmemPerBlockKB = 96
	small, large := NewDevice(base), NewDevice(big)

	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	g := rng.New(3)
	widened := 0
	for i := 0; i < 2000; i++ {
		idx := sp.RandomIndex(g)
		res, err := space.Derive(task, sp, sp.FromIndex(idx))
		if err != nil {
			t.Fatal(err)
		}
		okSmall, _ := small.CheckValid(res)
		okLarge, _ := large.CheckValid(res)
		if okSmall && !okLarge {
			t.Fatalf("larger smem limit rejected a config the smaller accepted")
		}
		if okLarge && !okSmall {
			widened++
		}
	}
	if widened == 0 {
		t.Fatal("doubling the smem limit admitted no extra configs")
	}
}

// TestMeasurementCostCoversCompileAndRun: every valid measurement costs at
// least the compile floor, and longer kernels cost more to measure.
func TestMeasurementCostCoversCompileAndRun(t *testing.T) {
	d := NewDevice(hwspec.MustByName(hwspec.RTX3090))
	d.NoiseSigma = 0
	task, err := workload.TaskByIndex(workload.VGG16, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	g := rng.New(4)
	checked := 0
	for i := 0; i < 500 && checked < 80; i++ {
		r := d.MeasureIndex(task, sp, sp.RandomIndex(g))
		if !r.Valid {
			continue
		}
		checked++
		if r.CostSec < 2.0 {
			t.Fatalf("measurement cost %g below the compile floor", r.CostSec)
		}
	}
	if checked == 0 {
		t.Fatal("no valid measurements")
	}
}
