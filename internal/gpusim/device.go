// Package gpusim is the stand-in for the paper's physical GPUs: an
// analytical performance model that maps (task, schedule configuration) to
// an execution time, a validity verdict, and a measurement wall-clock cost.
//
// The model is deliberately structured like the machines it imitates —
// occupancy from register/shared-memory/thread limits, a roofline of
// compute versus memory traffic, warp-granularity and wave-tail penalties,
// and per-generation microarchitecture coefficients — so that (i) the
// optimal configuration genuinely shifts between GPU generations (the
// premise of Fig. 1), (ii) roughly a tenth of the raw space is invalid on
// hardware grounds (§4.3), and (iii) datasheet features carry real signal
// about where good configurations live, which is the property Glimpse's
// Blueprint exploits.
package gpusim

import (
	"hash/fnv"
	"math"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/space"
)

// Device simulates one GPU.
type Device struct {
	Spec hwspec.Spec
	// NoiseSigma is the lognormal measurement-noise scale (default 0.03).
	NoiseSigma float64
	arch       archParams
}

// archParams are per-generation microarchitecture coefficients that are
// NOT in the datasheet; they are what makes tuning hardware-specific.
type archParams struct {
	issueLatency   float64 // pipeline latency hidden by ILP (outputs/thread)
	memEffBase     float64 // achievable fraction of peak bandwidth
	l2Reuse        float64 // fraction of re-reads served by L2
	unrollGain     float64 // benefit of aggressive unrolling
	sharedMemBanks int     // bank-conflict granularity
	maxBlocksPerSM int
}

func archFor(gen string) archParams {
	switch gen {
	case "Pascal":
		return archParams{issueLatency: 6, memEffBase: 0.68, l2Reuse: 0.35, unrollGain: 0.10, sharedMemBanks: 32, maxBlocksPerSM: 32}
	case "Volta":
		return archParams{issueLatency: 4, memEffBase: 0.74, l2Reuse: 0.45, unrollGain: 0.08, sharedMemBanks: 32, maxBlocksPerSM: 32}
	case "Turing":
		return archParams{issueLatency: 4, memEffBase: 0.72, l2Reuse: 0.50, unrollGain: 0.08, sharedMemBanks: 32, maxBlocksPerSM: 16}
	case "Ampere":
		return archParams{issueLatency: 3, memEffBase: 0.78, l2Reuse: 0.60, unrollGain: 0.06, sharedMemBanks: 32, maxBlocksPerSM: 16}
	default:
		return archParams{issueLatency: 5, memEffBase: 0.70, l2Reuse: 0.40, unrollGain: 0.08, sharedMemBanks: 32, maxBlocksPerSM: 32}
	}
}

// NewDevice builds a simulated GPU from its datasheet spec.
func NewDevice(spec hwspec.Spec) *Device {
	return &Device{Spec: spec, NoiseSigma: 0.03, arch: archFor(spec.Generation)}
}

// Result is one simulated hardware measurement.
type Result struct {
	Valid      bool
	FailReason string
	TimeMS     float64 // kernel execution time (0 when invalid)
	GFLOPS     float64 // achieved throughput (0 when invalid)
	// CostSec is the wall-clock the measurement consumed on the tuning
	// host+device (compile, transfer, runs) — what "GPU hours" counts.
	CostSec float64
}

// Validity failure reasons (stable strings, used by tests and logs).
const (
	FailTooManyThreads = "threads_per_block_exceeded"
	FailSharedMem      = "shared_mem_exceeded"
	FailRegisters      = "registers_exceeded"
	FailVThreads       = "vthread_limit_exceeded"
	FailGridDim        = "grid_dim_exceeded"
)

// maxRegsPerThread is the CUDA architectural cap.
const maxRegsPerThread = 255

// maxVThreads mirrors TVM's verifier limit on virtual threading.
const maxVThreads = 64

// CheckValid applies the launch-validity rules to a configuration.
// It returns ok=false plus a stable reason string for the first rule hit.
func (d *Device) CheckValid(res space.Resources) (bool, string) {
	if res.ThreadsPerBlock > d.Spec.MaxThreadsPerBlock {
		return false, FailTooManyThreads
	}
	if res.SharedMemBytes > d.Spec.MaxSmemPerBlockKB*1024 {
		return false, FailSharedMem
	}
	// Per-thread register pressure beyond 255 spills to local memory (a
	// performance penalty, not a launch failure); only exhausting the SM
	// register file fails the launch.
	regs := res.RegsPerThread
	if regs > maxRegsPerThread {
		regs = maxRegsPerThread
	}
	if regs*res.ThreadsPerBlock > d.Spec.RegsPerSM {
		return false, FailRegisters
	}
	if res.VThreads > maxVThreads {
		return false, FailVThreads
	}
	if res.Blocks > (1<<31)-1 {
		return false, FailGridDim
	}
	return true, ""
}

// noise returns a deterministic lognormal factor keyed by device, task,
// and configuration index, so the "hardware" is reproducible yet rugged.
func (d *Device) noise(taskName string, cfgIdx int64) float64 {
	h := fnv.New64a()
	h.Write([]byte(d.Spec.Name))
	h.Write([]byte{0})
	h.Write([]byte(taskName))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(cfgIdx >> (8 * i))
	}
	h.Write(buf[:])
	u := h.Sum64()
	// Two uniforms from the hash → one standard normal (Box–Muller).
	u1 := float64(u>>11) / float64(1<<53)
	u2 := float64((u*0x9E3779B97F4A7C15)>>11) / float64(1<<53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(d.NoiseSigma * z)
}
