package gpusim

import (
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func taskOf(t *testing.T, model string, l int) workload.Task {
	t.Helper()
	task, err := workload.TaskByIndex(model, l)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestMeasureDeterministic(t *testing.T) {
	d := NewDevice(hwspec.MustByName(hwspec.TitanXp))
	task := taskOf(t, workload.ResNet18, 7)
	sp := space.MustForTask(task)
	g := rng.New(1)
	for i := 0; i < 50; i++ {
		idx := sp.RandomIndex(g)
		a := d.MeasureIndex(task, sp, idx)
		b := d.MeasureIndex(task, sp, idx)
		if a != b {
			t.Fatalf("measurement not deterministic at %d: %+v vs %+v", idx, a, b)
		}
	}
}

func TestMeasureValidResultsSane(t *testing.T) {
	d := NewDevice(hwspec.MustByName(hwspec.RTX2080Ti))
	task := taskOf(t, workload.ResNet18, 7)
	sp := space.MustForTask(task)
	g := rng.New(2)
	validSeen := 0
	for i := 0; i < 500; i++ {
		r := d.MeasureIndex(task, sp, sp.RandomIndex(g))
		if !r.Valid {
			if r.FailReason == "" {
				t.Fatal("invalid result without reason")
			}
			if r.TimeMS != 0 || r.GFLOPS != 0 {
				t.Fatalf("invalid result reports performance: %+v", r)
			}
			if r.CostSec <= 0 {
				t.Fatalf("invalid measurement has no cost: %+v", r)
			}
			continue
		}
		validSeen++
		if r.TimeMS <= 0 || math.IsNaN(r.TimeMS) {
			t.Fatalf("bad time %+v", r)
		}
		if r.GFLOPS <= 0 || r.GFLOPS > d.Spec.PeakGFLOPS {
			t.Fatalf("GFLOPS %g outside (0, peak=%g]", r.GFLOPS, d.Spec.PeakGFLOPS)
		}
		if r.CostSec < 2 || r.CostSec > 6 {
			t.Fatalf("measurement cost %g s implausible", r.CostSec)
		}
	}
	if validSeen < 100 {
		t.Fatalf("only %d/500 random configs valid", validSeen)
	}
}

// TestInvalidFractionRealistic pins the raw-space invalid rate to the
// regime TVM CUDA spaces exhibit: substantial but not overwhelming.
func TestInvalidFractionRealistic(t *testing.T) {
	d := NewDevice(hwspec.MustByName(hwspec.TitanXp))
	task := taskOf(t, workload.ResNet18, 7)
	sp := space.MustForTask(task)
	g := rng.New(3)
	invalid := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if r := d.MeasureIndex(task, sp, sp.RandomIndex(g)); !r.Valid {
			invalid++
		}
	}
	frac := float64(invalid) / n
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("raw invalid fraction = %g want in [0.2, 0.8]", frac)
	}
}

func TestValidityRules(t *testing.T) {
	d := NewDevice(hwspec.MustByName(hwspec.TitanXp))
	ok, reason := d.CheckValid(space.Resources{ThreadsPerBlock: 2048, VThreads: 1, RegsPerThread: 32, SharedMemBytes: 1024})
	if ok || reason != FailTooManyThreads {
		t.Fatalf("threads rule: ok=%v reason=%q", ok, reason)
	}
	ok, reason = d.CheckValid(space.Resources{ThreadsPerBlock: 128, VThreads: 1, RegsPerThread: 32, SharedMemBytes: 1 << 20})
	if ok || reason != FailSharedMem {
		t.Fatalf("smem rule: ok=%v reason=%q", ok, reason)
	}
	ok, reason = d.CheckValid(space.Resources{ThreadsPerBlock: 1024, VThreads: 1, RegsPerThread: 200, SharedMemBytes: 1024})
	if ok || reason != FailRegisters {
		t.Fatalf("regs rule: ok=%v reason=%q", ok, reason)
	}
	ok, reason = d.CheckValid(space.Resources{ThreadsPerBlock: 32, VThreads: 100, RegsPerThread: 32, SharedMemBytes: 1024})
	if ok || reason != FailVThreads {
		t.Fatalf("vthread rule: ok=%v reason=%q", ok, reason)
	}
	ok, _ = d.CheckValid(space.Resources{ThreadsPerBlock: 128, VThreads: 2, RegsPerThread: 64, SharedMemBytes: 16 * 1024})
	if !ok {
		t.Fatal("reasonable config rejected")
	}
}

// TestOptimumShiftsAcrossGenerations verifies the Fig. 1 premise: the best
// configuration found on one GPU is measurably suboptimal on another.
func TestOptimumShiftsAcrossGenerations(t *testing.T) {
	task := taskOf(t, workload.ResNet18, 7)
	sp := space.MustForTask(task)
	xp := NewDevice(hwspec.MustByName(hwspec.TitanXp))
	ti := NewDevice(hwspec.MustByName(hwspec.RTX2080Ti))

	g := rng.New(4)
	idxs := make([]int64, 3000)
	for i := range idxs {
		idxs[i] = sp.RandomIndex(g)
	}
	bestOn := func(d *Device) (int64, float64) {
		bi, bg := int64(-1), 0.0
		for _, idx := range idxs {
			if r := d.MeasureIndex(task, sp, idx); r.Valid && r.GFLOPS > bg {
				bi, bg = idx, r.GFLOPS
			}
		}
		return bi, bg
	}
	xpIdx, xpBest := bestOn(xp)
	tiIdx, tiBest := bestOn(ti)
	if xpIdx == -1 || tiIdx == -1 {
		t.Fatal("no valid configs found")
	}
	// Reuse in both directions must lose ≥5% (paper: 27.79% / 31.33%).
	reuseOnTi := ti.MeasureIndex(task, sp, xpIdx)
	reuseOnXp := xp.MeasureIndex(task, sp, tiIdx)
	if !reuseOnTi.Valid || !reuseOnXp.Valid {
		t.Skip("cross-hardware best invalid on the other device; rerun with another seed")
	}
	slowTi := 1 - reuseOnTi.GFLOPS/tiBest
	slowXp := 1 - reuseOnXp.GFLOPS/xpBest
	if slowTi < 0.02 && slowXp < 0.02 {
		t.Fatalf("reused optima lose only %.1f%%/%.1f%%; hardware indistinct", 100*slowTi, 100*slowXp)
	}
}

// TestDatasheetSignal verifies faster hardware is actually faster at its
// best configuration — the monotone signal Blueprint priors rely on.
func TestDatasheetSignal(t *testing.T) {
	task := taskOf(t, workload.VGG16, 8) // 512→512 28×28, compute heavy
	sp := space.MustForTask(task)
	g := rng.New(5)
	idxs := make([]int64, 2000)
	for i := range idxs {
		idxs[i] = sp.RandomIndex(g)
	}
	best := func(name string) float64 {
		d := NewDevice(hwspec.MustByName(name))
		bg := 0.0
		for _, idx := range idxs {
			if r := d.MeasureIndex(task, sp, idx); r.Valid && r.GFLOPS > bg {
				bg = r.GFLOPS
			}
		}
		return bg
	}
	xp, s3090 := best(hwspec.TitanXp), best(hwspec.RTX3090)
	if s3090 <= xp {
		t.Fatalf("rtx-3090 best %g ≤ titan-xp best %g", s3090, xp)
	}
}

func TestWinogradBeatsDirectForSmallKernels(t *testing.T) {
	// For a 3×3 stride-1 layer the winograd template's best should beat the
	// direct template's best (its raison d'être).
	direct := taskOf(t, workload.ResNet18, 2) // 64→64 56×56 3×3 s1 direct
	wino := taskOf(t, workload.ResNet18, 13)  // same shape, winograd
	if direct.Conv != wino.Conv {
		t.Fatalf("task pairing broken: %v vs %v", direct.Conv, wino.Conv)
	}
	d := NewDevice(hwspec.MustByName(hwspec.RTX2080Ti))
	g := rng.New(6)
	best := func(task workload.Task) float64 {
		sp := space.MustForTask(task)
		bg := 0.0
		for i := 0; i < 3000; i++ {
			if r := d.MeasureIndex(task, sp, sp.RandomIndex(g)); r.Valid && r.GFLOPS > bg {
				bg = r.GFLOPS
			}
		}
		return bg
	}
	if bd, bw := best(direct), best(wino); bw <= bd {
		t.Fatalf("winograd best %g ≤ direct best %g", bw, bd)
	}
}

func TestDenseTaskMeasurable(t *testing.T) {
	task := taskOf(t, workload.AlexNet, 10) // dense 9216→4096
	sp := space.MustForTask(task)
	d := NewDevice(hwspec.MustByName(hwspec.RTX3090))
	g := rng.New(7)
	valid := 0
	for i := 0; i < 500; i++ {
		if r := d.MeasureIndex(task, sp, sp.RandomIndex(g)); r.Valid {
			valid++
			if r.GFLOPS <= 0 {
				t.Fatalf("dense GFLOPS %g", r.GFLOPS)
			}
		}
	}
	if valid < 50 {
		t.Fatalf("only %d/500 dense configs valid", valid)
	}
}

func TestNoiseBoundedAndKeyed(t *testing.T) {
	d := NewDevice(hwspec.MustByName(hwspec.TitanXp))
	// Different config indices produce different noise; magnitudes stay tame.
	a := d.noise("task", 1)
	b := d.noise("task", 2)
	if a == b {
		t.Fatal("noise not keyed by config")
	}
	for i := int64(0); i < 2000; i++ {
		v := d.noise("task", i)
		if v < 0.7 || v > 1.4 {
			t.Fatalf("noise %g outside [0.7, 1.4] at %d", v, i)
		}
	}
	// Keyed by device too.
	d2 := NewDevice(hwspec.MustByName(hwspec.RTX3090))
	if d.noise("task", 7) == d2.noise("task", 7) {
		t.Fatal("noise not keyed by device")
	}
}

func TestMeasureIndexMatchesMeasure(t *testing.T) {
	d := NewDevice(hwspec.MustByName(hwspec.TitanXp))
	task := taskOf(t, workload.AlexNet, 1)
	sp := space.MustForTask(task)
	g := rng.New(8)
	idx := sp.RandomIndex(g)
	if a, b := d.MeasureIndex(task, sp, idx), d.Measure(task, sp, sp.FromIndex(idx)); a != b {
		t.Fatalf("MeasureIndex %+v != Measure %+v", a, b)
	}
}
