package gpusim

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// BenchmarkMeasure is the cost of one simulated hardware measurement —
// the unit everything else multiplies.
func BenchmarkMeasure(b *testing.B) {
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		b.Fatal(err)
	}
	sp := space.MustForTask(task)
	d := NewDevice(hwspec.MustByName(hwspec.RTX3090))
	g := rng.New(1)
	idxs := make([]int64, 1024)
	for i := range idxs {
		idxs[i] = sp.RandomIndex(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.MeasureIndex(task, sp, idxs[i%len(idxs)])
	}
}
