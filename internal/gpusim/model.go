package gpusim

import (
	"math"

	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

const bytesPerFloat = 4

// Measure simulates compiling and running one configuration of a task on
// the device, returning throughput and the measurement's wall-clock cost.
func (d *Device) Measure(task workload.Task, sp *space.Space, cfg space.Config) Result {
	idx := sp.ToIndex(cfg)
	res, err := space.Derive(task, sp, cfg)
	if err != nil {
		return Result{Valid: false, FailReason: err.Error(), CostSec: 0.1}
	}
	if ok, reason := d.CheckValid(res); !ok {
		// Invalid configurations still burn tuner time: the compile or the
		// launch fails after a second or so (§4.3's wasted GPU time).
		return Result{
			Valid:      false,
			FailReason: reason,
			CostSec:    1.2 * d.noise(task.Name()+"!cost", idx),
		}
	}

	timeSec := d.kernelTime(task, sp, res)
	timeSec *= d.noise(task.Name(), idx)

	gflops := float64(task.FLOPs()) / timeSec / 1e9
	// Measurement wall-clock: compile + transfer + repeated timed runs.
	cost := (2.2 + math.Min(1.5, timeSec*1e3*0.3)) * d.noise(task.Name()+"!cost", idx)
	return Result{Valid: true, TimeMS: timeSec * 1e3, GFLOPS: gflops, CostSec: cost}
}

// MeasureIndex is Measure on a flat configuration index.
func (d *Device) MeasureIndex(task workload.Task, sp *space.Space, idx int64) Result {
	return d.Measure(task, sp, sp.FromIndex(idx))
}

// kernelTime is the deterministic analytical execution-time model.
func (d *Device) kernelTime(task workload.Task, sp *space.Space, res space.Resources) float64 {
	spec, arch := d.Spec, d.arch

	// ----- occupancy ------------------------------------------------------
	regs := res.RegsPerThread
	if regs > maxRegsPerThread {
		regs = maxRegsPerThread // compiler caps and spills
	}
	blocksPerSM := spec.MaxThreadsPerSM / res.ThreadsPerBlock
	if byRegs := spec.RegsPerSM / (regs * res.ThreadsPerBlock); byRegs < blocksPerSM {
		blocksPerSM = byRegs
	}
	if bySmem := spec.SharedMemPerSMKB * 1024 / res.SharedMemBytes; bySmem < blocksPerSM {
		blocksPerSM = bySmem
	}
	if blocksPerSM > arch.maxBlocksPerSM {
		blocksPerSM = arch.maxBlocksPerSM
	}
	if blocksPerSM < 1 {
		blocksPerSM = 1
	}
	occ := float64(blocksPerSM*res.ThreadsPerBlock) / float64(spec.MaxThreadsPerSM)
	if occ > 1 {
		occ = 1
	}
	// Generations with longer issue latency need more occupancy to hide it.
	occAdj := occ * 4 / arch.issueLatency
	occEff := math.Min(1, occAdj/(occAdj+0.25)*1.25)

	// ----- per-thread efficiency -----------------------------------------
	warps := (res.ThreadsPerBlock + spec.WarpSize - 1) / spec.WarpSize
	warpEff := float64(res.ThreadsPerBlock) / float64(warps*spec.WarpSize)

	ilp := math.Min(float64(res.OutputsPerThread), 16)
	ilpEff := 1 - 0.5/(1+ilp/arch.issueLatency)

	regPenalty := 1.0
	if res.RegsPerThread > 128 {
		regPenalty = math.Exp(-float64(res.RegsPerThread-128) / 80)
	}

	unrollEff := 1.0
	reduceWork := float64(res.ReduceInner*8 + 1)
	if res.UnrollStep > 0 {
		unrollEff += arch.unrollGain * math.Min(1, float64(res.UnrollStep)/reduceWork)
	}
	if res.UnrollExplicit {
		if res.OutputsPerThread <= 32 {
			unrollEff += 0.02
		} else {
			unrollEff -= 0.03 // code bloat and instruction-cache misses
		}
	}

	bankEff := 1.0
	if res.ThreadX > 1 && res.ThreadX%2 == 1 {
		bankEff = 0.97 // odd strides skew shared-memory banks slightly
	}

	computeEff := occEff * warpEff * ilpEff * regPenalty * unrollEff * bankEff
	if computeEff < 0.01 {
		computeEff = 0.01
	}

	effFLOPs := float64(task.FLOPs())
	if sp.Template == "winograd_conv2d" {
		// F(2×2, 3×3) cuts multiplies 2.25×; transforms claw some back.
		effFLOPs = effFLOPs / 2.25 * 1.30
	}
	computeSec := effFLOPs / (spec.PeakGFLOPS * 1e9 * computeEff)

	// ----- memory traffic -------------------------------------------------
	trafficBytes := d.trafficBytes(task, sp, res)
	coalesce := math.Min(1, math.Max(0.25, float64(res.ThreadX)/16))
	memSec := trafficBytes / (spec.MemBWGBs * 1e9 * arch.memEffBase * coalesce)

	// ----- parallel coverage (wave quantization) --------------------------
	totalSlots := int64(spec.SMCount) * int64(blocksPerSM)
	waves := (res.Blocks + totalSlots - 1) / totalSlots
	parallelEff := float64(res.Blocks) / float64(waves*totalSlots)
	if parallelEff < 0.02 {
		parallelEff = 0.02
	}
	// Compute throughput scales with the SMs actually occupied; DRAM
	// bandwidth saturates once enough blocks are in flight to feed the
	// memory channels (≈2 blocks per 32-bit channel) — an absolute count,
	// independent of how many SMs happen to be idle.
	activeBlocks := res.Blocks
	if activeBlocks > totalSlots {
		activeBlocks = totalSlots
	}
	blocksToSaturate := float64(spec.MemBusWidthBits) / 32 * 2
	memUtil := math.Min(1, float64(activeBlocks)/blocksToSaturate)

	t := math.Max(computeSec/parallelEff, memSec/memUtil) + 3e-6 // launch overhead
	return t
}

// trafficBytes estimates DRAM traffic after L2 filtering.
func (d *Device) trafficBytes(task workload.Task, sp *space.Space, res space.Resources) float64 {
	arch := d.arch
	l2Bytes := float64(d.Spec.L2CacheKB) * 1024

	// missFrac models how much of a re-read stream actually reaches DRAM:
	// streams that fit in L2 are mostly served on-chip.
	missFrac := func(workingSet float64) float64 {
		f := workingSet / l2Bytes
		if f > 1 {
			f = 1
		}
		if f < 0.02 {
			f = 0.02
		}
		return f * (1 - arch.l2Reuse)
	}

	switch sp.Template {
	case "conv2d", "winograd_conv2d":
		c := task.Conv
		inBytes := float64(c.H) * float64(c.W) * float64(c.InC) * bytesPerFloat
		wBytes := float64(c.OutC) * float64(c.InC) * float64(c.Kernel*c.Kernel) * bytesPerFloat
		outBytes := float64(c.OutH()) * float64(c.OutW()) * float64(c.OutC) * bytesPerFloat

		if sp.Template == "winograd_conv2d" {
			// Transformed tiles inflate the tensors.
			inBytes *= 16.0 / 4.0
			wBytes *= 16.0 / 9.0
		}

		// Channel-axis blocks re-read the same input tiles; spatial blocks
		// re-read the weights.
		channelBlocks := float64(res.ChannelBlocks)
		spatialBlocks := float64(res.SpatialBlocks)
		halo := 1.0
		if sp.Template == "conv2d" {
			halo = haloFactor(task, res)
		}
		trafficIn := inBytes * halo * (1 + (channelBlocks-1)*missFrac(inBytes))
		trafficW := wBytes * (1 + (spatialBlocks-1)*missFrac(wBytes))
		return trafficIn + trafficW + outBytes

	case "dense":
		dn := task.Dense
		inBytes := float64(dn.In) * float64(dn.Batch) * bytesPerFloat
		wBytes := float64(dn.In) * float64(dn.Out) * bytesPerFloat
		outBytes := float64(dn.Out) * float64(dn.Batch) * bytesPerFloat
		// Weights are streamed once; the input vector is re-read per block.
		blocks := float64(res.Blocks)
		return wBytes + inBytes*(1+(blocks-1)*missFrac(inBytes)) + outBytes

	default:
		return 1
	}
}

// haloFactor is the input over-read caused by tile halos: each block loads
// ((ty-1)s+K)·((tx-1)s+K) input pixels to produce a ty×tx output tile.
func haloFactor(task workload.Task, res space.Resources) float64 {
	c := task.Conv
	ty, tx := float64(res.BlockOutY), float64(res.BlockOutX)
	s, k := float64(c.Stride), float64(c.Kernel)
	loaded := ((ty-1)*s + k) * ((tx-1)*s + k)
	covered := ty * s * tx * s
	return loaded / covered
}
