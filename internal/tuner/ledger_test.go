package tuner

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestLedgerChargeAndSpend(t *testing.T) {
	l := NewLedger()
	l.Charge("acme", 2.5, 16)
	l.Charge("acme", 1.5, 16)
	l.AddJob("acme")
	got := l.Spend("acme")
	if got.GPUSeconds != 4.0 || got.Measurements != 32 || got.Jobs != 1 {
		t.Fatalf("spend = %+v", got)
	}
	if zero := l.Spend("ghost"); zero.GPUSeconds != 0 || zero.Tenant != "ghost" {
		t.Fatalf("unknown tenant spend = %+v", zero)
	}
}

func TestLedgerRemaining(t *testing.T) {
	l := NewLedger()
	if _, bounded := l.Remaining("acme"); bounded {
		t.Fatal("unbudgeted tenant reported bounded")
	}
	l.SetBudget("acme", 10)
	l.Charge("acme", 4, 1)
	if left, bounded := l.Remaining("acme"); !bounded || left != 6 {
		t.Fatalf("remaining = %v bounded=%v", left, bounded)
	}
	l.Charge("acme", 100, 1)
	if left, _ := l.Remaining("acme"); left != 0 {
		t.Fatalf("overspent tenant remaining = %v, want 0", left)
	}
	l.SetBudget("acme", 0) // unlimited again
	if _, bounded := l.Remaining("acme"); bounded {
		t.Fatal("budget clear did not unbound tenant")
	}
}

// TestLedgerShare pins the fairness weighting: share is spend normalized
// by budget, so a tenant with 3x the budget is entitled to 3x the spend
// before its share catches up.
func TestLedgerShare(t *testing.T) {
	l := NewLedger()
	l.SetBudget("small", 1)
	l.SetBudget("big", 3)
	l.Charge("small", 1, 0)
	l.Charge("big", 3, 0)
	if a, b := l.Share("small"), l.Share("big"); math.Abs(a-b) > 1e-12 {
		t.Fatalf("proportional spends should equalize shares: %v vs %v", a, b)
	}
	l.Charge("small", 1, 0)
	if l.Share("small") <= l.Share("big") {
		t.Fatal("extra spend did not raise the small tenant's share")
	}
	if l.Share("unbudgeted") != 0 {
		t.Fatal("fresh tenant share should be zero")
	}
}

func TestLedgerSnapshotSortedAndStable(t *testing.T) {
	l := NewLedger()
	l.SetBudget("zeta", 5)
	l.Charge("alpha", 1.25, 8)
	l.AddJob("alpha")
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Tenant != "alpha" || snap[1].Tenant != "zeta" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	// The accounting record is part of the streamed-JSON contract: struct
	// field order is the wire order, pinned byte-for-byte.
	data, err := json.Marshal(snap[0])
	if err != nil {
		t.Fatal(err)
	}
	want := `{"tenant":"alpha","jobs":1,"measurements":8,"gpu_seconds":1.25}`
	if string(data) != want {
		t.Fatalf("TenantSpend JSON drifted:\n got %s\nwant %s", data, want)
	}
}

func TestLedgerConcurrentCharge(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Charge("acme", 0.5, 1)
			}
		}()
	}
	wg.Wait()
	got := l.Spend("acme")
	if got.Measurements != 800 || math.Abs(got.GPUSeconds-400) > 1e-9 {
		t.Fatalf("concurrent charges lost: %+v", got)
	}
}
