package tuner

import (
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Random measures uniformly random configurations — the weakest baseline
// in Fig. 4 and the sanity floor for every other tuner.
type Random struct {
	// BatchSize is measurements per step (default 16).
	BatchSize int
}

// Name identifies the tuner.
func (r Random) Name() string { return "random" }

// Tune runs random search under the budget.
func (r Random) Tune(task workload.Task, sp *space.Space, m measure.Measurer,
	budget Budget, g *rng.RNG) (*Result, error) {

	batch := r.BatchSize
	if batch <= 0 {
		batch = 16
	}
	s, err := NewSession(r.Name(), task, sp, m, budget, g)
	if err != nil {
		return nil, err
	}
	for !s.Done() {
		idxs := make([]int64, s.Remaining(batch))
		if len(idxs) == 0 {
			break
		}
		for i := range idxs {
			idxs[i] = sp.RandomIndex(g)
		}
		results, err := s.MeasureBatch(idxs)
		if err != nil {
			return nil, err
		}
		s.RecordInitialBatch(results)
	}
	return s.Finish(), nil
}
