package tuner

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func testSetup(t *testing.T) (workload.Task, *space.Space, *measure.Local) {
	t.Helper()
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	return task, space.MustForTask(task), measure.MustNewLocal(hwspec.TitanXp)
}

func TestBudgetValidation(t *testing.T) {
	task, sp, m := testSetup(t)
	if _, err := (Random{}).Tune(task, sp, m, Budget{}, rng.New(1)); err == nil {
		t.Fatal("empty budget accepted")
	}
}

func TestRandomRespectsBudget(t *testing.T) {
	task, sp, m := testSetup(t)
	res, err := Random{BatchSize: 10}.Tune(task, sp, m, Budget{MaxMeasurements: 55}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements != 55 {
		t.Fatalf("measurements = %d want 55", res.Measurements)
	}
	if res.TunerName != "random" || res.TaskName != task.Name() {
		t.Fatalf("labels %q %q", res.TunerName, res.TaskName)
	}
	if res.Steps != 6 { // 5 batches of 10 + final 5
		t.Fatalf("steps = %d want 6", res.Steps)
	}
	if res.BestGFLOPS <= 0 || res.BestIndex < 0 {
		t.Fatalf("no best found: %+v", res)
	}
	if len(res.InitialBatch) != 10 {
		t.Fatalf("initial batch records %d want 10", len(res.InitialBatch))
	}
	if res.GPUSeconds <= 0 {
		t.Fatal("no GPU time accounted")
	}
	// History is monotone in best.
	for i := 1; i < len(res.History); i++ {
		if res.History[i].BestGFLOPS < res.History[i-1].BestGFLOPS {
			t.Fatal("best-so-far decreased")
		}
	}
}

func TestRandomGPUSecondsBudget(t *testing.T) {
	task, sp, m := testSetup(t)
	res, err := Random{BatchSize: 8}.Tune(task, sp, m, Budget{MaxGPUSeconds: 60}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Should stop shortly after crossing 60 simulated seconds.
	if res.GPUSeconds < 60 || res.GPUSeconds > 120 {
		t.Fatalf("GPU seconds = %g want ≈60", res.GPUSeconds)
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	task, sp, m := testSetup(t)
	res, err := Random{BatchSize: 8}.Tune(task, sp, m,
		Budget{MaxMeasurements: 4000, Patience: 5, Epsilon: 0.01}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("session did not converge")
	}
	if res.Measurements >= 4000 {
		t.Fatal("patience did not stop the session")
	}
}

// TestAutoTVMBeatsRandom pins the fundamental cost-model claim: at equal
// measurement budget, AutoTVM finds a better configuration than random.
func TestAutoTVMBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning runs")
	}
	task, sp, m := testSetup(t)
	budget := Budget{MaxMeasurements: 160}
	randRes, err := Random{}.Tune(task, sp, m, budget, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	atvmRes, err := AutoTVM{}.Tune(task, sp, m, budget, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if atvmRes.BestGFLOPS <= randRes.BestGFLOPS {
		t.Fatalf("autotvm %g ≤ random %g", atvmRes.BestGFLOPS, randRes.BestGFLOPS)
	}
}

// TestAutoTVMLearnsToAvoidInvalid: after warm-up, the cost model steers
// away from zero-GFLOPS (invalid) regions, pushing the invalid fraction
// well below the raw-space rate (~50%); the paper reports ~10% for
// current compilers.
func TestAutoTVMLearnsToAvoidInvalid(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	task, sp, m := testSetup(t)
	res, err := AutoTVM{}.Tune(task, sp, m, Budget{MaxMeasurements: 200}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Invalid) / float64(res.Measurements)
	if frac > 0.35 {
		t.Fatalf("autotvm invalid fraction %g; cost model not steering", frac)
	}
}

func TestAutoTVMTransferName(t *testing.T) {
	if (AutoTVM{}).Name() != "autotvm" {
		t.Fatal("name")
	}
	if (AutoTVM{Transfer: &TransferData{}}).Name() != "autotvm-tl" {
		t.Fatal("transfer name")
	}
}

func TestChameleonRunsAndConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	task, sp, m := testSetup(t)
	res, err := Chameleon{}.Tune(task, sp, m,
		Budget{MaxMeasurements: 400, Patience: 4, Epsilon: 0.01}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGFLOPS <= 0 {
		t.Fatal("chameleon found nothing")
	}
	if !res.Converged && res.Measurements < 400 {
		t.Fatal("stopped without convergence or budget exhaustion")
	}
}

// transferFrom generates TransferData by running a donor tuner on another
// GPU — the "logs from prior runs" every transfer method consumes.
func transferFrom(t *testing.T, task workload.Task, sp *space.Space, gpu string, n int, seed int64) *TransferData {
	t.Helper()
	m := measure.MustNewLocal(gpu)
	res, err := Random{BatchSize: 32}.Tune(task, sp, m, Budget{MaxMeasurements: n}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Re-measure to collect features/values (Random doesn't expose its log).
	g := rng.New(seed + 1)
	td := &TransferData{}
	for i := 0; i < n; i++ {
		idx := sp.RandomIndex(g)
		r, err := m.MeasureBatch(task, sp, []int64{idx})
		if err != nil {
			t.Fatal(err)
		}
		v := 0.0
		if r[0].Valid {
			v = r[0].GFLOPS
		}
		td.Features = append(td.Features, sp.FeaturesAt(idx))
		td.GFLOPS = append(td.GFLOPS, v)
	}
	return td
}

func TestDGPRequiresSource(t *testing.T) {
	task, sp, m := testSetup(t)
	if _, err := (DGP{}).Tune(task, sp, m, Budget{MaxMeasurements: 10}, rng.New(8)); err == nil {
		t.Fatal("DGP without source accepted")
	}
}

func TestDGPRunsWithSource(t *testing.T) {
	if testing.Short() {
		t.Skip("pretrains a network")
	}
	task, sp, m := testSetup(t)
	src := transferFrom(t, task, sp, "gtx-1080", 150, 9)
	res, err := DGP{Source: src, PretrainEpochs: 60}.Tune(task, sp, m,
		Budget{MaxMeasurements: 80}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGFLOPS <= 0 {
		t.Fatal("DGP found nothing")
	}
	if res.TunerName != "dgp" {
		t.Fatalf("name %q", res.TunerName)
	}
}

func TestAutoTVMWithTransferRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	task, sp, m := testSetup(t)
	src := transferFrom(t, task, sp, "rtx-2080", 120, 11)
	res, err := AutoTVM{Transfer: src}.Tune(task, sp, m, Budget{MaxMeasurements: 96}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGFLOPS <= 0 {
		t.Fatal("autotvm-tl found nothing")
	}
}

// TestTunerPropagatesMeasurementErrors: a tuning session over a dead
// measurement server ends with an error, not a bogus result.
func TestTunerPropagatesMeasurementErrors(t *testing.T) {
	task, sp, _ := testSetup(t)
	srv, err := measure.NewServer([]string{hwspec.TitanXp})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := measure.Dial(addr, hwspec.TitanXp)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	srv.Close() // dead before the first batch

	if _, err := (Random{}).Tune(task, sp, remote, Budget{MaxMeasurements: 16}, rng.New(2)); err == nil {
		t.Fatal("tuning over a dead server returned a result")
	}
}
