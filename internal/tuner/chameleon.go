package tuner

import (
	"github.com/neuralcompile/glimpse/internal/anneal"
	"github.com/neuralcompile/glimpse/internal/gbt"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/sampler"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Chameleon is the ICLR'20 baseline: the AutoTVM skeleton plus (i)
// Adaptive Exploration — the annealing effort shrinks as the search
// plateaus, cutting wasted search steps — and (ii) Adaptive Sampling —
// the proposed candidate pool is clustered and only cluster
// representatives are measured, cutting redundant measurements. Both are
// hardware-agnostic: validity and architecture never enter the loop.
type Chameleon struct {
	BatchSize int // measurements per step (default 16)
	PoolSize  int // explorer candidates clustered per step (default 4×batch)
	Model     gbt.Config
}

// Name identifies the tuner.
func (c Chameleon) Name() string { return "chameleon" }

// Tune runs the Chameleon loop under the budget.
func (c Chameleon) Tune(task workload.Task, sp *space.Space, m measure.Measurer,
	budget Budget, g *rng.RNG) (*Result, error) {

	batch := c.BatchSize
	if batch <= 0 {
		batch = 16
	}
	pool := c.PoolSize
	if pool <= 0 {
		pool = 4 * batch
	}
	modelCfg := c.Model
	if modelCfg.Trees <= 0 {
		tuned := gbt.DefaultConfig()
		tuned.Trees = 30 // compact in-loop model, as in the AutoTVM baseline
		tuned.Objective, tuned.RankPairs, tuned.Workers = modelCfg.Objective, modelCfg.RankPairs, modelCfg.Workers
		modelCfg = tuned
	}

	s, err := NewSession(c.Name(), task, sp, m, budget, g)
	if err != nil {
		return nil, err
	}

	var feats [][]float64
	var ys []float64
	visited := map[int64]bool{}
	clusterSampler := sampler.Cluster{}

	record := func(idxs []int64) error {
		results, err := s.MeasureBatch(idxs)
		if err != nil {
			return err
		}
		s.RecordInitialBatch(results)
		for i, r := range results {
			visited[idxs[i]] = true
			v := 0.0
			if r.Valid {
				v = r.GFLOPS
			}
			feats = append(feats, sp.FeaturesAt(idxs[i]))
			ys = append(ys, v)
		}
		return nil
	}

	// Seed batch: random (Chameleon has no prior knowledge either).
	first := make([]int64, s.Remaining(batch))
	for i := range first {
		first[i] = sp.RandomIndex(g)
	}
	if err := record(first); err != nil {
		return nil, err
	}

	plateau := 0
	lastBest := s.res.BestGFLOPS
	for !s.Done() {
		model, err := gbt.Train(feats, ys, modelCfg, g)
		if err != nil {
			return nil, err
		}
		// Adaptive Exploration: shrink annealing effort as progress stalls.
		annealCfg := anneal.DefaultConfig()
		annealCfg.Steps = adaptiveSteps(annealCfg.Steps, plateau)
		annealCfg.Chains = adaptiveSteps(annealCfg.Chains, plateau)
		var seeds []int64
		if s.res.BestIndex >= 0 {
			seeds = append(seeds, s.res.BestIndex)
		}
		annealCfg.InitialSeed = seeds

		problem := anneal.Problem{
			Size:     sp.Size(),
			Score:    func(i int64) float64 { return model.Predict(sp.FeaturesAt(i)) },
			Neighbor: sp.Neighbor,
		}
		top, err := anneal.Run(problem, annealCfg, pool, g)
		if err != nil {
			return nil, err
		}
		cands := make([]int64, 0, len(top))
		for _, r := range top {
			if !visited[r.Index] {
				cands = append(cands, r.Index)
			}
		}
		if len(cands) == 0 {
			break
		}
		// Adaptive Sampling: cluster and measure representatives only.
		selected := clusterSampler.Select(task, sp, cands, s.Remaining(batch), g)
		if len(selected) == 0 {
			break
		}
		if err := record(selected); err != nil {
			return nil, err
		}
		if s.res.BestGFLOPS > lastBest*1.01 {
			plateau = 0
			lastBest = s.res.BestGFLOPS
		} else {
			plateau++
		}
	}
	return s.Finish(), nil
}

// adaptiveSteps halves the effort for each plateaued step, floored at 1/4.
func adaptiveSteps(base, plateau int) int {
	out := base
	for i := 0; i < plateau && out > base/4; i++ {
		out = out * 3 / 4
	}
	if out < base/4 {
		out = base / 4
	}
	if out < 1 {
		out = 1
	}
	return out
}
