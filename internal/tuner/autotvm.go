package tuner

import (
	"github.com/neuralcompile/glimpse/internal/anneal"
	"github.com/neuralcompile/glimpse/internal/gbt"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// TransferData is prior tuning history (featurized configurations and
// their measured GFLOPS) used for AutoTVM-style transfer learning: the
// cost model is warm-started from logs of other (task, hardware) runs.
type TransferData struct {
	Features [][]float64
	GFLOPS   []float64
}

// AutoTVM is the NeurIPS'18 baseline: a gradient-boosted cost model fit on
// accumulated measurements, simulated annealing over the model to propose
// candidates, and ε-greedy random exploration. Hardware knowledge enters
// only through measurements — it is the canonical hardware-agnostic tuner.
type AutoTVM struct {
	BatchSize int           // measurements per step (default 16)
	Epsilon   float64       // random fraction per batch (default 0.1)
	Transfer  *TransferData // optional transfer-learning warm start
	Anneal    anneal.Config // SA schedule (default DefaultConfig)
	Model     gbt.Config    // cost-model config (default DefaultConfig)
}

// Name identifies the tuner.
func (a AutoTVM) Name() string {
	if a.Transfer != nil {
		return "autotvm-tl"
	}
	return "autotvm"
}

// Tune runs the AutoTVM loop under the budget.
func (a AutoTVM) Tune(task workload.Task, sp *space.Space, m measure.Measurer,
	budget Budget, g *rng.RNG) (*Result, error) {

	batch := a.BatchSize
	if batch <= 0 {
		batch = 16
	}
	eps := a.Epsilon
	if eps <= 0 {
		eps = 0.1
	}
	// anneal.Run defaults non-positive schedule fields individually, so a
	// partial a.Anneal (e.g. only Workers set) passes through untouched.
	annealCfg := a.Anneal
	modelCfg := a.Model
	if modelCfg.Trees <= 0 {
		tuned := gbt.DefaultConfig()
		tuned.Trees = 30 // compact in-loop model (AutoTVM's plan-size scale)
		tuned.Objective, tuned.RankPairs, tuned.Workers = modelCfg.Objective, modelCfg.RankPairs, modelCfg.Workers
		modelCfg = tuned
	}

	s, err := NewSession(a.Name(), task, sp, m, budget, g)
	if err != nil {
		return nil, err
	}

	var feats [][]float64
	var ys []float64
	visited := map[int64]bool{}

	record := func(idxs []int64) error {
		results, err := s.MeasureBatch(idxs)
		if err != nil {
			return err
		}
		s.RecordInitialBatch(results)
		for i, r := range results {
			visited[idxs[i]] = true
			v := 0.0
			if r.Valid {
				v = r.GFLOPS
			}
			feats = append(feats, sp.FeaturesAt(idxs[i]))
			ys = append(ys, v)
		}
		return nil
	}

	// First batch: random, or model-guided when transfer logs exist.
	first := make([]int64, s.Remaining(batch))
	for i := range first {
		first[i] = sp.RandomIndex(g)
	}
	if a.Transfer != nil && len(a.Transfer.Features) > 0 {
		model, err := gbt.Train(a.Transfer.Features, a.Transfer.GFLOPS, modelCfg, g.Split("tl-model"))
		if err == nil {
			if proposal := a.propose(sp, model, nil, batch, annealCfg, visited, eps, g.Split("tl-propose")); len(proposal) > 0 {
				first = proposal[:min(len(proposal), s.Remaining(batch))]
			}
		}
	}
	if err := record(first); err != nil {
		return nil, err
	}

	for !s.Done() {
		// Warm-up: keep sampling randomly until the cost model has enough
		// signal to rank candidates (AutoTVM's plan_size warm-up).
		if len(ys) < 2*batch && a.Transfer == nil {
			idxs := make([]int64, 0, s.Remaining(batch))
			for len(idxs) < s.Remaining(batch) {
				idx := sp.RandomIndex(g)
				if !visited[idx] {
					visited[idx] = true
					idxs = append(idxs, idx)
				}
			}
			if len(idxs) == 0 {
				break
			}
			if err := record(idxs); err != nil {
				return nil, err
			}
			continue
		}
		trainX, trainY := feats, ys
		if a.Transfer != nil && len(a.Transfer.Features) > 0 {
			trainX = append(append([][]float64{}, a.Transfer.Features...), feats...)
			trainY = append(append([]float64{}, a.Transfer.GFLOPS...), ys...)
		}
		model, err := gbt.Train(trainX, trainY, modelCfg, g)
		if err != nil {
			return nil, err
		}
		var seeds []int64
		if s.res.BestIndex >= 0 {
			seeds = append(seeds, s.res.BestIndex)
		}
		idxs := a.propose(sp, model, seeds, s.Remaining(batch), annealCfg, visited, eps, g)
		if len(idxs) == 0 {
			break
		}
		if err := record(idxs); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// propose runs SA over the cost model and assembles an ε-greedy batch of
// unvisited candidates.
func (a AutoTVM) propose(sp *space.Space, model *gbt.Ensemble, seeds []int64, n int,
	cfg anneal.Config, visited map[int64]bool, eps float64, g *rng.RNG) []int64 {

	if n <= 0 {
		return nil
	}
	cfg.InitialSeed = seeds
	problem := anneal.Problem{
		Size:     sp.Size(),
		Score:    func(i int64) float64 { return model.Predict(sp.FeaturesAt(i)) },
		Neighbor: sp.Neighbor,
	}
	top, err := anneal.Run(problem, cfg, 4*n, g)
	if err != nil {
		return nil
	}
	out := make([]int64, 0, n)
	nRandom := int(eps * float64(n))
	// Walk the ranked list with a stride so the batch spans several score
	// levels instead of one tight cluster of near-identical neighbours.
	for stride := 2; stride >= 1 && len(out) < n-nRandom; stride-- {
		for i := 0; i < len(top) && len(out) < n-nRandom; i += stride {
			r := top[i]
			if !visited[r.Index] {
				out = append(out, r.Index)
				visited[r.Index] = true
			}
		}
	}
	for len(out) < n {
		idx := sp.RandomIndex(g)
		if !visited[idx] {
			out = append(out, idx)
			visited[idx] = true
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
