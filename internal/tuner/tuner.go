// Package tuner defines the tuning-session abstraction shared by every
// compiler in the evaluation, and implements the hardware-agnostic
// baselines the paper compares against: Random search, AutoTVM (gradient-
// boosted cost model + simulated annealing, with optional transfer
// learning), Chameleon (adaptive exploration + clustering-based sampling),
// and DGP (deep Gaussian-process transfer). Glimpse itself lives in
// internal/core and implements the same Tuner interface.
package tuner

import (
	"fmt"
	"sort"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Budget bounds a tuning session. Zero fields disable that bound; at least
// one of MaxMeasurements / MaxGPUSeconds must be set.
type Budget struct {
	MaxMeasurements int
	MaxGPUSeconds   float64
	// Patience stops the session after this many consecutive batches whose
	// best does not improve by more than Epsilon (relative). Zero disables.
	Patience int
	Epsilon  float64
}

func (b Budget) validate() error {
	if b.MaxMeasurements <= 0 && b.MaxGPUSeconds <= 0 {
		return fmt.Errorf("tuner: budget must bound measurements or GPU seconds")
	}
	return nil
}

// StepRecord snapshots progress after one measurement batch.
type StepRecord struct {
	Step         int
	Measurements int
	BestGFLOPS   float64
	GPUSeconds   float64
}

// Measured is one (configuration, performance) pair a session measured.
type Measured struct {
	Index  int64   `json:"index"`
	GFLOPS float64 `json:"gflops"`
}

// TopMeasuredCap bounds how many of a session's best measurements the
// Result retains (enough to pre-train a transferred surrogate, small
// enough to store per cache entry).
const TopMeasuredCap = 32

// Result summarizes a tuning session.
type Result struct {
	TunerName    string
	TaskName     string
	BestIndex    int64
	BestGFLOPS   float64
	BestTimeMS   float64
	Measurements int
	Invalid      int
	GPUSeconds   float64
	Steps        int
	Converged    bool
	History      []StepRecord
	// InitialBatch records the first batch's measured GFLOPS (Fig. 4).
	InitialBatch []float64
	// TopMeasured holds the session's best valid measurements (best
	// GFLOPS first, deduped by configuration, capped at TopMeasuredCap) —
	// the donor samples a tuned-config cache stores for nearest-neighbor
	// warm starts. Populated by Finish; Snapshot leaves it nil.
	TopMeasured []Measured
}

// Tuner optimizes one task on one device within a budget.
type Tuner interface {
	Name() string
	Tune(task workload.Task, sp *space.Space, m measure.Measurer, budget Budget, g *rng.RNG) (*Result, error)
}

// Session carries the shared bookkeeping of a tuning loop; exported so
// Glimpse in internal/core can share the same budget/convergence logic.
type Session struct {
	task   workload.Task
	sp     *space.Space
	m      measure.Measurer
	budget Budget
	g      *rng.RNG

	res          Result
	measured     map[int64]float64 // best valid GFLOPS seen per config
	sinceImprove int
	stopped      bool
}

func NewSession(name string, task workload.Task, sp *space.Space, m measure.Measurer,
	budget Budget, g *rng.RNG) (*Session, error) {
	if err := budget.validate(); err != nil {
		return nil, err
	}
	s := &Session{task: task, sp: sp, m: m, budget: budget, g: g,
		measured: map[int64]float64{}}
	s.res.TunerName = name
	s.res.TaskName = task.Name()
	s.res.BestIndex = -1
	return s, nil
}

// Remaining returns how many measurements may still run (capped at want).
// Both budget axes cap the batch: MaxMeasurements directly, and
// MaxGPUSeconds through the observed mean cost per measurement — without
// the latter a session bounded only by GPU seconds would run a full-size
// final batch and overshoot the budget by an arbitrary amount.
func (s *Session) Remaining(want int) int {
	if s.budget.MaxMeasurements > 0 {
		left := s.budget.MaxMeasurements - s.res.Measurements
		if left < want {
			want = left
		}
	}
	if s.budget.MaxGPUSeconds > 0 && s.res.Measurements > 0 {
		leftSec := s.budget.MaxGPUSeconds - s.res.GPUSeconds
		if leftSec <= 0 {
			want = 0
		} else if meanCost := s.res.GPUSeconds / float64(s.res.Measurements); meanCost > 0 {
			fit := int(leftSec / meanCost)
			if fit < 1 {
				// Budget not yet exhausted: allow one measurement so the
				// session converges onto the bound instead of stalling
				// just under it; worst-case overshoot is one measurement.
				fit = 1
			}
			if fit < want {
				want = fit
			}
		}
	}
	if want < 0 {
		want = 0
	}
	return want
}

// Done reports whether the session must stop.
func (s *Session) Done() bool {
	if s.stopped {
		return true
	}
	if s.budget.MaxMeasurements > 0 && s.res.Measurements >= s.budget.MaxMeasurements {
		return true
	}
	if s.budget.MaxGPUSeconds > 0 && s.res.GPUSeconds >= s.budget.MaxGPUSeconds {
		return true
	}
	return false
}

// MeasureBatch runs one batch, updates bookkeeping, and applies the
// convergence rule. It returns the raw results (aligned with idxs).
func (s *Session) MeasureBatch(idxs []int64) ([]gpusim.Result, error) {
	idxs = idxs[:s.Remaining(len(idxs))]
	if len(idxs) == 0 {
		s.stopped = true
		return nil, nil
	}
	results, err := s.m.MeasureBatch(s.task, s.sp, idxs)
	if err != nil {
		return nil, err
	}
	prevBest := s.res.BestGFLOPS
	for i, r := range results {
		s.res.Measurements++
		s.res.GPUSeconds += r.CostSec
		if !r.Valid {
			s.res.Invalid++
			continue
		}
		if r.GFLOPS > s.measured[idxs[i]] {
			s.measured[idxs[i]] = r.GFLOPS
		}
		if r.GFLOPS > s.res.BestGFLOPS {
			s.res.BestGFLOPS = r.GFLOPS
			s.res.BestTimeMS = r.TimeMS
			s.res.BestIndex = idxs[i]
		}
	}
	s.res.Steps++
	s.res.History = append(s.res.History, StepRecord{
		Step:         s.res.Steps,
		Measurements: s.res.Measurements,
		BestGFLOPS:   s.res.BestGFLOPS,
		GPUSeconds:   s.res.GPUSeconds,
	})
	if s.budget.Patience > 0 {
		improved := s.res.BestGFLOPS > prevBest*(1+s.budget.Epsilon)
		if prevBest == 0 && s.res.BestGFLOPS > 0 {
			improved = true
		}
		if improved {
			s.sinceImprove = 0
		} else {
			s.sinceImprove++
			if s.sinceImprove >= s.budget.Patience {
				s.stopped = true
				s.res.Converged = true
			}
		}
	}
	return results, nil
}

// RecordInitialBatch stores the measured GFLOPS of the first batch
// (invalid measurements contribute 0), the quantity Fig. 4 plots.
func (s *Session) RecordInitialBatch(results []gpusim.Result) {
	if s.res.InitialBatch != nil {
		return
	}
	for _, r := range results {
		v := 0.0
		if r.Valid {
			v = r.GFLOPS
		}
		s.res.InitialBatch = append(s.res.InitialBatch, v)
	}
}

// Finish returns a copy of the session result, materializing TopMeasured
// from the per-config bests (collect-then-sort keeps it deterministic
// regardless of map iteration order).
func (s *Session) Finish() *Result {
	out := s.res
	top := make([]Measured, 0, len(s.measured))
	for idx, v := range s.measured {
		top = append(top, Measured{Index: idx, GFLOPS: v})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].GFLOPS != top[j].GFLOPS { //glint:ignore floateq -- total-order tiebreak for sorting, not a tolerance check
			return top[i].GFLOPS > top[j].GFLOPS
		}
		return top[i].Index < top[j].Index
	})
	if len(top) > TopMeasuredCap {
		top = top[:TopMeasuredCap]
	}
	out.TopMeasured = top
	return &out
}

// Snapshot returns a copy of the current session result without ending
// the session.
func (s *Session) Snapshot() Result { return s.res }
