package tuner

import (
	"sort"
	"sync"
)

// TenantSpend is one tenant's accumulated tuning spend. Field order is
// part of the streamed-JSON contract (see DESIGN.md §13): records
// marshal in struct order, so accounting snapshots are diffable across
// runs and servers.
type TenantSpend struct {
	Tenant           string  `json:"tenant"`
	Jobs             int     `json:"jobs"`
	Measurements     int     `json:"measurements"`
	GPUSeconds       float64 `json:"gpu_seconds"`
	BudgetGPUSeconds float64 `json:"budget_gpu_seconds,omitempty"` // 0: unlimited
}

// Ledger is the per-tenant budget accounting shared by a multi-tenant
// tuning service: every session step charges its GPU-second and
// measurement cost to the submitting tenant, and the scheduler reads
// normalized shares back to keep tenants with unequal budgets fairly
// served. All methods are safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	budgets map[string]float64
	spend   map[string]*TenantSpend
}

// NewLedger returns an empty ledger; tenants appear on first charge or
// SetBudget.
func NewLedger() *Ledger {
	return &Ledger{budgets: map[string]float64{}, spend: map[string]*TenantSpend{}}
}

func (l *Ledger) entry(tenant string) *TenantSpend {
	e, ok := l.spend[tenant]
	if !ok {
		e = &TenantSpend{Tenant: tenant}
		l.spend[tenant] = e
	}
	return e
}

// SetBudget bounds a tenant's total GPU seconds; non-positive means
// unlimited. The budget doubles as the tenant's fair-share weight (see
// Share): a tenant with 3x the budget is entitled to 3x the GPU seconds
// per scheduling round.
func (l *Ledger) SetBudget(tenant string, gpuSeconds float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if gpuSeconds <= 0 {
		delete(l.budgets, tenant)
		if e, ok := l.spend[tenant]; ok {
			e.BudgetGPUSeconds = 0
		}
		return
	}
	l.budgets[tenant] = gpuSeconds
	l.entry(tenant).BudgetGPUSeconds = gpuSeconds
}

// Charge debits gpuSeconds and measurements to the tenant.
func (l *Ledger) Charge(tenant string, gpuSeconds float64, measurements int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(tenant)
	e.GPUSeconds += gpuSeconds
	e.Measurements += measurements
}

// AddJob counts one completed job against the tenant.
func (l *Ledger) AddJob(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entry(tenant).Jobs++
}

// Spend returns the tenant's accumulated spend (zero value for an unknown
// tenant).
func (l *Ledger) Spend(tenant string) TenantSpend {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.spend[tenant]; ok {
		out := *e
		out.BudgetGPUSeconds = l.budgets[tenant]
		return out
	}
	return TenantSpend{Tenant: tenant, BudgetGPUSeconds: l.budgets[tenant]}
}

// Remaining returns the tenant's unspent GPU seconds and whether the
// tenant is bounded at all (bounded=false means unlimited).
func (l *Ledger) Remaining(tenant string) (remaining float64, bounded bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	budget, ok := l.budgets[tenant]
	if !ok {
		return 0, false
	}
	spent := 0.0
	if e, found := l.spend[tenant]; found {
		spent = e.GPUSeconds
	}
	left := budget - spent
	if left < 0 {
		left = 0
	}
	return left, true
}

// Share returns the tenant's normalized spend — GPU seconds divided by
// its budget weight (1 for unbudgeted tenants). A fair scheduler serves
// the eligible tenant with the smallest share next, which converges on
// GPU-second allocation proportional to budgets.
func (l *Ledger) Share(tenant string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	weight := l.budgets[tenant]
	if weight <= 0 {
		weight = 1
	}
	spent := 0.0
	if e, ok := l.spend[tenant]; ok {
		spent = e.GPUSeconds
	}
	return spent / weight
}

// Snapshot returns every tenant's spend, sorted by tenant name so
// accounting endpoints render deterministically.
func (l *Ledger) Snapshot() []TenantSpend {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.spend)+len(l.budgets))
	seen := map[string]bool{}
	for name := range l.spend {
		names = append(names, name)
		seen[name] = true
	}
	for name := range l.budgets {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]TenantSpend, 0, len(names))
	for _, name := range names {
		e := TenantSpend{Tenant: name}
		if s, ok := l.spend[name]; ok {
			e = *s
		}
		e.BudgetGPUSeconds = l.budgets[name]
		out = append(out, e)
	}
	return out
}
