package tuner

import (
	"fmt"
	"math"

	"github.com/neuralcompile/glimpse/internal/acq"
	"github.com/neuralcompile/glimpse/internal/gp"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// DGP is the ICCV'21 baseline (Sun et al.): Bayesian optimization whose
// surrogate is a deep Gaussian process — a neural feature extractor
// pretrained on source-task tuning logs, with an exact GP head conditioned
// on target-task measurements. Knowledge transfers through the shared
// feature extractor; Expected Improvement drives acquisition. Like the
// other baselines it is hardware-agnostic: the extractor sees
// configuration features, never the architecture.
type DGP struct {
	BatchSize int // measurements per step (default 8; GP refits are costly)
	PoolSize  int // candidates EI-ranked per step (default 32× batch)
	// Source is the pretraining corpus: featurized configurations and
	// GFLOPS from other tuning runs of the same template kind.
	Source *TransferData
	// PretrainEpochs for the feature extractor (default 150).
	PretrainEpochs int
	// FeatureDim of the learned GP input space (default 6).
	FeatureDim int
}

// Name identifies the tuner.
func (d DGP) Name() string { return "dgp" }

// Tune runs the DGP loop under the budget.
func (d DGP) Tune(task workload.Task, sp *space.Space, m measure.Measurer,
	budget Budget, g *rng.RNG) (*Result, error) {

	if d.Source == nil || len(d.Source.Features) == 0 {
		return nil, fmt.Errorf("tuner: DGP requires source-task data for pretraining")
	}
	batch := d.BatchSize
	if batch <= 0 {
		batch = 8
	}
	pool := d.PoolSize
	if pool <= 0 {
		pool = 32 * batch
	}
	epochs := d.PretrainEpochs
	if epochs <= 0 {
		epochs = 150
	}
	featDim := d.FeatureDim
	if featDim <= 0 {
		featDim = 6
	}

	s, err := NewSession(d.Name(), task, sp, m, budget, g)
	if err != nil {
		return nil, err
	}

	deep := gp.NewDeepRegressor(len(d.Source.Features[0]), featDim, g.Split("deep"))
	// Normalize source targets so the extractor learns shape, not scale.
	srcY := normalizeTo01(d.Source.GFLOPS)
	if err := deep.PretrainSource(d.Source.Features, srcY, epochs, g.Split("pretrain")); err != nil {
		return nil, err
	}

	var xs [][]float64
	var ys []float64
	visited := map[int64]bool{}

	record := func(idxs []int64) error {
		results, err := s.MeasureBatch(idxs)
		if err != nil {
			return err
		}
		s.RecordInitialBatch(results)
		for i, r := range results {
			visited[idxs[i]] = true
			v := 0.0
			if r.Valid {
				v = r.GFLOPS
			}
			xs = append(xs, sp.FeaturesAt(idxs[i]))
			ys = append(ys, v)
		}
		return nil
	}

	// Warm start: condition the GP head on the source corpus itself and
	// pick the first batch by Expected Improvement — the transferred
	// posterior is DGP's whole point (Sun et al. §3).
	first := make([]int64, 0, batch)
	if err := deep.FitTarget(subsample(d.Source.Features, srcY, 160, g)); err == nil {
		type cand struct {
			idx int64
			ei  float64
		}
		var pool2 []cand
		for i := 0; i < pool; i++ {
			idx := sp.RandomIndex(g)
			mean, variance, err := deep.Predict(sp.FeaturesAt(idx))
			if err != nil {
				return nil, err
			}
			pool2 = append(pool2, cand{idx, acq.EI(mean, sqrtPos(variance), 1)})
		}
		n := s.Remaining(batch)
		for len(first) < n && len(pool2) > 0 {
			best := 0
			for j := 1; j < len(pool2); j++ {
				if pool2[j].ei > pool2[best].ei {
					best = j
				}
			}
			first = append(first, pool2[best].idx)
			pool2[best] = pool2[len(pool2)-1]
			pool2 = pool2[:len(pool2)-1]
		}
	}
	for len(first) < s.Remaining(batch) {
		first = append(first, sp.RandomIndex(g))
	}
	if err := record(first); err != nil {
		return nil, err
	}

	for !s.Done() {
		if err := deep.FitTarget(xs, normalizeTo01(ys)); err != nil {
			return nil, err
		}
		best01 := max01(ys)
		// Candidate pool: broad random exploration plus the incumbent's
		// neighbourhood (the GP posterior is most trustworthy near observed
		// data — annealing on the raw posterior mean chases extrapolation
		// artifacts), ranked by Expected Improvement.
		cands := make([]scoredCand, 0, pool)
		score := func(idx int64) error {
			if visited[idx] {
				return nil
			}
			mean, variance, err := deep.Predict(sp.FeaturesAt(idx))
			if err != nil {
				return err
			}
			cands = append(cands, scoredCand{idx, acq.EI(mean, sqrtPos(variance), best01)})
			return nil
		}
		for i := 0; i < pool; i++ {
			if err := score(sp.RandomIndex(g)); err != nil {
				return nil, err
			}
		}
		if bi := s.Snapshot().BestIndex; bi >= 0 {
			cursor := bi
			for i := 0; i < pool/2; i++ {
				cursor = sp.Neighbor(cursor, g)
				if err := score(cursor); err != nil {
					return nil, err
				}
				if i%8 == 7 {
					cursor = bi // restart the walk at the incumbent
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		// Pick the top-batch by EI.
		n := s.Remaining(batch)
		if n == 0 {
			break
		}
		selectTopEI(cands, n)
		idxs := make([]int64, 0, n)
		for i := 0; i < n && i < len(cands); i++ {
			idxs = append(idxs, cands[i].idx)
		}
		if err := record(idxs); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// scoredCand pairs a candidate index with its acquisition score.
type scoredCand struct {
	idx int64
	ei  float64
}

// selectTopEI partially sorts cands so the first n entries have the
// highest EI.
func selectTopEI(cands []scoredCand, n int) {
	for i := 0; i < n && i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].ei > cands[best].ei {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
}

// subsample caps a corpus at n rows (uniform, without replacement) so the
// warm-start GP factorization stays cheap.
func subsample(x [][]float64, y []float64, n int, g *rng.RNG) ([][]float64, []float64) {
	if len(x) <= n {
		return x, y
	}
	picks := g.SampleWithoutReplacement(len(x), n)
	ox := make([][]float64, 0, n)
	oy := make([]float64, 0, n)
	for _, i := range picks {
		ox = append(ox, x[i])
		oy = append(oy, y[i])
	}
	return ox, oy
}

// normalizeTo01 rescales values into [0, 1] by the observed max.
func normalizeTo01(v []float64) []float64 {
	mx := 0.0
	for _, x := range v {
		if x > mx {
			mx = x
		}
	}
	out := make([]float64, len(v))
	if mx == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / mx
	}
	return out
}

// max01 is the incumbent in normalized space: 1 when any measurement
// succeeded, 0 otherwise.
func max01(v []float64) float64 {
	for _, x := range v {
		if x > 0 {
			return 1
		}
	}
	return 0
}

func sqrtPos(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
