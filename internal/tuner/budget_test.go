package tuner

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// fixedCostMeasurer charges a constant GPU cost per measurement — the
// controlled substrate for budget-accounting tests.
type fixedCostMeasurer struct{ cost float64 }

func (f fixedCostMeasurer) MeasureBatch(_ workload.Task, _ *space.Space, idxs []int64) ([]gpusim.Result, error) {
	out := make([]gpusim.Result, len(idxs))
	for i := range out {
		out[i] = gpusim.Result{Valid: true, GFLOPS: 1, TimeMS: 1, CostSec: f.cost}
	}
	return out, nil
}

func (f fixedCostMeasurer) DeviceName() string { return "fixed-cost-test" }

// TestRemainingTrimsForGPUSecondsBudget is the regression test for
// Session.Remaining ignoring MaxGPUSeconds: a session bounded only by GPU
// seconds used to run every batch at full size and overshoot the budget by
// up to a whole batch. With the fix, batches shrink to the estimated fit
// and the overshoot is at most one measurement's cost.
func TestRemainingTrimsForGPUSecondsBudget(t *testing.T) {
	task, sp, _ := testSetup(t)
	const cost = 1.0
	budget := Budget{MaxGPUSeconds: 20.5}
	s, err := NewSession("test", task, sp, fixedCostMeasurer{cost: cost}, budget, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}

	const batch = 16
	for !s.Done() {
		idxs := make([]int64, batch)
		for i := range idxs {
			idxs[i] = int64(i)
		}
		if _, err := s.MeasureBatch(idxs); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Finish()

	// Batch 1 runs blind (no observed cost yet): 16 measurements, 16s.
	// Batch 2 must be trimmed to the 4 measurements that fit in the
	// remaining 4.5s — not another full 16.
	if len(res.History) < 2 {
		t.Fatalf("only %d batches ran", len(res.History))
	}
	second := res.History[1].Measurements - res.History[0].Measurements
	if second != 4 {
		t.Fatalf("second batch = %d measurements want 4 (trimmed to fit 4.5s at 1s/measurement)", second)
	}
	// Total overshoot is bounded by one measurement's cost, not a batch.
	if res.GPUSeconds > budget.MaxGPUSeconds+cost {
		t.Fatalf("GPU seconds %g overshoots budget %g by more than one measurement",
			res.GPUSeconds, budget.MaxGPUSeconds)
	}
	// And the session converges onto the bound rather than stalling under it.
	if res.GPUSeconds < budget.MaxGPUSeconds {
		t.Fatalf("GPU seconds %g stopped short of budget %g", res.GPUSeconds, budget.MaxGPUSeconds)
	}
}

// TestRemainingAppliesBothCaps: when both budget axes are set, the
// tighter one wins.
func TestRemainingAppliesBothCaps(t *testing.T) {
	task, sp, _ := testSetup(t)
	s, err := NewSession("test", task, sp, fixedCostMeasurer{cost: 2.0},
		Budget{MaxMeasurements: 100, MaxGPUSeconds: 10}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MeasureBatch([]int64{0, 1}); err != nil { // 4s used, mean 2s
		t.Fatal(err)
	}
	// 6s left at 2s/measurement → 3 fit; MaxMeasurements would allow 98.
	if got := s.Remaining(50); got != 3 {
		t.Fatalf("Remaining(50) = %d want 3 (GPU-seconds cap)", got)
	}
	// Measurement cap still applies when tighter.
	if got := s.Remaining(2); got != 2 {
		t.Fatalf("Remaining(2) = %d want 2", got)
	}
}

// TestRemainingZeroWhenBudgetSpent: once GPU seconds are exhausted the
// next batch is empty regardless of want.
func TestRemainingZeroWhenBudgetSpent(t *testing.T) {
	task, sp, _ := testSetup(t)
	s, err := NewSession("test", task, sp, fixedCostMeasurer{cost: 5.0},
		Budget{MaxGPUSeconds: 9}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MeasureBatch([]int64{0, 1}); err != nil { // 10s > 9s
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("session not done after exceeding GPU budget")
	}
	if got := s.Remaining(8); got != 0 {
		t.Fatalf("Remaining(8) = %d want 0", got)
	}
}
