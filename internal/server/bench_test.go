package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// BenchmarkServe drives a glimpsed server the way the service is meant
// to run: four concurrent sessions, a twelve-job multi-tenant stream at
// a 3:1 budget split, a mid-stream drain with a restart on the same
// state directory, and a final books check. Reported metrics
// (BENCH_serve.json via `make bench-serve`):
//
//	jobs/s          sustained completion rate across drain + restart
//	ttfp_p50_ms     median submit-to-first-progress latency
//	ttfp_p99_ms     tail submit-to-first-progress latency
//	lost_jobs       jobs not terminal after the restart — must be 0
//	resumed_jobs    jobs that were re-queued by the drain and finished
//	ledger_drift_s  |ledger GPU-seconds − Σ result GPU-seconds| — must be ~0
func BenchmarkServe(b *testing.B) {
	tk := testToolkit(b)
	for i := 0; i < b.N; i++ {
		benchServeOnce(b, fixedToolkits{tk})
	}
}

type benchJob struct {
	id        string
	submitted time.Time
	ttfp      time.Duration // submit → first step event; 0 if pre-drain stream saw none
}

func benchServeOnce(b *testing.B, provider ToolkitProvider) {
	dir := b.TempDir()
	newServer := func() (*Server, string) {
		s, err := New(Config{
			StateDir: dir,
			Sessions: 4,
			// A 20ms-per-batch floor stands in for real device time; it
			// guarantees the mid-stream drain below interrupts live
			// sessions, so the restart genuinely exercises resume.
			NewMeasurer: func(gpu string) (measure.Measurer, func() error, error) {
				m, err := measure.NewLocal(gpu)
				return slowMeasurer{inner: m, delay: 20 * time.Millisecond}, func() error { return nil }, err
			},
			Toolkits: provider,
			TenantBudgets: map[string]float64{
				"alpha": 30_000,
				"beta":  10_000,
			},
			Log: io.Discard,
		})
		if err != nil {
			b.Fatal(err)
		}
		addr, err := s.Start(context.Background(), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		return s, "http://" + addr
	}

	// The job stream: eight alpha jobs and four beta jobs across the
	// toolkit's task set, distinct seeds so nothing short-circuits.
	var specs []JobSpec
	tasks := []struct {
		model string
		l     int
	}{
		{workload.ResNet18, 4}, {workload.ResNet18, 5}, {workload.ResNet18, 7},
		{workload.ResNet18, 8}, {workload.ResNet18, 10}, {workload.ResNet18, 13},
		{workload.AlexNet, 2}, {workload.AlexNet, 3}, {workload.AlexNet, 8},
		{workload.AlexNet, 11}, {workload.VGG16, 8}, {workload.VGG16, 17},
	}
	for i, ref := range tasks {
		tenant := "alpha"
		if i%3 == 2 {
			tenant = "beta"
		}
		specs = append(specs, JobSpec{
			Model: ref.model, TaskIndex: ref.l, GPU: hwspec.TitanXp,
			Seed: int64(100 + i), Tenant: tenant, MaxMeasurements: 32,
		})
	}

	start := time.Now()
	s1, base1 := newServer()
	jobs := make([]*benchJob, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		jobs[i] = &benchJob{id: submitJob(b, base1, spec), submitted: time.Now()}
		// One SSE watcher per job records time-to-first-progress. The
		// stream closes on job completion or on the drain, whichever
		// comes first; jobs still queued at drain time report no sample.
		wg.Add(1)
		go func(j *benchJob) {
			defer wg.Done()
			resp, err := http.Get(base1 + "/v1/jobs/" + j.id + "/events")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				data, ok := strings.CutPrefix(sc.Text(), "data: ")
				if !ok {
					continue
				}
				var ev ProgressEvent
				if json.Unmarshal([]byte(data), &ev) == nil && ev.Kind == "step" {
					j.ttfp = time.Since(j.submitted)
					return
				}
			}
		}(jobs[i])
	}

	// Let the stream run until half the jobs have finished, then drain
	// mid-flight: in-progress sessions checkpoint, the rest stay queued.
	waitDone := func(base string, want int, timeout time.Duration) int {
		deadline := time.Now().Add(timeout)
		for {
			done := 0
			for _, v := range listJobs(b, base) {
				if v.State.terminal() {
					done++
				}
			}
			if done >= want || time.Now().After(deadline) {
				return done
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if done := waitDone(base1, len(specs)/3, 5*time.Minute); done < len(specs)/3 {
		b.Fatalf("only %d jobs finished before drain deadline", done)
	}
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	if err := s1.Drain(dctx); err != nil {
		cancel()
		b.Fatal(err)
	}
	cancel()
	wg.Wait() // drain severed every stream

	// Read the drained journal: jobs re-queued with a measurement log on
	// disk are the ones the restart will resume from a checkpoint.
	resumed := 0
	st, recovered, err := openStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range recovered {
		if j.State.terminal() {
			continue
		}
		if fi, err := os.Stat(st.measPath(j.ID)); err == nil && fi.Size() > 0 {
			resumed++
		}
	}
	if err := st.close(); err != nil {
		b.Fatal(err)
	}

	// Restart on the same state directory: checkpointed and queued jobs
	// must all run to completion with nothing lost.
	s2, base2 := newServer()
	waitDone(base2, len(specs), 10*time.Minute)
	lost := 0
	var resultSeconds float64
	for _, lv := range listJobs(b, base2) {
		v := getJob(b, base2, lv.ID) // the list view omits results
		if !v.State.terminal() {
			lost++
			continue
		}
		if v.State != StateDone {
			b.Fatalf("job %s ended %s: %s", v.ID, v.State, v.Detail)
		}
		resultSeconds += v.Result.GPUSeconds
	}
	elapsed := time.Since(start)

	// Books check: the recovered ledger's per-tenant GPU-second totals
	// must reconcile exactly with what the sessions reported spending.
	resp, err := http.Get(base2 + "/v1/tenants")
	if err != nil {
		b.Fatal(err)
	}
	var tv tenantsView
	derr := json.NewDecoder(resp.Body).Decode(&tv)
	if cerr := resp.Body.Close(); cerr != nil {
		b.Fatal(cerr)
	}
	if derr != nil {
		b.Fatal(derr)
	}
	var ledgerSeconds float64
	for _, ts := range tv.Tenants {
		ledgerSeconds += ts.GPUSeconds
	}
	drift := ledgerSeconds - resultSeconds
	if drift < 0 {
		drift = -drift
	}

	drainNow(b, s2)

	if lost != 0 {
		b.Fatalf("%d jobs lost across drain/restart", lost)
	}
	if resumed == 0 {
		b.Fatal("drain interrupted no sessions — the restart resumed nothing")
	}
	if drift > 1e-6 {
		b.Fatalf("ledger drift %.9f GPU-seconds (ledger %.6f vs results %.6f)",
			drift, ledgerSeconds, resultSeconds)
	}

	// Feed TTFP samples through the same histogram + estimator the service
	// metrics use, so the bench reports the numbers /telemetryz would show.
	ttfpHist := telemetry.NewHistogram(telemetry.LatencyBoundsMS())
	for _, j := range jobs {
		if j.ttfp > 0 {
			ttfpHist.Observe(float64(j.ttfp.Microseconds()) / 1000)
		}
	}
	ttfpSnap := ttfpHist.Snapshot("ttfp_ms")
	b.ReportMetric(float64(len(specs))/elapsed.Seconds(), "jobs/s")
	b.ReportMetric(ttfpSnap.Quantile(0.50), "ttfp_p50_ms")
	b.ReportMetric(ttfpSnap.Quantile(0.99), "ttfp_p99_ms")
	b.ReportMetric(float64(lost), "lost_jobs")
	b.ReportMetric(float64(resumed), "resumed_jobs")
	b.ReportMetric(drift, "ledger_drift_s")
}

func listJobs(t testing.TB, base string) []jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []jobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	return views
}
