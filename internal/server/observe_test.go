package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// syncBuffer is a tracer sink safe for concurrent writes from server
// goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) events(t testing.TB) []telemetry.SpanEvent {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []telemetry.SpanEvent
	err := tlog.ReadJSONLines(bytes.NewReader(s.b.Bytes()), func(line []byte) error {
		var ev telemetry.SpanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		out = append(out, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDistributedTraceAcrossRPC is the tentpole end-to-end check: a
// glimpsed server backed by two measured endpoints over real net/rpc,
// every process tracing to its own log. The merged logs must reassemble
// into one trace per job whose endpoint-side rpc_measure spans carry the
// job's TraceID and tenant, linked (not orphaned) to glimpsed's spans.
func TestDistributedTraceAcrossRPC(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions over RPC")
	}
	var epBufs [2]syncBuffer
	var epAddrs [2]string
	for i := range epBufs {
		ms, err := measure.NewServer([]string{hwspec.TitanXp})
		if err != nil {
			t.Fatal(err)
		}
		ms.SetTracer(telemetry.NewTracerProc(&epBufs[i], nil, fmt.Sprintf("ep%d", i)))
		addr, err := ms.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		epAddrs[i] = addr
		defer ms.Close()
	}

	var glimpsedBuf syncBuffer
	var next int
	var nextMu sync.Mutex
	s, base := newTestServer(t, t.TempDir(), func(c *Config) {
		c.Tracer = telemetry.NewTracerProc(&glimpsedBuf, nil, "glimpsed")
		c.NewMeasurer = func(gpu string) (measure.Measurer, func() error, error) {
			nextMu.Lock()
			addr := epAddrs[next%len(epAddrs)]
			next++
			nextMu.Unlock()
			r, err := measure.Dial(addr, gpu)
			if err != nil {
				return nil, nil, err
			}
			return r, r.Close, nil
		}
	})

	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 41, MaxMeasurements: 48, Tenant: "acme"}
	ids := []string{submitJob(t, base, spec)}
	spec.Seed = 42
	ids = append(ids, submitJob(t, base, spec))
	for _, id := range ids {
		if v := waitTerminal(t, base, id, 120*time.Second); v.State != StateDone {
			t.Fatalf("job %s ended %s", id, v.State)
		}
	}
	drainNow(t, s)

	procs := []telemetry.ProcTrace{
		{Proc: "glimpsed", Events: glimpsedBuf.events(t)},
		{Proc: "ep0", Events: epBufs[0].events(t)},
		{Proc: "ep1", Events: epBufs[1].events(t)},
	}
	traces := telemetry.MergeTraces(procs)
	byID := map[string]*telemetry.MergedTrace{}
	for _, tr := range traces {
		byID[tr.TraceID] = tr
	}

	epUsed := map[string]bool{}
	for _, id := range ids {
		tr := byID["job-"+id]
		if tr == nil {
			t.Fatalf("no merged trace for job %s (have %v)", id, len(traces))
		}
		if tr.JobID != id || tr.Tenant != "acme" {
			t.Fatalf("trace identity wrong for %s: %+v", id, tr)
		}
		if tr.Spans == 0 {
			t.Fatalf("trace %s has no spans", tr.TraceID)
		}
		// Walk the tree: rpc_measure spans must come from an endpoint
		// process, carry the job's identity, and hang off a glimpsed span
		// (i.e. not be orphan roots).
		var rpcSpans, orphanRPC int
		var walk func(n *telemetry.MergedSpan)
		walk = func(n *telemetry.MergedSpan) {
			if n.Event.Stage == telemetry.StageRPCMeasure && n.Event.Kind == "span" {
				rpcSpans++
				epUsed[n.Proc] = true
				if !strings.HasPrefix(n.Proc, "ep") {
					t.Fatalf("rpc_measure span from %q, want an endpoint", n.Proc)
				}
				if n.Event.JobID != id || n.Event.Tenant != "acme" {
					t.Fatalf("rpc_measure span lost job identity: %+v", n.Event)
				}
				if n.Orphan {
					orphanRPC++
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, r := range tr.Roots {
			walk(r)
		}
		if rpcSpans == 0 {
			t.Fatalf("trace %s has no endpoint rpc_measure spans", tr.TraceID)
		}
		if orphanRPC > 0 {
			t.Fatalf("%d rpc_measure spans orphaned in %s — parent IDs not propagated", orphanRPC, tr.TraceID)
		}
		// The critical path roots at whichever top-level span bounded the
		// job's latency: the job span itself, or — with one session and a
		// second job waiting — the (childless) queue_wait span.
		path := tr.CriticalPath()
		if len(path) == 0 {
			t.Fatalf("trace %s has no critical path", tr.TraceID)
		}
		switch root := path[0].Event.Stage; root {
		case telemetry.StageJob:
			if len(path) < 2 {
				t.Fatalf("critical path from the job span never descends: %d nodes", len(path))
			}
		case telemetry.StageQueueWait:
			// A queue-bound job: the wait leaf alone is the whole path.
		default:
			t.Fatalf("critical path rooted at unexpected stage %q", root)
		}
	}
	// Round-robin over two endpoints with two jobs must touch both.
	if len(epUsed) < 2 {
		t.Fatalf("expected both endpoints in the merged traces, got %v", epUsed)
	}
}

// TestMetricszReconcilesLedger: the per-tenant GPU-second float counter
// on /telemetryz must equal the ledger's total bit-for-bit, and /metricsz
// must render the labeled families.
func TestMetricszReconcilesLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	s, base := newTestServer(t, t.TempDir(), func(c *Config) {
		c.SLOs = SLOConfig{TTFPThresholdMS: 60_000, TTFPObjective: 0.95, AvailObjective: 0.95}
	})
	defer drainNow(t, s)
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 41, MaxMeasurements: 48, Tenant: "acme"}
	if v := waitTerminal(t, base, submitJob(t, base, spec), 120*time.Second); v.State != StateDone {
		t.Fatalf("job ended %s", v.State)
	}

	resp, err := http.Get(base + "/telemetryz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Tenants []struct {
			Tenant     string  `json:"tenant"`
			GPUSeconds float64 `json:"gpu_seconds"`
		} `json:"tenants"`
		SLOs    []SLOStatus        `json:"slos"`
		Metrics telemetry.Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if len(view.Tenants) != 1 || view.Tenants[0].Tenant != "acme" {
		t.Fatalf("tenants: %+v", view.Tenants)
	}
	var counter float64
	found := false
	for _, f := range view.Metrics.Floats {
		if f.Name == telemetry.Labeled("glimpsed_gpu_seconds", "tenant", "acme") {
			counter, found = f.Value, true
		}
	}
	if !found {
		t.Fatalf("no per-tenant gpu_seconds counter in %+v", view.Metrics.Floats)
	}
	// Exact equality: charge() feeds the ledger and the counter the same
	// deltas in the same order under one lock.
	if counter != view.Tenants[0].GPUSeconds {
		t.Fatalf("metrics gpu_seconds %v != ledger %v", counter, view.Tenants[0].GPUSeconds)
	}
	if len(view.SLOs) != 2 {
		t.Fatalf("slos: %+v", view.SLOs)
	}
	for _, slo := range view.SLOs {
		if slo.Total == 0 {
			t.Fatalf("SLO %s observed nothing", slo.Name)
		}
		if slo.Burn > 0 {
			t.Fatalf("SLO %s burning (%v) on a healthy run: %+v", slo.Name, slo.Burn, slo)
		}
	}

	mresp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"glimpsed_gpu_seconds{tenant=acme}", "glimpsed_jobs_done{tenant=acme}",
		"glimpsed_queue_wait_ms{tenant=acme}", "slo ttfp_latency", "slo availability"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metricsz missing %q:\n%s", want, text)
		}
	}
}

// TestTracedRunStreamByteIdentical: turning tracing on (without SLOs)
// must not change one byte of the job's SSE stream or its result — the
// determinism contract for the observability layer.
func TestTracedRunStreamByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 17, MaxMeasurements: 48, Tenant: "acme"}
	var streams [2]string
	var results [2][]byte
	for i, traced := range []bool{false, true} {
		var buf syncBuffer
		s, base := newTestServer(t, t.TempDir(), func(c *Config) {
			if traced {
				c.Tracer = telemetry.NewTracerProc(&buf, nil, "glimpsed")
			}
		})
		id := submitJob(t, base, spec)
		streams[i] = strings.Join(collectEvents(t, base, id), "\n")
		v := getJob(t, base, id)
		results[i] = resultBytes(t, v.Result)
		drainNow(t, s)
		if traced && len(buf.events(t)) == 0 {
			t.Fatal("traced run recorded no spans")
		}
	}
	if streams[0] != streams[1] {
		t.Fatalf("tracing changed the SSE stream:\n--- untraced ---\n%s\n--- traced ---\n%s",
			streams[0], streams[1])
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatalf("tracing changed the result:\n untraced %s\n traced   %s", results[0], results[1])
	}
}

// TestHubPublishNeverBlocksOnStalledConsumer: the hub buffers by cursor,
// so a subscriber that never drains cannot stall publishers.
func TestHubPublishNeverBlocksOnStalledConsumer(t *testing.T) {
	h := newHub()
	// A stalled consumer: grabs a wait handle and never reads again.
	_, _, wait := h.since("j1", 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			h.publish("j1", ProgressEvent{Kind: "progress"})
		}
		h.close("j1")
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a stalled consumer")
	}
	select {
	case <-wait:
	default:
		t.Fatal("stalled consumer's wait handle never signaled")
	}
	if got := len(h.history("j1")); got != 500 {
		t.Fatalf("history length %d, want 500", got)
	}
	// A late subscriber still replays the full stream.
	evs, doneFlag, _ := h.since("j1", 0)
	if len(evs) != 500 || !doneFlag {
		t.Fatalf("late subscriber: %d events, done=%v", len(evs), doneFlag)
	}
}

// TestSSEStalledClientNoGoroutineLeak: an SSE client that connects, stops
// reading, and disconnects must not leave the handler goroutine behind —
// the handler's wait select watches the request context.
func TestSSEStalledClientNoGoroutineLeak(t *testing.T) {
	s, base := newTestServer(t, t.TempDir(), func(c *Config) {
		c.Sessions = 0 // nothing runs; the stream just waits
	})
	defer drainNow(t, s)
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 41, MaxMeasurements: 48, Tenant: "acme"}
	id := submitJob(t, base, spec)

	before := runtime.NumGoroutine()
	const clients = 8
	for i := 0; i < clients; i++ {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		// Read the first bytes so the handler is live, then hang up
		// without draining.
		one := make([]byte, 1)
		if _, err := resp.Body.Read(one); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after stalled SSE clients", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
