package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// Config configures a glimpsed Server.
type Config struct {
	// StateDir holds the job journal and per-job measurement logs — the
	// durable state that survives restarts. Required.
	StateDir string
	// Sessions is the number of tuning sessions run concurrently
	// (default 4).
	Sessions int
	// MaxQueued caps pending jobs; submissions beyond it are rejected
	// with 429 + Retry-After (default 256).
	MaxQueued int
	// DefaultBudget bounds measurements when a spec leaves both budget
	// axes unset (default 192, matching cmd/glimpse).
	DefaultBudget int
	// TenantBudgets maps tenant name to its total GPU-second budget;
	// the budget doubles as the tenant's fair-share weight.
	TenantBudgets map[string]float64
	// CachePath points at a persistent tuned-config store (optional):
	// exact hits are served with zero measurements, misses warm-start.
	CachePath     string
	CacheReadOnly bool
	// WarmK is the donor-device count per warm start (default 3).
	WarmK int
	// ArtifactsDir persists trained toolkits across restarts (optional;
	// used by the default ToolkitProvider).
	ArtifactsDir string
	// Toolkits supplies trained toolkits (default: train-and-cache,
	// NewTrainingToolkits(ArtifactsDir)).
	Toolkits ToolkitProvider
	// NewMeasurer builds the per-job measurement backend for a GPU; the
	// returned closer runs when the job stops. Default: the in-process
	// simulator.
	NewMeasurer func(gpu string) (m measure.Measurer, closer func() error, err error)
	// Log receives operational messages (default os.Stderr; io.Discard
	// silences).
	Log io.Writer
	// Tracer records the service's side of each job's distributed trace:
	// queue_wait and job spans keyed by "job-<id>", with the session's
	// step/measure spans (and, over RPC, the endpoints' rpc_measure
	// spans) below them. Nil disables tracing; traced and untraced runs
	// produce byte-identical results.
	Tracer *telemetry.Tracer
	// Metrics receives the per-tenant service metric families served on
	// /metricsz and /telemetryz (default: a private registry).
	Metrics *telemetry.Registry
	// Clock times queue waits, step latencies, and time-to-first-progress
	// (default SystemClock; tests inject a *telemetry.FakeClock). It
	// feeds observability only, never the tuning loop.
	Clock telemetry.Clock
	// SLOs configures service-level objectives. The zero value disables
	// SLO tracking, keeping the SSE wire format exactly as documented.
	SLOs SLOConfig
}

// runningJob tracks one in-flight session and its control channels.
type runningJob struct {
	job       *Job
	preempt   chan struct{} // closed: yield back to the queue
	cancel    chan struct{} // closed: stop with state canceled
	preempted bool          // close-once guards, under Server.mu
	canceled  bool
}

// Server is the glimpsed daemon: a job queue, a worker pool of resumable
// tuning sessions, an SSE hub, and the HTTP API tying them together.
type Server struct {
	cfg    Config
	store  *store
	queue  *queue
	hub    *hub
	ledger *tuner.Ledger
	cache  *cache.Store

	tracer  *telemetry.Tracer
	metrics *telemetry.Registry
	clock   telemetry.Clock
	slo     *sloTracker
	// chargeMu serializes ledger charges with their mirrored gpu_seconds
	// counter updates so the two totals reconcile exactly (see charge).
	chargeMu sync.Mutex

	hs       *http.Server
	ln       net.Listener
	workerWG sync.WaitGroup
	httpWG   sync.WaitGroup

	mu            sync.Mutex
	jobs          map[string]*Job
	order         []*Job // submission order
	running       map[string]*runningJob
	draining      bool
	started       bool
	cancelWorkers context.CancelFunc
}

// New opens the state directory, recovers journaled jobs (re-enqueuing
// any that were interrupted), rebuilds the tenant ledger from recorded
// results and measurement logs, and opens the tuned-config cache.
// Call Start to begin serving.
func New(cfg Config) (*Server, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 256
	}
	if cfg.DefaultBudget <= 0 {
		cfg.DefaultBudget = 192
	}
	if cfg.WarmK <= 0 {
		cfg.WarmK = 3
	}
	if cfg.Toolkits == nil {
		cfg.Toolkits = NewTrainingToolkits(cfg.ArtifactsDir)
	}
	if cfg.NewMeasurer == nil {
		cfg.NewMeasurer = func(gpu string) (measure.Measurer, func() error, error) {
			m, err := measure.NewLocal(gpu)
			return m, func() error { return nil }, err
		}
	}
	if cfg.Log == nil {
		cfg.Log = os.Stderr
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.Clock == nil {
		cfg.Clock = telemetry.SystemClock()
	}

	st, recovered, err := openStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	ledger := tuner.NewLedger()
	for tenant, budget := range cfg.TenantBudgets {
		ledger.SetBudget(tenant, budget)
	}
	s := &Server{
		cfg:     cfg,
		store:   st,
		queue:   newQueue(ledger),
		hub:     newHub(),
		ledger:  ledger,
		tracer:  cfg.Tracer,
		metrics: cfg.Metrics,
		clock:   cfg.Clock,
		slo:     newSLOTracker(cfg.SLOs),
		jobs:    map[string]*Job{},
		running: map[string]*runningJob{},
	}
	if cfg.CachePath != "" {
		if cfg.CacheReadOnly {
			s.cache, err = cache.OpenReadOnly(cfg.CachePath)
		} else {
			s.cache, err = cache.Open(cfg.CachePath)
		}
		if err != nil {
			_ = st.close()
			return nil, err
		}
	}
	s.recoverJobs(recovered)
	return s, nil
}

// recover rebuilds in-memory state from journaled jobs: the ledger is
// re-charged from results and partial measurement logs (so post-restart
// accounting still reconciles with total session spend), terminal jobs
// get their streams replayed and closed, and interrupted jobs re-enter
// the queue in submission order.
func (s *Server) recoverJobs(recovered []*Job) {
	for _, j := range recovered {
		s.jobs[j.ID] = j
		s.order = append(s.order, j)
		switch {
		case j.State == StateDone && j.Result != nil:
			s.charge(j.Spec.Tenant, j.Result.GPUSeconds, j.Result.Measurements)
			s.ledger.AddJob(j.Spec.Tenant)
		default:
			// Failed, canceled, and interrupted jobs spent whatever their
			// measurement logs recorded.
			if data, err := os.ReadFile(s.store.measPath(j.ID)); err == nil {
				if entries, err := tlog.Read(bytes.NewReader(data)); err == nil {
					s.charge(j.Spec.Tenant, tlog.GPUSeconds(entries), len(entries))
				}
			}
		}
		if j.State.terminal() {
			s.hub.publish(j.ID, ProgressEvent{Kind: "state", State: string(j.State), Detail: j.Detail})
			if j.Result != nil {
				s.hub.publish(j.ID, ProgressEvent{
					Kind:         "result",
					Measurements: j.Result.Measurements,
					BestGFLOPS:   j.Result.BestGFLOPS,
					GPUSeconds:   j.Result.GPUSeconds,
				})
			}
			s.hub.close(j.ID)
			continue
		}
		s.hub.publish(j.ID, ProgressEvent{Kind: "state", State: string(StateQueued), Detail: j.Detail})
		s.beginQueueWait(j)
		s.queue.push(j)
	}
}

// Start binds the listener, launches the worker pool and the HTTP
// serving loop, and returns the bound address. ctx is the root the
// workers run under; canceling it checkpoints every in-flight session
// (Drain does this and also shuts the HTTP side down).
func (s *Server) Start(ctx context.Context, addr string) (string, error) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return "", fmt.Errorf("server: already started")
	}
	s.started = true
	s.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	wctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.ln = ln
	s.cancelWorkers = cancel
	s.hs = &http.Server{Handler: s.routes()}
	s.mu.Unlock()

	for i := 0; i < s.cfg.Sessions; i++ {
		s.workerWG.Add(1)
		go s.worker(wctx)
	}
	s.httpWG.Add(1)
	go s.serveHTTP()
	return ln.Addr().String(), nil
}

// worker runs queued jobs until its context is canceled. Joined by
// workerWG; canceling the Start context stops it at the next step
// boundary.
func (s *Server) worker(ctx context.Context) {
	defer s.workerWG.Done()
	for {
		// Check cancellation before popping: runJob requeues drained jobs,
		// so popping past cancellation would spin on the same job forever.
		select {
		case <-ctx.Done():
			return
		default:
		}
		j := s.queue.pop()
		if j == nil {
			select {
			case <-ctx.Done():
				return
			case <-s.queue.wake:
				continue
			}
		}
		rj := &runningJob{job: j, preempt: make(chan struct{}), cancel: make(chan struct{})}
		s.mu.Lock()
		s.running[j.ID] = rj
		s.mu.Unlock()
		s.runJob(ctx, rj)
		s.mu.Lock()
		delete(s.running, j.ID)
		s.mu.Unlock()
	}
}

// serveHTTP is the accept loop; http.ErrServerClosed is the clean
// shutdown path. Joined by httpWG via Drain/Close calling hs.Shutdown.
func (s *Server) serveHTTP() {
	defer s.httpWG.Done()
	if err := s.hs.Serve(s.ln); err != nil && err != http.ErrServerClosed {
		s.logf("glimpsed: http serve: %v\n", err)
	}
}

// Addr returns the bound address (after Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain shuts the server down gracefully: new submissions get 503 +
// Retry-After, every in-flight session checkpoints at its next step
// boundary and re-journals as queued (zero lost jobs), SSE streams are
// severed, and the HTTP server shuts down under ctx. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	cancel := s.cancelWorkers
	hs := s.hs
	s.mu.Unlock()

	if cancel != nil {
		cancel()
	}
	// Sessions checkpoint between steps; a step is one measurement batch,
	// so this wait is bounded by single-batch latency.
	s.workerWG.Wait()
	s.hub.closeAll()
	var firstErr error
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			firstErr = err
		}
	}
	s.httpWG.Wait()
	if err := s.closeStores(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// DrainForced drains gracefully, but a receive on force (typically a
// second SIGTERM) abandons the graceful path and closes immediately.
// Lives here rather than in cmd/glimpsed because command mains spawn no
// goroutines (the rawgo contract); the helper goroutine's send lands in
// a buffered channel, so it completes even when force wins the race.
func (s *Server) DrainForced(ctx context.Context, force <-chan os.Signal) error {
	done := make(chan error, 1)
	go func() { done <- s.Drain(ctx) }()
	select {
	case err := <-done:
		return err
	case <-force:
		return s.Close()
	}
}

// Close shuts down without waiting for in-flight HTTP requests (workers
// still checkpoint; the job journal stays consistent).
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	cancel := s.cancelWorkers
	hs := s.hs
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.workerWG.Wait()
	s.hub.closeAll()
	var firstErr error
	if hs != nil && !alreadyDraining {
		if err := hs.Close(); err != nil {
			firstErr = err
		}
	}
	s.httpWG.Wait()
	if err := s.closeStores(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (s *Server) closeStores() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	err := s.store.close()
	s.store.f = nil
	s.store = nil
	if s.cache != nil {
		if cerr := s.cache.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.cache = nil
	}
	return err
}

// setState journals and publishes a non-terminal state transition.
func (s *Server) setState(j *Job, state JobState, detail string) {
	s.mu.Lock()
	j.State = state
	j.Detail = detail
	snap := *j
	s.mu.Unlock()
	if err := s.store.appendState(&snap); err != nil {
		s.logf("glimpsed: job %s: journal: %v\n", j.ID, err)
	}
	s.hub.publish(j.ID, ProgressEvent{Kind: "state", State: string(state), Detail: detail})
}

// requeue sends a preempted or drained job back to the queue; its
// measurement log checkpoint makes the next run resume where it
// stopped.
func (s *Server) requeue(j *Job, detail string) {
	s.setState(j, StateQueued, detail)
	s.beginQueueWait(j)
	s.queue.push(j)
}

// finishJob journals and publishes a terminal transition, closing the
// job's stream.
func (s *Server) finishJob(j *Job, state JobState, detail string, res *tuner.Result) {
	s.mu.Lock()
	j.State = state
	j.Detail = detail
	if res != nil {
		j.Result = res
	}
	snap := *j
	s.mu.Unlock()
	if err := s.store.appendState(&snap); err != nil {
		s.logf("glimpsed: job %s: journal: %v\n", j.ID, err)
	}
	// Outcome metrics and SLO accounting precede the publish so the burn
	// stamped on the terminal event reflects this job's own outcome.
	switch state {
	case StateDone:
		s.tenantCounter(mJobsDone, j.Spec.Tenant).Inc()
		s.slo.observeOutcome(true)
	case StateFailed:
		s.tenantCounter(mJobsFailed, j.Spec.Tenant).Inc()
		s.slo.observeOutcome(false)
	}
	ev := ProgressEvent{Kind: "state", State: string(state), Detail: detail}
	if s.slo != nil {
		ev.SLOBurn = s.slo.maxBurn()
	}
	s.hub.publish(j.ID, ev)
	if res != nil {
		s.hub.publish(j.ID, ProgressEvent{
			Kind:         "result",
			Measurements: res.Measurements,
			BestGFLOPS:   res.BestGFLOPS,
			GPUSeconds:   res.GPUSeconds,
		})
	}
	s.hub.close(j.ID)
}

// maybePreempt fires when a submission outranks every idle slot: if all
// workers are busy and the lowest-priority running job ranks below the
// new one, that session yields at its next step boundary and re-queues
// (keeping its checkpoint), freeing the slot for the fair-queue pick.
func (s *Server) maybePreempt(newJob *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.running) < s.cfg.Sessions {
		return
	}
	var victim *runningJob
	for _, rj := range s.running {
		if rj.preempted || rj.canceled {
			continue
		}
		if victim == nil ||
			rj.job.Spec.Priority < victim.job.Spec.Priority ||
			(rj.job.Spec.Priority == victim.job.Spec.Priority && rj.job.seq > victim.job.seq) {
			victim = rj
		}
	}
	if victim != nil && victim.job.Spec.Priority < newJob.Spec.Priority {
		victim.preempted = true
		s.tenantCounter(mPreemptions, victim.job.Spec.Tenant).Inc()
		close(victim.preempt)
	}
}

func (s *Server) logf(format string, args ...any) {
	_, _ = fmt.Fprintf(s.cfg.Log, format, args...)
}

// ---- HTTP API ----

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /telemetryz", s.handleTelemetryz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// A failed encode means the client went away mid-response.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "10")
		writeError(w, http.StatusServiceUnavailable, "server draining, resubmit after restart")
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	spec.normalize(s.cfg.DefaultBudget)
	if err := spec.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.queue.depth() >= s.cfg.MaxQueued {
		s.tenantCounter(mRejections, spec.Tenant).Inc()
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusTooManyRequests, "job queue full")
		return
	}

	s.mu.Lock()
	id := s.store.nextID()
	j := &Job{ID: id, Spec: spec, State: StateQueued}
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err == nil {
		j.seq = n
	}
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()

	if err := s.store.appendSubmit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("journal: %v", err))
		return
	}
	s.hub.publish(id, ProgressEvent{Kind: "state", State: string(StateQueued)})
	s.beginQueueWait(j)
	s.queue.push(j)
	s.maybePreempt(j)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": string(StateQueued)})
}

// jobView is the API projection of a Job (stable field order).
type jobView struct {
	ID     string        `json:"id"`
	State  JobState      `json:"state"`
	Tenant string        `json:"tenant"`
	Spec   JobSpec       `json:"spec"`
	Detail string        `json:"detail,omitempty"`
	Cached bool          `json:"cached,omitempty"`
	Warm   bool          `json:"warm,omitempty"`
	Result *tuner.Result `json:"result,omitempty"`
}

func (s *Server) viewOf(j *Job, withResult bool) jobView {
	v := jobView{ID: j.ID, State: j.State, Tenant: j.Spec.Tenant, Spec: j.Spec,
		Detail: j.Detail, Cached: j.Cached, Warm: j.Warm}
	if withResult {
		v.Result = j.Result
	}
	return v
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobView, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, s.viewOf(j, false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	v := s.viewOf(j, true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	state := j.State
	res := j.Result
	s.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s, no result yet", state))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	if j.State.terminal() {
		state := j.State
		s.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Sprintf("job already %s", state))
		return
	}
	if rj, running := s.running[id]; running {
		if !rj.canceled {
			rj.canceled = true
			close(rj.cancel)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceling"})
		return
	}
	s.mu.Unlock()
	if s.queue.remove(id) {
		s.endQueueWait(j)
		s.finishJob(j, StateCanceled, "canceled while queued", nil)
		s.discardSessionLog(id)
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": string(StateCanceled)})
		return
	}
	// Lost the race with a worker pop: the job is running now, cancel it
	// there.
	s.mu.Lock()
	if rj, running := s.running[id]; running && !rj.canceled {
		rj.canceled = true
		close(rj.cancel)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceling"})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.lookup(id); !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	cursor := 0
	for {
		evs, done, wait := s.hub.since(id, cursor)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, data); err != nil {
				return
			}
		}
		if len(evs) > 0 {
			flusher.Flush()
			cursor += len(evs)
			continue
		}
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// tenantsView reconciles queue/ledger accounting for operators and the
// bench harness.
type tenantsView struct {
	Tenants []tuner.TenantSpend `json:"tenants"`
	Queued  int                 `json:"queued"`
	Running int                 `json:"running"`
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running := len(s.running)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, tenantsView{
		Tenants: s.ledger.Snapshot(),
		Queued:  s.queue.depth(),
		Running: running,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true, "draining": draining})
}

// jobsSorted is a test/debug helper: all jobs in submission order.
func (s *Server) jobsSorted() []jobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]jobView, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, s.viewOf(j, true))
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
