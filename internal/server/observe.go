package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// Per-tenant metric family names. Each family is labeled by tenant
// (telemetry.Labeled), so one registry serves every tenant and names sort
// into per-family groups on /metricsz.
const (
	mQueueWaitMS = "glimpsed_queue_wait_ms"      // histogram: push -> worker pop
	mTTFPMS      = "glimpsed_ttfp_ms"            // histogram: submit -> first progress
	mStepMS      = "glimpsed_step_ms"            // histogram: one TuneSession.Step
	mPreemptions = "glimpsed_preemptions"        // counter: sessions yielded to higher priority
	mCacheHits   = "glimpsed_cache_hits"         // counter: jobs served from the tuned-config store
	mRejections  = "glimpsed_admission_rejected" // counter: submissions bounced by the queue cap
	mGPUSeconds  = "glimpsed_gpu_seconds"        // fcounter: ledger-reconciled tenant spend
	mJobsDone    = "glimpsed_jobs_done"          // counter: terminal done
	mJobsFailed  = "glimpsed_jobs_failed"        // counter: terminal failed
)

func (s *Server) tenantCounter(family, tenant string) *telemetry.Counter {
	return s.metrics.Counter(telemetry.Labeled(family, "tenant", tenant))
}

func (s *Server) tenantHist(family, tenant string) *telemetry.Histogram {
	return s.metrics.Histogram(telemetry.Labeled(family, "tenant", tenant), telemetry.LatencyBoundsMS())
}

// charge is the single path for tenant spend: the ledger and the
// per-tenant gpu_seconds counter are updated under one mutex, in the same
// order, with the same float64 deltas — so the /metricsz totals reconcile
// exactly (bitwise) with tuner.Ledger.Snapshot at any instant.
func (s *Server) charge(tenant string, gpuSeconds float64, measurements int) {
	s.chargeMu.Lock()
	s.ledger.Charge(tenant, gpuSeconds, measurements)
	s.metrics.FloatCounter(telemetry.Labeled(mGPUSeconds, "tenant", tenant)).Add(gpuSeconds)
	s.chargeMu.Unlock()
}

// jobTrace is the job's root trace context: the trace ID derives from the
// job ID, so a recovered job rejoins the same distributed trace it
// started in a previous server life, and every process's spans for one
// job merge under one TraceID (cmd/tracereport -merge).
func (s *Server) jobTrace(j *Job) telemetry.SpanContext {
	return telemetry.SpanContext{TraceID: "job-" + j.ID, JobID: j.ID, Tenant: j.Spec.Tenant}
}

// beginQueueWait opens the job's queue_wait span and stamps the wait
// start. Called whenever the job (re)enters the queue: submit, requeue
// after preemption or drain, and recovery.
func (s *Server) beginQueueWait(j *Job) {
	now := s.clock.Now()
	sp, _ := s.tracer.StartSpan(s.jobTrace(j), telemetry.StageQueueWait)
	s.mu.Lock()
	if j.created.IsZero() {
		j.created = now
	}
	j.queuedAt = now
	j.queueSpan = sp
	s.mu.Unlock()
}

// endQueueWait closes the open queue_wait span (if any) and feeds the
// wait into the tenant's queue-wait histogram. Called when a worker pops
// the job, and when a queued job is canceled.
func (s *Server) endQueueWait(j *Job) {
	now := s.clock.Now()
	s.mu.Lock()
	sp := j.queueSpan
	j.queueSpan = telemetry.Span{}
	queuedAt := j.queuedAt
	j.queuedAt = time.Time{}
	tenant := j.Spec.Tenant
	s.mu.Unlock()
	sp.End()
	if !queuedAt.IsZero() {
		s.tenantHist(mQueueWaitMS, tenant).Observe(float64(now.Sub(queuedAt).Microseconds()) / 1000)
	}
}

// observeFirstProgress records the job's time-to-first-progress — once
// per job lifetime, however many times it is preempted and resumed — into
// the tenant's ttfp histogram and the latency SLO.
func (s *Server) observeFirstProgress(j *Job) {
	now := s.clock.Now()
	s.mu.Lock()
	if j.ttfpSeen || j.created.IsZero() {
		s.mu.Unlock()
		return
	}
	j.ttfpSeen = true
	created := j.created
	tenant := j.Spec.Tenant
	s.mu.Unlock()
	ms := float64(now.Sub(created).Microseconds()) / 1000
	s.tenantHist(mTTFPMS, tenant).Observe(ms)
	s.slo.observeTTFP(ms)
}

// telemetryView is the /telemetryz body: service shape, per-tenant ledger
// spend, SLO status, and the full metrics snapshot — everything
// cmd/glimpsetop renders in one poll.
type telemetryView struct {
	Draining bool                `json:"draining"`
	Sessions int                 `json:"sessions"`
	Queued   int                 `json:"queued"`
	Running  int                 `json:"running"`
	Jobs     int                 `json:"jobs"`
	Tenants  []tuner.TenantSpend `json:"tenants"`
	SLOs     []SLOStatus         `json:"slos,omitempty"`
	Metrics  telemetry.Snapshot  `json:"metrics"`
}

func (s *Server) telemetryView() telemetryView {
	s.mu.Lock()
	v := telemetryView{
		Draining: s.draining,
		Sessions: s.cfg.Sessions,
		Running:  len(s.running),
		Jobs:     len(s.order),
	}
	s.mu.Unlock()
	v.Queued = s.queue.depth()
	v.Tenants = s.ledger.Snapshot()
	v.SLOs = s.slo.snapshot()
	v.Metrics = s.metrics.Snapshot()
	return v
}

func (s *Server) handleTelemetryz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.telemetryView())
}

// handleMetricsz renders the registry (and SLO status, when configured)
// as a fixed-width text table for operators and scrapers.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString(s.metrics.Snapshot().Table("glimpsed metrics"))
	for _, st := range s.slo.snapshot() {
		fmt.Fprintf(&b, "slo %-14s objective=%.4g good=%d total=%d bad=%.4g burn=%.4g\n",
			st.Name, st.Objective, st.Good, st.Total, st.BadFraction, st.Burn)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(b.String())) // client gone mid-reply is its problem
}
