// Package server implements glimpsed, the long-running tuning service:
// an HTTP daemon that accepts tuning jobs (workload + target GPU + budget
// + tenant + priority), runs up to Config.Sessions of them concurrently
// as resumable core.TuneSession step loops behind a tenant-fair priority
// queue, streams per-step progress over SSE, serves exact cache hits and
// warm starts from a tuned-config store, accounts every GPU second to the
// submitting tenant, and drains gracefully: SIGTERM checkpoints every
// in-flight session's measurement log so a restarted server finishes the
// same jobs with byte-identical results and zero lost work.
package server

import (
	"fmt"
	"time"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// JobSpec is a client's tuning request. Field order is part of the wire
// contract (DESIGN.md §13): specs marshal in struct order, so submitted
// jobs round-trip byte-stably through the job store and the API.
type JobSpec struct {
	Model     string `json:"model"`
	TaskIndex int    `json:"task_index"` // 1-based, as in cmd/glimpse -tasks
	GPU       string `json:"gpu"`
	Seed      int64  `json:"seed,omitempty"` // 0 means 1, the cmd/glimpse default
	Tenant    string `json:"tenant,omitempty"`
	Priority  int    `json:"priority,omitempty"` // higher preempts lower within the queue
	// Budget axes; with both zero the server default (192 measurements)
	// applies. Patience 0 means the default (4); negative disables early
	// stopping.
	MaxMeasurements int     `json:"max_measurements,omitempty"`
	MaxGPUSeconds   float64 `json:"max_gpu_seconds,omitempty"`
	Patience        int     `json:"patience,omitempty"`
	Epsilon         float64 `json:"epsilon,omitempty"`
}

// normalize applies server defaults in place. defaultBudget bounds
// measurements when the spec leaves both budget axes unset.
func (s *JobSpec) normalize(defaultBudget int) {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.MaxMeasurements <= 0 && s.MaxGPUSeconds <= 0 {
		s.MaxMeasurements = defaultBudget
	}
	switch {
	case s.Patience == 0:
		s.Patience = 4
	case s.Patience < 0:
		s.Patience = 0
	}
	if s.Epsilon == 0 {
		s.Epsilon = 0.01
	}
}

// validate resolves the workload and device references.
func (s *JobSpec) validate() error {
	if _, err := workload.TaskByIndex(s.Model, s.TaskIndex); err != nil {
		return err
	}
	if _, err := hwspec.ByName(s.GPU); err != nil {
		return err
	}
	return nil
}

// budget converts the normalized spec's budget axes.
func (s *JobSpec) budget() tuner.Budget {
	return tuner.Budget{
		MaxMeasurements: s.MaxMeasurements,
		MaxGPUSeconds:   s.MaxGPUSeconds,
		Patience:        s.Patience,
		Epsilon:         s.Epsilon,
	}
}

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle: queued -> running -> done | failed | canceled, with
// running -> queued on preemption or drain (the measurement log is the
// checkpoint that makes re-running cheap).
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

func (st JobState) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// Job is one tracked tuning job. Mutable fields are guarded by the
// server mutex; handlers serve copies.
type Job struct {
	ID     string        `json:"id"`
	Spec   JobSpec       `json:"spec"`
	State  JobState      `json:"state"`
	Detail string        `json:"detail,omitempty"`
	Cached bool          `json:"cached,omitempty"` // served from the tuned-config store
	Warm   bool          `json:"warm,omitempty"`   // warm-started from donor devices
	Result *tuner.Result `json:"result,omitempty"`

	seq int // arrival order; FIFO tie-break within (tenant, priority)

	// Observability bookkeeping, guarded by the server mutex. These feed
	// metrics and traces only — never scheduling — and are process-local
	// (not journaled): a restarted server restarts the clocks.
	created   time.Time      // first enqueue this process; TTFP base
	queuedAt  time.Time      // current queue-wait start (zero: not queued)
	queueSpan telemetry.Span // open queue_wait span, ended at dequeue
	ttfpSeen  bool           // time-to-first-progress already observed
}

// ProgressEvent is one record on a job's SSE stream. The field order is
// the documented wire order (DESIGN.md §13): records marshal in struct
// order and carry no wall-clock fields, so the event stream for a given
// job spec and seed is deterministic byte for byte — two runs of the same
// job (or a drained run resumed on a fresh server) diff clean.
type ProgressEvent struct {
	Seq          int     `json:"seq"`
	Job          string  `json:"job"`
	Kind         string  `json:"kind"` // "state" | "step" | "result"
	State        string  `json:"state,omitempty"`
	Step         int     `json:"step,omitempty"`
	Measurements int     `json:"measurements,omitempty"`
	BestGFLOPS   float64 `json:"best_gflops,omitempty"`
	GPUSeconds   float64 `json:"gpu_seconds,omitempty"`
	Detail       string  `json:"detail,omitempty"`
	// SLOBurn is the service's worst error-budget burn rate at publish
	// time, stamped on terminal state events only when Config.SLOs is
	// set. With SLOs unconfigured the field is never populated, so the
	// deterministic byte-for-byte stream contract above is unchanged;
	// with SLOs on, burn reflects cross-job service state and is excluded
	// from that contract (DESIGN.md §14).
	SLOBurn float64 `json:"slo_burn,omitempty"`
}

func jobID(seq int) string { return fmt.Sprintf("j%d", seq) }
