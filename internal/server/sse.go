package server

import "sync"

// hub fans a job's ProgressEvents out to any number of SSE subscribers
// losslessly: every published event is retained for the job's lifetime
// and subscribers read by cursor, so a client that connects late (or
// re-connects after a network drop) replays the full stream from seq 1
// and still ends byte-identical to a client that watched live. Ordering
// and content are deterministic per job; only inter-job interleaving
// varies with scheduling.
type hub struct {
	mu      sync.Mutex
	streams map[string]*stream
}

type stream struct {
	events []ProgressEvent
	done   bool // terminal: no further events will be published
	// notify is closed (and replaced) on every publish and on close, the
	// broadcast that wakes cursor-waiting subscribers.
	notify chan struct{}
}

func newHub() *hub {
	return &hub{streams: map[string]*stream{}}
}

func (h *hub) stream(jobID string) *stream {
	st, ok := h.streams[jobID]
	if !ok {
		st = &stream{notify: make(chan struct{})}
		h.streams[jobID] = st
	}
	return st
}

// publish appends an event to the job's stream, assigning its per-job
// sequence number, and wakes subscribers. Publishing to a closed stream
// is ignored.
func (h *hub) publish(jobID string, ev ProgressEvent) {
	h.mu.Lock()
	st := h.stream(jobID)
	if st.done {
		h.mu.Unlock()
		return
	}
	ev.Seq = len(st.events) + 1
	ev.Job = jobID
	st.events = append(st.events, ev)
	old := st.notify
	st.notify = make(chan struct{})
	h.mu.Unlock()
	close(old)
}

// close marks the job's stream terminal and wakes subscribers so they
// can flush the tail and return.
func (h *hub) close(jobID string) {
	h.mu.Lock()
	st := h.stream(jobID)
	if st.done {
		h.mu.Unlock()
		return
	}
	st.done = true
	old := st.notify
	st.notify = make(chan struct{})
	h.mu.Unlock()
	close(old)
}

// closeAll severs every stream (server drain): subscribers drain what
// was published and disconnect.
func (h *hub) closeAll() {
	h.mu.Lock()
	var wakes []chan struct{}
	for _, st := range h.streams {
		if !st.done {
			st.done = true
			wakes = append(wakes, st.notify)
			st.notify = make(chan struct{})
		}
	}
	h.mu.Unlock()
	for _, ch := range wakes {
		close(ch)
	}
}

// since returns the events past the cursor, whether the stream is
// terminal, and a channel that is closed on the next publish/close —
// the subscriber's wait handle when it has caught up.
func (h *hub) since(jobID string, cursor int) (evs []ProgressEvent, done bool, wait <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stream(jobID)
	if cursor < len(st.events) {
		evs = append(evs, st.events[cursor:]...)
	}
	return evs, st.done, st.notify
}

// history returns a copy of everything published so far (test and
// debugging hook).
func (h *hub) history(jobID string) []ProgressEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[jobID]
	if !ok {
		return nil
	}
	return append([]ProgressEvent(nil), st.events...)
}
