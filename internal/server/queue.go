package server

import (
	"sync"

	"github.com/neuralcompile/glimpse/internal/tuner"
)

// queue is the pending-job queue with deficit-fair tenant scheduling:
// pop serves the eligible tenant with the smallest normalized spend
// (tuner.Ledger.Share — GPU seconds over budget weight), so tenants with
// unequal budgets converge on proportional GPU-second allocation instead
// of first-come-first-served starvation. Within a tenant, higher
// Priority runs first, then arrival order.
type queue struct {
	mu     sync.Mutex
	items  []*Job
	ledger *tuner.Ledger

	// wake is the worker doorbell: push rings it after releasing the
	// lock (lockcheck: no channel sends under a mutex), workers wait on
	// it when pop returns nil. The buffer absorbs bursts; a dropped ring
	// is harmless because workers drain the queue in a loop before
	// sleeping again.
	wake chan struct{}
}

func newQueue(ledger *tuner.Ledger) *queue {
	return &queue{ledger: ledger, wake: make(chan struct{}, 64)}
}

// push appends a job and rings the doorbell. Admission control (queue
// depth caps, drain rejection) happens at the HTTP layer: requeues from
// preemption and drain must never be refused.
func (q *queue) push(j *Job) {
	q.mu.Lock()
	q.items = append(q.items, j)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// pop removes and returns the next job to run, or nil when the queue is
// empty. Selection is deterministic: minimal tenant share, then maximal
// priority, then arrival order.
func (q *queue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	shares := map[string]float64{}
	for _, j := range q.items {
		if _, ok := shares[j.Spec.Tenant]; !ok {
			shares[j.Spec.Tenant] = q.ledger.Share(j.Spec.Tenant)
		}
	}
	best := 0
	for i := 1; i < len(q.items); i++ {
		if q.less(q.items[i], q.items[best], shares) {
			best = i
		}
	}
	j := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	return j
}

// less orders candidate a before b under the fairness policy.
func (q *queue) less(a, b *Job, shares map[string]float64) bool {
	sa, sb := shares[a.Spec.Tenant], shares[b.Spec.Tenant]
	if sa < sb {
		return true
	}
	if sb < sa {
		return false
	}
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.seq < b.seq
}

// remove deletes a pending job by ID (cancelation), reporting whether it
// was queued.
func (q *queue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// depth returns the number of pending jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
