package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// ToolkitProvider supplies the trained offline toolkit for a (GPU, seed)
// pair. Seeds matter: parity with a one-shot `glimpse -seed N` run
// requires the toolkit trained from rng.New(N).Split("toolkit"), so the
// provider is keyed by both. Implementations must be safe for concurrent
// use.
type ToolkitProvider interface {
	Toolkit(gpu string, seed int64) (*core.Toolkit, error)
}

// trainingToolkits is the default provider: train on first use (the
// leave-target-out discipline of core.TrainToolkit), cache in memory,
// and optionally persist artifacts under a directory so restarts skip
// retraining.
type trainingToolkits struct {
	mu    sync.Mutex
	dir   string
	cache map[string]*core.Toolkit
}

// NewTrainingToolkits returns the default ToolkitProvider. artifactsDir
// may be empty (no persistence).
func NewTrainingToolkits(artifactsDir string) ToolkitProvider {
	return &trainingToolkits{dir: artifactsDir, cache: map[string]*core.Toolkit{}}
}

func (tp *trainingToolkits) Toolkit(gpu string, seed int64) (*core.Toolkit, error) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	key := fmt.Sprintf("%s/%d", gpu, seed)
	if tk, ok := tp.cache[key]; ok {
		return tk, nil
	}
	var path string
	if tp.dir != "" {
		name := fmt.Sprintf("%s-seed%d.json", strings.ReplaceAll(gpu, "/", "_"), seed)
		path = filepath.Join(tp.dir, name)
		if tk, err := core.LoadToolkit(path); err == nil && tk.TargetName == gpu {
			tp.cache[key] = tk
			return tk, nil
		}
	}
	tk, err := core.TrainToolkit(gpu, core.ToolkitConfig{}, rng.New(seed).Split("toolkit"))
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := os.MkdirAll(tp.dir, 0o755); err != nil {
			return nil, err
		}
		if err := tk.Save(path); err != nil {
			return nil, err
		}
	}
	tp.cache[key] = tk
	return tk, nil
}

// runJob executes one job to a terminal state, or back to queued on
// drain (ctx canceled), preemption, or a stale checkpoint. It follows
// the exact cmd/glimpse discipline — toolkit from the job's seed, cache
// exact-hit then warm start, tune with rng.New(seed).Split("tune/"+name)
// — so a job's result is byte-identical to the one-shot CLI for the same
// spec.
func (s *Server) runJob(ctx context.Context, rj *runningJob) {
	j := rj.job
	spec := j.Spec
	s.endQueueWait(j)

	select {
	case <-ctx.Done():
		s.requeue(j, "drained before start")
		return
	default:
	}

	task, err := workload.TaskByIndex(spec.Model, spec.TaskIndex)
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}
	sp, err := space.ForTask(task)
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}
	if left, bounded := s.ledger.Remaining(spec.Tenant); bounded && left <= 0 {
		s.finishJob(j, StateFailed, "tenant GPU-second budget exhausted", nil)
		return
	}
	s.setState(j, StateRunning, "")

	// One "job" span per run attempt, rooted in the job's trace; a
	// preempted job's next attempt opens a sibling span in the same
	// trace. Everything the session does — steps, measure batches, and
	// the endpoints' rpc_measure spans across the wire — parents under
	// jsc.
	jsp, jsc := s.tracer.StartSpan(s.jobTrace(j), telemetry.StageJob)
	jsp.SetAttr("gpu", spec.GPU)
	jsp.SetAttr("model", spec.Model)
	jsp.SetAttr("task", spec.TaskIndex)
	defer jsp.End()

	budget := spec.budget()

	// Tuned-config store: exact hits skip the session entirely, misses
	// warm-start from nearest donor devices under a shrunken budget.
	var fp string
	var warm *cache.WarmStart
	if s.cache != nil {
		fp = cache.Fingerprint(task, sp)
		if ce, hit := s.cache.Get(fp, spec.GPU); hit && ce.BestConfig < sp.Size() {
			res := &tuner.Result{
				TunerName:  "glimpse (cache)",
				TaskName:   task.Name(),
				BestIndex:  ce.BestConfig,
				BestGFLOPS: ce.GFLOPS,
				BestTimeMS: ce.TimeMS,
			}
			s.mu.Lock()
			j.Cached = true
			s.mu.Unlock()
			s.tenantCounter(mCacheHits, spec.Tenant).Inc()
			s.observeFirstProgress(j)
			jsp.SetAttr("outcome", "cached")
			s.finishJob(j, StateDone, "served from tuned-config cache", res)
			return
		}
		warm = s.cache.WarmStart(fp, spec.GPU, sp, s.cfg.WarmK)
		if warm != nil {
			budget = cache.ShrinkBudget(budget, cache.WarmBudgetFrac)
			s.mu.Lock()
			j.Warm = true
			s.mu.Unlock()
		}
	}

	tk, err := s.cfg.Toolkits.Toolkit(spec.GPU, spec.Seed)
	if err != nil {
		s.finishJob(j, StateFailed, fmt.Sprintf("toolkit: %v", err), nil)
		return
	}
	base, closeMeasurer, err := s.cfg.NewMeasurer(spec.GPU)
	if err != nil {
		s.finishJob(j, StateFailed, fmt.Sprintf("measurer: %v", err), nil)
		return
	}
	defer func() {
		if cerr := closeMeasurer(); cerr != nil {
			s.logf("glimpsed: job %s: closing measurer: %v\n", j.ID, cerr)
		}
	}()

	m, prior, err := s.openSessionLog(base, j.ID)
	if err != nil {
		s.finishJob(j, StateFailed, fmt.Sprintf("measurement log: %v", err), nil)
		return
	}
	defer func() {
		if cerr := m.closeLog(); cerr != nil {
			s.logf("glimpsed: job %s: closing measurement log: %v\n", j.ID, cerr)
		}
	}()

	gl := tk.Tuner()
	if warm != nil {
		gl.SetWarmStart(warm)
	}
	if s.tracer != nil {
		gl.Tracer = s.tracer
	}
	gl.SetTraceContext(jsc)
	ts, err := gl.NewTuneSession(task, sp, m.measurer, budget,
		rng.New(spec.Seed).Split("tune/"+task.Name()))
	if err != nil {
		s.finishJob(j, StateFailed, err.Error(), nil)
		return
	}

	// Ledger charges are deltas beyond the replayed prefix: the prior
	// run already charged everything its log recorded, so a resumed job's
	// lifetime charges still sum to exactly the session's spend.
	chargedGPU, chargedMeas := 0.0, 0
	for {
		stepStart := s.clock.Now()
		done, err := ts.Step()
		s.tenantHist(mStepMS, spec.Tenant).
			Observe(float64(s.clock.Now().Sub(stepStart).Microseconds()) / 1000)
		if err != nil {
			if errors.Is(err, tlog.ErrReplayDiverged) || errors.Is(err, tlog.ErrReplayShort) {
				// Stale or torn checkpoint (changed binary, killed
				// mid-batch write). Discard it and rerun from scratch:
				// determinism reproduces the same final result.
				s.discardSessionLog(j.ID)
				s.requeue(j, "checkpoint unusable, restarting from scratch")
				return
			}
			s.finishJob(j, StateFailed, err.Error(), nil)
			return
		}
		snap := ts.Snapshot()
		if gpu, meas := snap.GPUSeconds-prior.gpuSeconds, snap.Measurements-prior.measurements; gpu > chargedGPU || meas > chargedMeas {
			s.charge(spec.Tenant, maxF(0, gpu-chargedGPU), maxI(0, meas-chargedMeas))
			chargedGPU, chargedMeas = maxF(gpu, chargedGPU), maxI(meas, chargedMeas)
		}
		s.hub.publish(j.ID, ProgressEvent{
			Kind:         "step",
			Step:         snap.Steps,
			Measurements: snap.Measurements,
			BestGFLOPS:   snap.BestGFLOPS,
			GPUSeconds:   snap.GPUSeconds,
		})
		s.observeFirstProgress(j)
		if done {
			break
		}
		// Yield points between steps: the measurement log is always
		// batch-aligned here, so stopping now checkpoints cleanly.
		select {
		case <-rj.cancel:
			s.finishJob(j, StateCanceled, "canceled by client", nil)
			return
		case <-ctx.Done():
			s.requeue(j, "drained: session checkpointed for restart")
			return
		case <-rj.preempt:
			s.requeue(j, "preempted by higher-priority work")
			return
		default:
		}
	}

	res := ts.Result()
	// Final reconciliation: top the tenant's charges up to the session's
	// exact totals (Finish can record a terminal partial batch).
	s.charge(spec.Tenant,
		maxF(0, res.GPUSeconds-prior.gpuSeconds-chargedGPU),
		maxI(0, res.Measurements-prior.measurements-chargedMeas))
	s.ledger.AddJob(spec.Tenant)

	detail := ""
	if s.cache != nil && !s.cache.ReadOnly() {
		if ce, ok := cache.EntryFromResult(fp, spec.GPU, res, sp); ok {
			ce.Model = spec.Model
			ce.TaskIndex = task.Index
			if _, err := s.cache.Put(ce); err != nil {
				detail = fmt.Sprintf("result cached failed: %v", err)
				s.logf("glimpsed: job %s: cache put: %v\n", j.ID, err)
			}
		}
	}
	s.finishJob(j, StateDone, detail, res)
}

// sessionMeasurer bundles the per-job measurement chain: the replayer-
// over-recorder stack plus the log file handle to close when the run
// stops.
type sessionMeasurer struct {
	measurer measure.Measurer
	f        *os.File
}

func (sm *sessionMeasurer) closeLog() error { return sm.f.Close() }

// logPrior is what a job's existing measurement log already paid for —
// the replayed prefix that must not be re-charged to the tenant.
type logPrior struct {
	gpuSeconds   float64
	measurements int
}

// openSessionLog opens the job's measurement log for resume-and-append:
// existing entries replay through a tlog.Replayer (reconstructing the
// interrupted session's state without new GPU spend), and everything
// past them records through a tlog.RecordingMeasurer continuing the
// log's sequence numbers.
func (s *Server) openSessionLog(base measure.Measurer, jobID string) (*sessionMeasurer, logPrior, error) {
	path := s.store.measPath(jobID)
	var entries []tlog.Entry
	if data, err := os.ReadFile(path); err == nil {
		entries, err = tlog.Read(bytes.NewReader(data))
		if err != nil {
			// Unreadable checkpoint: discard and start over.
			s.logf("glimpsed: job %s: unreadable measurement log, restarting: %v\n", jobID, err)
			entries = nil
			if err := os.Remove(path); err != nil {
				return nil, logPrior{}, err
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, logPrior{}, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, logPrior{}, err
	}
	lastSeq := 0
	if len(entries) > 0 {
		lastSeq = entries[len(entries)-1].Seq
	}
	rec := &tlog.RecordingMeasurer{Inner: base, Out: tlog.NewWriter(f, lastSeq)}
	sm := &sessionMeasurer{measurer: rec, f: f}
	prior := logPrior{gpuSeconds: tlog.GPUSeconds(entries), measurements: len(entries)}
	if len(entries) > 0 {
		sm.measurer = tlog.NewReplayer(entries, rec)
	}
	return sm, prior, nil
}

// discardSessionLog deletes a job's measurement log (unusable
// checkpoint).
func (s *Server) discardSessionLog(jobID string) {
	if err := os.Remove(s.store.measPath(jobID)); err != nil && !os.IsNotExist(err) {
		s.logf("glimpsed: job %s: discarding measurement log: %v\n", jobID, err)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
