package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

var (
	tkOnce   sync.Once
	tkShared *core.Toolkit
	tkErr    error
)

// testToolkit trains one small shared toolkit (the internal/core test
// recipe) so server tests measure service behavior, not training time.
func testToolkit(t testing.TB) *core.Toolkit {
	t.Helper()
	tkOnce.Do(func() {
		var tasks []workload.Task
		for _, ref := range []struct {
			model string
			l     int
		}{
			{workload.ResNet18, 4}, {workload.ResNet18, 5}, {workload.ResNet18, 7},
			{workload.ResNet18, 8}, {workload.ResNet18, 10}, {workload.ResNet18, 13},
			{workload.ResNet18, 15}, {workload.ResNet18, 17},
			{workload.AlexNet, 2}, {workload.AlexNet, 3}, {workload.AlexNet, 8},
			{workload.AlexNet, 11}, {workload.VGG16, 8}, {workload.VGG16, 17},
		} {
			task, err := workload.TaskByIndex(ref.model, ref.l)
			if err != nil {
				tkErr = err
				return
			}
			tasks = append(tasks, task)
		}
		tkShared, tkErr = core.TrainToolkit(hwspec.TitanXp, core.ToolkitConfig{
			TrainGPUs: []string{"gtx-1080", "gtx-1080-ti", "rtx-2070", "rtx-2080",
				"rtx-2080-ti", "titan-rtx", "rtx-3070", "rtx-3080"},
			PriorTasks: tasks,
			Prior: prior.TrainConfig{
				Dataset: prior.DatasetConfig{SamplesPerTask: 150, TopK: 16},
				Epochs:  200,
			},
			MetaGPUs: 2,
		}, rng.New(1234))
	})
	if tkErr != nil {
		t.Fatal(tkErr)
	}
	return tkShared
}

// fixedToolkits hands every job the shared test toolkit; the one-shot
// references in these tests use the same instance, so parity assertions
// compare tuning discipline, not training cost.
type fixedToolkits struct{ tk *core.Toolkit }

func (f fixedToolkits) Toolkit(gpu string, seed int64) (*core.Toolkit, error) {
	return f.tk, nil
}

// slowMeasurer delays each batch so tests can reliably catch a session
// mid-run (drain, preemption). Results are unchanged.
type slowMeasurer struct {
	inner measure.Measurer
	delay time.Duration
}

func (s slowMeasurer) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	time.Sleep(s.delay)
	return s.inner.MeasureBatch(task, sp, idxs)
}
func (s slowMeasurer) DeviceName() string { return s.inner.DeviceName() }

// gateMeasurer blocks every batch until the gate closes — a job frozen
// mid-step, for admission and cancelation tests.
type gateMeasurer struct {
	inner measure.Measurer
	gate  chan struct{}
}

func (g gateMeasurer) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	<-g.gate
	return g.inner.MeasureBatch(task, sp, idxs)
}
func (g gateMeasurer) DeviceName() string { return g.inner.DeviceName() }

func newTestServer(t testing.TB, dir string, mutate func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{
		StateDir: dir,
		Sessions: 1,
		Toolkits: fixedToolkits{testToolkit(t)},
		Log:      io.Discard,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, "http://" + addr
}

func submitJob(t testing.TB, base string, spec JobSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, data)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	return ack.ID
}

func getJob(t testing.TB, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t testing.TB, base, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, base, id)
		if v.State.terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// collectEvents streams the job's SSE feed to completion, returning the
// raw data payloads in order.
func collectEvents(t testing.TB, base, id string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %s", resp.Status)
	}
	var out []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			out = append(out, data)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// oneShotResult runs the same spec through the direct library path with
// cmd/glimpse's seed discipline — the parity reference.
func oneShotResult(t testing.TB, spec JobSpec) *tuner.Result {
	t.Helper()
	tk := testToolkit(t)
	norm := spec
	norm.normalize(192)
	task, err := workload.TaskByIndex(norm.Model, norm.TaskIndex)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	res, err := tk.Tuner().Tune(task, sp, measure.MustNewLocal(norm.GPU),
		norm.budget(), rng.New(norm.Seed).Split("tune/"+task.Name()))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func resultBytes(t testing.TB, res *tuner.Result) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func drainNow(t testing.TB, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServeSubmitStreamResult is the end-to-end contract: submit over
// HTTP, stream SSE progress to completion, fetch the result — and the
// result is byte-identical to a one-shot library run of the same spec
// and seed.
func TestServeSubmitStreamResult(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 41, MaxMeasurements: 48}
	s, base := newTestServer(t, t.TempDir(), nil)
	defer drainNow(t, s)

	id := submitJob(t, base, spec)
	events := collectEvents(t, base, id) // blocks until the stream closes

	if len(events) < 3 {
		t.Fatalf("expected state+steps+result events, got %d: %v", len(events), events)
	}
	var first ProgressEvent
	if err := json.Unmarshal([]byte(events[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != "state" || first.State != string(StateQueued) || first.Seq != 1 {
		t.Fatalf("first event = %s", events[0])
	}
	steps := 0
	for i, raw := range events {
		var ev ProgressEvent
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d (stream must be gapless)", i, ev.Seq)
		}
		if ev.Kind == "step" {
			steps++
		}
	}
	if steps == 0 {
		t.Fatal("no step events streamed")
	}

	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", resp.Status)
	}
	var got tuner.Result
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := oneShotResult(t, spec)
	if a, b := resultBytes(t, want), resultBytes(t, &got); !bytes.Equal(a, b) {
		t.Fatalf("served result diverged from one-shot run:\n want %s\n got  %s", a, b)
	}
}

// TestServeEventStreamDeterministic pins the diffable-stream contract:
// two fresh servers given the same job spec publish byte-identical SSE
// payload sequences.
func TestServeEventStreamDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 17, MaxMeasurements: 48}
	var streams [2]string
	for i := range streams {
		s, base := newTestServer(t, t.TempDir(), nil)
		id := submitJob(t, base, spec)
		streams[i] = strings.Join(collectEvents(t, base, id), "\n")
		drainNow(t, s)
	}
	if streams[0] != streams[1] {
		t.Fatalf("event streams differ across identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			streams[0], streams[1])
	}
}

// TestServeDrainResume is the zero-lost-jobs contract: drain a server
// mid-session, restart on the same state directory, and the job resumes
// from its measurement-log checkpoint to a byte-identical result.
func TestServeDrainResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	dir := t.TempDir()
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 29, MaxMeasurements: 96}
	s1, base1 := newTestServer(t, dir, func(c *Config) {
		c.NewMeasurer = func(gpu string) (measure.Measurer, func() error, error) {
			m, err := measure.NewLocal(gpu)
			return slowMeasurer{inner: m, delay: 30 * time.Millisecond}, func() error { return nil }, err
		}
	})
	id := submitJob(t, base1, spec)

	// Wait until the session has checkpointed at least two batches, then
	// drain mid-job.
	deadline := time.Now().Add(30 * time.Second)
	for {
		steps := 0
		for _, ev := range s1.hub.history(id) {
			if ev.Kind == "step" {
				steps++
			}
		}
		if steps >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainNow(t, s1)

	// The drained server journaled the job back to queued — not lost, not
	// failed — with its measurement log on disk.
	st, recovered, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].State != StateQueued {
		t.Fatalf("drained journal: %+v", recovered)
	}

	// A fresh server on the same state dir resumes and finishes the job.
	s2, base2 := newTestServer(t, dir, nil)
	defer drainNow(t, s2)
	v := waitTerminal(t, base2, id, 120*time.Second)
	if v.State != StateDone {
		t.Fatalf("resumed job ended %s (%s)", v.State, v.Detail)
	}
	want := oneShotResult(t, spec)
	if a, b := resultBytes(t, want), resultBytes(t, v.Result); !bytes.Equal(a, b) {
		t.Fatalf("resumed result diverged from uninterrupted run:\n want %s\n got  %s", a, b)
	}
}

// TestServePreemption: a higher-priority submission preempts the running
// lower-priority session at its next step boundary; the victim re-queues
// with its checkpoint and still finishes byte-identical.
func TestServePreemption(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	specLow := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 29, MaxMeasurements: 96, Priority: 0}
	specHigh := JobSpec{Model: workload.ResNet18, TaskIndex: 8, GPU: hwspec.TitanXp,
		Seed: 41, MaxMeasurements: 48, Priority: 5}
	s, base := newTestServer(t, t.TempDir(), func(c *Config) {
		c.NewMeasurer = func(gpu string) (measure.Measurer, func() error, error) {
			m, err := measure.NewLocal(gpu)
			return slowMeasurer{inner: m, delay: 30 * time.Millisecond}, func() error { return nil }, err
		}
	})
	defer drainNow(t, s)

	lowID := submitJob(t, base, specLow)
	deadline := time.Now().Add(30 * time.Second)
	for {
		steps := 0
		for _, ev := range s.hub.history(lowID) {
			if ev.Kind == "step" {
				steps++
			}
		}
		if steps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("low-priority session made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	highID := submitJob(t, base, specHigh)

	// The victim's stream must show it yielding: running -> queued again.
	sawRequeue := false
	for !sawRequeue {
		for _, ev := range s.hub.history(lowID) {
			if ev.Kind == "state" && ev.State == string(StateQueued) && ev.Seq > 2 {
				sawRequeue = true
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("low-priority job was never preempted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	high := waitTerminal(t, base, highID, 120*time.Second)
	low := waitTerminal(t, base, lowID, 120*time.Second)
	if high.State != StateDone || low.State != StateDone {
		t.Fatalf("states after preemption: high=%s low=%s", high.State, low.State)
	}
	if a, b := resultBytes(t, oneShotResult(t, specLow)), resultBytes(t, low.Result); !bytes.Equal(a, b) {
		t.Fatalf("preempted job's result diverged:\n want %s\n got  %s", a, b)
	}
}

// TestServeCacheHit: with a tuned-config store attached, re-submitting a
// completed spec is served from the cache with zero new measurements.
func TestServeCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	dir := t.TempDir()
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 41, MaxMeasurements: 48}
	s, base := newTestServer(t, dir, func(c *Config) {
		c.CachePath = dir + "/tuned.jsonl"
	})
	defer drainNow(t, s)

	first := waitTerminal(t, base, submitJob(t, base, spec), 120*time.Second)
	if first.State != StateDone || first.Cached {
		t.Fatalf("first run: state=%s cached=%v", first.State, first.Cached)
	}
	second := waitTerminal(t, base, submitJob(t, base, spec), 120*time.Second)
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second run: state=%s cached=%v (%s)", second.State, second.Cached, second.Detail)
	}
	if second.Result.Measurements != 0 {
		t.Fatalf("cache hit spent %d measurements", second.Result.Measurements)
	}
	if second.Result.BestGFLOPS != first.Result.BestGFLOPS {
		t.Fatalf("cache served %v GFLOPS, tuned run found %v",
			second.Result.BestGFLOPS, first.Result.BestGFLOPS)
	}
}

// TestServeAdmissionControl: a full queue answers 429 with Retry-After,
// and a draining server answers 503 with Retry-After.
func TestServeAdmissionControl(t *testing.T) {
	if testing.Short() {
		t.Skip("starts tuning sessions")
	}
	gate := make(chan struct{})
	s, base := newTestServer(t, t.TempDir(), func(c *Config) {
		c.MaxQueued = 2
		c.NewMeasurer = func(gpu string) (measure.Measurer, func() error, error) {
			m, err := measure.NewLocal(gpu)
			return gateMeasurer{inner: m, gate: gate}, func() error { return nil }, err
		}
	})
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 1, MaxMeasurements: 32}

	// First job occupies the single worker (frozen at the gate)...
	running := submitJob(t, base, spec)
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, base, running).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...the next two fill the queue...
	submitJob(t, base, spec)
	queued := submitJob(t, base, spec)
	// ...and the fourth must be refused with backpressure.
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull submit: %s", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Canceling a queued job frees its slot immediately.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+queued, nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", cresp.Status)
	}
	if v := getJob(t, base, queued); v.State != StateCanceled {
		t.Fatalf("canceled job state = %s", v.State)
	}

	// Drain in the background (it blocks on the gated session), then a
	// submission during the drain gets 503 + Retry-After.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for {
		hresp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Draining bool `json:"draining"`
		}
		derr := json.NewDecoder(hresp.Body).Decode(&health)
		hresp.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		if health.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(5 * time.Millisecond)
	}
	dresp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %s", dresp.Status)
	}
	if dresp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(gate) // release the frozen session so the drain completes
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
}

// TestQueueFairTenants pins the deficit-fair scheduler: with tenants at
// a 3:1 budget ratio and saturating demand, served GPU seconds converge
// on the same 3:1 split regardless of submission interleaving.
func TestQueueFairTenants(t *testing.T) {
	ledger := tuner.NewLedger()
	ledger.SetBudget("big", 300)
	ledger.SetBudget("small", 100)
	q := newQueue(ledger)
	for i := 0; i < 40; i++ {
		q.push(&Job{ID: jobID(2*i + 1), Spec: JobSpec{Tenant: "big"}, seq: 2*i + 1})
		q.push(&Job{ID: jobID(2*i + 2), Spec: JobSpec{Tenant: "small"}, seq: 2*i + 2})
	}
	served := map[string]float64{}
	for i := 0; i < 32; i++ {
		j := q.pop()
		if j == nil {
			t.Fatal("queue drained early")
		}
		// Each job costs 10 GPU seconds; charging as it runs is what
		// steers the next pick.
		ledger.Charge(j.Spec.Tenant, 10, 1)
		served[j.Spec.Tenant] += 10
	}
	ratio := served["big"] / served["small"]
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("served ratio %.2f (big=%v small=%v), want ~3.0 for a 3:1 budget split",
			ratio, served["big"], served["small"])
	}
}

// TestQueuePriorityWithinTenant: same tenant, higher priority pops
// first; ties break by arrival.
func TestQueuePriorityWithinTenant(t *testing.T) {
	q := newQueue(tuner.NewLedger())
	q.push(&Job{ID: "j1", Spec: JobSpec{Tenant: "a", Priority: 0}, seq: 1})
	q.push(&Job{ID: "j2", Spec: JobSpec{Tenant: "a", Priority: 5}, seq: 2})
	q.push(&Job{ID: "j3", Spec: JobSpec{Tenant: "a", Priority: 5}, seq: 3})
	var got []string
	for j := q.pop(); j != nil; j = q.pop() {
		got = append(got, j.ID)
	}
	if want := "j2,j3,j1"; strings.Join(got, ",") != want {
		t.Fatalf("pop order %v, want %s", got, want)
	}
}

// TestJobSpecValidation: malformed specs are refused before they reach
// the queue.
func TestJobSpecValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a server")
	}
	s, base := newTestServer(t, t.TempDir(), nil)
	defer drainNow(t, s)
	for _, bad := range []string{
		`{"model":"resnet-99","task_index":1,"gpu":"titan-xp"}`,
		`{"model":"resnet-18","task_index":999,"gpu":"titan-xp"}`,
		`{"model":"resnet-18","task_index":7,"gpu":"gpu-that-isnt"}`,
		`not json`,
	} {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: got %s, want 400", bad, resp.Status)
		}
	}
}

// TestProgressEventJSONStable pins the SSE record wire format byte for
// byte (DESIGN.md §13): struct order, documented names, no wall-clock
// fields.
func TestProgressEventJSONStable(t *testing.T) {
	data, err := json.Marshal(ProgressEvent{
		Seq: 3, Job: "j1", Kind: "step",
		Step: 2, Measurements: 32, BestGFLOPS: 1234.5, GPUSeconds: 6.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":3,"job":"j1","kind":"step","step":2,"measurements":32,"best_gflops":1234.5,"gpu_seconds":6.25}`
	if string(data) != want {
		t.Fatalf("ProgressEvent JSON drifted:\n got %s\nwant %s", data, want)
	}
	data, err = json.Marshal(ProgressEvent{Seq: 1, Job: "j1", Kind: "state", State: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	want = `{"seq":1,"job":"j1","kind":"state","state":"queued"}`
	if string(data) != want {
		t.Fatalf("state event JSON drifted:\n got %s\nwant %s", data, want)
	}
}

// TestLedgerEndpointReconciles: after jobs complete, /v1/tenants totals
// equal the sum of the jobs' result spend exactly.
func TestLedgerEndpointReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	s, base := newTestServer(t, t.TempDir(), func(c *Config) {
		c.TenantBudgets = map[string]float64{"acme": 10_000}
	})
	defer drainNow(t, s)
	spec := JobSpec{Model: workload.ResNet18, TaskIndex: 7, GPU: hwspec.TitanXp,
		Seed: 41, MaxMeasurements: 48, Tenant: "acme"}
	v := waitTerminal(t, base, submitJob(t, base, spec), 120*time.Second)
	if v.State != StateDone {
		t.Fatalf("job ended %s", v.State)
	}
	resp, err := http.Get(base + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tv tenantsView
	if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	if len(tv.Tenants) != 1 || tv.Tenants[0].Tenant != "acme" {
		t.Fatalf("tenants = %+v", tv.Tenants)
	}
	got := tv.Tenants[0]
	if got.Jobs != 1 || got.Measurements != v.Result.Measurements {
		t.Fatalf("ledger %+v vs result measurements %d", got, v.Result.Measurements)
	}
	if diff := got.GPUSeconds - v.Result.GPUSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ledger GPU seconds %v != result %v", got.GPUSeconds, v.Result.GPUSeconds)
	}
	if got.BudgetGPUSeconds != 10_000 {
		t.Fatalf("budget lost: %+v", got)
	}
}
