package server

import "sync"

// SLOConfig declares glimpsed's service-level objectives. The zero value
// disables SLO tracking entirely: no tracker is built, /telemetryz omits
// the slos section, and SSE events never carry a burn field — so the
// documented byte-deterministic event stream is unchanged unless an
// operator opts in.
type SLOConfig struct {
	// TTFPThresholdMS is the latency objective's threshold: a job whose
	// time-to-first-progress is at most this many milliseconds counts as
	// good.
	TTFPThresholdMS float64
	// TTFPObjective is the target good fraction for the latency SLO
	// (e.g. 0.95). Zero disables the latency SLO.
	TTFPObjective float64
	// AvailObjective is the target fraction of terminal jobs finishing
	// done rather than failed (canceled jobs are excluded: the client
	// asked for them to stop). Zero disables the availability SLO.
	AvailObjective float64
}

func (c SLOConfig) enabled() bool {
	return c.TTFPObjective > 0 || c.AvailObjective > 0
}

// SLOStatus is one objective's published state: cumulative good/total
// counts since process start and the error-budget burn rate. Burn is
// badFraction / (1 - objective) — 1.0 means failing at exactly the rate
// the objective allows, above 1.0 the error budget is being consumed
// faster than it refills. Cumulative counts (rather than a sliding
// wall-clock window) keep the numbers a pure function of the observed
// job outcomes.
type SLOStatus struct {
	Name        string  `json:"name"`
	Objective   float64 `json:"objective"`
	Good        int64   `json:"good"`
	Total       int64   `json:"total"`
	BadFraction float64 `json:"bad_fraction"`
	Burn        float64 `json:"burn"`
}

// sloTracker accumulates SLO observations. A nil tracker (SLOs not
// configured) is inert: every method no-ops or returns zero.
type sloTracker struct {
	mu  sync.Mutex
	cfg SLOConfig

	ttfpGood, ttfpTotal   int64
	availGood, availTotal int64
}

func newSLOTracker(cfg SLOConfig) *sloTracker {
	if !cfg.enabled() {
		return nil
	}
	// An objective of 1.0 leaves no error budget to divide by; clamp so
	// burn stays finite (and JSON-encodable).
	if cfg.TTFPObjective >= 1 {
		cfg.TTFPObjective = 0.9999
	}
	if cfg.AvailObjective >= 1 {
		cfg.AvailObjective = 0.9999
	}
	return &sloTracker{cfg: cfg}
}

// observeTTFP records one job's time-to-first-progress against the
// latency objective.
func (t *sloTracker) observeTTFP(ms float64) {
	if t == nil || t.cfg.TTFPObjective <= 0 {
		return
	}
	t.mu.Lock()
	t.ttfpTotal++
	if ms <= t.cfg.TTFPThresholdMS {
		t.ttfpGood++
	}
	t.mu.Unlock()
}

// observeOutcome records one terminal job against the availability
// objective (done = good, failed = bad; callers exclude canceled).
func (t *sloTracker) observeOutcome(done bool) {
	if t == nil || t.cfg.AvailObjective <= 0 {
		return
	}
	t.mu.Lock()
	t.availTotal++
	if done {
		t.availGood++
	}
	t.mu.Unlock()
}

func burnRate(good, total int64, objective float64) (bad, burn float64) {
	if total == 0 {
		return 0, 0
	}
	bad = float64(total-good) / float64(total)
	return bad, bad / (1 - objective)
}

// snapshot returns the configured objectives' current status, latency
// first.
func (t *sloTracker) snapshot() []SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SLOStatus
	if t.cfg.TTFPObjective > 0 {
		bad, burn := burnRate(t.ttfpGood, t.ttfpTotal, t.cfg.TTFPObjective)
		out = append(out, SLOStatus{
			Name: "ttfp_latency", Objective: t.cfg.TTFPObjective,
			Good: t.ttfpGood, Total: t.ttfpTotal, BadFraction: bad, Burn: burn,
		})
	}
	if t.cfg.AvailObjective > 0 {
		bad, burn := burnRate(t.availGood, t.availTotal, t.cfg.AvailObjective)
		out = append(out, SLOStatus{
			Name: "availability", Objective: t.cfg.AvailObjective,
			Good: t.availGood, Total: t.availTotal, BadFraction: bad, Burn: burn,
		})
	}
	return out
}

// maxBurn returns the worst burn rate across the configured objectives —
// the single number stamped onto terminal SSE events.
func (t *sloTracker) maxBurn() float64 {
	mx := 0.0
	for _, st := range t.snapshot() {
		if st.Burn > mx {
			mx = st.Burn
		}
	}
	return mx
}
