package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// jobRecord is one line of the append-only job journal
// (<state-dir>/jobs.jsonl). "submit" records carry the spec; "state"
// records carry every transition, with the result on terminal ones.
// Replaying the journal start to finish reconstructs the job table, so a
// restarted server resumes exactly where the drained one stopped.
type jobRecord struct {
	Kind   string        `json:"kind"` // "submit" | "state"
	ID     string        `json:"id"`
	Spec   *JobSpec      `json:"spec,omitempty"`
	State  JobState      `json:"state,omitempty"`
	Detail string        `json:"detail,omitempty"`
	Cached bool          `json:"cached,omitempty"`
	Warm   bool          `json:"warm,omitempty"`
	Result *tuner.Result `json:"result,omitempty"`
}

// store owns the server's state directory: the job journal plus one
// measurement log per job (meas-<id>.jsonl, the tlog checkpoint that
// makes interrupted sessions resumable by replay).
type store struct {
	mu     sync.Mutex
	dir    string
	f      *os.File
	lastID int
}

// openStore opens (creating if needed) the state directory and replays
// the job journal, returning recovered jobs in submission order. Jobs
// recorded as running were interrupted mid-session; they come back as
// queued — their measurement logs replay the finished prefix for free.
func openStore(dir string) (*store, []*Job, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("server: state directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	st := &store{dir: dir}
	path := st.journalPath()

	byID := map[string]*Job{}
	var order []*Job
	if data, err := os.ReadFile(path); err == nil {
		rerr := tlog.ReadJSONLines(bytes.NewReader(data), func(line []byte) error {
			var rec jobRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return err
			}
			switch rec.Kind {
			case "submit":
				if rec.Spec == nil {
					return fmt.Errorf("submit record %s without spec", rec.ID)
				}
				j := &Job{ID: rec.ID, Spec: *rec.Spec, State: StateQueued}
				byID[rec.ID] = j
				order = append(order, j)
				var n int
				if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil {
					j.seq = n
					if n > st.lastID {
						st.lastID = n
					}
				}
			case "state":
				j, ok := byID[rec.ID]
				if !ok {
					return fmt.Errorf("state record for unknown job %s", rec.ID)
				}
				j.State = rec.State
				j.Detail = rec.Detail
				j.Cached = rec.Cached
				j.Warm = rec.Warm
				j.Result = rec.Result
			default:
				return fmt.Errorf("unknown journal record kind %q", rec.Kind)
			}
			return nil
		})
		if rerr != nil {
			return nil, nil, fmt.Errorf("server: job journal %s: %w", path, rerr)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st.f = f
	for _, j := range order {
		if !j.State.terminal() {
			j.State = StateQueued // interrupted runs resume from their logs
		}
	}
	return st, order, nil
}

func (st *store) journalPath() string { return filepath.Join(st.dir, "jobs.jsonl") }

// measPath returns the job's measurement-log path — the checkpoint file
// a tlog.RecordingMeasurer appends to and a tlog.Replayer resumes from.
func (st *store) measPath(id string) string {
	return filepath.Join(st.dir, "meas-"+id+".jsonl")
}

// nextID allocates a fresh job ID.
func (st *store) nextID() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lastID++
	return jobID(st.lastID)
}

func (st *store) append(rec jobRecord) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := tlog.AppendJSONLine(st.f, rec); err != nil {
		return err
	}
	// fsync each record: the journal is the zero-lost-jobs contract, and
	// job transitions are rare enough that durability is cheap.
	return st.f.Sync()
}

// appendSubmit journals a new job's spec.
func (st *store) appendSubmit(j *Job) error {
	spec := j.Spec
	return st.append(jobRecord{Kind: "submit", ID: j.ID, Spec: &spec})
}

// appendState journals a job's current state snapshot.
func (st *store) appendState(j *Job) error {
	return st.append(jobRecord{Kind: "state", ID: j.ID, State: j.State,
		Detail: j.Detail, Cached: j.Cached, Warm: j.Warm, Result: j.Result})
}

func (st *store) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.f.Close()
}
