package anneal

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/telemetry"
)

func TestRunFindsGlobalOptimumSmallSpace(t *testing.T) {
	g := rng.New(1)
	// Score peaks at index 777 in a space of 10k.
	p := Problem{
		Size: 10000,
		Score: func(i int64) float64 {
			d := float64(i - 777)
			return -d * d
		},
		Neighbor: func(i int64, g *rng.RNG) int64 {
			return i + int64(g.Intn(201)) - 100
		},
	}
	res, err := Run(p, Config{Chains: 32, Steps: 300, StartTemp: 1000, FinalTemp: 0.1}, 5, g)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index != 777 {
		t.Fatalf("best index = %d want 777", res[0].Index)
	}
}

func TestRunResultsSortedAndDistinct(t *testing.T) {
	g := rng.New(2)
	p := Problem{
		Size:  1000,
		Score: func(i int64) float64 { return math.Sin(float64(i) / 50) },
	}
	res, err := Run(p, Config{Chains: 16, Steps: 100, StartTemp: 1, FinalTemp: 0.01}, 20, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("len = %d want 20", len(res))
	}
	seen := map[int64]bool{}
	for i, r := range res {
		if seen[r.Index] {
			t.Fatalf("duplicate index %d", r.Index)
		}
		seen[r.Index] = true
		if i > 0 && res[i-1].Score < r.Score {
			t.Fatal("results not sorted descending")
		}
	}
}

func TestRunRespectsSeeds(t *testing.T) {
	g := rng.New(3)
	var visited sync.Map // Score runs on multiple goroutines
	p := Problem{
		Size: 1 << 40, // astronomically large: random restarts won't find 12345
		Score: func(i int64) float64 {
			visited.Store(i, true)
			if i == 12345 {
				return 100
			}
			return 0
		},
		Neighbor: func(i int64, g *rng.RNG) int64 { return i + int64(g.Intn(3)) - 1 },
	}
	res, err := Run(p, Config{Chains: 4, Steps: 20, StartTemp: 1, FinalTemp: 0.1,
		InitialSeed: []int64{12345}}, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index != 12345 {
		t.Fatalf("seeded optimum lost: best = %d", res[0].Index)
	}
}

func TestRunValidation(t *testing.T) {
	g := rng.New(4)
	if _, err := Run(Problem{Size: 0, Score: func(int64) float64 { return 0 }}, DefaultConfig(), 1, g); err == nil {
		t.Fatal("empty space accepted")
	}
	if _, err := Run(Problem{Size: 10}, DefaultConfig(), 1, g); err == nil {
		t.Fatal("nil score accepted")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	g := rng.New(5)
	p := Problem{Size: 100, Score: func(i int64) float64 { return float64(i) }}
	res, err := Run(p, Config{}, 3, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("len = %d want 3", len(res))
	}
	// With default chains/steps over a 100-point space, the max must be found.
	if res[0].Index != 99 {
		t.Fatalf("best = %d want 99", res[0].Index)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := Problem{
		Size:  5000,
		Score: func(i int64) float64 { return math.Cos(float64(i) / 100) },
	}
	a, err := Run(p, Config{Chains: 8, Steps: 50, StartTemp: 1, FinalTemp: 0.05}, 10, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Config{Chains: 8, Steps: 50, StartTemp: 1, FinalTemp: 0.05}, 10, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic annealing")
		}
	}
}

// TestPartialConfigKeepsCallerFields is the regression test for the bug
// where a non-positive Chains or Steps silently replaced the entire config
// with DefaultConfig(), discarding the caller's valid fields.
func TestPartialConfigKeepsCallerFields(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{"steps only", Config{Steps: 7},
			Config{Chains: 64, Steps: 7, StartTemp: 1, FinalTemp: 0.02}},
		{"chains only", Config{Chains: 3},
			Config{Chains: 3, Steps: 150, StartTemp: 1, FinalTemp: 0.02}},
		{"temps survive zero chains", Config{StartTemp: 500, FinalTemp: 2},
			Config{Chains: 64, Steps: 150, StartTemp: 500, FinalTemp: 2}},
		{"final temp above start re-derived", Config{StartTemp: 10, FinalTemp: 20},
			Config{Chains: 64, Steps: 150, StartTemp: 10, FinalTemp: 0.2}},
		{"all set passes through", Config{Chains: 2, Steps: 3, StartTemp: 4, FinalTemp: 1},
			Config{Chains: 2, Steps: 3, StartTemp: 4, FinalTemp: 1}},
	}
	for _, tc := range cases {
		got := tc.in.withDefaults()
		if got.Chains != tc.want.Chains || got.Steps != tc.want.Steps ||
			got.StartTemp != tc.want.StartTemp || got.FinalTemp != tc.want.FinalTemp {
			t.Errorf("%s: withDefaults() = %+v want %+v", tc.name, got, tc.want)
		}
	}
}

// TestRunWorkerCountInvariant is the tentpole determinism contract: a fixed
// seed must produce byte-identical results for any worker count.
func TestRunWorkerCountInvariant(t *testing.T) {
	p := Problem{
		Size:  20000,
		Score: func(i int64) float64 { return math.Sin(float64(i)/300) + math.Cos(float64(i)/77) },
		Neighbor: func(i int64, g *rng.RNG) int64 {
			return i + int64(g.Intn(401)) - 200
		},
	}
	var ref []Result
	for _, workers := range []int{1, 2, 4, 13} {
		cfg := Config{Chains: 24, Steps: 80, StartTemp: 2, FinalTemp: 0.05, Workers: workers}
		res, err := Run(p, cfg, 32, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res) != len(ref) {
			t.Fatalf("workers=%d: %d results want %d", workers, len(res), len(ref))
		}
		for i := range res {
			if res[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %+v want %+v", workers, i, res[i], ref[i])
			}
		}
	}
}

// TestRunTracedIsByteIdentical pins the telemetry contract at the anneal
// layer: a traced run (any worker count) returns exactly what the
// untraced run returns, and the trace carries one "anneal" span.
func TestRunTracedIsByteIdentical(t *testing.T) {
	p := Problem{
		Size:  20000,
		Score: func(i int64) float64 { return math.Sin(float64(i)/300) + math.Cos(float64(i)/77) },
		Neighbor: func(i int64, g *rng.RNG) int64 {
			return i + int64(g.Intn(401)) - 200
		},
	}
	ref, err := Run(p, Config{Chains: 24, Steps: 80, StartTemp: 2, FinalTemp: 0.05, Workers: 1}, 32, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var trace bytes.Buffer
		cfg := Config{Chains: 24, Steps: 80, StartTemp: 2, FinalTemp: 0.05, Workers: workers,
			Tracer: telemetry.NewTracer(&trace, telemetry.NewFakeClock(time.Unix(0, 0)))}
		res, err := Run(p, cfg, 32, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(ref) {
			t.Fatalf("workers=%d traced: %d results want %d", workers, len(res), len(ref))
		}
		for i := range res {
			if res[i] != ref[i] {
				t.Fatalf("workers=%d traced: result[%d] = %+v want %+v", workers, i, res[i], ref[i])
			}
		}
		if !bytes.Contains(trace.Bytes(), []byte(`"stage":"anneal"`)) {
			t.Fatalf("trace missing anneal span: %s", trace.String())
		}
	}
}

// TestRunFreshStreamsPerCall guards the salt draw: two Run calls on the
// same parent RNG must not replay identical chain trajectories.
func TestRunFreshStreamsPerCall(t *testing.T) {
	g := rng.New(11)
	p := Problem{
		Size:  1 << 30,
		Score: func(i int64) float64 { return float64(i % 997) },
	}
	cfg := Config{Chains: 4, Steps: 10, StartTemp: 1, FinalTemp: 0.1}
	a, err := Run(p, cfg, 16, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cfg, 16, g)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("successive Run calls visited identical points")
	}
}

func TestNegativeSeedWrapped(t *testing.T) {
	g := rng.New(7)
	p := Problem{Size: 50, Score: func(i int64) float64 { return -float64(i) }}
	res, err := Run(p, Config{Chains: 2, Steps: 10, StartTemp: 1, FinalTemp: 0.1,
		InitialSeed: []int64{-3}}, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index < 0 || res[0].Index >= 50 {
		t.Fatalf("out-of-range result %d", res[0].Index)
	}
}
