package anneal

import (
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/rng"
)

func TestRunFindsGlobalOptimumSmallSpace(t *testing.T) {
	g := rng.New(1)
	// Score peaks at index 777 in a space of 10k.
	p := Problem{
		Size: 10000,
		Score: func(i int64) float64 {
			d := float64(i - 777)
			return -d * d
		},
		Neighbor: func(i int64, g *rng.RNG) int64 {
			return i + int64(g.Intn(201)) - 100
		},
	}
	res, err := Run(p, Config{Chains: 32, Steps: 300, StartTemp: 1000, FinalTemp: 0.1}, 5, g)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index != 777 {
		t.Fatalf("best index = %d want 777", res[0].Index)
	}
}

func TestRunResultsSortedAndDistinct(t *testing.T) {
	g := rng.New(2)
	p := Problem{
		Size:  1000,
		Score: func(i int64) float64 { return math.Sin(float64(i) / 50) },
	}
	res, err := Run(p, Config{Chains: 16, Steps: 100, StartTemp: 1, FinalTemp: 0.01}, 20, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("len = %d want 20", len(res))
	}
	seen := map[int64]bool{}
	for i, r := range res {
		if seen[r.Index] {
			t.Fatalf("duplicate index %d", r.Index)
		}
		seen[r.Index] = true
		if i > 0 && res[i-1].Score < r.Score {
			t.Fatal("results not sorted descending")
		}
	}
}

func TestRunRespectsSeeds(t *testing.T) {
	g := rng.New(3)
	visited := map[int64]bool{}
	p := Problem{
		Size: 1 << 40, // astronomically large: random restarts won't find 12345
		Score: func(i int64) float64 {
			visited[i] = true
			if i == 12345 {
				return 100
			}
			return 0
		},
		Neighbor: func(i int64, g *rng.RNG) int64 { return i + int64(g.Intn(3)) - 1 },
	}
	res, err := Run(p, Config{Chains: 4, Steps: 20, StartTemp: 1, FinalTemp: 0.1,
		InitialSeed: []int64{12345}}, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index != 12345 {
		t.Fatalf("seeded optimum lost: best = %d", res[0].Index)
	}
}

func TestRunValidation(t *testing.T) {
	g := rng.New(4)
	if _, err := Run(Problem{Size: 0, Score: func(int64) float64 { return 0 }}, DefaultConfig(), 1, g); err == nil {
		t.Fatal("empty space accepted")
	}
	if _, err := Run(Problem{Size: 10}, DefaultConfig(), 1, g); err == nil {
		t.Fatal("nil score accepted")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	g := rng.New(5)
	p := Problem{Size: 100, Score: func(i int64) float64 { return float64(i) }}
	res, err := Run(p, Config{}, 3, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("len = %d want 3", len(res))
	}
	// With default chains/steps over a 100-point space, the max must be found.
	if res[0].Index != 99 {
		t.Fatalf("best = %d want 99", res[0].Index)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := Problem{
		Size:  5000,
		Score: func(i int64) float64 { return math.Cos(float64(i) / 100) },
	}
	a, err := Run(p, Config{Chains: 8, Steps: 50, StartTemp: 1, FinalTemp: 0.05}, 10, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Config{Chains: 8, Steps: 50, StartTemp: 1, FinalTemp: 0.05}, 10, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic annealing")
		}
	}
}

func TestNegativeSeedWrapped(t *testing.T) {
	g := rng.New(7)
	p := Problem{Size: 50, Score: func(i int64) float64 { return -float64(i) }}
	res, err := Run(p, Config{Chains: 2, Steps: 10, StartTemp: 1, FinalTemp: 0.1,
		InitialSeed: []int64{-3}}, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Index < 0 || res[0].Index >= 50 {
		t.Fatalf("out-of-range result %d", res[0].Index)
	}
}
