// Package anneal implements batched simulated annealing over discrete
// configuration indices. AutoTVM, Chameleon, and Glimpse all propose
// measurement candidates by running parallel Markov chains on a surrogate
// cost model; this package is that shared search engine.
package anneal

import (
	"fmt"
	"sort"

	"math"

	"github.com/neuralcompile/glimpse/internal/rng"
)

// Problem describes a discrete maximization problem for the annealer.
type Problem struct {
	// Size is the number of points in the space.
	Size int64
	// Score returns the surrogate value to maximize at index i.
	Score func(i int64) float64
	// Neighbor proposes a move from index i. If nil, a uniform random
	// index is used (pure random-restart annealing).
	Neighbor func(i int64, g *rng.RNG) int64
}

// Config controls the annealing schedule.
type Config struct {
	Chains      int     // parallel Markov chains
	Steps       int     // steps per chain
	StartTemp   float64 // initial temperature
	FinalTemp   float64 // final temperature (geometric schedule)
	InitialSeed []int64 // optional starting points (wrapped into chains)
}

// DefaultConfig mirrors AutoTVM's annealer scale, shrunk to simulator speed.
func DefaultConfig() Config {
	return Config{Chains: 64, Steps: 150, StartTemp: 1.0, FinalTemp: 0.02}
}

// Result is a visited point with its surrogate score.
type Result struct {
	Index int64
	Score float64
}

// Run executes batched simulated annealing and returns the topK highest-
// scoring distinct indices visited across all chains, best first.
func Run(p Problem, cfg Config, topK int, g *rng.RNG) ([]Result, error) {
	if p.Size <= 0 {
		return nil, fmt.Errorf("anneal: empty space")
	}
	if p.Score == nil {
		return nil, fmt.Errorf("anneal: nil score function")
	}
	if cfg.Chains <= 0 || cfg.Steps <= 0 {
		c := DefaultConfig()
		c.InitialSeed = cfg.InitialSeed
		cfg = c
	}
	if cfg.StartTemp <= 0 {
		cfg.StartTemp = 1
	}
	if cfg.FinalTemp <= 0 || cfg.FinalTemp > cfg.StartTemp {
		cfg.FinalTemp = cfg.StartTemp / 50
	}
	if topK <= 0 {
		topK = 1
	}

	neighbor := p.Neighbor
	if neighbor == nil {
		neighbor = func(_ int64, g *rng.RNG) int64 { return g.Int63n(p.Size) }
	}

	// Initialize chains from seeds then uniform random.
	state := make([]int64, cfg.Chains)
	energy := make([]float64, cfg.Chains)
	for c := 0; c < cfg.Chains; c++ {
		if c < len(cfg.InitialSeed) {
			state[c] = cfg.InitialSeed[c] % p.Size
			if state[c] < 0 {
				state[c] += p.Size
			}
		} else {
			state[c] = g.Int63n(p.Size)
		}
		energy[c] = p.Score(state[c])
	}

	best := make(map[int64]float64, cfg.Chains*4)
	record := func(i int64, s float64) {
		if old, ok := best[i]; !ok || s > old {
			best[i] = s
		}
	}
	for c := range state {
		record(state[c], energy[c])
	}

	cool := math.Pow(cfg.FinalTemp/cfg.StartTemp, 1/float64(cfg.Steps))
	temp := cfg.StartTemp
	for step := 0; step < cfg.Steps; step++ {
		for c := 0; c < cfg.Chains; c++ {
			cand := neighbor(state[c], g)
			if cand < 0 || cand >= p.Size {
				continue
			}
			s := p.Score(cand)
			record(cand, s)
			delta := s - energy[c]
			if delta >= 0 || g.Float64() < math.Exp(delta/temp) {
				state[c] = cand
				energy[c] = s
			}
		}
		temp *= cool
	}

	out := make([]Result, 0, len(best))
	for i, s := range best {
		out = append(out, Result{Index: i, Score: s})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Index < out[b].Index
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}
