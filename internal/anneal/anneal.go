// Package anneal implements batched simulated annealing over discrete
// configuration indices. AutoTVM, Chameleon, and Glimpse all propose
// measurement candidates by running parallel Markov chains on a surrogate
// cost model; this package is that shared search engine.
//
// Chains are sharded across a bounded worker pool (Config.Workers). Each
// chain draws from its own RNG stream split from the caller's seed, and
// per-chain visited maps are merged in chain order, so a fixed seed yields
// byte-identical results for any worker count (and any GOMAXPROCS).
package anneal

import (
	"fmt"
	"math"
	"sort"

	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/telemetry"
)

// Problem describes a discrete maximization problem for the annealer.
// Score and Neighbor may be called from multiple goroutines concurrently
// when the annealer runs with more than one worker; both must be safe for
// concurrent use (pure functions of their arguments in practice).
type Problem struct {
	// Size is the number of points in the space.
	Size int64
	// Score returns the surrogate value to maximize at index i.
	Score func(i int64) float64
	// Neighbor proposes a move from index i. If nil, a uniform random
	// index is used (pure random-restart annealing).
	Neighbor func(i int64, g *rng.RNG) int64
}

// Config controls the annealing schedule. Non-positive fields default
// independently (see DefaultConfig for the values); a caller setting only
// Steps keeps its Steps and inherits the default Chains, and vice versa.
type Config struct {
	Chains      int     // parallel Markov chains
	Steps       int     // steps per chain
	StartTemp   float64 // initial temperature
	FinalTemp   float64 // final temperature (geometric schedule)
	InitialSeed []int64 // optional starting points (wrapped into chains)
	// Workers bounds the goroutines sharding the chains; <= 0 uses the
	// process-wide default (see internal/parallel), 1 runs serially.
	Workers int
	// Tracer records one "anneal" span per Run (nil: tracing disabled).
	// Tracing is observation only: it never touches the RNG streams, so
	// results are byte-identical with and without it.
	Tracer *telemetry.Tracer
	// Trace parents the Run span into a caller's trace (core sets the
	// current step's context). Zero roots the span; like Tracer, it is
	// identity only and never steers the search.
	Trace telemetry.SpanContext
}

// DefaultConfig mirrors AutoTVM's annealer scale, shrunk to simulator speed.
func DefaultConfig() Config {
	return Config{Chains: 64, Steps: 150, StartTemp: 1.0, FinalTemp: 0.02}
}

// withDefaults fills non-positive fields independently, preserving every
// field the caller did set.
func (cfg Config) withDefaults() Config {
	def := DefaultConfig()
	if cfg.Chains <= 0 {
		cfg.Chains = def.Chains
	}
	if cfg.Steps <= 0 {
		cfg.Steps = def.Steps
	}
	if cfg.StartTemp <= 0 {
		cfg.StartTemp = def.StartTemp
	}
	if cfg.FinalTemp <= 0 || cfg.FinalTemp > cfg.StartTemp {
		cfg.FinalTemp = cfg.StartTemp / 50
	}
	return cfg
}

// Result is a visited point with its surrogate score.
type Result struct {
	Index int64
	Score float64
}

// Run executes batched simulated annealing and returns the topK highest-
// scoring distinct indices visited across all chains, best first.
func Run(p Problem, cfg Config, topK int, g *rng.RNG) ([]Result, error) {
	if p.Size <= 0 {
		return nil, fmt.Errorf("anneal: empty space")
	}
	if p.Score == nil {
		return nil, fmt.Errorf("anneal: nil score function")
	}
	cfg = cfg.withDefaults()
	if topK <= 0 {
		topK = 1
	}
	sp, _ := cfg.Tracer.StartSpan(cfg.Trace, telemetry.StageAnneal)
	sp.SetAttr("chains", cfg.Chains)
	sp.SetAttr("steps", cfg.Steps)
	sp.SetAttr("topk", topK)
	defer sp.End()

	neighbor := p.Neighbor
	if neighbor == nil {
		neighbor = func(_ int64, g *rng.RNG) int64 { return g.Int63n(p.Size) }
	}

	cool := math.Pow(cfg.FinalTemp/cfg.StartTemp, 1/float64(cfg.Steps))

	// One salt per Run call, drawn from the parent stream before the
	// parallel region: successive calls on the same RNG explore with fresh
	// streams (Split alone keys off the static seed), while each chain's
	// trajectory stays a pure function of (salt, chain) — independent of
	// worker count and scheduling.
	chainBase := rng.New(g.Int63n(math.MaxInt64))
	// Hoist the fields the chain closure reads: capturing cfg itself would
	// capture it by reference (Config is past the compiler's 128-byte
	// by-value limit) and heap-move it on every Run.
	initialSeed, startTemp, steps := cfg.InitialSeed, cfg.StartTemp, cfg.Steps
	perChain := parallel.Map(cfg.Workers, cfg.Chains, func(c int) map[int64]float64 {
		cg := chainBase.Split(fmt.Sprintf("chain/%d", c))
		var state int64
		if c < len(initialSeed) {
			state = initialSeed[c] % p.Size
			if state < 0 {
				state += p.Size
			}
		} else {
			state = cg.Int63n(p.Size)
		}
		energy := p.Score(state)

		visited := map[int64]float64{state: energy}
		record := func(i int64, s float64) {
			if old, ok := visited[i]; !ok || s > old {
				visited[i] = s
			}
		}

		temp := startTemp
		for step := 0; step < steps; step++ {
			cand := neighbor(state, cg)
			if cand >= 0 && cand < p.Size {
				s := p.Score(cand)
				record(cand, s)
				delta := s - energy
				if delta >= 0 || cg.Float64() < math.Exp(delta/temp) {
					state = cand
					energy = s
				}
			}
			temp *= cool
		}
		return visited
	})

	// Deterministic reduction: merge per-chain maps in chain order.
	best := make(map[int64]float64, cfg.Chains*4)
	for _, visited := range perChain {
		for i, s := range visited {
			if old, ok := best[i]; !ok || s > old {
				best[i] = s
			}
		}
	}

	sp.SetAttr("visited", len(best))
	out := make([]Result, 0, len(best))
	for i, s := range best {
		out = append(out, Result{Index: i, Score: s})
	}
	sort.Slice(out, func(a, b int) bool {
		//glint:ignore floateq -- exact tie-break in a sort comparator; an epsilon would break strict weak ordering
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Index < out[b].Index
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}
