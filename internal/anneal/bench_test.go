package anneal

import (
	"fmt"
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/rng"
)

// benchScore stands in for a surrogate model evaluation: a few dozen
// transcendental ops, comparable to a small GBT or GP predict.
func benchScore(i int64) float64 {
	x := float64(i%100003) / 1000
	s := 0.0
	for k := 1; k <= 24; k++ {
		s += math.Sin(x*float64(k)) / float64(k)
	}
	return s
}

// BenchmarkAnneal measures the chain-sharded hot path at several worker
// counts; `make bench` snapshots it into BENCH_parallel.json.
func BenchmarkAnneal(b *testing.B) {
	p := Problem{
		Size:  1 << 20,
		Score: benchScore,
		Neighbor: func(i int64, g *rng.RNG) int64 {
			return i + int64(g.Intn(2001)) - 1000
		},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Config{Chains: 64, Steps: 200, StartTemp: 1, FinalTemp: 0.02, Workers: workers}
			g := rng.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(p, cfg, 64, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
