package blueprint

import (
	"encoding/json"
	"fmt"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/mat"
)

// embeddingJSON is the serialized form of an Embedding.
type embeddingJSON struct {
	Dim         int         `json:"dim"`
	Components  [][]float64 `json:"components"`
	Means       []float64   `json:"means"`
	Stds        []float64   `json:"stds"`
	Eigenvalues []float64   `json:"eigenvalues"`
}

// MarshalJSON serializes the embedding.
func (e *Embedding) MarshalJSON() ([]byte, error) {
	rows := make([][]float64, e.Dim)
	for i := 0; i < e.Dim; i++ {
		rows[i] = e.components.Row(i)
	}
	return json.Marshal(embeddingJSON{
		Dim:         e.Dim,
		Components:  rows,
		Means:       e.means,
		Stds:        e.stds,
		Eigenvalues: e.eigenvalues,
	})
}

// UnmarshalJSON restores a serialized embedding.
func (e *Embedding) UnmarshalJSON(data []byte) error {
	var v embeddingJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if v.Dim <= 0 || len(v.Components) != v.Dim {
		return fmt.Errorf("blueprint: serialized embedding dim %d with %d components", v.Dim, len(v.Components))
	}
	for i, row := range v.Components {
		if len(row) != hwspec.FeatureDim {
			return fmt.Errorf("blueprint: component %d has %d features, want %d", i, len(row), hwspec.FeatureDim)
		}
	}
	if len(v.Means) != hwspec.FeatureDim || len(v.Stds) != hwspec.FeatureDim {
		return fmt.Errorf("blueprint: serialized standardization has wrong width")
	}
	e.Dim = v.Dim
	e.components = mat.NewFromRows(v.Components)
	e.means = v.Means
	e.stds = v.Stds
	e.eigenvalues = v.Eigenvalues
	return nil
}
