package blueprint

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/mat"
	"github.com/neuralcompile/glimpse/internal/nn"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// Autoencoder is the alternative Blueprint design the paper considers and
// rejects (§3.1): a neural bottleneck embedding of the datasheet features.
// It exists to make the PCA-vs-autoencoder trade-off measurable — PCA
// offers an intuitive size/loss knob and needs no training, while the
// autoencoder must be fit per dimension and costs more compute for
// comparable loss (the paper's stated reason for choosing PCA).
type Autoencoder struct {
	Dim     int
	encoder *nn.Network
	decoder *nn.Network
	means   []float64
	stds    []float64
}

// TrainAutoencoder fits an 18→hidden→dim→hidden→18 autoencoder on the
// standardized spec population.
func TrainAutoencoder(specs []hwspec.Spec, dim, hidden, epochs int, g *rng.RNG) (*Autoencoder, error) {
	if len(specs) < 2 {
		return nil, fmt.Errorf("blueprint: need ≥2 specs, got %d", len(specs))
	}
	if dim < 1 || dim > hwspec.FeatureDim {
		return nil, fmt.Errorf("blueprint: dim %d outside [1, %d]", dim, hwspec.FeatureDim)
	}
	if hidden <= 0 {
		hidden = 24
	}
	if epochs <= 0 {
		epochs = 3000
	}
	raw := mat.New(len(specs), hwspec.FeatureDim)
	for i, s := range specs {
		raw.SetRow(i, s.FeatureVector())
	}
	std, means, stds := mat.Standardize(raw)

	enc := nn.NewMLP([]int{hwspec.FeatureDim, hidden, dim}, nn.Tanh, g.Split("enc"))
	dec := nn.NewMLP([]int{dim, hidden, hwspec.FeatureDim}, nn.Tanh, g.Split("dec"))
	full := &nn.Network{Layers: append(append([]nn.Layer{}, enc.Layers...), dec.Layers...)}
	nn.Fit(full, std, std, nn.TrainConfig{
		Epochs:    epochs,
		BatchSize: 8,
		Optimizer: nn.NewAdam(3e-3),
		ClipNorm:  10,
	}, g.Split("fit"))

	return &Autoencoder{Dim: dim, encoder: enc, decoder: dec, means: means, stds: stds}, nil
}

// Embed compresses a spec through the encoder.
func (a *Autoencoder) Embed(spec hwspec.Spec) []float64 {
	raw := spec.FeatureVector()
	std := make([]float64, len(raw))
	for j, v := range raw {
		std[j] = v - a.means[j]
		if a.stds[j] > 1e-12 {
			std[j] /= a.stds[j]
		}
	}
	return a.encoder.Predict(std)
}

// InformationLossAE measures reconstruction RMSE in standardized units —
// directly comparable to InformationLoss for the PCA embedding.
func InformationLossAE(specs []hwspec.Spec, a *Autoencoder) float64 {
	orig := mat.New(len(specs), hwspec.FeatureDim)
	recon := mat.New(len(specs), hwspec.FeatureDim)
	for i, s := range specs {
		raw := s.FeatureVector()
		std := make([]float64, len(raw))
		for j, v := range raw {
			std[j] = v - a.means[j]
			if a.stds[j] > 1e-12 {
				std[j] /= a.stds[j]
			}
		}
		orig.SetRow(i, std)
		recon.SetRow(i, a.decoder.Predict(a.encoder.Predict(std)))
	}
	return mat.RMSE(orig, recon)
}
