package blueprint

import (
	"math"
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
)

func TestBuildValidation(t *testing.T) {
	specs := hwspec.Registry()
	if _, err := Build(specs[:1], 3); err == nil {
		t.Fatal("single-spec population accepted")
	}
	if _, err := Build(specs, 0); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := Build(specs, hwspec.FeatureDim+1); err == nil {
		t.Fatal("oversized dim accepted")
	}
}

func TestEmbedDimensions(t *testing.T) {
	specs := hwspec.Registry()
	for _, dim := range []int{1, 4, 8} {
		e, err := Build(specs, dim)
		if err != nil {
			t.Fatal(err)
		}
		emb := e.Embed(specs[0])
		if len(emb) != dim {
			t.Fatalf("embedding len %d want %d", len(emb), dim)
		}
	}
}

func TestFullDimLosslessReconstruction(t *testing.T) {
	specs := hwspec.Registry()
	e, err := Build(specs, hwspec.FeatureDim)
	if err != nil {
		t.Fatal(err)
	}
	if loss := InformationLoss(specs, e); loss > 1e-8 {
		t.Fatalf("full-dim loss = %g want ≈0", loss)
	}
	// Round-trip an individual spec.
	s := hwspec.MustByName(hwspec.RTX3090)
	back := e.Reconstruct(e.Embed(s))
	raw := s.FeatureVector()
	for j := range raw {
		if math.Abs(back[j]-raw[j]) > 1e-6*(1+math.Abs(raw[j])) {
			t.Fatalf("feature %d: %g want %g", j, back[j], raw[j])
		}
	}
}

func TestLossMonotoneInDim(t *testing.T) {
	specs := hwspec.Registry()
	points, err := DSE(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != hwspec.FeatureDim {
		t.Fatalf("DSE points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Loss > points[i-1].Loss+1e-9 {
			t.Fatalf("loss increased with dim: %v -> %v", points[i-1], points[i])
		}
		if points[i].Explained < points[i-1].Explained-1e-9 {
			t.Fatal("explained variance decreased with dim")
		}
	}
	// Compression must be real: one component cannot be lossless.
	if points[0].Loss < 0.01 {
		t.Fatalf("dim-1 loss %g suspiciously low", points[0].Loss)
	}
}

func TestChooseDimMeetsTarget(t *testing.T) {
	specs := hwspec.Registry()
	dim, err := ChooseDim(specs, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if dim < 1 || dim > hwspec.FeatureDim {
		t.Fatalf("chosen dim %d", dim)
	}
	e, err := Build(specs, dim)
	if err != nil {
		t.Fatal(err)
	}
	if loss := InformationLoss(specs, e); loss >= 0.005 {
		t.Fatalf("chosen dim %d loss %g ≥ target", dim, loss)
	}
	// It should genuinely compress (paper's knee is well below 100%).
	if dim == hwspec.FeatureDim {
		t.Fatalf("no compression achieved (dim %d)", dim)
	}
}

func TestDefaultDimStable(t *testing.T) {
	if got := DefaultDim(); got != DefaultDim() {
		t.Fatal("DefaultDim not deterministic")
	}
}

func TestEmbeddingsDiscriminateGenerations(t *testing.T) {
	specs := hwspec.Registry()
	e, err := Build(specs, DefaultDim())
	if err != nil {
		t.Fatal(err)
	}
	// Same-generation neighbours should be closer than cross-generation
	// extremes: ‖2080Ti − 2080S‖ < ‖2080Ti − TitanXp‖.
	d := func(a, b string) float64 {
		ea := e.Embed(hwspec.MustByName(a))
		eb := e.Embed(hwspec.MustByName(b))
		s := 0.0
		for i := range ea {
			diff := ea[i] - eb[i]
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	if d("rtx-2080-ti", "titan-rtx") >= d("rtx-2080-ti", hwspec.TitanXp) {
		t.Fatal("blueprint does not separate generations")
	}
}

func TestReconstructFeature(t *testing.T) {
	specs := hwspec.Registry()
	e, err := Build(specs, hwspec.FeatureDim)
	if err != nil {
		t.Fatal(err)
	}
	s := hwspec.MustByName(hwspec.TitanXp)
	got, err := e.ReconstructFeature(e.Embed(s), "max_threads_per_block")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1024) > 1 {
		t.Fatalf("reconstructed max_threads_per_block = %g", got)
	}
	if _, err := e.ReconstructFeature(e.Embed(s), "flux_capacitance"); err == nil {
		t.Fatal("unknown feature accepted")
	}
}

// TestReconstructNearConstantFeature is the roundtrip-asymmetry
// regression: standardize skips the division for a feature whose
// population std vanishes (warp_size is 32 on every registry GPU), so
// Reconstruct must skip the multiplication too. The old code multiplied
// the centered value by the zero std, collapsing any off-population value
// (a future 64-wide-warp part, say) back to the population mean.
func TestReconstructNearConstantFeature(t *testing.T) {
	specs := hwspec.Registry()
	const warpIdx = 13 // "warp_size" in hwspec.FeatureNames()
	if hwspec.FeatureNames()[warpIdx] != "warp_size" {
		t.Fatalf("feature %d is %q, want warp_size", warpIdx, hwspec.FeatureNames()[warpIdx])
	}
	for _, s := range specs {
		if s.WarpSize != 32 {
			t.Skipf("registry no longer has constant warp size (%s: %d)", s.Name, s.WarpSize)
		}
	}
	e, err := Build(specs, hwspec.FeatureDim)
	if err != nil {
		t.Fatal(err)
	}
	wide := hwspec.MustByName(hwspec.RTX3090)
	wide.Name = "hypothetical-wide-warp"
	wide.WarpSize = 64
	back := e.Reconstruct(e.Embed(wide))
	if math.Abs(back[warpIdx]-64) > 1e-6 {
		t.Fatalf("reconstructed warp_size = %g, want 64 (near-constant feature collapsed)", back[warpIdx])
	}
}

// TestComponentSignsCanonical pins the PCA orientation contract: each
// component's largest-magnitude entry is positive, and two independent
// builds produce byte-identical serialized embeddings. Eigenvectors are
// only defined up to sign, and embeddings persist as cache keys, so the
// orientation must be a pure function of the spec population.
func TestComponentSignsCanonical(t *testing.T) {
	specs := hwspec.Registry()
	e, err := Build(specs, DefaultDim())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < e.Dim; k++ {
		row := e.components.Row(k)
		pivot := 0
		for j := 1; j < len(row); j++ {
			if math.Abs(row[j]) > math.Abs(row[pivot]) {
				pivot = j
			}
		}
		if row[pivot] < 0 {
			t.Fatalf("component %d pivot entry %g is negative", k, row[pivot])
		}
	}
	again, err := Build(specs, DefaultDim())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := e.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := again.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("two builds over the same population serialized differently")
	}
}

func TestReconstructLengthPanics(t *testing.T) {
	specs := hwspec.Registry()
	e, err := Build(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad embedding length did not panic")
		}
	}()
	e.Reconstruct([]float64{1, 2})
}
