package blueprint

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
)

func TestAutoencoderValidation(t *testing.T) {
	specs := hwspec.Registry()
	g := rng.New(1)
	if _, err := TrainAutoencoder(specs[:1], 4, 16, 10, g); err == nil {
		t.Fatal("single spec accepted")
	}
	if _, err := TrainAutoencoder(specs, 0, 16, 10, g); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := TrainAutoencoder(specs, hwspec.FeatureDim+1, 16, 10, g); err == nil {
		t.Fatal("oversized dim accepted")
	}
}

func TestAutoencoderLearnsCompression(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a network")
	}
	specs := hwspec.Registry()
	g := rng.New(2)
	ae, err := TrainAutoencoder(specs, 6, 24, 2000, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ae.Embed(specs[0])); got != 6 {
		t.Fatalf("embedding len %d want 6", got)
	}
	loss := InformationLossAE(specs, ae)
	// Standardized features have unit variance; a trained 6-dim bottleneck
	// must do far better than predicting the mean (loss 1.0).
	if loss > 0.6 {
		t.Fatalf("autoencoder loss %g; did not learn", loss)
	}
}

// TestPaperDesignChoicePCAOverAutoencoder reproduces the §3.1 design
// argument with the comparison that actually matters for an unseen target
// GPU: leave-one-out reconstruction. On the training population the
// autoencoder can memorize its 16 samples, but the Blueprint must embed
// GPUs that were never in the fit; held out, PCA generalizes at least as
// well — and needs no training or architecture search.
func TestPaperDesignChoicePCAOverAutoencoder(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	specs := hwspec.Registry()
	const dim = 6
	var pcaHeldOut, aeHeldOut []float64
	// Leave out each of the four evaluation targets in turn.
	for i, target := range hwspec.Targets {
		var train []hwspec.Spec
		var held hwspec.Spec
		for _, s := range specs {
			if s.Name == target {
				held = s
			} else {
				train = append(train, s)
			}
		}
		pca, err := Build(train, dim)
		if err != nil {
			t.Fatal(err)
		}
		ae, err := TrainAutoencoder(train, dim, 24, 2000, rng.New(int64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		pcaHeldOut = append(pcaHeldOut, InformationLoss([]hwspec.Spec{held}, pca))
		aeHeldOut = append(aeHeldOut, InformationLossAE([]hwspec.Spec{held}, ae))
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	pcaMean, aeMean := mean(pcaHeldOut), mean(aeHeldOut)
	t.Logf("held-out loss at dim=%d: PCA %.4f vs autoencoder %.4f", dim, pcaMean, aeMean)
	// The AE must not generalize meaningfully better than PCA — otherwise
	// the paper's design rationale would not hold on this population.
	if aeMean < pcaMean*0.8 {
		t.Fatalf("autoencoder held-out loss %.4f dominates PCA %.4f", aeMean, pcaMean)
	}
}
