// Package blueprint implements the paper's Blueprint (§3.1): a compact
// mathematical embedding of a GPU's public datasheet specification. Raw
// hwspec feature vectors are standardized over the known-GPU registry and
// compressed with Principal Component Analysis; the embedding dimension is
// the knob that trades information loss against compiler overhead (the
// design-space exploration of Fig. 8).
package blueprint

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/mat"
)

// Embedding is a fitted PCA compressor for datasheet feature vectors.
type Embedding struct {
	Dim         int         // number of principal components kept
	components  *mat.Matrix // Dim×D projection (rows are components)
	means       []float64   // per-feature standardization means
	stds        []float64   // per-feature standardization stds
	eigenvalues []float64   // all eigenvalues, descending
}

// Build fits an embedding of the given dimension on the spec population.
// Dim must be in [1, FeatureDim].
func Build(specs []hwspec.Spec, dim int) (*Embedding, error) {
	if len(specs) < 2 {
		return nil, fmt.Errorf("blueprint: need ≥2 specs, got %d", len(specs))
	}
	if dim < 1 || dim > hwspec.FeatureDim {
		return nil, fmt.Errorf("blueprint: dim %d outside [1, %d]", dim, hwspec.FeatureDim)
	}
	raw := mat.New(len(specs), hwspec.FeatureDim)
	for i, s := range specs {
		raw.SetRow(i, s.FeatureVector())
	}
	std, means, stds := mat.Standardize(raw)
	cov := mat.Covariance(std)
	eig, err := mat.SymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("blueprint: eigendecomposition: %w", err)
	}
	comp := mat.New(dim, hwspec.FeatureDim)
	for k := 0; k < dim; k++ {
		for j := 0; j < hwspec.FeatureDim; j++ {
			comp.Set(k, j, eig.Vectors.At(j, k))
		}
	}
	canonicalizeSigns(comp)
	return &Embedding{
		Dim:         dim,
		components:  comp,
		means:       means,
		stds:        stds,
		eigenvalues: eig.Values,
	}, nil
}

// canonicalizeSigns fixes each principal component's sign so the entry
// with the largest magnitude is positive (first such entry on ties). An
// eigenvector is only defined up to sign, and numerical eigensolvers may
// flip it between otherwise-identical builds; embeddings are persisted as
// cache keys, so the orientation must be a pure function of the data.
func canonicalizeSigns(comp *mat.Matrix) {
	for k := 0; k < comp.Rows(); k++ {
		row := comp.Row(k)
		pivot := 0
		for j := 1; j < len(row); j++ {
			if abs(row[j]) > abs(row[pivot]) {
				pivot = j
			}
		}
		if row[pivot] < 0 {
			for j := range row {
				comp.Set(k, j, -comp.At(k, j))
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// standardize maps a raw feature vector into standardized space.
func (e *Embedding) standardize(raw []float64) []float64 {
	out := make([]float64, len(raw))
	for j, v := range raw {
		out[j] = v - e.means[j]
		if e.stds[j] > 1e-12 {
			out[j] /= e.stds[j]
		}
	}
	return out
}

// Embed compresses a spec into its Blueprint vector of length Dim.
func (e *Embedding) Embed(spec hwspec.Spec) []float64 {
	return e.components.MulVec(e.standardize(spec.FeatureVector()))
}

// Reconstruct maps a Blueprint vector back to (approximate) raw datasheet
// feature space — used by the hardware-aware sampler to recover resource
// limits from the embedding alone.
func (e *Embedding) Reconstruct(emb []float64) []float64 {
	if len(emb) != e.Dim {
		panic(fmt.Sprintf("blueprint: embedding length %d want %d", len(emb), e.Dim))
	}
	std := e.components.T().MulVec(emb)
	out := make([]float64, len(std))
	for j, v := range std {
		// Mirror standardize exactly: a near-constant feature is centered
		// but not scaled there, so it must not be multiplied by its
		// (vanishing) std here — that would collapse the reconstruction
		// to the mean offset instead of round-tripping.
		if e.stds[j] > 1e-12 {
			out[j] = v*e.stds[j] + e.means[j]
		} else {
			out[j] = v + e.means[j]
		}
	}
	return out
}

// ReconstructFeature returns the named datasheet feature recovered from a
// Blueprint vector.
func (e *Embedding) ReconstructFeature(emb []float64, name string) (float64, error) {
	for j, n := range hwspec.FeatureNames() {
		if n == name {
			return e.Reconstruct(emb)[j], nil
		}
	}
	return 0, fmt.Errorf("blueprint: unknown feature %q", name)
}

// ExplainedVariance returns the fraction of total variance the kept
// components capture.
func (e *Embedding) ExplainedVariance() float64 {
	total, kept := 0.0, 0.0
	for i, v := range e.eigenvalues {
		if v < 0 {
			v = 0
		}
		total += v
		if i < e.Dim {
			kept += v
		}
	}
	if total == 0 {
		return 1
	}
	return kept / total
}

// InformationLoss measures the RMSE (in standardized feature units,
// normalized by the per-feature std of 1) between the spec population and
// its reconstruction through the embedding — the y-axis of Fig. 8.
func InformationLoss(specs []hwspec.Spec, e *Embedding) float64 {
	orig := mat.New(len(specs), hwspec.FeatureDim)
	recon := mat.New(len(specs), hwspec.FeatureDim)
	for i, s := range specs {
		std := e.standardize(s.FeatureVector())
		orig.SetRow(i, std)
		back := e.components.T().MulVec(e.components.MulVec(std))
		recon.SetRow(i, back)
	}
	return mat.RMSE(orig, recon)
}

// DSEPoint is one point of the Blueprint design-space exploration.
type DSEPoint struct {
	Dim          int
	RelativeSize float64 // Dim / FeatureDim (x-axis of Fig. 8)
	Loss         float64 // information loss (y-axis of Fig. 8)
	Explained    float64 // explained variance fraction
}

// DSE sweeps the embedding dimension over [1, FeatureDim] and reports the
// loss/size trade-off of Fig. 8.
func DSE(specs []hwspec.Spec) ([]DSEPoint, error) {
	var out []DSEPoint
	for dim := 1; dim <= hwspec.FeatureDim; dim++ {
		e, err := Build(specs, dim)
		if err != nil {
			return nil, err
		}
		out = append(out, DSEPoint{
			Dim:          dim,
			RelativeSize: float64(dim) / float64(hwspec.FeatureDim),
			Loss:         InformationLoss(specs, e),
			Explained:    e.ExplainedVariance(),
		})
	}
	return out, nil
}

// ChooseDim picks the smallest dimension whose information loss is below
// maxLoss — the red-star knee of Fig. 8 (the paper targets <0.5% loss).
func ChooseDim(specs []hwspec.Spec, maxLoss float64) (int, error) {
	points, err := DSE(specs)
	if err != nil {
		return 0, err
	}
	for _, p := range points {
		if p.Loss < maxLoss {
			return p.Dim, nil
		}
	}
	return hwspec.FeatureDim, nil
}

// DefaultDim builds the default-size embedding over the full registry
// using the paper's <0.5% loss target.
func DefaultDim() int {
	dim, err := ChooseDim(hwspec.Registry(), 0.005)
	if err != nil {
		return hwspec.FeatureDim
	}
	return dim
}
