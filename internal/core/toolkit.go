package core

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/acq"
	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Toolkit bundles Glimpse's offline-trained artifacts: the Blueprint
// embedding, the prior generator H, and the meta-learned acquisition
// function. One toolkit is trained per target GPU (leave-target-out, the
// paper's transfer protocol) and reused across every task tuned on it.
type Toolkit struct {
	TargetName string
	Emb        *blueprint.Embedding
	Prior      *prior.Model
	Acq        *acq.Neural
}

// ToolkitConfig controls offline training. The zero value gives the
// defaults used throughout the experiment harness.
type ToolkitConfig struct {
	// BlueprintDim is the embedding size; 0 selects the Fig. 8 knee.
	BlueprintDim int
	// TrainGPUs overrides the training pool (default: full registry minus
	// the target).
	TrainGPUs []string
	// PriorTasks overrides the tasks H trains on (default: every task of
	// every model — the target GPU itself is never measured).
	PriorTasks []workload.Task
	// MetaTasks overrides the (smaller) task set used for acquisition
	// meta-training.
	MetaTasks []workload.Task
	// MetaGPUs caps the number of GPUs used for meta-training (default 4).
	MetaGPUs int

	Prior prior.TrainConfig
	Meta  acq.MetaConfig
}

// defaultMetaTaskRefs is a representative spread across kinds and shapes.
var defaultMetaTaskRefs = []struct {
	model string
	l     int
}{
	{workload.ResNet18, 5},
	{workload.ResNet18, 7},
	{workload.ResNet18, 14},
	{workload.AlexNet, 11},
}

// TrainToolkit trains all offline artifacts for a target GPU, which must
// exist in the registry. The target is excluded from every training pool.
func TrainToolkit(target string, cfg ToolkitConfig, g *rng.RNG) (*Toolkit, error) {
	if _, err := hwspec.ByName(target); err != nil {
		return nil, err
	}
	dim := cfg.BlueprintDim
	if dim <= 0 {
		dim = blueprint.DefaultDim()
	}
	emb, err := blueprint.Build(hwspec.Registry(), dim)
	if err != nil {
		return nil, err
	}

	var pool []hwspec.Spec
	if len(cfg.TrainGPUs) > 0 {
		for _, name := range cfg.TrainGPUs {
			if name == target {
				return nil, fmt.Errorf("core: target %q in training pool", target)
			}
			spec, err := hwspec.ByName(name)
			if err != nil {
				return nil, err
			}
			pool = append(pool, spec)
		}
	} else {
		pool = hwspec.TrainingPool(target)
	}

	priorTasks := cfg.PriorTasks
	if len(priorTasks) == 0 {
		for _, model := range workload.Models {
			priorTasks = append(priorTasks, workload.MustTasks(model)...)
		}
	}
	priorModel, err := prior.Train(emb, pool, priorTasks, cfg.Prior, g.Split("prior"))
	if err != nil {
		return nil, err
	}

	metaTasks := cfg.MetaTasks
	if len(metaTasks) == 0 {
		for _, ref := range defaultMetaTaskRefs {
			task, err := workload.TaskByIndex(ref.model, ref.l)
			if err != nil {
				return nil, err
			}
			metaTasks = append(metaTasks, task)
		}
	}
	metaGPUs := cfg.MetaGPUs
	if metaGPUs <= 0 {
		metaGPUs = 4
	}
	metaPool := pool
	if len(metaPool) > metaGPUs {
		// Spread the meta pool across the generations present.
		stride := len(metaPool) / metaGPUs
		var spread []hwspec.Spec
		for i := 0; i < metaGPUs; i++ {
			spread = append(spread, metaPool[i*stride])
		}
		metaPool = spread
	}
	neural, err := acq.MetaTrain(emb, metaPool, metaTasks, cfg.Meta, g.Split("meta"))
	if err != nil {
		return nil, err
	}

	return &Toolkit{TargetName: target, Emb: emb, Prior: priorModel, Acq: neural}, nil
}

// Tuner instantiates a Glimpse tuner for the toolkit's target GPU.
func (tk *Toolkit) Tuner() *Glimpse {
	return &Glimpse{
		Emb:    tk.Emb,
		Prior:  tk.Prior,
		Acq:    tk.Acq,
		Target: hwspec.MustByName(tk.TargetName),
	}
}
