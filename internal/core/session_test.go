package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func resultBytes(t *testing.T, res *tuner.Result) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTuneSessionStepMatchesTune pins the refactor contract: driving the
// explicit step loop produces a byte-identical result to the one-shot
// Tune entry point for the same seed.
func TestTuneSessionStepMatchesTune(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and runs tuning sessions")
	}
	tk := smallToolkit(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	budget := tuner.Budget{MaxMeasurements: 48}

	oneShot, err := tk.Tuner().Tune(task, sp, measure.MustNewLocal(hwspec.TitanXp),
		budget, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}

	ts, err := tk.Tuner().NewTuneSession(task, sp, measure.MustNewLocal(hwspec.TitanXp),
		budget, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := ts.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
		if steps > 100 {
			t.Fatal("step loop did not terminate")
		}
	}
	stepped := ts.Result()

	if a, b := resultBytes(t, oneShot), resultBytes(t, stepped); !bytes.Equal(a, b) {
		t.Fatalf("stepped session diverged from one-shot Tune:\n one-shot %s\n stepped  %s", a, b)
	}
	if stepped.Steps == 0 || stepped.Measurements == 0 {
		t.Fatalf("stepped session measured nothing: %+v", stepped)
	}
}

// TestTuneSessionReplayResume pins the restart contract behind the
// tuning service: a session interrupted after k steps and resumed by
// replaying its measurement log finishes with a byte-identical result to
// an uninterrupted run, and the replayed prefix costs zero new
// measurements.
func TestTuneSessionReplayResume(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and runs tuning sessions")
	}
	tk := smallToolkit(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	budget := tuner.Budget{MaxMeasurements: 48}

	// Uninterrupted reference run.
	want, err := tk.Tuner().Tune(task, sp, measure.MustNewLocal(hwspec.TitanXp),
		budget, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: record every measurement, stop after two steps —
	// the moment a drain-on-SIGTERM checkpoint would capture.
	var log bytes.Buffer
	rec := &tlog.RecordingMeasurer{
		Inner: measure.MustNewLocal(hwspec.TitanXp),
		Out:   tlog.NewWriter(&log, 0),
	}
	ts, err := tk.Tuner().NewTuneSession(task, sp, rec, budget, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		done, err := ts.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("session finished before the interruption point; shrink the step count")
		}
	}

	// Resume in a fresh session (fresh RNG, fresh toolkit state): the
	// recorded log replays the prefix, then new measurements append to
	// the same log with continued sequence numbers.
	entries, err := tlog.Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("interrupted run recorded nothing")
	}
	cont := &tlog.RecordingMeasurer{
		Inner: measure.MustNewLocal(hwspec.TitanXp),
		Out:   tlog.NewWriter(&log, entries[len(entries)-1].Seq),
	}
	replay := tlog.NewReplayer(entries, cont)
	resumed, err := tk.Tuner().NewTuneSession(task, sp, replay, budget, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := resumed.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	got := resumed.Result()

	if a, b := resultBytes(t, want), resultBytes(t, got); !bytes.Equal(a, b) {
		t.Fatalf("resumed session diverged from uninterrupted run:\n want %s\n got  %s", a, b)
	}
	if replay.Replaying() {
		t.Fatalf("resume left %d recorded entries unconsumed", len(entries)-replay.Consumed())
	}
	// The full log now covers the whole session: replayed prefix plus the
	// continuation, with unbroken sequence numbers.
	all, err := tlog.Read(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != want.Measurements {
		t.Fatalf("final log holds %d entries, session measured %d", len(all), want.Measurements)
	}
	for i, e := range all {
		if e.Seq != i+1 {
			t.Fatalf("log seq broken at %d: %d", i, e.Seq)
		}
	}
}
