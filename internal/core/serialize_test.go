package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/neuralcompile/glimpse/internal/acq"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func TestToolkitSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	tk := smallToolkit(t)
	path := filepath.Join(t.TempDir(), "toolkit.json")
	if err := tk.Save(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadToolkit(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.TargetName != tk.TargetName {
		t.Fatalf("target %q want %q", restored.TargetName, tk.TargetName)
	}

	// The restored artifacts behave identically: same Blueprint vector,
	// same prior distributions, same acquisition scores.
	spec := hwspec.MustByName(tk.TargetName)
	a, b := tk.Emb.Embed(spec), restored.Emb.Embed(spec)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("embedding differs at %d: %g vs %g", i, a[i], b[i])
		}
	}
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := tk.Prior.Distributions(task, spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := restored.Prior.Distributions(task, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Params {
		if math.Abs(d1.Params[i]-d2.Params[i]) > 1e-12 {
			t.Fatalf("prior params differ at %d", i)
		}
	}
	st := acq.Stats{Mean: 1.1, Std: 0.2, Best: 1, Progress: 0.5, PriorLogProb: -4}
	if tk.Acq.Score(st, a) != restored.Acq.Score(st, b) {
		t.Fatal("acquisition scores differ after round trip")
	}
}

func TestLoadToolkitErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadToolkit(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadToolkit(bad); err == nil {
		t.Fatal("corrupt file accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"version":1,"target":"titan-xp"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadToolkit(empty); err == nil {
		t.Fatal("artifact-less file accepted")
	}
	wrongVer := filepath.Join(dir, "ver.json")
	if err := os.WriteFile(wrongVer, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadToolkit(wrongVer); err == nil {
		t.Fatal("wrong version accepted")
	}
}
