package core

import (
	"sync"
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// testToolkit trains a small-but-real toolkit once and shares it across
// tests (training is the expensive part).
var (
	tkOnce   sync.Once
	tkShared *Toolkit
	tkErr    error
)

func smallToolkit(t *testing.T) *Toolkit {
	t.Helper()
	tkOnce.Do(func() {
		var tasks []workload.Task
		for _, ref := range []struct {
			model string
			l     int
		}{
			{workload.ResNet18, 4}, {workload.ResNet18, 5}, {workload.ResNet18, 7},
			{workload.ResNet18, 8}, {workload.ResNet18, 10}, {workload.ResNet18, 13},
			{workload.ResNet18, 15}, {workload.ResNet18, 17},
			{workload.AlexNet, 2}, {workload.AlexNet, 3}, {workload.AlexNet, 8},
			{workload.AlexNet, 11}, {workload.VGG16, 8}, {workload.VGG16, 17},
		} {
			task, err := workload.TaskByIndex(ref.model, ref.l)
			if err != nil {
				tkErr = err
				return
			}
			tasks = append(tasks, task)
		}
		tkShared, tkErr = TrainToolkit(hwspec.TitanXp, ToolkitConfig{
			TrainGPUs: []string{"gtx-1080", "gtx-1080-ti", "rtx-2070", "rtx-2080",
				"rtx-2080-ti", "titan-rtx", "rtx-3070", "rtx-3080"},
			PriorTasks: tasks,
			Prior: prior.TrainConfig{
				Dataset: prior.DatasetConfig{SamplesPerTask: 150, TopK: 16},
				Epochs:  200,
			},
			MetaGPUs: 2,
		}, rng.New(1234))
	})
	if tkErr != nil {
		t.Fatal(tkErr)
	}
	return tkShared
}

func TestTrainToolkitValidation(t *testing.T) {
	if _, err := TrainToolkit("gpu-x", ToolkitConfig{}, rng.New(1)); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := TrainToolkit(hwspec.TitanXp, ToolkitConfig{
		TrainGPUs: []string{hwspec.TitanXp},
	}, rng.New(1)); err == nil {
		t.Fatal("target inside training pool accepted")
	}
}

func TestGlimpseRequiresArtifacts(t *testing.T) {
	gl := &Glimpse{}
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(hwspec.TitanXp)
	if _, err := gl.Tune(task, sp, m, tuner.Budget{MaxMeasurements: 8}, rng.New(2)); err == nil {
		t.Fatal("artifact-less Glimpse accepted")
	}
}

// TestGlimpseEndToEnd is the paper's headline: on the (training-excluded)
// target GPU, Glimpse reaches a better configuration than AutoTVM at equal
// measurement budget, with far fewer invalid measurements.
func TestGlimpseEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and runs full tuning sessions")
	}
	tk := smallToolkit(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(hwspec.TitanXp)
	budget := tuner.Budget{MaxMeasurements: 128}

	gl := tk.Tuner()
	glRes, err := gl.Tune(task, sp, m, budget, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	atvmRes, err := tuner.AutoTVM{}.Tune(task, sp, m, budget, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}

	if glRes.BestGFLOPS < atvmRes.BestGFLOPS*0.95 {
		t.Fatalf("glimpse %g clearly worse than autotvm %g", glRes.BestGFLOPS, atvmRes.BestGFLOPS)
	}
	if glRes.Invalid >= atvmRes.Invalid {
		t.Fatalf("glimpse invalid %d not below autotvm %d", glRes.Invalid, atvmRes.Invalid)
	}
	if glRes.TunerName != "glimpse" {
		t.Fatalf("name %q", glRes.TunerName)
	}
	if len(glRes.InitialBatch) == 0 {
		t.Fatal("no initial batch recorded")
	}
}

// TestGlimpseInitialBatchQuality pins §3.1: the prior-seeded first batch
// is far better than a random first batch on the unseen target.
func TestGlimpseInitialBatchQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	tk := smallToolkit(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(hwspec.TitanXp)
	budget := tuner.Budget{MaxMeasurements: 16}

	glRes, err := tk.Tuner().Tune(task, sp, m, budget, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	randRes, err := tuner.Random{}.Tune(task, sp, m, budget, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if glRes.BestGFLOPS <= randRes.BestGFLOPS {
		t.Fatalf("prior-seeded first batch %g ≤ random %g", glRes.BestGFLOPS, randRes.BestGFLOPS)
	}
}

func TestGlimpseAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	tk := smallToolkit(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(hwspec.TitanXp)
	budget := tuner.Budget{MaxMeasurements: 48}

	for _, variant := range []*Glimpse{
		func() *Glimpse { g := tk.Tuner(); g.DisablePrior = true; return g }(),
		func() *Glimpse { g := tk.Tuner(); g.DisableAcq = true; return g }(),
		func() *Glimpse { g := tk.Tuner(); g.DisableSampler = true; return g }(),
	} {
		res, err := variant.Tune(task, sp, m, budget, rng.New(51))
		if err != nil {
			t.Fatal(err)
		}
		if res.Measurements == 0 {
			t.Fatal("ablated variant did nothing")
		}
	}
}

func TestToolkitWorksOnWinogradAndDense(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	tk := smallToolkit(t)
	m := measure.MustNewLocal(hwspec.TitanXp)
	for _, l := range []int{13, 17} {
		task, err := workload.TaskByIndex(workload.ResNet18, l)
		if err != nil {
			t.Fatal(err)
		}
		sp := space.MustForTask(task)
		res, err := tk.Tuner().Tune(task, sp, m, tuner.Budget{MaxMeasurements: 48}, rng.New(61))
		if err != nil {
			t.Fatal(err)
		}
		if res.BestGFLOPS <= 0 {
			t.Fatalf("%s: nothing found", task.Name())
		}
	}
}
