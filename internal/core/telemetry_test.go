package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// TestTracedRunIsByteIdentical pins the telemetry contract: tracing
// observes only. The same seed must produce byte-identical results with
// tracing off, tracing on, and tracing on at a different worker count —
// and the trace must cover every stage of the tuning loop.
func TestTracedRunIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and runs full tuning sessions")
	}
	tk := smallToolkit(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	budget := tuner.Budget{MaxMeasurements: 64}

	run := func(tracer *telemetry.Tracer, workers int) *tuner.Result {
		t.Helper()
		gl := tk.Tuner()
		gl.Tracer = tracer
		gl.Workers = workers
		res, err := gl.Tune(task, sp, measure.MustNewLocal(hwspec.TitanXp), budget, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	marshal := func(res *tuner.Result) []byte {
		t.Helper()
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	plain := marshal(run(nil, 1))

	var trace bytes.Buffer
	tr := telemetry.NewTracer(&trace, telemetry.NewFakeClock(time.Unix(0, 0)))
	traced := marshal(run(tr, 1))
	if !bytes.Equal(plain, traced) {
		t.Fatalf("tracing changed the result:\nplain:  %s\ntraced: %s", plain, traced)
	}

	tracedPar := marshal(run(telemetry.NewTracer(&bytes.Buffer{}, nil), 4))
	if !bytes.Equal(plain, tracedPar) {
		t.Fatalf("traced parallel run diverged:\nplain: %s\ngot:   %s", plain, tracedPar)
	}

	// The trace covers the loop's stages.
	stages := map[string]bool{}
	for _, line := range bytes.Split(trace.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev telemetry.SpanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		stages[ev.Stage] = true
	}
	for _, want := range []string{
		telemetry.StagePriorSample, telemetry.StageAnneal,
		telemetry.StageSurrogateTrain, telemetry.StageSurrogateScore,
		telemetry.StageAcquisition, telemetry.StageEnsembleVote,
		telemetry.StageMeasure,
	} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, stages)
		}
	}
}
