package core

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/neuralcompile/glimpse/internal/acq"
	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/prior"
)

// toolkitJSON is the on-disk form of a trained toolkit.
type toolkitJSON struct {
	Version    int                  `json:"version"`
	TargetName string               `json:"target"`
	Emb        *blueprint.Embedding `json:"embedding"`
	Prior      *prior.Model         `json:"prior"`
	Acq        *acq.Neural          `json:"acquisition"`
}

// toolkitVersion guards against stale artifact files.
const toolkitVersion = 1

// Save writes the trained toolkit to path as JSON, so the expensive
// offline training runs once per target GPU and tuning sessions just load
// the artifacts.
func (tk *Toolkit) Save(path string) error {
	data, err := json.Marshal(toolkitJSON{
		Version:    toolkitVersion,
		TargetName: tk.TargetName,
		Emb:        tk.Emb,
		Prior:      tk.Prior,
		Acq:        tk.Acq,
	})
	if err != nil {
		return fmt.Errorf("core: serialize toolkit: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadToolkit restores a toolkit saved by Save, validating the target GPU
// still exists in the registry.
func LoadToolkit(path string) (*Toolkit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v toolkitJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("core: parse toolkit %s: %w", path, err)
	}
	if v.Version != toolkitVersion {
		return nil, fmt.Errorf("core: toolkit %s has version %d, want %d", path, v.Version, toolkitVersion)
	}
	if v.Emb == nil || v.Prior == nil || v.Acq == nil {
		return nil, fmt.Errorf("core: toolkit %s missing artifacts", path)
	}
	if _, err := hwspec.ByName(v.TargetName); err != nil {
		return nil, err
	}
	// The prior references the same embedding instance after a round trip.
	v.Prior.Emb = v.Emb
	return &Toolkit{TargetName: v.TargetName, Emb: v.Emb, Prior: v.Prior, Acq: v.Acq}, nil
}
