package core

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/acq"
	"github.com/neuralcompile/glimpse/internal/anneal"
	"github.com/neuralcompile/glimpse/internal/gp"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/sampler"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// TuneSession is one Glimpse tuning run held open as an explicit step
// loop: each Step measures one batch (the §3.1 prior batch first, then
// §3.2/§3.3 iterations), so a scheduler can interleave many sessions,
// checkpoint between steps, and preempt or resume a session without
// losing work.
//
// A TuneSession carries no durable state of its own. The resume
// discipline is deterministic replay: every randomized stage draws from
// the seeded RNG handed to NewTuneSession, and the only external input is
// the Measurer's results — so re-driving a fresh session whose Measurer
// serves the recorded measurements of a previous run (tlog.Replayer over
// the session's measurement log) reconstructs the exact in-memory state,
// including the RNG stream position, at which the previous run stopped.
// Glimpse.Tune, the fleet, and cmd/glimpse all drive this same loop, so a
// stepped, checkpointed, resumed session is byte-identical to a one-shot
// run for the same seed and config.
type TuneSession struct {
	gl   *Glimpse
	task workload.Task
	sp   *space.Space
	s    *tuner.Session
	m    measure.Measurer // the session's measurer, for per-batch trace binding
	g    *rng.RNG
	sc   telemetry.SpanContext // parent context for step spans (gl.Trace at open)
	step int                   // 1-based step counter, a span attribute only

	batch  int
	pool   int
	priorW float64

	hw     []float64
	dist   *prior.Dist
	scorer *prior.Scorer
	ens    *sampler.Ensemble

	xs           [][]float64
	ys           []float64
	visitedOrder []int64
	visited      map[int64]bool

	seeds []int64
	warmX [][]float64
	warmY []float64

	totalBudget int
	stall       int
	lastBest    float64

	started bool
	done    bool
}

// NewTuneSession validates the artifacts and opens a session; no
// measurements run until the first Step.
func (gl *Glimpse) NewTuneSession(task workload.Task, sp *space.Space, m measure.Measurer,
	budget tuner.Budget, g *rng.RNG) (*TuneSession, error) {

	if gl.Emb == nil || gl.Prior == nil || gl.Acq == nil {
		return nil, fmt.Errorf("core: Glimpse missing offline artifacts (use Toolkit)")
	}
	batch := gl.BatchSize
	if batch <= 0 {
		batch = 16
	}
	pool := gl.PoolSize
	if pool <= 0 {
		pool = 4 * batch
	}
	tau := gl.Tau
	if tau <= 0 {
		tau = sampler.DefaultTau
	}
	priorW := gl.PriorWeight
	if priorW <= 0 {
		priorW = 0.15
	}

	s, err := tuner.NewSession(gl.Name(), task, sp, m, budget, g)
	if err != nil {
		return nil, err
	}

	hw := gl.Emb.Embed(gl.Target)
	dist, err := gl.Prior.Distributions(task, gl.Target)
	if err != nil {
		return nil, err
	}
	scorer := dist.Scorer(sp)
	ens, err := sampler.NewEnsemble(gl.Emb, hw, gl.EnsembleSize, tau, g.Split("ensemble"))
	if err != nil {
		return nil, err
	}

	ts := &TuneSession{
		gl: gl, task: task, sp: sp, s: s, m: m, g: g, sc: gl.Trace,
		batch: batch, pool: pool, priorW: priorW,
		hw: hw, dist: dist, scorer: scorer, ens: ens,
		visited: map[int64]bool{},
	}

	// Warm start: donor best-configs from neighbor SKUs bypass the
	// ensemble filter (they ran valid on real hardware nearby), and donor
	// samples pre-train the surrogate. Both are fixed inputs — no RNG —
	// so warm runs stay deterministic.
	if gl.Warm != nil {
		for _, idx := range gl.Warm.Seeds {
			if idx >= 0 && idx < sp.Size() {
				ts.seeds = append(ts.seeds, idx)
			}
		}
		ts.warmX = gl.Warm.Features
		// Donor rows carry ranking information, not target-scale truth: a
		// donor's best config need not be the target's. Discount them below
		// the target's own normalized max so the first real measurement that
		// beats a donor region outranks it, instead of the GP chasing a
		// neighbor's optimum at face value for the whole session.
		ts.warmY = make([]float64, len(gl.Warm.GFLOPS))
		for i, v := range gl.Warm.GFLOPS {
			ts.warmY[i] = warmDiscount * v
		}
	}

	ts.totalBudget = budget.MaxMeasurements
	if ts.totalBudget <= 0 {
		ts.totalBudget = 512 // progress proxy when only GPU time is bounded
	}
	return ts, nil
}

// selector is the §3.3 ensemble-vote batch filter.
func (ts *TuneSession) selector(sc telemetry.SpanContext, cands []int64, n int) []int64 {
	vote, _ := ts.gl.Tracer.StartSpan(sc, telemetry.StageEnsembleVote)
	vote.SetAttr("cands", len(cands))
	var kept []int64
	if ts.gl.DisableSampler {
		kept = sampler.Passthrough{}.Select(ts.task, ts.sp, cands, n, ts.g)
	} else {
		kept = ts.ens.Select(ts.task, ts.sp, cands, n, ts.g)
	}
	vote.SetAttr("kept", len(kept))
	vote.End()
	return kept
}

// record measures one batch and folds the results into the surrogate's
// training set.
func (ts *TuneSession) record(sc telemetry.SpanContext, idxs []int64) error {
	msp, msc := ts.gl.Tracer.StartSpan(sc, telemetry.StageMeasure)
	msp.SetAttr("batch", len(idxs))
	// Bind this measure span's identity to the measurer chain: a Remote
	// at the bottom stamps it onto the RPC wire, so measured's
	// rpc_measure spans parent under this exact batch in merged traces.
	measure.BindTrace(ts.m, msc)
	results, err := ts.s.MeasureBatch(idxs)
	if err != nil {
		msp.SetAttr("error", err.Error())
		msp.End()
		return err
	}
	valid := 0
	for _, r := range results {
		if r.Valid {
			valid++
		}
	}
	msp.SetAttr("valid", valid)
	msp.End()
	ts.s.RecordInitialBatch(results)
	for i, r := range results {
		ts.visited[idxs[i]] = true
		ts.visitedOrder = append(ts.visitedOrder, idxs[i])
		v := 0.0
		if r.Valid {
			v = r.GFLOPS
		}
		ts.xs = append(ts.xs, ts.sp.FeaturesAt(idxs[i]))
		ts.ys = append(ts.ys, v)
	}
	return nil
}

// stepInitial runs the §3.1 initial batch: prior-distribution samples
// (ensemble-filtered), led by any warm-start seeds.
func (ts *TuneSession) stepInitial(sc telemetry.SpanContext) error {
	psp, _ := ts.gl.Tracer.StartSpan(sc, telemetry.StagePriorSample)
	psp.SetAttr("want", 3*ts.batch)
	psp.SetAttr("warm_seeds", len(ts.seeds))
	var first []int64
	if ts.gl.DisablePrior {
		for i := 0; i < 3*ts.batch; i++ {
			first = append(first, ts.sp.RandomIndex(ts.g))
		}
	} else {
		first = ts.dist.Sample(ts.sp, 3*ts.batch, ts.g.Split("prior-sample"))
	}
	psp.SetAttr("sampled", len(first))
	psp.End()
	want := ts.s.Remaining(ts.batch)
	seeds := ts.seeds
	if len(seeds) > want {
		seeds = seeds[:want]
	}
	first = append(append([]int64(nil), seeds...), ts.selector(sc, first, want-len(seeds))...)
	if len(first) == 0 {
		ts.done = true
		return nil
	}
	return ts.record(sc, first)
}

// stepIterate runs one §3.2/§3.3 loop iteration: surrogate fit, annealed
// exploration, acquisition scoring, ensemble-filtered measurement.
func (ts *TuneSession) stepIterate(sc telemetry.SpanContext) error {
	gl := ts.gl
	sp := ts.sp

	// Surrogate: exact GP on normalized measurements, pre-trained with
	// discounted donor rows when warm-started. Donor rows retire once
	// the target's own data outnumbers them 2:1 — past that point they
	// only blur a surrogate the real measurements specify better, and
	// the warm session's late-run search matches a cold one's.
	if len(ts.xs) >= 2*len(ts.warmY) {
		ts.warmX, ts.warmY = nil, nil
	}
	ny := normalize(ts.ys)
	gpx := make([][]float64, 0, len(ts.warmX)+len(ts.xs))
	gpx = append(append(gpx, ts.warmX...), ts.xs...)
	gpy := make([]float64, 0, len(ts.warmY)+len(ny))
	gpy = append(append(gpy, ts.warmY...), ny...)
	gx, gy := capGPSet(gpx, gpy, 144)
	tsp, _ := gl.Tracer.StartSpan(sc, telemetry.StageSurrogateTrain)
	tsp.SetAttr("rows", len(gx))
	sur, err := gp.FitWithGridSearch(gx, gy, 1e-3, func(v, sc float64) gp.Kernel {
		return gp.Matern52{Variance: v, LengthScale: sc}
	})
	tsp.End()
	if err != nil {
		return err
	}
	best := maxOf(gy)

	// §3.2 — explorer: SA over a surrogate UCB plus the prior energy,
	// then neural acquisition scoring of the pool. The UCB's κ ramps
	// while progress stalls, steering the chains toward uncertain
	// regions instead of circling a local basin.
	kappa := 0.2 + 0.8*float64(ts.stall)
	energy := func(i int64) float64 {
		mean, variance := sur.Predict(sp.FeaturesAt(i))
		v := mean + kappa*sqrtPos(variance)
		if gl.DisablePrior {
			return v
		}
		return v + ts.priorW*ts.scorer.LogProbIndex(i)/10
	}
	annealCfg := anneal.DefaultConfig()
	annealCfg.Workers = gl.Workers
	annealCfg.Tracer = gl.Tracer // anneal.Run emits its own "anneal" span
	annealCfg.Trace = sc         // parented under this step
	annealCfg.InitialSeed = topMeasured(ts.xs, ts.ys, ts.visitedOrder, 3)
	top, err := anneal.Run(anneal.Problem{
		Size:     sp.Size(),
		Score:    energy,
		Neighbor: sp.Neighbor,
	}, annealCfg, ts.pool, ts.g)
	if err != nil {
		return err
	}

	progress := float64(ts.s.Snapshot().Measurements) / float64(ts.totalBudget)
	var fresh []int64
	for _, r := range top {
		if !ts.visited[r.Index] {
			fresh = append(fresh, r.Index)
		}
	}
	if len(fresh) == 0 {
		ts.done = true
		return nil
	}
	// §3.2 scoring, two pooled passes: surrogate posterior per candidate
	// (GP predict dominates), then the neural acquisition batch. Both
	// are index-ordered maps, so output is worker-count invariant.
	ssp, _ := gl.Tracer.StartSpan(sc, telemetry.StageSurrogateScore)
	ssp.SetAttr("cands", len(fresh))
	stats := parallel.Map(gl.Workers, len(fresh), func(i int) acq.Stats {
		mean, variance := sur.Predict(sp.FeaturesAt(fresh[i]))
		return acq.Stats{
			Mean:         mean,
			Std:          sqrtPos(variance),
			Best:         best,
			Progress:     progress,
			PriorLogProb: ts.scorer.LogProbIndex(fresh[i]),
		}
	})
	ssp.End()
	asp, _ := gl.Tracer.StartSpan(sc, telemetry.StageAcquisition)
	asp.SetAttr("cands", len(stats))
	var scores []float64
	if gl.DisableAcq {
		scores = parallel.Map(gl.Workers, len(stats), func(i int) float64 {
			return acq.EI(stats[i].Mean, stats[i].Std, stats[i].Best)
		})
	} else {
		scores = gl.Acq.ScoreBatch(stats, ts.hw, gl.Workers)
	}
	asp.End()
	cands := make([]scoredCand, len(fresh))
	for i := range fresh {
		cands[i] = scoredCand{fresh[i], scores[i]}
	}
	sortScoredDesc(cands)
	ordered := make([]int64, len(cands))
	for i, c := range cands {
		ordered[i] = c.idx
	}

	// §3.3 — ensemble vote filters the measurement batch.
	n := ts.s.Remaining(ts.batch)
	explore := (n / 8) * (1 + ts.stall)
	if explore < 1 && n > 2 {
		explore = 1
	}
	if explore > n/2 {
		explore = n / 2
	}
	idxs := ts.selector(sc, ordered, n-explore)
	// Hardware-Aware Exploration keeps a slice of each batch for fresh
	// samples so the search cannot collapse onto one mode: prior-guided
	// draws normally, widened with uniform draws while progress stalls.
	if explore > 0 {
		freshDraw := ts.dist.Sample(sp, 8*explore, ts.g)
		for i := 0; i < 4*explore*ts.stall; i++ {
			freshDraw = append(freshDraw, sp.RandomIndex(ts.g))
		}
		var unseen []int64
		for _, idx := range freshDraw {
			if !ts.visited[idx] {
				unseen = append(unseen, idx)
			}
		}
		idxs = append(idxs, ts.selector(sc, unseen, explore)...)
	}
	if len(idxs) == 0 {
		ts.done = true
		return nil
	}
	if err := ts.record(sc, idxs); err != nil {
		return err
	}
	if cur := ts.s.Snapshot().BestGFLOPS; cur > ts.lastBest*1.005 {
		ts.stall = 0
		ts.lastBest = cur
	} else if ts.stall < 6 {
		ts.stall++
	}
	return nil
}

// Step advances the session by one measurement batch and reports whether
// the session has finished. Calling Step on a finished session is a
// harmless no-op returning done=true.
func (ts *TuneSession) Step() (done bool, err error) {
	if ts.done {
		return true, nil
	}
	if ts.started && ts.s.Done() {
		ts.done = true
		return true, nil
	}
	ts.step++
	span, sc := ts.gl.Tracer.StartSpan(ts.sc, telemetry.StageStep)
	span.SetAttr("step", ts.step)
	defer span.End()
	if !ts.started {
		ts.started = true
		if err := ts.stepInitial(sc); err != nil {
			return false, err
		}
		return ts.done, nil
	}
	if err := ts.stepIterate(sc); err != nil {
		return false, err
	}
	return ts.done, nil
}

// Done reports whether the session has finished (budget exhausted,
// converged, or search dried up).
func (ts *TuneSession) Done() bool { return ts.done || (ts.started && ts.s.Done()) }

// Snapshot returns the session's progress so far without ending it.
func (ts *TuneSession) Snapshot() tuner.Result { return ts.s.Snapshot() }

// Result finalizes and returns the session result. The session may not be
// stepped afterwards.
func (ts *TuneSession) Result() *tuner.Result {
	ts.done = true
	return ts.s.Finish()
}
