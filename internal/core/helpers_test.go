package core

import (
	"math"
	"testing"
)

func TestCapGPSetUnderCap(t *testing.T) {
	xs := [][]float64{{1}, {2}}
	ys := []float64{0.1, 0.2}
	ox, oy := capGPSet(xs, ys, 10)
	if len(ox) != 2 || len(oy) != 2 {
		t.Fatalf("under-cap set modified: %d/%d", len(ox), len(oy))
	}
}

func TestCapGPSetKeepsBestAndRecent(t *testing.T) {
	n := 20
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = []float64{float64(i)}
		ys[i] = float64(i % 7) // best values scattered early and late
	}
	ys[3] = 100 // an early standout that must survive
	ox, oy := capGPSet(xs, ys, 8)
	if len(ox) > 8+1 { // halves may overlap; never exceeds cap+overlap slack
		t.Fatalf("capped set too large: %d", len(ox))
	}
	foundBest, foundLast := false, false
	for i := range ox {
		if ox[i][0] == 3 && oy[i] == 100 {
			foundBest = true
		}
		if ox[i][0] == float64(n-1) {
			foundLast = true
		}
	}
	if !foundBest {
		t.Fatal("best measurement dropped by cap")
	}
	if !foundLast {
		t.Fatal("most recent measurement dropped by cap")
	}
}

func TestTopMeasured(t *testing.T) {
	xs := [][]float64{{0}, {0}, {0}, {0}}
	ys := []float64{5, 30, 10, 20}
	order := []int64{100, 200, 300, 400}
	top := topMeasured(xs, ys, order, 2)
	if len(top) != 2 || top[0] != 200 || top[1] != 400 {
		t.Fatalf("topMeasured = %v want [200 400]", top)
	}
	// k larger than data.
	top = topMeasured(xs, ys, order, 10)
	if len(top) != 4 {
		t.Fatalf("topMeasured full = %v", top)
	}
}

func TestNormalizeAndMax(t *testing.T) {
	v := normalize([]float64{2, 4, 0})
	if v[1] != 1 || v[0] != 0.5 || v[2] != 0 {
		t.Fatalf("normalize = %v", v)
	}
	if got := normalize([]float64{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("normalize zeros = %v", got)
	}
	if maxOf([]float64{1, 3, 2}) != 3 {
		t.Fatal("maxOf")
	}
	if sqrtPos(-1) != 0 || math.Abs(sqrtPos(4)-2) > 1e-12 {
		t.Fatal("sqrtPos")
	}
}

func TestSortScoredDesc(t *testing.T) {
	cands := []scoredCand{{1, 0.5}, {2, 0.9}, {3, 0.1}}
	sortScoredDesc(cands)
	if cands[0].idx != 2 || cands[1].idx != 1 || cands[2].idx != 3 {
		t.Fatalf("sortScoredDesc = %v", cands)
	}
}
