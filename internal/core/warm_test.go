package core

import (
	"reflect"
	"testing"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// donorWarmStart turns a finished cold run into the warm-start payload a
// cache miss would hand the next session (donor best as seed, top samples
// normalized by the donor's best).
func donorWarmStart(t *testing.T, res *tuner.Result, sp *space.Space) *cache.WarmStart {
	t.Helper()
	if res.BestIndex < 0 || len(res.TopMeasured) == 0 {
		t.Fatal("donor run found nothing")
	}
	ws := &cache.WarmStart{
		Seeds:  []int64{res.BestIndex},
		Donors: []string{"rtx-2080-ti"},
	}
	top := res.TopMeasured
	if len(top) > 8 {
		top = top[:8]
	}
	for _, m := range top {
		ws.Features = append(ws.Features, sp.FeaturesAt(m.Index))
		ws.GFLOPS = append(ws.GFLOPS, m.GFLOPS/res.BestGFLOPS)
	}
	return ws
}

// TestGlimpseWarmStartDeterministic pins the reproducibility contract for
// warm runs: for a fixed warm-start payload and seed, results are
// byte-identical across runs and across worker counts.
func TestGlimpseWarmStartDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and runs tuning sessions")
	}
	tk := smallToolkit(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(hwspec.TitanXp)

	donor, err := tk.Tuner().Tune(task, sp, m, tuner.Budget{MaxMeasurements: 32}, rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	ws := donorWarmStart(t, donor, sp)

	budget := tuner.Budget{MaxMeasurements: 48}
	run := func(workers int) *tuner.Result {
		gl := tk.Tuner()
		gl.Workers = workers
		gl.SetWarmStart(ws)
		res, err := gl.Tune(task, sp, m, budget, rng.New(81))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(1), run(1), run(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("warm runs with identical seed diverged:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("warm run depends on worker count:\n%+v\n%+v", a, c)
	}
}

// TestGlimpseWarmSeedMeasured pins the §3.1 wiring: a warm-start seed
// joins the initial batch and is actually measured, bypassing the
// ensemble filter.
func TestGlimpseWarmSeedMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models and runs tuning sessions")
	}
	tk := smallToolkit(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	sp := space.MustForTask(task)
	m := measure.MustNewLocal(hwspec.TitanXp)

	donor, err := tk.Tuner().Tune(task, sp, m, tuner.Budget{MaxMeasurements: 32}, rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	ws := donorWarmStart(t, donor, sp)

	gl := tk.Tuner()
	gl.SetWarmStart(ws)
	// Budget below TopMeasuredCap, so every measured config is visible in
	// TopMeasured — if the seed was measured, it must appear.
	res, err := gl.Tune(task, sp, m, tuner.Budget{MaxMeasurements: 16}, rng.New(91))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mm := range res.TopMeasured {
		if mm.Index == ws.Seeds[0] {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("warm seed %d never measured (measured: %+v)", ws.Seeds[0], res.TopMeasured)
	}
	// The seed is the donor's best on the same simulated hardware, so the
	// warm session can never do worse than that seed.
	if res.BestGFLOPS < donor.BestGFLOPS {
		t.Fatalf("warm best %g below its own seed's %g", res.BestGFLOPS, donor.BestGFLOPS)
	}
}
