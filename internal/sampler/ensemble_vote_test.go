package sampler

import (
	"strings"
	"testing"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/rng"
)

// pinDefaultWorkers fixes the process-wide pool width for one test pass.
func pinDefaultWorkers(n int) func() {
	old := parallel.DefaultWorkers()
	parallel.SetDefaultWorkers(n)
	return func() { parallel.SetDefaultWorkers(old) }
}

// alwaysInvalid is a predictor whose thresholds are below any derivable
// resource usage, so it votes invalid for every configuration.
func alwaysInvalid() predictor {
	return predictor{th: thresholds{maxThreads: -1, maxSmem: -1, maxRegsPool: -1, maxVThreads: -1, maxBlocks: -1}}
}

// alwaysValid is a predictor with unreachable thresholds: it never votes
// invalid.
func alwaysValid() predictor {
	const huge = 1e18
	return predictor{th: thresholds{maxThreads: huge, maxSmem: huge, maxRegsPool: huge, maxVThreads: huge, maxBlocks: huge}}
}

// fixedVoteEnsemble builds an ensemble of size n where exactly k members
// vote invalid on everything.
func fixedVoteEnsemble(n, k int, tau float64) *Ensemble {
	e := &Ensemble{Tau: tau}
	for i := 0; i < n; i++ {
		if i < k {
			e.predictors = append(e.predictors, alwaysInvalid())
		} else {
			e.predictors = append(e.predictors, alwaysValid())
		}
	}
	return e
}

// TestAcceptVoteBoundary pins §3.3's rule: a configuration is rejected
// only when MORE than τ·N predictors vote invalid. With τ = 1/3 and N = 9,
// exactly 3 invalid votes must still be accepted; 4 must be rejected.
func TestAcceptVoteBoundary(t *testing.T) {
	task, sp := testTask(t)
	idx := sp.RandomIndex(rng.New(1))
	const n = 9
	tau := DefaultTau // τ·N = 3 exactly
	cases := []struct {
		invalid int
		accept  bool
	}{
		{0, true},
		{2, true},
		{3, true},  // exactly τ·N: "more than τ" not met — accept
		{4, false}, // first count strictly above τ·N — reject
		{9, false},
	}
	for _, tc := range cases {
		e := fixedVoteEnsemble(n, tc.invalid, tau)
		if got := e.Accept(task, sp, idx); got != tc.accept {
			t.Errorf("%d/%d invalid votes: Accept = %v want %v", tc.invalid, n, got, tc.accept)
		}
	}
}

// TestSelectTopUpOrdering verifies that when fewer than n candidates
// survive the vote, the batch is topped up with rejected candidates in
// their original rank order, after all survivors.
func TestSelectTopUpOrdering(t *testing.T) {
	task, sp := testTask(t)
	// Every candidate is rejected: survivors empty, top-up must preserve
	// the explorer's ranking exactly.
	eRejectAll := fixedVoteEnsemble(5, 5, DefaultTau)
	cands := []int64{42, 7, 99, 3, 15}
	got := eRejectAll.Select(task, sp, cands, 4, rng.New(2))
	want := []int64{42, 7, 99, 3}
	if len(got) != len(want) {
		t.Fatalf("selected %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("top-up order: got %v want %v", got, want)
		}
	}

	// Every candidate accepted: same order, truncated at n.
	eAcceptAll := fixedVoteEnsemble(5, 0, DefaultTau)
	got = eAcceptAll.Select(task, sp, cands, 3, rng.New(3))
	want = []int64{42, 7, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("accept-all order: got %v want %v", got, want)
		}
	}
}

// TestSelectWorkerCountInvariant: the pooled vote evaluation must not
// change the selection for any worker count.
func TestSelectWorkerCountInvariant(t *testing.T) {
	task, sp := testTask(t)
	e, _ := newTestEnsemble(t, hwspec.TitanXp, 0)
	g := rng.New(4)
	cands := make([]int64, 300)
	for i := range cands {
		cands[i] = sp.RandomIndex(g)
	}
	var ref []int64
	for _, workers := range []int{1, 2, 8} {
		restore := pinDefaultWorkers(workers)
		got := e.Select(task, sp, cands, 32, rng.New(5))
		restore()
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d selected want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestNewEnsembleRejectsTauAboveOne(t *testing.T) {
	emb, err := blueprint.Build(hwspec.Registry(), blueprint.DefaultDim())
	if err != nil {
		t.Fatal(err)
	}
	vec := emb.Embed(hwspec.MustByName(hwspec.TitanXp))
	_, err = NewEnsemble(emb, vec, 9, 1.5, rng.New(6))
	if err == nil {
		t.Fatal("tau = 1.5 accepted")
	}
	if !strings.Contains(err.Error(), "tau") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// τ = 1 is the degenerate-but-expressible edge (never reject): allowed.
	if _, err := NewEnsemble(emb, vec, 9, 1.0, rng.New(6)); err != nil {
		t.Fatalf("tau = 1 rejected: %v", err)
	}
}

// TestClampFloorRescuesLossyBlueprint: an ensemble whose reconstructed
// thresholds come back zero/negative must still accept reasonable configs
// instead of rejecting everything.
func TestClampFloorRescuesLossyBlueprint(t *testing.T) {
	if got := clampFloor(-120, minThreadsFloor); got != minThreadsFloor {
		t.Fatalf("clampFloor(-120) = %v", got)
	}
	if got := clampFloor(0, minSmemFloor); got != minSmemFloor {
		t.Fatalf("clampFloor(0) = %v", got)
	}
	nan := clampFloor(floatNaN(), minRegsFloor)
	if nan != minRegsFloor {
		t.Fatalf("clampFloor(NaN) = %v", nan)
	}
	if got := clampFloor(2048, minThreadsFloor); got != 2048 {
		t.Fatalf("clampFloor passthrough = %v", got)
	}

	// End to end: a base ensemble built from floored thresholds accepts a
	// minimal-resource configuration (one warp, no smem) rather than
	// rejecting the whole space.
	task, sp := testTask(t)
	e := &Ensemble{Tau: DefaultTau}
	for i := 0; i < 9; i++ {
		e.predictors = append(e.predictors, predictor{th: thresholds{
			maxThreads:  minThreadsFloor,
			maxSmem:     minSmemFloor,
			maxRegsPool: minRegsFloor,
			maxVThreads: 64,
			maxBlocks:   1 << 31,
		}})
	}
	accepted := 0
	g := rng.New(7)
	for i := 0; i < 500; i++ {
		if e.Accept(task, sp, sp.RandomIndex(g)) {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("floored ensemble still rejects every config")
	}
}

func floatNaN() float64 {
	z := 0.0
	return z / z
}
