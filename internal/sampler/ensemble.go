package sampler

import (
	"fmt"
	"math"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/parallel"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// DefaultTau is the paper's grid-searched rejection threshold τ = 1/3.
const DefaultTau = 1.0 / 3.0

// Floors for Blueprint-reconstructed limits. The PCA reconstruction is
// lossy and can return zero or negative values for small-dim embeddings;
// a threshold at or below zero makes every predictor vote invalid, so the
// ensemble would reject every configuration. No real GPU sits below these.
const (
	minThreadsFloor = 32       // one warp
	minSmemFloor    = 4 << 10  // 4 KiB shared memory per block
	minRegsFloor    = 16 << 10 // 16k registers per SM
)

// thresholds are the resource limits one ensemble member checks against.
type thresholds struct {
	maxThreads  float64
	maxSmem     float64 // bytes
	maxRegsPool float64 // per-SM register file
	maxVThreads float64
	maxBlocks   float64
}

// predictor is one O(1) threshold-based member of the ensemble. Members
// differ by a deterministic jitter on their thresholds, which is what makes
// the vote more robust than a single reconstructed limit: the Blueprint is
// lossy, so individual thresholds carry reconstruction error.
type predictor struct {
	th thresholds
}

// vote returns true when the predictor considers the config INVALID.
func (p predictor) vote(res space.Resources) bool {
	switch {
	case float64(res.ThreadsPerBlock) > p.th.maxThreads:
		return true
	case float64(res.SharedMemBytes) > p.th.maxSmem:
		return true
	case float64(res.RegsPerThread)*float64(res.ThreadsPerBlock) > p.th.maxRegsPool:
		return true
	case float64(res.VThreads) > p.th.maxVThreads:
		return true
	case float64(res.Blocks) > p.th.maxBlocks:
		return true
	}
	return false
}

// Ensemble is Glimpse's Hardware-Aware Sampling: threshold predictors
// generated from the Blueprint embedding of an (unseen) target GPU.
type Ensemble struct {
	Tau        float64
	predictors []predictor
}

// NewEnsemble generates the predictor ensemble for a target GPU from its
// Blueprint vector alone. size controls the ensemble cardinality (default
// 9); tau ≤ 0 selects the paper's τ = 1/3, tau > 1 is rejected (the vote
// fraction can never exceed 1, so such an ensemble could never reject and
// silently disables §3.3). Thresholds reconstructed as zero/negative from
// a lossy Blueprint are clamped to hardware floors — otherwise every
// predictor votes invalid and the ensemble rejects every configuration.
func NewEnsemble(emb *blueprint.Embedding, blueprintVec []float64, size int, tau float64, g *rng.RNG) (*Ensemble, error) {
	if size <= 0 {
		size = 9
	}
	if tau > 1 {
		return nil, fmt.Errorf("sampler: tau %g > 1 can never reject (want 0 < tau <= 1, or <= 0 for the default %g)", tau, DefaultTau)
	}
	if tau <= 0 {
		tau = DefaultTau
	}
	get := func(name string) (float64, error) {
		return emb.ReconstructFeature(blueprintVec, name)
	}
	maxThreads, err := get("max_threads_per_block")
	if err != nil {
		return nil, err
	}
	maxSmemKB, err := get("max_smem_per_block_kb")
	if err != nil {
		return nil, err
	}
	regsPerSM, err := get("regs_per_sm")
	if err != nil {
		return nil, err
	}
	base := thresholds{
		maxThreads:  clampFloor(maxThreads, minThreadsFloor),
		maxSmem:     clampFloor(maxSmemKB*1024, minSmemFloor),
		maxRegsPool: clampFloor(regsPerSM, minRegsFloor),
		maxVThreads: 64,                     // TVM verifier constant
		maxBlocks:   float64(1) * (1 << 31), // CUDA grid limit
	}
	e := &Ensemble{Tau: tau}
	for i := 0; i < size; i++ {
		jitter := func() float64 { return 0.9 + 0.2*g.Float64() }
		e.predictors = append(e.predictors, predictor{th: thresholds{
			maxThreads:  base.maxThreads * jitter(),
			maxSmem:     base.maxSmem * jitter(),
			maxRegsPool: base.maxRegsPool * jitter(),
			maxVThreads: base.maxVThreads * jitter(),
			maxBlocks:   base.maxBlocks,
		}})
	}
	return e, nil
}

// Accept reports whether the ensemble lets a configuration through to
// measurement: it is rejected when more than Tau of the predictors vote it
// invalid.
func (e *Ensemble) Accept(task workload.Task, sp *space.Space, idx int64) bool {
	res, err := space.Derive(task, sp, sp.FromIndex(idx))
	if err != nil {
		return false
	}
	invalid := 0
	for _, p := range e.predictors {
		if p.vote(res) {
			invalid++
		}
	}
	return float64(invalid) <= e.Tau*float64(len(e.predictors))
}

// Select filters the explorer's candidates through the ensemble vote,
// preserving order, and returns up to n survivors. If fewer than n survive
// it tops up with the best-ranked rejected candidates (the tuner must fill
// its measurement batch; the vote is advisory, exactly like §3.3's τ rule).
// The votes are evaluated through the worker pool; the selection itself is
// a serial scan over the vote slice, so the result is identical for any
// worker count.
func (e *Ensemble) Select(task workload.Task, sp *space.Space, cands []int64, n int, _ *rng.RNG) []int64 {
	if n <= 0 {
		return nil
	}
	accepted := parallel.Map(0, len(cands), func(i int) bool {
		return e.Accept(task, sp, cands[i])
	})
	out := make([]int64, 0, n)
	rejected := make([]int64, 0, len(cands))
	for i, idx := range cands {
		if len(out) >= n {
			break
		}
		if accepted[i] {
			out = append(out, idx)
		} else {
			rejected = append(rejected, idx)
		}
	}
	for _, idx := range rejected {
		if len(out) >= n {
			break
		}
		out = append(out, idx)
	}
	return out
}

// clampFloor lifts a lossy reconstruction to a physical floor; NaN (a
// degenerate Blueprint) also clamps.
func clampFloor(v, floor float64) float64 {
	if math.IsNaN(v) || v < floor {
		return floor
	}
	return v
}

// Size returns the ensemble cardinality.
func (e *Ensemble) Size() int { return len(e.predictors) }

// String describes the ensemble.
func (e *Ensemble) String() string {
	return fmt.Sprintf("ensemble(%d predictors, τ=%.2f)", len(e.predictors), e.Tau)
}
