package sampler

import (
	"testing"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func testTask(t *testing.T) (workload.Task, *space.Space) {
	t.Helper()
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	return task, space.MustForTask(task)
}

func TestPassthrough(t *testing.T) {
	task, sp := testTask(t)
	cands := []int64{5, 3, 9, 1}
	got := Passthrough{}.Select(task, sp, cands, 2, rng.New(1))
	if len(got) != 2 || got[0] != 5 || got[1] != 3 {
		t.Fatalf("passthrough = %v", got)
	}
	// Does not alias input.
	got[0] = 99
	if cands[0] == 99 {
		t.Fatal("passthrough aliases input")
	}
}

func TestClusterSelectsDiverseRepresentatives(t *testing.T) {
	task, sp := testTask(t)
	g := rng.New(2)
	cands := make([]int64, 120)
	for i := range cands {
		cands[i] = sp.RandomIndex(g)
	}
	got := Cluster{}.Select(task, sp, cands, 10, g)
	if len(got) != 10 {
		t.Fatalf("selected %d want 10", len(got))
	}
	seen := map[int64]bool{}
	inPool := map[int64]bool{}
	for _, c := range cands {
		inPool[c] = true
	}
	for _, idx := range got {
		if seen[idx] {
			t.Fatalf("duplicate representative %d", idx)
		}
		if !inPool[idx] {
			t.Fatalf("representative %d not from candidate pool", idx)
		}
		seen[idx] = true
	}
}

func TestClusterSmallPoolPassesThrough(t *testing.T) {
	task, sp := testTask(t)
	cands := []int64{1, 2, 3}
	got := Cluster{}.Select(task, sp, cands, 10, rng.New(3))
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func newTestEnsemble(t *testing.T, target string, tau float64) (*Ensemble, *blueprint.Embedding) {
	t.Helper()
	emb, err := blueprint.Build(hwspec.Registry(), blueprint.DefaultDim())
	if err != nil {
		t.Fatal(err)
	}
	vec := emb.Embed(hwspec.MustByName(target))
	e, err := NewEnsemble(emb, vec, 9, tau, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return e, emb
}

// TestEnsembleFiltersInvalidConfigs is the §3.3 claim: predictors generated
// from the Blueprint of an unseen GPU drastically cut the invalid fraction
// among measured configurations.
func TestEnsembleFiltersInvalidConfigs(t *testing.T) {
	task, sp := testTask(t)
	target := hwspec.TitanXp
	e, _ := newTestEnsemble(t, target, 0)
	dev := gpusim.NewDevice(hwspec.MustByName(target))
	g := rng.New(4)

	const n = 3000
	rawInvalid, accepted, acceptedInvalid := 0, 0, 0
	for i := 0; i < n; i++ {
		idx := sp.RandomIndex(g)
		valid := dev.MeasureIndex(task, sp, idx).Valid
		if !valid {
			rawInvalid++
		}
		if e.Accept(task, sp, idx) {
			accepted++
			if !valid {
				acceptedInvalid++
			}
		}
	}
	rawFrac := float64(rawInvalid) / n
	accFrac := float64(acceptedInvalid) / float64(accepted)
	if accepted < n/10 {
		t.Fatalf("ensemble accepted only %d/%d configs", accepted, n)
	}
	// The filter must cut the invalid rate by at least 3× (the paper
	// reports 5.56× over no filtering).
	if accFrac > rawFrac/3 {
		t.Fatalf("invalid rate %0.3f after filter vs %0.3f raw: reduction too weak", accFrac, rawFrac)
	}
}

func TestEnsembleSelectPreservesOrderAndTopsUp(t *testing.T) {
	task, sp := testTask(t)
	e, _ := newTestEnsemble(t, hwspec.RTX2080Ti, 0)
	g := rng.New(5)
	cands := make([]int64, 200)
	for i := range cands {
		cands[i] = sp.RandomIndex(g)
	}
	got := e.Select(task, sp, cands, 16, g)
	if len(got) != 16 {
		t.Fatalf("selected %d want 16", len(got))
	}
	// Survivors appear in their original relative order.
	pos := map[int64]int{}
	for i, c := range cands {
		if _, dup := pos[c]; !dup {
			pos[c] = i
		}
	}
	lastPos := -1
	for _, idx := range got {
		if !e.Accept(task, sp, idx) {
			continue // topped-up rejects may interleave at the tail
		}
		if pos[idx] < lastPos {
			t.Fatal("accepted candidates reordered")
		}
		lastPos = pos[idx]
	}
}

func TestEnsembleTauExtremes(t *testing.T) {
	task, sp := testTask(t)
	g := rng.New(6)
	// τ≈1 accepts everything (no rejection possible).
	eAll, _ := newTestEnsemble(t, hwspec.RTX3090, 1.0)
	idx := sp.RandomIndex(g)
	if !eAll.Accept(task, sp, idx) {
		t.Fatal("τ=1 ensemble rejected a config")
	}
	if eAll.Size() != 9 {
		t.Fatalf("ensemble size %d", eAll.Size())
	}
}

func TestEnsembleDefaultTau(t *testing.T) {
	e, _ := newTestEnsemble(t, hwspec.RTX3090, 0)
	if e.Tau != DefaultTau {
		t.Fatalf("tau = %g want %g", e.Tau, DefaultTau)
	}
}

func TestNewEnsembleDeterministic(t *testing.T) {
	emb, err := blueprint.Build(hwspec.Registry(), 6)
	if err != nil {
		t.Fatal(err)
	}
	vec := emb.Embed(hwspec.MustByName(hwspec.TitanXp))
	a, err := NewEnsemble(emb, vec, 5, 0, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnsemble(emb, vec, 5, 0, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	task, sp := testTask(t)
	g := rng.New(10)
	for i := 0; i < 200; i++ {
		idx := sp.RandomIndex(g)
		if a.Accept(task, sp, idx) != b.Accept(task, sp, idx) {
			t.Fatal("ensemble generation not deterministic")
		}
	}
}
