// Package sampler implements the candidate-selection stage between the
// exploration module and real hardware measurements:
//
//   - Passthrough — AutoTVM's behaviour: measure what the explorer proposes.
//   - Cluster — Chameleon's adaptive sampling: k-means over candidate
//     features, measuring one representative per cluster.
//   - Ensemble — Glimpse's Hardware-Aware Sampling (§3.3): an ensemble of
//     O(1) threshold predictors generated from the hardware Blueprint that
//     vote to reject invalid configurations before they waste GPU time.
package sampler

import (
	"github.com/neuralcompile/glimpse/internal/cluster"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Sampler narrows explorer candidates down to the batch worth measuring.
type Sampler interface {
	// Select returns up to n configuration indices from cands, best first
	// according to the sampler's policy. cands are assumed explorer-ordered
	// (best surrogate score first).
	Select(task workload.Task, sp *space.Space, cands []int64, n int, g *rng.RNG) []int64
}

// Passthrough measures the explorer's proposals verbatim (AutoTVM).
type Passthrough struct{}

// Select returns the first n candidates.
func (Passthrough) Select(_ workload.Task, _ *space.Space, cands []int64, n int, _ *rng.RNG) []int64 {
	if len(cands) > n {
		cands = cands[:n]
	}
	return append([]int64(nil), cands...)
}

// Cluster implements Chameleon's clustering-based adaptive sampling: the
// candidate pool is clustered in feature space and the candidate nearest
// each centroid is measured. Hardware-agnostic: it reduces redundant
// measurements but cannot see validity.
type Cluster struct {
	// MaxIter bounds the k-means Lloyd iterations (default 25).
	MaxIter int
}

// Select clusters cands into n groups and returns each group's
// representative.
func (c Cluster) Select(_ workload.Task, sp *space.Space, cands []int64, n int, g *rng.RNG) []int64 {
	if len(cands) == 0 || n <= 0 {
		return nil
	}
	if len(cands) <= n {
		return append([]int64(nil), cands...)
	}
	maxIter := c.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	feats := make([][]float64, len(cands))
	for i, idx := range cands {
		feats[i] = sp.FeaturesAt(idx)
	}
	res, err := cluster.KMeans(feats, n, maxIter, g)
	if err != nil {
		// Degenerate pool: fall back to the explorer's ordering.
		return append([]int64(nil), cands[:n]...)
	}
	reps := res.NearestIndex(feats)
	out := make([]int64, 0, n)
	seen := map[int64]bool{}
	for _, r := range reps {
		idx := cands[r]
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	// Duplicated representatives (possible when clusters collapse) are
	// topped up from the explorer ordering.
	for _, idx := range cands {
		if len(out) >= n {
			break
		}
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}
