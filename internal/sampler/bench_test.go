package sampler

import (
	"fmt"
	"testing"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// BenchmarkEnsembleSelect measures the pooled vote filter over a
// tuner-sized candidate pool; `make bench` snapshots it.
func BenchmarkEnsembleSelect(b *testing.B) {
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		b.Fatal(err)
	}
	sp := space.MustForTask(task)
	emb, err := blueprint.Build(hwspec.Registry(), blueprint.DefaultDim())
	if err != nil {
		b.Fatal(err)
	}
	vec := emb.Embed(hwspec.MustByName(hwspec.TitanXp))
	e, err := NewEnsemble(emb, vec, 9, 0, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	g := rng.New(2)
	cands := make([]int64, 512)
	for i := range cands {
		cands[i] = sp.RandomIndex(g)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			restore := pinDefaultWorkers(workers)
			defer restore()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Select(task, sp, cands, 64, g)
			}
		})
	}
}
