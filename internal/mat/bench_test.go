package mat

import (
	"math/rand"
	"testing"
)

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 64, 64)
	c := randomMatrix(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Mul(c)
	}
}

func BenchmarkCholesky128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(rng, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 32, 32)
	a := m.Add(m.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}
