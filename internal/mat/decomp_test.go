package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive definite matrix A = BᵀB + n·I.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 12} {
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := l.Mul(l.T())
		if !recon.Equal(a, 1e-8) {
			t.Fatalf("n=%d: L·Lᵀ != A (max err %g)", n, recon.Sub(a).MaxAbs())
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(New(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v want ErrShape", err)
	}
}

func TestSolveCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 8)
	want := make([]float64, 8)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := a.MulVec(want)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got := SolveCholesky(l, b)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("x[%d] = %g want %g", i, got[i], want[i])
		}
	}
}

func TestLogDetCholesky(t *testing.T) {
	// diag(2, 3, 4): |A| = 24.
	a := New(3, 3)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	a.Set(2, 2, 4)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := LogDetCholesky(l), math.Log(24); math.Abs(got-want) > 1e-12 {
		t.Fatalf("logdet = %g want %g", got, want)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i, w := range want {
		if math.Abs(e.Values[i]-w) > 1e-10 {
			t.Fatalf("eigenvalues = %v want %v", e.Values, want)
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 4, 9} {
		b := randomMatrix(rng, n, n)
		a := b.Add(b.T()) // symmetric
		e, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild A = V·diag(λ)·Vᵀ.
		d := New(n, n)
		for i, v := range e.Values {
			d.Set(i, i, v)
		}
		recon := e.Vectors.Mul(d).Mul(e.Vectors.T())
		if !recon.Equal(a, 1e-8) {
			t.Fatalf("n=%d reconstruction max err %g", n, recon.Sub(a).MaxAbs())
		}
		// Vectors are orthonormal.
		vtv := e.Vectors.T().Mul(e.Vectors)
		if !vtv.Equal(Identity(n), 1e-8) {
			t.Fatalf("n=%d VᵀV != I", n)
		}
		// Values are sorted descending.
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-12 {
				t.Fatalf("n=%d eigenvalues not sorted: %v", n, e.Values)
			}
		}
	}
}

// Property: trace(A) equals the sum of eigenvalues of a random symmetric A.
func TestEigenTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(6))
		b := randomMatrix(r, n, n)
		a := b.Add(b.T())
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		return math.Abs(a.Trace()-Sum(e.Values)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLinear(t *testing.T) {
	a := NewFromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system did not error")
	}
}

// Property: SolveLinear(A, A·x) == x for random well-conditioned A.
func TestSolveLinearRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(r.Int31n(8))
		a := randomSPD(r, n) // SPD ⇒ well-conditioned enough
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
