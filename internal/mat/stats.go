package mat

import (
	"fmt"
	"math"
)

// ColMeans returns the per-column mean of m.
func ColMeans(m *Matrix) []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.RawRow(i)
		for j, v := range row {
			out[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// ColStds returns the per-column population standard deviation of m.
func ColStds(m *Matrix) []float64 {
	means := ColMeans(m)
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.RawRow(i)
		for j, v := range row {
			d := v - means[j]
			out[j] += d * d
		}
	}
	inv := 1 / float64(m.rows)
	for j := range out {
		out[j] = sqrt(out[j] * inv)
	}
	return out
}

// Center returns a copy of m with per-column means subtracted, plus the means.
func Center(m *Matrix) (*Matrix, []float64) {
	means := ColMeans(m)
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		row := out.RawRow(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	return out, means
}

// Standardize returns a copy of m with columns centred and scaled to unit
// standard deviation (columns with zero variance are left centred only),
// plus the means and stds used.
func Standardize(m *Matrix) (*Matrix, []float64, []float64) {
	out, means := Center(m)
	stds := ColStds(m)
	for i := 0; i < out.rows; i++ {
		row := out.RawRow(i)
		for j := range row {
			if stds[j] > 1e-12 {
				row[j] /= stds[j]
			}
		}
	}
	return out, means, stds
}

// Covariance returns the d×d population covariance matrix of the rows of m.
func Covariance(m *Matrix) *Matrix {
	if m.rows < 1 {
		panic("mat: Covariance of empty matrix")
	}
	c, _ := Center(m)
	cov := c.T().Mul(c)
	cov.ScaleInPlace(1 / float64(m.rows))
	return cov
}

// RMSE returns the root-mean-squared error between equal-shape matrices.
func RMSE(a, b *Matrix) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: RMSE %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	s := 0.0
	for i, v := range a.data {
		d := v - b.data[i]
		s += d * d
	}
	return sqrt(s / float64(len(a.data)))
}

// sqrt is math.Sqrt clamped at zero for tiny negative rounding residue.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
