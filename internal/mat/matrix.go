// Package mat provides dense linear algebra for the Glimpse compiler:
// matrices, vectors, factorizations (Cholesky, symmetric eigendecomposition)
// and summary statistics. It is deliberately small — just what the Blueprint
// PCA embedding, Gaussian-process surrogates, and neural-network substrates
// need — and uses only the standard library.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrShape is returned (or wrapped) when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible shapes")

// New returns an r×c zero matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: non-positive dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData wraps data (row-major, length r*c) in a matrix without copying.
func NewFromData(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{rows: r, cols: c, data: data}
}

// NewFromRows builds a matrix by copying the given equal-length rows.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: empty rows")
	}
	m := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: %d != %d", i, len(row), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the matrix dimensions (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a slice aliasing the matrix storage.
func (m *Matrix) RawRow(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	// ikj loop order keeps inner accesses sequential for both operands.
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols:]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k := 0; k < m.cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range bk {
				oi[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns m·v for a vector of length Cols().
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: MulVec %dx%d by %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.data[i*m.cols:(i+1)*m.cols], v)
	}
	return out
}

// Add returns m + b elementwise.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustMatch(b, "Add")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m - b elementwise.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustMatch(b, "Sub")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// AddInPlace adds b into m.
func (m *Matrix) AddInPlace(b *Matrix) {
	m.mustMatch(b, "AddInPlace")
	for i, v := range b.data {
		m.data[i] += v
	}
}

// ScaleInPlace multiplies every element of m by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaledInPlace adds s·b into m (axpy).
func (m *Matrix) AddScaledInPlace(s float64, b *Matrix) {
	m.mustMatch(b, "AddScaledInPlace")
	for i, v := range b.data {
		m.data[i] += s * v
	}
}

// Hadamard returns the elementwise product m ⊙ b.
func (m *Matrix) Hadamard(b *Matrix) *Matrix {
	m.mustMatch(b, "Hadamard")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out
}

// Apply returns a new matrix with f applied to every element.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := m.Clone()
	for i, v := range out.data {
		out.data[i] = f(v)
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic("mat: Trace of non-square matrix")
	}
	s := 0.0
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// Equal reports whether m and b agree elementwise within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

func (m *Matrix) mustMatch(b *Matrix, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s %dx%d with %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}
