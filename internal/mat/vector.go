package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot lengths %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Dist2 returns the squared Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dist2 lengths %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// AxpyInto computes dst = dst + s*v.
func AxpyInto(dst []float64, s float64, v []float64) {
	if len(dst) != len(v) {
		panic(fmt.Sprintf("mat: Axpy lengths %d != %d", len(dst), len(v)))
	}
	for i, x := range v {
		dst[i] += s * x
	}
}

// ScaleVec returns s·v as a new slice.
func ScaleVec(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// AddVec returns a+b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: AddVec lengths %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v + b[i]
	}
	return out
}

// SubVec returns a-b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SubVec lengths %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// Sum returns the sum of all elements of v.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Variance returns the population variance of v, or 0 when len(v) < 2.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Min returns the smallest element and its index; panics on empty input.
func Min(v []float64) (float64, int) {
	if len(v) == 0 {
		panic("mat: Min of empty slice")
	}
	best, at := v[0], 0
	for i, x := range v[1:] {
		if x < best {
			best, at = x, i+1
		}
	}
	return best, at
}

// Max returns the largest element and its index; panics on empty input.
func Max(v []float64) (float64, int) {
	if len(v) == 0 {
		panic("mat: Max of empty slice")
	}
	best, at := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, at = x, i+1
		}
	}
	return best, at
}

// ArgSortDesc returns the indices that sort v in descending order
// (insertion sort; intended for the short vectors used in reporting).
func ArgSortDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && v[idx[j]] > v[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// Geomean returns the geometric mean of strictly positive values.
func Geomean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		if x <= 0 {
			panic(fmt.Sprintf("mat: Geomean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(v)))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
