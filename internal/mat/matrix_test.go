package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewDimsAndAccess(t *testing.T) {
	m := New(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3) = %g want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero value At(0,0) = %g want 0", got)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 1) != 4 || m.At(2, 0) != 5 {
		t.Fatalf("unexpected contents: %v", m)
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	got := a.Mul(Identity(5))
	if !got.Equal(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	got = Identity(5).Mul(a)
	if !got.Equal(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 0) {
		t.Fatalf("Mul = %v want %v", got, want)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 4, 7)
	if !a.T().T().Equal(a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 6, 4)
	v := make([]float64, 4)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	got := a.MulVec(v)
	col := New(4, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := a.Mul(col)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{4, 3}, {2, 1}})
	if got := a.Add(b); !got.Equal(NewFromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Equal(NewFromRows([][]float64{{-3, -1}, {1, 3}}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equal(NewFromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 4 {
		t.Fatal("operands were mutated")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{10, 20}})
	a.AddInPlace(b)
	if a.At(0, 1) != 22 {
		t.Fatalf("AddInPlace got %v", a)
	}
	a.AddScaledInPlace(0.5, b)
	if a.At(0, 0) != 16 {
		t.Fatalf("AddScaledInPlace got %v", a)
	}
	a.ScaleInPlace(2)
	if a.At(0, 0) != 32 {
		t.Fatalf("ScaleInPlace got %v", a)
	}
}

func TestHadamardAndApply(t *testing.T) {
	a := NewFromRows([][]float64{{1, -2}, {3, -4}})
	h := a.Hadamard(a)
	if !h.Equal(NewFromRows([][]float64{{1, 4}, {9, 16}}), 0) {
		t.Fatalf("Hadamard = %v", h)
	}
	ab := a.Apply(math.Abs)
	if !ab.Equal(NewFromRows([][]float64{{1, 2}, {3, 4}}), 0) {
		t.Fatalf("Apply = %v", ab)
	}
}

func TestRowColCopySemantics(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Fatal("Row returned aliasing slice")
	}
	c := a.Col(1)
	c[0] = 99
	if a.At(0, 1) != 2 {
		t.Fatal("Col returned aliasing slice")
	}
	raw := a.RawRow(1)
	raw[0] = 42
	if a.At(1, 0) != 42 {
		t.Fatal("RawRow did not alias")
	}
}

func TestTraceNorms(t *testing.T) {
	a := NewFromRows([][]float64{{3, 0}, {0, 4}})
	if got := a.Trace(); got != 7 {
		t.Fatalf("Trace = %g", got)
	}
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %g want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %g", got)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, p := 1+int(r.Int31n(6)), 1+int(r.Int31n(6)), 1+int(r.Int31n(6))
		a := randomMatrix(r, m, n)
		b := randomMatrix(r, n, p)
		left := a.Mul(b).T()
		right := b.T().Mul(a.T())
		return left.Equal(right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, p := 1+int(r.Int31n(5)), 1+int(r.Int31n(5)), 1+int(r.Int31n(5))
		a := randomMatrix(r, m, n)
		b := randomMatrix(r, n, p)
		c := randomMatrix(r, n, p)
		left := a.Mul(b.Add(c))
		right := a.Mul(b).Add(a.Mul(c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
