package mat

import (
	"math"
	"testing"
)

func TestDotNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %g", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %g", got)
	}
	if got := Dist2(a, b); got != 27 {
		t.Fatalf("Dist2 = %g", got)
	}
}

func TestDotLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestVecArithmetic(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := AddVec(a, b); got[0] != 4 || got[1] != 7 {
		t.Fatalf("AddVec = %v", got)
	}
	if got := SubVec(b, a); got[0] != 2 || got[1] != 3 {
		t.Fatalf("SubVec = %v", got)
	}
	if got := ScaleVec(2, a); got[0] != 2 || got[1] != 4 {
		t.Fatalf("ScaleVec = %v", got)
	}
	dst := []float64{1, 1}
	AxpyInto(dst, 2, a)
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("AxpyInto = %v", dst)
	}
}

func TestSummaryStats(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := Std(v); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Std = %g want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance singleton = %g", got)
	}
}

func TestMinMax(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	if val, at := Min(v); val != 1 || at != 1 {
		t.Fatalf("Min = %g@%d", val, at)
	}
	if val, at := Max(v); val != 5 || at != 4 {
		t.Fatalf("Max = %g@%d", val, at)
	}
}

func TestArgSortDesc(t *testing.T) {
	v := []float64{0.3, 0.9, 0.1, 0.5}
	idx := ArgSortDesc(v)
	want := []int{1, 3, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("ArgSortDesc = %v want %v", idx, want)
		}
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Geomean = %g want 2", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Fatalf("Geomean(nil) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geomean of non-positive did not panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Fatalf("Clamp high = %g", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Fatalf("Clamp low = %g", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Fatalf("Clamp mid = %g", got)
	}
}

func TestCenterStandardize(t *testing.T) {
	m := NewFromRows([][]float64{{1, 10}, {3, 20}, {5, 30}})
	c, means := Center(m)
	if means[0] != 3 || means[1] != 20 {
		t.Fatalf("means = %v", means)
	}
	if got := ColMeans(c); math.Abs(got[0]) > 1e-12 || math.Abs(got[1]) > 1e-12 {
		t.Fatalf("centered means = %v", got)
	}
	s, _, stds := Standardize(m)
	if stds[0] <= 0 || stds[1] <= 0 {
		t.Fatalf("stds = %v", stds)
	}
	got := ColStds(s)
	if math.Abs(got[0]-1) > 1e-12 || math.Abs(got[1]-1) > 1e-12 {
		t.Fatalf("standardized stds = %v", got)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	m := NewFromRows([][]float64{{-1, -2}, {0, 0}, {1, 2}})
	cov := Covariance(m)
	wantVar0 := 2.0 / 3.0
	if math.Abs(cov.At(0, 0)-wantVar0) > 1e-12 {
		t.Fatalf("cov[0,0] = %g want %g", cov.At(0, 0), wantVar0)
	}
	if math.Abs(cov.At(0, 1)-2*wantVar0) > 1e-12 {
		t.Fatalf("cov[0,1] = %g", cov.At(0, 1))
	}
}

func TestRMSE(t *testing.T) {
	a := NewFromRows([][]float64{{0, 0}})
	b := NewFromRows([][]float64{{3, 4}})
	want := math.Sqrt(12.5)
	if got := RMSE(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g want %g", got, want)
	}
}
