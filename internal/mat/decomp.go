package mat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite A. Only the lower triangle of A is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A,
// via forward then backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveCholesky rhs length %d != %d", len(b), n))
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// LogDetCholesky returns log|A| given the Cholesky factor L of A.
func LogDetCholesky(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// Eigen holds the eigendecomposition of a symmetric matrix: A = V·diag(λ)·Vᵀ.
// Values are sorted in descending order; Vectors' column k is the
// eigenvector for Values[k].
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// SymEigen computes all eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi rotation method. The input is not modified.
func SymEigen(a *Matrix) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: SymEigen of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })
	sorted := make([]float64, n)
	vecs := New(n, n)
	for k, idx := range order {
		sorted[k] = vals[idx]
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, idx))
		}
	}
	return &Eigen{Values: sorted, Vectors: vecs}, nil
}

// rotate applies the Jacobi rotation J(p,q,θ) to w (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// SolveLinear solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: SolveLinear of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d != %d", ErrShape, len(b), n)
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pv := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m.At(r, col)); abs > pv {
				pivot, pv = r, abs
			}
		}
		if pv < 1e-14 {
			return nil, errors.New("mat: singular matrix in SolveLinear")
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				tmp := m.At(col, j)
				m.Set(col, j, m.At(pivot, j))
				m.Set(pivot, j, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}
