// Package integration exercises the full compilation pipeline end to end:
// model graph → task extraction → configuration space → tuning over RPC
// measurements → tuning-log persistence → kernel code generation for the
// winning configuration → static verification against the target GPU.
package integration

import (
	"bytes"
	"strings"
	"testing"

	"github.com/neuralcompile/glimpse/internal/codegen"
	"github.com/neuralcompile/glimpse/internal/graph"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tlog"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// TestGraphToBinaryPipeline is the "deployment engineer" path of Fig. 2,
// minus the offline-trained Glimpse artifacts (covered in internal/core):
// build the network, extract a task, tune it on remote hardware with
// logging, then lower and verify the best schedule.
func TestGraphToBinaryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	const target = hwspec.RTX2080Ti

	// 1. Front end: build ResNet-18 and extract its tuning tasks.
	g, err := graph.BuildResNet18()
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := graph.ExtractTasks(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 17 {
		t.Fatalf("extracted %d tasks want 17 (Table 1)", len(tasks))
	}
	task := tasks[6] // L7
	sp, err := space.ForTask(task)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Hardware behind RPC, wrapped with a persistent tuning log.
	srv, err := measure.NewServer([]string{target})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := measure.Dial(addr, target)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	var logBuf bytes.Buffer
	m := &tlog.RecordingMeasurer{Inner: remote, Out: tlog.NewWriter(&logBuf, 0)}

	// 3. Tune.
	res, err := tuner.AutoTVM{}.Tune(task, sp, m,
		tuner.Budget{MaxMeasurements: 96}, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIndex < 0 {
		t.Fatal("tuning found nothing")
	}

	// 4. The log agrees with the session and replays into a TL corpus.
	entries, err := tlog.Read(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != res.Measurements {
		t.Fatalf("log has %d entries, session measured %d", len(entries), res.Measurements)
	}
	best, ok := tlog.Best(entries, task.Name())
	if !ok || best.ConfigIndex != res.BestIndex {
		t.Fatalf("log best %+v vs session %d", best, res.BestIndex)
	}
	corpus, err := tlog.ToTransferData(entries, workload.Conv2D)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Features) != res.Measurements {
		t.Fatalf("corpus %d rows want %d", len(corpus.Features), res.Measurements)
	}

	// 5. Lower the winning schedule to a kernel and verify it against the
	// target's launch limits — it measured valid, so it must verify clean.
	kern, err := codegen.Lower(task, sp, sp.FromIndex(res.BestIndex))
	if err != nil {
		t.Fatal(err)
	}
	if errs := codegen.Verify(kern, hwspec.MustByName(target)); len(errs) != 0 {
		t.Fatalf("winning schedule fails static verification: %v", errs)
	}
	src := kern.Render()
	if !strings.Contains(src, "__global__") || !strings.Contains(src, "__syncthreads()") {
		t.Fatalf("kernel source malformed:\n%s", src)
	}

	// 6. The corpus usefully warm-starts tuning the same task shape on
	// different hardware (AutoTVM-TL path).
	other := measure.MustNewLocal(hwspec.TitanXp)
	tlRes, err := tuner.AutoTVM{Transfer: corpus}.Tune(task, sp, other,
		tuner.Budget{MaxMeasurements: 48}, rng.New(78))
	if err != nil {
		t.Fatal(err)
	}
	if tlRes.BestGFLOPS <= 0 {
		t.Fatal("transfer-learning run found nothing")
	}
}

// TestEveryTemplateLowersAndVerifies sweeps valid measured configurations
// of every template kind through codegen: what the simulator accepts, the
// static verifier must accept too (full cross-component agreement).
func TestEveryTemplateLowersAndVerifies(t *testing.T) {
	spec := hwspec.MustByName(hwspec.RTX3090)
	local := measure.MustNewLocal(hwspec.RTX3090)
	g := rng.New(13)
	for _, l := range []int{7, 13, 17} { // conv2d, winograd, dense
		task, err := workload.TaskByIndex(workload.ResNet18, l)
		if err != nil {
			t.Fatal(err)
		}
		sp := space.MustForTask(task)
		checked := 0
		for i := 0; i < 400 && checked < 40; i++ {
			idx := sp.RandomIndex(g)
			results, err := local.MeasureBatch(task, sp, []int64{idx})
			if err != nil {
				t.Fatal(err)
			}
			if !results[0].Valid {
				continue
			}
			checked++
			kern, err := codegen.Lower(task, sp, sp.FromIndex(idx))
			if err != nil {
				t.Fatal(err)
			}
			if errs := codegen.Verify(kern, spec); len(errs) != 0 {
				t.Fatalf("%s: measured-valid config fails verification: %v (%s)",
					task.Name(), errs, sp.Describe(sp.FromIndex(idx)))
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no valid configs found to check", task.Name())
		}
	}
}
