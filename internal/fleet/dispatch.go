package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// dispatcher is the measure.Measurer handed to one tuning session. Each
// MeasureBatch call slices the batch into per-endpoint chunks, leases
// endpoints (preferring the unit's home shard, borrowing across shards
// when stealing is on), re-queues chunks that failed, and speculatively
// re-issues stragglers. Results are reassembled by index, so the tuner
// sees exactly the batch it asked for no matter which endpoints served it.
type dispatcher struct {
	s      *Scheduler
	shard  int
	gpu    string
	task   string
	tracer *telemetry.Tracer
	// trace parents dispatch spans (and, through them, the remote
	// endpoints' rpc_measure spans) into the caller's trace. Set via
	// BindTrace from the session goroutine that also calls MeasureBatch,
	// so no locking is needed.
	trace telemetry.SpanContext
}

// BindTrace implements measure.TraceBinder: the tuning session rebinds
// the dispatcher before each measured batch so dispatch and RPC spans
// parent under the current step.
func (d *dispatcher) BindTrace(sc telemetry.SpanContext) { d.trace = sc }

func (s *Scheduler) dispatcher(u unit, tracer *telemetry.Tracer) *dispatcher {
	return &dispatcher{s: s, shard: u.shard, gpu: u.gpu, task: u.task.Name(), tracer: tracer}
}

func (d *dispatcher) DeviceName() string { return d.gpu }

// chunk is one slice of the batch. Bookkeeping fields are touched only by
// the dispatch event loop, never by attempt goroutines.
type chunk struct {
	lo, hi   int
	done     bool
	inFlight int
	twinned  bool      // a speculative twin was issued for this flight
	started  time.Time // start of the earliest outstanding attempt
	holders  []*slot   // endpoints currently attempting this chunk
	cancels  []context.CancelFunc
	lastFail *slot // endpoint whose attempt most recently failed this chunk
}

// attemptDone is the event an attempt goroutine reports to the loop.
type attemptDone struct {
	ck   *chunk
	sl   *slot
	res  []gpusim.Result
	err  error
	wall time.Duration
	twin bool
}

func (d *dispatcher) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	if d.s.sc.Flat {
		return d.measureFlat(task, sp, idxs)
	}
	return d.measureSharded(task, sp, idxs)
}

// measureFlat is the no-resilience baseline: the whole batch goes to one
// endpoint picked by hashing the (gpu, task) pair over the hosting
// endpoints, waiting for it to go idle. One slow or dead endpoint stalls
// every session pinned to it — exactly the failure mode the sharded path
// exists to remove.
func (d *dispatcher) measureFlat(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	var hosting []*slot
	for _, sl := range d.s.slots {
		if sl.ep.HostsGPU(d.gpu) {
			hosting = append(hosting, sl)
		}
	}
	if len(hosting) == 0 {
		return nil, fmt.Errorf("fleet: no endpoint hosts %s", d.gpu)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s", d.gpu, d.task)
	sl := hosting[int(h.Sum64()%uint64(len(hosting)))]
	for !sl.tryAcquire() {
		wait := d.s.releaseWait()
		select {
		case <-wait:
		case <-time.After(time.Millisecond):
		}
	}
	defer func() {
		sl.release()
		d.s.notifyRelease()
	}()
	conn, err := sl.conn(d.gpu, d.s.sc.Reliable)
	if err != nil {
		return nil, err
	}
	measure.BindTrace(conn, d.trace)
	start := time.Now()
	res, err := conn.MeasureBatch(task, sp, idxs)
	if err != nil {
		sl.observeFailure()
		return nil, err
	}
	sl.observe(len(idxs), time.Since(start))
	return res, nil
}

// lease picks an endpoint for the gpu: idle, breaker-ready, hosting the
// target, not in exclude. Home-shard endpoints are preferred; with
// stealing enabled, other shards' (and homeless) endpoints are borrowed.
// Within a class the least-served endpoint wins, ties by name, so load
// spreads deterministically. Returns nil when nothing is leasable now.
func (d *dispatcher) lease(exclude []*slot) (*slot, bool) {
	excluded := func(sl *slot) bool {
		for _, e := range exclude {
			if e == sl {
				return true
			}
		}
		return false
	}
	classes := [2][]*slot{}
	for _, sl := range d.s.slots {
		if excluded(sl) || !sl.ep.HostsGPU(d.gpu) || !sl.ready(d.gpu) {
			continue
		}
		if sl.home == d.shard {
			classes[0] = append(classes[0], sl)
		} else if d.s.sc.Steal {
			classes[1] = append(classes[1], sl)
		}
	}
	for class, cands := range classes {
		sort.Slice(cands, func(i, j int) bool {
			si, _ := cands[i].costStats()
			sj, _ := cands[j].costStats()
			if si != sj {
				return si < sj
			}
			return cands[i].ep.Name < cands[j].ep.Name
		})
		for _, sl := range cands {
			if sl.tryAcquire() {
				return sl, class == 1
			}
		}
	}
	return nil, false
}

// speculateAfter is the straggler threshold for a chunk of n indices:
// the configured constant, or 4x the endpoint's expected chunk wall time
// (floor 1ms) when adapting.
func (d *dispatcher) speculateAfter(sl *slot, n int) time.Duration {
	if d.s.sc.SpeculateAfter > 0 {
		return d.s.sc.SpeculateAfter
	}
	_, ewma := sl.costStats()
	th := time.Duration(4 * ewma * float64(n) * float64(time.Second))
	if th < time.Millisecond {
		th = time.Millisecond
	}
	return th
}

// launch starts one attempt goroutine for ck on sl. The goroutine owns
// the slot's busy token and releases it on exit; its result lands on the
// buffered events channel (sized so abandoned attempts can never block).
func (d *dispatcher) launch(ck *chunk, sl *slot, twin bool, sc telemetry.SpanContext,
	task workload.Task, sp *space.Space, idxs []int64, events chan<- attemptDone) {
	//glint:ignore ctxflow -- attempt-scoped root: the ctx-less Measurer API ends here and every attempt is cancelled via ck.cancels on abort/finish
	actx, cancel := context.WithCancel(context.Background())
	ck.inFlight++
	ck.holders = append(ck.holders, sl)
	ck.cancels = append(ck.cancels, cancel)
	if ck.inFlight == 1 {
		ck.started = time.Now()
	}
	//glint:ignore leakcheck -- the attempt finishes by sending on events, buffered past max in-flight, so the send (and exit) cannot block
	go func() {
		defer func() {
			sl.release()
			d.s.notifyRelease()
		}()
		start := time.Now()
		conn, err := sl.conn(d.gpu, d.s.sc.Reliable)
		var res []gpusim.Result
		if err == nil {
			// The busy token makes this attempt the conn's sole user, so
			// binding the dispatch span context here cannot race another
			// attempt's bind or call.
			measure.BindTrace(conn, sc)
			res, err = conn.MeasureBatchContext(actx, task, sp, idxs[ck.lo:ck.hi])
		}
		//glint:ignore ctxflow -- events is buffered past max in-flight (see measureSharded), so this send never blocks
		events <- attemptDone{ck: ck, sl: sl, res: res, err: err, wall: time.Since(start), twin: twin}
	}()
}

// measureSharded runs the chunked event loop. Chunks are cut lazily at
// lease time so each endpoint gets a slice sized to its observed speed.
func (d *dispatcher) measureSharded(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	dsp, dsc := d.tracer.StartSpan(d.trace, telemetry.StageDispatch)
	dsp.SetAttr("gpu", d.gpu)
	dsp.SetAttr("task", d.task)
	dsp.SetAttr("batch", len(idxs))
	defer dsp.End()

	out := make([]gpusim.Result, len(idxs))
	// Buffered past the max possible in-flight attempts (each holds one
	// of len(slots) busy tokens) so an attempt finishing after the loop
	// returned can still send and exit.
	events := make(chan attemptDone, len(d.s.slots)+4)

	var (
		chunks                                    []*chunk
		retry                                     []*chunk
		cursor                                    int
		doneCount                                 int
		consecFail                                int
		nChunks, nRetries, nSteals, nTwins, nWins int
		lastErr                                   error
		lastLaunch                                = time.Now()
	)
	abort := func(err error) ([]gpusim.Result, error) {
		for _, ck := range chunks {
			for _, cancel := range ck.cancels {
				cancel()
			}
		}
		dsp.SetAttr("outcome", "failed")
		return nil, err
	}
	finish := func() {
		dsp.SetAttr("chunks", nChunks)
		dsp.SetAttr("retries", nRetries)
		if nTwins > 0 {
			dsp.SetAttr("twins", nTwins)
		}
	}
	record := func(steals, twins, wins int) {
		d.s.mu.Lock()
		d.s.stats.Chunks += nChunks
		d.s.stats.ChunkRetries += nRetries
		d.s.stats.EndpointSteals += steals
		d.s.stats.Speculations += twins
		d.s.stats.SpeculativeWins += wins
		d.s.mu.Unlock()
	}
	defer func() { record(nSteals, nTwins, nWins); finish() }()

	launchOne := func() bool {
		// Retry queue first: failed chunks block batch completion.
		if len(retry) > 0 {
			ck := retry[0]
			sl, stolen := d.lease([]*slot{ck.lastFail})
			if sl == nil {
				sl, stolen = d.lease(nil) // last resort: retry the failed endpoint
			}
			if sl == nil {
				return false
			}
			retry = retry[1:]
			if stolen {
				nSteals++
				d.tracer.EventCtx(dsc, telemetry.StageSteal, map[string]any{
					"event": "endpoint_steal", "shard": d.shard, "endpoint": sl.ep.Name, "gpu": d.gpu,
				})
			}
			d.launch(ck, sl, false, dsc, task, sp, idxs, events)
			return true
		}
		// Fresh work: cut a chunk sized to the leased endpoint.
		if cursor < len(idxs) {
			sl, stolen := d.lease(nil)
			if sl == nil {
				return false
			}
			n := sl.chunkSize(&d.s.sc, len(idxs)-cursor, len(d.s.slots))
			ck := &chunk{lo: cursor, hi: cursor + n}
			cursor += n
			chunks = append(chunks, ck)
			nChunks++
			if stolen {
				nSteals++
				d.tracer.EventCtx(dsc, telemetry.StageSteal, map[string]any{
					"event": "endpoint_steal", "shard": d.shard, "endpoint": sl.ep.Name, "gpu": d.gpu,
				})
			}
			d.launch(ck, sl, false, dsc, task, sp, idxs, events)
			return true
		}
		// Speculation: twin the oldest straggler onto a different endpoint.
		if !d.s.sc.Speculate {
			return false
		}
		var cand *chunk
		for _, ck := range chunks {
			if ck.done || ck.inFlight != 1 || ck.twinned {
				continue
			}
			if time.Since(ck.started) < d.speculateAfter(ck.holders[0], ck.hi-ck.lo) {
				continue
			}
			if cand == nil || ck.started.Before(cand.started) {
				cand = ck
			}
		}
		if cand == nil {
			return false
		}
		sl, stolen := d.lease(cand.holders)
		if sl == nil {
			return false
		}
		cand.twinned = true
		nTwins++
		if stolen {
			nSteals++
		}
		d.tracer.EventCtx(dsc, telemetry.StageSpeculate, map[string]any{
			"event": "speculate", "gpu": d.gpu, "task": d.task,
			"endpoint": sl.ep.Name, "straggler": cand.holders[0].ep.Name,
			"chunk": fmt.Sprintf("%d:%d", cand.lo, cand.hi),
		})
		d.launch(cand, sl, true, dsc, task, sp, idxs, events)
		return true
	}

	inFlight := 0
	for doneCount < len(idxs) || cursor < len(idxs) || inFlight > 0 {
		launched := false
		for launchOne() {
			launched = true
			inFlight++
		}
		if launched {
			lastLaunch = time.Now()
		} else if inFlight == 0 {
			// Nothing running and nothing leasable: every suitable
			// endpoint is tripped or owned elsewhere. Give breakers and
			// other sessions LeaseTimeout to free something up.
			if time.Since(lastLaunch) > d.s.sc.LeaseTimeout {
				if lastErr == nil {
					lastErr = fmt.Errorf("fleet: no usable endpoint for %s", d.gpu)
				}
				return abort(fmt.Errorf("fleet: %s/%s: endpoints exhausted: %w", d.gpu, d.task, lastErr))
			}
		}
		if inFlight == 0 && doneCount >= len(idxs) && cursor >= len(idxs) {
			break
		}
		wait := d.s.releaseWait()
		select {
		case ev := <-events:
			inFlight--
			d.removeAttempt(ev.ck, ev.sl)
			if ev.err != nil {
				ev.sl.observeFailure()
				lastErr = ev.err
				ev.ck.lastFail = ev.sl
				if !ev.ck.done {
					consecFail++
					if consecFail > 8*len(d.s.slots)+32 {
						return abort(fmt.Errorf("fleet: %s/%s: measurement failing persistently: %w", d.gpu, d.task, lastErr))
					}
					if ev.ck.inFlight == 0 {
						retry = append(retry, ev.ck)
						nRetries++
					}
				}
				continue
			}
			ev.sl.observe(ev.ck.hi-ev.ck.lo, ev.wall)
			consecFail = 0
			if ev.ck.done {
				continue // twin lost the race; result already recorded
			}
			ev.ck.done = true
			doneCount += ev.ck.hi - ev.ck.lo
			copy(out[ev.ck.lo:ev.ck.hi], ev.res)
			if ev.twin {
				nWins++
				d.tracer.EventCtx(dsc, telemetry.StageSpeculate, map[string]any{
					"event": "speculative_win", "gpu": d.gpu, "endpoint": ev.sl.ep.Name,
				})
			}
			for _, cancel := range ev.ck.cancels {
				cancel() // first result wins; abort the sibling attempt
			}
		case <-wait:
		case <-time.After(time.Millisecond):
		}
	}
	return out, nil
}

// removeAttempt drops sl from ck's holder bookkeeping after its attempt
// reported (loop-only state, no locking needed).
func (d *dispatcher) removeAttempt(ck *chunk, sl *slot) {
	ck.inFlight--
	for i, h := range ck.holders {
		if h == sl {
			ck.holders = append(ck.holders[:i], ck.holders[i+1:]...)
			ck.cancels[i]() // attempt finished; release its context
			ck.cancels = append(ck.cancels[:i], ck.cancels[i+1:]...)
			break
		}
	}
	if ck.inFlight == 1 {
		ck.started = time.Now() // remaining attempt's age restarts the clock
	}
}
