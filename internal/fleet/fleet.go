// Package fleet orchestrates whole-model, multi-GPU tuning — the
// deployment scenario that motivates the paper (§1 prices "10 DNN models
// on 100 different GPUs" at ~10,000 GPU hours). It tunes every task of a
// model concurrently, assembles a deployment Plan (best configuration,
// kernel source, and end-to-end latency per device), and fans out across
// a GPU fleet.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/neuralcompile/glimpse/internal/codegen"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// TaskPlan is the deployment decision for one tuning task.
type TaskPlan struct {
	TaskName    string  `json:"task"`
	TaskIndex   int     `json:"task_index"`
	Kind        string  `json:"kind"`
	ConfigIndex int64   `json:"config_index"`
	Schedule    string  `json:"schedule"`
	GFLOPS      float64 `json:"gflops"`
	TimeMS      float64 `json:"time_ms"`
	Repeats     int     `json:"repeats"`
	Kernel      string  `json:"kernel,omitempty"`
}

// Plan is the deployment artifact for one model on one GPU.
type Plan struct {
	Model        string     `json:"model"`
	GPU          string     `json:"gpu"`
	Tasks        []TaskPlan `json:"tasks"`
	LatencyMS    float64    `json:"latency_ms"`
	GPUSeconds   float64    `json:"gpu_seconds"`
	Measurements int        `json:"measurements"`
	Invalid      int        `json:"invalid"`
}

// Config controls a fleet tuning session.
type Config struct {
	Model string
	// Tasks restricts tuning to a subset (default: every task of Model).
	Tasks []workload.Task
	// Budget per task.
	Budget tuner.Budget
	// Parallelism is the number of tasks tuned concurrently per device
	// (default 2 — real boards serialize measurements, but compilation and
	// search overlap).
	Parallelism int
	// NewTuner builds the tuner for one (task, gpu) pair.
	NewTuner func(task workload.Task, gpu string) (tuner.Tuner, error)
	// GenerateKernels embeds generated kernel source in the plan.
	GenerateKernels bool
}

func (c *Config) resolve() error {
	if c.NewTuner == nil {
		return fmt.Errorf("fleet: Config.NewTuner is required")
	}
	if len(c.Tasks) == 0 {
		tasks, err := workload.Tasks(c.Model)
		if err != nil {
			return err
		}
		c.Tasks = tasks
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	return nil
}

// TuneModel tunes every configured task of the model on one device and
// assembles the deployment plan. Per-task randomness is derived from the
// task name, so results do not depend on goroutine scheduling.
func TuneModel(cfg Config, m measure.Measurer, g *rng.RNG) (*Plan, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	plan := &Plan{Model: cfg.Model, GPU: m.DeviceName()}

	type outcome struct {
		tp  TaskPlan
		res *tuner.Result
		err error
	}
	sem := make(chan struct{}, cfg.Parallelism)
	results := make([]outcome, len(cfg.Tasks))
	var wg sync.WaitGroup
	for i, task := range cfg.Tasks {
		wg.Add(1)
		go func(i int, task workload.Task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			sp, err := space.ForTask(task)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			tn, err := cfg.NewTuner(task, m.DeviceName())
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			res, err := tn.Tune(task, sp, m, cfg.Budget, g.Split("fleet/"+task.Name()))
			if err != nil {
				results[i] = outcome{err: fmt.Errorf("fleet: %s: %w", task.Name(), err)}
				return
			}
			if res.BestIndex < 0 {
				results[i] = outcome{err: fmt.Errorf("fleet: %s: no valid configuration found", task.Name())}
				return
			}
			tp := TaskPlan{
				TaskName:    task.Name(),
				TaskIndex:   task.Index,
				Kind:        task.Kind.String(),
				ConfigIndex: res.BestIndex,
				Schedule:    sp.Describe(sp.FromIndex(res.BestIndex)),
				GFLOPS:      res.BestGFLOPS,
				TimeMS:      res.BestTimeMS,
				Repeats:     task.Repeats,
			}
			if cfg.GenerateKernels {
				kern, err := codegen.Lower(task, sp, sp.FromIndex(res.BestIndex))
				if err != nil {
					results[i] = outcome{err: err}
					return
				}
				tp.Kernel = kern.Render()
			}
			results[i] = outcome{tp: tp, res: res}
		}(i, task)
	}
	wg.Wait()

	for _, o := range results {
		if o.err != nil {
			return nil, o.err
		}
		plan.Tasks = append(plan.Tasks, o.tp)
		plan.GPUSeconds += o.res.GPUSeconds
		plan.Measurements += o.res.Measurements
		plan.Invalid += o.res.Invalid
	}
	plan.LatencyMS = assembleLatency(cfg.Tasks, plan.Tasks)
	return plan, nil
}

// assembleLatency sums per-layer kernel times, picking the faster of the
// direct and winograd variants for each convolution shape.
func assembleLatency(tasks []workload.Task, plans []TaskPlan) float64 {
	byIndex := map[int]TaskPlan{}
	for _, tp := range plans {
		byIndex[tp.TaskIndex] = tp
	}
	bestConv := map[workload.ConvShape]float64{}
	repeats := map[workload.ConvShape]int{}
	total := 0.0
	for _, task := range tasks {
		tp, ok := byIndex[task.Index]
		if !ok {
			continue
		}
		if task.Kind == workload.Dense {
			total += tp.TimeMS * float64(task.Repeats)
			continue
		}
		if old, seen := bestConv[task.Conv]; !seen || tp.TimeMS < old {
			bestConv[task.Conv] = tp.TimeMS
		}
		repeats[task.Conv] = task.Repeats
	}
	for shape, ms := range bestConv {
		total += ms * float64(repeats[shape])
	}
	return total
}

// TuneFleet tunes the model on every named GPU concurrently (one in-
// process simulated device each) and returns the plans in input order.
func TuneFleet(cfg Config, gpus []string, g *rng.RNG) ([]*Plan, error) {
	plans := make([]*Plan, len(gpus))
	errs := make([]error, len(gpus))
	var wg sync.WaitGroup
	for i, gpu := range gpus {
		wg.Add(1)
		go func(i int, gpu string) {
			defer wg.Done()
			m, err := measure.NewLocal(gpu)
			if err != nil {
				errs[i] = err
				return
			}
			plans[i], errs[i] = TuneModel(cfg, m, g.Split("device/"+gpu))
		}(i, gpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plans, nil
}

// Save writes the plan as JSON.
func (p *Plan) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadPlan reads a plan saved by Save.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fleet: parse plan %s: %w", path, err)
	}
	if p.Model == "" || len(p.Tasks) == 0 {
		return nil, fmt.Errorf("fleet: plan %s is empty", path)
	}
	return &p, nil
}
