// Package fleet orchestrates whole-model, multi-GPU tuning — the
// deployment scenario that motivates the paper (§1 prices "10 DNN models
// on 100 different GPUs" at ~10,000 GPU hours). It tunes every task of a
// model concurrently, assembles a deployment Plan (best configuration,
// kernel source, and end-to-end latency per device), and fans out across
// a GPU fleet.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/codegen"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// TaskPlan is the deployment decision for one tuning task. A task whose
// tuning session failed (device crash, exhausted retries, no valid
// configuration) is recorded with Failed set and the error preserved, so a
// partial plan still documents exactly what was lost.
type TaskPlan struct {
	TaskName    string  `json:"task"`
	TaskIndex   int     `json:"task_index"`
	Kind        string  `json:"kind"`
	ConfigIndex int64   `json:"config_index"`
	Schedule    string  `json:"schedule"`
	GFLOPS      float64 `json:"gflops"`
	TimeMS      float64 `json:"time_ms"`
	Repeats     int     `json:"repeats"`
	Kernel      string  `json:"kernel,omitempty"`
	// Per-task measurement accounting (also what checkpoint resume
	// restores without re-measuring).
	GPUSeconds   float64 `json:"gpu_seconds,omitempty"`
	Measurements int     `json:"measurements,omitempty"`
	Invalid      int     `json:"invalid,omitempty"`
	// Failure bookkeeping.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
	// FromCheckpoint marks a task restored from a previous session.
	FromCheckpoint bool `json:"from_checkpoint,omitempty"`
	// FromCache marks a task served from the tuned-config cache with zero
	// measurements (exact fingerprint + device hit).
	FromCache bool `json:"from_cache,omitempty"`
	// WarmStarted marks a task whose session was seeded from cache donors
	// under a shrunken budget.
	WarmStarted bool `json:"warm_started,omitempty"`
}

// Plan is the deployment artifact for one model on one GPU. A plan with
// FailedTasks > 0 is partial: its latency covers only the surviving tasks.
type Plan struct {
	Model        string     `json:"model"`
	GPU          string     `json:"gpu"`
	Tasks        []TaskPlan `json:"tasks"`
	LatencyMS    float64    `json:"latency_ms"`
	GPUSeconds   float64    `json:"gpu_seconds"`
	Measurements int        `json:"measurements"`
	Invalid      int        `json:"invalid"`
	FailedTasks  int        `json:"failed_tasks,omitempty"`
	ResumedTasks int        `json:"resumed_tasks,omitempty"`
	CachedTasks  int        `json:"cached_tasks,omitempty"`
}

// Complete reports whether every task produced a deployable configuration.
func (p *Plan) Complete() bool { return p.FailedTasks == 0 }

// FailedTaskPlans returns the tasks that did not survive tuning.
func (p *Plan) FailedTaskPlans() []TaskPlan {
	var out []TaskPlan
	for _, tp := range p.Tasks {
		if tp.Failed {
			out = append(out, tp)
		}
	}
	return out
}

// Config controls a fleet tuning session.
type Config struct {
	Model string
	// Tasks restricts tuning to a subset (default: every task of Model).
	Tasks []workload.Task
	// Budget per task.
	Budget tuner.Budget
	// Parallelism is the number of tasks tuned concurrently per device
	// (default 2 — real boards serialize measurements, but compilation and
	// search overlap).
	Parallelism int
	// NewTuner builds the tuner for one (task, gpu) pair.
	NewTuner func(task workload.Task, gpu string) (tuner.Tuner, error)
	// GenerateKernels embeds generated kernel source in the plan.
	GenerateKernels bool
	// NewMeasurer overrides how TuneFleet builds each GPU's measurer
	// (default measure.NewLocal) — the hook for reliability wrappers and
	// fault injection.
	NewMeasurer func(gpu string) (measure.Measurer, error)
	// Checkpoint, when set, records each completed task and lets a
	// resumed session skip tasks already recorded for (model, gpu).
	Checkpoint *Checkpoint
	// Cache, when set, is consulted before each task is dispatched: an
	// exact (fingerprint, device) hit serves the stored best configuration
	// with zero measurements; a miss warm-starts the session from the
	// WarmK nearest donor devices under a shrunken budget (for tuners that
	// implement cache.WarmStartable). New bests are written back unless
	// the store is readonly.
	Cache *cache.Store
	// WarmK is the donor count for cache warm starts (default 3).
	WarmK int
	// Tracer records one "task" span per tuning task plus "checkpoint"
	// spans and failure events (nil: tracing disabled). The tracer is safe
	// for the concurrent task goroutines; it observes only and never
	// steers scheduling or seeding.
	Tracer *telemetry.Tracer
	// Trace parents every task span into a caller's trace (glimpsed
	// stamps the job context here), flowing from there through dispatch
	// spans onto the RPC wire. Zero roots the task spans locally; like
	// Tracer, it carries identity only and never steers scheduling.
	Trace telemetry.SpanContext
}

func (c *Config) resolve() error {
	if c.NewTuner == nil {
		return fmt.Errorf("fleet: Config.NewTuner is required")
	}
	if len(c.Tasks) == 0 {
		tasks, err := workload.Tasks(c.Model)
		if err != nil {
			return err
		}
		c.Tasks = tasks
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.WarmK <= 0 {
		c.WarmK = 3
	}
	return nil
}

// runTask tunes one task on one device-labelled measurer: checkpoint
// lookup, tuning session, optional kernel generation, checkpoint append.
// Per-task failures (device crash, exhausted retries, no valid
// configuration, codegen errors) come back as a TaskPlan with Failed set;
// the returned error is fatal only (checkpoint I/O). Randomness is split
// from g by task name, so results do not depend on which goroutine, shard,
// or endpoint runs the task.
func runTask(cfg *Config, m measure.Measurer, task workload.Task, g *rng.RNG) (TaskPlan, error) {
	tsp, taskSC := cfg.Tracer.StartSpan(cfg.Trace, telemetry.StageTask)
	tsp.SetAttr("task", task.Name())
	tsp.SetAttr("gpu", m.DeviceName())
	defer tsp.End()

	failed := func(err error) TaskPlan {
		tsp.SetAttr("outcome", "failed")
		cfg.Tracer.EventCtx(taskSC, telemetry.StageTask, map[string]any{
			"event": "task_failed", "task": task.Name(), "gpu": m.DeviceName(), "error": err.Error(),
		})
		return TaskPlan{
			TaskName:    task.Name(),
			TaskIndex:   task.Index,
			Kind:        task.Kind.String(),
			ConfigIndex: -1,
			Repeats:     task.Repeats,
			Failed:      true,
			Error:       err.Error(),
		}
	}

	if cfg.Checkpoint != nil {
		if tp, ok := cfg.Checkpoint.Lookup(cfg.Model, m.DeviceName(), task.Name()); ok {
			tp.FromCheckpoint = true
			tsp.SetAttr("outcome", "resumed")
			return tp, nil
		}
	}
	sp, err := space.ForTask(task)
	if err != nil {
		return failed(err), nil
	}

	// Tuned-config cache: exact hit serves the stored best with zero
	// measurements; a miss seeds the session from the nearest donors.
	var fp string
	budget := cfg.Budget
	var warm *cache.WarmStart
	if cfg.Cache != nil {
		fp = cache.Fingerprint(task, sp)
		lsp, _ := cfg.Tracer.StartSpan(taskSC, telemetry.StageCacheLookup)
		lsp.SetAttr("task", task.Name())
		ce, hit := cfg.Cache.Get(fp, m.DeviceName())
		if !hit {
			warm = cfg.Cache.WarmStart(fp, m.DeviceName(), sp, cfg.WarmK)
			lsp.SetAttr("donors", warmDonors(warm))
		}
		lsp.SetAttr("hit", hit)
		lsp.End()
		if hit && ce.BestConfig < sp.Size() {
			hsp, _ := cfg.Tracer.StartSpan(taskSC, telemetry.StageCacheHit)
			hsp.SetAttr("task", task.Name())
			hsp.SetAttr("gflops", ce.GFLOPS)
			tp := TaskPlan{
				TaskName:    task.Name(),
				TaskIndex:   task.Index,
				Kind:        task.Kind.String(),
				ConfigIndex: ce.BestConfig,
				Schedule:    sp.Describe(sp.FromIndex(ce.BestConfig)),
				GFLOPS:      ce.GFLOPS,
				TimeMS:      ce.TimeMS,
				Repeats:     task.Repeats,
				FromCache:   true,
			}
			if cfg.GenerateKernels {
				kern, err := codegen.Lower(task, sp, sp.FromIndex(ce.BestConfig))
				if err != nil {
					hsp.End()
					return failed(err), nil
				}
				tp.Kernel = kern.Render()
			}
			hsp.End()
			tsp.SetAttr("outcome", "cached")
			return tp, nil
		}
	}

	tn, err := cfg.NewTuner(task, m.DeviceName())
	if err != nil {
		return failed(err), nil
	}
	// Parent the tuner's step/measure spans under this task span, and
	// bind the measurer chain so remote endpoints record their side under
	// the same trace. Both are identity-only: tuners and measurers that
	// support neither still run identically.
	if tb, ok := tn.(interface {
		SetTraceContext(telemetry.SpanContext)
	}); ok {
		tb.SetTraceContext(taskSC)
	}
	measure.BindTrace(m, taskSC)
	if warm != nil {
		if w, ok := tn.(cache.WarmStartable); ok {
			w.SetWarmStart(warm)
			budget = cache.ShrinkBudget(budget, cache.WarmBudgetFrac)
		} else {
			warm = nil
		}
	}
	res, err := tn.Tune(task, sp, m, budget, g.Split("fleet/"+task.Name()))
	if err != nil {
		return failed(fmt.Errorf("fleet: %s: %w", task.Name(), err)), nil
	}
	if res.BestIndex < 0 {
		return failed(fmt.Errorf("fleet: %s: no valid configuration found", task.Name())), nil
	}
	tp := TaskPlan{
		TaskName:     task.Name(),
		TaskIndex:    task.Index,
		Kind:         task.Kind.String(),
		ConfigIndex:  res.BestIndex,
		Schedule:     sp.Describe(sp.FromIndex(res.BestIndex)),
		GFLOPS:       res.BestGFLOPS,
		TimeMS:       res.BestTimeMS,
		Repeats:      task.Repeats,
		GPUSeconds:   res.GPUSeconds,
		Measurements: res.Measurements,
		Invalid:      res.Invalid,
		WarmStarted:  warm != nil,
	}
	if cfg.GenerateKernels {
		kern, err := codegen.Lower(task, sp, sp.FromIndex(res.BestIndex))
		if err != nil {
			return failed(err), nil
		}
		tp.Kernel = kern.Render()
	}
	if cfg.Checkpoint != nil {
		csp, _ := cfg.Tracer.StartSpan(taskSC, telemetry.StageCheckpoint)
		csp.SetAttr("task", task.Name())
		err := cfg.Checkpoint.Append(cfg.Model, m.DeviceName(), tp)
		csp.End()
		if err != nil {
			return tp, fmt.Errorf("fleet: checkpoint %s: %w", task.Name(), err)
		}
	}
	if cfg.Cache != nil {
		if ce, ok := cache.EntryFromResult(fp, m.DeviceName(), res, sp); ok {
			ce.Model = cfg.Model
			ce.TaskIndex = task.Index
			if _, err := cfg.Cache.Put(ce); err != nil {
				return tp, fmt.Errorf("fleet: cache put %s: %w", task.Name(), err)
			}
		}
	}
	tsp.SetAttr("outcome", "ok")
	tsp.SetAttr("measurements", res.Measurements)
	return tp, nil
}

// warmDonors renders a warm start's donor list for trace attributes.
func warmDonors(ws *cache.WarmStart) int {
	if ws == nil {
		return 0
	}
	return len(ws.Donors)
}

// assemblePlan rolls completed task plans (in task order) into the
// deployment plan for one (model, gpu).
func assemblePlan(model, gpu string, tasks []workload.Task, tps []TaskPlan) *Plan {
	plan := &Plan{Model: model, GPU: gpu}
	for _, tp := range tps {
		plan.Tasks = append(plan.Tasks, tp)
		if tp.Failed {
			plan.FailedTasks++
			continue
		}
		if tp.FromCheckpoint {
			plan.ResumedTasks++
		}
		if tp.FromCache {
			plan.CachedTasks++
		}
		plan.GPUSeconds += tp.GPUSeconds
		plan.Measurements += tp.Measurements
		plan.Invalid += tp.Invalid
	}
	plan.LatencyMS = assembleLatency(tasks, plan.Tasks)
	return plan
}

// TuneModel tunes every configured task of the model on one device and
// assembles the deployment plan. Per-task randomness is derived from the
// task name, so results do not depend on goroutine scheduling.
//
// Per-task failures (device crash, exhausted retries, no valid
// configuration, codegen errors) do not abort the session: the failed task
// is recorded in the plan with Failed set and tuning of the other tasks
// continues, so nine hours of completed measurements survive one dead
// board. Only configuration errors and checkpoint I/O failures return an
// error.
func TuneModel(cfg Config, m measure.Measurer, g *rng.RNG) (*Plan, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	type outcome struct {
		tp  TaskPlan
		err error // fatal (checkpoint I/O), not a task failure
	}
	sem := make(chan struct{}, cfg.Parallelism)
	results := make([]outcome, len(cfg.Tasks))
	var wg sync.WaitGroup
	for i, task := range cfg.Tasks {
		wg.Add(1)
		go func(i int, task workload.Task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tp, err := runTask(&cfg, m, task, g)
			results[i] = outcome{tp: tp, err: err}
		}(i, task)
	}
	wg.Wait()

	tps := make([]TaskPlan, 0, len(results))
	for _, o := range results {
		if o.err != nil {
			return nil, o.err
		}
		tps = append(tps, o.tp)
	}
	return assemblePlan(cfg.Model, m.DeviceName(), cfg.Tasks, tps), nil
}

// assembleLatency sums per-layer kernel times, picking the faster of the
// direct and winograd variants for each convolution shape.
func assembleLatency(tasks []workload.Task, plans []TaskPlan) float64 {
	byIndex := map[int]TaskPlan{}
	for _, tp := range plans {
		if tp.Failed {
			continue // partial plan: latency covers surviving tasks only
		}
		byIndex[tp.TaskIndex] = tp
	}
	bestConv := map[workload.ConvShape]float64{}
	repeats := map[workload.ConvShape]int{}
	total := 0.0
	for _, task := range tasks {
		tp, ok := byIndex[task.Index]
		if !ok {
			continue
		}
		if task.Kind == workload.Dense {
			total += tp.TimeMS * float64(task.Repeats)
			continue
		}
		if old, seen := bestConv[task.Conv]; !seen || tp.TimeMS < old {
			bestConv[task.Conv] = tp.TimeMS
		}
		repeats[task.Conv] = task.Repeats
	}
	for shape, ms := range bestConv {
		total += ms * float64(repeats[shape])
	}
	return total
}

// TuneFleet tunes the model on every named GPU concurrently (one in-
// process simulated device each unless Config.NewMeasurer overrides) and
// returns the plans in input order. A GPU whose tuning degrades mid-run
// yields a partial plan (see TuneModel) without affecting the other
// devices; only configuration errors — an unknown GPU name, a measurer
// that cannot be built — abort the fleet.
func TuneFleet(cfg Config, gpus []string, g *rng.RNG) ([]*Plan, error) {
	newMeasurer := cfg.NewMeasurer
	if newMeasurer == nil {
		newMeasurer = func(gpu string) (measure.Measurer, error) { return measure.NewLocal(gpu) }
	}
	plans := make([]*Plan, len(gpus))
	errs := make([]error, len(gpus))
	var wg sync.WaitGroup
	for i, gpu := range gpus {
		wg.Add(1)
		go func(i int, gpu string) {
			defer wg.Done()
			m, err := newMeasurer(gpu)
			if err != nil {
				errs[i] = fmt.Errorf("fleet: measurer for %s: %w", gpu, err)
				return
			}
			plans[i], errs[i] = TuneModel(cfg, m, g.Split("device/"+gpu))
		}(i, gpu)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plans, nil
}

// Save writes the plan as JSON.
func (p *Plan) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadPlan reads a plan saved by Save.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fleet: parse plan %s: %w", path, err)
	}
	if p.Model == "" || len(p.Tasks) == 0 {
		return nil, fmt.Errorf("fleet: plan %s is empty", path)
	}
	return &p, nil
}
