package fleet

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func subset(t *testing.T, model string, indices ...int) []workload.Task {
	t.Helper()
	var out []workload.Task
	for _, i := range indices {
		task, err := workload.TaskByIndex(model, i)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, task)
	}
	return out
}

func randomTunerFactory(task workload.Task, gpu string) (tuner.Tuner, error) {
	return tuner.Random{BatchSize: 16}, nil
}

func TestTuneModelAssemblesPlan(t *testing.T) {
	cfg := Config{
		Model:           workload.ResNet18,
		Tasks:           subset(t, workload.ResNet18, 2, 13, 17), // conv + its winograd twin + dense
		Budget:          tuner.Budget{MaxMeasurements: 48},
		NewTuner:        randomTunerFactory,
		GenerateKernels: true,
	}
	m := measure.MustNewLocal(hwspec.TitanXp)
	plan, err := TuneModel(cfg, m, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Model != workload.ResNet18 || plan.GPU != hwspec.TitanXp {
		t.Fatalf("labels %q %q", plan.Model, plan.GPU)
	}
	if len(plan.Tasks) != 3 {
		t.Fatalf("planned %d tasks", len(plan.Tasks))
	}
	if plan.Measurements != 3*48 {
		t.Fatalf("measurements %d want %d", plan.Measurements, 3*48)
	}
	if plan.LatencyMS <= 0 || plan.GPUSeconds <= 0 {
		t.Fatalf("latency %g gpu %g", plan.LatencyMS, plan.GPUSeconds)
	}
	for _, tp := range plan.Tasks {
		if tp.GFLOPS <= 0 || tp.ConfigIndex < 0 {
			t.Fatalf("empty task plan %+v", tp)
		}
		if !strings.Contains(tp.Kernel, "__global__") {
			t.Fatalf("task %s missing kernel source", tp.TaskName)
		}
		if tp.Schedule == "" {
			t.Fatal("missing schedule description")
		}
	}
	// Latency picks min(direct, winograd) for the shared conv shape:
	// it must be ≤ the direct conv's own contribution plus dense.
	var direct, wino, dense TaskPlan
	for _, tp := range plan.Tasks {
		switch tp.TaskIndex {
		case 2:
			direct = tp
		case 13:
			wino = tp
		case 17:
			dense = tp
		}
	}
	faster := direct.TimeMS
	if wino.TimeMS < faster {
		faster = wino.TimeMS
	}
	want := faster*float64(direct.Repeats) + dense.TimeMS*float64(dense.Repeats)
	if diff := plan.LatencyMS - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("latency %g want %g", plan.LatencyMS, want)
	}
}

func TestTuneModelDeterministicDespiteParallelism(t *testing.T) {
	cfg := Config{
		Model:       workload.AlexNet,
		Tasks:       subset(t, workload.AlexNet, 3, 10),
		Budget:      tuner.Budget{MaxMeasurements: 32},
		NewTuner:    randomTunerFactory,
		Parallelism: 4,
	}
	m := measure.MustNewLocal(hwspec.RTX3090)
	a, err := TuneModel(cfg, m, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 1
	b, err := TuneModel(cfg, m, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencyMS != b.LatencyMS || a.Measurements != b.Measurements {
		t.Fatalf("parallelism changed results: %+v vs %+v", a, b)
	}
	for i := range a.Tasks {
		if a.Tasks[i].ConfigIndex != b.Tasks[i].ConfigIndex {
			t.Fatalf("task %d config differs across parallelism", i)
		}
	}
}

func TestTuneModelValidation(t *testing.T) {
	m := measure.MustNewLocal(hwspec.TitanXp)
	if _, err := TuneModel(Config{Model: workload.AlexNet}, m, rng.New(1)); err == nil {
		t.Fatal("missing NewTuner accepted")
	}
	if _, err := TuneModel(Config{Model: "lenet", NewTuner: randomTunerFactory}, m, rng.New(1)); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestTuneFleetAcrossGPUs(t *testing.T) {
	cfg := Config{
		Model:    workload.ResNet18,
		Tasks:    subset(t, workload.ResNet18, 7),
		Budget:   tuner.Budget{MaxMeasurements: 32},
		NewTuner: randomTunerFactory,
	}
	gpus := []string{hwspec.TitanXp, hwspec.RTX3090}
	plans, err := TuneFleet(cfg, gpus, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("%d plans", len(plans))
	}
	for i, p := range plans {
		if p.GPU != gpus[i] {
			t.Fatalf("plan %d GPU %q want %q", i, p.GPU, gpus[i])
		}
	}
	// The newer GPU should run the layer faster at its best config.
	if plans[1].LatencyMS >= plans[0].LatencyMS {
		t.Fatalf("rtx-3090 latency %g not better than titan-xp %g",
			plans[1].LatencyMS, plans[0].LatencyMS)
	}
	if _, err := TuneFleet(cfg, []string{"bogus-gpu"}, rng.New(9)); err == nil {
		t.Fatal("unknown GPU accepted")
	}
}

func TestPlanSaveLoad(t *testing.T) {
	cfg := Config{
		Model:    workload.AlexNet,
		Tasks:    subset(t, workload.AlexNet, 10),
		Budget:   tuner.Budget{MaxMeasurements: 16},
		NewTuner: randomTunerFactory,
	}
	m := measure.MustNewLocal(hwspec.TitanXp)
	plan, err := TuneModel(cfg, m, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := plan.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != plan.Model || got.LatencyMS != plan.LatencyMS || len(got.Tasks) != len(plan.Tasks) {
		t.Fatalf("round trip mangled plan: %+v", got)
	}
	if _, err := LoadPlan(filepath.Join(t.TempDir(), "none.json")); err == nil {
		t.Fatal("missing plan accepted")
	}
}
