package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// SchedulerConfig tunes the sharded fleet scheduler. The zero value
// selects the defaults documented per field; sharding, stealing and
// speculation are orthogonal switches so tests (and the benchmark
// baseline) can disable them independently.
type SchedulerConfig struct {
	// Shards is the number of device groups the target list is split
	// into by Blueprint affinity. <= 0 means one shard per target.
	Shards int
	// Steal lets a shard that drains its queue take tasks from the
	// longest remaining queue, and lets a dispatcher borrow idle
	// endpoints from other shards when its own are busy or tripped.
	Steal bool
	// Speculate re-issues a straggling chunk on a second endpoint and
	// takes whichever result lands first.
	Speculate bool
	// SpeculateAfter is the straggler threshold. 0 adapts it to 4x the
	// endpoint fleet's observed mean chunk wall time.
	SpeculateAfter time.Duration
	// MinChunk/MaxChunk bound the adaptive per-endpoint batch slice
	// (defaults 1 and 16).
	MinChunk int
	MaxChunk int
	// TargetChunkSeconds is the wall time one leased chunk should cost,
	// driving adaptive sizing from each endpoint's EWMA measurement cost
	// (default 20ms).
	TargetChunkSeconds float64
	// SessionsPerShard is the number of concurrent tuning sessions each
	// shard runs (default 4).
	SessionsPerShard int
	// LeaseTimeout aborts a batch when no endpoint could be leased and
	// nothing was in flight for this long (default 2s).
	LeaseTimeout time.Duration
	// Reliable is the per-endpoint fault policy template; every dialed
	// connection is wrapped in a measure.Reliable built from it.
	Reliable measure.ReliableConfig
	// Flat bypasses sharding, stealing, adaptive batching and
	// speculation: each (gpu, task) session pins one endpoint by hash and
	// sends whole batches — the flat fan-out baseline.
	Flat bool
}

func (c *SchedulerConfig) resolve() {
	if c.MinChunk <= 0 {
		c.MinChunk = 1
	}
	if c.MaxChunk <= 0 {
		c.MaxChunk = 16
	}
	if c.MaxChunk < c.MinChunk {
		c.MaxChunk = c.MinChunk
	}
	if c.TargetChunkSeconds <= 0 {
		c.TargetChunkSeconds = 0.02
	}
	if c.SessionsPerShard <= 0 {
		c.SessionsPerShard = 4
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Second
	}
}

// SchedulerStats counts what the resilience machinery actually did during
// a run. Counters are cumulative across Run calls.
type SchedulerStats struct {
	TasksDone       int // tuning sessions completed (incl. failed plans)
	TasksStolen     int // tasks a runner took from another shard's queue
	Chunks          int // measurement chunks dispatched
	ChunkRetries    int // chunks re-queued after an endpoint failed them
	EndpointSteals  int // leases borrowed from another shard's endpoints
	Speculations    int // straggler twin attempts issued
	SpeculativeWins int // chunks whose twin finished first
}

// Scheduler drives tuning sessions for many (gpu, task) units over a pool
// of measurement endpoints: targets are sharded by Blueprint affinity,
// idle shards steal queued tasks, dispatchers lease endpoints per chunk
// with adaptive sizing, and stragglers are speculatively re-issued.
//
// Result determinism: tuning randomness is split per (gpu, task) from the
// run's root RNG and simulated devices are pure functions of the measured
// configuration, so best-found plans are byte-identical to a flat
// TuneFleet run with the same seed regardless of shard count, session
// count, steal order, or which endpoint served which chunk.
type Scheduler struct {
	sc    SchedulerConfig
	slots []*slot

	mu     sync.Mutex
	queues [][]unit // per-shard pending units
	stats  SchedulerStats

	notifyMu sync.Mutex
	waitCh   chan struct{} // closed+replaced on every endpoint release
}

// unit is one tuning session: a (gpu, task) pair bound to its home shard.
type unit struct {
	gpuIndex int // position in the Run targets slice
	gpu      string
	taskPos  int // position in cfg.Tasks
	task     workload.Task
	shard    int
}

// NewScheduler builds a scheduler over the endpoint pool. The pool is
// shared across Run calls; per-run state (queues, shard assignment) is
// rebuilt each Run.
func NewScheduler(sc SchedulerConfig, endpoints []Endpoint) (*Scheduler, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("fleet: scheduler needs at least one endpoint")
	}
	sc.resolve()
	s := &Scheduler{sc: sc, waitCh: make(chan struct{})}
	for i, ep := range endpoints {
		if ep.Dial == nil {
			return nil, fmt.Errorf("fleet: endpoint %d (%s) has no Dial", i, ep.Name)
		}
		if ep.Name == "" {
			ep.Name = fmt.Sprintf("endpoint-%d", i)
		}
		s.slots = append(s.slots, newSlot(ep))
	}
	return s, nil
}

// Stats returns a snapshot of the resilience counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// releaseWait snapshots the channel the next endpoint release will close.
func (s *Scheduler) releaseWait() <-chan struct{} {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	return s.waitCh
}

// notifyRelease wakes every dispatcher blocked on a full endpoint pool.
func (s *Scheduler) notifyRelease() {
	s.notifyMu.Lock()
	close(s.waitCh)
	s.waitCh = make(chan struct{})
	s.notifyMu.Unlock()
}

// partitionTargets splits the target GPUs into n contiguous groups of
// neighbours in Blueprint embedding space, so each shard tunes
// architecturally similar devices (their sessions stress similar schedule
// regions, and a borrowed endpoint is likelier to host the sibling GPU).
// Falls back to a name-sorted split when the embedding cannot be built.
func partitionTargets(targets []string, n int) [][]string {
	if n <= 0 || n > len(targets) {
		n = len(targets)
	}
	type keyed struct {
		name string
		key  float64
	}
	ks := make([]keyed, len(targets))
	emb, err := blueprint.Build(hwspec.Registry(), blueprint.DefaultDim())
	for i, t := range targets {
		ks[i] = keyed{name: t}
		if err != nil {
			continue
		}
		spec, serr := hwspec.ByName(t)
		if serr != nil {
			continue
		}
		ks[i].key = emb.Embed(spec)[0]
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key { //glint:ignore floateq -- total-order tiebreak for sorting, not a tolerance check
			return ks[i].key < ks[j].key
		}
		return ks[i].name < ks[j].name
	})
	shards := make([][]string, n)
	for i, k := range ks {
		// Balanced contiguous split: shard j gets positions
		// [j*len/n, (j+1)*len/n).
		j := i * n / len(ks)
		shards[j] = append(shards[j], k.name)
	}
	return shards
}

// assignEndpoints gives each endpoint a home shard: the candidate shard
// (one whose targets it hosts) with the fewest endpoints so far, ties
// broken by shard order. An endpoint hosting no shard target stays
// homeless (-1) and is only used via stealing.
func (s *Scheduler) assignEndpoints(shards [][]string) {
	counts := make([]int, len(shards))
	for _, sl := range s.slots {
		sl.home = -1
		best := -1
		for j, group := range shards {
			hosts := false
			for _, gpu := range group {
				if sl.ep.HostsGPU(gpu) {
					hosts = true
					break
				}
			}
			if hosts && (best < 0 || counts[j] < counts[best]) {
				best = j
			}
		}
		if best >= 0 {
			sl.home = best
			counts[best]++
		}
	}
}

// popUnit takes the next unit for a runner of the given shard: the head
// of its own queue, else (with stealing enabled) the tail of the longest
// other queue.
func (s *Scheduler) popUnit(shard int, tracer *telemetry.Tracer) (unit, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[shard]; len(q) > 0 {
		u := q[0]
		s.queues[shard] = q[1:]
		return u, true
	}
	if !s.sc.Steal {
		return unit{}, false
	}
	victim := -1
	for j, q := range s.queues {
		if j == shard || len(q) == 0 {
			continue
		}
		if victim < 0 || len(q) > len(s.queues[victim]) {
			victim = j
		}
	}
	if victim < 0 {
		return unit{}, false
	}
	q := s.queues[victim]
	u := q[len(q)-1] // steal from the tail: the victim works the head
	s.queues[victim] = q[:len(q)-1]
	s.stats.TasksStolen++
	tracer.Event(telemetry.StageSteal, map[string]any{
		"event": "task_steal", "thief_shard": shard, "victim_shard": victim,
		"gpu": u.gpu, "task": u.task.Name(),
	})
	return u, true
}

// Run tunes the model on every target GPU over the endpoint pool and
// returns the plans in target order. Per-task failures yield partial
// plans exactly as TuneModel does; only configuration and checkpoint I/O
// errors abort the run.
func (s *Scheduler) Run(cfg Config, targets []string, g *rng.RNG) ([]*Plan, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("fleet: scheduler run needs at least one target")
	}
	shards := partitionTargets(targets, s.sc.Shards)
	s.assignEndpoints(shards)

	gpuIndex := make(map[string]int, len(targets))
	for i, t := range targets {
		gpuIndex[t] = i
	}
	s.mu.Lock()
	s.queues = make([][]unit, len(shards))
	total := 0
	for j, group := range shards {
		for _, gpu := range group {
			for pos, task := range cfg.Tasks {
				s.queues[j] = append(s.queues[j], unit{
					gpuIndex: gpuIndex[gpu], gpu: gpu, taskPos: pos, task: task, shard: j,
				})
				total++
			}
		}
	}
	s.mu.Unlock()

	type cell struct {
		tp  TaskPlan
		err error
	}
	results := make([][]cell, len(targets))
	for i := range results {
		results[i] = make([]cell, len(cfg.Tasks))
	}

	var wg sync.WaitGroup
	for j := range shards {
		runners := s.sc.SessionsPerShard
		if runners > total {
			runners = total
		}
		ssp, _ := cfg.Tracer.StartSpan(cfg.Trace, telemetry.StageShard)
		ssp.SetAttr("shard", j)
		ssp.SetAttr("targets", fmt.Sprintf("%v", shards[j]))
		var swg sync.WaitGroup
		for r := 0; r < runners; r++ {
			wg.Add(1)
			swg.Add(1)
			go func(shard int) {
				defer wg.Done()
				defer swg.Done()
				for {
					u, ok := s.popUnit(shard, cfg.Tracer)
					if !ok {
						return
					}
					d := s.dispatcher(u, cfg.Tracer)
					tp, err := runTask(&cfg, d, u.task, g.Split("device/"+u.gpu))
					results[u.gpuIndex][u.taskPos] = cell{tp: tp, err: err}
					s.mu.Lock()
					s.stats.TasksDone++
					s.mu.Unlock()
				}
			}(j)
		}
		// The span-ender must be joined by the outer wg: without it Run can
		// return (and the caller flush the tracer) before swg.Wait() wakes,
		// losing the shard span's End record from the trace.
		wg.Add(1)
		go func(sp telemetry.Span, swg *sync.WaitGroup) {
			defer wg.Done()
			swg.Wait()
			sp.End()
		}(ssp, &swg)
	}
	wg.Wait()

	plans := make([]*Plan, len(targets))
	for i := range targets {
		tps := make([]TaskPlan, 0, len(cfg.Tasks))
		for pos := range cfg.Tasks {
			c := results[i][pos]
			if c.err != nil {
				return nil, c.err
			}
			tps = append(tps, c.tp)
		}
		plans[i] = assemblePlan(cfg.Model, targets[i], cfg.Tasks, tps)
	}
	return plans, nil
}
