package fleet

import (
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/faults"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// The fleet benchmark pits the flat fan-out baseline against the sharded
// scheduler on the scenario the paper prices: every resnet-18 task on
// every registry GPU over 200 simulated endpoints, 10% of which flap with
// multi-hundred-millisecond outages. Flat sessions are pinned to one
// endpoint each and must ride out its outages with patient retries; the
// sharded path reroutes, steals, sizes chunks adaptively, and twins
// stragglers. Compare the meas/s metric between the two entries in
// BENCH_fleet.json.
const benchEndpoints = 200

// benchScenario flaps 10% of the endpoints: a flapping device serves a
// few batches, drops offline for 120ms, and repeats. Outages are
// call-triggered so every pinned session that keeps using a flapping
// endpoint is guaranteed to hit them mid-run, exactly like a board that
// wedges under sustained load.
func benchScenario() faults.Scenario {
	sc := faults.Healthy(benchEndpoints, 500*time.Microsecond)
	sc.Name = "bench-flap"
	g := rng.New(9)
	for _, i := range g.Perm(benchEndpoints)[:benchEndpoints/10] {
		sc.Configs[i].Phases = []faults.Phase{
			{Calls: 1 + i%3},
			{For: 160 * time.Millisecond, Down: true},
		}
	}
	return sc
}

func benchConfig(b *testing.B) Config {
	tasks, err := workload.Tasks(workload.ResNet18)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Model:    workload.ResNet18,
		Tasks:    tasks,
		Budget:   tuner.Budget{MaxMeasurements: 64},
		NewTuner: randomTunerFactory,
	}
}

func runFleetBench(b *testing.B, sc SchedulerConfig) {
	cfg := benchConfig(b)
	targets := append([]string(nil), hwspec.Targets...)
	names := endpointNames(benchEndpoints)
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps, _ := chaosEndpoints(names, benchScenario()) // fresh churn state per iteration
		s, err := NewScheduler(sc, eps)
		if err != nil {
			b.Fatal(err)
		}
		plans, err := s.Run(cfg, targets, rng.New(97))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range plans {
			total += p.Measurements
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(total)/sec, "meas/s")
	}
}

// BenchmarkFleetFlat pins each (gpu, task) session to one hashed endpoint
// and sends whole batches, retrying patiently through outages — the
// pre-scheduler behaviour.
func BenchmarkFleetFlat(b *testing.B) {
	runFleetBench(b, SchedulerConfig{
		Flat:             true,
		SessionsPerShard: 4,
		Reliable: measure.ReliableConfig{
			MaxAttempts: 12, BackoffBase: 20 * time.Millisecond, BackoffMax: 80 * time.Millisecond,
			BreakerThreshold: 1 << 20, // no alternatives to fail over to: keep trying
			Seed:             1,
		},
	})
}

// BenchmarkFleetSharded runs the full resilience stack: Blueprint-affinity
// shards, endpoint stealing, adaptive chunk sizing, and speculative
// re-issue of stragglers.
func BenchmarkFleetSharded(b *testing.B) {
	runFleetBench(b, SchedulerConfig{
		Shards:           4,
		SessionsPerShard: 4,
		Steal:            true,
		Speculate:        true,
		Reliable: measure.ReliableConfig{
			MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond, Seed: 1,
		},
	})
}
