package fleet

import (
	"fmt"
	"sync"
	"time"

	"github.com/neuralcompile/glimpse/internal/measure"
)

// Endpoint describes one measurement service the scheduler can lease —
// a remote board, an RPC daemon, or an in-process simulator. Dial is
// called lazily, at most once per hosted GPU, and the connection is kept
// for the lifetime of the run.
type Endpoint struct {
	// Name identifies the endpoint in stats, traces, and errors.
	Name string
	// Hosts lists the GPU targets this endpoint can measure. Empty means
	// it hosts every target.
	Hosts []string
	// Dial builds the measurer for one hosted GPU.
	Dial func(gpu string) (measure.Measurer, error)
}

// HostsGPU reports whether the endpoint can measure the named target.
func (e *Endpoint) HostsGPU(gpu string) bool {
	if len(e.Hosts) == 0 {
		return true
	}
	for _, h := range e.Hosts {
		if h == gpu {
			return true
		}
	}
	return false
}

// slot is the scheduler's live state for one endpoint: the lazily-dialed
// reliable connections, a single-owner busy token (real boards serialize
// measurements), and the cost statistics that drive adaptive batching.
type slot struct {
	ep   Endpoint
	home int // shard index; -1 = unassigned, borrow-only

	mu      sync.Mutex
	busy    bool
	conns   map[string]*measure.Reliable
	served  int     // measurements completed
	fails   int     // failed leases (chunk attempts that errored)
	ewmaSec float64 // EWMA of observed wall seconds per measurement
}

func newSlot(ep Endpoint) *slot {
	return &slot{ep: ep, home: -1, conns: make(map[string]*measure.Reliable)}
}

// conn returns the reliable connection for one hosted GPU, dialing on
// first use. The Reliable wrapper gives every endpoint a circuit breaker
// the scheduler can consult via Ready.
func (s *slot) conn(gpu string, cfg measure.ReliableConfig) (*measure.Reliable, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.conns[gpu]; ok {
		return r, nil
	}
	m, err := s.ep.Dial(gpu)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s for %s: %w", s.ep.Name, gpu, err)
	}
	r, err := measure.NewReliable(cfg, m)
	if err != nil {
		return nil, fmt.Errorf("fleet: wrap %s: %w", s.ep.Name, err)
	}
	s.conns[gpu] = r
	return r, nil
}

// ready reports whether the endpoint's breaker (if any connection exists)
// would admit work for gpu. An undialed endpoint is optimistically ready.
func (s *slot) ready(gpu string) bool {
	s.mu.Lock()
	r, ok := s.conns[gpu]
	s.mu.Unlock()
	if !ok {
		return true
	}
	return r.Ready()
}

// tryAcquire takes the busy token if free.
func (s *slot) tryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.busy {
		return false
	}
	s.busy = true
	return true
}

func (s *slot) release() {
	s.mu.Lock()
	s.busy = false
	s.mu.Unlock()
}

const ewmaAlpha = 0.3

// observe folds one completed chunk into the endpoint's cost estimate.
func (s *slot) observe(n int, wall time.Duration) {
	if n <= 0 {
		return
	}
	per := wall.Seconds() / float64(n)
	s.mu.Lock()
	s.served += n
	if s.ewmaSec == 0 {
		s.ewmaSec = per
	} else {
		s.ewmaSec = ewmaAlpha*per + (1-ewmaAlpha)*s.ewmaSec
	}
	s.mu.Unlock()
}

func (s *slot) observeFailure() {
	s.mu.Lock()
	s.fails++
	s.mu.Unlock()
}

// costStats returns (served measurements, EWMA seconds per measurement).
func (s *slot) costStats() (int, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.ewmaSec
}

// chunkSize adapts the batch slice leased to this endpoint so one chunk
// targets sc.TargetChunkSeconds of wall time: fast endpoints get big
// chunks (amortized dispatch), slow or degrading ones get small chunks
// (bounded straggler cost, finer-grained reassignment). Before any
// observation it falls back to an even split.
func (s *slot) chunkSize(sc *SchedulerConfig, remaining, endpoints int) int {
	_, ewma := s.costStats()
	var n int
	if ewma > 0 {
		n = int(sc.TargetChunkSeconds / ewma)
	} else if endpoints > 0 {
		n = remaining / endpoints
	}
	if n < sc.MinChunk {
		n = sc.MinChunk
	}
	if n > sc.MaxChunk {
		n = sc.MaxChunk
	}
	if n > remaining {
		n = remaining
	}
	return n
}
