package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"github.com/neuralcompile/glimpse/internal/tlog"
)

// checkpointLine is one completed task on one (model, gpu), as a JSON line.
type checkpointLine struct {
	Model string   `json:"model"`
	GPU   string   `json:"gpu"`
	Task  TaskPlan `json:"task"`
}

// Checkpoint is an append-only JSONL record of completed task plans, so a
// killed tuning campaign resumes per task instead of re-measuring work it
// already paid GPU-hours for. One checkpoint file serves a whole fleet run:
// entries are keyed by (model, gpu, task). It is safe for concurrent use by
// the per-task and per-GPU goroutines of a fleet session, and tolerates a
// truncated final line from a previous kill (see tlog.ReadJSONLines).
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]TaskPlan
}

func checkpointKey(model, gpu, taskName string) string {
	return model + "\x00" + gpu + "\x00" + taskName
}

// OpenCheckpoint opens (creating if absent) a checkpoint file and loads
// the tasks it already records. Failed task plans are never checkpointed,
// so everything loaded is reusable. A file whose writer was killed
// mid-append is repaired: an unterminated final line is kept if it parses
// as JSON (the kill landed between the bytes and the newline) and
// truncated away otherwise, so the next append starts on a clean line.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close() // already on the error path; the read error wins
		return nil, err
	}
	c := &Checkpoint{f: f, done: map[string]TaskPlan{}}
	err = tlog.ReadJSONLines(bytes.NewReader(data), func(line []byte) error {
		var cl checkpointLine
		if err := json.Unmarshal(line, &cl); err != nil {
			return err
		}
		if cl.Model == "" || cl.GPU == "" || cl.Task.TaskName == "" {
			return fmt.Errorf("fleet: checkpoint entry missing model/gpu/task")
		}
		c.done[checkpointKey(cl.Model, cl.GPU, cl.Task.TaskName)] = cl.Task
		return nil
	})
	if err != nil {
		_ = f.Close() // already on the error path; the read error wins
		return nil, fmt.Errorf("fleet: checkpoint %s: %w", path, err)
	}
	if err := repairTail(f, data); err != nil {
		_ = f.Close() // already on the error path; the read error wins
		return nil, fmt.Errorf("fleet: checkpoint %s: %w", path, err)
	}
	return c, nil
}

// repairTail leaves f positioned at the end of the last complete line,
// terminating or discarding a partial trailing write.
func repairTail(f *os.File, data []byte) error {
	if len(data) == 0 || data[len(data)-1] == '\n' {
		_, err := f.Seek(int64(len(data)), io.SeekStart)
		return err
	}
	cut := bytes.LastIndexByte(data, '\n') + 1
	if tail := bytes.TrimSpace(data[cut:]); json.Valid(tail) {
		// Complete JSON missing only its newline: terminate it in place.
		if _, err := f.Seek(int64(len(data)), io.SeekStart); err != nil {
			return err
		}
		_, err := f.Write([]byte("\n"))
		return err
	}
	if err := f.Truncate(int64(cut)); err != nil {
		return err
	}
	_, err := f.Seek(int64(cut), io.SeekStart)
	return err
}

// Lookup returns the checkpointed plan for a task, if any.
func (c *Checkpoint) Lookup(model, gpu, taskName string) (TaskPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tp, ok := c.done[checkpointKey(model, gpu, taskName)]
	return tp, ok
}

// Append durably records one completed task. Failed plans are skipped —
// a resumed session must re-measure them.
func (c *Checkpoint) Append(model, gpu string, tp TaskPlan) error {
	if tp.Failed {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := tlog.AppendJSONLine(c.f, checkpointLine{Model: model, GPU: gpu, Task: tp}); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.done[checkpointKey(model, gpu, tp.TaskName)] = tp
	return nil
}

// Len reports how many tasks are checkpointed.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Close releases the underlying file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}
