package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/faults"
	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// countingMeasurer records which tasks were actually measured.
type countingMeasurer struct {
	inner measure.Measurer
	mu    sync.Mutex
	tasks map[string]int
}

func newCounting(inner measure.Measurer) *countingMeasurer {
	return &countingMeasurer{inner: inner, tasks: map[string]int{}}
}

func (c *countingMeasurer) MeasureBatch(task workload.Task, sp *space.Space, idxs []int64) ([]gpusim.Result, error) {
	c.mu.Lock()
	c.tasks[task.Name()]++
	c.mu.Unlock()
	return c.inner.MeasureBatch(task, sp, idxs)
}

func (c *countingMeasurer) DeviceName() string { return c.inner.DeviceName() }

func (c *countingMeasurer) measured() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]int{}
	for k, v := range c.tasks {
		out[k] = v
	}
	return out
}

func taskName(t *testing.T, model string, index int) string {
	t.Helper()
	task, err := workload.TaskByIndex(model, index)
	if err != nil {
		t.Fatal(err)
	}
	return task.Name()
}

func TestTuneModelPartialPlanOnDeviceCrash(t *testing.T) {
	crash := taskName(t, workload.ResNet18, 17)
	cfg := Config{
		Model:    workload.ResNet18,
		Tasks:    subset(t, workload.ResNet18, 2, 13, 17),
		Budget:   tuner.Budget{MaxMeasurements: 48},
		NewTuner: randomTunerFactory,
	}
	inj := faults.New(measure.MustNewLocal(hwspec.TitanXp),
		faults.Config{Seed: 1, CrashAfterCalls: 1, CrashTasks: map[string]bool{crash: true}})
	plan, err := TuneModel(cfg, inj, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != 3 {
		t.Fatalf("plan has %d tasks, want 3 (failed ones included)", len(plan.Tasks))
	}
	if plan.FailedTasks != 1 || plan.Complete() {
		t.Fatalf("FailedTasks = %d, Complete = %v", plan.FailedTasks, plan.Complete())
	}
	failed := plan.FailedTaskPlans()
	if len(failed) != 1 || failed[0].TaskName != crash {
		t.Fatalf("failed tasks %+v, want exactly %s", failed, crash)
	}
	if !strings.Contains(failed[0].Error, "crashed") {
		t.Fatalf("failure cause lost: %q", failed[0].Error)
	}
	if failed[0].ConfigIndex != -1 || failed[0].GFLOPS != 0 {
		t.Fatalf("failed task carries stale results: %+v", failed[0])
	}
	// The two surviving tasks still produced a deployable partial plan.
	if plan.LatencyMS <= 0 || plan.Measurements != 2*48 {
		t.Fatalf("latency %g measurements %d", plan.LatencyMS, plan.Measurements)
	}
}

// faultyFleetMeasurer builds the acceptance scenario: every device flakes
// transiently at 20%, one crashes for one task after its first call, and
// all of it sits behind a Reliable wrapper that retries. BreakerThreshold
// is set high so task outcomes stay independent of goroutine interleaving
// (breaker dynamics are covered deterministically in measure's own tests).
func faultyFleetMeasurer(crashGPU, crashTask string, seed int64) func(gpu string) (measure.Measurer, error) {
	return func(gpu string) (measure.Measurer, error) {
		local, err := measure.NewLocal(gpu)
		if err != nil {
			return nil, err
		}
		fcfg := faults.Config{Seed: seed, TransientErrorRate: 0.2}
		if gpu == crashGPU {
			fcfg.CrashAfterCalls = 1
			fcfg.CrashTasks = map[string]bool{crashTask: true}
		}
		return measure.NewReliable(measure.ReliableConfig{
			MaxAttempts:      4,
			BreakerThreshold: 1000,
			Seed:             seed,
			Sleep:            func(time.Duration) {},
		}, faults.New(local, fcfg))
	}
}

func TestTuneFleetSurvivesFaultyDeviceDeterministically(t *testing.T) {
	gpus := []string{hwspec.TitanXp, hwspec.RTX2070Super, hwspec.RTX2080Ti, hwspec.RTX3090}
	crashTask := taskName(t, workload.ResNet18, 17)
	run := func() []*Plan {
		cfg := Config{
			Model:       workload.ResNet18,
			Tasks:       subset(t, workload.ResNet18, 2, 13, 17),
			Budget:      tuner.Budget{MaxMeasurements: 48},
			NewTuner:    randomTunerFactory,
			NewMeasurer: faultyFleetMeasurer(hwspec.RTX2080Ti, crashTask, 99),
		}
		plans, err := TuneFleet(cfg, gpus, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return plans
	}
	plans := run()
	if len(plans) != 4 {
		t.Fatalf("%d plans", len(plans))
	}
	full := 0
	for _, p := range plans {
		if p.Complete() {
			full++
			if p.LatencyMS <= 0 {
				t.Fatalf("complete plan for %s has latency %g", p.GPU, p.LatencyMS)
			}
		}
	}
	if full != 3 {
		t.Fatalf("%d full plans, want 3", full)
	}
	partial := plans[2] // the crashing device
	if partial.Complete() || partial.GPU != hwspec.RTX2080Ti {
		t.Fatalf("expected partial plan for %s, got %+v", hwspec.RTX2080Ti, partial)
	}
	failed := partial.FailedTaskPlans()
	if len(failed) != 1 || failed[0].TaskName != crashTask || failed[0].Error == "" {
		t.Fatalf("partial plan failures: %+v", failed)
	}
	// 20% transient flakiness was absorbed by retries on every device.
	if partial.LatencyMS <= 0 || len(partial.Tasks) != 3 {
		t.Fatalf("partial plan lost surviving tasks: %+v", partial)
	}
	// Identical seeds reproduce the identical outcome, faults included.
	again := run()
	if !reflect.DeepEqual(plans, again) {
		t.Fatal("fault-injected fleet run is not deterministic under a fixed seed")
	}
}

func TestFleetResumeRemeasuresOnlyFailedTasks(t *testing.T) {
	crash := taskName(t, workload.ResNet18, 17)
	path := filepath.Join(t.TempDir(), "fleet.ckpt.jsonl")
	cfg := Config{
		Model:    workload.ResNet18,
		Tasks:    subset(t, workload.ResNet18, 2, 13, 17),
		Budget:   tuner.Budget{MaxMeasurements: 48},
		NewTuner: randomTunerFactory,
	}

	// Session 1: the device dies for one task; the other two are
	// checkpointed as they complete.
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	inj := faults.New(measure.MustNewLocal(hwspec.TitanXp),
		faults.Config{Seed: 1, CrashAfterCalls: 1, CrashTasks: map[string]bool{crash: true}})
	plan1, err := TuneModel(cfg, inj, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if plan1.FailedTasks != 1 || ck.Len() != 2 {
		t.Fatalf("session 1: failed %d, checkpointed %d", plan1.FailedTasks, ck.Len())
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: resumed against a healthy device — only the crashed task
	// is measured again.
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	cfg.Checkpoint = ck2
	counting := newCounting(measure.MustNewLocal(hwspec.TitanXp))
	plan2, err := TuneModel(cfg, counting, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.Complete() {
		t.Fatalf("resumed plan still failed: %+v", plan2.FailedTaskPlans())
	}
	if plan2.ResumedTasks != 2 {
		t.Fatalf("ResumedTasks = %d, want 2", plan2.ResumedTasks)
	}
	measured := counting.measured()
	if len(measured) != 1 || measured[crash] == 0 {
		t.Fatalf("resume re-measured %v, want only %s", measured, crash)
	}
	resumed := 0
	for _, tp := range plan2.Tasks {
		if tp.FromCheckpoint {
			resumed++
			if tp.TaskName == crash {
				t.Fatal("failed task restored from checkpoint")
			}
		}
	}
	if resumed != 2 {
		t.Fatalf("%d tasks marked FromCheckpoint", resumed)
	}
	// Plan totals still account for the GPU time paid in session 1.
	if plan2.Measurements != 3*48 {
		t.Fatalf("resumed plan measurements %d, want %d", plan2.Measurements, 3*48)
	}
	if ck2.Len() != 3 {
		t.Fatalf("checkpoint holds %d tasks after resume, want 3", ck2.Len())
	}

	// Session 3: everything checkpointed — nothing is measured at all.
	ck3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck3.Close()
	cfg.Checkpoint = ck3
	counting3 := newCounting(measure.MustNewLocal(hwspec.TitanXp))
	plan3, err := TuneModel(cfg, counting3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(counting3.measured()) != 0 {
		t.Fatalf("fully-checkpointed run measured %v", counting3.measured())
	}
	if plan3.ResumedTasks != 3 || !plan3.Complete() {
		t.Fatalf("session 3 plan: %+v", plan3)
	}
	if plan3.LatencyMS != plan2.LatencyMS {
		t.Fatalf("latency drifted across resume: %g vs %g", plan3.LatencyMS, plan2.LatencyMS)
	}
}

func TestCheckpointSurvivesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	good := TaskPlan{TaskName: "alexnet/conv-1", TaskIndex: 1, ConfigIndex: 7, GFLOPS: 100, TimeMS: 1}
	if err := ck.Append(workload.AlexNet, hwspec.TitanXp, good); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: garbage without a trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"model":"alexnet","gpu":"titan-`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("truncated checkpoint rejected: %v", err)
	}
	if ck2.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1", ck2.Len())
	}
	if _, ok := ck2.Lookup(workload.AlexNet, hwspec.TitanXp, "alexnet/conv-1"); !ok {
		t.Fatal("intact entry lost")
	}
	// Appending after repair keeps the file parseable.
	second := TaskPlan{TaskName: "alexnet/conv-2", TaskIndex: 2, ConfigIndex: 3, GFLOPS: 50, TimeMS: 2}
	if err := ck2.Append(workload.AlexNet, hwspec.TitanXp, second); err != nil {
		t.Fatal(err)
	}
	ck2.Close()
	ck3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck3.Close()
	if ck3.Len() != 2 {
		t.Fatalf("after repair+append: %d entries, want 2", ck3.Len())
	}
}

func TestCheckpointIgnoresFailedPlans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	bad := TaskPlan{TaskName: "x", TaskIndex: 1, Failed: true, Error: "boom"}
	if err := ck.Append(workload.AlexNet, hwspec.TitanXp, bad); err != nil {
		t.Fatal(err)
	}
	if ck.Len() != 0 {
		t.Fatal("failed task checkpointed")
	}
	if _, ok := ck.Lookup(workload.AlexNet, hwspec.TitanXp, "x"); ok {
		t.Fatal("failed task resumable")
	}
}
