package fleet

import (
	"path/filepath"
	"sync"
	"testing"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

func openCache(t *testing.T) *cache.Store {
	t.Helper()
	s, err := cache.Open(filepath.Join(t.TempDir(), "cache.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTuneModelCacheExactHit(t *testing.T) {
	store := openCache(t)
	cfg := Config{
		Model:    workload.ResNet18,
		Tasks:    subset(t, workload.ResNet18, 2, 17),
		Budget:   tuner.Budget{MaxMeasurements: 48},
		NewTuner: randomTunerFactory,
		Cache:    store,
	}
	m := measure.MustNewLocal(hwspec.TitanXp)

	cold, err := TuneModel(cfg, m, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CachedTasks != 0 || cold.Measurements != 2*48 {
		t.Fatalf("cold run: cached %d measurements %d", cold.CachedTasks, cold.Measurements)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d entries after cold run, want 2", store.Len())
	}

	// Same model, same device: every task is an exact hit — zero
	// measurements, identical configs.
	hit, err := TuneModel(cfg, m, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	if hit.CachedTasks != 2 || hit.Measurements != 0 {
		t.Fatalf("hit run: cached %d measurements %d", hit.CachedTasks, hit.Measurements)
	}
	for i, tp := range hit.Tasks {
		if !tp.FromCache {
			t.Fatalf("task %s not served from cache", tp.TaskName)
		}
		if tp.ConfigIndex != cold.Tasks[i].ConfigIndex || tp.GFLOPS != cold.Tasks[i].GFLOPS {
			t.Fatalf("cached task %s diverged: %+v vs %+v", tp.TaskName, tp, cold.Tasks[i])
		}
	}
	if st := store.Stats(); st.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 hits", st)
	}
}

// warmRandom is a random tuner that accepts warm-start payloads, recording
// what the fleet handed it.
type warmRandom struct {
	tuner.Random
	mu   *sync.Mutex
	seen *[]*cache.WarmStart
}

func (w *warmRandom) SetWarmStart(ws *cache.WarmStart) {
	w.mu.Lock()
	defer w.mu.Unlock()
	*w.seen = append(*w.seen, ws)
}

func TestTuneModelWarmStartsFromDonorDevice(t *testing.T) {
	store := openCache(t)
	tasks := subset(t, workload.ResNet18, 2, 17)
	base := Config{
		Model:    workload.ResNet18,
		Tasks:    tasks,
		Budget:   tuner.Budget{MaxMeasurements: 48},
		NewTuner: randomTunerFactory,
		Cache:    store,
	}
	// Donor pass on a neighboring SKU populates the store.
	if _, err := TuneModel(base, measure.MustNewLocal("rtx-2080-ti"), rng.New(1)); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var seen []*cache.WarmStart
	cfg := base
	cfg.NewTuner = func(task workload.Task, gpu string) (tuner.Tuner, error) {
		return &warmRandom{Random: tuner.Random{BatchSize: 16}, mu: &mu, seen: &seen}, nil
	}
	plan, err := TuneModel(cfg, measure.MustNewLocal(hwspec.TitanXp), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("%d warm starts handed out, want 2", len(seen))
	}
	for _, ws := range seen {
		if ws == nil || len(ws.Seeds) == 0 || ws.Donors[0] != "rtx-2080-ti" {
			t.Fatalf("bad warm start %+v", ws)
		}
	}
	// Warm-started sessions run under the shrunken budget: ceil(48×0.7)=34.
	want := 2 * 34
	if plan.Measurements != want {
		t.Fatalf("warm measurements %d want %d", plan.Measurements, want)
	}
	for _, tp := range plan.Tasks {
		if !tp.WarmStarted || tp.FromCache {
			t.Fatalf("task flags wrong: %+v", tp)
		}
	}
	// The warm pass wrote titan-xp bests back: 2 devices × 2 tasks stored.
	if store.Len() != 4 {
		t.Fatalf("store holds %d entries, want 4", store.Len())
	}
}
