package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/neuralcompile/glimpse/internal/faults"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// fastReliable is the fail-fast endpoint policy the scheduler tests use:
// the dispatcher owns retries and rerouting, so each endpoint attempt
// fails immediately and breakers trip on the first error but recover
// quickly enough for short tests.
func fastReliable() measure.ReliableConfig {
	return measure.ReliableConfig{
		MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: 5 * time.Millisecond, Seed: 1,
	}
}

// chaosEndpoints builds n endpoints hosting every target, each dialing an
// in-process simulator wrapped in the scenario's churn schedule. The
// returned map records every Churn built, keyed by endpoint index, so
// tests can inspect per-endpoint call statistics.
func chaosEndpoints(names []string, sc faults.Scenario) ([]Endpoint, map[int][]*faults.Churn) {
	var mu sync.Mutex
	churns := make(map[int][]*faults.Churn)
	eps := make([]Endpoint, len(names))
	for i := range names {
		i := i
		eps[i] = Endpoint{
			Name: names[i],
			Dial: func(gpu string) (measure.Measurer, error) {
				local, err := measure.NewLocal(gpu)
				if err != nil {
					return nil, err
				}
				m := sc.Wrap(i, local)
				if ch, ok := m.(*faults.Churn); ok {
					mu.Lock()
					churns[i] = append(churns[i], ch)
					mu.Unlock()
				}
				return m, nil
			},
		}
	}
	return eps, churns
}

func endpointNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + "-ep"
		if i >= 26 {
			names[i] = names[i] + string(rune('0'+i/26))
		}
	}
	return names
}

func schedCfg(t *testing.T) Config {
	return Config{
		Model:    workload.ResNet18,
		Tasks:    subset(t, workload.ResNet18, 2, 13, 17),
		Budget:   tuner.Budget{MaxMeasurements: 32},
		NewTuner: randomTunerFactory,
	}
}

// flatBaseline is the reference result: the original flat TuneFleet over
// plain in-process simulators, no scheduler involved.
func flatBaseline(t *testing.T, cfg Config, targets []string, seed int64) []*Plan {
	t.Helper()
	plans, err := TuneFleet(cfg, targets, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

// The sharded scheduler must reproduce the flat fleet's plans exactly —
// same best configs, same accounting — for any shard count, session
// count, and steal setting, because tuning randomness is keyed by
// (gpu, task), not by scheduling.
func TestSchedulerMatchesFlatFleetAnyTopology(t *testing.T) {
	cfg := schedCfg(t)
	targets := append([]string(nil), hwspec.Targets...)
	want := flatBaseline(t, cfg, targets, 11)

	for _, tc := range []struct {
		name string
		sc   SchedulerConfig
	}{
		{"per-target-shards", SchedulerConfig{Shards: 0, SessionsPerShard: 2}},
		{"one-shard", SchedulerConfig{Shards: 1, SessionsPerShard: 4, Steal: true}},
		{"two-shards-steal", SchedulerConfig{Shards: 2, SessionsPerShard: 1, Steal: true}},
		{"two-shards-speculate", SchedulerConfig{Shards: 2, SessionsPerShard: 3, Steal: true, Speculate: true}},
	} {
		tc.sc.Reliable = fastReliable()
		eps, _ := chaosEndpoints(endpointNames(6), faults.Healthy(6, 0))
		s, err := NewScheduler(tc.sc, eps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Run(cfg, targets, rng.New(11))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: sharded plans differ from flat TuneFleet", tc.name)
		}
	}
}

// Under every chaos scenario the scheduler must converge to byte-identical
// plans versus a fault-free run: availability faults change who measures,
// never what a measurement returns.
func TestSchedulerDeterministicUnderChaos(t *testing.T) {
	cfg := schedCfg(t)
	cfg.Tasks = subset(t, workload.ResNet18, 2, 17)
	targets := []string{hwspec.TitanXp, hwspec.RTX3090}
	want := flatBaseline(t, cfg, targets, 23)

	const n = 10
	for _, scenario := range []faults.Scenario{
		faults.Flap(3, n, 0.3, 100*time.Microsecond, 15*time.Millisecond, 8*time.Millisecond),
		faults.Spike(4, n, 0.3, 100*time.Microsecond, 10*time.Millisecond, 3),
		faults.SlowDegrade(5, n, 0.3, 100*time.Microsecond, 300*time.Microsecond),
		faults.Crash(6, n, 0.2, 100*time.Microsecond, 3),
	} {
		eps, _ := chaosEndpoints(endpointNames(n), scenario)
		s, err := NewScheduler(SchedulerConfig{
			Shards: 2, SessionsPerShard: 2, Steal: true, Speculate: true,
			SpeculateAfter: 5 * time.Millisecond, Reliable: fastReliable(),
		}, eps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Run(cfg, targets, rng.New(23))
		if err != nil {
			t.Fatalf("%s: %v", scenario.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: chaos changed the best-found plans", scenario.Name)
		}
		for _, p := range got {
			if !p.Complete() {
				t.Fatalf("%s: plan for %s incomplete under chaos", scenario.Name, p.GPU)
			}
		}
	}
}

// A shard whose only endpoint dies must finish by borrowing endpoints
// from the other shard when stealing is on, and fail its tasks (partial
// plan, not a fatal error) when it is off.
func TestSchedulerStealsEndpointsAcrossShards(t *testing.T) {
	cfg := schedCfg(t)
	cfg.Tasks = subset(t, workload.ResNet18, 7)
	targets := []string{hwspec.TitanXp, hwspec.RTX3090}
	want := flatBaseline(t, cfg, targets, 31)

	build := func(steal bool) (*Scheduler, error) {
		dying := Endpoint{
			Name:  "a-dying",
			Hosts: []string{hwspec.TitanXp},
			Dial: func(gpu string) (measure.Measurer, error) {
				local, err := measure.NewLocal(gpu)
				if err != nil {
					return nil, err
				}
				return faults.NewChurn(local, faults.ChurnConfig{
					Phases: []faults.Phase{{Calls: 1}, {Down: true}},
				}), nil
			},
		}
		healthy := Endpoint{
			Name:  "b-healthy",
			Hosts: []string{hwspec.TitanXp, hwspec.RTX3090},
			Dial:  func(gpu string) (measure.Measurer, error) { return measure.NewLocal(gpu) },
		}
		return NewScheduler(SchedulerConfig{
			Shards: 2, SessionsPerShard: 1, Steal: steal,
			LeaseTimeout: 50 * time.Millisecond, Reliable: fastReliable(),
		}, []Endpoint{dying, healthy})
	}

	s, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run(cfg, targets, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stealing changed the best-found plans")
	}
	if st := s.Stats(); st.EndpointSteals == 0 {
		t.Fatalf("completed without borrowing endpoints: %+v", st)
	}

	s, err = build(false)
	if err != nil {
		t.Fatal(err)
	}
	got, err = s.Run(cfg, targets, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	var titan *Plan
	for _, p := range got {
		if p.GPU == hwspec.TitanXp {
			titan = p
		}
	}
	if titan.FailedTasks == 0 {
		t.Fatal("steal=false run completed titan-xp despite its only endpoint being dead")
	}
}

// A stolen-from endpoint whose device recovers must be re-admitted
// through the breaker's half-open probe and receive work again.
func TestSchedulerReadmitsRecoveredEndpoint(t *testing.T) {
	cfg := schedCfg(t)
	cfg.Tasks = subset(t, workload.ResNet18, 7)
	cfg.Budget = tuner.Budget{MaxMeasurements: 96}
	targets := []string{hwspec.TitanXp}

	var flappy *faults.Churn
	eps := []Endpoint{
		{
			Name: "a-flappy",
			Dial: func(gpu string) (measure.Measurer, error) {
				local, err := measure.NewLocal(gpu)
				if err != nil {
					return nil, err
				}
				flappy = faults.NewChurn(local, faults.ChurnConfig{
					// Up for one call, down for the next four, then healthy
					// forever: the breaker must trip, probe, and re-admit.
					Phases: []faults.Phase{{Calls: 1}, {Calls: 4, Down: true}, {}},
				})
				return flappy, nil
			},
		},
		{
			Name: "b-steady",
			Dial: func(gpu string) (measure.Measurer, error) {
				local, err := measure.NewLocal(gpu)
				if err != nil {
					return nil, err
				}
				// Slow but healthy, so leases still favour the flappy
				// endpoint once it recovers.
				return faults.NewChurn(local, faults.ChurnConfig{PerMeasurement: 200 * time.Microsecond}), nil
			},
		},
	}
	s, err := NewScheduler(SchedulerConfig{
		Shards: 1, SessionsPerShard: 1, Steal: true,
		MaxChunk: 4, Reliable: fastReliable(),
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := flatBaseline(t, cfg, targets, 41)
	got, err := s.Run(cfg, targets, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovery run changed the best-found plans")
	}

	conn := s.slots[0].conns[hwspec.TitanXp]
	if conn == nil {
		t.Fatal("flappy endpoint was never dialed")
	}
	if st := conn.Stats(); st.BreakerOpens == 0 {
		t.Fatalf("breaker never opened on the flappy endpoint: %+v", st)
	}
	if !conn.Ready() {
		t.Fatal("recovered endpoint not Ready at end of run")
	}
	if st := flappy.Stats(); st.Calls <= 5 {
		t.Fatalf("recovered endpoint got only %d calls: never re-admitted after the probe", st.Calls)
	}
}

// tearCheckpointTail simulates a kill mid-append: it truncates the file
// inside the final JSONL record and returns the task name that record
// held, so the test knows which task must be re-measured.
func tearCheckpointTail(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(data, "\n")
	cut := bytes.LastIndexByte(trimmed, '\n') + 1
	last := trimmed[cut:]
	var cl struct {
		Task TaskPlan `json:"task"`
	}
	if err := json.Unmarshal(last, &cl); err != nil {
		t.Fatalf("parse last checkpoint line: %v", err)
	}
	// Keep roughly half the record: invalid JSON, no trailing newline.
	if err := os.WriteFile(path, data[:cut+len(last)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	return cl.Task.TaskName
}

// Satellite: a checkpoint whose writer was killed mid-append must resume
// by skipping the torn record and re-queueing (not dropping) that task.
func TestSchedulerResumesTornCheckpoint(t *testing.T) {
	cfg := schedCfg(t)
	targets := []string{hwspec.TitanXp}
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	eps, _ := chaosEndpoints(endpointNames(3), faults.Healthy(3, 0))
	s, err := NewScheduler(SchedulerConfig{Shards: 1, Steal: true, Reliable: fastReliable()}, eps)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(cfg, targets, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	torn := tearCheckpointTail(t, path)

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != len(cfg.Tasks)-1 {
		t.Fatalf("resumed checkpoint holds %d tasks, want %d", ck2.Len(), len(cfg.Tasks)-1)
	}
	cfg.Checkpoint = ck2

	counters := make(map[string]*countingMeasurer)
	var mu sync.Mutex
	eps2 := []Endpoint{{
		Name: "a-ep",
		Dial: func(gpu string) (measure.Measurer, error) {
			local, err := measure.NewLocal(gpu)
			if err != nil {
				return nil, err
			}
			c := newCounting(local)
			mu.Lock()
			counters[gpu] = c
			mu.Unlock()
			return c, nil
		},
	}}
	s2, err := NewScheduler(SchedulerConfig{Shards: 1, Reliable: fastReliable()}, eps2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Run(cfg, targets, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ResumedTasks != len(cfg.Tasks)-1 {
		t.Fatalf("resumed %d tasks, want %d", got[0].ResumedTasks, len(cfg.Tasks)-1)
	}
	measured := counters[hwspec.TitanXp].measured()
	if measured[torn] == 0 {
		t.Fatalf("torn task %s was dropped instead of re-measured", torn)
	}
	for task, n := range measured {
		if task != torn && n > 0 {
			t.Fatalf("intact task %s re-measured %d times", task, n)
		}
	}
	// The re-measured task converges to the same config as the first run.
	for i, tp := range got[0].Tasks {
		w := want[0].Tasks[i]
		if tp.ConfigIndex != w.ConfigIndex || tp.GFLOPS != w.GFLOPS || tp.TimeMS != w.TimeMS {
			t.Fatalf("task %s diverged across resume: %+v vs %+v", tp.TaskName, tp, w)
		}
	}
}

// Crash-during-checkpoint end to end: session 1 loses its endpoints
// mid-run and its checkpoint tail is torn; session 2 on healthy hardware
// must converge to exactly the fault-free plans.
func TestSchedulerCrashCheckpointScenarioConverges(t *testing.T) {
	cfg := schedCfg(t)
	targets := []string{hwspec.TitanXp, hwspec.RTX3090}
	want := flatBaseline(t, cfg, targets, 61)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	// Every endpoint dies after a handful of calls: some tasks finish
	// and checkpoint, the rest fail when the pool is exhausted.
	crashy := faults.Scenario{Name: "all-crash", Configs: []faults.ChurnConfig{
		{Phases: []faults.Phase{{Calls: 6}, {Down: true}}},
		{Phases: []faults.Phase{{Calls: 9}, {Down: true}}},
		{Phases: []faults.Phase{{Calls: 12}, {Down: true}}},
	}}
	eps, _ := chaosEndpoints(endpointNames(3), crashy)
	s, err := NewScheduler(SchedulerConfig{
		Shards: 2, SessionsPerShard: 2, Steal: true,
		LeaseTimeout: 30 * time.Millisecond, Reliable: fastReliable(),
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(cfg, targets, rng.New(61)); err != nil {
		t.Fatal(err)
	}
	ckLen := ck.Len()
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if ckLen > 0 {
		tearCheckpointTail(t, path)
	}

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	cfg.Checkpoint = ck2
	eps2, _ := chaosEndpoints(endpointNames(3), faults.Healthy(3, 0))
	s2, err := NewScheduler(SchedulerConfig{
		Shards: 2, SessionsPerShard: 2, Steal: true, Reliable: fastReliable(),
	}, eps2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Run(cfg, targets, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		if !p.Complete() {
			t.Fatalf("plan for %s incomplete after resume", p.GPU)
		}
		for j, tp := range p.Tasks {
			w := want[i].Tasks[j]
			if tp.ConfigIndex != w.ConfigIndex || tp.GFLOPS != w.GFLOPS || tp.TimeMS != w.TimeMS {
				t.Fatalf("%s/%s diverged from the fault-free run", p.GPU, tp.TaskName)
			}
		}
	}
}

// A straggling endpoint must not stall a batch: the chunk is re-issued
// speculatively and the faster twin's result wins.
func TestSchedulerSpeculatesOnStragglers(t *testing.T) {
	cfg := schedCfg(t)
	cfg.Tasks = subset(t, workload.ResNet18, 7)
	targets := []string{hwspec.TitanXp}
	want := flatBaseline(t, cfg, targets, 71)

	slow := faults.Scenario{Name: "straggler", Configs: []faults.ChurnConfig{
		{Phases: []faults.Phase{{Delay: 500 * time.Millisecond}}}, // a-ep: everything straggles
		{}, // b-ep: healthy
	}}
	eps, _ := chaosEndpoints(endpointNames(2), slow)
	s, err := NewScheduler(SchedulerConfig{
		Shards: 1, SessionsPerShard: 1, Steal: true, Speculate: true,
		SpeculateAfter: 3 * time.Millisecond, Reliable: fastReliable(),
	}, eps)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := s.Run(cfg, targets, rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("speculation changed the best-found plans")
	}
	st := s.Stats()
	if st.Speculations == 0 || st.SpeculativeWins == 0 {
		t.Fatalf("straggler never twinned: %+v", st)
	}
	// 32 measurements at 500ms per straggled chunk would take many
	// seconds un-twinned; speculation must keep the run well under that.
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("run took %v despite speculation", e)
	}
}

func TestPartitionTargetsBalancedAndDeterministic(t *testing.T) {
	targets := append([]string(nil), hwspec.Targets...)
	a := partitionTargets(targets, 2)
	b := partitionTargets(targets, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("partition not deterministic")
	}
	if len(a) != 2 || len(a[0]) != 2 || len(a[1]) != 2 {
		t.Fatalf("unbalanced shards: %v", a)
	}
	seen := map[string]bool{}
	for _, g := range a {
		for _, name := range g {
			seen[name] = true
		}
	}
	if len(seen) != len(targets) {
		t.Fatalf("partition lost targets: %v", a)
	}
	if p := partitionTargets(targets, 0); len(p) != len(targets) {
		t.Fatalf("Shards<=0 should shard per target, got %v", p)
	}
	if p := partitionTargets(targets, 99); len(p) != len(targets) {
		t.Fatalf("oversized shard count not clamped: %v", p)
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(SchedulerConfig{}, nil); err == nil {
		t.Fatal("empty endpoint pool accepted")
	}
	if _, err := NewScheduler(SchedulerConfig{}, []Endpoint{{Name: "x"}}); err == nil {
		t.Fatal("endpoint without Dial accepted")
	}
}
