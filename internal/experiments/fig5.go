package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// Fig5Cell is one (GPU, model) bar group of Figure 5: output-code
// performance relative to plain AutoTVM when every tuner gets the same
// fixed optimization-time budget per layer.
type Fig5Cell struct {
	GPU, Model string
	AutoTVM    float64 // geomean GFLOPS across the model's grid tasks
	AutoTVMTL  float64
	Glimpse    float64
	RelTL      float64 // AutoTVM-TL / AutoTVM
	RelGlimpse float64 // Glimpse / AutoTVM
}

// Fig5Result aggregates all cells.
type Fig5Result struct {
	BudgetSec float64
	Cells     []Fig5Cell
	GeoRelTL  float64
	GeoRelGl  float64
	MaxRelGl  float64
}

// Fig5 gives each tuner the paper's 100-second per-layer budget and
// compares the resulting code performance: AutoTVM without transfer
// learning, with transfer learning (leave-target-out logs), and Glimpse.
func (e *Env) Fig5() (*Fig5Result, error) {
	const budgetSec = 100.0
	out := &Fig5Result{BudgetSec: budgetSec}
	var relsTL, relsGl []float64
	for _, target := range e.cfg.Targets {
		m, err := measure.NewLocal(target)
		if err != nil {
			return nil, err
		}
		for _, model := range e.cfg.Models {
			tasks, err := e.GridTasks(model)
			if err != nil {
				return nil, err
			}
			perTuner := map[string][]float64{}
			for _, task := range tasks {
				sp, err := space.ForTask(task)
				if err != nil {
					return nil, err
				}
				for _, name := range []string{"autotvm", "autotvm-tl", "glimpse"} {
					tn, err := e.TunerFor(name, task, target)
					if err != nil {
						return nil, err
					}
					res, err := tn.Tune(task, sp, m, tuner.Budget{MaxGPUSeconds: budgetSec},
						e.rngFor(fmt.Sprintf("fig5/%s/%s/%s", target, task.Name(), name)))
					if err != nil {
						return nil, err
					}
					v := res.BestGFLOPS
					if v <= 0 {
						v = 1e-3 // found nothing within budget
					}
					perTuner[name] = append(perTuner[name], v)
				}
			}
			cell := Fig5Cell{
				GPU:       target,
				Model:     model,
				AutoTVM:   metrics.Geomean(perTuner["autotvm"]),
				AutoTVMTL: metrics.Geomean(perTuner["autotvm-tl"]),
				Glimpse:   metrics.Geomean(perTuner["glimpse"]),
			}
			cell.RelTL = cell.AutoTVMTL / cell.AutoTVM
			cell.RelGlimpse = cell.Glimpse / cell.AutoTVM
			relsTL = append(relsTL, cell.RelTL)
			relsGl = append(relsGl, cell.RelGlimpse)
			if cell.RelGlimpse > out.MaxRelGl {
				out.MaxRelGl = cell.RelGlimpse
			}
			out.Cells = append(out.Cells, cell)
			e.logf("fig5: %-14s %-10s TL=%.2fx glimpse=%.2fx", target, model, cell.RelTL, cell.RelGlimpse)
		}
	}
	out.GeoRelTL = metrics.Geomean(relsTL)
	out.GeoRelGl = metrics.Geomean(relsGl)
	return out, nil
}

// Render formats the Figure 5 report.
func (r *Fig5Result) Render() string {
	var sb strings.Builder
	t := metrics.NewTable(
		fmt.Sprintf("Figure 5 — output code performance / AutoTVM, %g s budget per layer", r.BudgetSec),
		"gpu", "model", "autotvm", "autotvm+TL", "glimpse", "TL rel", "glimpse rel")
	for _, c := range r.Cells {
		t.AddRowf(c.GPU, c.Model, c.AutoTVM, c.AutoTVMTL, c.Glimpse,
			fmt.Sprintf("%.2f×", c.RelTL), fmt.Sprintf("%.2f×", c.RelGlimpse))
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "geomean: transfer learning %.2f×, Glimpse %.2f× (max %.2f×)\n",
		r.GeoRelTL, r.GeoRelGl, r.MaxRelGl)
	sb.WriteString("paper: Glimpse geomean 1.40× over AutoTVM (max 2.18×); TL ≈1× and sometimes below\n")
	return sb.String()
}
