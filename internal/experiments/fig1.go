package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/gpusim"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Fig1Result reproduces Figure 1: the best configuration found on one GPU
// is reused on another generation, quantifying the slowdown versus that
// GPU's own optimum (the paper reports 27.79% and 31.33% for ResNet-18 L7
// between Titan Xp and RTX 2080 Ti).
type Fig1Result struct {
	Task       string
	GPUA, GPUB string
	BestA      float64 // GFLOPS of A's optimum on A
	BestB      float64
	AonB       float64 // A's optimum measured on B
	BonA       float64
	SlowdownAB float64 // fraction lost reusing A's optimum on B
	SlowdownBA float64
}

// OracleBest estimates a device's task optimum with a large random sweep
// followed by measurement-guided hill climbing (the simulator makes true
// measurements cheap, so this stands in for the paper's exhaustive view).
func OracleBest(dev *gpusim.Device, task workload.Task, sp *space.Space, samples int, g *rng.RNG) (int64, float64) {
	top := OracleTopK(dev, task, sp, samples, 1, g)
	if len(top) == 0 {
		return -1, 0
	}
	return top[0].Index, top[0].GFLOPS
}

// OracleEntry is one ranked oracle configuration.
type OracleEntry struct {
	Index  int64
	GFLOPS float64
}

// OracleTopK returns the k best valid configurations found by a random
// sweep plus hill climbing, best first.
func OracleTopK(dev *gpusim.Device, task workload.Task, sp *space.Space, samples, k int, g *rng.RNG) []OracleEntry {
	best := map[int64]float64{}
	consider := func(idx int64) {
		if _, seen := best[idx]; seen {
			return
		}
		if r := dev.MeasureIndex(task, sp, idx); r.Valid {
			best[idx] = r.GFLOPS
		}
	}
	for i := 0; i < samples; i++ {
		consider(sp.RandomIndex(g))
	}
	// Local refinement around the running incumbent.
	incumbent, incumbentG := int64(-1), 0.0
	for idx, v := range best {
		if v > incumbentG {
			incumbent, incumbentG = idx, v
		}
	}
	if incumbent >= 0 {
		for i := 0; i < samples/4; i++ {
			cand := sp.Neighbor(incumbent, g)
			consider(cand)
			if v, ok := best[cand]; ok && v > incumbentG {
				incumbent, incumbentG = cand, v
			}
		}
	}
	out := make([]OracleEntry, 0, len(best))
	for idx, v := range best {
		out = append(out, OracleEntry{idx, v})
	}
	sortOracle(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sortOracle(v []OracleEntry) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j].GFLOPS > v[j-1].GFLOPS; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Fig1 runs the cross-hardware reuse study on ResNet-18 L7 between the
// paper's two example GPUs.
func (e *Env) Fig1() (*Fig1Result, error) {
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		return nil, err
	}
	sp, err := space.ForTask(task)
	if err != nil {
		return nil, err
	}
	devA := gpusim.NewDevice(hwspec.MustByName(hwspec.TitanXp))
	devB := gpusim.NewDevice(hwspec.MustByName(hwspec.RTX2080Ti))
	g := e.rngFor("fig1")

	samples := 20000
	topA := OracleTopK(devA, task, sp, samples, 32, g.Split("a"))
	topB := OracleTopK(devB, task, sp, samples, 32, g.Split("b"))
	if len(topA) == 0 || len(topB) == 0 {
		return nil, fmt.Errorf("experiments: fig1 oracle found no valid configs")
	}

	// Reuse follows deployment practice: walk the source GPU's ranked
	// configurations and ship the first binary that launches on the new
	// hardware (e.g. a Turing-tuned kernel can exceed Pascal's 48 KB
	// shared-memory limit).
	reuse := func(src []OracleEntry, dst *gpusim.Device) float64 {
		for _, entry := range src {
			if r := dst.MeasureIndex(task, sp, entry.Index); r.Valid {
				return r.GFLOPS
			}
		}
		return 0
	}

	res := &Fig1Result{
		Task:  task.Name(),
		GPUA:  devA.Spec.Name,
		GPUB:  devB.Spec.Name,
		BestA: topA[0].GFLOPS,
		BestB: topB[0].GFLOPS,
	}
	res.AonB = reuse(topA, devB)
	res.BonA = reuse(topB, devA)
	res.SlowdownAB = 1 - res.AonB/res.BestB
	res.SlowdownBA = 1 - res.BonA/res.BestA
	return res, nil
}

// Render formats the Figure 1 report.
func (r *Fig1Result) Render() string {
	var sb strings.Builder
	t := metrics.NewTable(
		fmt.Sprintf("Figure 1 — cross-hardware reuse of the optimal configuration (%s)", r.Task),
		"direction", "native best (GFLOPS)", "reused (GFLOPS)", "slowdown")
	t.AddRowf(fmt.Sprintf("%s → %s", r.GPUA, r.GPUB), r.BestB, r.AonB,
		fmt.Sprintf("%.2f%%", 100*r.SlowdownAB))
	t.AddRowf(fmt.Sprintf("%s → %s", r.GPUB, r.GPUA), r.BestA, r.BonA,
		fmt.Sprintf("%.2f%%", 100*r.SlowdownBA))
	sb.WriteString(t.String())
	sb.WriteString("paper: 27.79% (Titan Xp → RTX 2080 Ti), 31.33% (RTX 2080 Ti → Titan Xp)\n")
	return sb.String()
}
