package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Table1Row is one model's task inventory.
type Table1Row struct {
	Model    string
	Total    int
	Conv2D   int
	Winograd int
	Dense    int
}

// Table1Result reproduces Table 1: models, per-template task counts, and
// the target GPUs with their generations.
type Table1Result struct {
	Rows []Table1Row
	GPUs []hwspec.Spec
}

// Table1 extracts the inventory.
func (e *Env) Table1() (*Table1Result, error) {
	out := &Table1Result{}
	for _, model := range workload.Models {
		tasks, err := workload.Tasks(model)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Model: model, Total: len(tasks)}
		for _, t := range tasks {
			switch t.Kind {
			case workload.Conv2D:
				row.Conv2D++
			case workload.WinogradConv2D:
				row.Winograd++
			case workload.Dense:
				row.Dense++
			}
		}
		out.Rows = append(out.Rows, row)
	}
	for _, name := range hwspec.Targets {
		out.GPUs = append(out.GPUs, hwspec.MustByName(name))
	}
	return out, nil
}

// Render formats the Table 1 report.
func (r *Table1Result) Render() string {
	var sb strings.Builder
	t := metrics.NewTable("Table 1 — DNN models and tuning tasks (dataset: ImageNet)",
		"model", "tasks", "breakdown")
	for _, row := range r.Rows {
		t.AddRowf(row.Model, row.Total,
			fmt.Sprintf("%d conv2d, %d winograd conv2d, %d dense", row.Conv2D, row.Winograd, row.Dense))
	}
	sb.WriteString(t.String())
	sb.WriteByte('\n')
	g := metrics.NewTable("Table 1 — target GPUs", "hardware", "generation (gencode)")
	for _, spec := range r.GPUs {
		g.AddRowf(spec.Name, fmt.Sprintf("%s (%s)", spec.Generation, spec.Gencode))
	}
	sb.WriteString(g.String())
	return sb.String()
}
