package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// ScalingPoint is the cumulative tuning cost after deploying to n GPUs.
type ScalingPoint struct {
	NumGPUs        int
	AutoTVMSeconds float64 // Σ per-GPU from-scratch tuning
	GlimpseSeconds float64 // Σ per-GPU Blueprint-guided tuning
	Speedup        float64
}

// ScalingResult quantifies the paper's §1 economics: hardware-agnostic
// tuning costs scale linearly with the number of target GPUs, while
// Glimpse's per-target cost is much smaller because the Blueprint lets
// one offline investment transfer to every new datasheet.
type ScalingResult struct {
	Model  string
	Points []ScalingPoint
}

// Scaling tunes one model's grid tasks on a growing fleet with both
// AutoTVM and Glimpse, accumulating simulated GPU time to a common
// quality target per task.
func (e *Env) Scaling() (*ScalingResult, error) {
	model := e.cfg.Models[0]
	tasks, err := e.GridTasks(model)
	if err != nil {
		return nil, err
	}
	out := &ScalingResult{Model: model}
	cumAutoTVM, cumGlimpse := 0.0, 0.0
	budget := tuner.Budget{
		MaxMeasurements: e.cfg.MaxMeasurements,
		Patience:        e.cfg.Patience,
		Epsilon:         e.cfg.Epsilon,
	}
	for n, target := range e.cfg.Targets {
		m, err := measure.NewLocal(target)
		if err != nil {
			return nil, err
		}
		for _, task := range tasks {
			sp, err := space.ForTask(task)
			if err != nil {
				return nil, err
			}
			results := map[string]*tuner.Result{}
			for _, name := range []string{"autotvm", "glimpse"} {
				tn, err := e.TunerFor(name, task, target)
				if err != nil {
					return nil, err
				}
				res, err := tn.Tune(task, sp, m, budget,
					e.rngFor(fmt.Sprintf("scaling/%s/%s/%s", name, target, task.Name())))
				if err != nil {
					return nil, err
				}
				results[name] = res
			}
			// Effort to the weaker tuner's 95% quality, as in Fig. 9a.
			target95 := results["autotvm"].BestGFLOPS
			if g := results["glimpse"].BestGFLOPS; g < target95 {
				target95 = g
			}
			target95 *= 0.95
			_, aSec := EffortToTarget(results["autotvm"], target95)
			_, gSec := EffortToTarget(results["glimpse"], target95)
			cumAutoTVM += aSec
			cumGlimpse += gSec
		}
		out.Points = append(out.Points, ScalingPoint{
			NumGPUs:        n + 1,
			AutoTVMSeconds: cumAutoTVM,
			GlimpseSeconds: cumGlimpse,
			Speedup:        cumAutoTVM / cumGlimpse,
		})
		e.logf("scaling: %d GPUs — autotvm %.0fs vs glimpse %.0fs", n+1, cumAutoTVM, cumGlimpse)
	}
	return out, nil
}

// Render formats the scaling report.
func (r *ScalingResult) Render() string {
	var sb strings.Builder
	t := metrics.NewTable(
		fmt.Sprintf("Fleet-scaling economics (%s): cumulative tuning cost vs fleet size", r.Model),
		"GPUs", "autotvm (GPU s)", "glimpse (GPU s)", "saved", "speedup")
	for _, p := range r.Points {
		t.AddRowf(p.NumGPUs,
			fmt.Sprintf("%.0f", p.AutoTVMSeconds),
			fmt.Sprintf("%.0f", p.GlimpseSeconds),
			fmt.Sprintf("%.0f", p.AutoTVMSeconds-p.GlimpseSeconds),
			fmt.Sprintf("%.2f×", p.Speedup))
	}
	sb.WriteString(t.String())
	sb.WriteString("the paper's §1 motivation: per-target cost compounds across a fleet; Blueprint transfer amortizes it\n")
	return sb.String()
}
