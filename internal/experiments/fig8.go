package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/blueprint"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/metrics"
)

// Fig8Result is the Blueprint design-space exploration of Figure 8:
// information loss versus embedding size, plus the chosen knee.
type Fig8Result struct {
	Points    []blueprint.DSEPoint
	ChosenDim int
	KneeLoss  float64
}

// Fig8 sweeps the PCA dimension over the GPU registry.
func (e *Env) Fig8() (*Fig8Result, error) {
	specs := hwspec.Registry()
	points, err := blueprint.DSE(specs)
	if err != nil {
		return nil, err
	}
	dim, err := blueprint.ChooseDim(specs, 0.005)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{Points: points, ChosenDim: dim}
	for _, p := range points {
		if p.Dim == dim {
			out.KneeLoss = p.Loss
		}
	}
	return out, nil
}

// Render formats the Figure 8 report.
func (r *Fig8Result) Render() string {
	var sb strings.Builder
	t := metrics.NewTable(
		"Figure 8 — Blueprint DSE: information loss vs embedding size",
		"dim", "size %", "info loss (RMSE)", "explained var", "")
	for _, p := range r.Points {
		marker := ""
		if p.Dim == r.ChosenDim {
			marker = "★ chosen"
		}
		t.AddRowf(p.Dim, fmt.Sprintf("%.0f%%", 100*p.RelativeSize),
			fmt.Sprintf("%.5f", p.Loss), fmt.Sprintf("%.4f", p.Explained), marker)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "chosen dim %d: loss %.5f (paper targets <0.5%% loss at the knee)\n", r.ChosenDim, r.KneeLoss)
	return sb.String()
}
