package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/cache"
	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
)

// WarmCacheRow compares one task's cold tuning run against a warm-started
// run seeded from donor devices that tuned the same workload first.
type WarmCacheRow struct {
	Task     string
	ColdBest float64 // best GFLOPS, full budget, no cache
	WarmBest float64 // best GFLOPS, shrunken budget, donor-seeded
	ColdMeas int
	WarmMeas int
	// ColdCurve / WarmCurve are the best-found GFLOPS after each
	// measurement step (the quantity transfer figures plot).
	ColdCurve []float64
	WarmCurve []float64
	// WarmToColdBest is how many measurements the warm run needed to match
	// the cold run's final best (0 = never matched within its budget).
	WarmToColdBest int
}

// WarmCacheResult aggregates the warm-vs-cold study.
type WarmCacheResult struct {
	Target   string
	Donors   []string
	Budget   int
	WarmFrac float64
	Rows     []WarmCacheRow
	// Matched counts rows whose warm run reached the cold best.
	Matched int
	// MeanSavings is the mean fraction of measurements saved by warm runs
	// that matched the cold best (1 - warm/cold measurements).
	MeanSavings float64
}

// WarmCache runs the tuned-config cache's serving scenario end to end: the
// donor GPUs tune each grid task of the first model and publish their
// results into a store; the (excluded) target GPU then tunes the same
// tasks twice — cold with the full budget, and warm-started from its
// nearest donors under the shrunken WarmBudgetFrac budget. This is the
// paper's Fig. 5 leave-one-out transfer setting recast as infrastructure:
// the donors' sessions are the cache's contents, not a training corpus.
func (e *Env) WarmCache() (*WarmCacheResult, error) {
	targets := e.cfg.Targets
	if len(targets) < 2 {
		return nil, fmt.Errorf("experiments: warmcache needs ≥2 targets (donors + query), have %d", len(targets))
	}
	query := targets[0]
	donors := targets[1:]
	out := &WarmCacheResult{
		Target:   query,
		Donors:   append([]string(nil), donors...),
		Budget:   e.cfg.MaxMeasurements,
		WarmFrac: cache.WarmBudgetFrac,
	}
	budget := tuner.Budget{MaxMeasurements: e.cfg.MaxMeasurements}
	store := cache.NewMemory()

	model := e.cfg.Models[0]
	tasks, err := e.GridTasks(model)
	if err != nil {
		return nil, err
	}

	glimpseFor := func(target string) (*core.Glimpse, error) {
		tk, err := e.Toolkit(target)
		if err != nil {
			return nil, err
		}
		gl := tk.Tuner()
		gl.BatchSize = e.cfg.BatchSize
		gl.Tracer = e.cfg.Tracer
		return gl, nil
	}

	// Donor passes fill the store.
	for _, donor := range donors {
		m, err := measure.NewLocal(donor)
		if err != nil {
			return nil, err
		}
		for _, task := range tasks {
			sp, err := space.ForTask(task)
			if err != nil {
				return nil, err
			}
			gl, err := glimpseFor(donor)
			if err != nil {
				return nil, err
			}
			res, err := gl.Tune(task, sp, m, budget,
				e.rngFor(fmt.Sprintf("warmcache/donor/%s/%s", donor, task.Name())))
			if err != nil {
				return nil, err
			}
			if ce, ok := cache.EntryFromResult(cache.Fingerprint(task, sp), donor, res, sp); ok {
				ce.Model = task.Model
				ce.TaskIndex = task.Index
				if _, err := store.Put(ce); err != nil {
					return nil, err
				}
			}
			e.logf("warmcache: donor %-14s %-22s best %.0f GFLOPS", donor, task.Name(), res.BestGFLOPS)
		}
	}

	curve := func(res *tuner.Result) []float64 {
		var c []float64
		for _, h := range res.History {
			c = append(c, h.BestGFLOPS)
		}
		return c
	}

	m, err := measure.NewLocal(query)
	if err != nil {
		return nil, err
	}
	var savings []float64
	for _, task := range tasks {
		sp, err := space.ForTask(task)
		if err != nil {
			return nil, err
		}
		cold, err := func() (*tuner.Result, error) {
			gl, err := glimpseFor(query)
			if err != nil {
				return nil, err
			}
			return gl.Tune(task, sp, m, budget,
				e.rngFor(fmt.Sprintf("warmcache/cold/%s", task.Name())))
		}()
		if err != nil {
			return nil, err
		}

		gl, err := glimpseFor(query)
		if err != nil {
			return nil, err
		}
		fp := cache.Fingerprint(task, sp)
		ws := store.WarmStart(fp, query, sp, 3)
		if ws == nil {
			return nil, fmt.Errorf("experiments: no donors for %s despite donor passes", task.Name())
		}
		gl.SetWarmStart(ws)
		warm, err := gl.Tune(task, sp, m, cache.ShrinkBudget(budget, cache.WarmBudgetFrac),
			e.rngFor(fmt.Sprintf("warmcache/warm/%s", task.Name())))
		if err != nil {
			return nil, err
		}

		row := WarmCacheRow{
			Task:      task.Name(),
			ColdBest:  cold.BestGFLOPS,
			WarmBest:  warm.BestGFLOPS,
			ColdMeas:  cold.Measurements,
			WarmMeas:  warm.Measurements,
			ColdCurve: curve(cold),
			WarmCurve: curve(warm),
		}
		for _, h := range warm.History {
			if h.BestGFLOPS >= cold.BestGFLOPS {
				row.WarmToColdBest = h.Measurements
				break
			}
		}
		if row.WarmToColdBest > 0 && cold.Measurements > 0 {
			out.Matched++
			savings = append(savings, 1-float64(row.WarmToColdBest)/float64(cold.Measurements))
		}
		out.Rows = append(out.Rows, row)
		e.logf("warmcache: query %-14s %-22s cold %.0f@%d warm %.0f@%d (match@%d)",
			query, task.Name(), row.ColdBest, row.ColdMeas, row.WarmBest, row.WarmMeas, row.WarmToColdBest)
	}
	out.MeanSavings = mean(savings)
	return out, nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// Render formats the warm-vs-cold report.
func (r *WarmCacheResult) Render() string {
	var sb strings.Builder
	t := metrics.NewTable(
		fmt.Sprintf("Warm-start cache — %s seeded by %s (%d measurements cold, %.0f%% warm)",
			r.Target, strings.Join(r.Donors, "+"), r.Budget, 100*r.WarmFrac),
		"task", "cold best", "warm best", "cold meas", "warm meas", "warm matches cold @")
	for _, row := range r.Rows {
		match := "never"
		if row.WarmToColdBest > 0 {
			match = fmt.Sprintf("%d", row.WarmToColdBest)
		}
		t.AddRowf(row.Task, fmt.Sprintf("%.0f", row.ColdBest), fmt.Sprintf("%.0f", row.WarmBest),
			row.ColdMeas, row.WarmMeas, match)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "warm run matched the cold run's final best on %d/%d tasks; "+
		"mean measurement savings when matched: %.0f%%\n",
		r.Matched, len(r.Rows), 100*r.MeanSavings)
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %s cold %s\n", row.Task, spark(row.ColdCurve))
		fmt.Fprintf(&sb, "  %s warm %s\n", strings.Repeat(" ", len(row.Task)), spark(row.WarmCurve))
	}
	return sb.String()
}

// spark renders a best-found curve as a compact numeric series.
func spark(c []float64) string {
	var parts []string
	for _, v := range c {
		parts = append(parts, fmt.Sprintf("%.0f", v))
	}
	return strings.Join(parts, " → ")
}
