package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/metrics"
)

// Fig6Cell is one (GPU, model) bar of Figure 6: a tuner's search steps —
// hardware measurements until it first matches the common quality target
// (95% of the weakest tuner's final best) — relative to AutoTVM's.
type Fig6Cell struct {
	GPU, Model string
	Steps      map[string]int     // tuner → total measurements to convergence
	Relative   map[string]float64 // tuner → fraction of AutoTVM's steps
}

// Fig6Result aggregates the search-step comparison.
type Fig6Result struct {
	Tuners  []string
	Cells   []Fig6Cell
	Geomean map[string]float64 // tuner → geomean relative steps
}

// Fig6 computes search steps from a grid (the grid must contain autotvm).
func Fig6(grid *Grid) (*Fig6Result, error) {
	out := &Fig6Result{
		Tuners:  grid.Tuners,
		Geomean: map[string]float64{},
	}
	rels := map[string][]float64{}
	for _, gpu := range grid.Cfg.Targets {
		for _, model := range grid.Cfg.Models {
			cell := Fig6Cell{GPU: gpu, Model: model,
				Steps: map[string]int{}, Relative: map[string]float64{}}
			for _, name := range grid.Tuners {
				total, _, err := grid.EffortStats(name, gpu, model)
				if err != nil {
					return nil, err
				}
				cell.Steps[name] = total
			}
			base := cell.Steps["autotvm"]
			if base == 0 {
				return nil, fmt.Errorf("experiments: fig6 needs autotvm in the grid")
			}
			for _, name := range grid.Tuners {
				rel := float64(cell.Steps[name]) / float64(base)
				cell.Relative[name] = rel
				rels[name] = append(rels[name], rel)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	for name, v := range rels {
		out.Geomean[name] = metrics.Geomean(v)
	}
	return out, nil
}

// Render formats the Figure 6 report.
func (r *Fig6Result) Render() string {
	var sb strings.Builder
	headers := append([]string{"gpu", "model"}, r.Tuners...)
	t := metrics.NewTable("Figure 6 — search steps / AutoTVM (lower is better)", headers...)
	for _, c := range r.Cells {
		row := []string{c.GPU, c.Model}
		for _, name := range r.Tuners {
			row = append(row, fmt.Sprintf("%.1f%%", 100*c.Relative[name]))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean", ""}
	for _, name := range r.Tuners {
		row = append(row, fmt.Sprintf("%.1f%%", 100*r.Geomean[name]))
	}
	t.AddRow(row...)
	sb.WriteString(t.String())
	sb.WriteString("paper geomeans: chameleon 50.3%, glimpse 19.7% of AutoTVM's steps (5.07× / 2.55× reductions)\n")
	return sb.String()
}
