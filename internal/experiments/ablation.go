package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// AblationRow is one Glimpse variant's outcome on the ablation workload.
type AblationRow struct {
	Variant    string
	BestGFLOPS float64 // geomean over tasks
	InvalidPct float64 // invalid measurements, percent
	GPUSeconds float64
}

// AblationResult isolates each Glimpse component (§3.1–§3.3): the full
// system against variants with the Blueprint prior, the neural
// acquisition, or the ensemble sampler disabled.
type AblationResult struct {
	Target string
	Budget int
	Rows   []AblationRow
}

// Ablation runs the component study on the first configured target.
func (e *Env) Ablation() (*AblationResult, error) {
	target := e.cfg.Targets[0]
	tk, err := e.Toolkit(target)
	if err != nil {
		return nil, err
	}
	m, err := measure.NewLocal(target)
	if err != nil {
		return nil, err
	}
	tasks, err := e.GridTasks(e.cfg.Models[0])
	if err != nil {
		return nil, err
	}
	// The components' value is sample efficiency, so the ablation runs at
	// a quarter of the grid budget: differences at convergence wash out.
	measurements := e.cfg.MaxMeasurements / 4
	if measurements < 32 {
		measurements = 32
	}
	budget := tuner.Budget{MaxMeasurements: measurements}

	variants := []struct {
		name  string
		build func() *core.Glimpse
	}{
		{"glimpse (full)", func() *core.Glimpse { return tk.Tuner() }},
		{"w/o blueprint prior", func() *core.Glimpse {
			g := tk.Tuner()
			g.DisablePrior = true
			return g
		}},
		{"w/o neural acquisition (EI)", func() *core.Glimpse {
			g := tk.Tuner()
			g.DisableAcq = true
			return g
		}},
		{"w/o ensemble sampling", func() *core.Glimpse {
			g := tk.Tuner()
			g.DisableSampler = true
			return g
		}},
	}

	out := &AblationResult{Target: target, Budget: measurements}
	for _, v := range variants {
		var bests []float64
		measured, invalid := 0, 0
		gpuSec := 0.0
		for _, task := range tasks {
			sp, err := space.ForTask(task)
			if err != nil {
				return nil, err
			}
			res, err := v.build().Tune(task, sp, m, budget,
				e.rngFor(fmt.Sprintf("ablation/%s/%s", v.name, task.Name())))
			if err != nil {
				return nil, err
			}
			best := res.BestGFLOPS
			if best <= 0 {
				best = 1e-3
			}
			bests = append(bests, best)
			measured += res.Measurements
			invalid += res.Invalid
			gpuSec += res.GPUSeconds
		}
		row := AblationRow{
			Variant:    v.name,
			BestGFLOPS: metrics.Geomean(bests),
			GPUSeconds: gpuSec,
		}
		if measured > 0 {
			row.InvalidPct = 100 * float64(invalid) / float64(measured)
		}
		out.Rows = append(out.Rows, row)
		e.logf("ablation: %-28s best=%7.0f invalid=%.1f%%", v.name, row.BestGFLOPS, row.InvalidPct)
	}
	return out, nil
}

// Render formats the ablation report.
func (r *AblationResult) Render() string {
	var sb strings.Builder
	t := metrics.NewTable(
		fmt.Sprintf("Component ablation on %s (%d measurements/task)", r.Target, r.Budget),
		"variant", "best GFLOPS (geomean)", "invalid %", "GPU s")
	for _, row := range r.Rows {
		t.AddRowf(row.Variant, fmt.Sprintf("%.0f", row.BestGFLOPS),
			fmt.Sprintf("%.1f%%", row.InvalidPct), fmt.Sprintf("%.0f", row.GPUSeconds))
	}
	sb.WriteString(t.String())
	sb.WriteString("expected: disabling the prior hurts early quality; disabling the sampler inflates invalid %\n")
	return sb.String()
}

// TaskListForModel exposes the grid task selection (used by the CLI when
// printing what an experiment will run).
func (e *Env) TaskListForModel(model string) ([]workload.Task, error) {
	return e.GridTasks(model)
}
