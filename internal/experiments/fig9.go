package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/metrics"
)

// Fig9Result is the end-to-end evaluation: (a) optimization-time
// improvement over AutoTVM per model, and (b) inference-speed improvement
// of the produced binaries, both geomeaned over the target GPUs.
type Fig9Result struct {
	Tuners []string
	Models []string
	// TimeImprovement[tuner][model] = AutoTVM optimization time / tuner's.
	TimeImprovement map[string]map[string]float64
	// InferenceSpeed[tuner][model] = AutoTVM latency / tuner latency.
	InferenceSpeed map[string]map[string]float64
	// Geomeans across models.
	TimeGeomean      map[string]float64
	InferenceGeomean map[string]float64
}

// Fig9 computes both panels from a grid containing autotvm.
func Fig9(grid *Grid) (*Fig9Result, error) {
	out := &Fig9Result{
		Tuners:           grid.Tuners,
		Models:           grid.Cfg.Models,
		TimeImprovement:  map[string]map[string]float64{},
		InferenceSpeed:   map[string]map[string]float64{},
		TimeGeomean:      map[string]float64{},
		InferenceGeomean: map[string]float64{},
	}
	for _, name := range grid.Tuners {
		out.TimeImprovement[name] = map[string]float64{}
		out.InferenceSpeed[name] = map[string]float64{}
		var timeRels, infRels []float64
		for _, model := range grid.Cfg.Models {
			var tRel, iRel []float64
			for _, gpu := range grid.Cfg.Targets {
				_, baseTime, err := grid.EffortStats("autotvm", gpu, model)
				if err != nil {
					return nil, err
				}
				_, tTime, err := grid.EffortStats(name, gpu, model)
				if err != nil {
					return nil, err
				}
				tRel = append(tRel, baseTime/tTime)

				baseLat, err := grid.ModelLatencyMS("autotvm", gpu, model)
				if err != nil {
					return nil, err
				}
				tLat, err := grid.ModelLatencyMS(name, gpu, model)
				if err != nil {
					return nil, err
				}
				iRel = append(iRel, baseLat/tLat)
			}
			out.TimeImprovement[name][model] = metrics.Geomean(tRel)
			out.InferenceSpeed[name][model] = metrics.Geomean(iRel)
			timeRels = append(timeRels, out.TimeImprovement[name][model])
			infRels = append(infRels, out.InferenceSpeed[name][model])
		}
		out.TimeGeomean[name] = metrics.Geomean(timeRels)
		out.InferenceGeomean[name] = metrics.Geomean(infRels)
	}
	return out, nil
}

// Render formats both Figure 9 panels.
func (r *Fig9Result) Render() string {
	var sb strings.Builder
	headers := append([]string{"tuner"}, r.Models...)
	headers = append(headers, "geomean")

	ta := metrics.NewTable("Figure 9a — optimization time improvement / AutoTVM", headers...)
	for _, name := range r.Tuners {
		row := []string{name}
		for _, model := range r.Models {
			row = append(row, fmt.Sprintf("%.2f×", r.TimeImprovement[name][model]))
		}
		row = append(row, fmt.Sprintf("%.2f×", r.TimeGeomean[name]))
		ta.AddRow(row...)
	}
	sb.WriteString(ta.String())
	sb.WriteString("paper geomeans: chameleon 4.45×, dgp 3.50×, glimpse 6.73×\n\n")

	tb := metrics.NewTable("Figure 9b — inference speed of output binaries / AutoTVM", headers...)
	for _, name := range r.Tuners {
		row := []string{name}
		for _, model := range r.Models {
			row = append(row, fmt.Sprintf("%.3f×", r.InferenceSpeed[name][model]))
		}
		row = append(row, fmt.Sprintf("%.3f×", r.InferenceGeomean[name]))
		tb.AddRow(row...)
	}
	sb.WriteString(tb.String())
	sb.WriteString("paper geomeans: chameleon 1.047×, dgp 1.058×, glimpse 1.058× (glimpse ties or beats every baseline)\n")
	return sb.String()
}
