// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated-GPU substrate: Fig. 1 (cross-hardware
// reuse), Fig. 4 (initial configurations), Fig. 5 (transfer learning),
// Fig. 6 (search steps), Fig. 7 (invalid configurations), Fig. 8
// (Blueprint DSE), Fig. 9a/9b (end-to-end optimization time and inference
// speed), Table 1 (task inventory), and Table 2 (Hyper-Volume).
//
// Each experiment returns a typed result with a Render method; cmd/
// experiments prints them, and bench_test.go at the repository root wires
// one benchmark per experiment.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/rng"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/telemetry"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Config scales the experiment harness. The zero value (plus a seed) gives
// a laptop-scale run that preserves the paper's shapes; raising the knobs
// approaches the paper's full budgets.
type Config struct {
	Seed    int64
	Targets []string // default: the four Table 1 GPUs
	Models  []string // default: alexnet, resnet-18, vgg-16
	// TasksPerModel selects an evenly spaced task subset per model for the
	// grid experiments (0 = every task; default 4).
	TasksPerModel int
	// MaxMeasurements caps hardware measurements per tuning run (default 192).
	MaxMeasurements int
	// BatchSize is measurements per tuner step (default 16).
	BatchSize int
	// Patience/Epsilon define convergence (default 4 batches / 1%).
	Patience int
	Epsilon  float64
	// TransferSamples per source GPU for the TL/DGP corpora (default 120).
	TransferSamples int
	// TransferGPUs is how many leave-target-out sources feed transfer
	// corpora (default 2).
	TransferGPUs int
	// Toolkit overrides Glimpse's offline training configuration.
	Toolkit core.ToolkitConfig
	// Progress, when set, receives one line per completed tuning run.
	Progress io.Writer
	// Tracer, when set, records per-stage spans of every Glimpse tuning
	// loop the harness runs (cmd/experiments -trace). Observation only:
	// traced and untraced runs produce identical tables.
	Tracer *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if len(c.Targets) == 0 {
		c.Targets = append([]string(nil), hwspec.Targets...)
	}
	if len(c.Models) == 0 {
		c.Models = append([]string(nil), workload.Models...)
	}
	if c.TasksPerModel == 0 {
		c.TasksPerModel = 4
	}
	if c.MaxMeasurements <= 0 {
		c.MaxMeasurements = 192
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Patience <= 0 {
		c.Patience = 4
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.01
	}
	if c.TransferSamples <= 0 {
		c.TransferSamples = 120
	}
	if c.TransferGPUs <= 0 {
		c.TransferGPUs = 2
	}
	return c
}

// Env caches the expensive shared artifacts (toolkits, transfer corpora)
// across experiments.
type Env struct {
	cfg Config

	mu        sync.Mutex
	toolkits  map[string]*core.Toolkit
	transfers map[string]*tuner.TransferData
}

// NewEnv builds an experiment environment.
func NewEnv(cfg Config) *Env {
	return &Env{
		cfg:       cfg.withDefaults(),
		toolkits:  map[string]*core.Toolkit{},
		transfers: map[string]*tuner.TransferData{},
	}
}

// Cfg returns the resolved configuration.
func (e *Env) Cfg() Config { return e.cfg }

func (e *Env) logf(format string, args ...interface{}) {
	if e.cfg.Progress != nil {
		//glint:ignore errdrop -- best-effort progress reporting; a broken progress sink must not abort an experiment
		fmt.Fprintf(e.cfg.Progress, format+"\n", args...)
	}
}

// rngFor derives a deterministic stream for a labelled sub-experiment.
func (e *Env) rngFor(label string) *rng.RNG {
	return rng.New(e.cfg.Seed).Split(label)
}

// Toolkit returns (training on first use) Glimpse's offline artifacts for
// a target GPU.
func (e *Env) Toolkit(target string) (*core.Toolkit, error) {
	e.mu.Lock()
	tk, ok := e.toolkits[target]
	e.mu.Unlock()
	if ok {
		return tk, nil
	}
	e.logf("training Glimpse toolkit for %s (blueprint + prior + meta-acq)...", target)
	cfg := e.cfg.Toolkit
	if cfg.Prior.Dataset.SamplesPerTask == 0 {
		cfg.Prior = prior.TrainConfig{
			Dataset: prior.DatasetConfig{SamplesPerTask: 150, TopK: 16},
			Epochs:  250,
		}
	}
	tk, err := core.TrainToolkit(target, cfg, e.rngFor("toolkit/"+target))
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.toolkits[target] = tk
	e.mu.Unlock()
	return tk, nil
}

// GridTasks returns the task subset a model contributes to the grid
// experiments: evenly spaced over the task list so conv, winograd, and
// dense templates are all represented.
func (e *Env) GridTasks(model string) ([]workload.Task, error) {
	tasks, err := workload.Tasks(model)
	if err != nil {
		return nil, err
	}
	n := e.cfg.TasksPerModel
	if n <= 0 || n >= len(tasks) {
		return tasks, nil
	}
	out := make([]workload.Task, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, tasks[i*len(tasks)/n])
	}
	return out, nil
}

// sourceTasks picks up to n same-template tasks from models other than the
// target task's network — the paper's leave-the-target-network-out rule.
func sourceTasks(task workload.Task, n int) []workload.Task {
	var out []workload.Task
	for _, model := range workload.Models {
		if model == task.Model {
			continue
		}
		for _, t := range workload.MustTasks(model) {
			if t.Kind == task.Kind {
				out = append(out, t)
			}
		}
	}
	if len(out) > n {
		stride := len(out) / n
		picked := make([]workload.Task, 0, n)
		for i := 0; i < n; i++ {
			picked = append(picked, out[i*stride])
		}
		out = picked
	}
	return out
}

// transferCorpus measures random configurations of the source tasks on the
// given GPUs. Same-template tasks share a featurization width, so their
// logs feed one transferable cost model (exactly AutoTVM's TL setting).
func (e *Env) transferCorpus(srcTasks []workload.Task, gpus []string, samplesPer int, g *rng.RNG) (*tuner.TransferData, error) {
	td := &tuner.TransferData{}
	for _, gpu := range gpus {
		local, err := measure.NewLocal(gpu)
		if err != nil {
			return nil, err
		}
		for _, src := range srcTasks {
			sp, err := space.ForTask(src)
			if err != nil {
				return nil, err
			}
			for j := 0; j < samplesPer; j++ {
				idx := sp.RandomIndex(g)
				res, err := local.MeasureBatch(src, sp, []int64{idx})
				if err != nil {
					return nil, err
				}
				v := 0.0
				if res[0].Valid {
					v = res[0].GFLOPS
				}
				td.Features = append(td.Features, sp.FeaturesAt(idx))
				td.GFLOPS = append(td.GFLOPS, v)
			}
		}
	}
	return td, nil
}

// TransferFor builds (and caches) AutoTVM's transfer-learning corpus for
// one task: logs of *other networks'* same-template tasks on *other GPUs*
// — "logs from all but the combination of target network and hardware"
// (Fig. 5).
func (e *Env) TransferFor(task workload.Task, target string) (*tuner.TransferData, error) {
	key := fmt.Sprintf("tl|%v|%s|%s", task.Kind, task.Model, target)
	e.mu.Lock()
	td, ok := e.transfers[key]
	e.mu.Unlock()
	if ok {
		return td, nil
	}
	pool := hwspec.TrainingPool(target)
	stride := len(pool) / e.cfg.TransferGPUs
	if stride < 1 {
		stride = 1
	}
	var gpus []string
	for i := 0; i < e.cfg.TransferGPUs && i*stride < len(pool); i++ {
		gpus = append(gpus, pool[i*stride].Name)
	}
	srcs := sourceTasks(task, 3)
	samples := e.cfg.TransferSamples / maxInt(1, len(srcs))
	td, err := e.transferCorpus(srcs, gpus, maxInt(20, samples), e.rngFor("transfer/"+key))
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.transfers[key] = td
	e.mu.Unlock()
	return td, nil
}

// DGPSourceFor builds DGP's pretraining corpus: historical logs of other
// networks' same-template tasks on the *target* GPU — Sun et al.'s
// cross-layer, single-GPU transfer setting.
func (e *Env) DGPSourceFor(task workload.Task, target string) (*tuner.TransferData, error) {
	key := fmt.Sprintf("dgp|%v|%s|%s", task.Kind, task.Model, target)
	e.mu.Lock()
	td, ok := e.transfers[key]
	e.mu.Unlock()
	if ok {
		return td, nil
	}
	// DGP's corpus is same-hardware history, so it can afford to be richer
	// than the cross-hardware TL corpus: full samples per source task.
	srcs := sourceTasks(task, 3)
	td, err := e.transferCorpus(srcs, []string{target}, e.cfg.TransferSamples, e.rngFor("transfer/"+key))
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.transfers[key] = td
	e.mu.Unlock()
	return td, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TunerFor instantiates a tuner by name for one (task, target) pair.
// Known names: random, autotvm, autotvm-tl, chameleon, dgp, glimpse.
func (e *Env) TunerFor(name string, task workload.Task, target string) (tuner.Tuner, error) {
	switch name {
	case "random":
		return tuner.Random{BatchSize: e.cfg.BatchSize}, nil
	case "autotvm":
		return tuner.AutoTVM{BatchSize: e.cfg.BatchSize}, nil
	case "autotvm-tl":
		td, err := e.TransferFor(task, target)
		if err != nil {
			return nil, err
		}
		return tuner.AutoTVM{BatchSize: e.cfg.BatchSize, Transfer: td}, nil
	case "chameleon":
		return tuner.Chameleon{BatchSize: e.cfg.BatchSize}, nil
	case "dgp":
		td, err := e.DGPSourceFor(task, target)
		if err != nil {
			return nil, err
		}
		return tuner.DGP{BatchSize: e.cfg.BatchSize, Source: td}, nil
	case "glimpse":
		tk, err := e.Toolkit(target)
		if err != nil {
			return nil, err
		}
		gl := tk.Tuner()
		gl.BatchSize = e.cfg.BatchSize
		gl.Tracer = e.cfg.Tracer
		return gl, nil
	default:
		return nil, fmt.Errorf("experiments: unknown tuner %q", name)
	}
}

// SortDesc returns a copy of v sorted descending (Fig. 4's presentation).
func SortDesc(v []float64) []float64 {
	out := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
