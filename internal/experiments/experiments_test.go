package experiments

import (
	"strings"
	"sync"
	"testing"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/prior"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// smallEnv is a reduced-scale environment shared across tests: one target,
// one model, tiny toolkit training.
var (
	envOnce sync.Once
	envInst *Env
)

func smallEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		var priorTasks []workload.Task
		for _, l := range []int{2, 5, 7, 9, 13, 15, 17} {
			task, err := workload.TaskByIndex(workload.ResNet18, l)
			if err != nil {
				panic(err)
			}
			priorTasks = append(priorTasks, task)
		}
		envInst = NewEnv(Config{
			Seed:            99,
			Targets:         []string{hwspec.TitanXp},
			Models:          []string{workload.ResNet18},
			TasksPerModel:   2,
			MaxMeasurements: 64,
			BatchSize:       16,
			TransferSamples: 60,
			TransferGPUs:    1,
			Toolkit: core.ToolkitConfig{
				TrainGPUs: []string{"gtx-1080", "gtx-1080-ti", "rtx-2070", "rtx-2080",
					"rtx-2080-ti", "rtx-3080"},
				PriorTasks: priorTasks,
				Prior: prior.TrainConfig{
					Dataset: prior.DatasetConfig{SamplesPerTask: 120, TopK: 16},
					Epochs:  150,
				},
				MetaGPUs: 2,
			},
		})
	})
	return envInst
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Seed: 1}.withDefaults()
	if len(cfg.Targets) != 4 || len(cfg.Models) != 3 {
		t.Fatalf("defaults: %v %v", cfg.Targets, cfg.Models)
	}
	if cfg.MaxMeasurements != 192 || cfg.BatchSize != 16 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestGridTasksSubset(t *testing.T) {
	e := smallEnv(t)
	tasks, err := e.GridTasks(workload.ResNet18)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("subset size %d want 2", len(tasks))
	}
	// Full list when TasksPerModel exceeds the model.
	full := NewEnv(Config{Seed: 1, TasksPerModel: 100})
	tasks, err = full.GridTasks(workload.AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 12 {
		t.Fatalf("full size %d want 12", len(tasks))
	}
}

func TestSourceTasksExcludeTargetModel(t *testing.T) {
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	srcs := sourceTasks(task, 3)
	if len(srcs) == 0 {
		t.Fatal("no source tasks")
	}
	for _, s := range srcs {
		if s.Model == workload.ResNet18 {
			t.Fatalf("target network leaked into sources: %s", s.Name())
		}
		if s.Kind != task.Kind {
			t.Fatalf("kind mismatch: %v", s.Kind)
		}
	}
}

func TestTunerForUnknown(t *testing.T) {
	e := smallEnv(t)
	task, err := workload.TaskByIndex(workload.ResNet18, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TunerFor("gradient-descent", task, hwspec.TitanXp); err == nil {
		t.Fatal("unknown tuner accepted")
	}
}

func TestEffortToTarget(t *testing.T) {
	res := &tuner.Result{
		Measurements: 48,
		GPUSeconds:   100,
		History: []tuner.StepRecord{
			{Step: 1, Measurements: 16, BestGFLOPS: 50, GPUSeconds: 30},
			{Step: 2, Measurements: 32, BestGFLOPS: 120, GPUSeconds: 65},
			{Step: 3, Measurements: 48, BestGFLOPS: 130, GPUSeconds: 100},
		},
	}
	m, s := EffortToTarget(res, 100)
	if m != 32 || s != 65 {
		t.Fatalf("effort = %d/%g want 32/65", m, s)
	}
	// Unreached target charges full effort.
	m, s = EffortToTarget(res, 1e9)
	if m != 48 || s != 100 {
		t.Fatalf("unreached effort = %d/%g", m, s)
	}
}

func TestSortDesc(t *testing.T) {
	in := []float64{1, 5, 3}
	out := SortDesc(in)
	if out[0] != 5 || out[1] != 3 || out[2] != 1 {
		t.Fatalf("SortDesc = %v", out)
	}
	if in[0] != 1 {
		t.Fatal("SortDesc mutated input")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	e := smallEnv(t)
	r, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{workload.AlexNet: 12, workload.ResNet18: 17, workload.VGG16: 21}
	for _, row := range r.Rows {
		if row.Total != want[row.Model] {
			t.Fatalf("%s tasks = %d want %d", row.Model, row.Total, want[row.Model])
		}
	}
	out := r.Render()
	for _, s := range []string{"alexnet", "sm_86", "12 conv2d"} {
		if !strings.Contains(out, s) {
			t.Fatalf("render missing %q:\n%s", s, out)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	e := smallEnv(t)
	r, err := e.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if r.KneeLoss >= 0.005 {
		t.Fatalf("knee loss %g ≥ 0.5%%", r.KneeLoss)
	}
	if r.ChosenDim >= hwspec.FeatureDim {
		t.Fatalf("no compression: dim %d", r.ChosenDim)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Loss > r.Points[i-1].Loss+1e-9 {
			t.Fatal("loss not monotone in dim")
		}
	}
	if !strings.Contains(r.Render(), "★ chosen") {
		t.Fatal("render missing knee marker")
	}
}

func TestFig1CrossHardwareSlowdown(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweeps")
	}
	e := smallEnv(t)
	r, err := e.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's premise: reuse loses meaningful performance both ways.
	if r.SlowdownAB < 0.02 && r.SlowdownBA < 0.02 {
		t.Fatalf("cross-hardware reuse nearly free: %+v", r)
	}
	if r.SlowdownAB < 0 || r.SlowdownBA < 0 {
		t.Fatalf("negative slowdown: %+v", r)
	}
	if !strings.Contains(r.Render(), "slowdown") {
		t.Fatal("render malformed")
	}
}

// TestGridAndAggregates runs the reduced grid once and checks every
// aggregate experiment's paper-shape on it.
func TestGridAndAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	e := smallEnv(t)
	grid, err := e.RunGrid([]string{"autotvm", "chameleon", "glimpse"})
	if err != nil {
		t.Fatal(err)
	}

	f6, err := Fig6(grid)
	if err != nil {
		t.Fatal(err)
	}
	if f6.Geomean["autotvm"] != 1.0 {
		t.Fatalf("autotvm relative steps = %g", f6.Geomean["autotvm"])
	}
	if f6.Geomean["glimpse"] >= 1.0 {
		t.Fatalf("glimpse needs %g× AutoTVM's steps; expected < 1", f6.Geomean["glimpse"])
	}

	f7, err := Fig7(grid)
	if err != nil {
		t.Fatal(err)
	}
	if f7.Geomean["glimpse"] <= 1.5 {
		t.Fatalf("glimpse invalid reduction = %.2f×; expected > 1.5×", f7.Geomean["glimpse"])
	}
	if f7.Geomean["glimpse"] <= f7.Geomean["chameleon"] {
		t.Fatalf("glimpse (%.2f×) should beat chameleon (%.2f×) on invalid reduction",
			f7.Geomean["glimpse"], f7.Geomean["chameleon"])
	}

	f9, err := Fig9(grid)
	if err != nil {
		t.Fatal(err)
	}
	if f9.TimeGeomean["glimpse"] <= 1.0 {
		t.Fatalf("glimpse optimization-time improvement = %.2f×; expected > 1", f9.TimeGeomean["glimpse"])
	}
	if f9.InferenceGeomean["glimpse"] < 0.95 {
		t.Fatalf("glimpse inference speed = %.3f× AutoTVM; expected ≥ ~1", f9.InferenceGeomean["glimpse"])
	}

	t2, err := Table2(grid)
	if err != nil {
		t.Fatal(err)
	}
	// Glimpse's HV must top every model's rows.
	bestHV := map[string]string{}
	hv := map[string]float64{}
	for _, row := range t2.Rows {
		if row.Tuner == "autotvm" {
			continue
		}
		if cur, ok := hv[row.Model]; !ok || row.HyperVolume > cur {
			hv[row.Model] = row.HyperVolume
			bestHV[row.Model] = row.Tuner
		}
	}
	for model, winner := range bestHV {
		if winner != "glimpse" {
			t.Fatalf("%s HV winner = %s (%.3f)", model, winner, hv[model])
		}
	}

	// Renders carry their headers.
	for _, s := range []string{f6.Render(), f7.Render(), f9.Render(), t2.Render()} {
		if !strings.Contains(s, "AutoTVM") && !strings.Contains(s, "autotvm") {
			t.Fatal("render missing baseline")
		}
	}
}

func TestFig4InitialConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning runs")
	}
	e := smallEnv(t)
	r, err := e.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) == 0 {
		t.Fatal("no panels")
	}
	for _, p := range r.Panels {
		if len(p.Series) != 4 {
			t.Fatalf("panel has %d series", len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.GFLOPS) != r.N {
				t.Fatalf("%s series has %d entries want %d", s.Tuner, len(s.GFLOPS), r.N)
			}
			for i := 1; i < len(s.GFLOPS); i++ {
				if s.GFLOPS[i] > s.GFLOPS[i-1] {
					t.Fatal("series not sorted descending")
				}
			}
		}
	}
	// §4.1: Glimpse's initial batch dominates the blind tuners'.
	for _, adv := range r.GlimpseAdvantage() {
		if adv < 0.8 {
			t.Fatalf("glimpse initial-config advantage %.2f×; expected ≈≥1", adv)
		}
	}
}

func TestFig5TransferLearning(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning runs")
	}
	e := smallEnv(t)
	r, err := e.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) == 0 {
		t.Fatal("no cells")
	}
	// Glimpse must beat plain AutoTVM under the fixed time budget.
	if r.GeoRelGl <= 1.0 {
		t.Fatalf("glimpse relative performance %.2f×; expected > 1", r.GeoRelGl)
	}
	if !strings.Contains(r.Render(), "geomean") {
		t.Fatal("render malformed")
	}
}

func TestScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning runs")
	}
	e := smallEnv(t)
	r, err := e.Scaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(e.Cfg().Targets) {
		t.Fatalf("%d points want %d", len(r.Points), len(e.Cfg().Targets))
	}
	for i, p := range r.Points {
		if p.NumGPUs != i+1 {
			t.Fatalf("point %d numGPUs %d", i, p.NumGPUs)
		}
		if p.AutoTVMSeconds <= 0 || p.GlimpseSeconds <= 0 {
			t.Fatalf("non-positive costs: %+v", p)
		}
		if i > 0 && p.AutoTVMSeconds < r.Points[i-1].AutoTVMSeconds {
			t.Fatal("cumulative cost decreased")
		}
	}
	// The last point should favor Glimpse.
	last := r.Points[len(r.Points)-1]
	if last.Speedup <= 1 {
		t.Fatalf("fleet speedup %.2f not > 1", last.Speedup)
	}
	if !strings.Contains(r.Render(), "speedup") {
		t.Fatal("render malformed")
	}
}
