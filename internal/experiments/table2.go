package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/metrics"
)

// Table2Row is one (tuner, model) summary of Table 2.
type Table2Row struct {
	Tuner              string
	Model              string
	GPUHours           float64 // Σ over target GPUs of simulated search time
	MeanInferenceMS    float64 // mean over target GPUs of model latency
	SearchReduction    float64 // vs AutoTVM, fraction
	InferenceReduction float64 // vs AutoTVM, fraction
	HyperVolume        float64 // Eq. 2
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Tuners []string
	Rows   []Table2Row
	// BaselinePerGPU mirrors the paper's second row block: AutoTVM's mean
	// inference latency per target GPU (ms, averaged over models).
	BaselinePerGPU map[string]float64
}

// Table2 aggregates a grid into the paper's multi-objective summary.
func Table2(grid *Grid) (*Table2Result, error) {
	out := &Table2Result{Tuners: grid.Tuners, BaselinePerGPU: map[string]float64{}}
	for _, gpu := range grid.Cfg.Targets {
		sum := 0.0
		for _, model := range grid.Cfg.Models {
			lat, err := grid.ModelLatencyMS("autotvm", gpu, model)
			if err != nil {
				return nil, err
			}
			sum += lat
		}
		out.BaselinePerGPU[gpu] = sum / float64(len(grid.Cfg.Models))
	}
	base := map[string]Table2Row{} // model → autotvm row
	for _, name := range append([]string{"autotvm"}, others(grid.Tuners)...) {
		for _, model := range grid.Cfg.Models {
			row := Table2Row{Tuner: name, Model: model}
			var latencies []float64
			for _, gpu := range grid.Cfg.Targets {
				_, secs, err := grid.EffortStats(name, gpu, model)
				if err != nil {
					return nil, err
				}
				row.GPUHours += secs / 3600
				lat, err := grid.ModelLatencyMS(name, gpu, model)
				if err != nil {
					return nil, err
				}
				latencies = append(latencies, lat)
			}
			sum := 0.0
			for _, l := range latencies {
				sum += l
			}
			row.MeanInferenceMS = sum / float64(len(latencies))
			if name == "autotvm" {
				base[model] = row
			} else {
				b := base[model]
				row.SearchReduction = metrics.Reduction(b.GPUHours, row.GPUHours)
				row.InferenceReduction = metrics.Reduction(b.MeanInferenceMS, row.MeanInferenceMS)
				row.HyperVolume = metrics.HyperVolume(row.SearchReduction, row.InferenceReduction)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// others returns the grid tuners except autotvm, preserving order.
func others(tuners []string) []string {
	var out []string
	for _, t := range tuners {
		if t != "autotvm" {
			out = append(out, t)
		}
	}
	return out
}

// Render formats the Table 2 report.
func (r *Table2Result) Render() string {
	var sb strings.Builder
	t := metrics.NewTable(
		"Table 2 — Hyper-Volume summary (search GPU-hours and mean inference latency)",
		"tuner", "model", "GPU hours", "mean infer (ms)", "search redu", "infer redu", "HV")
	for _, row := range r.Rows {
		if row.Tuner == "autotvm" {
			t.AddRowf(row.Tuner, row.Model,
				fmt.Sprintf("%.2f", row.GPUHours), fmt.Sprintf("%.3f", row.MeanInferenceMS),
				"—", "—", "—")
			continue
		}
		t.AddRowf(row.Tuner, row.Model,
			fmt.Sprintf("%.2f", row.GPUHours), fmt.Sprintf("%.3f", row.MeanInferenceMS),
			fmt.Sprintf("%.2f%%", 100*row.SearchReduction),
			fmt.Sprintf("%.2f%%", 100*row.InferenceReduction),
			fmt.Sprintf("%.4f", row.HyperVolume))
	}
	sb.WriteString(t.String())
	if len(r.BaselinePerGPU) > 0 {
		sb.WriteByte('\n')
		pg := metrics.NewTable("AutoTVM mean inference per GPU (ms, averaged over models)", "gpu", "mean infer (ms)")
		for _, gpu := range orderedKeys(r.BaselinePerGPU) {
			pg.AddRowf(gpu, fmt.Sprintf("%.3f", r.BaselinePerGPU[gpu]))
		}
		sb.WriteString(pg.String())
	}
	sb.WriteString("paper: Glimpse posts the highest HV on every model (5.75 / 4.40 / 3.70 for AlexNet / ResNet-18 / VGG-16)\n")
	return sb.String()
}

// orderedKeys returns map keys sorted lexically for stable rendering.
func orderedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
