package experiments

import (
	"fmt"

	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// RunKey identifies one tuning run inside a grid.
type RunKey struct {
	Tuner     string
	GPU       string
	Model     string
	TaskIndex int
}

// Grid holds the (tuner × GPU × model × task) results the aggregate
// experiments (Figs. 6, 7, 9, Table 2) are computed from.
type Grid struct {
	Cfg     Config
	Tuners  []string
	Results map[RunKey]*tuner.Result
	Tasks   map[string][]workload.Task // model → task subset used
}

// RunGrid executes every tuning run in the grid. It is the workhorse of
// the end-to-end experiments; results are deterministic in Config.Seed.
func (e *Env) RunGrid(tuners []string) (*Grid, error) {
	grid := &Grid{
		Cfg:     e.cfg,
		Tuners:  append([]string(nil), tuners...),
		Results: map[RunKey]*tuner.Result{},
		Tasks:   map[string][]workload.Task{},
	}
	budget := tuner.Budget{
		MaxMeasurements: e.cfg.MaxMeasurements,
		Patience:        e.cfg.Patience,
		Epsilon:         e.cfg.Epsilon,
	}
	for _, model := range e.cfg.Models {
		tasks, err := e.GridTasks(model)
		if err != nil {
			return nil, err
		}
		grid.Tasks[model] = tasks
	}
	for _, target := range e.cfg.Targets {
		m, err := measure.NewLocal(target)
		if err != nil {
			return nil, err
		}
		for _, model := range e.cfg.Models {
			for _, task := range grid.Tasks[model] {
				sp, err := space.ForTask(task)
				if err != nil {
					return nil, err
				}
				for _, name := range tuners {
					tn, err := e.TunerFor(name, task, target)
					if err != nil {
						return nil, err
					}
					g := e.rngFor(fmt.Sprintf("grid/%s/%s/%s", name, target, task.Name()))
					res, err := tn.Tune(task, sp, m, budget, g)
					if err != nil {
						return nil, fmt.Errorf("experiments: %s on %s/%s: %w", name, target, task.Name(), err)
					}
					grid.Results[RunKey{name, target, model, task.Index}] = res
					e.logf("grid: %-10s %-14s %-22s best=%7.0f GFLOPS meas=%3d invalid=%2d gpu=%5.0fs",
						name, target, task.Name(), res.BestGFLOPS, res.Measurements, res.Invalid, res.GPUSeconds)
				}
			}
		}
	}
	return grid, nil
}

// Get returns one run's result.
func (g *Grid) Get(tunerName, gpu, model string, taskIndex int) (*tuner.Result, error) {
	res, ok := g.Results[RunKey{tunerName, gpu, model, taskIndex}]
	if !ok {
		return nil, fmt.Errorf("experiments: no grid result for %s/%s/%s/L%d", tunerName, gpu, model, taskIndex)
	}
	return res, nil
}

// TargetGFLOPS is the common quality bar for one (gpu, model, task): frac
// of the weakest tuner's final best. Every tuner in the grid reached it,
// so "effort to target" is well defined for all of them.
func (g *Grid) TargetGFLOPS(gpu, model string, taskIndex int, frac float64) (float64, error) {
	minBest := -1.0
	for _, name := range g.Tuners {
		res, err := g.Get(name, gpu, model, taskIndex)
		if err != nil {
			return 0, err
		}
		if minBest < 0 || res.BestGFLOPS < minBest {
			minBest = res.BestGFLOPS
		}
	}
	if minBest <= 0 {
		return 0, fmt.Errorf("experiments: no tuner found a valid config for %s/%s/L%d", gpu, model, taskIndex)
	}
	return frac * minBest, nil
}

// EffortToTarget reads a run's history and returns the measurements and
// simulated GPU seconds spent when best-so-far first reached the target.
// Runs that never reached it are charged their full effort.
func EffortToTarget(res *tuner.Result, target float64) (measurements int, gpuSeconds float64) {
	for _, h := range res.History {
		if h.BestGFLOPS >= target {
			return h.Measurements, h.GPUSeconds
		}
	}
	return res.Measurements, res.GPUSeconds
}

// qualityFrac is the common-target fraction used by the search-effort
// experiments (Figs. 6 and 9a, Table 2).
const qualityFrac = 0.95

// EffortStats totals a tuner's measurements and GPU seconds to the common
// quality target over a model's tasks on one GPU.
func (g *Grid) EffortStats(tunerName, gpu, model string) (measurements int, gpuSeconds float64, err error) {
	for _, task := range g.Tasks[model] {
		target, err := g.TargetGFLOPS(gpu, model, task.Index, qualityFrac)
		if err != nil {
			return 0, 0, err
		}
		res, err := g.Get(tunerName, gpu, model, task.Index)
		if err != nil {
			return 0, 0, err
		}
		m, s := EffortToTarget(res, target)
		measurements += m
		gpuSeconds += s
	}
	return measurements, gpuSeconds, nil
}

// SumGPUSeconds totals a tuner's simulated GPU time over a model's tasks
// on one GPU.
func (g *Grid) SumGPUSeconds(tunerName, gpu, model string) (float64, error) {
	total := 0.0
	for _, task := range g.Tasks[model] {
		res, err := g.Get(tunerName, gpu, model, task.Index)
		if err != nil {
			return 0, err
		}
		total += res.GPUSeconds
	}
	return total, nil
}

// InvalidStats totals measurements and invalid measurements for a tuner
// over a model's tasks on one GPU.
func (g *Grid) InvalidStats(tunerName, gpu, model string) (measured, invalid int, err error) {
	for _, task := range g.Tasks[model] {
		res, err := g.Get(tunerName, gpu, model, task.Index)
		if err != nil {
			return 0, 0, err
		}
		measured += res.Measurements
		invalid += res.Invalid
	}
	return measured, invalid, nil
}

// ModelLatencyMS assembles the end-to-end model latency for a tuner on one
// GPU: for each distinct layer the deployment picks the faster of the
// direct and winograd kernels, weighted by the layer's multiplicity.
// Tasks outside the grid subset are excluded consistently for every tuner.
func (g *Grid) ModelLatencyMS(tunerName, gpu, model string) (float64, error) {
	tasks := g.Tasks[model]
	// Winograd tasks override their direct counterpart when faster.
	type layerKey struct {
		conv workload.ConvShape
	}
	bestConv := map[layerKey]float64{} // per conv shape: best ms across templates
	repeats := map[layerKey]int{}
	total := 0.0
	for _, task := range tasks {
		res, err := g.Get(tunerName, gpu, model, task.Index)
		if err != nil {
			return 0, err
		}
		if res.BestIndex < 0 {
			return 0, fmt.Errorf("experiments: %s found no valid config for %s/%s L%d", tunerName, gpu, model, task.Index)
		}
		switch task.Kind {
		case workload.Dense:
			total += res.BestTimeMS * float64(task.Repeats)
		default:
			k := layerKey{task.Conv}
			if old, ok := bestConv[k]; !ok || res.BestTimeMS < old {
				bestConv[k] = res.BestTimeMS
			}
			repeats[k] = task.Repeats
		}
	}
	for k, ms := range bestConv {
		total += ms * float64(repeats[k])
	}
	return total, nil
}
