package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/metrics"
)

// Fig7Cell is one (GPU, model) bar of Figure 7: the reduction factor in
// invalid-configuration rate versus AutoTVM (higher is better).
type Fig7Cell struct {
	GPU, Model   string
	InvalidFrac  map[string]float64 // tuner → invalid / measured
	ReductionVsA map[string]float64 // tuner → autotvm frac / tuner frac
}

// Fig7Result aggregates the invalid-configuration study.
type Fig7Result struct {
	Tuners  []string
	Cells   []Fig7Cell
	Geomean map[string]float64
}

// Fig7 computes invalid-configuration reductions from a grid.
func Fig7(grid *Grid) (*Fig7Result, error) {
	out := &Fig7Result{Tuners: grid.Tuners, Geomean: map[string]float64{}}
	reds := map[string][]float64{}
	for _, gpu := range grid.Cfg.Targets {
		for _, model := range grid.Cfg.Models {
			cell := Fig7Cell{GPU: gpu, Model: model,
				InvalidFrac: map[string]float64{}, ReductionVsA: map[string]float64{}}
			for _, name := range grid.Tuners {
				measured, invalid, err := grid.InvalidStats(name, gpu, model)
				if err != nil {
					return nil, err
				}
				frac := 0.0
				if measured > 0 {
					frac = float64(invalid) / float64(measured)
				}
				cell.InvalidFrac[name] = frac
			}
			base, ok := cell.InvalidFrac["autotvm"]
			if !ok {
				return nil, fmt.Errorf("experiments: fig7 needs autotvm in the grid")
			}
			for _, name := range grid.Tuners {
				frac := cell.InvalidFrac[name]
				// A tuner with zero invalids gets credited with the best
				// measurable reduction: one phantom invalid measurement.
				if frac == 0 {
					measured, _, err := grid.InvalidStats(name, gpu, model)
					if err != nil {
						return nil, err
					}
					frac = 1 / float64(measured+1)
				}
				red := base / frac
				if base == 0 {
					red = 1
				}
				cell.ReductionVsA[name] = red
				reds[name] = append(reds[name], red)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	for name, v := range reds {
		out.Geomean[name] = metrics.Geomean(v)
	}
	return out, nil
}

// Render formats the Figure 7 report.
func (r *Fig7Result) Render() string {
	var sb strings.Builder
	headers := append([]string{"gpu", "model"}, r.Tuners...)
	t := metrics.NewTable("Figure 7 — reduction in invalid configurations / AutoTVM (higher is better)", headers...)
	for _, c := range r.Cells {
		row := []string{c.GPU, c.Model}
		for _, name := range r.Tuners {
			row = append(row, fmt.Sprintf("%.2f× (%.1f%%)", c.ReductionVsA[name], 100*c.InvalidFrac[name]))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean", ""}
	for _, name := range r.Tuners {
		row = append(row, fmt.Sprintf("%.2f×", r.Geomean[name]))
	}
	t.AddRow(row...)
	sb.WriteString(t.String())
	sb.WriteString("paper geomeans: chameleon 1.23×, glimpse 5.56× fewer invalid configs than AutoTVM\n")
	return sb.String()
}
