package experiments

import (
	"fmt"
	"strings"

	"github.com/neuralcompile/glimpse/internal/core"
	"github.com/neuralcompile/glimpse/internal/hwspec"
	"github.com/neuralcompile/glimpse/internal/measure"
	"github.com/neuralcompile/glimpse/internal/metrics"
	"github.com/neuralcompile/glimpse/internal/space"
	"github.com/neuralcompile/glimpse/internal/tuner"
	"github.com/neuralcompile/glimpse/internal/workload"
)

// Fig4Combo is one panel of Figure 4.
type Fig4Combo struct {
	GPU   string
	Model string
	Layer int
}

// Fig4Combos are the paper's four representative panels.
var Fig4Combos = []Fig4Combo{
	{hwspec.TitanXp, workload.ResNet18, 7},
	{hwspec.RTX2070Super, workload.ResNet18, 12},
	{hwspec.RTX2080Ti, workload.VGG16, 17},
	{hwspec.RTX3090, workload.AlexNet, 8},
}

// Fig4Series is one tuner's 100 initial configurations, sorted descending.
type Fig4Series struct {
	Tuner  string
	GFLOPS []float64
	Best   float64
	Mean   float64
}

// Fig4Panel is one (GPU, layer) panel with all tuner series.
type Fig4Panel struct {
	Combo  Fig4Combo
	Series []Fig4Series
}

// Fig4Result holds all panels.
type Fig4Result struct {
	Panels []Fig4Panel
	N      int // configurations per series (paper: 100)
}

// Fig4 measures each tuner's first batch of N=100 configurations for the
// paper's four (GPU, layer) panels. Random, AutoTVM, and Chameleon start
// blind; Glimpse's batch comes from the Blueprint prior (§3.1).
func (e *Env) Fig4() (*Fig4Result, error) {
	const n = 100
	out := &Fig4Result{N: n}
	tuners := []string{"random", "autotvm", "chameleon", "glimpse"}
	// Restrict to panels whose GPU is in the configured target set, so
	// reduced-scale runs do not train toolkits for GPUs they never use.
	combos := make([]Fig4Combo, 0, len(Fig4Combos))
	inTargets := map[string]bool{}
	for _, t := range e.cfg.Targets {
		inTargets[t] = true
	}
	for _, c := range Fig4Combos {
		if inTargets[c.GPU] {
			combos = append(combos, c)
		}
	}
	if len(combos) == 0 {
		combos = append(combos, Fig4Combo{e.cfg.Targets[0], workload.ResNet18, 7})
	}
	for _, combo := range combos {
		task, err := workload.TaskByIndex(combo.Model, combo.Layer)
		if err != nil {
			return nil, err
		}
		sp, err := space.ForTask(task)
		if err != nil {
			return nil, err
		}
		m, err := measure.NewLocal(combo.GPU)
		if err != nil {
			return nil, err
		}
		panel := Fig4Panel{Combo: combo}
		for _, name := range tuners {
			tn, err := e.TunerFor(name, task, combo.GPU)
			if err != nil {
				return nil, err
			}
			// A batch-sized-n run of exactly n measurements captures the
			// initial sampled configurations.
			switch v := tn.(type) {
			case tuner.Random:
				v.BatchSize = n
				tn = v
			case tuner.AutoTVM:
				v.BatchSize = n
				tn = v
			case tuner.Chameleon:
				v.BatchSize = n
				tn = v
			case *core.Glimpse:
				v.BatchSize = n
			}
			res, err := tn.Tune(task, sp, m, tuner.Budget{MaxMeasurements: n},
				e.rngFor(fmt.Sprintf("fig4/%s/%s/%d/%s", combo.GPU, combo.Model, combo.Layer, name)))
			if err != nil {
				return nil, err
			}
			series := SortDesc(res.InitialBatch)
			mean := 0.0
			for _, v := range series {
				mean += v
			}
			if len(series) > 0 {
				mean /= float64(len(series))
			}
			best := 0.0
			if len(series) > 0 {
				best = series[0]
			}
			panel.Series = append(panel.Series, Fig4Series{
				Tuner: name, GFLOPS: series, Best: best, Mean: mean,
			})
			e.logf("fig4: %-14s %-20s %-9s best=%7.0f mean=%6.0f", combo.GPU, task.Name(), name, best, mean)
		}
		out.Panels = append(out.Panels, panel)
	}
	return out, nil
}

// Render formats the Figure 4 report: per-panel best/mean and the sorted
// series at sample quantiles.
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	for _, p := range r.Panels {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 4 — initial %d configurations: %s / %s / L%d (GFLOPS, sorted)",
				r.N, p.Combo.GPU, p.Combo.Model, p.Combo.Layer),
			"tuner", "best", "p25", "median", "p75", "mean")
		for _, s := range p.Series {
			q := func(frac float64) float64 {
				if len(s.GFLOPS) == 0 {
					return 0
				}
				i := int(frac * float64(len(s.GFLOPS)-1))
				return s.GFLOPS[i]
			}
			t.AddRowf(s.Tuner, s.Best, q(0.25), q(0.5), q(0.75), s.Mean)
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("paper: only Glimpse's Blueprint-seeded batch reaches near-optimal configurations within the first samples\n")
	return sb.String()
}

// GlimpseAdvantage returns, per panel, Glimpse's best-initial-config over
// the best hardware-agnostic tuner's — the quantity the §4.1 narrative
// rests on (used by tests and the bench harness).
func (r *Fig4Result) GlimpseAdvantage() []float64 {
	var out []float64
	for _, p := range r.Panels {
		var glimpse, bestOther float64
		for _, s := range p.Series {
			if s.Tuner == "glimpse" {
				glimpse = s.Best
			} else if s.Best > bestOther {
				bestOther = s.Best
			}
		}
		if bestOther > 0 {
			out = append(out, glimpse/bestOther)
		}
	}
	return out
}
